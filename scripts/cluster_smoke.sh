#!/usr/bin/env sh
# End-to-end smoke of the sharded simulation cluster (internal/cluster):
# two fastd workers sharing a disk-backed result store, fronted by a fastd
# coordinator, driven through fastctl. Asserts the three cluster
# contracts:
#   1. a Figure-4 sweep through the coordinator aggregates byte-identically
#      to the same sweep on a fresh single node,
#   2. after BOTH workers restart (fresh processes, same store directory),
#      the repeated sweep is served entirely from the disk cache — zero
#      engine runs on either worker — with identical per-point results,
#   3. the coordinator's topology view and cluster_* metrics are live,
#   4. warm-start survives the restart: a NEW sweep point sharing the
#      boot prefix of a pre-restart run (so it misses the result cache
#      and must simulate) resumes from the boot snapshot in the shared
#      store — zero boot instructions re-executed on either worker.
# Needs only the Go toolchain.
set -eu

P_SINGLE="${FASTD_PORT:-18090}"
P_W1=$((P_SINGLE + 1))
P_W2=$((P_SINGLE + 2))
P_COORD=$((P_SINGLE + 3))
TMP="$(mktemp -d)"
STORE="${TMP}/store"
PIDS=""

fail() {
    echo "CLUSTER SMOKE FAIL: $*" >&2
    for f in "${TMP}"/*.log; do
        [ -f "$f" ] && sed "s|^|  $(basename "$f"): |" "$f" >&2
    done
    exit 1
}

cleanup() {
    for p in ${PIDS}; do kill "$p" 2>/dev/null || true; done
    rm -rf "${TMP}"
}
trap cleanup EXIT INT TERM

echo "== build fastd + fastctl"
go build -o "${TMP}/fastd" ./cmd/fastd
go build -o "${TMP}/fastctl" ./cmd/fastctl

ctl() { # ctl <port> <args...>
    port=$1
    shift
    "${TMP}/fastctl" -addr "http://127.0.0.1:${port}" "$@"
}

wait_healthy() { # wait_healthy <port> <what>
    i=0
    until ctl "$1" health >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && fail "$2 never became healthy"
        sleep 0.1
    done
}

start_worker() { # start_worker <port> <logname>  — appends pid to PIDS, echoes it
    "${TMP}/fastd" -addr "127.0.0.1:$1" -workers 2 -queue 16 \
        -cache-dir "${STORE}" >"${TMP}/$2.log" 2>&1 &
    PIDS="${PIDS} $!"
    echo "$!"
}

# One small Figure-4 slice: 2 workloads x 2 predictors = 4 points.
SPEC='{"engines":["fast"],"workloads":["164.gzip","176.gcc"],"variants":[{"predictor":"gshare"},{"predictor":"2bit"}],"base":{"max_instructions":50000}}'

echo "== reference: the sweep on a fresh single node (no disk store)"
"${TMP}/fastd" -addr "127.0.0.1:${P_SINGLE}" -workers 2 >"${TMP}/single.log" 2>&1 &
SINGLE_PID=$!
PIDS="${PIDS} ${SINGLE_PID}"
wait_healthy "${P_SINGLE}" "single node"
ctl "${P_SINGLE}" sweep -spec "${SPEC}" -wait >"${TMP}/ref.json" || fail "single-node sweep failed"
kill "${SINGLE_PID}" 2>/dev/null || true

echo "== boot 2 workers (shared store at ${STORE}) + coordinator"
W1_PID="$(start_worker "${P_W1}" worker1)"
W2_PID="$(start_worker "${P_W2}" worker2)"
wait_healthy "${P_W1}" "worker 1"
wait_healthy "${P_W2}" "worker 2"
"${TMP}/fastd" -coordinator -addr "127.0.0.1:${P_COORD}" \
    -nodes "http://127.0.0.1:${P_W1},http://127.0.0.1:${P_W2}" \
    -probe-interval 200ms >"${TMP}/coord.log" 2>&1 &
PIDS="${PIDS} $!"
wait_healthy "${P_COORD}" "coordinator"

echo "== sweep through the coordinator must aggregate byte-identically"
ctl "${P_COORD}" sweep -spec "${SPEC}" -wait >"${TMP}/clu.json" || fail "cluster sweep failed"
cmp -s "${TMP}/ref.json" "${TMP}/clu.json" || {
    diff "${TMP}/ref.json" "${TMP}/clu.json" >&2 || true
    fail "coordinator aggregation differs from single-node"
}
sweep_id="$(ctl "${P_COORD}" sweeps -limit 1 | sed -n 's/.*"id":"\(sweep-[0-9]*\)".*/\1/p')"
[ -n "${sweep_id}" ] || fail "coordinator sweep listing is empty"
ctl "${P_COORD}" sweep-result "${sweep_id}" -results-only >"${TMP}/run1.points" ||
    fail "sweep-result -results-only failed"

echo "== capture a boot snapshot into the shared store (253.perlbmk point)"
ctl "${P_COORD}" submit -engine fast \
    -params '{"workload":"253.perlbmk","max_instructions":60000}' -wait >/dev/null ||
    fail "perlbmk capture point failed"

echo "== topology view reports both workers healthy"
view="$(ctl "${P_COORD}" cluster)"
case "${view}" in
*'"healthy":false'*) fail "a live worker shows unhealthy: ${view}" ;;
esac
ctl "${P_COORD}" metrics | grep -q '^cluster_reassignments_total' ||
    fail "coordinator metrics missing cluster_* series"

echo "== restart BOTH workers (fresh processes, same store directory)"
kill -TERM "${W1_PID}" "${W2_PID}"
i=0
while kill -0 "${W1_PID}" 2>/dev/null || kill -0 "${W2_PID}" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "workers did not drain within 10s"
    sleep 0.1
done
start_worker "${P_W1}" worker1b >/dev/null
start_worker "${P_W2}" worker2b >/dev/null
wait_healthy "${P_W1}" "restarted worker 1"
wait_healthy "${P_W2}" "restarted worker 2"

echo "== repeated sweep must be served from the disk store: zero engine runs"
ctl "${P_COORD}" sweep -spec "${SPEC}" -id-only >"${TMP}/sweep2.id" ||
    fail "post-restart sweep rejected (coordinator did not re-admit the workers?)"
ctl "${P_COORD}" sweep-result "$(cat "${TMP}/sweep2.id")" -wait -results-only >"${TMP}/run2.points" ||
    fail "post-restart sweep failed"
cmp -s "${TMP}/run1.points" "${TMP}/run2.points" ||
    fail "post-restart results differ from the original run"
for port in "${P_W1}" "${P_W2}"; do
    ctl "${port}" metrics | grep -q '^service_engine_runs_total 0$' ||
        fail "worker :${port} simulated after restart (want 0 engine runs, disk-cache serves)"
done

echo "== a new point sharing the boot prefix warm-starts: no boot re-execution"
# Different cap = different result key (must simulate), same boot prefix =
# the snapshot captured before the restart resumes it from the shared dir.
ctl "${P_COORD}" submit -engine fast \
    -params '{"workload":"253.perlbmk","max_instructions":80000}' -wait >/dev/null ||
    fail "post-restart perlbmk point failed"
hits=0
resumed=0
for port in "${P_W1}" "${P_W2}"; do
    h="$(ctl "${port}" metrics | awk '$1 == "service_snapshot_hits_total" {print $2}')"
    r="$(ctl "${port}" metrics | awk '$1 == "service_snapshot_resumed_instructions_total" {print $2}')"
    hits=$((hits + ${h:-0}))
    resumed=$((resumed + ${r:-0}))
done
[ "${hits}" -ge 1 ] || fail "no snapshot hit after restart: the boot was re-executed"
[ "${resumed}" -ge 1 ] || fail "no instructions resumed from the shared snapshot store"

echo "CLUSTER SMOKE OK: byte-identical sharded aggregation + disk-cache restart serve + warm-start across restart"
