#!/usr/bin/env sh
# End-to-end smoke of the fastd job service, driven the way an operator
# would — through fastctl (cmd/fastctl), the CLI over the typed Go client:
# boot the daemon, submit one Figure-4 point (fast engine, 164.gzip,
# gshare) twice, and assert
#   1. both jobs finish "done" with byte-identical result JSON,
#   2. the second is served from the content-addressed cache
#      (cached=true, service_cache_hits_total=1, exactly one engine run),
#   3. rejections carry the typed error envelope (stable machine codes),
#   4. the collection endpoint lists and paginates,
#   5. warm-start: on a second fastd (result cache disabled so engines
#      really run), the same instruction-cap sweep twice — the second run
#      resumes every point from the boot snapshot captured by the first
#      (snapshot hits +N, resumed-instruction counter grows, the snapshot
#      index lists the prefix),
#   6. SIGTERM drains gracefully (clean exit, final metrics dump written).
# Needs only the Go toolchain: fastctl replaces curl+jq.
set -eu

PORT="${FASTD_PORT:-18080}"
BASE="http://127.0.0.1:${PORT}"
PORT2="${FASTD_SNAP_PORT:-18081}"
BASE2="http://127.0.0.1:${PORT2}"
TMP="$(mktemp -d)"
PID=""
PID2=""

fail() {
    echo "SMOKE FAIL: $*" >&2
    [ -f "${TMP}/fastd.log" ] && sed 's/^/  fastd: /' "${TMP}/fastd.log" >&2
    exit 1
}

cleanup() {
    [ -n "${PID}" ] && kill "${PID}" 2>/dev/null || true
    [ -n "${PID2}" ] && kill "${PID2}" 2>/dev/null || true
    rm -rf "${TMP}"
}
trap cleanup EXIT INT TERM

echo "== build fastd + fastctl"
go build -o "${TMP}/fastd" ./cmd/fastd
go build -o "${TMP}/fastctl" ./cmd/fastctl
ctl() { "${TMP}/fastctl" -addr "${BASE}" "$@"; }

echo "== boot on :${PORT}"
"${TMP}/fastd" -addr "127.0.0.1:${PORT}" -workers 2 -queue 8 \
    -metrics-dump "${TMP}/final-metrics.prom" >"${TMP}/fastd.log" 2>&1 &
PID=$!

i=0
until ctl health >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "server never became healthy"
    kill -0 "${PID}" 2>/dev/null || fail "fastd exited during startup"
    sleep 0.1
done

PARAMS='{"workload":"164.gzip","predictor":"gshare","max_instructions":50000}'

echo "== submit the Figure-4 point (cold)"
id1="$(ctl submit -engine fast -params "${PARAMS}" -id-only)" || fail "cold submit rejected"
ctl result "${id1}" -wait >"${TMP}/result1.json" || fail "cold job did not finish"
case "$(ctl job "${id1}")" in
*'"cached":false'*) ;;
*) fail "first submission claims to be cached" ;;
esac

echo "== submit the identical point again (must hit the cache)"
id2="$(ctl submit -engine fast -params "${PARAMS}" -id-only)" || fail "warm submit rejected"
ctl result "${id2}" -wait >"${TMP}/result2.json" || fail "warm job did not finish"
case "$(ctl job "${id2}")" in
*'"cached":true'*) ;;
*) fail "second submission was not served from cache" ;;
esac

cmp -s "${TMP}/result1.json" "${TMP}/result2.json" ||
    fail "cache hit is not byte-identical to the original result"

echo "== rejections carry the typed error envelope"
if ctl submit -engine warp-drive -params '{}' >/dev/null 2>"${TMP}/err.json"; then
    fail "unknown engine was accepted"
fi
grep -q '"code":"unknown_engine"' "${TMP}/err.json" ||
    fail "unknown-engine rejection lacks its envelope code: $(cat "${TMP}/err.json")"
if ctl submit -engine fast -params '{"frobnicate":1}' >/dev/null 2>"${TMP}/err.json"; then
    fail "bad params were accepted"
fi
grep -q '"code":"bad_params"' "${TMP}/err.json" ||
    fail "bad-params rejection lacks its envelope code: $(cat "${TMP}/err.json")"

echo "== collection endpoint lists and paginates"
page="$(ctl jobs -limit 1)"
case "${page}" in
*"${id2}"*) ;;
*) fail "newest-first listing missing ${id2}: ${page}" ;;
esac
case "${page}" in
*'"next_after"'*) ;;
*) fail "first page of two jobs has no cursor: ${page}" ;;
esac
case "$(ctl jobs -status done)" in
*"${id1}"*) ;;
*) fail "status=done listing missing ${id1}" ;;
esac

echo "== check the /metrics scrape"
metrics="$(ctl metrics)"
echo "${metrics}" | grep -q '^service_cache_hits_total 1$' ||
    fail "expected exactly one cache hit, got: $(echo "${metrics}" | grep service_cache || true)"
echo "${metrics}" | grep -q '^service_engine_runs_total 1$' ||
    fail "cache hit triggered a second engine run"
echo "${metrics}" | grep -q '^service_jobs_submitted_total 2$' ||
    fail "expected two submitted jobs"

echo "== warm-start: the same sweep twice on a cache-less fastd"
# Result cache disabled (-cache -1, no -cache-dir) so the repeated sweep
# re-executes every engine run; only the snapshot tier can speed it up.
"${TMP}/fastd" -addr "127.0.0.1:${PORT2}" -workers 2 -queue 16 -cache -1 \
    >"${TMP}/fastd2.log" 2>&1 &
PID2=$!
ctl2() { "${TMP}/fastctl" -addr "${BASE2}" "$@"; }
i=0
until ctl2 health >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "snapshot fastd never became healthy"
    kill -0 "${PID2}" 2>/dev/null || fail "snapshot fastd exited during startup"
    sleep 0.1
done

# Three sweep points sharing one boot prefix, differing only in the cap.
SWEEP='{"workloads":["253.perlbmk"],"variants":[{"max_instructions":60000},{"max_instructions":80000},{"max_instructions":100000}]}'
metric() { ctl2 metrics | awk -v n="$1" '$1 == n {print $2}' | head -1; }

sid1="$(ctl2 sweep -spec "${SWEEP}" -id-only)" || fail "first sweep rejected"
ctl2 sweep-result "${sid1}" -wait -results-only >"${TMP}/sweep1.json" || fail "first sweep did not finish"
hits1="$(metric service_snapshot_hits_total)"; hits1="${hits1:-0}"
resumed1="$(metric service_snapshot_resumed_instructions_total)"; resumed1="${resumed1:-0}"
ctl2 metrics | grep -q '^service_snapshot_misses_total' ||
    fail "first sweep recorded no snapshot miss (capture path never ran)"

sid2="$(ctl2 sweep -spec "${SWEEP}" -id-only)" || fail "second sweep rejected"
ctl2 sweep-result "${sid2}" -wait -results-only >"${TMP}/sweep2.json" || fail "second sweep did not finish"
hits2="$(metric service_snapshot_hits_total)"; hits2="${hits2:-0}"
resumed2="$(metric service_snapshot_resumed_instructions_total)"; resumed2="${resumed2:-0}"

[ "$((hits2 - hits1))" -eq 3 ] ||
    fail "second sweep should warm-start all 3 points: hits ${hits1} -> ${hits2}"
[ "${resumed2}" -gt "${resumed1}" ] ||
    fail "second sweep resumed no instructions (boot re-executed): ${resumed1} -> ${resumed2}"
case "$(ctl2 snapshots)" in
*'"prefix"'*) ;;
*) fail "snapshot index is empty after a captured sweep" ;;
esac

# The warm-started sweep must aggregate byte-identically to the cold one.
cmp -s "${TMP}/sweep1.json" "${TMP}/sweep2.json" ||
    fail "warm-started sweep is not byte-identical to the cold sweep"
kill -TERM "${PID2}" && wait "${PID2}" 2>/dev/null || true
PID2=""

echo "== SIGTERM drains gracefully"
kill -TERM "${PID}"
i=0
while kill -0 "${PID}" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "fastd did not exit within 10s of SIGTERM"
    sleep 0.1
done
wait "${PID}" 2>/dev/null || fail "fastd exited non-zero after SIGTERM"
PID=""
grep -q '^service_cache_hits_total 1$' "${TMP}/final-metrics.prom" ||
    fail "final metrics dump missing or wrong"

echo "SMOKE OK: cold run + byte-identical cache hit + typed errors + listing + warm-start sweep + graceful drain"
