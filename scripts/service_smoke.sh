#!/usr/bin/env sh
# End-to-end smoke of the fastd job service, driven the way an operator
# would: boot the daemon, submit one Figure-4 point (fast engine, 164.gzip,
# gshare) twice, and assert
#   1. both jobs finish "done" with byte-identical result JSON,
#   2. the second is served from the content-addressed cache
#      (cached=true, service_cache_hits_total=1, exactly one engine run),
#   3. SIGTERM drains gracefully (clean exit, final metrics dump written).
# Needs only a built Go toolchain plus curl; jq is optional (falls back to
# grep-level checks without it).
set -eu

PORT="${FASTD_PORT:-18080}"
BASE="http://127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
BIN="${TMP}/fastd"
PID=""

fail() {
    echo "SMOKE FAIL: $*" >&2
    [ -f "${TMP}/fastd.log" ] && sed 's/^/  fastd: /' "${TMP}/fastd.log" >&2
    exit 1
}

cleanup() {
    [ -n "${PID}" ] && kill "${PID}" 2>/dev/null || true
    rm -rf "${TMP}"
}
trap cleanup EXIT INT TERM

echo "== build fastd"
go build -o "${BIN}" ./cmd/fastd

echo "== boot on :${PORT}"
"${BIN}" -addr "127.0.0.1:${PORT}" -workers 2 -queue 8 \
    -metrics-dump "${TMP}/final-metrics.prom" >"${TMP}/fastd.log" 2>&1 &
PID=$!

i=0
until curl -fsS "${BASE}/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "server never became healthy"
    kill -0 "${PID}" 2>/dev/null || fail "fastd exited during startup"
    sleep 0.1
done

BODY='{"engine":"fast","params":{"workload":"164.gzip","predictor":"gshare","max_instructions":50000}}'

submit_and_wait() {
    # $1: file to store the result bytes in. Echoes the job's cached flag.
    resp="$(curl -fsS -d "${BODY}" "${BASE}/v1/jobs")" || fail "submit rejected: ${resp:-no response}"
    if command -v jq >/dev/null 2>&1; then
        id="$(echo "${resp}" | jq -r .id)"
    else
        id="$(echo "${resp}" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
    fi
    [ -n "${id}" ] || fail "no job id in response: ${resp}"
    i=0
    while :; do
        view="$(curl -fsS "${BASE}/v1/jobs/${id}")"
        case "${view}" in
        *'"status":"done"'*) break ;;
        *'"status":"failed"'* | *'"status":"canceled"'*) fail "job ${id} did not complete: ${view}" ;;
        esac
        i=$((i + 1))
        [ "$i" -gt 300 ] && fail "job ${id} never finished: ${view}"
        sleep 0.1
    done
    curl -fsS "${BASE}/v1/jobs/${id}/result" >"$1"
    case "${view}" in
    *'"cached":true'*) echo true ;;
    *) echo false ;;
    esac
}

echo "== submit the Figure-4 point (cold)"
first_cached="$(submit_and_wait "${TMP}/result1.json")"
[ "${first_cached}" = false ] || fail "first submission claims to be cached"

echo "== submit the identical point again (must hit the cache)"
second_cached="$(submit_and_wait "${TMP}/result2.json")"
[ "${second_cached}" = true ] || fail "second submission was not served from cache"

cmp -s "${TMP}/result1.json" "${TMP}/result2.json" ||
    fail "cache hit is not byte-identical to the original result"

echo "== check the /metrics scrape"
metrics="$(curl -fsS "${BASE}/metrics")"
echo "${metrics}" | grep -q '^service_cache_hits_total 1$' ||
    fail "expected exactly one cache hit, got: $(echo "${metrics}" | grep service_cache || true)"
echo "${metrics}" | grep -q '^service_engine_runs_total 1$' ||
    fail "cache hit triggered a second engine run"
echo "${metrics}" | grep -q '^service_jobs_submitted_total 2$' ||
    fail "expected two submitted jobs"

echo "== SIGTERM drains gracefully"
kill -TERM "${PID}"
i=0
while kill -0 "${PID}" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "fastd did not exit within 10s of SIGTERM"
    sleep 0.1
done
wait "${PID}" 2>/dev/null || fail "fastd exited non-zero after SIGTERM"
PID=""
grep -q '^service_cache_hits_total 1$' "${TMP}/final-metrics.prom" ||
    fail "final metrics dump missing or wrong"

echo "SMOKE OK: cold run + byte-identical cache hit + graceful drain"
