package repro

// One benchmark per table and figure of the paper's evaluation section,
// plus the DESIGN.md ablations and a few genuine Go performance benchmarks
// of the simulator itself. Each table/figure benchmark prints the
// regenerated rows/series with the published values alongside (the same
// output cmd/fastbench produces) and reports its headline number as a
// benchmark metric.
//
// Run with:
//
//	go test -bench=. -benchmem -benchtime=1x

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fm"
	"repro/internal/fpga"
	"repro/internal/isa"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/tm"
	"repro/internal/trace"
	"repro/internal/workload"
)

// BenchmarkAnalyticalModel regenerates the §3.1 worked examples (E3):
// 1.8, 2.1, 8.7 and 6.8 MIPS.
func BenchmarkAnalyticalModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.Analytical()
		if i == 0 {
			fmt.Println(out)
		}
	}
	b.ReportMetric(analytic.PaperExamples()[2].Model.MIPS(), "FAST-model-MIPS")
}

// BenchmarkTable1Microcode regenerates Table 1 (E5): microcode coverage
// fraction and dynamic µops per instruction for all sixteen workloads.
func BenchmarkTable1Microcode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(out)
		}
	}
}

// figure4Rows runs the Figure 4/5 sweep once and caches it: both figures
// come from the same 51 coupled simulations, fanned out over a
// GOMAXPROCS-wide sim.Fleet.
var figure4Once = sync.OnceValues(func() (rowsAndText, error) {
	rows, text, err := experiments.Figure4()
	return rowsAndText{rows, text}, err
})

type rowsAndText struct {
	rows []experiments.Figure4Row
	text string
}

// BenchmarkFigure4Performance regenerates Figure 4 (E6): simulator MIPS per
// workload under gshare, fixed-97% and perfect branch prediction.
func BenchmarkFigure4Performance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rt, err := figure4Once()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(rt.text)
		}
		var sum float64
		for _, r := range rt.rows {
			sum += r.Gshare
		}
		b.ReportMetric(sum/float64(len(rt.rows)), "amean-MIPS")
	}
}

// BenchmarkFigure5BranchPrediction regenerates Figure 5 (E7): gshare
// accuracy including all branches.
func BenchmarkFigure5BranchPrediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rt, err := figure4Once()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(experiments.Figure5(rt.rows))
		}
		var sum float64
		for _, r := range rt.rows {
			sum += r.GshareAccuracy
		}
		b.ReportMetric(100*sum/float64(len(rt.rows)), "amean-accuracy-%")
	}
}

// BenchmarkFigure4FleetSpeedup regenerates Figure 4 twice in one
// iteration — once through a single-worker (sequential) sim.Fleet, once
// through a GOMAXPROCS-wide fleet — verifies the rendered tables are
// byte-identical, and reports the wall-clock speedup. The sweep is
// embarrassingly parallel, so on a ≥4-core host the fleet runs >2× faster;
// on a single-core host the ratio degenerates to ~1× (the fleet adds no
// overhead worth measuring).
func BenchmarkFigure4FleetSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		_, seqText, err := experiments.Figure4Workers(1)
		if err != nil {
			b.Fatal(err)
		}
		seq := time.Since(t0)

		t0 = time.Now()
		_, parText, err := experiments.Figure4Workers(0)
		if err != nil {
			b.Fatal(err)
		}
		par := time.Since(t0)

		if seqText != parText {
			b.Fatalf("fleet output differs from sequential output:\n--- sequential ---\n%s\n--- fleet ---\n%s",
				seqText, parText)
		}
		b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup-x")
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
	}
}

// BenchmarkFigure6StatTrace regenerates Figure 6 (E8): the windowed
// statistics trace (iCache hits, BP accuracy, pipe drains) over the Linux
// boot.
func BenchmarkFigure6StatTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sampler, out, err := experiments.Figure6(2000, 400_000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(out)
		}
		b.ReportMetric(float64(len(sampler.Samples)), "samples")
	}
}

// BenchmarkTable2FPGAArea regenerates Table 2 (E9): the LX200 footprint of
// the timing model across issue widths 1-8.
func BenchmarkTable2FPGAArea(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.Table2()
		if i == 0 {
			fmt.Println(out)
		}
	}
	a := tm.DefaultConfig().Area()
	b.ReportMetric(100*fpga.Virtex4LX200.LogicFraction(a), "logic-%")
	b.ReportMetric(100*fpga.Virtex4LX200.BRAMFraction(a), "bram-%")
}

// BenchmarkTable3SimulatorComparison regenerates Table 3 (E10): published
// software-simulator speeds, our runnable baselines, and FAST.
func BenchmarkTable3SimulatorComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(out)
		}
	}
}

// BenchmarkBottleneckAnalysis regenerates §4.5 (E11): the QEMU configuration
// ladder, the measured DRC latencies, the per-2-basic-block arithmetic and
// the coherent-HyperTransport projection.
func BenchmarkBottleneckAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Bottleneck()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(out)
		}
	}
}

// BenchmarkAblations runs A1-A6 of DESIGN.md: coupling style, polling
// frequency, the branch-predictor-predictor, multi-host-cycle structures,
// trace compression and the link type.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Ablations()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(out)
		}
	}
}

// BenchmarkServerWorkloads regenerates the server-class workload study:
// the three toyFS workloads (shell-fork, logwrite, nicserv) swept over the
// disk-latency grid on the fast engine.
func BenchmarkServerWorkloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Servers()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(out)
		}
	}
}

// --- Genuine Go performance benchmarks of the simulator itself ---

// BenchmarkFMExecution measures raw functional-model interpretation speed
// (simulated instructions per host second).
func BenchmarkFMExecution(b *testing.B) {
	prog := isa.MustAssemble(`
		movi r0, 1000000000
	loop:	addi r1, 3
		mov  r2, r1
		andi r2, 1023
		stw  r2, [r2+0x4000]
		ldw  r3, [r2+0x4000]
		dec  r0
		jnz  loop
		halt
	`, 0x1000)
	m := fm.New(fm.Config{DisableInterrupts: true})
	m.LoadProgram(prog)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m.Step(); !ok {
			b.Fatal("halted early")
		}
	}
	b.ReportMetric(float64(b.N), "target-insts")
}

// BenchmarkFMDecodeLoop isolates the fetch/decode/crack path the predecode
// cache targets: the same instruction mix as BenchmarkFMExecution, run
// FM-only with the cache on (the CLI default) and off, plus the superblock
// fast path on top of the cache (also the CLI default). The spread between
// the sub-benchmarks is the per-instruction win with no TM in the loop to
// dilute it; ns/op is per target instruction in all three.
func BenchmarkFMDecodeLoop(b *testing.B) {
	src := `
		movi r0, 1000000000
	loop:	addi r1, 3
		mov  r2, r1
		andi r2, 1023
		stw  r2, [r2+0x4000]
		ldw  r3, [r2+0x4000]
		dec  r0
		jnz  loop
		halt
	`
	for _, bc := range []struct {
		name    string
		entries int
		sblen   int
	}{
		{"superblock", fm.DefaultICacheEntries, fm.DefaultSuperblockLen},
		{"icache", fm.DefaultICacheEntries, 0},
		{"nocache", 0, 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			m := fm.New(fm.Config{
				DisableInterrupts: true,
				ICacheEntries:     bc.entries,
				SuperblockLen:     bc.sblen,
			})
			m.LoadProgram(isa.MustAssemble(src, 0x1000))
			// Commit at the TM's default chunk cadence: an uncommitted
			// journal grows without bound and its growslice cost would
			// swamp the decode/dispatch spread this benchmark isolates.
			const commitStride = 64
			b.ResetTimer()
			if bc.sblen > 0 {
				// Block-at-a-time with an always-continue sink, the way the
				// coupled pump drives it with budget to spare.
				sink := func(trace.Entry) bool { return true }
				for produced, lastCommit := 0, 0; produced < b.N; {
					n := m.StepBlock(sink)
					if n == 0 {
						b.Fatal("halted early")
					}
					produced += n
					if produced-lastCommit >= commitStride {
						m.Commit(m.IN() - 1)
						lastCommit = produced
					}
				}
			} else {
				for i := 0; i < b.N; i++ {
					if _, ok := m.Step(); !ok {
						b.Fatal("halted early")
					}
					if i%commitStride == commitStride-1 {
						m.Commit(m.IN() - 1)
					}
				}
			}
			b.ReportMetric(float64(b.N), "target-insts")
		})
	}
}

// BenchmarkTMCycle measures timing-model evaluation speed (target cycles
// per host second) replaying a recorded trace.
func BenchmarkTMCycle(b *testing.B) {
	m := fm.New(fm.Config{DisableInterrupts: true})
	m.LoadProgram(isa.MustAssemble(`
		movi r0, 100000
	loop:	addi r1, 3
		stw  r1, [r2+0x4000]
		ldw  r3, [r2+0x4000]
		dec  r0
		jnz  loop
		halt
	`, 0x1000))
	var entries []trace.Entry
	for {
		e, ok := m.Step()
		if !ok {
			break
		}
		entries = append(entries, e)
	}
	src := &tm.SliceSource{Entries: entries}
	model, err := tm.New(tm.DefaultConfig(), src, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if model.Done() {
			b.StopTimer()
			model, _ = tm.New(tm.DefaultConfig(), src, nil)
			b.StartTimer()
		}
		model.Step()
	}
}

// BenchmarkCoupledSimulator measures the end-to-end coupled simulator on a
// small workload (host seconds per simulated instruction).
func BenchmarkCoupledSimulator(b *testing.B) {
	spec, _ := workload.ByName("164.gzip")
	for i := 0; i < b.N; i++ {
		boot, err := spec.Build()
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.FM.Devices = boot.Devices()
		cfg.MaxInstructions = 20_000
		sim, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sim.LoadProgram(boot.Kernel)
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMulticoreCoupledSimulator measures the N-core scheduler: the
// smp-lock workload on four coupled FM/TM pairs over the modeled coherent
// interconnect, run to the instruction cap.
func BenchmarkMulticoreCoupledSimulator(b *testing.B) {
	spec := workload.SMP(4)
	for i := 0; i < b.N; i++ {
		boot, err := spec.Build()
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.FM.Devices = boot.Devices()
		cfg.MaxInstructions = 80_000
		sim, err := core.NewMulticore(cfg, core.MulticoreConfig{Cores: 4})
		if err != nil {
			b.Fatal(err)
		}
		sim.LoadProgram(boot.Kernel)
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmStartSweep measures what the snapshot tier buys a
// parameter sweep sharing one boot prefix: a 4-point instruction-cap
// sweep over 253.perlbmk run cold (every point boots from reset) and
// warm (the first point captures a boot snapshot, the rest resume from
// it). ns/op is the full cold+warm pair, so the gate still catches
// regressions on either path; warm-speedup-x is the wall-time ratio for
// the second-and-later points — the number the warm-start tier exists
// for — and resumed-points counts how many of them actually resumed.
func BenchmarkWarmStartSweep(b *testing.B) {
	caps := []uint64{16_500, 17_000, 17_500, 18_000}
	runPoint := func(cap uint64, snaps sim.SnapshotStore) bool {
		p := sim.Params{Workload: "253.perlbmk", MaxInstructions: cap, Snapshots: snaps}
		eng, err := sim.New("fast", p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
		_, resumed := eng.(sim.WarmStarted).ResumedFrom()
		return resumed
	}
	var coldTail, warmTail time.Duration
	var resumedPoints int
	for i := 0; i < b.N; i++ {
		runPoint(caps[0], nil)
		mark := time.Now()
		for _, c := range caps[1:] {
			runPoint(c, nil)
		}
		coldTail += time.Since(mark)

		snaps := service.NewSnapshotStore(nil, nil)
		runPoint(caps[0], snaps) // capture
		mark = time.Now()
		for _, c := range caps[1:] {
			if runPoint(c, snaps) {
				resumedPoints++
			}
		}
		warmTail += time.Since(mark)
	}
	b.ReportMetric(float64(coldTail)/float64(warmTail), "warm-speedup-x")
	b.ReportMetric(float64(resumedPoints)/float64(b.N), "resumed-points")
}

// BenchmarkParallelCoupledSimulator is the same workload through the
// goroutine-parallel coupling.
func BenchmarkParallelCoupledSimulator(b *testing.B) {
	spec, _ := workload.ByName("164.gzip")
	for i := 0; i < b.N; i++ {
		boot, err := spec.Build()
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.FM.Devices = boot.Devices()
		cfg.MaxInstructions = 20_000
		sim, err := core.NewParallel(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sim.LoadProgram(boot.Kernel)
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
