// fastbench regenerates every table and figure of the paper's evaluation
// section (plus the DESIGN.md ablations) and prints them with the published
// values alongside.
//
// Usage:
//
//	fastbench                 # everything
//	fastbench -only table1    # table1, table2, table3, fig4 (includes fig5),
//	                          # fig6, analytic, bottleneck, ablations
//	fastbench -quiet          # suppress the stderr fleet progress line
//
// ctrl-C cancels the in-flight sweep cooperatively and exits non-zero.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/experiments"
	"repro/internal/fm"
	"repro/internal/service"
	"repro/internal/service/diskcache"
	"repro/internal/sim"
)

func main() {
	only := flag.String("only", "", "run a single experiment (table1|table2|table3|fig4|fig6|analytic|bottleneck|ablations|smp|servers)")
	workers := flag.Int("workers", 0, "sim.Fleet workers for swept experiments (0 = GOMAXPROCS, 1 = sequential)")
	traceChunk := flag.Int("tracechunk", 0, "FM→TM trace-buffer publish granularity for every run (0 = default; printed numbers are identical for any value ≥ 1)")
	icacheEnt := flag.Int("icache", fm.DefaultICacheEntries, "FM predecode-cache entries for every run (0 = disable; printed numbers are identical at any value)")
	superblock := flag.Int("superblock", fm.DefaultSuperblockLen, "FM superblock length cap for every run (0 = disable; printed numbers are identical at any value)")
	snapshotDir := flag.String("snapshot-dir", "", "warm-start boot-snapshot directory shared by every run (empty = disabled; printed numbers are identical either way)")
	quiet := flag.Bool("quiet", false, "suppress the stderr fleet progress line")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var snaps sim.SnapshotStore
	if *snapshotDir != "" {
		store, err := diskcache.New(*snapshotDir, 0, nil)
		check(err)
		snaps = service.NewSnapshotStore(store, nil)
	}

	runner := experiments.Runner{
		Ctx:     ctx,
		Fleet:   sim.Fleet{Workers: *workers},
		Overlay: sim.Params{TraceChunk: *traceChunk, ICacheEntries: *icacheEnt, SuperblockLen: *superblock, Snapshots: snaps},
	}
	if !*quiet {
		runner.Fleet.Progress = progressLine
	}

	want := func(name string) bool { return *only == "" || *only == name }
	bar := func() {
		fmt.Println("\n" + string(make([]byte, 0)) + "────────────────────────────────────────────────────────")
	}

	if want("analytic") {
		fmt.Println(experiments.Analytical())
		bar()
	}
	if want("table1") {
		out, err := experiments.Table1()
		check(err)
		fmt.Println(out)
		bar()
	}
	if want("fig4") {
		rows, out, err := runner.Figure4()
		check(err)
		fmt.Println(out)
		fmt.Println(experiments.Figure5(rows))
		bar()
	}
	if want("fig6") {
		_, out, err := runner.Figure6(2000, 400_000)
		check(err)
		fmt.Println(out)
		bar()
	}
	if want("table2") {
		fmt.Println(experiments.Table2())
		bar()
	}
	if want("table3") {
		out, err := runner.Table3()
		check(err)
		fmt.Println(out)
		bar()
	}
	if want("bottleneck") {
		out, err := runner.Bottleneck()
		check(err)
		fmt.Println(out)
		bar()
	}
	if want("ablations") {
		out, err := runner.Ablations()
		check(err)
		fmt.Println(out)
		bar()
	}
	if want("smp") {
		out, err := runner.SMP()
		check(err)
		fmt.Println(out)
		bar()
	}
	if want("servers") {
		out, err := runner.Servers()
		check(err)
		fmt.Println(out)
	}
}

// progressLine rewrites one stderr status line per completed fleet point;
// results on stdout stay clean for redirection.
func progressLine(done, total int, pr sim.PointResult) {
	status := ""
	if pr.Err != nil {
		status = "  !err"
	}
	fmt.Fprintf(os.Stderr, "\r\x1b[2K[fleet %d/%d] %s%s", done, total, pr.Point, status)
	if done == total {
		fmt.Fprint(os.Stderr, "\n")
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fastbench:", err)
		os.Exit(1)
	}
}
