// fastbench regenerates every table and figure of the paper's evaluation
// section (plus the DESIGN.md ablations) and prints them with the published
// values alongside.
//
// Usage:
//
//	fastbench                 # everything
//	fastbench -only table1    # table1, table2, table3, fig4 (includes fig5),
//	                          # fig6, analytic, bottleneck, ablations
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment (table1|table2|table3|fig4|fig6|analytic|bottleneck|ablations)")
	workers := flag.Int("workers", 0, "sim.Fleet workers for swept experiments (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	want := func(name string) bool { return *only == "" || *only == name }
	bar := func() {
		fmt.Println("\n" + string(make([]byte, 0)) + "────────────────────────────────────────────────────────")
	}

	if want("analytic") {
		fmt.Println(experiments.Analytical())
		bar()
	}
	if want("table1") {
		out, err := experiments.Table1()
		check(err)
		fmt.Println(out)
		bar()
	}
	if want("fig4") {
		rows, out, err := experiments.Figure4Workers(*workers)
		check(err)
		fmt.Println(out)
		fmt.Println(experiments.Figure5(rows))
		bar()
	}
	if want("fig6") {
		_, out, err := experiments.Figure6(2000, 400_000)
		check(err)
		fmt.Println(out)
		bar()
	}
	if want("table2") {
		fmt.Println(experiments.Table2())
		bar()
	}
	if want("table3") {
		out, err := experiments.Table3()
		check(err)
		fmt.Println(out)
		bar()
	}
	if want("bottleneck") {
		out, err := experiments.Bottleneck()
		check(err)
		fmt.Println(out)
		bar()
	}
	if want("ablations") {
		out, err := experiments.Ablations()
		check(err)
		fmt.Println(out)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fastbench:", err)
		os.Exit(1)
	}
}
