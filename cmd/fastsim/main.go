// fastsim runs one workload on the FAST simulator (or one of the baseline
// simulators) and prints the run statistics.
//
// Usage:
//
//	fastsim -list
//	fastsim -workload 164.gzip [-predictor gshare] [-max 250000]
//	fastsim -workload Linux-2.4 -parallel
//	fastsim -workload 176.gcc -simulator monolithic
//	fastsim -print-config
//	fastsim -print-kernel
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/fm"
	"repro/internal/fpga"
	"repro/internal/hostlink"
	"repro/internal/isa"
	"repro/internal/tm"
	"repro/internal/workload"
)

func main() {
	var (
		list        = flag.Bool("list", false, "list workloads")
		name        = flag.String("workload", "Linux-2.4", "workload name (see -list)")
		predictor   = flag.String("predictor", "gshare", "branch predictor: gshare, 2bit, 97%, 95%, perfect")
		maxInst     = flag.Uint64("max", 250_000, "maximum committed instructions (0 = to completion)")
		parallel    = flag.Bool("parallel", false, "run FM and TM in separate goroutines")
		simulator   = flag.String("simulator", "fast", "fast, monolithic, gems, lockstep")
		issueWidth  = flag.Int("issue", 2, "target issue width")
		link        = flag.String("link", "drc", "host link: drc, pins, coherent")
		printConfig = flag.Bool("print-config", false, "print the Figure 3 target configuration and exit")
		printKernel = flag.Bool("print-kernel", false, "print the generated toyOS kernel assembly and exit")
		disasm      = flag.Bool("disasm", false, "print the workload's kernel and user program disassembly and exit")
		console     = flag.Bool("console", false, "dump target console output")
		power       = flag.Bool("power", false, "print the relative power estimate (§6 extension)")
		traceN      = flag.Int("trace", 0, "dump the first N committed trace entries")
		connectors  = flag.Bool("connectors", false, "print Connector statistics")
	)
	flag.Parse()

	if *printConfig {
		cfg := tm.DefaultConfig().WithIssueWidth(*issueWidth)
		fmt.Print(cfg.Describe())
		fmt.Printf("\nFPGA footprint: %s\n", cfg.AreaReport(fpga.Virtex4LX200))
		return
	}
	if *list {
		for _, s := range append(workload.All(), workload.WindowsXP()) {
			fmt.Println(s.Name)
		}
		return
	}
	spec, ok := workload.ByName(*name)
	if !ok {
		fatal(fmt.Errorf("unknown workload %q (try -list)", *name))
	}
	if *printKernel {
		fmt.Print(workload.KernelSource(spec.Kernel))
		return
	}
	boot, err := spec.Build()
	if err != nil {
		fatal(err)
	}
	if *disasm {
		fmt.Println("; ---- toyOS kernel ----")
		fmt.Print(isa.DisassembleProgram(boot.Kernel))
		user, uerr := isa.Assemble(spec.UserAsm(), workload.UserVA)
		if uerr == nil {
			fmt.Println("; ---- user program ----")
			fmt.Print(isa.DisassembleProgram(user))
		}
		return
	}

	tmCfg := tm.DefaultConfig().WithIssueWidth(*issueWidth)
	tmCfg.Predictor = *predictor
	fmCfg := fm.Config{Devices: boot.Devices()}

	switch *simulator {
	case "monolithic", "gems":
		cost := baseline.SimOutorderCost()
		if *simulator == "gems" {
			cost = baseline.GEMSCost()
		}
		r, err := baseline.Monolithic{
			TM: tmCfg, FM: fmCfg, Cost: cost, Label: *simulator, MaxInstructions: *maxInst,
		}.Run(boot.Kernel)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
		return
	case "lockstep":
		r, err := baseline.Lockstep{
			TM: tmCfg, FM: fmCfg, Link: pickLink(*link),
			FunctionalNanosPerCycle: 50, FPGANanosPerCycle: 300,
			MaxInstructions: *maxInst,
		}.Run(boot.Kernel)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
		return
	case "fast":
	default:
		fatal(fmt.Errorf("unknown simulator %q", *simulator))
	}

	cfg := core.DefaultConfig()
	cfg.TM = tmCfg
	cfg.FM = fmCfg
	cfg.Link = pickLink(*link)
	cfg.MaxInstructions = *maxInst

	// -trace: dump the first N trace entries from a fresh functional run
	// of the same boot (the committed right path starts identically).
	if *traceN > 0 {
		tb, terr := spec.Build()
		if terr != nil {
			fatal(terr)
		}
		m := fm.New(fm.Config{Devices: tb.Devices()})
		m.LoadProgram(tb.Kernel)
		for i := 0; i < *traceN; i++ {
			e, ok := m.Step()
			if !ok {
				break
			}
			fmt.Println(" ", e)
		}
	}

	var powerModel *tm.PowerModel
	var result core.Result
	if *parallel {
		sim, err := core.NewParallel(cfg)
		if err != nil {
			fatal(err)
		}
		sim.LoadProgram(boot.Kernel)
		if result, err = sim.Run(); err != nil {
			fatal(err)
		}
		fmt.Printf("%v\n%s\n", result, sim.TM.Describe())
	} else {
		sim, err := core.New(cfg)
		if err != nil {
			fatal(err)
		}
		sim.LoadProgram(boot.Kernel)
		if *power {
			powerModel = sim.TM.AttachPower(tm.DefaultPowerWeights())
		}
		if result, err = sim.Run(); err != nil {
			fatal(err)
		}
		fmt.Printf("%v\n%s\n", result, sim.TM.Describe())
		if *connectors {
			fmt.Print(sim.TM.ConnectorReport())
		}
		if powerModel != nil {
			powerModel.Sample()
			fmt.Print(powerModel.Report())
		}
	}
	if *console {
		fmt.Printf("console: %q\n", boot.Console.Output())
	}
}

func pickLink(name string) hostlink.Config {
	switch name {
	case "pins":
		return hostlink.DRCPinRegisters()
	case "coherent":
		return hostlink.CoherentHT()
	default:
		return hostlink.DRC()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fastsim:", err)
	os.Exit(1)
}
