// fastsim runs one workload on any registered simulator engine and prints
// the run statistics. Engines resolve through the internal/sim registry:
// fast, fast-parallel, monolithic, gems, lockstep, fsbcache.
//
// Usage:
//
//	fastsim -list
//	fastsim -list-workloads
//	fastsim -engines
//	fastsim -workload nicserv -console
//	fastsim -workload logwrite -disk-latency 1000
//	fastsim -workload 164.gzip [-predictor gshare] [-max 250000]
//	fastsim -workload Linux-2.4 -parallel
//	fastsim -workload 176.gcc -simulator monolithic
//	fastsim -workload Linux-2.4 -metrics - -tracefile boot.trace.json
//	fastsim -workload 164.gzip -json
//	fastsim -print-config
//	fastsim -print-kernel
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/fm"
	"repro/internal/fpga"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/service/diskcache"
	"repro/internal/sim"
	"repro/internal/tm"
	"repro/internal/workload"
)

// captureOnly (-resume=false) keeps the capture path live while never
// resuming: every run boots cold and overwrites the stored snapshot.
type captureOnly struct{ sim.SnapshotStore }

func (captureOnly) GetSnapshot(string) (sim.Snapshot, bool) { return sim.Snapshot{}, false }

func main() {
	var (
		list        = flag.Bool("list", false, "list workload names")
		listLong    = flag.Bool("list-workloads", false, "list the workload registry with descriptions")
		engines     = flag.Bool("engines", false, "list registered simulator engines")
		name        = flag.String("workload", "Linux-2.4", "workload name (see -list)")
		predictor   = flag.String("predictor", "gshare", "branch predictor: gshare, 2bit, 97%, 95%, perfect")
		maxInst     = flag.Uint64("max", 250_000, "maximum committed instructions (0 = to completion)")
		parallel    = flag.Bool("parallel", false, "run FM and TM in separate goroutines (fast engine only)")
		simulator   = flag.String("simulator", "fast", "simulator engine (see -engines)")
		issueWidth  = flag.Int("issue", 2, "target issue width")
		cores       = flag.Int("cores", 1, "target core count (1 = the single-core target; >1 = N coupled FM/TM pairs over the modeled coherent interconnect, fast engine only)")
		hopLatency  = flag.Int("interconnect-latency", 0, "per-hop core↔L2 interconnect delay in target cycles (0 = default; only meaningful with -cores > 1)")
		diskLatency = flag.Int("disk-latency", 0, "disk device latency in target time units (0 = workload default; only meaningful for booted workloads)")
		link        = flag.String("link", "drc", "host link: drc, pins, coherent")
		traceChunk  = flag.Int("tracechunk", 0, "FM→TM trace-buffer publish granularity in entries (0 = default, 1 = per-entry; architectural results are identical for any value)")
		icacheEnt   = flag.Int("icache", fm.DefaultICacheEntries, "FM predecode-cache entries, rounded up to a power of two (0 = disable; architected results and modeled times are bit-identical at any value)")
		superblock  = flag.Int("superblock", fm.DefaultSuperblockLen, "FM superblock length cap (0 = disable; requires -icache > 0 and the journal rollback engine; architected results and modeled times are bit-identical at any value)")
		printConfig = flag.Bool("print-config", false, "print the Figure 3 target configuration and exit")
		printKernel = flag.Bool("print-kernel", false, "print the generated toyOS kernel assembly and exit")
		disasm      = flag.Bool("disasm", false, "print the workload's kernel and user program disassembly and exit")
		console     = flag.Bool("console", false, "dump target console output")
		power       = flag.Bool("power", false, "print the relative power estimate (§6 extension; serial fast engine only)")
		traceN      = flag.Int("trace", 0, "dump the first N committed trace entries")
		connectors  = flag.Bool("connectors", false, "print Connector statistics (serial fast engine only)")
		snapshotDir = flag.String("snapshot-dir", "", "disk directory for warm-start boot snapshots: capture at boot-complete, resume later runs sharing the boot prefix (empty = disabled)")
		resume      = flag.Bool("resume", true, "with -snapshot-dir: resume from a matching snapshot; false boots cold and (re)captures")
		metricsPath = flag.String("metrics", "", "write Prometheus-style metrics to this file after the run (\"-\" = stdout)")
		tracePath   = flag.String("tracefile", "", "write a Chrome trace_event JSON timeline to this file (open in chrome://tracing or ui.perfetto.dev)")
		jsonOut     = flag.Bool("json", false, "print the run result as one JSON object instead of text")
	)
	flag.Parse()

	if *printConfig {
		cfg := tm.DefaultConfig().WithIssueWidth(*issueWidth)
		fmt.Print(cfg.Describe())
		fmt.Printf("\nFPGA footprint: %s\n", cfg.AreaReport(fpga.Virtex4LX200))
		return
	}
	if *list || *listLong {
		for _, e := range workload.Registry() {
			if *listLong {
				fmt.Printf("%-14s %s\n", e.Name, e.Description)
			} else {
				fmt.Println(e.Name)
			}
		}
		return
	}
	if *engines {
		for _, n := range sim.Names() {
			eng, err := sim.New(n, sim.Params{Workload: "164.gzip"})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-14s %s\n", n, eng.Describe())
		}
		return
	}

	// Resolve the engine name through the registry before doing anything
	// else, so a typo fails with the valid names instead of a late error.
	engine := *simulator
	if !sim.Registered(engine) {
		fatal(fmt.Errorf("unknown simulator %q (registered: %s)",
			engine, strings.Join(sim.Names(), ", ")))
	}
	if *parallel {
		switch engine {
		case "fast":
			engine = "fast-parallel"
		case "fast-parallel":
		default:
			fatal(fmt.Errorf("-parallel selects the goroutine-parallel FAST coupling "+
				"and does not apply to -simulator %s", engine))
		}
	}
	// Reject instrumentation flags the selected engine cannot honour —
	// previously they were silently ignored.
	if *power && engine != "fast" {
		fatal(fmt.Errorf("-power requires the serial fast engine (the power model "+
			"attaches to the live timing model); -simulator %s cannot honour it", engine))
	}
	if *connectors && engine != "fast" {
		fatal(fmt.Errorf("-connectors requires the serial fast engine; "+
			"-simulator %s cannot honour it", engine))
	}

	spec, ok := workload.ByName(*name)
	if !ok {
		fatal(fmt.Errorf("unknown workload %q (try -list)", *name))
	}
	if *printKernel {
		fmt.Print(workload.KernelSource(spec.Kernel))
		return
	}
	if *disasm {
		boot, err := spec.Build()
		if err != nil {
			fatal(err)
		}
		fmt.Println("; ---- toyOS kernel ----")
		fmt.Print(isa.DisassembleProgram(boot.Kernel))
		user, uerr := isa.Assemble(spec.UserAsm(), workload.UserVA)
		if uerr == nil {
			fmt.Println("; ---- user program ----")
			fmt.Print(isa.DisassembleProgram(user))
		}
		return
	}

	// -trace: dump the first N trace entries from a fresh functional run
	// of the same boot (every engine commits the identical right path).
	if *traceN > 0 {
		tb, terr := spec.Build()
		if terr != nil {
			fatal(terr)
		}
		m := fm.New(fm.Config{Devices: tb.Devices()})
		m.LoadProgram(tb.Kernel)
		for i := 0; i < *traceN; i++ {
			e, ok := m.Step()
			if !ok {
				break
			}
			fmt.Println(" ", e)
		}
	}

	// Telemetry is built only when a flag asks for it, so the default run
	// keeps the nil-telemetry (near-free) instrumentation paths.
	var tel *obs.Telemetry
	switch {
	case *tracePath != "":
		tel = obs.NewWithTrace()
	case *metricsPath != "":
		tel = obs.New()
	}

	// -snapshot-dir attaches the warm-start tier: boot once, then every
	// later invocation sharing the boot prefix skips straight past boot.
	var snaps sim.SnapshotStore
	if *snapshotDir != "" {
		store, serr := diskcache.New(*snapshotDir, 0, nil)
		if serr != nil {
			fatal(fmt.Errorf("open snapshot dir: %w", serr))
		}
		snaps = service.NewSnapshotStore(store, nil)
		if !*resume {
			snaps = captureOnly{snaps}
		}
	}

	eng, err := sim.New(engine, sim.Params{
		Workload:            *name,
		Predictor:           *predictor,
		IssueWidth:          *issueWidth,
		Cores:               *cores,
		InterconnectLatency: *hopLatency,
		DiskLatency:         *diskLatency,
		Link:                *link,
		MaxInstructions:     *maxInst,
		TraceChunk:          *traceChunk,
		ICacheEntries:       *icacheEnt,
		SuperblockLen:       *superblock,
		Telemetry:           tel,
		Snapshots:           snaps,
	})
	if err != nil {
		fatal(err)
	}

	var powerModel *tm.PowerModel
	if *power {
		powerModel = eng.(sim.Coupled).TimingModel().AttachPower(tm.DefaultPowerWeights())
	}

	// ctrl-C cancels the run cooperatively; the partial result and any
	// requested metric/trace files still come out.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	result, err := eng.RunContext(ctx)
	writeTelemetry(tel, *metricsPath, *tracePath)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		if err := json.NewEncoder(os.Stdout).Encode(result); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Println(result)
	if ws, ok := eng.(sim.WarmStarted); ok {
		if in, resumed := ws.ResumedFrom(); resumed {
			fmt.Printf("warm-start: resumed from snapshot at instruction %d (boot skipped)\n", in)
		}
	}
	if c, ok := eng.(sim.Coupled); ok {
		fmt.Printf("fm: %.1fms ∥ tm: %.1fms  wrong-path: %d  rollbacks: %d\n",
			result.FMNanos/1e6, result.TMNanos/1e6, result.WrongPath, result.Rollbacks)
		fmt.Println(c.TimingModel().Describe())
	}
	if result.Cores > 1 {
		fmt.Printf("cores: %d  coherence: %d transfers, %d invalidations, %d hops\n",
			result.Cores, result.CoherenceTransfers, result.CoherenceInvalidations, result.CoherenceHops)
	}
	if sc, ok := eng.(sim.SoftwareComparison); ok {
		fmt.Printf("vs %v\n", sc.Software())
	}
	if *connectors {
		fmt.Print(eng.(sim.Coupled).TimingModel().ConnectorReport())
	}
	if powerModel != nil {
		powerModel.Sample()
		fmt.Print(powerModel.Report())
	}
	if *console {
		if booted, ok := eng.(sim.Booted); ok && booted.Boot() != nil {
			fmt.Printf("console: %q\n", booted.Boot().Console.Output())
		}
	}
}

// writeTelemetry flushes the run's metrics and timeline to the requested
// destinations ("-" = stdout for metrics; trace JSON always goes to a file).
func writeTelemetry(tel *obs.Telemetry, metricsPath, tracePath string) {
	if tel == nil {
		return
	}
	if metricsPath != "" {
		if metricsPath == "-" {
			tel.Metrics.WritePrometheus(os.Stdout)
		} else {
			f, err := os.Create(metricsPath)
			if err != nil {
				fatal(err)
			}
			tel.Metrics.WritePrometheus(f)
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fatal(err)
		}
		if err := tel.Trace.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fastsim:", err)
	os.Exit(1)
}
