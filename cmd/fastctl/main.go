// fastctl is the operator CLI of the fastd /v1 API, built on
// internal/service/client — the same typed client the cluster coordinator
// uses for node RPCs, so everything fastctl can do is exactly what the
// coordinator and any Go program can do.
//
// Usage:
//
//	fastctl [-addr http://127.0.0.1:8080] [-timeout 5m] <command> [flags]
//
//	submit       -engine fast [-params '{"workload":"164.gzip"}'] [-timeout-ms N] [-wait] [-id-only]
//	job          <id>
//	result       <id> [-wait]
//	cancel       <id>
//	sweep        -spec '<json>'|@file|@- [-timeout-ms N] [-wait] [-id-only]
//	sweep-status <id>
//	sweep-result <id> [-wait] [-results-only]
//	jobs         [-status S] [-limit N] [-after ID]
//	sweeps       [-status S] [-limit N] [-after ID]
//	snapshots
//	engines
//	health
//	metrics
//	cluster
//
// All output is JSON on stdout (result and sweep-result print the
// server's exact canonical bytes, suitable for byte-identical diffing);
// errors print the service's error envelope on stderr and exit 1.
// -addr defaults to $FASTD_ADDR when set.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/service"
	"repro/internal/service/client"
)

func main() {
	var (
		addr    = flag.String("addr", defaultAddr(), "fastd node or coordinator base URL (env FASTD_ADDR)")
		timeout = flag.Duration("timeout", 5*time.Minute, "overall deadline for this invocation, waits included")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	cli := client.New(*addr)
	if err := run(ctx, cli, flag.Arg(0), flag.Args()[1:]); err != nil {
		var ae *client.APIError
		if errors.As(err, &ae) {
			json.NewEncoder(os.Stderr).Encode(map[string]any{
				"code": ae.Code, "message": ae.Message, "http_status": ae.Status,
			})
		} else {
			fmt.Fprintf(os.Stderr, "fastctl: %v\n", err)
		}
		os.Exit(1)
	}
}

func defaultAddr() string {
	if a := os.Getenv("FASTD_ADDR"); a != "" {
		return a
	}
	return "http://127.0.0.1:8080"
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: fastctl [-addr URL] [-timeout D] <command> [flags]

commands:
  submit        submit one job        (-engine, -params, -timeout-ms, -wait, -id-only)
  job <id>      job status view
  result <id>   canonical result JSON (-wait blocks until terminal)
  cancel <id>   cancel a queued or running job
  sweep         submit a sweep spec   (-spec JSON|@file|@-, -timeout-ms, -wait, -id-only)
  sweep-status <id>
  sweep-result <id>                   (-wait, -results-only)
  jobs          list jobs, newest first   (-status, -limit, -after)
  sweeps        list sweeps, newest first (-status, -limit, -after)
  snapshots     warm-start snapshot index (prefix, instructions, bytes)
  engines       engine registry
  workloads     workload registry (names params.workload accepts)
  health        node liveness + queue depth
  metrics       Prometheus dump
  cluster       coordinator topology (coordinator nodes only)
`)
}

// print emits v as one JSON object on stdout.
func print(v any) error {
	enc := json.NewEncoder(os.Stdout)
	return enc.Encode(v)
}

// printRaw emits exact server bytes plus the newline framing the server
// itself uses, preserving byte-identical replay through the CLI.
func printRaw(raw []byte) error {
	_, err := os.Stdout.Write(append(raw, '\n'))
	return err
}

func run(ctx context.Context, cli *client.Client, cmd string, args []string) error {
	switch cmd {
	case "submit":
		fs := flag.NewFlagSet("submit", flag.ExitOnError)
		engine := fs.String("engine", "fast", "engine registry name")
		params := fs.String("params", "{}", "sim.Params JSON overlay")
		timeoutMS := fs.Int64("timeout-ms", 0, "per-job deadline (0 = server default)")
		wait := fs.Bool("wait", false, "block until the result is ready and print it")
		idOnly := fs.Bool("id-only", false, "print only the job id")
		fs.Parse(args)
		v, err := cli.SubmitJob(ctx, *engine, json.RawMessage(*params), time.Duration(*timeoutMS)*time.Millisecond)
		if err != nil {
			return err
		}
		if *wait {
			raw, err := cli.WaitResult(ctx, v.ID)
			if err != nil {
				return err
			}
			return printRaw(raw)
		}
		if *idOnly {
			fmt.Println(v.ID)
			return nil
		}
		return print(v)

	case "job":
		id, err := oneArg("job", args)
		if err != nil {
			return err
		}
		v, err := cli.Job(ctx, id)
		if err != nil {
			return err
		}
		return print(v)

	case "result":
		fs := flag.NewFlagSet("result", flag.ExitOnError)
		wait := fs.Bool("wait", false, "block until the job is terminal")
		id, err := idThenFlags(fs, "result", args)
		if err != nil {
			return err
		}
		if *wait {
			raw, err := cli.WaitResult(ctx, id)
			if err != nil {
				return err
			}
			return printRaw(raw)
		}
		raw, ok, err := cli.JobResult(ctx, id)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("job %s still pending (use -wait)", id)
		}
		return printRaw(raw)

	case "cancel":
		id, err := oneArg("cancel", args)
		if err != nil {
			return err
		}
		v, err := cli.Cancel(ctx, id)
		if err != nil {
			return err
		}
		return print(v)

	case "sweep":
		fs := flag.NewFlagSet("sweep", flag.ExitOnError)
		spec := fs.String("spec", "", "sweep spec JSON, @file, or @- for stdin")
		timeoutMS := fs.Int64("timeout-ms", 0, "per-child deadline (0 = server default)")
		wait := fs.Bool("wait", false, "block until every child is terminal and print the aggregation")
		idOnly := fs.Bool("id-only", false, "print only the sweep id")
		fs.Parse(args)
		raw, err := loadSpec(*spec)
		if err != nil {
			return err
		}
		v, err := cli.SubmitSweepRaw(ctx, raw, time.Duration(*timeoutMS)*time.Millisecond)
		if err != nil {
			return err
		}
		if *wait {
			_, agg, err := cli.WaitSweepResult(ctx, v.ID)
			if err != nil {
				return err
			}
			return printRaw(agg)
		}
		if *idOnly {
			fmt.Println(v.ID)
			return nil
		}
		return print(v)

	case "sweep-status":
		id, err := oneArg("sweep-status", args)
		if err != nil {
			return err
		}
		v, err := cli.Sweep(ctx, id)
		if err != nil {
			return err
		}
		return print(v)

	case "sweep-result":
		fs := flag.NewFlagSet("sweep-result", flag.ExitOnError)
		wait := fs.Bool("wait", false, "block until every child is terminal")
		resultsOnly := fs.Bool("results-only", false, "print each child's result bytes, one per line (failed children print their error)")
		id, err := idThenFlags(fs, "sweep-result", args)
		if err != nil {
			return err
		}
		var agg json.RawMessage
		var decoded service.SweepResults
		if *wait {
			out, raw, err := cli.WaitSweepResult(ctx, id)
			if err != nil {
				return err
			}
			agg, decoded = raw, out
		} else {
			out, raw, ok, err := cli.SweepResult(ctx, id)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("sweep %s still running (use -wait)", id)
			}
			agg, decoded = raw, out
		}
		if *resultsOnly {
			// One line per spec-order child: the exact result bytes, or an
			// error object for failed children. Ids and cache flags are
			// excluded, so the output is stable across cache state and
			// across single-node vs coordinator runs.
			for _, cr := range decoded.Results {
				if cr.Error != "" {
					if err := print(map[string]string{"error": cr.Error}); err != nil {
						return err
					}
					continue
				}
				if err := printRaw(cr.Result); err != nil {
					return err
				}
			}
			return nil
		}
		return printRaw(agg)

	case "jobs", "sweeps":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		status := fs.String("status", "", "filter to one state")
		limit := fs.Int("limit", 0, "page size (0 = server default)")
		after := fs.String("after", "", "cursor: entries strictly older than this id")
		fs.Parse(args)
		if cmd == "jobs" {
			v, err := cli.ListJobs(ctx, *status, *limit, *after)
			if err != nil {
				return err
			}
			return print(v)
		}
		v, err := cli.ListSweeps(ctx, *status, *limit, *after)
		if err != nil {
			return err
		}
		return print(v)

	case "snapshots":
		v, err := cli.Snapshots(ctx)
		if err != nil {
			return err
		}
		return print(v)

	case "engines":
		v, err := cli.Engines(ctx)
		if err != nil {
			return err
		}
		return print(v)

	case "workloads":
		v, err := cli.Workloads(ctx)
		if err != nil {
			return err
		}
		return print(v)

	case "health":
		v, err := cli.Health(ctx)
		if err != nil {
			return err
		}
		return print(v)

	case "metrics":
		raw, err := cli.Metrics(ctx)
		if err != nil {
			return err
		}
		_, werr := os.Stdout.Write(raw)
		return werr

	case "cluster":
		raw, err := cli.ClusterView(ctx)
		if err != nil {
			return err
		}
		return printRaw(raw)

	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// oneArg expects exactly one positional argument (an id).
func oneArg(cmd string, args []string) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("usage: fastctl %s <id>", cmd)
	}
	return args[0], nil
}

// idThenFlags parses "<id> [flags]" (flags may also precede the id).
func idThenFlags(fs *flag.FlagSet, cmd string, args []string) (string, error) {
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		fs.Parse(args[1:])
		return args[0], nil
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		return "", fmt.Errorf("usage: fastctl %s <id> [flags]", cmd)
	}
	return fs.Arg(0), nil
}

// loadSpec resolves -spec: inline JSON, @file, or @- for stdin.
func loadSpec(spec string) (json.RawMessage, error) {
	if spec == "" {
		return nil, fmt.Errorf("sweep: -spec is required")
	}
	if spec[0] != '@' {
		return json.RawMessage(spec), nil
	}
	if spec == "@-" {
		raw, err := io.ReadAll(os.Stdin)
		return json.RawMessage(raw), err
	}
	raw, err := os.ReadFile(spec[1:])
	return json.RawMessage(raw), err
}
