// benchgate turns `go test -bench -json` output into a stable bench.json
// and gates pull requests on wall-time regressions against a committed
// baseline. Two modes:
//
//	go test -bench=. -benchtime=1x -count=3 -json | benchgate -emit bench.json
//	benchgate -compare -baseline BENCH_baseline.json -current bench.json
//
// When the input carries repeated runs of a benchmark (`-count=N`), emit
// keeps the per-benchmark MINIMUM ns/op — the run least disturbed by the
// host — and records how many runs were folded in `runs`. Comparing minima
// instead of single samples is what keeps the gate stable on shared CI
// runners: one noisy stroke can inflate a single sample by far more than
// the threshold, but it cannot deflate the minimum.
//
// Compare fails (exit 1) when any benchmark present in both files is slower
// than baseline by more than -threshold (fractional, default 0.15). Very
// short benchmarks are exempt via -floor: with -benchtime=1x a
// microsecond-scale run is all scheduler noise, and gating on it would make
// the job flap.
//
// benchgate is stdlib-only so the CI job needs nothing but the Go
// toolchain.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Bench is one benchmark result. Metrics holds every per-op value the
// benchmark reported (ns/op, B/op, allocs/op, and custom units like
// speedup-x), keyed by unit.
type Bench struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
	// Runs counts the `-count` repetitions folded into this entry (emit
	// keeps the fastest); 0/absent means a single run (pre-aggregation
	// files).
	Runs int `json:"runs,omitempty"`
}

// File is the bench.json schema.
type File struct {
	Benchmarks []Bench `json:"benchmarks"`
}

// testEvent is the subset of test2json's event schema benchgate needs.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

// benchLine matches "BenchmarkName-8   	       1	123456 ns/op	..." —
// the result line `go test -bench` prints per benchmark.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

func main() {
	emit := flag.String("emit", "", "parse `go test -bench -json` on stdin and write bench.json to this path (\"-\" = stdout)")
	compare := flag.Bool("compare", false, "compare -current against -baseline and exit non-zero on regression")
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed baseline bench.json (compare mode)")
	current := flag.String("current", "bench.json", "freshly emitted bench.json (compare mode)")
	threshold := flag.Float64("threshold", 0.15, "allowed fractional wall-time regression per benchmark")
	floor := flag.Float64("floor", 1e6, "ignore benchmarks whose baseline ns/op is below this (single-iteration noise)")
	flag.Parse()

	switch {
	case *emit != "":
		if err := emitMode(*emit); err != nil {
			fatal(err)
		}
	case *compare:
		if err := compareMode(*baseline, *current, *threshold, *floor); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func emitMode(path string) error {
	benches, err := parseStream()
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("benchgate: no benchmark results on stdin (pipe `go test -bench -json` output)")
	}
	benches = foldRuns(benches)
	sort.Slice(benches, func(i, j int) bool { return benches[i].Name < benches[j].Name })
	out, err := json.MarshalIndent(File{Benchmarks: benches}, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// parseStream reads test2json events (or, as a fallback, raw `go test
// -bench` text) from stdin and collects the benchmark result lines.
//
// test2json emits one event per *write*, not per line: a slow benchmark
// flushes its padded name ("BenchmarkX   \t") before running and the
// measurements afterwards, so a single result line can arrive split across
// events — possibly interleaved with other packages' output. Partial lines
// are therefore buffered per (Package, Test) until their newline arrives.
func parseStream() ([]Bench, error) {
	var benches []Bench
	partial := map[string]string{}
	emit := func(line string) {
		if b, ok := parseBenchLine(strings.TrimSpace(line)); ok {
			benches = append(benches, b)
		}
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "{") {
			emit(line) // raw `go test -bench` text fallback
			continue
		}
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			continue // tolerate interleaved non-JSON noise
		}
		if ev.Action != "output" {
			continue
		}
		key := ev.Package + "\x00" + ev.Test
		s := partial[key] + ev.Output
		for {
			i := strings.IndexByte(s, '\n')
			if i < 0 {
				break
			}
			emit(s[:i])
			s = s[i+1:]
		}
		partial[key] = s
	}
	return benches, sc.Err()
}

// foldRuns collapses `-count=N` repetitions of the same benchmark into one
// entry holding the minimum-ns/op run (noise only ever adds time), with
// Runs recording how many samples were folded. First-appearance order is
// preserved; single-run input passes through with Runs == 1.
func foldRuns(benches []Bench) []Bench {
	index := map[string]int{}
	var out []Bench
	for _, b := range benches {
		b.Runs = 1
		i, seen := index[b.Name]
		if !seen {
			index[b.Name] = len(out)
			out = append(out, b)
			continue
		}
		if b.NsPerOp < out[i].NsPerOp {
			b.Runs = out[i].Runs + 1
			out[i] = b
		} else {
			out[i].Runs++
		}
	}
	return out
}

func parseBenchLine(line string) (Bench, bool) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return Bench{}, false
	}
	iters, err := strconv.ParseInt(m[2], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
	// The tail is value/unit pairs: "123456 ns/op  98 B/op  7 allocs/op".
	fields := strings.Fields(m[3])
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, false
		}
		unit := fields[i+1]
		b.Metrics[unit] = v
		if unit == "ns/op" {
			b.NsPerOp = v
		}
	}
	if b.NsPerOp == 0 {
		return Bench{}, false
	}
	return b, true
}

func compareMode(basePath, curPath string, threshold, floor float64) error {
	base, err := load(basePath)
	if err != nil {
		return err
	}
	cur, err := load(curPath)
	if err != nil {
		return err
	}
	curByName := map[string]Bench{}
	for _, b := range cur.Benchmarks {
		curByName[b.Name] = b
	}
	var failed bool
	for _, old := range base.Benchmarks {
		now, ok := curByName[old.Name]
		if !ok {
			fmt.Printf("MISSING  %-40s (in baseline, not in current run)\n", old.Name)
			failed = true
			continue
		}
		ratio := now.NsPerOp / old.NsPerOp
		verdict := "ok"
		switch {
		case old.NsPerOp < floor:
			verdict = "skip (below noise floor)"
		case ratio > 1+threshold:
			verdict = fmt.Sprintf("REGRESSION (> +%.0f%%)", threshold*100)
			failed = true
		case ratio < 1-threshold:
			verdict = "improved — consider refreshing the baseline"
		}
		fmt.Printf("%-42s %12.0f -> %12.0f ns/op  %+6.1f%%  %s\n",
			old.Name, old.NsPerOp, now.NsPerOp, (ratio-1)*100, verdict)
	}
	if failed {
		return fmt.Errorf("benchgate: wall-time regression against %s (threshold ±%.0f%%)", basePath, threshold*100)
	}
	fmt.Printf("benchgate: %d benchmarks within ±%.0f%% of %s\n", len(base.Benchmarks), threshold*100, basePath)
	return nil
}

func load(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
