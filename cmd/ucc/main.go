// ucc drives the microcode compiler (§4.3): it prints the generated
// microcode table, or compiles a µC specification given on the command
// line.
//
// Usage:
//
//	ucc                         # dump the full table (source kind per entry)
//	ucc -spec 'rd = rd + rs; cc(rd)'
//	ucc -op ldw                 # show one opcode's entry
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/isa"
	"repro/internal/microcode"
)

func main() {
	spec := flag.String("spec", "", "compile a µC specification and print its µops")
	op := flag.String("op", "", "print the microcode table entry for one mnemonic")
	flag.Parse()

	switch {
	case *spec != "":
		ops, err := microcode.Compile(*spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ucc:", err)
			os.Exit(1)
		}
		for _, u := range ops {
			fmt.Println(" ", u)
		}
	case *op != "":
		code, ok := isa.ByName(*op)
		if !ok {
			fmt.Fprintf(os.Stderr, "ucc: unknown mnemonic %q\n", *op)
			os.Exit(1)
		}
		e := microcode.NewTable().Entry(code)
		fmt.Printf("%s [%s, valid=%v]\n", *op, e.Source, e.Valid)
		for _, u := range e.Template {
			fmt.Println(" ", u)
		}
	default:
		fmt.Print(microcode.NewTable().Listing())
	}
}
