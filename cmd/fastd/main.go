// fastd is the simulation-as-a-service daemon: an HTTP job server over the
// internal/sim engine registry with a bounded queue, a worker pool and a
// content-addressed result cache (see internal/service for the API).
//
// Usage:
//
//	fastd -addr :8080 -workers 4 -queue 64 -cache 256 -timeout 10m
//
//	# submit a job, read its result, watch the cache work
//	curl -s localhost:8080/v1/jobs -d '{"engine":"fast","params":{"workload":"164.gzip","max_instructions":50000}}'
//	curl -s localhost:8080/v1/jobs/job-000001/result
//	curl -s localhost:8080/metrics | grep service_
//
// SIGINT/SIGTERM drains gracefully: the listener stops accepting, queued
// and in-flight jobs finish (bounded by -drain), and the final metrics
// dump is written before exit.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "simulation worker-pool size (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 64, "bounded job-queue depth (full queue answers 429)")
		cache   = flag.Int("cache", 256, "content-addressed result-cache entries (negative = disable)")
		timeout = flag.Duration("timeout", 10*time.Minute, "default per-job deadline (overridable per request via timeout_ms)")
		drain   = flag.Duration("drain", 30*time.Second, "graceful-drain budget on SIGTERM before in-flight jobs are cancelled")
		dump    = flag.String("metrics-dump", "", "write the final Prometheus metrics dump to this file on exit (\"-\" = stderr)")
	)
	flag.Parse()
	log.SetPrefix("fastd: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	tel := obs.New()
	srv := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		DefaultTimeout: *timeout,
		Telemetry:      tel,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s (workers=%d queue=%d cache=%d timeout=%s)",
		*addr, *workers, *queue, *cache, *timeout)

	select {
	case err := <-errc:
		log.Fatalf("listen: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of draining

	log.Printf("signal received, draining (budget %s)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("drain expired, in-flight jobs cancelled: %v", err)
	} else {
		log.Printf("drained cleanly")
	}
	if err := flushMetrics(tel, *dump); err != nil {
		log.Printf("metrics dump: %v", err)
	}
}

// flushMetrics writes the server-wide registry on the way out, so a
// scrapeless deployment still gets its final counters.
func flushMetrics(tel *obs.Telemetry, dump string) error {
	if dump == "" {
		return nil
	}
	if dump == "-" {
		return tel.Metrics.WritePrometheus(os.Stderr)
	}
	f, err := os.Create(dump)
	if err != nil {
		return err
	}
	werr := tel.Metrics.WritePrometheus(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
