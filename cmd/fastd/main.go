// fastd is the simulation-as-a-service daemon: an HTTP job server over the
// internal/sim engine registry with a bounded queue, a worker pool and a
// content-addressed result cache (see internal/service for the API), which
// can persist across restarts (-cache-dir) and scale out into a sharded
// cluster (-coordinator, see internal/cluster).
//
// Worker / single-node mode:
//
//	fastd -addr :8080 -workers 4 -queue 64 -cache 256 -timeout 10m \
//	      -cache-dir /var/lib/fastd/cache -cache-bytes 1073741824
//
// Warm-start is on by default: boot snapshots are captured at
// boot-complete and resumed for any later run sharing the boot prefix,
// stored alongside results in -cache-dir (or a dedicated -snapshot-dir).
// -resume=false boots every run cold. -pprof-addr serves net/http/pprof
// on a separate listener for profiling (off by default).
//
//	fastctl submit -engine fast -params '{"workload":"164.gzip"}' -wait
//
// Coordinator mode (shards the same /v1 API across worker nodes by
// result-cache key; no local simulation):
//
//	fastd -coordinator -addr :9090 -nodes http://h1:8080,http://h2:8080
//
// SIGINT/SIGTERM drains gracefully: the listener stops accepting, queued
// and in-flight jobs finish (bounded by -drain), and the final metrics
// dump is written before exit.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof" // handlers on DefaultServeMux, exposed only via -pprof-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/service/diskcache"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "simulation worker-pool size (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 64, "bounded job-queue depth (full queue answers 429)")
		cache   = flag.Int("cache", 256, "content-addressed result-cache entries (negative = disable)")
		timeout = flag.Duration("timeout", 10*time.Minute, "default per-job deadline (overridable per request via timeout_ms)")
		drain   = flag.Duration("drain", 30*time.Second, "graceful-drain budget on SIGTERM before in-flight jobs are cancelled")
		dump    = flag.String("metrics-dump", "", "write the final Prometheus metrics dump to this file on exit (\"-\" = stderr)")

		cacheDir   = flag.String("cache-dir", "", "disk-backed result store directory (empty = memory only); survives restarts, shareable between nodes")
		cacheBytes = flag.Int64("cache-bytes", 0, "disk store size budget in bytes (0 = unbounded), LRU-evicted")

		snapshotDir = flag.String("snapshot-dir", "", "disk directory for warm-start boot snapshots (empty = share -cache-dir, or memory only without one)")
		resume      = flag.Bool("resume", true, "warm-start runs from boot snapshots when one matches; false boots every run cold")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")

		coordinator   = flag.Bool("coordinator", false, "run as a cluster coordinator instead of a worker (requires -nodes)")
		nodes         = flag.String("nodes", "", "comma-separated worker base URLs (coordinator mode)")
		probeInterval = flag.Duration("probe-interval", time.Second, "coordinator health-probe interval")
		stealAfter    = flag.Duration("steal-after", 3*time.Second, "coordinator: steal sweep children still queued after this long")
	)
	flag.Parse()
	log.SetPrefix("fastd: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	tel := obs.New()
	if *pprofAddr != "" {
		// The DefaultServeMux carries the pprof handlers via the blank
		// import; a dedicated listener keeps them off the public API port.
		go func() {
			log.Printf("pprof on %s", *pprofAddr)
			log.Printf("pprof: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
	}
	if *coordinator {
		runCoordinator(tel, *addr, *nodes, *probeInterval, *stealAfter, *drain, *dump)
		return
	}

	cfg := service.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheEntries:     *cache,
		DefaultTimeout:   *timeout,
		Telemetry:        tel,
		DisableWarmStart: !*resume,
	}
	if *cacheDir != "" {
		store, err := diskcache.New(*cacheDir, *cacheBytes, tel)
		if err != nil {
			log.Fatalf("open disk cache %s: %v", *cacheDir, err)
		}
		cfg.Store = store
		log.Printf("disk cache at %s (%d blobs, %d bytes resident)", *cacheDir, store.Len(), store.Bytes())
	}
	// A dedicated snapshot directory splits the warm-start tier from the
	// result store; without one, snapshots ride cfg.Store (if any).
	if *snapshotDir != "" && *resume {
		snaps, err := diskcache.New(*snapshotDir, 0, tel)
		if err != nil {
			log.Fatalf("open snapshot store %s: %v", *snapshotDir, err)
		}
		cfg.Snapshots = snaps
		log.Printf("snapshot store at %s (%d blobs, %d bytes resident)", *snapshotDir, snaps.Len(), snaps.Bytes())
	}
	srv := service.New(cfg)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s (workers=%d queue=%d cache=%d timeout=%s)",
		*addr, *workers, *queue, *cache, *timeout)

	select {
	case err := <-errc:
		log.Fatalf("listen: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of draining

	log.Printf("signal received, draining (budget %s)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("drain expired, in-flight jobs cancelled: %v", err)
	} else {
		log.Printf("drained cleanly")
	}
	if err := flushMetrics(tel, *dump); err != nil {
		log.Printf("metrics dump: %v", err)
	}
}

// runCoordinator is the -coordinator main: same signal handling, but the
// work being drained lives on the nodes — shutdown here only stops the
// listener and the prober.
func runCoordinator(tel *obs.Telemetry, addr, nodes string, probeInterval, stealAfter, drain time.Duration, dump string) {
	var nodeList []string
	for _, n := range strings.Split(nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodeList = append(nodeList, n)
		}
	}
	coord, err := cluster.New(cluster.Config{
		Nodes:         nodeList,
		ProbeInterval: probeInterval,
		StealAfter:    stealAfter,
		Telemetry:     tel,
	})
	if err != nil {
		log.Fatalf("coordinator: %v", err)
	}
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           coord.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("coordinating %d nodes on %s (probe=%s steal-after=%s): %s",
		len(nodeList), addr, probeInterval, stealAfter, strings.Join(nodeList, ", "))

	select {
	case err := <-errc:
		log.Fatalf("listen: %v", err)
	case <-ctx.Done():
	}
	stop()

	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	coord.Close()
	if err := flushMetrics(tel, dump); err != nil {
		log.Printf("metrics dump: %v", err)
	}
}

// flushMetrics writes the server-wide registry on the way out, so a
// scrapeless deployment still gets its final counters.
func flushMetrics(tel *obs.Telemetry, dump string) error {
	if dump == "" {
		return nil
	}
	if dump == "-" {
		return tel.Metrics.WritePrometheus(os.Stderr)
	}
	f, err := os.Create(dump)
	if err != nil {
		return err
	}
	werr := tel.Metrics.WritePrometheus(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
