// Package repro is a from-scratch Go reproduction of "FPGA-Accelerated
// Simulation Technologies (FAST): Fast, Full-System, Cycle-Accurate
// Simulators" (Chiou et al., MICRO 2007).
//
// The library lives under internal/: the speculative functional model
// (internal/fm), the cycle-accurate timing model (internal/tm), the trace
// buffer coupling them (internal/trace), the FAST simulator proper
// (internal/core), the full-system substrate (internal/fullsys +
// internal/workload), the host platform models (internal/fpga,
// internal/hostlink), the comparison simulators (internal/baseline) and the
// evaluation harness (internal/experiments). See README.md, DESIGN.md and
// EXPERIMENTS.md.
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation:
//
//	go test -bench=. -benchtime=1x
package repro
