// Bootstats reproduces Figure 6 interactively: boot toyOS ("Linux-2.4")
// on the coupled FAST simulator with the hardware statistics fabric
// sampling every N basic blocks, and render the iCache / branch-prediction
// / pipe-drain phases of the boot.
//
// The engine comes from the internal/sim registry; its two-phase
// Configure/Run lifecycle is what lets the sampler and the run-time query
// probe attach to the live timing model before execution.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	interval := flag.Uint64("interval", 2000, "basic blocks per sample window")
	maxInst := flag.Uint64("max", 400_000, "instruction budget")
	flag.Parse()

	eng, err := sim.New("fast", sim.Params{
		Workload:        "Linux-2.4",
		MaxInstructions: *maxInst,
	})
	if err != nil {
		log.Fatal(err)
	}
	coupled := eng.(sim.Coupled)
	tmodel := coupled.TimingModel()

	sampler := stats.NewSampler(tmodel, *interval)
	query := &stats.Query{Below: 1} // §3's example run-time query
	probe := query.Probe()
	tmodel.Probe = func(cycle uint64, issued int) {
		probe(cycle, issued)
		sampler.Poll()
	}

	if _, err := eng.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 6 — statistics trace while booting toyOS")
	fmt.Println("(watch the phases: branchy BIOS, flat decompression, then the")
	fmt.Println(" kernel+init mix with lower BP accuracy and more pipe drains)")
	fmt.Println()
	fmt.Print(sampler.Render())
	fmt.Printf("\nconsole: %q\n", eng.(sim.Booted).Boot().Console.Output())
	fmt.Printf("\nrun-time query \"active FUs < 1\": first at cycle %d, %d cycles total (%.1f%%)\n",
		query.FirstCycle, query.Count, 100*float64(query.Count)/float64(tmodel.Stats.Cycles))
}
