// Bootstats reproduces Figure 6 interactively: boot toyOS ("Linux-2.4")
// on the coupled FAST simulator with the hardware statistics fabric
// sampling every N basic blocks, and render the iCache / branch-prediction
// / pipe-drain phases of the boot.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	interval := flag.Uint64("interval", 2000, "basic blocks per sample window")
	maxInst := flag.Uint64("max", 400_000, "instruction budget")
	flag.Parse()

	spec, _ := workload.ByName("Linux-2.4")
	boot, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.FM.Devices = boot.Devices()
	cfg.MaxInstructions = *maxInst
	sim, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sim.LoadProgram(boot.Kernel)

	sampler := stats.NewSampler(sim.TM, *interval)
	query := &stats.Query{Below: 1} // §3's example run-time query
	probe := query.Probe()
	sim.TM.Probe = func(cycle uint64, issued int) {
		probe(cycle, issued)
		sampler.Poll()
	}

	if _, err := sim.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 6 — statistics trace while booting toyOS")
	fmt.Println("(watch the phases: branchy BIOS, flat decompression, then the")
	fmt.Println(" kernel+init mix with lower BP accuracy and more pipe drains)")
	fmt.Println()
	fmt.Print(sampler.Render())
	fmt.Printf("\nconsole: %q\n", boot.Console.Output())
	fmt.Printf("\nrun-time query \"active FUs < 1\": first at cycle %d, %d cycles total (%.1f%%)\n",
		query.FirstCycle, query.Count, 100*float64(query.Count)/float64(sim.TM.Stats.Cycles))
}
