// Designspace demonstrates §4's configurability claim: "By specifying
// parameters to a Connector, one can ... reconfigure a target from a single
// issue machine to a multi-issue machine ... Using such a scheme, one can
// quickly and easily explore a wide range of microarchitectures."
//
// It sweeps issue width × branch predictor on one workload through the
// internal/sim engine registry and prints target IPC, simulation speed and
// the FPGA footprint of each point. (The per-point power model is the one
// piece of instrumentation that needs the live engine, which is why this
// drives sim.New directly rather than a sim.Fleet.)
package main

import (
	"fmt"
	"log"

	"repro/internal/fpga"
	"repro/internal/sim"
	"repro/internal/tm"
)

func main() {
	const app = "176.gcc"
	fmt.Printf("design-space sweep on %s (%d-point grid)\n\n", app, 4*3)
	fmt.Printf("%-6s %-9s %8s %8s %10s %10s %8s %10s\n",
		"issue", "predictor", "IPC", "MIPS", "cycles", "logic%", "BRAM%", "energy/in")

	for _, width := range []int{1, 2, 4, 8} {
		for _, pred := range []string{"2bit", "gshare", "perfect"} {
			eng, err := sim.New("fast", sim.Params{
				Workload:        app,
				Predictor:       pred,
				IssueWidth:      width,
				MaxInstructions: 60_000,
			})
			if err != nil {
				log.Fatal(err)
			}
			power := eng.(sim.Coupled).TimingModel().AttachPower(tm.DefaultPowerWeights())
			r, err := eng.Run()
			if err != nil {
				log.Fatal(err)
			}
			power.Sample()
			area := tm.DefaultConfig().WithIssueWidth(width).Area()
			dev := fpga.Virtex4LX200
			fmt.Printf("%-6d %-9s %8.3f %8.2f %10d %9.2f%% %7.1f%% %10.2f\n",
				width, pred, r.IPC, r.TargetMIPS, r.TargetCycles,
				100*dev.LogicFraction(area), 100*dev.BRAMFraction(area),
				power.EnergyPerInstruction())
		}
	}
	fmt.Println("\nNote Table 2's effect: the footprint is flat across issue widths —")
	fmt.Println("capacity lives in block RAMs folded over multiple host cycles (§3.3).")
}
