// Designspace demonstrates §4's configurability claim: "By specifying
// parameters to a Connector, one can ... reconfigure a target from a single
// issue machine to a multi-issue machine ... Using such a scheme, one can
// quickly and easily explore a wide range of microarchitectures."
//
// It sweeps issue width × branch predictor on one workload and prints
// target IPC, simulation speed and the FPGA footprint of each point.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fpga"
	"repro/internal/tm"
	"repro/internal/workload"
)

func main() {
	spec, _ := workload.ByName("176.gcc")
	fmt.Printf("design-space sweep on %s (%d-point grid)\n\n", spec.Name, 4*3)
	fmt.Printf("%-6s %-9s %8s %8s %10s %10s %8s %10s\n",
		"issue", "predictor", "IPC", "MIPS", "cycles", "logic%", "BRAM%", "energy/in")

	for _, width := range []int{1, 2, 4, 8} {
		for _, pred := range []string{"2bit", "gshare", "perfect"} {
			boot, err := spec.Build()
			if err != nil {
				log.Fatal(err)
			}
			cfg := core.DefaultConfig()
			cfg.TM = cfg.TM.WithIssueWidth(width)
			cfg.TM.Predictor = pred
			cfg.FM.Devices = boot.Devices()
			cfg.MaxInstructions = 60_000
			sim, err := core.New(cfg)
			if err != nil {
				log.Fatal(err)
			}
			sim.LoadProgram(boot.Kernel)
			power := sim.TM.AttachPower(tm.DefaultPowerWeights())
			r, err := sim.Run()
			if err != nil {
				log.Fatal(err)
			}
			power.Sample()
			area := cfg.TM.Area()
			dev := fpga.Virtex4LX200
			fmt.Printf("%-6d %-9s %8.3f %8.2f %10d %9.2f%% %7.1f%% %10.2f\n",
				width, pred, r.IPC, r.TargetMIPS, r.TargetCycles,
				100*dev.LogicFraction(area), 100*dev.BRAMFraction(area),
				power.EnergyPerInstruction())
		}
	}
	fmt.Println("\nNote Table 2's effect: the footprint is flat across issue widths —")
	fmt.Println("capacity lives in block RAMs folded over multiple host cycles (§3.3).")
}
