// Mispredict walks through Figure 2 of the paper: the timing model
// mis-speculates a branch, re-steers the speculative functional model down
// the wrong path with set_pc, lets it overwrite the trace buffer with
// wrong-path instructions, then resolves the branch and re-steers it back —
// and the rolled-back state is bit-identical to never having speculated.
package main

import (
	"fmt"
	"log"

	"repro/internal/fm"
	"repro/internal/isa"
	"repro/internal/trace"
)

// The Figure 2 program shape: a branch (I2) that the target mis-speculates.
const program = `
	; I1: R0 = R0 + R2        (Figure 2's instruction 1)
	; I2: BRz L1              (the mis-speculated branch)
	; I3: R0 = R0 + R3        (fall-through path)
	; I4: L1: R0 = R0 + R4    (taken path)
	movi r0, 10
	movi r2, 1
	movi r3, 100
	movi r4, 1000
	add  r0, r2      ; I1
	jz   L1          ; I2: not zero, so NOT taken architecturally
	add  r0, r3      ; I3 (right path)
	jmp  done
L1:	add  r0, r4      ; I4 (what a taken mis-speculation would run)
done:	cli
	halt
`

func main() {
	prog, err := isa.Assemble(program, 0x1000)
	if err != nil {
		log.Fatal(err)
	}
	model := fm.New(fm.Config{DisableInterrupts: true})
	model.LoadProgram(prog)
	tb := trace.NewBuffer(32)

	produce := func(n int) {
		for i := 0; i < n; i++ {
			e, ok := model.Step()
			if !ok {
				return
			}
			tb.TryPush(e)
			star := ""
			if model.JournalLen() > 0 && e.IN >= 5 && model.Rollbacks > 0 && model.Rollbacks%2 == 1 {
				star = "*" // wrong-path marker, as in the figure
			}
			fmt.Printf("    FM produced  #%d%s  %v\n", e.IN, star, e)
		}
	}

	fmt.Println("T=0   functional model runs ahead on its own path:")
	produce(6) // through the branch and beyond

	branchIN := uint64(5) // the jz
	entry, _ := tb.TryFetch(branchIN)
	fmt.Printf("\nTM    fetches the branch #%d: architecturally %v (taken=%v)\n",
		branchIN, isa.Lookup(entry.Op).Name, entry.Taken)
	fmt.Println("TM    predicts TAKEN -> mis-speculation: notify the FM to produce")
	fmt.Println("      the wrong-path instructions (set_pc to L1)")

	wrongPC := prog.Symbols["L1"]
	tb.Rewind(branchIN + 1)
	if err := model.SetPC(branchIN+1, wrongPC); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nT=1+m wrong-path instructions overwrite the trace buffer (I4*, ...):\n")
	produce(3)
	fmt.Printf("      wrong-path R0 would be %d (took the +1000 path)\n", model.GPR[0])

	fmt.Println("\nT=3+m branch resolves NOT taken: set_pc back to the right path")
	tb.Rewind(branchIN + 1)
	if err := model.SetPC(branchIN+1, entry.NextPC); err != nil {
		log.Fatal(err)
	}
	fmt.Println("T=3+m+n right-path instructions overwrite the incorrect ones:")
	produce(4)

	fmt.Printf("\nfinal R0 = %d (right path: 10+1+100 = 111; the wrong-path +1000 "+
		"left no trace)\n", model.GPR[0])
	fmt.Printf("rollbacks: %d, instructions undone: %d\n", model.Rollbacks, model.RolledBack)
	if model.GPR[0] != 111 {
		log.Fatal("speculation was not rolled back correctly!")
	}
}
