// Quickstart: assemble a small FISA program, run it on the coupled FAST
// simulator (speculative functional model + cycle-accurate timing model)
// through the engine registry, and print what the simulator saw.
package main

import (
	"fmt"
	"log"

	"repro/internal/isa"
	"repro/internal/sim"
)

const program = `
	; Sum the bytes of a buffer, with a data-dependent branch thrown in.
	movi sp, 0x9000
	movi r0, buf
	movi r1, bufend
	movi r2, 0       ; sum
	movi r3, 0       ; odd count
loop:
	ldb  r4, [r0]
	add  r2, r4
	mov  r5, r4
	andi r5, 1
	cmpi r5, 0
	jz   even
	inc  r3
even:
	inc  r0
	cmp  r0, r1
	jl   loop
	cli
	halt
buf:
	.byte 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
bufend:
`

func main() {
	prog, err := isa.Assemble(program, 0x1000)
	if err != nil {
		log.Fatal(err)
	}

	// A raw Program in Params runs bare metal: no toyOS underneath, so the
	// engine disables interrupts for us.
	eng, err := sim.New("fast", sim.Params{Program: prog})
	if err != nil {
		log.Fatal(err)
	}

	result, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	coupled := eng.(sim.Coupled)

	fmt.Println("FAST quickstart")
	fmt.Println("  target state:  sum =", coupled.FunctionalModel().GPR[2],
		" odd bytes =", coupled.FunctionalModel().GPR[3])
	fmt.Printf("  instructions:  %d committed (+%d wrong-path requested)\n",
		result.Instructions, result.WrongPath)
	fmt.Printf("  target cycles: %d  (IPC %.3f)\n", result.TargetCycles, result.IPC)
	fmt.Printf("  branch pred.:  %.2f%% (%d mispredicts, %d FM rollbacks)\n",
		100*result.BPAccuracy, result.Mispredicts, result.Rollbacks)
	fmt.Printf("  simulated at:  %.2f MIPS on the modeled DRC platform\n", result.TargetMIPS)
	fmt.Printf("  host time:     FM %.1fµs ∥ TM %.1fµs\n",
		result.FMNanos/1e3, result.TMNanos/1e3)
	fmt.Printf("  trace buffer:  peak occupancy %d entries\n", result.TBMaxOccupancy)
	fmt.Println("  timing model: ", coupled.TimingModel().Describe())
}
