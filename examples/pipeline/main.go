// Pipeline renders the Figure 1 walkthrough cycle by cycle: the paper's
// six-instruction example flowing through a single-issue target with an
// ALU, a load/store unit and a branch unit — trace buffer to fetch to
// reservation stations to ROB commit.
package main

import (
	"fmt"
	"log"

	"repro/internal/fm"
	"repro/internal/isa"
	"repro/internal/tm"
	"repro/internal/trace"
)

const program = `
	; Figure 1's dependence shape:
	;   I1: R0 = MEM[R1]    I2: R0 = MEM[R0]   I3: R0 = R0 + R3
	;   I4: R4 = R5 + R6    I5: R1 = MEM[R0]   I6: R6 = R7 + R8
	movi r1, 0x4000
	movi r3, 7
	movi r5, 5
	movi r6, 6
	movi r7, 70
	movi r8, 80
	movi r9, 0x4100
	stw  r9, [r1]
	movi r10, 0x4200
	stw  r10, [r9]
figure1:
	ldw  r0, [r1]     ; I1
	ldw  r0, [r0]     ; I2
	add  r0, r3       ; I3
	mov  r4, r5
	add  r4, r6       ; I4
	ldw  r1, [r0]     ; I5
	mov  r6, r7
	add  r6, r8       ; I6
	cli
	halt
`

func main() {
	prog, err := isa.Assemble(program, 0x1000)
	if err != nil {
		log.Fatal(err)
	}
	m := fm.New(fm.Config{DisableInterrupts: true})
	m.LoadProgram(prog)
	var entries []trace.Entry
	for {
		e, ok := m.Step()
		if !ok {
			break
		}
		entries = append(entries, e)
	}

	cfg := tm.DefaultConfig().WithIssueWidth(1)
	cfg.ALUs = 1
	cfg.BranchUnits = 1
	cfg.Predictor = "perfect"
	model, err := tm.New(cfg, &tm.SliceSource{Entries: entries}, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 1 walkthrough: single-issue target, 3 FUs (+, $, B)")
	fmt.Println("watch I4 (the independent add, IN 14) complete while the")
	fmt.Println("dependent load chain I1->I2->I3 (INs 10-12) is still executing;")
	fmt.Println("commits stay strictly in order.")
	fmt.Println()
	start := uint64(0)
	for !model.Done() && model.Cycle() < 100 {
		model.Step()
		snap := model.Snapshot()
		// Print only the interesting region (once the figure1 block is in).
		if snap.FetchIN >= 10 || len(snap.ROB) > 0 {
			if start == 0 {
				start = snap.Cycle
			}
			fmt.Print(snap)
		}
	}
	fmt.Printf("\n%s\n", model.Describe())
}
