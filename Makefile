# Developer entry points. `make check` is the tier-1 gate: formatting,
# vet, build, full test suite. `make race` exercises the concurrent paths
# (the goroutine-parallel coupling, the sim.Fleet sweep runner and the
# fastd job service) under the race detector. `make serve` boots the job
# server; `make smoke` drives a built fastd end to end over HTTP.

GO ?= go

.PHONY: check fmt vet build test race bench bench-json bench-gate serve smoke

check: fmt vet build test

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 30m ./internal/obs/... ./internal/core/... \
		./internal/sim/... ./internal/trace/... ./internal/fm ./internal/tm \
		./internal/service/... ./internal/cache ./internal/workload

# Run the simulation-as-a-service daemon locally (ctrl-C drains gracefully).
serve:
	$(GO) run ./cmd/fastd

# End-to-end service smoke: boot fastd, submit the same Figure-4 point
# twice, assert the second submission is a byte-identical cache hit, and
# check the SIGTERM drain path.
smoke:
	./scripts/service_smoke.sh

# The same harness the paper tables come from: one pass over every
# table/figure benchmark.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x

# bench-json reruns the bench suite through test2json and distils the
# results into bench.json (see cmd/benchgate). bench-gate then compares
# that file against the committed BENCH_baseline.json with a ±15%
# wall-time threshold — the CI regression gate.
bench-json:
	$(GO) test -bench=. -benchmem -benchtime=1x -json \
		| $(GO) run ./cmd/benchgate -emit bench.json

bench-gate: bench-json
	$(GO) run ./cmd/benchgate -compare -baseline BENCH_baseline.json -current bench.json
