# Developer entry points. `make check` is the tier-1 gate: formatting,
# vet, build, full test suite. `make race` exercises the concurrent paths
# (the goroutine-parallel coupling, the sim.Fleet sweep runner, the fastd
# job service and the cluster coordinator) under the race detector.
# `make serve` boots the job server; `make smoke` drives a built fastd end
# to end over HTTP via fastctl; `make smoke-cluster` drives a 2-worker +
# coordinator cluster with a shared disk store.

GO ?= go

.PHONY: check fmt vet build test race bench bench-json bench-gate serve smoke smoke-cluster

check: fmt vet build test

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 30m ./internal/obs/... ./internal/core/... \
		./internal/sim/... ./internal/trace/... ./internal/fm ./internal/tm \
		./internal/fullsys ./internal/service/... ./internal/cluster \
		./internal/cache ./internal/workload ./internal/workload/fs

# Run the simulation-as-a-service daemon locally (ctrl-C drains gracefully).
serve:
	$(GO) run ./cmd/fastd

# End-to-end service smoke (via fastctl): boot fastd, submit the same
# Figure-4 point twice, assert the second submission is a byte-identical
# cache hit, check typed error envelopes, listing and the SIGTERM drain.
smoke:
	./scripts/service_smoke.sh

# End-to-end cluster smoke: 2 workers sharing a disk store behind a
# coordinator; asserts sharded sweep aggregation is byte-identical to a
# single node and that a full worker restart serves the repeat sweep from
# disk with zero engine runs.
smoke-cluster:
	./scripts/cluster_smoke.sh

# The same harness the paper tables come from: one pass over every
# table/figure benchmark.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x

# bench-json reruns the bench suite through test2json and distils the
# results into bench.json (see cmd/benchgate). Each benchmark runs
# BENCH_COUNT times and benchgate keeps the per-benchmark minimum, so one
# noisy runner stroke can neither trip nor mask the gate. bench-gate then
# compares that file against the committed BENCH_baseline.json with a ±15%
# wall-time threshold — the CI regression gate.
BENCH_COUNT ?= 3
bench-json:
	$(GO) test -bench=. -benchmem -benchtime=1x -count=$(BENCH_COUNT) \
		-timeout 60m -json > bench_raw.tmp
	$(GO) run ./cmd/benchgate -emit bench.json < bench_raw.tmp
	@rm -f bench_raw.tmp

bench-gate: bench-json
	$(GO) run ./cmd/benchgate -compare -baseline BENCH_baseline.json -current bench.json
