# Developer entry points. `make check` is the tier-1 gate: formatting,
# vet, build, full test suite. `make race` exercises the concurrent paths
# (the goroutine-parallel coupling and the sim.Fleet sweep runner) under
# the race detector.

GO ?= go

.PHONY: check fmt vet build test race bench

check: fmt vet build test

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/obs/... ./internal/core/... ./internal/sim/...

# The same harness the paper tables come from: one pass over every
# table/figure benchmark.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x
