package sim

import (
	"strings"
	"testing"
)

// confCap keeps conformance runs interactive: the architectural
// equivalences hold at any cap.
const confCap = 10_000

// TestRegistry checks the registry's public contract: the six paper
// engines resolve, unknown names fail listing the valid ones.
func TestRegistry(t *testing.T) {
	want := []string{"fast", "fast-parallel", "fsbcache", "gems", "lockstep", "monolithic"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i, n := range want {
		if got[i] != n {
			t.Fatalf("Names()[%d] = %q, want %q", i, got[i], n)
		}
		if !Registered(n) {
			t.Errorf("Registered(%q) = false", n)
		}
	}
	if _, err := New("hasim", Params{}); err == nil {
		t.Fatal("New(hasim) succeeded for an unregistered engine")
	} else if !strings.Contains(err.Error(), "fast-parallel") {
		t.Errorf("unknown-engine error should list registered names, got: %v", err)
	}
	if Registered("hasim") {
		t.Error("Registered(hasim) = true")
	}
}

// TestEngineConformance runs every registered engine on the same small
// workload and checks the cross-engine invariant the baseline package
// promises: every simulator executes the same target, so architectural
// counters agree; only the host-time cost models differ.
func TestEngineConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled runs")
	}
	p := Params{Workload: "164.gzip", MaxInstructions: confCap}
	results := map[string]Result{}
	for _, name := range Names() {
		r, err := Run(name, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		results[name] = r
		if r.Engine != name {
			t.Errorf("%s: Result.Engine = %q", name, r.Engine)
		}
		if r.Workload != "164.gzip" {
			t.Errorf("%s: Result.Workload = %q", name, r.Workload)
		}
		// Sanity for every engine: it really simulated something and
		// produced a speed.
		if r.Instructions == 0 || r.TargetCycles == 0 || r.BasicBlocks == 0 {
			t.Errorf("%s: zero architectural counters: %+v", name, r)
		}
		if r.IPC <= 0 || r.KIPS <= 0 || r.SimNanos <= 0 {
			t.Errorf("%s: zero performance results: IPC=%v KIPS=%v nanos=%v",
				name, r.IPC, r.KIPS, r.SimNanos)
		}
		if r.BPAccuracy <= 0 || r.BPAccuracy > 1 {
			t.Errorf("%s: implausible BP accuracy %v", name, r.BPAccuracy)
		}
	}

	// The serial and goroutine-parallel FAST couplings must agree on every
	// architectural counter — instructions, basic blocks, branch outcomes —
	// only cycle timing may differ (fetch bubbles depend on scheduling).
	fast, par := results["fast"], results["fast-parallel"]
	if fast.Instructions != par.Instructions {
		t.Errorf("fast vs fast-parallel instructions: %d vs %d",
			fast.Instructions, par.Instructions)
	}
	if fast.BasicBlocks != par.BasicBlocks {
		t.Errorf("fast vs fast-parallel basic blocks: %d vs %d",
			fast.BasicBlocks, par.BasicBlocks)
	}
	if fast.Mispredicts != par.Mispredicts {
		t.Errorf("fast vs fast-parallel branch outcomes: %d vs %d mispredicts",
			fast.Mispredicts, par.Mispredicts)
	}
	if fast.BPAccuracy != par.BPAccuracy {
		t.Errorf("fast vs fast-parallel BP accuracy: %v vs %v",
			fast.BPAccuracy, par.BPAccuracy)
	}

	// Every engine executes the identical committed path. The FAST engines
	// stop on the cap at a cycle boundary and can commit up to one
	// issue-width extra; the trace-replay baselines cap exactly, so they
	// must agree with each other exactly and with FAST modulo that
	// boundary.
	const capSlack = 2 // default issue width
	for _, name := range []string{"monolithic", "gems", "lockstep", "fsbcache"} {
		r := results[name]
		if r.Instructions != results["monolithic"].Instructions {
			t.Errorf("%s committed %d instructions, monolithic committed %d",
				name, r.Instructions, results["monolithic"].Instructions)
		}
		if r.BasicBlocks != results["monolithic"].BasicBlocks {
			t.Errorf("%s committed %d basic blocks, monolithic committed %d",
				name, r.BasicBlocks, results["monolithic"].BasicBlocks)
		}
		if d := fast.Instructions - r.Instructions; d > capSlack {
			t.Errorf("%s committed %d instructions, fast committed %d (slack %d)",
				name, r.Instructions, fast.Instructions, capSlack)
		}
		if d := fast.BasicBlocks - r.BasicBlocks; d > capSlack {
			t.Errorf("%s committed %d basic blocks, fast committed %d (slack %d)",
				name, r.BasicBlocks, fast.BasicBlocks, capSlack)
		}
	}

	// The paper's ordering must hold even at this small cap: FAST beats
	// lockstep beats nothing; the FSB cache is slower than pure software.
	if results["fast"].KIPS <= results["lockstep"].KIPS {
		t.Errorf("FAST (%.0f KIPS) should beat lockstep (%.0f KIPS)",
			results["fast"].KIPS, results["lockstep"].KIPS)
	}
	if results["monolithic"].KIPS <= results["gems"].KIPS {
		t.Errorf("sim-outorder-class (%.0f KIPS) should beat GEMS-class (%.0f KIPS)",
			results["monolithic"].KIPS, results["gems"].KIPS)
	}
}

// TestEngineTwoPhase checks the Configure/Run lifecycle contracts:
// instrumentation access between the phases, raw-program runs, and
// parameter validation at Configure time.
func TestEngineTwoPhase(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled run")
	}
	eng, err := New("fast", Params{Workload: "164.gzip", MaxInstructions: 2000})
	if err != nil {
		t.Fatal(err)
	}
	c, ok := eng.(Coupled)
	if !ok {
		t.Fatal("fast engine does not expose the coupled simulator")
	}
	if c.TimingModel() == nil || c.FunctionalModel() == nil {
		t.Fatal("nil TM/FM before Run")
	}
	if b, ok := eng.(Booted); !ok || b.Boot() == nil {
		t.Fatal("workload-driven engine should expose its boot")
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	for _, bad := range []Params{
		{Workload: "no-such-workload"},
		{Workload: "164.gzip", Link: "fsb"},
	} {
		if _, err := New("fast", bad); err == nil {
			t.Errorf("Configure accepted bad params %+v", bad)
		}
	}
}

// TestFastEngineMulticore drives the N-core target through the registry:
// Cores > 1 on the fast engine instantiates the multicore scheduler, the
// smp-lock workload completes its critical sections, the Result carries the
// multicore summary fields, and a repeat run is bit-identical.
func TestFastEngineMulticore(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled runs")
	}
	p := Params{Workload: "smp-lock", Cores: 2, MaxInstructions: 300_000}
	run := func() (Result, Engine) {
		eng, err := New("fast", p)
		if err != nil {
			t.Fatal(err)
		}
		r, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r, eng
	}
	r, eng := run()
	if r.Cores != 2 {
		t.Errorf("Result.Cores = %d, want 2", r.Cores)
	}
	if r.CoherenceInvalidations == 0 || r.CoherenceHops == 0 {
		t.Errorf("write-shared workload produced no coherence activity: %+v", r)
	}
	if r.Instructions == 0 || r.TargetCycles == 0 {
		t.Errorf("zero architectural counters: %+v", r)
	}
	// The lock test prints 'K' on success, 'X' on a lost update.
	boot := eng.(Booted).Boot()
	if out := string(boot.Console.Output()); !strings.Contains(out, "K") || strings.Contains(out, "X") {
		t.Errorf("smp-lock console = %q, want 'K' and no 'X'", out)
	}
	if c, ok := eng.(Coupled); !ok || c.TimingModel() == nil || c.FunctionalModel() == nil {
		t.Error("multicore engine should expose core 0's TM/FM")
	}
	if again, _ := run(); again != r {
		t.Errorf("repeat multicore run differs:\n  %+v\n  %+v", r, again)
	}

	// Cores: 1 is the plain single-core serial engine — identical to
	// leaving the knob unset.
	one, err := Run("fast", Params{Workload: "164.gzip", MaxInstructions: 5000, Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := Run("fast", Params{Workload: "164.gzip", MaxInstructions: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if one != zero {
		t.Errorf("-cores 1 differs from the unset knob:\n  %+v\n  %+v", one, zero)
	}
	if one.Cores != 0 {
		t.Errorf("single-core Result.Cores = %d, want 0 (field absent from JSON)", one.Cores)
	}
}

// TestPollPolicyMapping checks the PollEveryBBs tri-state: default,
// explicit N, and poll-on-resteer produce strictly decreasing link reads.
func TestPollPolicyMapping(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled runs")
	}
	read := func(poll int) uint64 {
		r, err := Run("fast", Params{
			Workload: "164.gzip", MaxInstructions: confCap, PollEveryBBs: poll,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r.LinkStats.Reads
	}
	perBB, def, resteer := read(1), read(0), read(PollOnResteer)
	if !(perBB > def && def > resteer) {
		t.Errorf("poll reads should strictly decrease per-BB > default > resteer-only: %d, %d, %d",
			perBB, def, resteer)
	}
}
