package sim_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/fm"
	"repro/internal/sim"
)

// testdata/goldens_seed.json holds the fast engine's Result for three
// workloads at 50k instructions, captured from the per-entry-coupling seed
// tree. The chunked FM→TM coupling must reproduce every field except
// link.writes: a chunk of entries ships as ONE modeled burst transfer, so
// the write *count* is chunking's one architected visible effect (total
// burst words and link nanos are linear in words and stay bit-identical).

// scrubWrites removes the chunking-dependent field from a Result decoded
// into a generic map.
func scrubWrites(m map[string]any) {
	if link, ok := m["link"].(map[string]any); ok {
		delete(link, "writes")
	}
}

func loadGoldens(t *testing.T) []map[string]any {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "goldens_seed.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []map[string]any
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatal(err)
		}
		scrubWrites(m)
		out = append(out, m)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no goldens in testdata/goldens_seed.json")
	}
	return out
}

// resultMap round-trips a Result through its JSON encoding so golden and
// live values compare in the same domain (float64s, generic maps).
func resultMap(t *testing.T, r sim.Result) map[string]any {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	scrubWrites(m)
	return m
}

func runFast(t *testing.T, p sim.Params) map[string]any {
	t.Helper()
	eng, err := sim.New("fast", p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := eng.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return resultMap(t, r)
}

// diffMaps reports the keys (recursively) whose values differ.
func diffMaps(prefix string, want, got map[string]any) []string {
	keys := map[string]bool{}
	for k := range want {
		keys[k] = true
	}
	for k := range got {
		keys[k] = true
	}
	var diffs []string
	for k := range keys {
		w, g := want[k], got[k]
		if wm, ok := w.(map[string]any); ok {
			if gm, ok := g.(map[string]any); ok {
				diffs = append(diffs, diffMaps(prefix+k+".", wm, gm)...)
				continue
			}
		}
		if !reflect.DeepEqual(w, g) {
			diffs = append(diffs, fmt.Sprintf("%s%s: golden %v, got %v", prefix, k, w, g))
		}
	}
	sort.Strings(diffs)
	return diffs
}

// TestFastEngineMatchesSeedGoldens pins the serial fast engine to the
// seed-tree results: the chunked coupling is a host-side optimization and
// must not move a single architectural or modeled-time number.
func TestFastEngineMatchesSeedGoldens(t *testing.T) {
	for _, golden := range loadGoldens(t) {
		w := golden["workload"].(string)
		t.Run(w, func(t *testing.T) {
			got := runFast(t, sim.Params{Workload: w, MaxInstructions: 50_000})
			if diffs := diffMaps("", golden, got); len(diffs) != 0 {
				for _, d := range diffs {
					t.Error(d)
				}
			}
		})
	}
}

// TestFastEngineTraceChunkInvariance checks the ISSUE acceptance bar
// directly: every TraceChunk ≥ 1 — per-entry, odd, default, bigger than
// the trace buffer — yields the identical Result (modulo link.writes).
func TestFastEngineTraceChunkInvariance(t *testing.T) {
	base := runFast(t, sim.Params{Workload: "164.gzip", MaxInstructions: 50_000})
	for _, chunk := range []int{1, 3, 64, 512} {
		chunk := chunk
		t.Run(fmt.Sprintf("chunk%d", chunk), func(t *testing.T) {
			got := runFast(t, sim.Params{
				Workload:        "164.gzip",
				MaxInstructions: 50_000,
				TraceChunk:      chunk,
			})
			if diffs := diffMaps("", base, got); len(diffs) != 0 {
				for _, d := range diffs {
					t.Error(d)
				}
			}
		})
	}
}

// TestFastEngineSuperblockInvariance is the superblock acceptance bar: any
// superblock length — disabled, degenerate single-instruction blocks, short
// or CLI-default-exceeding — must yield the identical Result as the
// superblock-free configuration the seed goldens pin. This is what lets
// Params.Key() omit SuperblockLen.
func TestFastEngineSuperblockInvariance(t *testing.T) {
	for _, w := range []string{"164.gzip", "Linux-2.4"} {
		w := w
		t.Run(w, func(t *testing.T) {
			base := runFast(t, sim.Params{Workload: w, MaxInstructions: 50_000})
			for _, sblen := range []int{1, 8, 64} {
				sblen := sblen
				t.Run(fmt.Sprintf("superblock%d", sblen), func(t *testing.T) {
					got := runFast(t, sim.Params{
						Workload:        w,
						MaxInstructions: 50_000,
						ICacheEntries:   fm.DefaultICacheEntries,
						SuperblockLen:   sblen,
					})
					if diffs := diffMaps("", base, got); len(diffs) != 0 {
						for _, d := range diffs {
							t.Error(d)
						}
					}
				})
			}
		})
	}
}

// TestFastEngineICacheInvariance is the predecode-cache acceptance bar:
// any cache size — tiny (constant conflict evictions), one-slot, or the
// CLI default — must yield the identical Result as running with the cache
// disabled, which is the configuration the seed goldens pin.
func TestFastEngineICacheInvariance(t *testing.T) {
	for _, w := range []string{"164.gzip", "Linux-2.4"} {
		w := w
		t.Run(w, func(t *testing.T) {
			base := runFast(t, sim.Params{Workload: w, MaxInstructions: 50_000})
			for _, entries := range []int{1, 16, 4096} {
				entries := entries
				t.Run(fmt.Sprintf("icache%d", entries), func(t *testing.T) {
					got := runFast(t, sim.Params{
						Workload:        w,
						MaxInstructions: 50_000,
						ICacheEntries:   entries,
					})
					if diffs := diffMaps("", base, got); len(diffs) != 0 {
						for _, d := range diffs {
							t.Error(d)
						}
					}
				})
			}
		})
	}
}
