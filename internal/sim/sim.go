// Package sim is the unified simulator-engine layer. The paper's headline
// results (Figure 4, Table 3) are *comparisons* of simulators — FAST in its
// serial and goroutine-parallel couplings against the monolithic, lockstep
// and FPGA-cache-on-FSB baselines — so every engine lives behind one
// interface (Engine), is configured by one parameter struct (Params),
// populates one canonical result shape (Result), and is constructed by name
// through one registry. Sweeps over {workloads × engines × parameter
// variants} are declared as a Sweep and executed — sequentially or fanned
// out over a bounded worker pool — by a Fleet (fleet.go).
//
// Adding a simulator is one Register call; adding an experiment is one
// Sweep literal.
package sim

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/fm"
	"repro/internal/hostlink"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/tm"
	"repro/internal/workload"
)

// PollOnResteer selects the architected polling behaviour for
// Params.PollEveryBBs: the functional model polls the FPGA queue only on
// re-steers instead of every N basic blocks (ablation A2/A6).
const PollOnResteer = -1

// Params configures any engine. The zero value means "engine defaults":
// the Linux-boot workload, gshare prediction, the prototype issue width,
// the DRC link, per-2-basic-block polling and no instruction cap.
//
// The JSON tags are a stable serialization schema: internal/service accepts
// a Params overlay on its API boundary (strictly — unknown fields are
// rejected, see DecodeParams) and the omitempty tags make the zero value
// round-trip as `{}`. Program, Telemetry and Mutate deliberately carry no
// tag: raw images, live instrumentation and code hooks never cross the
// wire. Add fields freely; never rename or repurpose a tag.
type Params struct {
	// Workload names a workload from internal/workload ("Linux-2.4",
	// "164.gzip", ...). Empty selects Linux-2.4 unless Program is set.
	Workload string `json:"workload,omitempty"`
	// Program, when non-nil, is a raw assembled image run bare-metal
	// (no toyOS boot, interrupts disabled) instead of a named workload.
	Program *isa.Program `json:"-"`

	// Predictor is the branch predictor ("gshare", "2bit", "97%", "95%",
	// "perfect"); empty = the timing model's default (gshare).
	Predictor string `json:"predictor,omitempty"`
	// IssueWidth is the target issue width; 0 = the prototype's default.
	IssueWidth int `json:"issue_width,omitempty"`
	// Link names the host CPU↔FPGA channel: "drc" (default), "pins",
	// "coherent".
	Link string `json:"link,omitempty"`
	// PollEveryBBs is the FM polling policy: 0 = engine default (every
	// 2 basic blocks, the §4 prototype), N>0 = every N basic blocks,
	// PollOnResteer = only on re-steers.
	PollEveryBBs int `json:"poll_every_bbs,omitempty"`
	// BPP enables the FM-side branch-predictor-predictor (§2.1).
	BPP bool `json:"bpp,omitempty"`
	// MaxInstructions bounds committed instructions (0 = run to
	// completion).
	MaxInstructions uint64 `json:"max_instructions,omitempty"`

	// Cores is the number of coupled FM/TM pairs in the target. 0 or 1 is
	// the single-core target (bit-identical to builds predating the knob);
	// 2..64 instantiates N cores over shared memory and a modeled coherent
	// interconnect. Only the serial FAST engine runs multicore targets.
	Cores int `json:"cores,omitempty"`
	// InterconnectLatency is the per-hop core↔L2 interconnect delay of the
	// multicore target, in target cycles; 0 = the default
	// (cache.DefaultInterconnectLatency). Meaningless — and ignored — at
	// Cores <= 1, where no interconnect exists.
	InterconnectLatency int `json:"interconnect_latency,omitempty"`

	// DiskLatency is the modeled disk latency of the boot environment in
	// target time units — command (or, for writes, last streamed word) to
	// completion; 0 = the device default (workload.DiskLatency). The
	// server-workload experiments sweep it. Ignored for bare-metal
	// programs, which boot no devices.
	DiskLatency int `json:"disk_latency,omitempty"`

	// TraceChunk is the FM→TM trace-buffer publish granularity in entries:
	// the FM accumulates a chunk locally and publishes it (one buffer
	// synchronization, one modeled link transfer) when it fills. 0 = the
	// engine default (trace.DefaultChunk); 1 = per-entry coupling.
	// Architectural results are identical for every value ≥ 1 — the knob
	// sweeps host-side synchronization cost only. FAST engines only.
	TraceChunk int `json:"trace_chunk,omitempty"`

	// ICacheEntries sizes the functional model's predecode cache
	// (direct-mapped slots keyed by physical address, rounded up to a
	// power of two): code is decoded and µop-instantiated once and
	// replayed from the cache until a store, rollback or mapping change
	// invalidates it. 0 disables the cache. Architected state, the
	// emitted trace and every modeled number are bit-identical at any
	// value — the knob trades host memory for FM speed only.
	ICacheEntries int `json:"icache_entries,omitempty"`

	// SuperblockLen caps the functional model's superblock length:
	// straight-line runs of predecoded instructions executed as a fused
	// closure chain with one rollback/interrupt/device check per block.
	// 0 disables superblocks; they additionally require the predecode
	// cache (ICacheEntries > 0) and are ignored under Rollback
	// "checkpoint". Like ICacheEntries the knob is bit-invariant:
	// architected state, the emitted trace and every modeled number are
	// identical at any value. FAST engines only.
	SuperblockLen int `json:"superblock_len,omitempty"`

	// Rollback selects the FM recovery mechanism: "" or "journal" (the
	// per-instruction undo journal), "checkpoint" (periodic register-file
	// checkpoints, ablation A7). FAST engines only.
	Rollback string `json:"rollback,omitempty"`
	// CheckpointInterval is the instructions-per-checkpoint spacing when
	// Rollback is "checkpoint"; 0 = the FM default.
	CheckpointInterval int `json:"checkpoint_interval,omitempty"`
	// UncompressedTrace disables the trace-word compression of §2.2, so
	// every entry ships full-width over the link (ablation A5). FAST
	// engines only.
	UncompressedTrace bool `json:"uncompressed_trace,omitempty"`
	// FutureMicroarch swaps in the scaled-up future target
	// microarchitecture (ablation A8). FAST engines only.
	FutureMicroarch bool `json:"future_microarch,omitempty"`

	// Telemetry, when non-nil, receives the run's metrics and (if it
	// carries a TraceLog) its timeline. Safe to share across concurrent
	// fleet points: metric hot paths are atomic and trace appends are
	// locked.
	Telemetry *obs.Telemetry `json:"-"`

	// Snapshots, when non-nil, is the warm-start tier: the FAST engine
	// resumes from a stored boot snapshot whose SnapshotPrefix matches
	// (skipping the boot instructions) or, on a miss, captures one at the
	// first quiescent boundary after boot completion. Results are
	// bit-identical with the store attached, absent, hitting or missing —
	// the tier trades host time only — so the field never reaches Key.
	// Local infrastructure, like Telemetry: it never crosses the wire.
	Snapshots SnapshotStore `json:"-"`

	// Mutate, when non-nil, is applied to the assembled core.Config just
	// before construction.
	//
	// Deprecated for sweep axes: anything a sweep varies should be a named
	// Params field (as Rollback, UncompressedTrace, FutureMicroarch now
	// are) so points stay comparable, serializable and printable. Mutate
	// remains only as the escape hatch for one-off instrumentation hooks
	// that have no business in the schema. Only the FAST engines honour
	// it; baselines ignore it. Params carrying a Mutate hook are not
	// content-addressable: see Cacheable.
	Mutate func(*core.Config) `json:"-"`
}

// validate rejects parameter values no engine can honour. Engines call it
// from Configure; the named-field checks live here so every engine rejects
// the same bad inputs with the same messages.
func (p Params) validate() error {
	switch p.Rollback {
	case "", "journal", "checkpoint":
	default:
		return fmt.Errorf("sim: unknown rollback %q (want journal, checkpoint)", p.Rollback)
	}
	if p.CheckpointInterval < 0 {
		return fmt.Errorf("sim: negative checkpoint interval %d", p.CheckpointInterval)
	}
	if p.TraceChunk < 0 {
		return fmt.Errorf("sim: negative trace chunk %d", p.TraceChunk)
	}
	if p.ICacheEntries < 0 {
		return fmt.Errorf("sim: negative icache entries %d", p.ICacheEntries)
	}
	if p.SuperblockLen < 0 {
		return fmt.Errorf("sim: negative superblock length %d", p.SuperblockLen)
	}
	if p.Cores < 0 || p.Cores > 64 {
		return fmt.Errorf("sim: cores %d out of range (want 0..64)", p.Cores)
	}
	if p.InterconnectLatency < 0 {
		return fmt.Errorf("sim: negative interconnect latency %d", p.InterconnectLatency)
	}
	if p.DiskLatency < 0 {
		return fmt.Errorf("sim: negative disk latency %d", p.DiskLatency)
	}
	return nil
}

// Validate rejects parameters no engine can honour without building
// anything: the named-field checks every Configure runs, plus the workload
// and link name lookups that Configure would otherwise only hit after
// assembling a boot image. API boundaries (internal/service) call it to
// fail a submission before it costs a queue slot.
func (p Params) Validate() error {
	if err := p.validate(); err != nil {
		return err
	}
	if p.Program == nil {
		if _, err := p.workloadSpec(); err != nil {
			return err
		}
	}
	if _, err := p.link(); err != nil {
		return err
	}
	return nil
}

// workloadSpec resolves the named workload from the registry at the
// requested core count (the smp workloads bake the count into the user
// program; everything else parks idle secondaries in the kernel).
func (p Params) workloadSpec() (workload.Spec, error) {
	name := p.Workload
	if name == "" {
		name = "Linux-2.4"
	}
	cores := p.Cores
	if cores < 1 {
		cores = 1
	}
	spec, ok := workload.Lookup(name, cores)
	if !ok {
		return workload.Spec{}, fmt.Errorf("sim: unknown workload %q", p.Workload)
	}
	return spec, nil
}

// link resolves the named host link.
func (p Params) link() (hostlink.Config, error) {
	switch p.Link {
	case "", "drc":
		return hostlink.DRC(), nil
	case "pins":
		return hostlink.DRCPinRegisters(), nil
	case "coherent":
		return hostlink.CoherentHT(), nil
	}
	return hostlink.Config{}, fmt.Errorf("sim: unknown link %q (want drc, pins, coherent)", p.Link)
}

// tmConfig assembles the timing-model configuration shared by every engine.
func (p Params) tmConfig() tm.Config {
	cfg := tm.DefaultConfig()
	if p.IssueWidth > 0 {
		cfg = cfg.WithIssueWidth(p.IssueWidth)
	}
	if p.Predictor != "" {
		cfg.Predictor = p.Predictor
	}
	return cfg
}

// Result is the canonical run summary every engine populates. Engines that
// have no host-partitioned cost model (the baselines) leave the FM/TM
// breakdown and link statistics zero; everything architectural is always
// filled in, which is what makes cross-engine conformance checkable.
//
// The JSON tags are a stable serialization schema: `fastsim -json` emits
// one Result object per run, and downstream tooling may rely on the field
// names. Add fields freely; never rename or repurpose a tag.
type Result struct {
	Engine   string `json:"engine"` // registry name of the engine that produced this
	Workload string `json:"workload"`

	// Architectural counters — identical across engines by construction
	// (every simulator executes the same target).
	Instructions uint64  `json:"instructions"` // committed (right-path) instructions
	BasicBlocks  uint64  `json:"basic_blocks"` // committed control transfers
	TargetCycles uint64  `json:"target_cycles"`
	IPC          float64 `json:"ipc"`

	// Host-time accounting.
	FMNanos    float64 `json:"fm_nanos"`    // functional-model side (FAST engines only)
	TMNanos    float64 `json:"tm_nanos"`    // timing-model side (FAST engines only)
	SimNanos   float64 `json:"sim_nanos"`   // end-to-end simulated wall time
	TargetMIPS float64 `json:"target_mips"` // the paper's Figure 4 metric
	KIPS       float64 `json:"kips"`        // the paper's Table 3 metric

	// Speculation and predictor statistics.
	BPAccuracy  float64 `json:"bp_accuracy"`
	Mispredicts uint64  `json:"mispredicts"`
	WrongPath   uint64  `json:"wrong_path"` // wrong-path instructions produced (FAST engines)
	Rollbacks   uint64  `json:"rollbacks"`
	TraceWords  uint64  `json:"trace_words"`

	LinkStats      hostlink.Stats `json:"link"`
	TM             tm.Stats       `json:"tm"`
	TBMaxOccupancy int            `json:"tb_max_occupancy"`

	// Multicore target summary. All zero (and absent from the JSON) on
	// single-core runs, so single-core output is byte-identical to builds
	// predating the knob. Scalars only: Result must stay a pure value type.
	Cores                  int    `json:"cores,omitempty"`
	CoherenceTransfers     uint64 `json:"coherence_transfers,omitempty"`
	CoherenceInvalidations uint64 `json:"coherence_invalidations,omitempty"`
	CoherenceHops          uint64 `json:"coherence_hops,omitempty"`
}

func (r Result) String() string {
	return fmt.Sprintf("%s/%s: inst=%d cycles=%d IPC=%.3f bp=%.2f%% %.2f MIPS (%.0f KIPS)",
		r.Engine, r.Workload, r.Instructions, r.TargetCycles, r.IPC,
		100*r.BPAccuracy, r.TargetMIPS, r.KIPS)
}

// Clone returns an independent copy of r that is safe to hand to a
// concurrent reader while the original (or another copy) is being read or
// mutated elsewhere — the contract the internal/service result cache
// depends on when it serves one completed Result to many requests.
//
// Result is a pure value type: every field, recursively, is a scalar,
// string or fixed-size array (TestResultValueCopyIsDeep enforces this with
// reflection), so a value copy IS a deep copy. If a slice, map or pointer
// field is ever added, that test fails and this method is the single place
// that must learn to copy it.
func (r Result) Clone() Result { return r }

// Engine is one simulator behind the registry. Configure validates the
// parameters and builds the underlying simulator (so instrumentation — a
// stats sampler, a power model — can be attached before execution);
// RunContext executes it. An Engine runs once: build a fresh one per run.
type Engine interface {
	// Describe returns a short human-readable description of the engine
	// and its cost model.
	Describe() string
	// Configure validates p and assembles the simulator.
	Configure(p Params) error
	// Run executes the configured simulation to completion (or its
	// instruction cap) and returns the canonical result. Equivalent to
	// RunContext(context.Background()).
	Run() (Result, error)
	// RunContext is Run with cooperative cancellation: when ctx is
	// cancelled the simulation stops at the next cycle boundary and the
	// partial result returns alongside ctx.Err().
	RunContext(ctx context.Context) (Result, error)
}

// Coupled is implemented by engines that expose a live coupled simulator
// for instrumentation: the FAST engines' timing model accepts probes,
// power models and connector reports, and the functional model exposes
// rollback/re-execution counters.
type Coupled interface {
	TimingModel() *tm.TM
	FunctionalModel() *fm.Model
}

// Booted is implemented by engines that boot a full-system workload and
// can hand back its device set (console output, disk, NIC) after the run.
type Booted interface {
	Boot() *workload.Boot
}

// registry maps engine names to constructors. It is populated at init time
// and read-only afterwards, so concurrent Fleet workers need no locking.
var registry = map[string]func() Engine{}

// Register adds an engine constructor under name. Registering a duplicate
// name panics: names are the public contract of the layer.
func Register(name string, ctor func() Engine) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sim: duplicate engine %q", name))
	}
	registry[name] = ctor
}

// Names returns the registered engine names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Registered reports whether name is a registered engine.
func Registered(name string) bool {
	_, ok := registry[name]
	return ok
}

// New constructs and configures the named engine.
func New(name string, p Params) (Engine, error) {
	ctor, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("sim: unknown engine %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	e := ctor()
	if err := e.Configure(p); err != nil {
		return nil, fmt.Errorf("engine %s: %w", name, err)
	}
	return e, nil
}

// Run constructs, configures and runs the named engine in one call — the
// path every sweep point takes.
func Run(name string, p Params) (Result, error) {
	return RunContext(context.Background(), name, p)
}

// RunContext is Run with cooperative cancellation.
func RunContext(ctx context.Context, name string, p Params) (Result, error) {
	e, err := New(name, p)
	if err != nil {
		return Result{}, err
	}
	r, err := e.RunContext(ctx)
	if err != nil {
		return r, fmt.Errorf("engine %s: %w", name, err)
	}
	return r, nil
}
