package sim

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/tm"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestParamsKeyDefaultsCollide pins the "semantically equal params share a
// key" half of the content-address contract: every documented "0/empty
// means X" spelling, and every result-invariant knob, collides with the
// zero value.
func TestParamsKeyDefaultsCollide(t *testing.T) {
	base := Params{}.Key()
	equal := map[string]Params{
		"explicit workload":     {Workload: "Linux-2.4"},
		"explicit predictor":    {Predictor: "gshare"},
		"explicit issue width":  {IssueWidth: 2},
		"explicit link":         {Link: "drc"},
		"explicit poll":         {PollEveryBBs: 2},
		"explicit trace chunk":  {TraceChunk: trace.DefaultChunk},
		"explicit rollback":     {Rollback: "journal"},
		"icache off":            {ICacheEntries: 0},
		"icache tiny":           {ICacheEntries: 16},
		"icache default":        {ICacheEntries: 4096},
		"telemetry attached":    {Telemetry: nil},
		"dead checkpoint knob":  {CheckpointInterval: 64}, // ignored under journal rollback
		"explicit single core":  {Cores: 1},
		"dead hop knob":         {InterconnectLatency: 7}, // ignored at one core
		"explicit disk latency": {DiskLatency: 200},
		"fully spelled default": {Workload: "Linux-2.4", Predictor: "gshare", IssueWidth: 2, Link: "drc", PollEveryBBs: 2, TraceChunk: trace.DefaultChunk, Rollback: "journal", ICacheEntries: 4096, DiskLatency: 200},
	}
	for name, p := range equal {
		if got := p.Key(); got != base {
			t.Errorf("%s: key %s differs from zero-Params key %s", name, got, base)
		}
	}
	// The checkpoint-spacing default folds the same way under checkpoint
	// rollback.
	a := Params{Rollback: "checkpoint"}.Key()
	b := Params{Rollback: "checkpoint", CheckpointInterval: 64}.Key()
	if a != b {
		t.Errorf("checkpoint interval 0 and 64 should collide: %s vs %s", a, b)
	}
	// The hop-latency default folds once an interconnect exists.
	a = Params{Cores: 2}.Key()
	b = Params{Cores: 2, InterconnectLatency: 4}.Key()
	if a != b {
		t.Errorf("interconnect latency 0 and 4 should collide at 2 cores: %s vs %s", a, b)
	}
}

// TestParamsKeyKnobsSeparate pins the other half: any knob that can move a
// Result bit produces a distinct key, and all those keys are distinct from
// each other.
func TestParamsKeyKnobsSeparate(t *testing.T) {
	variants := map[string]Params{
		"workload":            {Workload: "164.gzip"},
		"predictor":           {Predictor: "2bit"},
		"issue width":         {IssueWidth: 4},
		"link":                {Link: "pins"},
		"poll":                {PollEveryBBs: 8},
		"poll on resteer":     {PollEveryBBs: PollOnResteer},
		"bpp":                 {BPP: true},
		"max instructions":    {MaxInstructions: 1000},
		"trace chunk":         {TraceChunk: 8},
		"rollback":            {Rollback: "checkpoint"},
		"checkpoint interval": {Rollback: "checkpoint", CheckpointInterval: 128},
		"uncompressed":        {UncompressedTrace: true},
		"future microarch":    {FutureMicroarch: true},
		"cores":               {Cores: 2},
		"interconnect":        {Cores: 2, InterconnectLatency: 8},
		"disk latency":        {DiskLatency: 1000},
		"server workload":     {Workload: "nicserv"},
	}
	seen := map[string]string{Params{}.Key(): "zero"}
	for name, p := range variants {
		k := p.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("%s: key %s collides with %s", name, k, prev)
			continue
		}
		seen[k] = name
	}
}

// TestParamsKeyProgramDigest checks raw bare-metal images are addressed by
// content: identical images collide, any loaded byte separates, and a
// program run never collides with a named workload.
func TestParamsKeyProgramDigest(t *testing.T) {
	prog := func(code ...byte) *isa.Program {
		return &isa.Program{Base: 0x1000, Entry: 0x1000, Code: code}
	}
	a := Params{Program: prog(1, 2, 3)}
	b := Params{Program: prog(1, 2, 3)}
	if a.Key() != b.Key() {
		t.Error("identical program images should share a key")
	}
	if a.Key() == (Params{Program: prog(1, 2, 4)}).Key() {
		t.Error("changing a code byte should change the key")
	}
	moved := &isa.Program{Base: 0x2000, Entry: 0x2000, Code: []byte{1, 2, 3}}
	if a.Key() == (Params{Program: moved}).Key() {
		t.Error("relocating the image should change the key")
	}
	if a.Key() == (Params{}).Key() {
		t.Error("a raw program should not collide with the default workload")
	}
	// Symbols are assembler metadata the FM never loads.
	sym := prog(1, 2, 3)
	sym.Symbols = map[string]isa.Word{"start": 0x1000}
	if a.Key() != (Params{Program: sym}).Key() {
		t.Error("symbol tables should not affect the key")
	}
}

// TestKeyDefaultConstantsPinned ties the canonicalization constants to the
// layers that own each default, so a default changing there breaks here
// instead of silently corrupting the key space.
func TestKeyDefaultConstantsPinned(t *testing.T) {
	if got := tm.DefaultConfig().Predictor; got != keyDefaultPredictor {
		t.Errorf("tm default predictor %q, key folds %q", got, keyDefaultPredictor)
	}
	if got := tm.DefaultConfig().IssueWidth; got != keyDefaultIssue {
		t.Errorf("tm default issue width %d, key folds %d", got, keyDefaultIssue)
	}
	if got := core.DefaultConfig().PollEveryBBs; got != keyDefaultPollBBs {
		t.Errorf("core default poll %d, key folds %d", got, keyDefaultPollBBs)
	}
	if spec, err := (Params{Workload: keyDefaultWorkload}).workloadSpec(); err != nil || spec.Name != keyDefaultWorkload {
		t.Errorf("default workload %q not resolvable: %v", keyDefaultWorkload, err)
	}
	empty, err := Params{}.link()
	if err != nil {
		t.Fatalf("empty link: %v", err)
	}
	if named, err := (Params{Link: keyDefaultLink}).link(); err != nil || !reflect.DeepEqual(empty, named) {
		t.Errorf("empty link should resolve to %q: %v", keyDefaultLink, err)
	}
	if cache.DefaultInterconnectLatency != keyDefaultHopLat {
		t.Errorf("cache default hop latency %d, key folds %d",
			cache.DefaultInterconnectLatency, keyDefaultHopLat)
	}
	if workload.DiskLatency != keyDefaultDiskLat {
		t.Errorf("workload default disk latency %d, key folds %d",
			workload.DiskLatency, keyDefaultDiskLat)
	}
}

// TestParamsCacheable: a Mutate hook makes params unaddressable; everything
// declarative stays cacheable.
func TestParamsCacheable(t *testing.T) {
	if !(Params{Workload: "164.gzip", BPP: true}).Cacheable() {
		t.Error("declarative params should be cacheable")
	}
	if (Params{Mutate: func(*core.Config) {}}).Cacheable() {
		t.Error("a Mutate hook should make params uncacheable")
	}
}

// TestParamsJSONRoundTrip pins the API-boundary schema: a fully-populated
// Params survives marshal → strict decode unchanged, and the zero value
// serializes as the empty object (so overlays stay minimal on the wire).
func TestParamsJSONRoundTrip(t *testing.T) {
	p := Params{
		Workload:            "164.gzip",
		Predictor:           "2bit",
		IssueWidth:          4,
		Link:                "coherent",
		PollEveryBBs:        PollOnResteer,
		BPP:                 true,
		MaxInstructions:     123456,
		Cores:               4,
		InterconnectLatency: 8,
		DiskLatency:         1000,
		TraceChunk:          32,
		ICacheEntries:       512,
		Rollback:            "checkpoint",
		CheckpointInterval:  128,
		UncompressedTrace:   true,
		FutureMicroarch:     true,
	}
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeParams(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Errorf("round trip changed params:\n  in  %+v\n  out %+v", p, got)
	}
	if zero, _ := json.Marshal(Params{}); string(zero) != "{}" {
		t.Errorf("zero Params should marshal to {}, got %s", zero)
	}
	// The unserializable fields stay off the wire entirely.
	var m map[string]any
	full, _ := json.Marshal(Params{Program: &isa.Program{}, Telemetry: nil, Mutate: func(*core.Config) {}})
	if err := json.Unmarshal(full, &m); err != nil {
		t.Fatal(err)
	}
	if len(m) != 0 {
		t.Errorf("Program/Telemetry/Mutate leaked into JSON: %v", m)
	}
}

// TestDecodeParamsStrict is the rejection table for the API boundary.
func TestDecodeParamsStrict(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"unknown field", `{"workload":"164.gzip","warkload":"gzip"}`, "unknown field"},
		{"typo'd knob", `{"icache":16}`, "unknown field"},
		{"wrong type", `{"max_instructions":"lots"}`, "cannot unmarshal"},
		{"trailing data", `{"workload":"164.gzip"} {"bpp":true}`, "trailing data"},
		{"array body", `[1,2,3]`, "cannot unmarshal"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeParams([]byte(tc.in)); err == nil {
				t.Fatalf("DecodeParams(%s) accepted bad input", tc.in)
			} else if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
	for _, ok := range []string{"", "  ", "{}", `{"workload":"164.gzip"}`} {
		if _, err := DecodeParams([]byte(ok)); err != nil {
			t.Errorf("DecodeParams(%q): %v", ok, err)
		}
	}
}

// TestDecodeSweepStrict: strictness reaches nested Params objects too.
func TestDecodeSweepStrict(t *testing.T) {
	good := `{"engines":["fast"],"workloads":["164.gzip"],"variants":[{"predictor":"2bit"}],"base":{"max_instructions":1000}}`
	s, err := DecodeSweep(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points()) != 1 || s.Points()[0].Params.Predictor != "2bit" {
		t.Errorf("sweep decoded wrong: %+v", s)
	}
	for _, bad := range []string{
		`{"engine":["fast"]}`,         // top-level typo
		`{"base":{"warkload":"x"}}`,   // nested unknown field
		`{"variants":[{"icache":1}]}`, // nested typo in a variant
		`{"base":{}} trailing`,        // trailing data
	} {
		if _, err := DecodeSweep(strings.NewReader(bad)); err == nil {
			t.Errorf("DecodeSweep(%s) accepted bad input", bad)
		}
	}
}

// FuzzDecodeParams chews arbitrary bytes through the API-boundary decoder:
// it must never panic, and anything it accepts must survive a marshal →
// decode round trip unchanged (the property the content-address cache
// relies on when it re-derives keys from stored requests).
func FuzzDecodeParams(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"workload":"164.gzip","max_instructions":50000}`))
	f.Add([]byte(`{"predictor":"perfect","issue_width":8,"bpp":true}`))
	f.Add([]byte(`{"unknown":1}`))
	f.Add([]byte(`{"workload":"x"} {"workload":"y"}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeParams(data)
		if err != nil {
			return
		}
		raw, merr := json.Marshal(p)
		if merr != nil {
			t.Fatalf("accepted params failed to marshal: %v", merr)
		}
		again, derr := DecodeParams(raw)
		if derr != nil {
			t.Fatalf("re-decode of %s failed: %v", raw, derr)
		}
		if !reflect.DeepEqual(p, again) {
			t.Fatalf("round trip changed params: %+v vs %+v", p, again)
		}
		// Key must be total and stable on every accepted input.
		if p.Key() != again.Key() {
			t.Fatal("round trip changed the content address")
		}
	})
}

// TestResultValueCopyIsDeep enforces the property Result.Clone documents:
// no field of Result, recursively, is a slice, map, pointer, interface,
// channel or function, so a value copy is a deep copy. Adding a
// reference-typed field trips this test and forces Clone (and the
// internal/service cache) to learn about it.
func TestResultValueCopyIsDeep(t *testing.T) {
	var check func(path string, ty reflect.Type)
	check = func(path string, ty reflect.Type) {
		switch ty.Kind() {
		case reflect.Slice, reflect.Map, reflect.Ptr, reflect.Interface,
			reflect.Chan, reflect.Func, reflect.UnsafePointer:
			t.Errorf("%s is a %s: value copies of Result are no longer deep — teach Result.Clone to copy it", path, ty.Kind())
		case reflect.Struct:
			for i := 0; i < ty.NumField(); i++ {
				f := ty.Field(i)
				check(path+"."+f.Name, f.Type)
			}
		case reflect.Array:
			check(path+"[]", ty.Elem())
		}
	}
	check("Result", reflect.TypeOf(Result{}))
}
