package sim

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestEngineInterfaceConformance pins down which optional interfaces each
// registered engine satisfies — deliberately, not accidentally: the FAST
// engines expose their live coupled simulator, every workload-driven engine
// exposes its boot, and only fsbcache carries a software comparison point.
func TestEngineInterfaceConformance(t *testing.T) {
	expect := map[string]struct{ coupled, booted, software bool }{
		"fast":          {coupled: true, booted: true},
		"fast-parallel": {coupled: true, booted: true},
		"monolithic":    {booted: true},
		"gems":          {booted: true},
		"lockstep":      {booted: true},
		"fsbcache":      {booted: true, software: true},
	}
	if len(expect) != len(Names()) {
		t.Fatalf("expectation table covers %d engines, registry has %v", len(expect), Names())
	}
	for _, name := range Names() {
		want, ok := expect[name]
		if !ok {
			t.Errorf("engine %q missing from the expectation table", name)
			continue
		}
		eng, err := New(name, Params{Workload: "164.gzip", MaxInstructions: 500})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, is := eng.(Coupled); is != want.coupled {
			t.Errorf("%s: Coupled = %v, want %v", name, is, want.coupled)
		}
		if _, is := eng.(Booted); is != want.booted {
			t.Errorf("%s: Booted = %v, want %v", name, is, want.booted)
		}
		if _, is := eng.(SoftwareComparison); is != want.software {
			t.Errorf("%s: SoftwareComparison = %v, want %v", name, is, want.software)
		}
	}
}

// TestParamsValidation is the table of rejections every engine must agree
// on: unknown workloads, links and named-field values fail at Configure
// time with a message naming the offender.
func TestParamsValidation(t *testing.T) {
	cases := []struct {
		name    string
		engine  string
		params  Params
		wantSub string
	}{
		{"unknown engine", "hasim", Params{}, "unknown engine"},
		{"unknown workload", "fast", Params{Workload: "no-such-app"}, "unknown workload"},
		{"unknown link", "fast", Params{Workload: "164.gzip", Link: "fsb"}, "unknown link"},
		{"unknown link on baseline", "monolithic", Params{Workload: "164.gzip", Link: "fsb"}, "unknown link"},
		{"unknown rollback", "fast", Params{Workload: "164.gzip", Rollback: "undo-log"}, "unknown rollback"},
		{"rollback validated on baselines", "lockstep", Params{Workload: "164.gzip", Rollback: "undo-log"}, "unknown rollback"},
		{"negative checkpoint interval", "fast", Params{Workload: "164.gzip", Rollback: "checkpoint", CheckpointInterval: -1}, "checkpoint interval"},
		{"cores out of range", "fast", Params{Workload: "164.gzip", Cores: 65}, "cores"},
		{"negative interconnect latency", "fast", Params{Workload: "164.gzip", Cores: 2, InterconnectLatency: -1}, "interconnect latency"},
		{"multicore on fast-parallel", "fast-parallel", Params{Workload: "164.gzip", Cores: 2}, "single-core"},
		{"multicore on monolithic", "monolithic", Params{Workload: "164.gzip", Cores: 2}, "single-core"},
		{"multicore on lockstep", "lockstep", Params{Workload: "164.gzip", Cores: 2}, "single-core"},
		{"multicore on fsbcache", "fsbcache", Params{Workload: "164.gzip", Cores: 2}, "single-core"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.engine, tc.params)
			if err == nil {
				t.Fatalf("New(%s, %+v) accepted bad params", tc.engine, tc.params)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestNamedAblationParams checks the named fields that replaced the Mutate
// escape hatch actually change engine behaviour.
func TestNamedAblationParams(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled runs")
	}
	base := Params{Workload: "164.gzip", MaxInstructions: 5000}
	plain, err := Run("fast", base)
	if err != nil {
		t.Fatal(err)
	}
	uncomp, err := Run("fast", Merge(base, Params{UncompressedTrace: true}))
	if err != nil {
		t.Fatal(err)
	}
	if uncomp.TraceWords <= plain.TraceWords {
		t.Errorf("UncompressedTrace should inflate the stream: %d vs %d words",
			uncomp.TraceWords, plain.TraceWords)
	}
	future, err := Run("fast", Merge(base, Params{FutureMicroarch: true}))
	if err != nil {
		t.Fatal(err)
	}
	if future.TargetCycles == plain.TargetCycles {
		t.Error("FutureMicroarch should change cycle timing")
	}
	if _, err := Run("fast", Merge(base, Params{Rollback: "checkpoint", CheckpointInterval: 64})); err != nil {
		t.Errorf("checkpoint rollback run failed: %v", err)
	}
}

// TestRunContextCancelled checks that an already-cancelled context stops
// every engine promptly with ctx.Err().
func TestRunContextCancelled(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled runs")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range Names() {
		if _, err := RunContext(ctx, name, Params{Workload: "164.gzip", MaxInstructions: confCap}); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestFleetContextCancellation cancels a sweep mid-flight and checks the
// contract: the spec-order slice still comes back full-length, unclaimed
// points carry ctx.Err() without having run, and FirstErr surfaces the
// cancellation.
func TestFleetContextCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled runs")
	}
	// Uncapped Linux boots take long enough that the cancel lands mid-run.
	points := Sweep{
		Workloads: []string{"Linux-2.4"},
		Variants:  make([]Params, 8),
	}.Points()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	results := Fleet{Workers: 2}.RunContext(ctx, points)
	if len(results) != len(points) {
		t.Fatalf("got %d results for %d points", len(results), len(points))
	}
	cancelled := 0
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d has Index %d", i, r.Index)
		}
		if errors.Is(r.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("no point observed the cancellation")
	}
	if FirstErr(results) == nil {
		t.Error("FirstErr should surface the cancellation")
	}
}

// TestFleetSharedTelemetry fans a sweep out over workers that all write one
// Telemetry — the configuration `go test -race` must prove safe — and
// checks the fleet- and run-level aggregates.
func TestFleetSharedTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled runs")
	}
	tel := obs.NewWithTrace()
	sweep := Sweep{
		Workloads: []string{"164.gzip", "181.mcf"},
		Engines:   []string{"fast", "fast-parallel"},
		Base:      Params{MaxInstructions: 4000},
	}
	var progress int
	fleet := Fleet{
		Workers:   4,
		Telemetry: tel,
		Progress:  func(done, total int, pr PointResult) { progress = done },
	}
	results := fleet.RunSweep(sweep)
	if err := FirstErr(results); err != nil {
		t.Fatal(err)
	}
	if progress != len(results) {
		t.Errorf("Progress saw %d completions, want %d", progress, len(results))
	}
	m := tel.Metrics
	if got := m.Counter("fleet_points_total").Value(); got != uint64(len(results)) {
		t.Errorf("fleet_points_total = %d, want %d", got, len(results))
	}
	if got := m.Counter("fleet_point_errors_total").Value(); got != 0 {
		t.Errorf("fleet_point_errors_total = %d", got)
	}
	if got := m.Counter("core_runs_total").Value(); got != uint64(len(results)) {
		t.Errorf("core_runs_total = %d, want %d", got, len(results))
	}
	var wantInst uint64
	for _, r := range results {
		wantInst += r.Result.Instructions
	}
	if got := m.Counter("tm_instructions_total").Value(); got != wantInst {
		t.Errorf("tm_instructions_total = %d, want %d (sum over points)", got, wantInst)
	}
	if m.Histogram("fleet_point_seconds", nil).Count() != uint64(len(results)) {
		t.Error("fleet_point_seconds missing samples")
	}
	// Every run landed on its own trace track, plus the fleet's pid 0.
	pids := map[int]bool{}
	for _, ev := range tel.Trace.Events() {
		pids[ev.PID] = true
	}
	if !pids[0] || len(pids) != len(results)+1 {
		t.Errorf("expected %d distinct trace pids + fleet track, got %v", len(results), pids)
	}
}

// TestResultJSONSchema pins the stable serialization contract of `fastsim
// -json`: renaming or dropping a tagged field is a breaking change this
// test makes loud.
func TestResultJSONSchema(t *testing.T) {
	raw, err := json.Marshal(Result{Engine: "fast", Workload: "w"})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"engine", "workload", "instructions", "basic_blocks", "target_cycles",
		"ipc", "fm_nanos", "tm_nanos", "sim_nanos", "target_mips", "kips",
		"bp_accuracy", "mispredicts", "wrong_path", "rollbacks", "trace_words",
		"link", "tm", "tb_max_occupancy",
	}
	for _, k := range want {
		if _, ok := m[k]; !ok {
			t.Errorf("Result JSON missing key %q", k)
		}
	}
	if len(m) != len(want) {
		t.Errorf("Result JSON has %d keys, schema lists %d — update the schema test and DESIGN.md together", len(m), len(want))
	}
	for _, sub := range []string{"link", "tm"} {
		if _, ok := m[sub].(map[string]any); !ok {
			t.Errorf("Result JSON %q should be a nested object", sub)
		}
	}
}
