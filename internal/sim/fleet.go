package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Point is one simulation to run: an engine name plus its parameters.
type Point struct {
	Engine string
	Params Params
}

func (pt Point) String() string {
	w := workloadName(pt.Params)
	if pt.Params.Predictor != "" {
		return fmt.Sprintf("%s/%s/%s", pt.Engine, w, pt.Params.Predictor)
	}
	return fmt.Sprintf("%s/%s", pt.Engine, w)
}

// Sweep declares a cross product {Workloads × Engines × Variants} of
// simulation points over a base parameter set. Experiments are sweep
// literals: Figure 4 is {16 workloads × fast × 3 predictors}, Table 3 is
// {Linux-2.4 × 4 engines}, a design-space exploration is {1 workload ×
// fast × width·predictor variants}.
//
// The JSON tags mirror Params': internal/service accepts a Sweep spec on
// POST /v1/sweeps (strictly decoded, unknown fields rejected) and fans it
// into one child job per expanded point.
type Sweep struct {
	// Engines are registry names; empty means {"fast"}.
	Engines []string `json:"engines,omitempty"`
	// Workloads are workload names; empty means {Base.Workload}.
	Workloads []string `json:"workloads,omitempty"`
	// Variants are parameter overlays merged over Base (zero fields keep
	// the base value); empty means one point per workload × engine.
	Variants []Params `json:"variants,omitempty"`
	// Base supplies the fields every point shares.
	Base Params `json:"base"`
}

// Points expands the sweep in deterministic spec order: workloads
// outermost, then engines, then variants — the order the paper's tables
// print in.
func (s Sweep) Points() []Point {
	engines := s.Engines
	if len(engines) == 0 {
		engines = []string{"fast"}
	}
	workloads := s.Workloads
	if len(workloads) == 0 {
		workloads = []string{s.Base.Workload}
	}
	variants := s.Variants
	if len(variants) == 0 {
		variants = []Params{{}}
	}
	points := make([]Point, 0, len(workloads)*len(engines)*len(variants))
	for _, w := range workloads {
		for _, e := range engines {
			for _, v := range variants {
				p := Merge(s.Base, v)
				if w != "" {
					p.Workload = w
				}
				points = append(points, Point{Engine: e, Params: p})
			}
		}
	}
	return points
}

// Merge overlays v on base: non-zero fields of v win, zero fields inherit.
// Mutate hooks chain (base first, then the variant's).
func Merge(base, v Params) Params {
	p := base
	if v.Workload != "" {
		p.Workload = v.Workload
	}
	if v.Program != nil {
		p.Program = v.Program
	}
	if v.Predictor != "" {
		p.Predictor = v.Predictor
	}
	if v.IssueWidth != 0 {
		p.IssueWidth = v.IssueWidth
	}
	if v.Link != "" {
		p.Link = v.Link
	}
	if v.PollEveryBBs != 0 {
		p.PollEveryBBs = v.PollEveryBBs
	}
	if v.BPP {
		p.BPP = true
	}
	if v.MaxInstructions != 0 {
		p.MaxInstructions = v.MaxInstructions
	}
	if v.Cores != 0 {
		p.Cores = v.Cores
	}
	if v.InterconnectLatency != 0 {
		p.InterconnectLatency = v.InterconnectLatency
	}
	if v.DiskLatency != 0 {
		p.DiskLatency = v.DiskLatency
	}
	if v.TraceChunk != 0 {
		p.TraceChunk = v.TraceChunk
	}
	if v.ICacheEntries != 0 {
		p.ICacheEntries = v.ICacheEntries
	}
	if v.SuperblockLen != 0 {
		p.SuperblockLen = v.SuperblockLen
	}
	if v.Rollback != "" {
		p.Rollback = v.Rollback
	}
	if v.CheckpointInterval != 0 {
		p.CheckpointInterval = v.CheckpointInterval
	}
	if v.UncompressedTrace {
		p.UncompressedTrace = true
	}
	if v.FutureMicroarch {
		p.FutureMicroarch = true
	}
	if v.Telemetry != nil {
		p.Telemetry = v.Telemetry
	}
	if v.Snapshots != nil {
		p.Snapshots = v.Snapshots
	}
	if v.Mutate != nil {
		if base.Mutate != nil {
			baseMut, varMut := base.Mutate, v.Mutate
			p.Mutate = func(c *core.Config) { baseMut(c); varMut(c) }
		} else {
			p.Mutate = v.Mutate
		}
	}
	return p
}

// PointResult is one executed sweep point. Err captures a per-point
// failure (bad engine name, unknown workload, run error, or a recovered
// panic) without aborting the rest of the fleet.
type PointResult struct {
	Index  int // position in the expanded spec order
	Point  Point
	Result Result
	Err    error
}

// Fleet fans sweep points out over a bounded worker pool. Every engine
// instance is private to its point and the registry is read-only, so
// points are embarrassingly parallel; results come back in spec order
// regardless of completion order.
type Fleet struct {
	// Workers bounds concurrency; <=0 means GOMAXPROCS.
	Workers int

	// Telemetry, when non-nil, receives fleet-level metrics (points run,
	// errors, queue wait, per-point wall time) and — if it carries a
	// TraceLog — one span per executed point on the fleet track (trace
	// pid 0, one tid per worker). Point runs additionally inherit it
	// through Params.Telemetry when that is unset.
	Telemetry *obs.Telemetry

	// Progress, when non-nil, is called after every completed point with
	// the count finished so far and the fleet total. Calls are serialized;
	// keep it cheap (a status line, not I/O-heavy work).
	Progress func(done, total int, pr PointResult)
}

// fleetInstruments resolves the fleet's metric handles once per Run; all
// fields are nil (and every method a no-op) when telemetry is off.
type fleetInstruments struct {
	points    *obs.Counter
	errors    *obs.Counter
	queueWait *obs.Histogram
	pointSecs *obs.Histogram
	tlog      *obs.TraceLog
}

func (f Fleet) instruments() fleetInstruments {
	var ins fleetInstruments
	if f.Telemetry == nil {
		return ins
	}
	ins.points = f.Telemetry.Counter("fleet_points_total")
	ins.errors = f.Telemetry.Counter("fleet_point_errors_total")
	ins.queueWait = f.Telemetry.Histogram("fleet_queue_wait_seconds", obs.SecondsBuckets)
	ins.pointSecs = f.Telemetry.Histogram("fleet_point_seconds", obs.SecondsBuckets)
	if ins.tlog = f.Telemetry.TraceLog(); ins.tlog != nil {
		ins.tlog.ProcessName(0, "fleet")
	}
	return ins
}

// Run executes every point and returns results indexed and ordered exactly
// like points. It never aborts early: a failing point is captured in its
// slot and the rest of the fleet keeps going.
func (f Fleet) Run(points []Point) []PointResult {
	return f.RunContext(context.Background(), points)
}

// RunContext is Run with cooperative cancellation: in-flight points stop at
// their next cycle boundary, unclaimed points are marked with ctx.Err()
// without running, and the full spec-order slice still comes back.
func (f Fleet) RunContext(ctx context.Context, points []Point) []PointResult {
	results := make([]PointResult, len(points))
	workers := f.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	ins := f.instruments()
	start := time.Now()
	var mu sync.Mutex // serializes Progress calls
	done := 0
	finish := func(i, worker int, claimed time.Time, pr PointResult) {
		wall := time.Since(claimed)
		ins.points.Inc()
		if pr.Err != nil {
			ins.errors.Inc()
		}
		ins.queueWait.Observe(claimed.Sub(start).Seconds())
		ins.pointSecs.Observe(wall.Seconds())
		if ins.tlog != nil {
			ins.tlog.Complete("fleet", pr.Point.String(), 0, worker+1,
				float64(claimed.Sub(start).Nanoseconds()), float64(wall.Nanoseconds()),
				map[string]any{"index": i, "err": pr.Err != nil})
		}
		results[i] = pr
		if f.Progress != nil {
			mu.Lock()
			done++
			f.Progress(done, len(points), pr)
			mu.Unlock()
		}
	}
	run := func(worker int, i int) {
		if err := ctx.Err(); err != nil {
			// Cancelled before the point started: record the reason, skip
			// the run.
			results[i] = PointResult{Index: i, Point: points[i], Err: err}
			return
		}
		claimed := time.Now()
		finish(i, worker, claimed, runPoint(ctx, i, points[i], f.Telemetry))
	}
	if workers <= 1 {
		for i := range points {
			run(0, i)
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(points) {
					return
				}
				run(worker, i)
			}
		}(w)
	}
	wg.Wait()
	return results
}

// RunSweep expands and executes a sweep.
func (f Fleet) RunSweep(s Sweep) []PointResult { return f.Run(s.Points()) }

// runPoint executes one point, converting panics into per-point errors so
// a corrupt configuration cannot take the whole fleet down. The fleet's
// telemetry flows into the point unless the point carries its own.
func runPoint(ctx context.Context, i int, pt Point, tel *obs.Telemetry) (pr PointResult) {
	pr = PointResult{Index: i, Point: pt}
	defer func() {
		if rec := recover(); rec != nil {
			pr.Err = fmt.Errorf("sim: point %d (%s) panicked: %v", i, pt, rec)
		}
	}()
	if pt.Params.Telemetry == nil {
		pt.Params.Telemetry = tel
	}
	pr.Result, pr.Err = RunContext(ctx, pt.Engine, pt.Params)
	return pr
}

// FirstErr returns the first captured error in spec order, or nil. Sweeps
// that must be all-or-nothing (figure regeneration) gate on it; partial
// consumers iterate instead.
func FirstErr(results []PointResult) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s: %w", r.Point, r.Err)
		}
	}
	return nil
}
