package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Point is one simulation to run: an engine name plus its parameters.
type Point struct {
	Engine string
	Params Params
}

func (pt Point) String() string {
	w := workloadName(pt.Params)
	if pt.Params.Predictor != "" {
		return fmt.Sprintf("%s/%s/%s", pt.Engine, w, pt.Params.Predictor)
	}
	return fmt.Sprintf("%s/%s", pt.Engine, w)
}

// Sweep declares a cross product {Workloads × Engines × Variants} of
// simulation points over a base parameter set. Experiments are sweep
// literals: Figure 4 is {16 workloads × fast × 3 predictors}, Table 3 is
// {Linux-2.4 × 4 engines}, a design-space exploration is {1 workload ×
// fast × width·predictor variants}.
type Sweep struct {
	// Engines are registry names; empty means {"fast"}.
	Engines []string
	// Workloads are workload names; empty means {Base.Workload}.
	Workloads []string
	// Variants are parameter overlays merged over Base (zero fields keep
	// the base value); empty means one point per workload × engine.
	Variants []Params
	// Base supplies the fields every point shares.
	Base Params
}

// Points expands the sweep in deterministic spec order: workloads
// outermost, then engines, then variants — the order the paper's tables
// print in.
func (s Sweep) Points() []Point {
	engines := s.Engines
	if len(engines) == 0 {
		engines = []string{"fast"}
	}
	workloads := s.Workloads
	if len(workloads) == 0 {
		workloads = []string{s.Base.Workload}
	}
	variants := s.Variants
	if len(variants) == 0 {
		variants = []Params{{}}
	}
	points := make([]Point, 0, len(workloads)*len(engines)*len(variants))
	for _, w := range workloads {
		for _, e := range engines {
			for _, v := range variants {
				p := Merge(s.Base, v)
				if w != "" {
					p.Workload = w
				}
				points = append(points, Point{Engine: e, Params: p})
			}
		}
	}
	return points
}

// Merge overlays v on base: non-zero fields of v win, zero fields inherit.
// Mutate hooks chain (base first, then the variant's).
func Merge(base, v Params) Params {
	p := base
	if v.Workload != "" {
		p.Workload = v.Workload
	}
	if v.Program != nil {
		p.Program = v.Program
	}
	if v.Predictor != "" {
		p.Predictor = v.Predictor
	}
	if v.IssueWidth != 0 {
		p.IssueWidth = v.IssueWidth
	}
	if v.Link != "" {
		p.Link = v.Link
	}
	if v.PollEveryBBs != 0 {
		p.PollEveryBBs = v.PollEveryBBs
	}
	if v.BPP {
		p.BPP = true
	}
	if v.MaxInstructions != 0 {
		p.MaxInstructions = v.MaxInstructions
	}
	if v.Mutate != nil {
		if base.Mutate != nil {
			baseMut, varMut := base.Mutate, v.Mutate
			p.Mutate = func(c *core.Config) { baseMut(c); varMut(c) }
		} else {
			p.Mutate = v.Mutate
		}
	}
	return p
}

// PointResult is one executed sweep point. Err captures a per-point
// failure (bad engine name, unknown workload, run error, or a recovered
// panic) without aborting the rest of the fleet.
type PointResult struct {
	Index  int // position in the expanded spec order
	Point  Point
	Result Result
	Err    error
}

// Fleet fans sweep points out over a bounded worker pool. Every engine
// instance is private to its point and the registry is read-only, so
// points are embarrassingly parallel; results come back in spec order
// regardless of completion order.
type Fleet struct {
	// Workers bounds concurrency; <=0 means GOMAXPROCS.
	Workers int
}

// Run executes every point and returns results indexed and ordered exactly
// like points. It never aborts early: a failing point is captured in its
// slot and the rest of the fleet keeps going.
func (f Fleet) Run(points []Point) []PointResult {
	results := make([]PointResult, len(points))
	workers := f.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	if workers <= 1 {
		for i, pt := range points {
			results[i] = runPoint(i, pt)
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(points) {
					return
				}
				results[i] = runPoint(i, points[i])
			}
		}()
	}
	wg.Wait()
	return results
}

// RunSweep expands and executes a sweep.
func (f Fleet) RunSweep(s Sweep) []PointResult { return f.Run(s.Points()) }

// runPoint executes one point, converting panics into per-point errors so
// a corrupt configuration cannot take the whole fleet down.
func runPoint(i int, pt Point) (pr PointResult) {
	pr = PointResult{Index: i, Point: pt}
	defer func() {
		if rec := recover(); rec != nil {
			pr.Err = fmt.Errorf("sim: point %d (%s) panicked: %v", i, pt, rec)
		}
	}()
	pr.Result, pr.Err = Run(pt.Engine, pt.Params)
	return pr
}

// FirstErr returns the first captured error in spec order, or nil. Sweeps
// that must be all-or-nothing (figure regeneration) gate on it; partial
// consumers iterate instead.
func FirstErr(results []PointResult) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s: %w", r.Point, r.Err)
		}
	}
	return nil
}
