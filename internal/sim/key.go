package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/trace"
)

// This file is the content-addressing side of the Params schema: Key()
// hashes the declarative fields into a canonical digest so that two
// parameter sets which provably configure the identical simulation collide,
// and any knob that can move a Result bit separates. Runs are deterministic
// (the golden and invariance tests of internal/sim lock this), so
// engine-name + Params.Key() fully addresses a sim.Result — which is what
// lets internal/service serve repeated submissions from a cache instead of
// simulating again.

// keyDefaults are the engine defaults the canonical form folds in, one per
// documented "0/empty means X" rule on Params. Each constant is pinned to
// the layer that owns the default by a test in key_test.go, so a default
// drifting there breaks the build here instead of silently splitting (or
// worse, falsely merging) cache keys.
const (
	keyDefaultWorkload  = "Linux-2.4" // Params.workloadSpec
	keyDefaultPredictor = "gshare"    // tm.DefaultConfig().Predictor
	keyDefaultIssue     = 2           // tm.DefaultConfig().IssueWidth
	keyDefaultLink      = "drc"       // Params.link
	keyDefaultPollBBs   = 2           // core.DefaultConfig().PollEveryBBs
	keyDefaultRollback  = "journal"   // fm's default recovery engine
	keyDefaultCkptEvery = 64          // fm.newCheckpointEngine
	keyDefaultCores     = 1           // Params.Cores: 0 means single-core
	keyDefaultHopLat    = 4           // cache.DefaultInterconnectLatency
	keyDefaultDiskLat   = 200         // workload.DiskLatency
)

// canonicalParams is the shape Key hashes: every Params field that can
// change a Result, with defaults resolved and result-invariant knobs
// dropped. The JSON encoding of this struct (fixed field order, no
// omitempty) is the canonical byte string.
//
// Deliberately absent:
//
//   - ICacheEntries: the FM predecode cache is bit-invariant at every size
//     including disabled (TestFastEngineICacheInvariance), so two
//     submissions differing only in cache size are the same simulation.
//   - SuperblockLen: the superblock fast path is likewise bit-invariant at
//     every length including disabled
//     (TestFastEngineSuperblockInvariance).
//   - Telemetry: instrumentation reads the run, it never steers it.
//   - Mutate: an opaque code hook cannot be hashed — Cacheable reports
//     such Params as unaddressable and callers must not cache them.
type canonicalParams struct {
	Version         int    `json:"v"` // bump when canonicalization rules change
	Workload        string `json:"workload"`
	ProgramDigest   string `json:"program_digest,omitempty"`
	Predictor       string `json:"predictor"`
	IssueWidth      int    `json:"issue_width"`
	Link            string `json:"link"`
	PollEveryBBs    int    `json:"poll_every_bbs"`
	BPP             bool   `json:"bpp"`
	MaxInstructions uint64 `json:"max_instructions"`
	TraceChunk      int    `json:"trace_chunk"`
	Rollback        string `json:"rollback"`
	CheckpointEvery int    `json:"checkpoint_every"`
	Uncompressed    bool   `json:"uncompressed"`
	FutureMicroarch bool   `json:"future_microarch"`
	Cores           int    `json:"cores"`
	HopLatency      int    `json:"hop_latency"`
	DiskLatency     int    `json:"disk_latency"`
}

// canonical resolves p into the form Key hashes.
func (p Params) canonical() canonicalParams {
	c := canonicalParams{
		Version:         3, // v3: boot-environment disk_latency
		Workload:        p.Workload,
		Predictor:       p.Predictor,
		IssueWidth:      p.IssueWidth,
		Link:            p.Link,
		PollEveryBBs:    p.PollEveryBBs,
		BPP:             p.BPP,
		MaxInstructions: p.MaxInstructions,
		TraceChunk:      p.TraceChunk,
		Rollback:        p.Rollback,
		CheckpointEvery: p.CheckpointInterval,
		Uncompressed:    p.UncompressedTrace,
		FutureMicroarch: p.FutureMicroarch,
		Cores:           p.Cores,
		HopLatency:      p.InterconnectLatency,
		DiskLatency:     p.DiskLatency,
	}
	if p.Program != nil {
		// A raw image replaces the named workload entirely; only the parts
		// the FM loads (base, entry, code bytes) reach the digest — symbol
		// tables are assembler metadata.
		h := sha256.New()
		binary.Write(h, binary.LittleEndian, uint64(p.Program.Base))
		binary.Write(h, binary.LittleEndian, uint64(p.Program.Entry))
		h.Write(p.Program.Code)
		c.Workload = ""
		c.ProgramDigest = hex.EncodeToString(h.Sum(nil))
	} else if c.Workload == "" {
		c.Workload = keyDefaultWorkload
	}
	if c.Predictor == "" {
		c.Predictor = keyDefaultPredictor
	}
	if c.IssueWidth == 0 {
		c.IssueWidth = keyDefaultIssue
	}
	if c.Link == "" {
		c.Link = keyDefaultLink
	}
	if c.PollEveryBBs == 0 {
		c.PollEveryBBs = keyDefaultPollBBs
	}
	if c.TraceChunk == 0 {
		c.TraceChunk = trace.DefaultChunk
	}
	if c.Rollback == "" {
		c.Rollback = keyDefaultRollback
	}
	switch {
	case c.Rollback != "checkpoint":
		// The spacing knob only exists under checkpoint recovery; under the
		// journal it is dead state and must not split keys.
		c.CheckpointEvery = 0
	case c.CheckpointEvery == 0:
		c.CheckpointEvery = keyDefaultCkptEvery
	}
	if c.Cores == 0 {
		c.Cores = keyDefaultCores
	}
	switch {
	case c.Cores == 1:
		// A single-core target has no interconnect; the hop knob is dead
		// state there and must not split keys.
		c.HopLatency = 0
	case c.HopLatency == 0:
		c.HopLatency = keyDefaultHopLat
	}
	switch {
	case c.ProgramDigest != "":
		// Bare-metal programs boot no devices; the disk knob is dead state
		// there and must not split keys.
		c.DiskLatency = 0
	case c.DiskLatency == 0:
		c.DiskLatency = keyDefaultDiskLat
	}
	return c
}

// Key returns the canonical content address of p: a SHA-256 hex digest over
// the resolved parameter set. Two Params that configure the identical
// simulation — spelled with explicit defaults or left zero, differing only
// in result-invariant knobs (ICacheEntries) or instrumentation (Telemetry)
// — return the same key; changing any result-affecting knob changes it.
//
// Key ignores a Mutate hook: check Cacheable before using a key to index
// cached results.
func (p Params) Key() string {
	raw, err := json.Marshal(p.canonical())
	if err != nil {
		// canonicalParams is a flat struct of scalars; Marshal cannot fail.
		panic(fmt.Sprintf("sim: canonical params encoding: %v", err))
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// Cacheable reports whether p is fully described by its declarative fields,
// i.e. whether Key addresses the run's Result. A Mutate hook is opaque code
// the key cannot see, so such Params must never be served from (or fill) a
// result cache.
func (p Params) Cacheable() bool { return p.Mutate == nil }

// DecodeParams is the strict JSON boundary for Params: unknown fields and
// trailing data are rejected, so a typo'd knob in an API request fails loud
// instead of silently running the default simulation. The zero-length input
// decodes to the zero Params (engine defaults).
func DecodeParams(data []byte) (Params, error) {
	var p Params
	if len(bytes.TrimSpace(data)) == 0 {
		return p, nil
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Params{}, fmt.Errorf("sim: decode params: %w", err)
	}
	if dec.More() {
		return Params{}, fmt.Errorf("sim: decode params: trailing data after JSON object")
	}
	return p, nil
}

// DecodeSweep is DecodeParams for a Sweep spec: one strictly-decoded JSON
// object (unknown fields anywhere — including inside Base or a Variant —
// are rejected).
func DecodeSweep(r io.Reader) (Sweep, error) {
	var s Sweep
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Sweep{}, fmt.Errorf("sim: decode sweep: %w", err)
	}
	if dec.More() {
		return Sweep{}, fmt.Errorf("sim: decode sweep: trailing data after JSON object")
	}
	return s, nil
}
