package sim

import (
	"context"
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/fm"
	"repro/internal/isa"
	"repro/internal/tm"
	"repro/internal/workload"
)

// The five simulator families of the paper's comparison, as registry
// entries. "fast" and "fast-parallel" are the same coupled simulator in its
// deterministic serial and goroutine-parallel forms; "monolithic" and
// "gems" are the same integrated software simulator under two calibrated
// cost models (Table 3's sim-outorder and GEMS rows); "lockstep" is the
// round-trip-per-cycle partitioning (§5); "fsbcache" is the Intel
// FPGA-L1-on-the-front-side-bus experiment [30].
func init() {
	Register("fast", func() Engine { return &fastEngine{} })
	Register("fast-parallel", func() Engine { return &fastEngine{parallel: true} })
	Register("monolithic", func() Engine {
		return &monoEngine{name: "monolithic", cost: baseline.SimOutorderCost(),
			label: "monolithic (sim-outorder-class)",
			desc:  "integrated software simulator, sim-outorder-class cost model (Table 3)"}
	})
	Register("gems", func() Engine {
		return &monoEngine{name: "gems", cost: baseline.GEMSCost(),
			label: "monolithic (GEMS-class)",
			desc:  "integrated full-system software simulator, GEMS-class cost model (Table 3)"}
	})
	Register("lockstep", func() Engine { return &lockstepEngine{} })
	Register("fsbcache", func() Engine { return &fsbEngine{} })
}

// prepare resolves the shared parts of Params: the program image and the
// boot environment (nil for raw bare-metal programs).
func prepare(p Params) (*isa.Program, *workload.Boot, fm.Config, error) {
	if p.Program != nil {
		// Bare metal: no toyOS underneath, so nothing can service
		// interrupts.
		return p.Program, nil, fm.Config{DisableInterrupts: true, ICacheEntries: p.ICacheEntries, SuperblockLen: p.SuperblockLen}, nil
	}
	// workloadSpec resolves through the registry, which already builds the
	// spec at p.Cores (smp-* bake the count into the user program; other
	// workloads park idle secondaries in the kernel).
	spec, err := p.workloadSpec()
	if err != nil {
		return nil, nil, fm.Config{}, err
	}
	if p.DiskLatency > 0 {
		spec.Kernel.DiskLatency = uint64(p.DiskLatency)
	}
	boot, err := spec.Build()
	if err != nil {
		return nil, nil, fm.Config{}, err
	}
	return boot.Kernel, boot, fm.Config{Devices: boot.Devices(), ICacheEntries: p.ICacheEntries, SuperblockLen: p.SuperblockLen}, nil
}

// fastEngine runs the FAST simulator proper in either coupling mode.
type fastEngine struct {
	parallel bool
	params   Params
	boot     *workload.Boot
	serial   *core.Sim
	par      *core.ParallelSim
	multi    *core.Multicore

	resumed   bool   // warm-started from a stored snapshot
	resumedIN uint64 // committed instructions skipped by the warm start
}

func (e *fastEngine) Describe() string {
	if e.parallel {
		return "FAST, FM ∥ TM in goroutines coupled by the trace buffer (§3)"
	}
	return "FAST, deterministic rate-matched serial coupling (§3)"
}

func (e *fastEngine) Configure(p Params) error {
	if err := p.validate(); err != nil {
		return err
	}
	prog, boot, fmCfg, err := prepare(p)
	if err != nil {
		return err
	}
	link, err := p.link()
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.TM = p.tmConfig()
	cfg.FM = fmCfg
	cfg.Link = link
	cfg.BPP = p.BPP
	cfg.MaxInstructions = p.MaxInstructions
	cfg.TraceChunk = p.TraceChunk
	cfg.Telemetry = p.Telemetry
	switch {
	case p.PollEveryBBs > 0:
		cfg.PollEveryBBs = p.PollEveryBBs
	case p.PollEveryBBs == PollOnResteer:
		cfg.PollEveryBBs = 0
	}
	if p.Rollback == "checkpoint" {
		cfg.FM.Rollback = fm.RollbackCheckpoint
		cfg.FM.CheckpointInterval = p.CheckpointInterval
	}
	if p.UncompressedTrace {
		cfg.FM.Encoding.Uncompressed = true
	}
	if p.FutureMicroarch {
		cfg.TM = cfg.TM.WithFutureMicroarch()
	}
	if p.Mutate != nil {
		p.Mutate(&cfg)
	}
	e.params, e.boot = p, boot
	if p.Cores > 1 && e.parallel {
		// The goroutine-parallel coupling owes its determinism to the
		// single-core rate-matching protocol; the multicore scheduler is
		// serial-only (and deterministic by construction).
		return fmt.Errorf("sim: fast-parallel runs single-core targets only (got %d cores); use the fast engine", p.Cores)
	}

	// Warm-start tier. A stored snapshot whose prefix matches (and whose
	// capture point sits inside this run's instruction budget) seeds the
	// simulator past boot; a miss arms the one-shot capture hook instead.
	// Excluded: fast-parallel (capture rides the serial scheduler), raw
	// bare-metal programs (no boot to skip) and uncacheable params (an
	// opaque Mutate hook makes the prefix key blind).
	var resume *Snapshot
	var capture func(in uint64, blob []byte)
	if p.Snapshots != nil && p.Cacheable() && !e.parallel && p.Program == nil {
		store, prefix := p.Snapshots, p.SnapshotPrefix()
		capture = func(in uint64, blob []byte) {
			store.PutSnapshot(Snapshot{Prefix: prefix, IN: in, Blob: blob})
		}
		got, ok := store.GetSnapshot(prefix)
		switch {
		case ok && (p.MaxInstructions == 0 || got.IN < p.MaxInstructions):
			resume = &got
		case !ok:
			cfg.SnapshotHook = capture
		}
	}

	build := func() error {
		e.serial, e.par, e.multi = nil, nil, nil
		if p.Cores > 1 {
			m, err := core.NewMulticore(cfg, core.MulticoreConfig{
				Cores:               p.Cores,
				InterconnectLatency: p.InterconnectLatency,
			})
			if err != nil {
				return err
			}
			m.LoadProgram(prog)
			e.multi = m
			return nil
		}
		if e.parallel {
			s, err := core.NewParallel(cfg)
			if err != nil {
				return err
			}
			s.LoadProgram(prog)
			e.par = s
			return nil
		}
		s, err := core.New(cfg)
		if err != nil {
			return err
		}
		s.LoadProgram(prog)
		e.serial = s
		return nil
	}
	if err := build(); err != nil {
		return err
	}
	if resume != nil {
		var rerr error
		if e.multi != nil {
			rerr = e.multi.Restore(resume.Blob)
		} else {
			rerr = e.serial.Restore(resume.Blob)
		}
		if rerr != nil {
			// A corrupt stored snapshot must not fail the run: rebuild cold
			// with the capture hook armed, so the bad blob is overwritten.
			cfg.SnapshotHook = capture
			return build()
		}
		e.resumed, e.resumedIN = true, resume.IN
	}
	return nil
}

// ResumedFrom reports whether (and at which committed-instruction count)
// the configured run was warm-started from a stored snapshot.
func (e *fastEngine) ResumedFrom() (uint64, bool) { return e.resumedIN, e.resumed }

func (e *fastEngine) Run() (Result, error) { return e.RunContext(context.Background()) }

func (e *fastEngine) RunContext(ctx context.Context) (Result, error) {
	if e.multi != nil {
		mr, err := e.multi.RunContext(ctx)
		return fromMulticore(e.params, mr), err
	}
	var (
		r   core.Result
		err error
	)
	name := "fast"
	if e.parallel {
		name = "fast-parallel"
		r, err = e.par.RunContext(ctx)
	} else {
		r, err = e.serial.RunContext(ctx)
	}
	return fromCore(name, e.params, r), err
}

// TimingModel and FunctionalModel expose core 0's pair on a multicore
// engine; Multicore.Cores reaches the siblings.
func (e *fastEngine) TimingModel() *tm.TM {
	if e.multi != nil {
		return e.multi.Cores()[0].TM
	}
	if e.parallel {
		return e.par.TM
	}
	return e.serial.TM
}

func (e *fastEngine) FunctionalModel() *fm.Model {
	if e.multi != nil {
		return e.multi.Cores()[0].FM
	}
	if e.parallel {
		return e.par.FM
	}
	return e.serial.FM
}

// Multicore exposes the N-core simulator when the engine was configured
// with Cores > 1 (nil otherwise) — per-core results and the directory live
// there.
func (e *fastEngine) Multicore() *core.Multicore { return e.multi }

func (e *fastEngine) Boot() *workload.Boot { return e.boot }

// fromCore lifts a core.Result into the canonical shape.
func fromCore(engine string, p Params, r core.Result) Result {
	return Result{
		Engine:         engine,
		Workload:       workloadName(p),
		Instructions:   r.Instructions,
		BasicBlocks:    r.TM.BasicBlocks,
		TargetCycles:   r.TargetCycles,
		IPC:            r.IPC,
		FMNanos:        r.FMNanos,
		TMNanos:        r.TMNanos,
		SimNanos:       r.SimNanos,
		TargetMIPS:     r.TargetMIPS,
		KIPS:           r.TargetMIPS * 1000,
		BPAccuracy:     r.BPAccuracy,
		Mispredicts:    r.Mispredicts,
		WrongPath:      r.WrongPath,
		Rollbacks:      r.Rollbacks,
		TraceWords:     r.TraceWords,
		LinkStats:      r.LinkStats,
		TM:             r.TM,
		TBMaxOccupancy: r.TBMaxOccupancy,
	}
}

// fromMulticore lifts a core.MulticoreResult into the canonical shape: the
// aggregate counters plus the multicore-only summary fields.
func fromMulticore(p Params, mr core.MulticoreResult) Result {
	r := fromCore("fast", p, mr.Aggregate)
	r.Cores = len(mr.PerCore)
	r.CoherenceTransfers = mr.Coherence.Transfers
	r.CoherenceInvalidations = mr.Coherence.Invalidations
	r.CoherenceHops = mr.Coherence.Hops
	return r
}

// fromBaseline lifts a baseline.Result into the canonical shape.
func fromBaseline(engine string, p Params, r baseline.Result) Result {
	return Result{
		Engine:       engine,
		Workload:     workloadName(p),
		Instructions: r.Instructions,
		BasicBlocks:  r.TM.BasicBlocks,
		TargetCycles: r.TargetCycles,
		IPC:          r.IPC,
		SimNanos:     r.SimNanos,
		TargetMIPS:   r.KIPS / 1000,
		KIPS:         r.KIPS,
		BPAccuracy:   r.BPAccuracy,
		Mispredicts:  r.TM.Mispredicts,
		TM:           r.TM,
	}
}

// rejectMulticore is the shared guard for the baseline engines: none of the
// comparison simulators models a multicore target.
func rejectMulticore(name string, p Params) error {
	if p.Cores > 1 {
		return fmt.Errorf("sim: engine %s runs single-core targets only (got %d cores); use the fast engine", name, p.Cores)
	}
	return nil
}

func workloadName(p Params) string {
	if p.Program != nil {
		return "(raw program)"
	}
	if p.Workload == "" {
		return "Linux-2.4"
	}
	return p.Workload
}

// monoEngine is the integrated software simulator under a calibrated cost
// model (Table 3's sim-outorder and GEMS rows).
type monoEngine struct {
	name, label, desc string
	cost              baseline.SoftwareCost
	params            Params
	boot              *workload.Boot
	run               func(context.Context) (baseline.Result, error)
}

func (e *monoEngine) Describe() string { return e.desc }

func (e *monoEngine) Configure(p Params) error {
	if err := p.validate(); err != nil {
		return err
	}
	if err := rejectMulticore(e.name, p); err != nil {
		return err
	}
	prog, boot, fmCfg, err := prepare(p)
	if err != nil {
		return err
	}
	if _, err := p.link(); err != nil {
		return err // validated for uniformity; the cost model has no link
	}
	b := baseline.Monolithic{
		TM: p.tmConfig(), FM: fmCfg, Cost: e.cost,
		Label: e.label, MaxInstructions: p.MaxInstructions,
	}
	e.params, e.boot = p, boot
	e.run = func(ctx context.Context) (baseline.Result, error) { return b.RunContext(ctx, prog) }
	return nil
}

func (e *monoEngine) Run() (Result, error) { return e.RunContext(context.Background()) }

func (e *monoEngine) RunContext(ctx context.Context) (Result, error) {
	r, err := e.run(ctx)
	return fromBaseline(e.name, e.params, r), err
}

func (e *monoEngine) Boot() *workload.Boot { return e.boot }

// lockstepEngine is the timing-directed partitioning that round-trips the
// host link every target cycle (Asim/Timing-First/HASim class, §5).
type lockstepEngine struct {
	params Params
	boot   *workload.Boot
	run    func(context.Context) (baseline.Result, error)
}

func (e *lockstepEngine) Describe() string {
	return "lockstep timing-directed partitioning, one link round trip per target cycle (§5)"
}

func (e *lockstepEngine) Configure(p Params) error {
	if err := p.validate(); err != nil {
		return err
	}
	if err := rejectMulticore("lockstep", p); err != nil {
		return err
	}
	prog, boot, fmCfg, err := prepare(p)
	if err != nil {
		return err
	}
	link, err := p.link()
	if err != nil {
		return err
	}
	b := baseline.Lockstep{
		TM: p.tmConfig(), FM: fmCfg, Link: link,
		FunctionalNanosPerCycle: 50, FPGANanosPerCycle: 300,
		MaxInstructions: p.MaxInstructions,
	}
	e.params, e.boot = p, boot
	e.run = func(ctx context.Context) (baseline.Result, error) { return b.RunContext(ctx, prog) }
	return nil
}

func (e *lockstepEngine) Run() (Result, error) { return e.RunContext(context.Background()) }

func (e *lockstepEngine) RunContext(ctx context.Context) (Result, error) {
	r, err := e.run(ctx)
	return fromBaseline("lockstep", e.params, r), err
}

func (e *lockstepEngine) Boot() *workload.Boot { return e.boot }

// fsbEngine is the Intel FPGA-L1-cache-on-the-front-side-bus experiment:
// the result is the FPGA-assisted simulator; the pure-software simulator it
// must be compared against is kept for Software().
type fsbEngine struct {
	params   Params
	boot     *workload.Boot
	run      func(context.Context) (baseline.Result, baseline.Result, error)
	software Result
}

func (e *fsbEngine) Describe() string {
	return "software simulator with its L1 data cache offloaded to an FPGA on the FSB [30]"
}

func (e *fsbEngine) Configure(p Params) error {
	if err := p.validate(); err != nil {
		return err
	}
	if err := rejectMulticore("fsbcache", p); err != nil {
		return err
	}
	prog, boot, fmCfg, err := prepare(p)
	if err != nil {
		return err
	}
	link, err := p.link()
	if err != nil {
		return err
	}
	b := baseline.FSBCache{
		TM: p.tmConfig(), FM: fmCfg, Cost: baseline.SimOutorderCost(),
		Link: link, MaxInstructions: p.MaxInstructions,
	}
	e.params, e.boot = p, boot
	e.run = func(ctx context.Context) (baseline.Result, baseline.Result, error) {
		return b.RunContext(ctx, prog)
	}
	return nil
}

func (e *fsbEngine) Run() (Result, error) { return e.RunContext(context.Background()) }

func (e *fsbEngine) RunContext(ctx context.Context) (Result, error) {
	withFPGA, software, err := e.run(ctx)
	if err != nil {
		return Result{}, err
	}
	e.software = fromBaseline("fsbcache", e.params, software)
	e.software.Engine = "fsbcache(software)"
	return fromBaseline("fsbcache", e.params, withFPGA), nil
}

func (e *fsbEngine) Boot() *workload.Boot { return e.boot }

// Software returns the unmodified pure-software result of the same run —
// the comparison point that shows the FSB cache makes things *slower*.
func (e *fsbEngine) Software() Result { return e.software }

// SoftwareComparison re-exposes the fsbcache engine's second result via the
// Engine interface: fastsim prints both sides of the experiment.
type SoftwareComparison interface{ Software() Result }
