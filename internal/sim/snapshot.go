package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/snap"
)

// This file is the warm-start side of the content-addressing scheme. A
// boot is the expensive shared prefix of every sweep point that differs
// only in its instruction cap: the FAST engines capture the coupled state
// at the first quiescent boundary after boot completion (core.Sim /
// core.Multicore snapshots) and later runs resume from it, skipping the
// boot instructions entirely. Determinism makes this safe — a resumed run
// is bit-identical to the uninterrupted one (locked by the warm-start
// goldens and the snapshots-on/off determinism matrix) — and
// SnapshotPrefix makes it addressable: a second canonical key that drops
// exactly the fields a boot cannot depend on.

// Snapshot is one serialized warm-start artifact: the engine-level wrapper
// around a core snapshot blob, carrying the prefix key it serves and the
// committed-instruction count it was captured at.
type Snapshot struct {
	// Prefix is Params.SnapshotPrefix() of every parameter set this
	// snapshot can seed.
	Prefix string
	// IN is the committed-instruction count at capture; a run whose
	// MaxInstructions is at or below it must run cold.
	IN uint64
	// Blob is the core.Sim (single-core) or core.Multicore (Cores > 1)
	// snapshot encoding.
	Blob []byte
}

// snapshotArtifactV versions the Encode wrapper, independently of the core
// blob's own layer versions.
const snapshotArtifactV = 1

// Encode serializes the artifact for a blob store.
func (s Snapshot) Encode() []byte {
	w := snap.NewWriter(len(s.Blob) + len(s.Prefix) + 16)
	w.U8(snapshotArtifactV)
	w.U64(s.IN)
	w.String(s.Prefix)
	w.Bytes32(s.Blob)
	return w.Bytes()
}

// DecodeSnapshot rejects truncated or corrupt artifacts without panicking;
// the embedded core blob is validated later, layer by layer, at restore.
func DecodeSnapshot(raw []byte) (Snapshot, error) {
	r := snap.NewReader(raw)
	if v := r.U8(); r.Err() == nil && v != snapshotArtifactV {
		return Snapshot{}, snap.Corruptf("snapshot artifact version %d, want %d", v, snapshotArtifactV)
	}
	s := Snapshot{IN: r.U64(), Prefix: r.String(), Blob: r.Bytes32()}
	if err := r.Close(); err != nil {
		return Snapshot{}, err
	}
	return s, nil
}

// SnapshotStore is the warm-start tier the FAST engines talk to.
// GetSnapshot resolves a prefix key; PutSnapshot is called at most once
// per run, from the capture hook, and is best-effort (a dropped snapshot
// only costs a future cold boot). Implementations must be safe for
// concurrent use. internal/service implements it over the same disk
// store that persists results, which is what makes the tier cluster-wide.
type SnapshotStore interface {
	GetSnapshot(prefix string) (Snapshot, bool)
	PutSnapshot(s Snapshot)
}

// SnapshotPrefix is the second canonical content address of p: a SHA-256
// digest over the resolved parameter set with the instruction cap dropped.
// Two sweep points that differ only in MaxInstructions boot identically,
// so they share a prefix key and one captured snapshot serves both — the
// cap is carried by the artifact (Snapshot.IN) and checked at resume time
// instead. Every other result-affecting knob separates, exactly as in
// Key. Empty when p is not content-addressable (Cacheable).
func (p Params) SnapshotPrefix() string {
	if !p.Cacheable() {
		return ""
	}
	c := p.canonical()
	c.MaxInstructions = 0
	raw, err := json.Marshal(c)
	if err != nil {
		// canonicalParams is a flat struct of scalars; Marshal cannot fail.
		panic(fmt.Sprintf("sim: canonical params encoding: %v", err))
	}
	// Domain-separated from Key: the two address spaces must never collide
	// even for parameter sets whose canonical JSON coincides.
	h := sha256.New()
	h.Write([]byte("snapshot-prefix\x00"))
	h.Write(raw)
	return hex.EncodeToString(h.Sum(nil))
}

// WarmStarted is implemented by engines that can resume from a snapshot
// store; ResumedFrom reports the committed-instruction count the run was
// resumed at (ok=false when the run booted cold).
type WarmStarted interface {
	ResumedFrom() (in uint64, ok bool)
}
