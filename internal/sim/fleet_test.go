package sim

import (
	"testing"

	"repro/internal/core"
)

// TestSweepPoints checks the deterministic expansion order: workloads
// outermost, then engines, then variants — and the base/variant merge.
func TestSweepPoints(t *testing.T) {
	s := Sweep{
		Workloads: []string{"w1", "w2"},
		Engines:   []string{"e1", "e2"},
		Variants:  []Params{{Predictor: "gshare"}, {Predictor: "perfect", IssueWidth: 4}},
		Base:      Params{MaxInstructions: 123, IssueWidth: 2},
	}
	pts := s.Points()
	if len(pts) != 8 {
		t.Fatalf("got %d points, want 8", len(pts))
	}
	want := []struct {
		engine, workload, pred string
		width                  int
	}{
		{"e1", "w1", "gshare", 2}, {"e1", "w1", "perfect", 4},
		{"e2", "w1", "gshare", 2}, {"e2", "w1", "perfect", 4},
		{"e1", "w2", "gshare", 2}, {"e1", "w2", "perfect", 4},
		{"e2", "w2", "gshare", 2}, {"e2", "w2", "perfect", 4},
	}
	for i, w := range want {
		pt := pts[i]
		if pt.Engine != w.engine || pt.Params.Workload != w.workload ||
			pt.Params.Predictor != w.pred || pt.Params.IssueWidth != w.width {
			t.Errorf("point %d = %s/%s/%s width %d, want %s/%s/%s width %d",
				i, pt.Engine, pt.Params.Workload, pt.Params.Predictor, pt.Params.IssueWidth,
				w.engine, w.workload, w.pred, w.width)
		}
		if pt.Params.MaxInstructions != 123 {
			t.Errorf("point %d lost base MaxInstructions", i)
		}
	}
}

// TestSweepDefaults checks the empty-field defaults: fast engine, one
// workload slot, one variant.
func TestSweepDefaults(t *testing.T) {
	pts := Sweep{Base: Params{Workload: "w"}}.Points()
	if len(pts) != 1 || pts[0].Engine != "fast" || pts[0].Params.Workload != "w" {
		t.Fatalf("unexpected default expansion: %+v", pts)
	}
}

// TestMergeMutateChains checks that variant Mutate hooks compose with the
// base hook instead of replacing it.
func TestMergeMutateChains(t *testing.T) {
	var order []string
	base := Params{Mutate: func(*core.Config) { order = append(order, "base") }}
	v := Params{Mutate: func(*core.Config) { order = append(order, "variant") }}
	merged := Merge(base, v)
	merged.Mutate(&core.Config{})
	if len(order) != 2 || order[0] != "base" || order[1] != "variant" {
		t.Fatalf("mutate chain order = %v", order)
	}
}

// TestFleetErrorCapture injects failing points into a sweep and checks the
// fleet's contract: every other point still runs, spec order is preserved,
// and failures are captured in place instead of aborting the run.
func TestFleetErrorCapture(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled runs")
	}
	ok := Params{Workload: "164.gzip", MaxInstructions: 2000}
	points := []Point{
		{Engine: "fast", Params: ok},
		{Engine: "fast", Params: Params{Workload: "does-not-exist"}}, // bad workload
		{Engine: "lockstep", Params: ok},
		{Engine: "hasim", Params: ok}, // unregistered engine
		{Engine: "monolithic", Params: ok},
	}
	results := Fleet{Workers: 4}.Run(points)
	if len(results) != len(points) {
		t.Fatalf("got %d results for %d points", len(results), len(points))
	}
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d has Index %d", i, r.Index)
		}
		if r.Point.Engine != points[i].Engine {
			t.Errorf("result %d is for engine %s, want %s", i, r.Point.Engine, points[i].Engine)
		}
	}
	for _, i := range []int{0, 2, 4} {
		if results[i].Err != nil {
			t.Errorf("point %d should have succeeded: %v", i, results[i].Err)
		}
		if results[i].Result.Instructions == 0 {
			t.Errorf("point %d has empty result", i)
		}
	}
	for _, i := range []int{1, 3} {
		if results[i].Err == nil {
			t.Errorf("point %d should have failed", i)
		}
	}
	if FirstErr(results) == nil {
		t.Error("FirstErr should surface the first failure")
	}
	if FirstErr(results[:1]) != nil {
		t.Error("FirstErr on clean results should be nil")
	}
}

// TestFleetDeterministicAcrossWorkers runs the same sweep sequentially and
// fanned out and requires bit-identical results — the property that makes
// fleet-regenerated tables byte-identical at any worker count.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled runs")
	}
	sweep := Sweep{
		Workloads: []string{"164.gzip", "181.mcf"},
		Engines:   []string{"fast", "lockstep"},
		Variants:  []Params{{Predictor: "gshare"}, {Predictor: "perfect"}},
		Base:      Params{MaxInstructions: 4000},
	}
	seq := Fleet{Workers: 1}.RunSweep(sweep)
	par := Fleet{Workers: 8}.RunSweep(sweep)
	if len(seq) != len(par) {
		t.Fatalf("length mismatch: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("point %d errored: %v / %v", i, seq[i].Err, par[i].Err)
		}
		// sim.Result contains only comparable fields, so bit-identity is
		// a single comparison.
		if seq[i].Result != par[i].Result {
			t.Errorf("point %d (%s) differs between 1 and 8 workers:\nseq: %+v\npar: %+v",
				i, seq[i].Point, seq[i].Result, par[i].Result)
		}
	}
}

// TestFleetPanicCapture turns an engine panic into a per-point error.
func TestFleetPanicCapture(t *testing.T) {
	points := []Point{{
		Engine: "fast",
		Params: Params{
			Workload: "164.gzip", MaxInstructions: 500,
			Mutate: func(*core.Config) { panic("injected") },
		},
	}}
	results := Fleet{Workers: 2}.Run(points)
	if results[0].Err == nil {
		t.Fatal("panicking point should surface an error")
	}
}
