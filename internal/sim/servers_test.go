package sim_test

import (
	"testing"

	"repro/internal/fm"
	"repro/internal/sim"
)

// TestFastEngineServerWorkloads is the sim-level acceptance bar for the
// toyFS server workloads: each runs to completion on the fast engine
// (they power off well under any cap), produces sane counters, and is
// bit-identical under the superblock fast path — which is what lets the
// CI determinism matrix diff fastbench output across -superblock
// settings. An explicitly spelled default disk latency must also leave
// every result bit untouched, matching the Key() fold.
func TestFastEngineServerWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled full-boot runs")
	}
	for _, w := range []string{"shell-fork", "logwrite", "nicserv"} {
		w := w
		t.Run(w, func(t *testing.T) {
			base := runFast(t, sim.Params{Workload: w})
			if base["instructions"].(float64) == 0 || base["target_cycles"].(float64) == 0 {
				t.Fatalf("zero architectural counters: %v", base)
			}
			if base["workload"].(string) != w {
				t.Errorf("Result.Workload = %q", base["workload"])
			}
			for name, p := range map[string]sim.Params{
				"superblock64":     {Workload: w, ICacheEntries: fm.DefaultICacheEntries, SuperblockLen: 64},
				"explicit disklat": {Workload: w, DiskLatency: 200},
			} {
				got := runFast(t, p)
				if diffs := diffMaps("", base, got); len(diffs) != 0 {
					for _, d := range diffs {
						t.Errorf("%s: %s", name, d)
					}
				}
			}
		})
	}
}

// TestFastEngineServerDiskLatencyMoves pins that the disk knob is live
// for FS workloads: a slower disk must change the run (the FS kernel
// polls the disk status port, so both the instruction path and the
// modeled time move), which is why DiskLatency is part of Params.Key().
func TestFastEngineServerDiskLatencyMoves(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled full-boot runs")
	}
	fast := runFast(t, sim.Params{Workload: "logwrite", DiskLatency: 50})
	slow := runFast(t, sim.Params{Workload: "logwrite", DiskLatency: 1000})
	if fast["instructions"] == slow["instructions"] && fast["target_cycles"] == slow["target_cycles"] {
		t.Errorf("disk latency 50 vs 1000 changed nothing: inst=%v cycles=%v",
			fast["instructions"], fast["target_cycles"])
	}
	if slow["target_cycles"].(float64) <= fast["target_cycles"].(float64) {
		t.Errorf("slow disk finished in %v cycles, fast disk in %v",
			slow["target_cycles"], fast["target_cycles"])
	}
}
