package sim

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/core"
)

// memSnapshots is the minimal SnapshotStore: a mutex-guarded map plus
// get/put counters for the wiring assertions.
type memSnapshots struct {
	mu        sync.Mutex
	byPrefix  map[string]Snapshot
	gets, hit int
	puts      int
}

func newMemSnapshots() *memSnapshots {
	return &memSnapshots{byPrefix: map[string]Snapshot{}}
}

func (m *memSnapshots) GetSnapshot(prefix string) (Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gets++
	s, ok := m.byPrefix[prefix]
	if ok {
		m.hit++
	}
	return s, ok
}

func (m *memSnapshots) PutSnapshot(s Snapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.puts++
	m.byPrefix[s.Prefix] = s
}

// TestSnapshotPrefixSharesBootAcrossCaps pins the prefix-key contract: the
// instruction cap must not split keys (one boot serves every cap), every
// other result-affecting knob must, and the key space is disjoint from
// Key's.
func TestSnapshotPrefixSharesBootAcrossCaps(t *testing.T) {
	base := Params{Workload: "253.perlbmk", MaxInstructions: 100_000}
	prefix := base.SnapshotPrefix()
	if prefix == "" {
		t.Fatal("empty prefix for cacheable params")
	}
	for _, cap := range []uint64{0, 50_000, 1_000_000} {
		p := base
		p.MaxInstructions = cap
		if got := p.SnapshotPrefix(); got != prefix {
			t.Errorf("cap %d split the prefix key: %s vs %s", cap, got, prefix)
		}
	}
	for name, p := range map[string]Params{
		"workload":  {Workload: "164.gzip", MaxInstructions: 100_000},
		"predictor": {Workload: "253.perlbmk", MaxInstructions: 100_000, Predictor: "2bit"},
		"cores":     {Workload: "253.perlbmk", MaxInstructions: 100_000, Cores: 2},
		"chunk":     {Workload: "253.perlbmk", MaxInstructions: 100_000, TraceChunk: 1},
	} {
		if got := p.SnapshotPrefix(); got == prefix {
			t.Errorf("%s change did not move the prefix key", name)
		}
	}
	if base.SnapshotPrefix() == base.Key() {
		t.Error("prefix key collides with the result key")
	}
	withHook := base
	withHook.Mutate = func(*core.Config) {}
	if got := withHook.SnapshotPrefix(); got != "" {
		t.Errorf("uncacheable params produced prefix %q", got)
	}
}

// TestSnapshotEncodeDecode round-trips the artifact wrapper and checks
// the decode-don't-panic contract on mangled inputs.
func TestSnapshotEncodeDecode(t *testing.T) {
	s := Snapshot{Prefix: "abc123", IN: 98765, Blob: []byte{1, 2, 3, 4, 5}}
	raw := s.Encode()
	got, err := DecodeSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Prefix != s.Prefix || got.IN != s.IN || !bytes.Equal(got.Blob, s.Blob) {
		t.Fatalf("round trip mangled the artifact: %+v vs %+v", got, s)
	}
	for cut := 0; cut < len(raw); cut++ {
		if _, err := DecodeSnapshot(raw[:cut]); err == nil {
			t.Errorf("decode of %d/%d bytes succeeded", cut, len(raw))
		}
	}
	if _, err := DecodeSnapshot(append(append([]byte(nil), raw...), 0x00)); err == nil {
		t.Error("decode with trailing garbage succeeded")
	}
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xFF
	if _, err := DecodeSnapshot(bad); err == nil {
		t.Error("decode with corrupt version succeeded")
	}
}

// runFastJSON runs the fast engine and returns the canonical result JSON
// plus the engine (for the WarmStarted probe).
func runFastJSON(t *testing.T, p Params) ([]byte, Engine) {
	t.Helper()
	eng, err := New("fast", p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return raw, eng
}

// TestFastEngineWarmStartBitIdentical is the engine-level warm-start
// contract: with a snapshot store attached, the first run captures at
// boot completion, the second resumes — and every run's canonical result
// JSON is byte-identical to the storeless run at the same cap, including
// a second sweep point at a different cap served by the same snapshot.
func TestFastEngineWarmStartBitIdentical(t *testing.T) {
	p := Params{Workload: "253.perlbmk", MaxInstructions: 260_000}
	cold, _ := runFastJSON(t, p)

	store := newMemSnapshots()
	p.Snapshots = store
	first, eng1 := runFastJSON(t, p)
	if !bytes.Equal(cold, first) {
		t.Fatalf("capture run diverged from the cold run:\n%s\nvs\n%s", cold, first)
	}
	if _, ok := eng1.(WarmStarted); !ok {
		t.Fatal("fast engine does not implement WarmStarted")
	}
	if _, resumed := eng1.(WarmStarted).ResumedFrom(); resumed {
		t.Fatal("first run claims to have warm-started from an empty store")
	}
	if store.puts != 1 {
		t.Fatalf("capture run stored %d snapshots, want 1", store.puts)
	}

	warm, eng2 := runFastJSON(t, p)
	in, resumed := eng2.(WarmStarted).ResumedFrom()
	if !resumed {
		t.Fatal("second run did not warm-start")
	}
	if in == 0 || in >= p.MaxInstructions {
		t.Fatalf("resumed at IN %d, want inside (0, %d)", in, p.MaxInstructions)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm run diverged from the cold run:\n%s\nvs\n%s", cold, warm)
	}

	// A different cap shares the boot prefix: the same snapshot serves it.
	p2 := p
	p2.MaxInstructions = 300_000
	cold2, _ := runFastJSON(t, Params{Workload: "253.perlbmk", MaxInstructions: 300_000})
	warm2, eng3 := runFastJSON(t, p2)
	if _, resumed := eng3.(WarmStarted).ResumedFrom(); !resumed {
		t.Fatal("sweep point at a different cap did not share the snapshot")
	}
	if !bytes.Equal(cold2, warm2) {
		t.Fatalf("warm run at cap 300k diverged:\n%s\nvs\n%s", cold2, warm2)
	}
	if store.puts != 1 {
		t.Fatalf("store has %d puts after three runs, want 1", store.puts)
	}
}

// TestFastEngineWarmStartMulticore runs the engine-level multicore
// warm-start path over the sleeping SMP workload: capture on the first
// run, resume on the second, byte-identical canonical JSON.
func TestFastEngineWarmStartMulticore(t *testing.T) {
	p := Params{Workload: "smp-sleep", Cores: 4}
	cold, _ := runFastJSON(t, p)

	store := newMemSnapshots()
	p.Snapshots = store
	first, _ := runFastJSON(t, p)
	if !bytes.Equal(cold, first) {
		t.Fatalf("multicore capture run diverged:\n%s\nvs\n%s", cold, first)
	}
	if store.puts != 1 {
		t.Fatalf("capture run stored %d snapshots, want 1", store.puts)
	}
	warm, eng := runFastJSON(t, p)
	if _, resumed := eng.(WarmStarted).ResumedFrom(); !resumed {
		t.Fatal("multicore second run did not warm-start")
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("multicore warm run diverged:\n%s\nvs\n%s", cold, warm)
	}
}

// TestFastEngineWarmStartServerWorkload runs warm-start over a toyFS
// server workload: the boot that the snapshot elides here includes mkfs
// disk writes and the FS kernel's sector-cache warmup, so a resumed run
// only matches the cold run if the disk sector map (not just CPU and
// memory) round-trips through the snapshot blob.
func TestFastEngineWarmStartServerWorkload(t *testing.T) {
	p := Params{Workload: "nicserv"}
	cold, _ := runFastJSON(t, p)

	store := newMemSnapshots()
	p.Snapshots = store
	first, _ := runFastJSON(t, p)
	if !bytes.Equal(cold, first) {
		t.Fatalf("server capture run diverged from the cold run:\n%s\nvs\n%s", cold, first)
	}
	if store.puts != 1 {
		t.Fatalf("capture run stored %d snapshots, want 1", store.puts)
	}
	warm, eng := runFastJSON(t, p)
	if _, resumed := eng.(WarmStarted).ResumedFrom(); !resumed {
		t.Fatal("server second run did not warm-start")
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("server warm run diverged from the cold run:\n%s\nvs\n%s", cold, warm)
	}
}

// TestFastEngineWarmStartRejectsCorruptBlob: a mangled stored snapshot
// must fall back to a cold run (same bytes) and overwrite the bad blob.
func TestFastEngineWarmStartRejectsCorruptBlob(t *testing.T) {
	p := Params{Workload: "253.perlbmk", MaxInstructions: 260_000}
	cold, _ := runFastJSON(t, p)

	store := newMemSnapshots()
	p.Snapshots = store
	runFastJSON(t, p) // capture
	good := store.byPrefix[p.SnapshotPrefix()]
	store.byPrefix[good.Prefix] = Snapshot{
		Prefix: good.Prefix, IN: good.IN, Blob: good.Blob[:len(good.Blob)/2],
	}

	got, eng := runFastJSON(t, p)
	if _, resumed := eng.(WarmStarted).ResumedFrom(); resumed {
		t.Fatal("run claims to have warm-started from a corrupt snapshot")
	}
	if !bytes.Equal(cold, got) {
		t.Fatalf("corrupt-snapshot fallback diverged from the cold run:\n%s\nvs\n%s", cold, got)
	}
	if repaired := store.byPrefix[good.Prefix]; !bytes.Equal(repaired.Blob, good.Blob) {
		t.Error("fallback run did not overwrite the corrupt snapshot")
	}
}

// TestFastEngineWarmStartSkipsTooDeepSnapshot: a snapshot captured at or
// past the run's instruction cap must not be used.
func TestFastEngineWarmStartSkipsTooDeepSnapshot(t *testing.T) {
	p := Params{Workload: "253.perlbmk", MaxInstructions: 260_000}
	store := newMemSnapshots()
	p.Snapshots = store
	runFastJSON(t, p) // capture
	snap := store.byPrefix[p.SnapshotPrefix()]

	shallow := p
	shallow.MaxInstructions = snap.IN // boundary: resume would overshoot
	_, eng := runFastJSON(t, shallow)
	if _, resumed := eng.(WarmStarted).ResumedFrom(); resumed {
		t.Fatalf("run capped at %d resumed from a snapshot at IN %d", shallow.MaxInstructions, snap.IN)
	}
}
