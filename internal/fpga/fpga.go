// Package fpga models the FPGA host platform: device resource budgets
// (Virtex-4 LX200 and friends), per-structure area estimation for Table 2,
// and the 100 MHz host clock / host-cycles-per-target-cycle cost model that
// determines timing-model throughput (§3.3, §4.5, §4.7).
//
// The key architectural insight the model encodes is §3.3's multi-host-cycle
// trick: a structure that would need many ports (a 20-ported register file,
// a highly associative lookup) is implemented by cycling a dual-ported
// block RAM several host cycles per target cycle. Area therefore depends on
// structure *capacity*, not on issue width — which is why Table 2 is flat
// from 1-issue to 8-issue — while host cycles per target cycle grow with
// width.
package fpga

import "fmt"

// Area is an FPGA resource footprint.
type Area struct {
	Slices int
	BRAMs  int
}

// Add returns the element-wise sum.
func (a Area) Add(b Area) Area {
	return Area{Slices: a.Slices + b.Slices, BRAMs: a.BRAMs + b.BRAMs}
}

func (a Area) String() string {
	return fmt.Sprintf("%d slices, %d BRAMs", a.Slices, a.BRAMs)
}

// Device is an FPGA part.
type Device struct {
	Name   string
	Slices int
	BRAMs  int
	// MaxMHz is a reasonable achievable clock for unoptimized designs
	// (§3.3: "Modern FPGAs run in the 100MHz-200MHz+ range").
	MaxMHz int
}

// Virtex4LX200 is the DRC platform's FPGA: "a Virtex4 LX200 that has 89,088
// slices and 336 Block RAMs" (§4.7).
var Virtex4LX200 = Device{Name: "Virtex-4 LX200", Slices: 89088, BRAMs: 336, MaxMHz: 200}

// Virtex2P30 is the XUP board's part (§4.2), roughly half an LX200's fabric.
var Virtex2P30 = Device{Name: "Virtex-II Pro 30", Slices: 13696, BRAMs: 136, MaxMHz: 150}

// LogicFraction is Table 2's "User Logic" row: the fraction of the device's
// slices a footprint occupies.
func (d Device) LogicFraction(a Area) float64 {
	return float64(a.Slices) / float64(d.Slices)
}

// BRAMFraction is Table 2's "Block RAMs" row.
func (d Device) BRAMFraction(a Area) float64 {
	return float64(a.BRAMs) / float64(d.BRAMs)
}

// Fits reports whether the footprint fits the device.
func (d Device) Fits(a Area) bool {
	return a.Slices <= d.Slices && a.BRAMs <= d.BRAMs
}

// bramBits is the capacity of one Virtex-4 block RAM (18 Kib).
const bramBits = 18 * 1024

// BlockRAM estimates the footprint of a memory structure of the given
// capacity. Block RAMs are dual-ported; logicalPorts beyond two are folded
// over multiple host cycles (§3.3), so they do not add BRAMs — only the
// small time-multiplexing sequencer in slices.
func BlockRAM(bits int, logicalPorts int) Area {
	brams := (bits + bramBits - 1) / bramBits
	if brams < 1 {
		brams = 1
	}
	seq := 0
	if logicalPorts > 2 {
		seq = 10 + 2*logicalPorts // address mux + sequencing counter
	}
	return Area{Slices: 20 + seq, BRAMs: brams}
}

// HostCyclesForPorts returns the host cycles needed to emulate
// logicalPorts on a dual-ported RAM: ceil(ports/2), minimum 1. The
// 20-ported register file of §3.3 costs 10 host cycles.
func HostCyclesForPorts(logicalPorts int) int {
	if logicalPorts <= 2 {
		return 1
	}
	return (logicalPorts + 1) / 2
}

// Registers estimates a bank of fabric registers (two per slice plus a
// little control).
func Registers(bits int) Area { return Area{Slices: (bits + 1) / 2} }

// CAM estimates a content-addressable structure (reservation-station wakeup,
// LSQ search, TLB): match logic is one LUT per couple of tag bits per
// entry, folded lookups notwithstanding — CAMs are the expensive part of an
// OOO timing model.
func CAM(entries, tagBits int) Area {
	return Area{Slices: entries * (tagBits/2 + 4)}
}

// Arbiter estimates an n-input LRU or round-robin arbiter (§4's base
// modules).
func Arbiter(n int) Area { return Area{Slices: 8 + 4*n} }

// FIFO estimates a Connector's footprint: depth×width bits of storage (in
// BRAM when deep, slices when shallow) plus handshake logic. The paper
// notes "the ubiquitous Connectors are under-optimized regarding area,
// especially in the block RAMs" (§4.7) — small FIFOs burning whole BRAMs is
// exactly that effect, reproduced here by the one-BRAM minimum.
func FIFO(depth, widthBits int) Area {
	if depth*widthBits <= 64 {
		return Area{Slices: 20 + depth*widthBits/2}
	}
	return Area{Slices: 30, BRAMs: (depth*widthBits + bramBits - 1) / bramBits}
}

// Clock is the timing model's host clock.
type Clock struct {
	MHz int
}

// DefaultClock is the prototype's 100 MHz FPGA cycle time (§4.4).
var DefaultClock = Clock{MHz: 100}

// CycleNanos returns one host cycle in nanoseconds.
func (c Clock) CycleNanos() float64 { return 1e3 / float64(c.MHz) }

// Nanos converts host cycles to nanoseconds.
func (c Clock) Nanos(hostCycles uint64) float64 {
	return float64(hostCycles) * c.CycleNanos()
}
