package fpga

import "testing"

func TestAreaAdd(t *testing.T) {
	a := Area{Slices: 10, BRAMs: 1}.Add(Area{Slices: 5, BRAMs: 2})
	if a.Slices != 15 || a.BRAMs != 3 {
		t.Errorf("Add = %+v", a)
	}
	if a.String() == "" {
		t.Error("empty String")
	}
}

func TestDeviceFractions(t *testing.T) {
	a := Area{Slices: Virtex4LX200.Slices / 2, BRAMs: Virtex4LX200.BRAMs / 4}
	if f := Virtex4LX200.LogicFraction(a); f < 0.49 || f > 0.51 {
		t.Errorf("logic fraction %v", f)
	}
	if f := Virtex4LX200.BRAMFraction(a); f < 0.24 || f > 0.26 {
		t.Errorf("bram fraction %v", f)
	}
	if !Virtex4LX200.Fits(a) {
		t.Error("half-full device does not fit")
	}
	if Virtex4LX200.Fits(Area{Slices: Virtex4LX200.Slices + 1}) {
		t.Error("oversized area fits")
	}
}

func TestBlockRAMSizing(t *testing.T) {
	if a := BlockRAM(1, 2); a.BRAMs != 1 {
		t.Errorf("1 bit = %d BRAMs", a.BRAMs)
	}
	if a := BlockRAM(18*1024, 2); a.BRAMs != 1 {
		t.Errorf("18Kib = %d BRAMs", a.BRAMs)
	}
	if a := BlockRAM(18*1024+1, 2); a.BRAMs != 2 {
		t.Errorf("18Kib+1 = %d BRAMs", a.BRAMs)
	}
	// §3.3: extra logical ports fold over host cycles — same BRAM count,
	// a bit more sequencing logic.
	two := BlockRAM(1<<16, 2)
	twenty := BlockRAM(1<<16, 20)
	if twenty.BRAMs != two.BRAMs {
		t.Errorf("port folding changed BRAMs: %d vs %d", twenty.BRAMs, two.BRAMs)
	}
	if twenty.Slices <= two.Slices {
		t.Error("port folding added no sequencing logic")
	}
}

func TestHostCyclesForPorts(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 20: 10}
	for ports, want := range cases {
		if got := HostCyclesForPorts(ports); got != want {
			t.Errorf("HostCyclesForPorts(%d) = %d, want %d", ports, got, want)
		}
	}
}

func TestClock(t *testing.T) {
	if DefaultClock.CycleNanos() != 10 {
		t.Errorf("100 MHz cycle = %v ns", DefaultClock.CycleNanos())
	}
	if DefaultClock.Nanos(469) != 4690 {
		t.Errorf("469 cycles = %v ns", DefaultClock.Nanos(469))
	}
}

func TestStructureEstimatorsMonotone(t *testing.T) {
	if CAM(32, 20).Slices <= CAM(16, 20).Slices {
		t.Error("CAM not monotone in entries")
	}
	if Arbiter(16).Slices <= Arbiter(4).Slices {
		t.Error("arbiter not monotone")
	}
	if Registers(64).Slices != 32 {
		t.Errorf("Registers(64) = %+v", Registers(64))
	}
	small := FIFO(2, 16)
	if small.BRAMs != 0 {
		t.Error("tiny FIFO should live in fabric")
	}
	big := FIFO(64, 128)
	if big.BRAMs < 1 {
		t.Error("deep FIFO should use BRAM")
	}
}
