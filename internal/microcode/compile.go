package microcode

import (
	"fmt"

	"repro/internal/isa"
)

// System-operation subcodes carried in a USys µop's Imm field.
const (
	SysHalt int64 = iota
	SysCli
	SysSti
	SysTlbWr
	SysTlbFl
	SysRdCR
	SysWrCR
	SysSyscall
	SysIret
	SysBreak
	SysCpuid
)

// Compile translates a µC specification into an optimized µop template.
// Placeholder registers (PRd, PRs) and immediate sources (ImmFromImm,
// ImmFromDisp) remain symbolic; Crack instantiates them per dynamic
// instruction.
func Compile(src string) ([]UOp, error) {
	stmts, err := parse(src)
	if err != nil {
		return nil, err
	}
	g := &codegen{}
	for _, s := range stmts {
		if err := g.stmt(s); err != nil {
			return nil, err
		}
	}
	out := g.out
	out = fuseCC(out)
	out = propagateCopies(out)
	out = dropDeadTemps(out)
	if len(out) == 0 {
		out = []UOp{{Kind: UNop, Dst: MRegNone, A: MRegNone, B: MRegNone}}
	}
	return out, nil
}

// MustCompile is Compile for the statically known-good specification table.
func MustCompile(src string) []UOp {
	ops, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return ops
}

type codegen struct {
	out     []UOp
	nextTmp int
}

func (g *codegen) tmp() (MReg, error) {
	if g.nextTmp >= NumTmps {
		return MRegNone, fmt.Errorf("µC: out of temporaries")
	}
	t := Tmp(g.nextTmp)
	g.nextTmp++
	return t, nil
}

func (g *codegen) emit(u UOp) { g.out = append(g.out, u) }

func regFor(name string) (MReg, bool) {
	switch name {
	case "rd", "fd":
		return PRd, true
	case "rs", "rb", "fs":
		return PRs, true
	case "sp":
		return MReg(isa.RegSP), true
	case "lr":
		return MReg(isa.RegLR), true
	case "pc":
		return MRegPC, true
	}
	if len(name) >= 2 && (name[0] == 't' || name[0] == 'r') {
		n := 0
		for i := 1; i < len(name); i++ {
			if name[i] < '0' || name[i] > '9' {
				return MRegNone, false
			}
			n = n*10 + int(name[i]-'0')
		}
		if name[0] == 't' && n < NumTmps {
			return Tmp(n), true
		}
		// Fixed architectural registers, used by the string instructions
		// (R0 source, R1 destination, R2 count, R3 value).
		if name[0] == 'r' && n < isa.NumGPR {
			return MReg(n), true
		}
	}
	return MRegNone, false
}

// immFor recognizes expressions usable directly as µop immediates.
func immFor(e expr) (int64, ImmSource, bool) {
	switch t := e.(type) {
	case numExpr:
		return t.val, ImmLit, true
	case termExpr:
		switch t.name {
		case "imm":
			return 0, ImmFromImm, true
		case "disp":
			return 0, ImmFromDisp, true
		}
	case unExpr:
		if t.op == "-" {
			if n, ok := t.x.(numExpr); ok {
				return -n.val, ImmLit, true
			}
		}
	}
	return 0, ImmNone, false
}

var binKinds = map[string]UKind{
	"+": UAdd, "-": USub, "&": UAnd, "|": UOr, "^": UXor,
	"<<": UShl, ">>": USar, ">>>": UShr, "*": UMul, "/": UDiv, "%": UMod,
}

func (g *codegen) stmt(s stmt) error {
	if s.dst == "" {
		_, err := g.expr(s.rhs, MRegNone, false)
		return err
	}
	dst, ok := regFor(s.dst)
	if !ok {
		return fmt.Errorf("µC: bad destination %q", s.dst)
	}
	_, err := g.expr(s.rhs, dst, true)
	return err
}

// expr generates code for e. If needValue, the result lands in want (or a
// fresh temporary when want is MRegNone) and that register is returned.
func (g *codegen) expr(e expr, want MReg, needValue bool) (MReg, error) {
	into := func() (MReg, error) {
		if want != MRegNone {
			return want, nil
		}
		return g.tmp()
	}
	switch t := e.(type) {
	case termExpr:
		if r, ok := regFor(t.name); ok {
			if want != MRegNone && want != r {
				g.emit(UOp{Kind: UMov, Dst: want, A: r, B: MRegNone})
				return want, nil
			}
			return r, nil
		}
		if _, src, ok := immFor(e); ok {
			dst, err := into()
			if err != nil {
				return MRegNone, err
			}
			g.emit(UOp{Kind: UMovImm, Dst: dst, A: MRegNone, B: MRegNone, ImmSrc: src})
			return dst, nil
		}
		return MRegNone, fmt.Errorf("µC: unknown term %q", t.name)
	case numExpr:
		dst, err := into()
		if err != nil {
			return MRegNone, err
		}
		g.emit(UOp{Kind: UMovImm, Dst: dst, A: MRegNone, B: MRegNone, Imm: t.val, ImmSrc: ImmLit})
		return dst, nil
	case unExpr:
		switch t.op {
		case "-": // 0 - x
			return g.binary(binExpr{op: "-", l: numExpr{0}, r: t.x}, want)
		case "~": // x ^ -1
			return g.binary(binExpr{op: "^", l: t.x, r: numExpr{-1}}, want)
		}
		return MRegNone, fmt.Errorf("µC: unknown unary %q", t.op)
	case binExpr:
		return g.binary(t, want)
	case callExpr:
		return g.call(t, want, needValue)
	}
	return MRegNone, fmt.Errorf("µC: unhandled expression %T", e)
}

func (g *codegen) binary(b binExpr, want MReg) (MReg, error) {
	kind, ok := binKinds[b.op]
	if !ok {
		return MRegNone, fmt.Errorf("µC: unknown operator %q", b.op)
	}
	a, err := g.expr(b.l, MRegNone, true)
	if err != nil {
		return MRegNone, err
	}
	dst := want
	if dst == MRegNone {
		if dst, err = g.tmp(); err != nil {
			return MRegNone, err
		}
	}
	if imm, src, ok := immFor(b.r); ok {
		g.emit(UOp{Kind: kind, Dst: dst, A: a, B: MRegNone, Imm: imm, ImmSrc: src})
		return dst, nil
	}
	rb, err := g.expr(b.r, MRegNone, true)
	if err != nil {
		return MRegNone, err
	}
	g.emit(UOp{Kind: kind, Dst: dst, A: a, B: rb})
	return dst, nil
}

func (g *codegen) call(c callExpr, want MReg, needValue bool) (MReg, error) {
	arity := func(n int) error {
		if len(c.args) != n {
			return fmt.Errorf("µC: %s wants %d args, got %d", c.fn, n, len(c.args))
		}
		return nil
	}
	into := func() (MReg, error) {
		if want != MRegNone {
			return want, nil
		}
		return g.tmp()
	}
	genReg := func(e expr) (MReg, error) { return g.expr(e, MRegNone, true) }

	loadSize := map[string]int64{"load8": 1, "load16": 2, "load32": 4, "load64": 8}
	storeSize := map[string]int64{"store8": 1, "store16": 2, "store32": 4, "store64": 8}
	fpBin := map[string]UKind{"fadd": UFAdd, "fsub": UFSub, "fmul": UFMul, "fdiv": UFDiv, "fcmp": UFCmp}
	fpUn := map[string]UKind{"fsqrt": UFSqrt, "fmov": UFMov, "fcvt": UFCvt}

	switch {
	case loadSize[c.fn] != 0:
		if err := arity(1); err != nil {
			return MRegNone, err
		}
		addr, err := genReg(c.args[0])
		if err != nil {
			return MRegNone, err
		}
		dst, err := into()
		if err != nil {
			return MRegNone, err
		}
		g.emit(UOp{Kind: ULoad, Dst: dst, A: addr, B: MRegNone, Imm: loadSize[c.fn], ImmSrc: ImmLit})
		return dst, nil
	case storeSize[c.fn] != 0:
		if err := arity(2); err != nil {
			return MRegNone, err
		}
		addr, err := genReg(c.args[0])
		if err != nil {
			return MRegNone, err
		}
		val, err := genReg(c.args[1])
		if err != nil {
			return MRegNone, err
		}
		g.emit(UOp{Kind: UStore, Dst: MRegNone, A: addr, B: val, Imm: storeSize[c.fn], ImmSrc: ImmLit})
		return MRegNone, nil
	case c.fn == "agen":
		if err := arity(2); err != nil {
			return MRegNone, err
		}
		base, err := genReg(c.args[0])
		if err != nil {
			return MRegNone, err
		}
		imm, src, ok := immFor(c.args[1])
		if !ok {
			return MRegNone, fmt.Errorf("µC: agen offset must be imm, disp or a literal")
		}
		dst, err := into()
		if err != nil {
			return MRegNone, err
		}
		g.emit(UOp{Kind: UAgen, Dst: dst, A: base, B: MRegNone, Imm: imm, ImmSrc: src})
		return dst, nil
	case c.fn == "cc":
		if err := arity(1); err != nil {
			return MRegNone, err
		}
		x, err := genReg(c.args[0])
		if err != nil {
			return MRegNone, err
		}
		g.emit(UOp{Kind: UTest, Dst: MRegNone, A: x, B: x, WritesCC: true})
		return MRegNone, nil
	case c.fn == "cmp":
		if err := arity(2); err != nil {
			return MRegNone, err
		}
		a, err := genReg(c.args[0])
		if err != nil {
			return MRegNone, err
		}
		if imm, src, ok := immFor(c.args[1]); ok {
			g.emit(UOp{Kind: UCmp, Dst: MRegNone, A: a, B: MRegNone, Imm: imm, ImmSrc: src, WritesCC: true})
			return MRegNone, nil
		}
		b, err := genReg(c.args[1])
		if err != nil {
			return MRegNone, err
		}
		g.emit(UOp{Kind: UCmp, Dst: MRegNone, A: a, B: b, WritesCC: true})
		return MRegNone, nil
	case c.fn == "jump":
		if err := arity(0); err != nil {
			return MRegNone, err
		}
		g.emit(UOp{Kind: UBr, Dst: MRegNone, A: MRegNone, B: MRegNone})
		return MRegNone, nil
	case c.fn == "jumpr":
		if err := arity(1); err != nil {
			return MRegNone, err
		}
		x, err := genReg(c.args[0])
		if err != nil {
			return MRegNone, err
		}
		g.emit(UOp{Kind: UBr, Dst: MRegNone, A: x, B: MRegNone})
		return MRegNone, nil
	case fpBin[c.fn] != 0:
		if err := arity(2); err != nil {
			return MRegNone, err
		}
		a, err := genReg(c.args[0])
		if err != nil {
			return MRegNone, err
		}
		b, err := genReg(c.args[1])
		if err != nil {
			return MRegNone, err
		}
		dst := MRegNone
		if c.fn != "fcmp" {
			if dst, err = into(); err != nil {
				return MRegNone, err
			}
		}
		g.emit(UOp{Kind: fpBin[c.fn], Dst: dst, A: a, B: b, WritesCC: c.fn == "fcmp"})
		return dst, nil
	case fpUn[c.fn] != 0:
		if err := arity(1); err != nil {
			return MRegNone, err
		}
		a, err := genReg(c.args[0])
		if err != nil {
			return MRegNone, err
		}
		dst, err := into()
		if err != nil {
			return MRegNone, err
		}
		g.emit(UOp{Kind: fpUn[c.fn], Dst: dst, A: a, B: MRegNone})
		return dst, nil
	case c.fn == "sys":
		if err := arity(1); err != nil {
			return MRegNone, err
		}
		code, _, ok := immFor(c.args[0])
		if !ok {
			return MRegNone, fmt.Errorf("µC: sys code must be a literal")
		}
		g.emit(UOp{Kind: USys, Dst: MRegNone, A: MRegNone, B: MRegNone, Imm: code, ImmSrc: ImmLit})
		return MRegNone, nil
	case c.fn == "sysr":
		if err := arity(2); err != nil {
			return MRegNone, err
		}
		code, _, ok := immFor(c.args[0])
		if !ok {
			return MRegNone, fmt.Errorf("µC: sysr code must be a literal")
		}
		x, err := genReg(c.args[1])
		if err != nil {
			return MRegNone, err
		}
		dst := MRegNone
		if needValue {
			if dst, err = into(); err != nil {
				return MRegNone, err
			}
		}
		g.emit(UOp{Kind: USys, Dst: dst, A: x, B: MRegNone, Imm: code, ImmSrc: ImmLit})
		return dst, nil
	case c.fn == "sysrr":
		if err := arity(3); err != nil {
			return MRegNone, err
		}
		code, _, ok := immFor(c.args[0])
		if !ok {
			return MRegNone, fmt.Errorf("µC: sysrr code must be a literal")
		}
		a, err := genReg(c.args[1])
		if err != nil {
			return MRegNone, err
		}
		b, err := genReg(c.args[2])
		if err != nil {
			return MRegNone, err
		}
		g.emit(UOp{Kind: USys, Dst: MRegNone, A: a, B: b, Imm: code, ImmSrc: ImmLit})
		return MRegNone, nil
	case c.fn == "sysval":
		if err := arity(1); err != nil {
			return MRegNone, err
		}
		code, _, ok := immFor(c.args[0])
		if !ok {
			return MRegNone, fmt.Errorf("µC: sysval code must be a literal")
		}
		dst, err := into()
		if err != nil {
			return MRegNone, err
		}
		g.emit(UOp{Kind: USys, Dst: dst, A: MRegNone, B: MRegNone, Imm: code, ImmSrc: ImmLit})
		return dst, nil
	case c.fn == "ioin":
		if err := arity(1); err != nil {
			return MRegNone, err
		}
		imm, src, ok := immFor(c.args[0])
		if !ok {
			return MRegNone, fmt.Errorf("µC: ioin port must be imm or a literal")
		}
		dst, err := into()
		if err != nil {
			return MRegNone, err
		}
		g.emit(UOp{Kind: UIO, Dst: dst, A: MRegNone, B: MRegNone, Imm: imm, ImmSrc: src})
		return dst, nil
	case c.fn == "ioout":
		if err := arity(2); err != nil {
			return MRegNone, err
		}
		imm, src, ok := immFor(c.args[0])
		if !ok {
			return MRegNone, fmt.Errorf("µC: ioout port must be imm or a literal")
		}
		x, err := genReg(c.args[1])
		if err != nil {
			return MRegNone, err
		}
		g.emit(UOp{Kind: UIO, Dst: MRegNone, A: x, B: MRegNone, Imm: imm, ImmSrc: src})
		return MRegNone, nil
	}
	return MRegNone, fmt.Errorf("µC: unknown intrinsic %q", c.fn)
}

// Optimizer passes.

// hasSideEffect reports whether a µop must be preserved regardless of
// whether its destination is read.
func hasSideEffect(u UOp) bool {
	switch u.Kind {
	case UStore, UBr, USys, UIO:
		return true
	}
	return u.WritesCC || u.Dst != MRegNone && !u.Dst.IsTmp()
}

// canWriteCC reports whether the µop kind may carry a fused CC update.
func canWriteCC(k UKind) bool {
	switch k {
	case UAdd, USub, UAnd, UOr, UXor, UShl, UShr, USar, UMul, UDiv, UMod,
		UMov, UMovImm, UAgen, ULoad, UFAdd, UFSub, UFMul, UFDiv, UFCvt:
		return true
	}
	return false
}

// fuseCC merges a `cc(x)` pseudo-µop (UTest x,x) into the immediately
// preceding µop when that µop produced x.
func fuseCC(ops []UOp) []UOp {
	out := ops[:0]
	for _, u := range ops {
		if u.Kind == UTest && u.WritesCC && u.Dst == MRegNone && u.A == u.B && len(out) > 0 {
			prev := &out[len(out)-1]
			if prev.Dst == u.A && canWriteCC(prev.Kind) {
				prev.WritesCC = true
				continue
			}
		}
		out = append(out, u)
	}
	return out
}

func reads(u UOp, r MReg) bool { return r != MRegNone && (u.A == r || u.B == r) }

// propagateCopies retargets `tN = <op> ...; dst = tN` into `dst = <op> ...`
// when tN has no other readers.
func propagateCopies(ops []UOp) []UOp {
	for i := 1; i < len(ops); i++ {
		mov := ops[i]
		if mov.Kind != UMov || !mov.A.IsTmp() || mov.WritesCC {
			continue
		}
		def := -1
		for j := i - 1; j >= 0; j-- {
			if ops[j].Dst == mov.A {
				def = j
				break
			}
			if reads(ops[j], mov.A) {
				def = -2
				break
			}
		}
		if def < 0 {
			continue
		}
		// The temp must not be read anywhere but the move, nor live after.
		used := false
		for j := def + 1; j < len(ops); j++ {
			if j != i && reads(ops[j], mov.A) {
				used = true
				break
			}
		}
		if used {
			continue
		}
		// Retargeting must not break a reader of the new dst between def and i.
		conflict := false
		for j := def + 1; j < i; j++ {
			if reads(ops[j], mov.Dst) || ops[j].Dst == mov.Dst {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		ops[def].Dst = mov.Dst
		ops = append(ops[:i], ops[i+1:]...)
		i--
	}
	return ops
}

// dropDeadTemps removes effect-free µops whose temporary destination is
// never read.
func dropDeadTemps(ops []UOp) []UOp {
	for i := len(ops) - 1; i >= 0; i-- {
		u := ops[i]
		if hasSideEffect(u) || u.Dst == MRegNone || !u.Dst.IsTmp() {
			continue
		}
		live := false
		for j := i + 1; j < len(ops); j++ {
			if reads(ops[j], u.Dst) {
				live = true
				break
			}
			if ops[j].Dst == u.Dst {
				break
			}
		}
		if !live {
			ops = append(ops[:i], ops[i+1:]...)
		}
	}
	return ops
}

// instantiate substitutes the decoded instruction's registers and immediates
// into a template.
func instantiate(tmpl []UOp, inst isa.Inst) []UOp {
	out := make([]UOp, len(tmpl))
	sub := func(m MReg) MReg {
		switch m {
		case PRd:
			return MReg(inst.Rd)
		case PRs:
			return MReg(inst.Rs)
		}
		return m
	}
	for i, u := range tmpl {
		u.Dst, u.A, u.B = sub(u.Dst), sub(u.A), sub(u.B)
		switch u.ImmSrc {
		case ImmFromImm:
			u.Imm, u.ImmSrc = inst.Imm, ImmLit
		case ImmFromDisp:
			u.Imm, u.ImmSrc = int64(inst.Disp), ImmLit
		}
		out[i] = u
	}
	return out
}
