package microcode

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// specs holds the µC semantic specification for every opcode the compiler
// translates automatically. This is the analogue of the paper's "C code that
// specifies the functionality of each instruction" fed to their microcode
// compiler.
var specs = map[isa.Op]string{
	isa.OpNop:    ``,
	isa.OpMovRR:  `rd = rs`,
	isa.OpMovRI:  `rd = imm`,
	isa.OpMovRI8: `rd = imm`,
	isa.OpAddRR:  `rd = rd + rs; cc(rd)`,
	isa.OpAddRI:  `rd = rd + imm; cc(rd)`,
	isa.OpSubRR:  `rd = rd - rs; cc(rd)`,
	isa.OpSubRI:  `rd = rd - imm; cc(rd)`,
	isa.OpAndRR:  `rd = rd & rs; cc(rd)`,
	isa.OpAndRI:  `rd = rd & imm; cc(rd)`,
	isa.OpOrRR:   `rd = rd | rs; cc(rd)`,
	isa.OpOrRI:   `rd = rd | imm; cc(rd)`,
	isa.OpXorRR:  `rd = rd ^ rs; cc(rd)`,
	isa.OpXorRI:  `rd = rd ^ imm; cc(rd)`,
	isa.OpShlRR:  `rd = rd << rs; cc(rd)`,
	isa.OpShlRI8: `rd = rd << imm; cc(rd)`,
	isa.OpShrRR:  `rd = rd >>> rs; cc(rd)`,
	isa.OpShrRI8: `rd = rd >>> imm; cc(rd)`,
	isa.OpSarRR:  `rd = rd >> rs; cc(rd)`,
	isa.OpSarRI8: `rd = rd >> imm; cc(rd)`,
	isa.OpMulRR:  `rd = rd * rs; cc(rd)`,
	isa.OpDivRR:  `rd = rd / rs; cc(rd)`,
	isa.OpModRR:  `rd = rd % rs; cc(rd)`,
	isa.OpNegR:   `rd = -rd; cc(rd)`,
	isa.OpNotR:   `rd = ~rd; cc(rd)`,
	isa.OpIncR:   `rd = rd + 1; cc(rd)`,
	isa.OpDecR:   `rd = rd - 1; cc(rd)`,
	isa.OpCmpRR:  `cmp(rd, rs)`,
	isa.OpCmpRI:  `cmp(rd, imm)`,
	isa.OpTestRR: `cc(rd & rs)`,
	isa.OpLea:    `rd = agen(rb, disp)`,
	isa.OpLdW:    `rd = load32(agen(rb, disp))`,
	isa.OpLdH:    `rd = load16(agen(rb, disp))`,
	isa.OpLdB:    `rd = load8(agen(rb, disp))`,
	isa.OpStW:    `store32(agen(rb, disp), rd)`,
	isa.OpStH:    `store16(agen(rb, disp), rd)`,
	isa.OpStB:    `store8(agen(rb, disp), rd)`,
	isa.OpPush:   `sp = sp - 4; store32(sp, rd)`,
	isa.OpPop:    `rd = load32(sp); sp = sp + 4`,
	isa.OpJmp:    `jump()`,
	isa.OpJz:     `jump()`,
	isa.OpJnz:    `jump()`,
	isa.OpJl:     `jump()`,
	isa.OpJge:    `jump()`,
	isa.OpJg:     `jump()`,
	isa.OpJle:    `jump()`,
	isa.OpJc:     `jump()`,
	isa.OpJnc:    `jump()`,
	isa.OpJmpR:   `jumpr(rd)`,
	isa.OpCall:   `lr = pc; jump()`,
	isa.OpCallR:  `lr = pc; jumpr(rd)`,
	isa.OpRet:    `jumpr(lr)`,
	isa.OpLoop:   `r2 = r2 - 1; cc(r2); jump()`,
	isa.OpMovs:   `t0 = load8(r0); store8(r1, t0); r0 = r0 + 1; r1 = r1 + 1`,
	isa.OpStos:   `store8(r1, r3); r1 = r1 + 1`,
	isa.OpLods:   `r3 = load8(r0); r0 = r0 + 1`,
	isa.OpCmps:   `t0 = load8(r0); t1 = load8(r1); cmp(t0, t1); r0 = r0 + 1; r1 = r1 + 1`,
	isa.OpScas:   `t0 = load8(r1); cmp(r3, t0); r1 = r1 + 1`,
	isa.OpCpuid:  `rd = 0x46495341`, // "FISA"
	isa.OpPause:  ``,
	isa.OpLl:     `rd = load32(agen(rb, disp))`,

	// Floating point the compiler does translate (simple data movement):
	// everything else FP is NOP-replaced below, reproducing the paper's
	// partial FP coverage (Table 1).
	isa.OpFMov: `fd = fmov(fs)`,
	isa.OpFLd:  `fd = load64(agen(rb, disp))`,
	isa.OpFSt:  `store64(agen(rb, disp), fd)`,
	isa.OpI2F:  `fd = fcvt(rs)`,

	isa.OpJmpFar:  `jump()`,
	isa.OpCallFar: `lr = pc; jump()`,
}

// handSpecs are system instructions whose microcode was "inserted into the
// table by hand" (§4.3): the compiler does not reason about privileged
// state, so these entries are authored directly.
var handSpecs = map[isa.Op]string{
	isa.OpHalt:    `sys(0)`,
	isa.OpSyscall: `sys(7); jump()`,
	isa.OpIret:    `sys(8); jump()`,
	isa.OpCli:     `sys(1)`,
	isa.OpSti:     `sys(2)`,
	isa.OpTlbWr:   `sysrr(3, rd, rs)`,
	isa.OpTlbFl:   `sys(4)`,
	isa.OpMovCR:   `sysr(6, rd)`,
	isa.OpMovRC:   `rd = sysval(5)`,
	isa.OpIn:      `rd = ioin(imm)`,
	isa.OpOut:     `ioout(imm, rd)`,
	isa.OpBreak:   `sys(9); jump()`,
	// Store-conditional: the conditional store is not expressible in µC
	// (no control flow inside a template), so the entry is authored by
	// hand — a store µop, the success flag materialized into rd, and the
	// condition codes set from it.
	isa.OpSc: `store32(agen(rb, disp), rd); rd = 1; cc(rd)`,
}

// nopReplaced lists opcodes with no translation yet; they are "replaced
// with a NOP" (§4.3) and counted as invalid microcode in Table 1's coverage
// fraction. The prototype "supports only about 25% of the dynamic floating
// point instructions": data movement is covered, arithmetic is not.
var nopReplaced = []isa.Op{
	isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv, isa.OpFSqrt,
	isa.OpFAbs, isa.OpFNeg, isa.OpFCmp, isa.OpFLdI, isa.OpF2I,
}

// repOverheadSpec is appended per iteration of a REP-prefixed string
// instruction: decrement the count and loop.
const repOverheadSpec = `r2 = r2 - 1; cc(r2); jump()`

// Entry is one microcode table row.
type Entry struct {
	Op       isa.Op
	Template []UOp
	Source   Source
	// Valid reports whether the entry carries real microcode (auto or
	// hand). NOP-replaced entries execute but enforce no dependencies,
	// which is why eon runs *faster* than its BP accuracy suggests (§4.4).
	Valid bool
}

// UopCount returns the µop count of one execution (one iteration for string
// instructions).
func (e Entry) UopCount() int { return len(e.Template) }

// Table is the microcode lookup table: "to first order, a lookup table"
// mapping each opcode to its µop sequence.
type Table struct {
	entries     [isa.NumOpcodes]Entry
	repOverhead []UOp
}

// NewTable compiles every specification and builds the full table.
func NewTable() *Table {
	t := &Table{repOverhead: MustCompile(repOverheadSpec)}
	for _, op := range isa.Opcodes() {
		switch {
		case specs[op] != "" || op == isa.OpNop || op == isa.OpPause:
			t.entries[op] = Entry{Op: op, Template: MustCompile(specs[op]), Source: SourceAuto, Valid: true}
		case handSpecs[op] != "":
			t.entries[op] = Entry{Op: op, Template: MustCompile(handSpecs[op]), Source: SourceHand, Valid: true}
		}
	}
	for _, op := range nopReplaced {
		t.entries[op] = Entry{Op: op, Template: MustCompile(``), Source: SourceNop, Valid: false}
	}
	for _, op := range isa.Opcodes() {
		if t.entries[op].Template == nil {
			panic(fmt.Sprintf("microcode: opcode %s has no table entry", isa.Lookup(op).Name))
		}
	}
	return t
}

// Entry returns the table row for op.
func (t *Table) Entry(op isa.Op) Entry { return t.entries[op] }

// RepOverhead returns the per-iteration loop-control µops of a REP prefix.
func (t *Table) RepOverhead() []UOp { return t.repOverhead }

// Crack is the cracked form of one dynamic instruction.
type Crack struct {
	UOps  []UOp // µops of one iteration, registers/immediates instantiated
	Count int   // total dynamic µops including REP iterations
	Valid bool  // entry has real microcode
}

// Crack expands a decoded instruction into µops. iterations is the dynamic
// REP iteration count observed by the functional model (1 for ordinary
// instructions; a REP executed with count 0 still costs its loop-control
// µops).
func (t *Table) Crack(inst isa.Inst, iterations int) Crack {
	e := t.entries[inst.Op]
	body := instantiate(e.Template, inst)
	c := Crack{Valid: e.Valid}
	if !inst.Rep {
		c.UOps = body
		c.Count = len(body)
		return c
	}
	over := instantiate(t.repOverhead, inst)
	c.UOps = append(body, over...)
	if iterations < 1 {
		c.UOps = over
		c.Count = len(over)
		return c
	}
	c.Count = iterations * (len(body) + len(over))
	return c
}

// Precracked is the memoized crack of one *static* instruction: the
// register/immediate-instantiated µop slices that Table.Crack would rebuild
// for every dynamic execution. The functional model's predecode cache
// stores one Precracked per cached instruction so steady-state execution
// re-instantiates nothing; only the dynamic REP iteration count still
// varies per execution and is supplied to Crack.
//
// The memoized slices are shared by every Crack result (and therefore by
// every trace entry) derived from them — they must be treated as
// immutable, which the timing model already guarantees (it copies µops
// into its own in-flight structures).
type Precracked struct {
	valid    bool
	rep      bool
	body     []UOp // one iteration, instantiated
	over     []UOp // REP loop-control overhead (rep only)
	combined []UOp // body followed by over (rep only)
}

// Precrack instantiates the table templates for inst once, for reuse across
// dynamic executions via Precracked.Crack.
func (t *Table) Precrack(inst isa.Inst) Precracked {
	e := t.entries[inst.Op]
	p := Precracked{valid: e.Valid, rep: inst.Rep, body: instantiate(e.Template, inst)}
	if inst.Rep {
		p.over = instantiate(t.repOverhead, inst)
		p.combined = make([]UOp, 0, len(p.body)+len(p.over))
		p.combined = append(append(p.combined, p.body...), p.over...)
	}
	return p
}

// Crack produces the same result as Table.Crack(inst, iterations) for the
// instruction this Precracked was built from, without re-instantiating any
// template (equivalence is locked by TestPrecrackMatchesCrack).
func (p *Precracked) Crack(iterations int) Crack {
	c := Crack{Valid: p.valid}
	if !p.rep {
		c.UOps = p.body
		c.Count = len(p.body)
		return c
	}
	if iterations < 1 {
		c.UOps = p.over
		c.Count = len(p.over)
		return c
	}
	c.UOps = p.combined
	c.Count = iterations * (len(p.body) + len(p.over))
	return c
}

// CoverageStats aggregates Table 1: the fraction of dynamic instructions
// with valid microcode and the dynamic µops per instruction.
type CoverageStats struct {
	Instructions uint64 // dynamic instructions executed
	Covered      uint64 // with valid microcode
	UOps         uint64 // total dynamic µops (NOP replacements count 1)
}

// Add accumulates one dynamic instruction cracked as c.
func (s *CoverageStats) Add(c Crack) {
	s.Instructions++
	if c.Valid {
		s.Covered++
	}
	n := c.Count
	if n < 1 {
		n = 1
	}
	s.UOps += uint64(n)
}

// Fraction is Table 1's "Fraction" column.
func (s CoverageStats) Fraction() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Covered) / float64(s.Instructions)
}

// UopsPerInst is Table 1's "µOps/inst" column.
func (s CoverageStats) UopsPerInst() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.UOps) / float64(s.Instructions)
}

// Merge folds other into s.
func (s *CoverageStats) Merge(other CoverageStats) {
	s.Instructions += other.Instructions
	s.Covered += other.Covered
	s.UOps += other.UOps
}

// Listing renders the whole table as text (used by cmd/ucc).
func (t *Table) Listing() string {
	type row struct {
		op isa.Op
		s  string
	}
	var rows []row
	for _, op := range isa.Opcodes() {
		e := t.entries[op]
		s := fmt.Sprintf("%-8s [%s]", isa.Lookup(op).Name, e.Source)
		for _, u := range e.Template {
			s += "\n    " + u.String()
		}
		rows = append(rows, row{op, s})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].op < rows[j].op })
	out := ""
	for _, r := range rows {
		out += r.s + "\n"
	}
	return out
}
