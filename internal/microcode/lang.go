package microcode

import (
	"fmt"
	"strconv"
	"strings"
)

// µC is the tiny C-like language instruction semantics are written in.
// A specification is a sequence of ';'-separated statements:
//
//	rd = rd + rs; cc(rd)                     // add
//	t0 = agen(rs, disp); rd = load32(t0)     // ldw
//	store32(agen(rs, disp), rd)              // stw
//	sp = sp - 4; store32(sp, rd)             // push
//	pc = jump()                              // control transfer
//
// Terms: rd rs fd fs sp lr pc, temporaries t0..t15, integer literals, and
// the instruction fields imm / disp. Operators: + - & | ^ << >> >>> * / %
// with C-like precedence, unary - and ~. Intrinsics:
//
//	loadN(addr), storeN(addr, v)  N ∈ {8,16,32,64}
//	agen(base, off)               address generation (off must be imm/disp/literal)
//	cc(x)                         update condition codes from x
//	jump(), jumpr(x)              branch µop (direct / register-indirect)
//	fadd(a,b) fsub fmul fdiv fsqrt(a) fmov(a) fcvt(a) fcmp(a,b)
//	sys(code), sysr(code, x)      privileged operation
//	ioin(port), ioout(port, x)    port I/O
//
// The compiler allocates temporaries, folds condition-code updates into the
// producing µop, propagates copies, and eliminates dead temporaries — the
// "fairly optimized microcode" of §4.3.

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct // = ; , ( )
	tokOp    // + - & | ^ << >> >>> * / % ~
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case isAlpha(c):
			start := l.pos
			for l.pos < len(l.src) && (isAlpha(l.src[l.pos]) || isDigit(l.src[l.pos])) {
				l.pos++
			}
			l.emit(tokIdent, l.src[start:l.pos], start)
		case isDigit(c):
			start := l.pos
			for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || isAlpha(l.src[l.pos])) {
				l.pos++ // hex digits and 0x prefix land here; ParseInt validates
			}
			l.emit(tokNumber, l.src[start:l.pos], start)
		case strings.ContainsRune("=;,()", rune(c)):
			l.emit(tokPunct, string(c), l.pos)
			l.pos++
		case strings.ContainsRune("+-&|^*/%~<>", rune(c)):
			start := l.pos
			switch {
			case strings.HasPrefix(l.src[l.pos:], ">>>"):
				l.pos += 3
			case strings.HasPrefix(l.src[l.pos:], ">>") || strings.HasPrefix(l.src[l.pos:], "<<"):
				l.pos += 2
			default:
				l.pos++
			}
			l.emit(tokOp, l.src[start:l.pos], start)
		default:
			return nil, fmt.Errorf("µC: bad character %q at %d", c, l.pos)
		}
	}
	l.emit(tokEOF, "", l.pos)
	return l.toks, nil
}

func (l *lexer) emit(k tokKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: pos})
}

func isAlpha(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// AST.

type expr interface{ isExpr() }

type termExpr struct{ name string } // rd, rs, sp, t0, imm, disp, pc, ...
type numExpr struct{ val int64 }
type binExpr struct {
	op   string
	l, r expr
}
type unExpr struct {
	op string
	x  expr
}
type callExpr struct {
	fn   string
	args []expr
}

func (termExpr) isExpr() {}
func (numExpr) isExpr()  {}
func (binExpr) isExpr()  {}
func (unExpr) isExpr()   {}
func (callExpr) isExpr() {}

type stmt struct {
	dst string // "" for effect-only statements
	rhs expr
}

type parser struct {
	toks []token
	i    int
}

func parse(src string) ([]stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []stmt
	for p.peek().kind != tokEOF {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		for p.peek().kind == tokPunct && p.peek().text == ";" {
			p.i++
		}
	}
	return stmts, nil
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) expect(text string) error {
	t := p.next()
	if t.text != text {
		return fmt.Errorf("µC: expected %q at %d, got %q", text, t.pos, t.text)
	}
	return nil
}

func (p *parser) stmt() (stmt, error) {
	t := p.peek()
	if t.kind == tokIdent && p.toks[p.i+1].text == "=" {
		p.i += 2
		rhs, err := p.expr()
		if err != nil {
			return stmt{}, err
		}
		return stmt{dst: t.text, rhs: rhs}, nil
	}
	// Effect-only statement: must be a call.
	e, err := p.expr()
	if err != nil {
		return stmt{}, err
	}
	if _, ok := e.(callExpr); !ok {
		return stmt{}, fmt.Errorf("µC: statement at %d has no effect", t.pos)
	}
	return stmt{rhs: e}, nil
}

// Precedence climbing: * / %  >  + -  >  << >> >>>  >  &  >  ^  >  |
var precedence = map[string]int{
	"|": 1, "^": 2, "&": 3,
	"<<": 4, ">>": 4, ">>>": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *parser) expr() (expr, error) { return p.binary(1) }

func (p *parser) binary(minPrec int) (expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		prec, ok := precedence[t.text]
		if t.kind != tokOp || !ok || prec < minPrec {
			return lhs, nil
		}
		p.i++
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = binExpr{op: t.text, l: lhs, r: rhs}
	}
}

func (p *parser) unary() (expr, error) {
	t := p.peek()
	if t.kind == tokOp && (t.text == "-" || t.text == "~") {
		p.i++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return unExpr{op: t.text, x: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (expr, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		v, err := strconv.ParseInt(t.text, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("µC: bad number %q at %d", t.text, t.pos)
		}
		return numExpr{val: v}, nil
	case tokIdent:
		if p.peek().text == "(" {
			p.i++
			var args []expr
			if p.peek().text != ")" {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.peek().text != "," {
						break
					}
					p.i++
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return callExpr{fn: t.text, args: args}, nil
		}
		return termExpr{name: t.text}, nil
	case tokPunct:
		if t.text == "(" {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("µC: unexpected token %q at %d", t.text, t.pos)
}
