package microcode

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func compileOK(t *testing.T, src string) []UOp {
	t.Helper()
	ops, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return ops
}

func TestCompileSimpleALU(t *testing.T) {
	ops := compileOK(t, `rd = rd + rs; cc(rd)`)
	if len(ops) != 1 {
		t.Fatalf("add compiles to %d µops, want 1 (cc must fuse): %v", len(ops), ops)
	}
	u := ops[0]
	if u.Kind != UAdd || u.Dst != PRd || u.A != PRd || u.B != PRs || !u.WritesCC {
		t.Errorf("add µop = %v", u)
	}
}

func TestCompileImmediateOperand(t *testing.T) {
	ops := compileOK(t, `rd = rd + imm; cc(rd)`)
	if len(ops) != 1 {
		t.Fatalf("addi compiles to %d µops, want 1: %v", len(ops), ops)
	}
	if ops[0].ImmSrc != ImmFromImm || ops[0].B != MRegNone {
		t.Errorf("addi µop = %v; want immediate B operand", ops[0])
	}
}

func TestCompileLoad(t *testing.T) {
	ops := compileOK(t, `rd = load32(agen(rb, disp))`)
	if len(ops) != 2 {
		t.Fatalf("ldw compiles to %d µops, want 2 (agen + load): %v", len(ops), ops)
	}
	if ops[0].Kind != UAgen || ops[0].ImmSrc != ImmFromDisp {
		t.Errorf("µop 0 = %v, want agen #disp", ops[0])
	}
	if ops[1].Kind != ULoad || ops[1].Dst != PRd || ops[1].Imm != 4 {
		t.Errorf("µop 1 = %v, want load32 into rd", ops[1])
	}
	if ops[1].A != ops[0].Dst {
		t.Errorf("load address %v does not read agen result %v", ops[1].A, ops[0].Dst)
	}
}

func TestCompileStore(t *testing.T) {
	ops := compileOK(t, `store32(agen(rb, disp), rd)`)
	if len(ops) != 2 {
		t.Fatalf("stw compiles to %d µops, want 2: %v", len(ops), ops)
	}
	if ops[1].Kind != UStore || ops[1].B != PRd || ops[1].Imm != 4 {
		t.Errorf("store µop = %v", ops[1])
	}
}

func TestCompilePushPop(t *testing.T) {
	push := compileOK(t, `sp = sp - 4; store32(sp, rd)`)
	if len(push) != 2 {
		t.Fatalf("push = %d µops, want 2: %v", len(push), push)
	}
	pop := compileOK(t, `rd = load32(sp); sp = sp + 4`)
	if len(pop) != 2 {
		t.Fatalf("pop = %d µops, want 2: %v", len(pop), pop)
	}
}

func TestCompileTestIdiom(t *testing.T) {
	// cc(rd & rs): the AND result is only needed for flags; the and must
	// carry the fused CC write and survive dead-code elimination.
	ops := compileOK(t, `cc(rd & rs)`)
	if len(ops) != 1 {
		t.Fatalf("test idiom = %d µops, want 1: %v", len(ops), ops)
	}
	if ops[0].Kind != UAnd || !ops[0].WritesCC {
		t.Errorf("test µop = %v", ops[0])
	}
}

func TestCompileCopyPropagation(t *testing.T) {
	// Without propagation this is movi t0; mov rd — with it, one µop.
	ops := compileOK(t, `t0 = 5; rd = t0`)
	if len(ops) != 1 || ops[0].Kind != UMovImm || ops[0].Dst != PRd {
		t.Errorf("copy propagation failed: %v", ops)
	}
}

func TestCompileDeadTempElimination(t *testing.T) {
	ops := compileOK(t, `t0 = rs + 1; rd = rs`)
	if len(ops) != 1 {
		t.Errorf("dead temp not eliminated: %v", ops)
	}
}

func TestCompileEmptyIsNop(t *testing.T) {
	ops := compileOK(t, ``)
	if len(ops) != 1 || ops[0].Kind != UNop {
		t.Errorf("empty spec = %v, want single unop", ops)
	}
}

func TestCompilePrecedence(t *testing.T) {
	// rd = rs + 2 * 3 must multiply first: with constant operands the
	// shape is movi t, 2; mul t, t, 3(imm); add rd, rs, t — check the mul
	// feeds the add, not vice versa.
	ops := compileOK(t, `rd = rs + t1 * t2`)
	last := ops[len(ops)-1]
	if last.Kind != UAdd || last.Dst != PRd {
		t.Fatalf("final µop %v, want add into rd", last)
	}
	if ops[0].Kind != UMul {
		t.Errorf("first µop %v, want mul (precedence)", ops[0])
	}
}

func TestCompileParentheses(t *testing.T) {
	ops := compileOK(t, `rd = (rd + rs) * t0`)
	if ops[0].Kind != UAdd || ops[len(ops)-1].Kind != UMul {
		t.Errorf("parenthesized add must come first: %v", ops)
	}
}

func TestCompileUnary(t *testing.T) {
	neg := compileOK(t, `rd = -rd; cc(rd)`)
	if len(neg) != 2 || neg[1].Kind != USub || !neg[1].WritesCC {
		t.Errorf("neg = %v", neg)
	}
	not := compileOK(t, `rd = ~rd; cc(rd)`)
	if len(not) != 1 || not[0].Kind != UXor || not[0].Imm != -1 {
		t.Errorf("not = %v", not)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		`rd = `,
		`bogus(rd)`,
		`rd = frob(rs)`,
		`rd = rq`,
		`agen(rd)`,            // statement with value but also wrong arity
		`rd = agen(rb, rs)`,   // agen offset must be immediate
		`rd = load32(rb, rs)`, // arity
		`99 = rd`,             // bad destination shape (parses as expr stmt)
		`rd = rd +`,           // dangling operator
		`sys(rd)`,             // sys code must be literal
	}
	for _, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}

func TestCompileTempExhaustion(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 40; i++ {
		b.WriteString(`store32(agen(rb, 0), rd + 1);`)
	}
	if _, err := Compile(b.String()); err == nil {
		t.Error("expected temp exhaustion error")
	}
}

func TestNewTableCoversEveryOpcode(t *testing.T) {
	tab := NewTable()
	for _, op := range isa.Opcodes() {
		e := tab.Entry(op)
		if e.Template == nil {
			t.Errorf("%s: nil template", isa.Lookup(op).Name)
		}
		if len(e.Template) == 0 {
			t.Errorf("%s: empty template", isa.Lookup(op).Name)
		}
	}
}

func TestTableSources(t *testing.T) {
	tab := NewTable()
	cases := map[isa.Op]Source{
		isa.OpAddRR:   SourceAuto,
		isa.OpLdW:     SourceAuto,
		isa.OpSyscall: SourceHand,
		isa.OpTlbWr:   SourceHand,
		isa.OpFAdd:    SourceNop,
		isa.OpFDiv:    SourceNop,
		isa.OpFMov:    SourceAuto,
	}
	for op, want := range cases {
		e := tab.Entry(op)
		if e.Source != want {
			t.Errorf("%s source = %v, want %v", isa.Lookup(op).Name, e.Source, want)
		}
		if e.Valid != (want != SourceNop) {
			t.Errorf("%s valid = %v inconsistent with source %v", isa.Lookup(op).Name, e.Valid, want)
		}
	}
}

func TestTableUopBudgets(t *testing.T) {
	// Table 1 reports 1.15–1.51 dynamic µops/inst; statically the common
	// instructions must be 1 µop and memory operations 2.
	tab := NewTable()
	want := map[isa.Op]int{
		isa.OpNop: 1, isa.OpMovRR: 1, isa.OpAddRR: 1, isa.OpAddRI: 1,
		isa.OpCmpRR: 1, isa.OpJz: 1, isa.OpRet: 1, isa.OpLea: 1,
		isa.OpLdW: 2, isa.OpStW: 2, isa.OpPush: 2, isa.OpPop: 2,
		isa.OpCall: 2, isa.OpLoop: 2,
		isa.OpMovs: 4, isa.OpStos: 2, isa.OpLods: 2, isa.OpCmps: 5,
	}
	for op, n := range want {
		if got := tab.Entry(op).UopCount(); got != n {
			t.Errorf("%s: %d µops, want %d: %v",
				isa.Lookup(op).Name, got, n, tab.Entry(op).Template)
		}
	}
}

func TestCrackSubstitution(t *testing.T) {
	tab := NewTable()
	inst := isa.Inst{Op: isa.OpAddRR, Rd: 3, Rs: 7}
	c := tab.Crack(inst, 1)
	if !c.Valid || c.Count != 1 {
		t.Fatalf("crack = %+v", c)
	}
	u := c.UOps[0]
	if u.Dst != 3 || u.A != 3 || u.B != 7 {
		t.Errorf("substitution failed: %v", u)
	}

	ld := isa.Inst{Op: isa.OpLdW, Rd: 5, Rs: 2, Disp: -12}
	c = tab.Crack(ld, 1)
	if c.UOps[0].Imm != -12 || c.UOps[0].ImmSrc != ImmLit {
		t.Errorf("disp substitution failed: %v", c.UOps[0])
	}
	if c.UOps[0].A != 2 || c.UOps[1].Dst != 5 {
		t.Errorf("register substitution failed: %v", c.UOps)
	}
}

func TestCrackRep(t *testing.T) {
	tab := NewTable()
	movs := isa.Inst{Op: isa.OpMovs, Rep: true}
	c := tab.Crack(movs, 10)
	perIter := tab.Entry(isa.OpMovs).UopCount() + len(tab.RepOverhead())
	if c.Count != 10*perIter {
		t.Errorf("rep movs ×10 = %d µops, want %d", c.Count, 10*perIter)
	}
	if len(c.UOps) != perIter {
		t.Errorf("rep movs iteration = %d µops, want %d", len(c.UOps), perIter)
	}
	// Zero-iteration REP still pays loop control.
	c = tab.Crack(movs, 0)
	if c.Count != len(tab.RepOverhead()) {
		t.Errorf("rep movs ×0 = %d µops, want %d", c.Count, len(tab.RepOverhead()))
	}
}

func TestCrackNopReplaced(t *testing.T) {
	tab := NewTable()
	c := tab.Crack(isa.Inst{Op: isa.OpFAdd, Rd: isa.FP(0), Rs: isa.FP(1)}, 1)
	if c.Valid {
		t.Error("fadd should be invalid (NOP-replaced)")
	}
	if c.Count != 1 || c.UOps[0].Kind != UNop {
		t.Errorf("fadd crack = %+v, want single unop", c)
	}
}

func TestCoverageStats(t *testing.T) {
	tab := NewTable()
	var s CoverageStats
	for i := 0; i < 3; i++ {
		s.Add(tab.Crack(isa.Inst{Op: isa.OpAddRR}, 1))
	}
	s.Add(tab.Crack(isa.Inst{Op: isa.OpFAdd}, 1))
	if got := s.Fraction(); got != 0.75 {
		t.Errorf("fraction = %v, want 0.75", got)
	}
	if got := s.UopsPerInst(); got != 1.0 {
		t.Errorf("µops/inst = %v, want 1.0", got)
	}
	s.Add(tab.Crack(isa.Inst{Op: isa.OpLdW}, 1))
	if got := s.UopsPerInst(); got != 1.2 {
		t.Errorf("µops/inst = %v, want 1.2", got)
	}
	var m CoverageStats
	m.Merge(s)
	if m != s {
		t.Errorf("merge mismatch: %+v vs %+v", m, s)
	}
}

func TestUOpAndMRegStrings(t *testing.T) {
	u := UOp{Kind: UAdd, Dst: PRd, A: PRs, B: Tmp(2), WritesCC: true}
	if got := u.String(); !strings.Contains(got, "<rd>") || !strings.Contains(got, "t2") || !strings.Contains(got, "!cc") {
		t.Errorf("UOp.String() = %q", got)
	}
	if MRegPC.String() != "pc" || MRegCC.String() != "cc" || MRegNone.String() != "-" {
		t.Error("special MReg names wrong")
	}
}

func TestUKindClass(t *testing.T) {
	cases := map[UKind]isa.Class{
		UAdd: isa.ClassALU, ULoad: isa.ClassLoad, UStore: isa.ClassStore,
		UBr: isa.ClassBranch, UFMul: isa.ClassFPU, USys: isa.ClassSystem,
		UIO: isa.ClassSystem, UAgen: isa.ClassALU,
	}
	for k, want := range cases {
		if got := k.Class(); got != want {
			t.Errorf("%v.Class() = %v, want %v", k, got, want)
		}
	}
}

func TestListingMentionsEveryMnemonic(t *testing.T) {
	listing := NewTable().Listing()
	for _, op := range isa.Opcodes() {
		if !strings.Contains(listing, isa.Lookup(op).Name) {
			t.Errorf("listing missing %s", isa.Lookup(op).Name)
		}
	}
}

// TestCompileArbitraryInputNeverPanics: the µC compiler consumes the spec
// table and user experiments; garbage must produce errors, not panics.
func TestCompileArbitraryInputNeverPanics(t *testing.T) {
	f := func(src string) bool {
		_, _ = Compile(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{
		"(", ")", "=", ";;;", "rd =", "= rd", "rd = ((((", "cc(",
		"rd = 1 +", "store32(1", "t99 = 1", "rd = -", "rd = ~",
		"rd = rd >>>> rs", "jump()(", "sys(sys(1))",
	} {
		_, _ = Compile(src)
	}
}

func TestPrecrackMatchesCrack(t *testing.T) {
	// The predecode cache replays Precracked.Crack where the uncached path
	// calls Table.Crack; bit-identical traces require exact equivalence for
	// every opcode, with and without REP, at every iteration count shape
	// (0 = loop-control only, 1, and >1).
	tab := NewTable()
	for _, op := range isa.Opcodes() {
		for _, rep := range []bool{false, true} {
			inst := isa.Inst{Op: op, Rd: 3, Rs: 7, Imm: 5, Disp: -12, Size: 4, Rep: rep}
			pre := tab.Precrack(inst)
			for _, iters := range []int{0, 1, 3, 10} {
				want := tab.Crack(inst, iters)
				got := pre.Crack(iters)
				if got.Valid != want.Valid || got.Count != want.Count {
					t.Fatalf("%s rep=%v iters=%d: got {Valid:%v Count:%d}, want {Valid:%v Count:%d}",
						isa.Lookup(op).Name, rep, iters, got.Valid, got.Count, want.Valid, want.Count)
				}
				if len(got.UOps) != len(want.UOps) {
					t.Fatalf("%s rep=%v iters=%d: %d µops, want %d",
						isa.Lookup(op).Name, rep, iters, len(got.UOps), len(want.UOps))
				}
				for i := range got.UOps {
					if got.UOps[i] != want.UOps[i] {
						t.Fatalf("%s rep=%v iters=%d µop %d: got %v, want %v",
							isa.Lookup(op).Name, rep, iters, i, got.UOps[i], want.UOps[i])
					}
				}
			}
		}
	}
}
