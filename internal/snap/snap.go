// Package snap is the serialization substrate for warm-start snapshots: a
// tiny, deterministic, versioned binary codec. Every stateful layer of the
// simulator (devices, functional model, timing model, predictors, caches)
// writes its state through a Writer in a fixed field order and reads it
// back through a Reader, so the same state always produces the same bytes
// — a requirement for content-addressed snapshot storage — and truncated
// or corrupt blobs fail decode with an error instead of a panic.
//
// The encoding is little-endian with no self-description: framing is the
// responsibility of each layer (each writes a leading version byte and
// validates it on load). Varints are deliberately avoided; fixed-width
// fields keep the encoding branch-free and the decode bounds-checks
// trivial.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated is returned (wrapped) when a Reader runs out of bytes.
var ErrTruncated = errors.New("snap: truncated blob")

// ErrCorrupt is the sentinel decode layers wrap when content is
// structurally invalid (bad version, impossible length, failed check).
var ErrCorrupt = errors.New("snap: corrupt blob")

// Corruptf builds an ErrCorrupt-wrapped error.
func Corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// Writer accumulates a deterministic binary encoding. The zero value is
// ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with capacity preallocated.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset truncates the writer for reuse, keeping the allocation.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool writes a bool as one byte (0/1).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U16 writes a little-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 writes an int64 (two's-complement, little-endian).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 writes a float64 bit-exactly (IEEE 754 bits, little-endian).
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes32 writes a length-prefixed byte slice (uint32 length).
func (w *Writer) Bytes32(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// Raw appends bytes with no length prefix; the reader must know the size.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// PatchU32 overwrites a previously written uint32 at byte offset off —
// used to back-patch counts that are only known after writing the items.
func (w *Writer) PatchU32(off int, v uint32) {
	binary.LittleEndian.PutUint32(w.buf[off:], v)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// U32Slice writes a length-prefixed []uint32.
func (w *Writer) U32Slice(s []uint32) {
	w.U32(uint32(len(s)))
	for _, v := range s {
		w.U32(v)
	}
}

// U64Slice writes a length-prefixed []uint64.
func (w *Writer) U64Slice(s []uint64) {
	w.U32(uint32(len(s)))
	for _, v := range s {
		w.U64(v)
	}
}

// Reader decodes a Writer's output with a sticky error: after the first
// failure every subsequent read returns zero values and Err() reports the
// failure, so decode layers can read a whole struct and check once.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader wraps blob for decoding.
func NewReader(blob []byte) *Reader { return &Reader{data: blob} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

// Close verifies the blob was consumed exactly: trailing bytes are as
// corrupt as missing ones.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		return Corruptf("%d trailing bytes", len(r.data)-r.off)
	}
	return nil
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.data) || r.off+n < r.off {
		r.fail(fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, r.off, len(r.data)))
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a bool; any byte other than 0/1 is corrupt.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(Corruptf("invalid bool byte"))
		return false
	}
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a float64 bit-exactly.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// length reads a uint32 length prefix and sanity-checks it against the
// remaining bytes assuming each element costs at least elemSize bytes, so
// a corrupt length cannot drive a giant allocation.
func (r *Reader) length(elemSize int) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if elemSize > 0 && n > r.Remaining()/elemSize {
		r.fail(fmt.Errorf("%w: length %d exceeds remaining %d bytes", ErrTruncated, n, r.Remaining()))
		return 0
	}
	return n
}

// Raw reads n bytes with no length prefix (always a fresh copy).
func (r *Reader) Raw(n int) []byte {
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// Bytes32 reads a length-prefixed byte slice (always a fresh copy).
func (r *Reader) Bytes32() []byte {
	n := r.length(1)
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.length(1)
	b := r.take(n)
	return string(b)
}

// U32Slice reads a length-prefixed []uint32.
func (r *Reader) U32Slice() []uint32 {
	n := r.length(4)
	if n == 0 {
		return nil
	}
	s := make([]uint32, n)
	for i := range s {
		s[i] = r.U32()
	}
	return s
}

// U64Slice reads a length-prefixed []uint64.
func (r *Reader) U64Slice() []uint64 {
	n := r.length(8)
	if n == 0 {
		return nil
	}
	s := make([]uint64, n)
	for i := range s {
		s[i] = r.U64()
	}
	return s
}
