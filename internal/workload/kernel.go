package workload

import (
	"fmt"
	"strings"

	"repro/internal/fullsys"
	"repro/internal/isa"
	"repro/internal/workload/fs"
)

// toyOS memory map (physical).
const (
	kVarBase    = 0x100   // kernel variables
	kCodeBase   = 0x200   // kernel code (must stay below kSecBuf)
	kPCPU       = 0x3B800 // per-CPU trap spill areas (SMP; 32 bytes/core)
	kSecBuf     = 0x3C000 // disk sector staging buffer
	UserPA      = 0x40000 // user program physical base
	UserVA      = 0x10000 // user program virtual base
	UserVAEnd   = 0x80000
	userOffset  = (UserPA - UserVA) >> fullsys.PageShift // PFN offset for linear mapping
	UserSP      = 0x7FF00                                // initial user stack pointer (VA)
	DiskLatency = 200
)

// KernelConfig scales toyOS's boot phases — the knobs that differentiate
// the Linux-2.4, Linux-2.6 and Windows-XP boot workloads.
type KernelConfig struct {
	// BIOSBranchBlocks is the number of one-shot data-dependent branch
	// blocks in the BIOS phase ("the BIOS ... is comprised of many
	// branches that are executed only once", §4.6).
	BIOSBranchBlocks int
	// ChecksumRounds is how many passes the BIOS ROM checksum makes.
	ChecksumRounds int
	// ChecksumBytes is the ROM region length per pass (default 0x1800).
	ChecksumBytes int
	// DeviceProbes is the number of device-probe rounds (Windows "touches
	// more devices than Linux does", §4.4).
	DeviceProbes int
	// TimerInterval programs the periodic timer (target time units);
	// 0 leaves it off and enters user mode with interrupts disabled.
	TimerInterval int
	// PayloadPad appends this many pseudo-random bytes to the user image
	// before compression: it scales the decompression phase the way a real
	// kernel image scales a real boot. PayloadRunFraction (0..100) makes
	// that percentage of the padding compressible runs, which raises the
	// boot's µop expansion through longer REP STOS bursts.
	PayloadPad         int
	PayloadRunFraction int
	// Banner is written to the console at boot.
	Banner string

	// Cores > 1 builds the SMP kernel: secondaries park in a release-flag
	// spin at BIOS entry while core 0 boots, and the trap handlers spill
	// their context to per-CPU areas. At Cores <= 1 the generated source
	// is byte-identical to the single-core kernel.
	Cores int
	// SMPUser sends released secondaries into the user program (with r1 =
	// CPUID and a per-CPU stack); when false they halt after release, an
	// SMP boot with idle secondaries — the safe default for user programs
	// that are not written for multiple cores.
	SMPUser bool

	// FS grows the kernel with the toyFS subsystem: a sector cache,
	// file/process/log/NIC syscalls, and per-process address spaces (see
	// fskernel.go). FS kernels are uniprocessor-only — BuildBoot rejects
	// FS with Cores > 1. At FS=false the generated source is byte-
	// identical to the pre-FS kernel.
	FS bool
	// DiskLatency overrides the disk device latency in target time units;
	// 0 keeps the package default. It scales every disk access — boot
	// payload loading and, under FS, every syscall-driven sector I/O —
	// which is what experiments.Servers sweeps.
	DiskLatency uint64
}

// FastBoot is the minimal kernel configuration used when the workload of
// interest is the user program, not the boot.
func FastBoot() KernelConfig {
	return KernelConfig{
		BIOSBranchBlocks: 4, ChecksumRounds: 1, ChecksumBytes: 0x200,
		DeviceProbes: 1, TimerInterval: 20000,
	}
}

// KernelSource generates the toyOS kernel assembly for a configuration.
func KernelSource(k KernelConfig) string {
	var b strings.Builder
	p := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	p("; toyOS — generated kernel (bios blocks %d, probes %d, timer %d)",
		k.BIOSBranchBlocks, k.DeviceProbes, k.TimerInterval)
	p(".equ vTICKS, %#x", kVarBase+0x00)
	p(".equ vSLEEP, %#x", kVarBase+0x04)
	p(".equ vEPC,   %#x", kVarBase+0x08)
	p(".equ vEFL,   %#x", kVarBase+0x0C)
	p(".equ vSAVE1, %#x", kVarBase+0x10)
	p(".equ vSAVE2, %#x", kVarBase+0x14)
	p(".equ vSAVE3, %#x", kVarBase+0x18)
	p(".equ SECBUF, %#x", kSecBuf)
	p(".equ USERPA, %#x", UserPA)
	if k.Cores > 1 {
		p(".equ vRELEASE, %#x", kVarBase+0x1C)
		p(".equ PCPU, %#x", kPCPU)
	}
	if k.FS {
		fsEquates(p)
	}
	p(".org %#x", kCodeBase)

	// ---- Phase 1: BIOS ----
	p("bios:")
	if k.Cores > 1 {
		// SMP: every core enters here; secondaries park until core 0
		// finishes the boot and raises the release flag.
		p("	movrc r4, cr8     ; CPUID")
		p("	cmpi r4, 0")
		p("	jnz  mpwait")
	}
	p("	movi r1, 0x5A17")
	for round := 0; round < max(1, k.DeviceProbes); round++ {
		p("	in   r0, 0x01   ; PIC mask")
		p("	add  r1, r0")
		p("	in   r0, 0x11   ; console status")
		p("	add  r1, r0")
		p("	in   r0, 0x20   ; timer")
		p("	add  r1, r0")
		p("	in   r0, 0x33   ; disk status")
		p("	add  r1, r0")
		p("	in   r0, 0x40   ; NIC status")
		p("	add  r1, r0")
	}
	// ROM checksum: pass(es) over the kernel image (the relatively flat
	// region at the start of the Figure 6 trace).
	p("	movi r7, %d", max(1, k.ChecksumRounds))
	p("chksumround:")
	p("	movi r0, %#x", kCodeBase)
	p("chksum:")
	p("	ldb  r2, [r0]")
	p("	add  r1, r2")
	p("	inc  r0")
	csum := k.ChecksumBytes
	if csum == 0 {
		csum = 0x1800
	}
	p("	cmpi r0, %#x", kCodeBase+csum)
	p("	jl   chksum")
	p("	dec  r7")
	p("	jnz  chksumround")
	// One-shot configuration branches: executed exactly once each, with
	// data-dependent directions — cold-predictor misses.
	for i := 0; i < k.BIOSBranchBlocks; i++ {
		p("	mov  r2, r1")
		p("	shri r2, %d", i%13)
		p("	andi r2, 1")
		p("	cmpi r2, 0")
		p("	jz   biosskip%d", i)
		p("	addi r1, %d", 17+i*3)
		p("	xori r1, %d", 0x21+i)
		p("biosskip%d:", i)
	}

	// Banner out to the console.
	if k.Banner != "" {
		p("	movi r5, banner")
		p("	movi r6, bannerend")
		p("bannerloop:")
		p("	ldb  r0, [r5]")
		p("	out  r0, 0x10")
		p("	inc  r5")
		p("	cmp  r5, r6")
		p("	jl   bannerloop")
	}

	// ---- Phase 2: load + decompress the payload from disk ----
	p("	movi r8, 1        ; first payload sector")
	p("	movi r10, USERPA  ; decompression cursor")
	p("loadsec:")
	p("	out  r8, 0x30")
	p("	movi r0, 1")
	p("	out  r0, 0x31     ; read command")
	p("diskwait:")
	p("	pause")
	p("	in   r0, 0x33")
	p("	andi r0, 1")
	p("	jnz  diskwait")
	p("	movi r0, 1")
	p("	out  r0, 0x34     ; ack completion")
	p("	movi r5, SECBUF")
	p("	movi r6, %d", SectorWords)
	p("rdword:")
	p("	in   r0, 0x32")
	p("	stw  r0, [r5]")
	p("	addi r5, 4")
	p("	dec  r6")
	p("	jnz  rdword")
	p("	movi r5, SECBUF")
	p("nextent:")
	p("	ldw  r4, [r5]")
	p("	addi r5, 4")
	p("	cmpi r4, 0")
	p("	jz   loaddone")
	// Relocation fixup: data-dependent on the payload byte — the
	// decompress phase's branch behaviour tracks the image contents.
	p("	mov  r3, r4")
	p("	andi r3, 1")
	p("	jz   nofix")
	p("	inc  r9           ; fixup count")
	p("nofix:")
	// Bounds sanity checks (never taken): the biased guard branches that
	// pepper real kernel code.
	p("	cmpi r10, %#x", 0x0F000000)
	p("	jge  loaddone")
	p("	cmpi r5, %#x", 0x0F000000)
	p("	jge  loaddone")
	p("	mov  r3, r4")
	p("	andi r3, 0xFF     ; value byte")
	p("	mov  r2, r4")
	p("	shri r2, 8        ; run length")
	p("	mov  r1, r10")
	p("	rep stos          ; string-op decompressor")
	p("	mov  r10, r1")
	p("	cmpi r5, %#x", kSecBuf+SectorWords*4)
	p("	jl   nextent")
	p("	inc  r8")
	p("	jmp  loadsec")
	p("loaddone:")

	// ---- Phase 3: kernel init: IVT, TLB, timer, drop to user ----
	install := func(vec int, label string) {
		p("	movi r0, %s", label)
		p("	movi r2, %d", vec*isa.VectorStride)
		p("	stw  r0, [r2]")
	}
	install(isa.VecIllegal, "kill")
	install(isa.VecDivZero, "kill")
	install(isa.VecTLBMiss, "tlbmiss")
	install(isa.VecProt, "kill")
	install(isa.VecSyscall, "syscallh")
	install(isa.VecBreak, "kill")
	install(isa.VecAlign, "kill")
	install(isa.VecFPError, "kill")
	install(isa.VecTimer, "timerh")
	install(isa.VecDisk, "spuriret")
	install(isa.VecConsole, "spuriret")
	install(isa.VecNIC, "spuriret")
	if k.TimerInterval > 0 {
		p("	movi r0, %d", k.TimerInterval)
		p("	out  r0, 0x20")
	}
	if k.FS {
		fsInit(p)
	}
	p("	movi r0, 1")
	p("	movcr r0, cr1     ; enable user paging")
	p("	movi r0, %#x", UserVA)
	p("	movcr r0, cr5")
	flags := 0x20 // user mode
	if k.TimerInterval > 0 {
		flags |= 0x10 // interrupts
	}
	p("	movi r0, %#x", flags)
	p("	movcr r0, cr6")
	p("	movi sp, %#x", UserSP)
	if k.Cores > 1 {
		// Boot is done: release the parked secondaries. Plain store — the
		// flag is write-once and the spinners only read it.
		p("	movi r4, vRELEASE")
		p("	movi r0, 1")
		p("	stw  r0, [r4]")
	}
	// Zero the user-visible register file: no kernel state leaks into the
	// process (r11/r12 are kernel scratch by ABI anyway).
	for r := 0; r <= 10; r++ {
		p("	movi r%d, 0", r)
	}
	p("	movi r15, 0")
	p("	movi lr, 0")
	p("	iret              ; enter user program")

	// ---- Handlers ----
	// r11/r12 are kernel-reserved scratch by ABI (the MIPS k0/k1 idiom):
	// user programs never touch them, so trap handlers may clobber them
	// without saving. Handlers run with interrupts disabled except inside
	// the sleep loop, which re-establishes its registers after waking.

	// TLB miss: linear map user VAs; anything else kills the process.
	// Under FS the map is offset by the current process's memory slot.
	if k.FS {
		fsTLBMiss(p)
	} else {
		p("tlbmiss:")
		p("	movrc r11, cr2")
		p("	shri r11, %d", fullsys.PageShift)
		p("	cmpi r11, %#x", UserVA>>fullsys.PageShift)
		p("	jl   kill")
		p("	cmpi r11, %#x", UserVAEnd>>fullsys.PageShift)
		p("	jge  kill")
		p("	mov  r12, r11")
		p("	addi r12, %#x", userOffset)
		p("	shli r12, %d", fullsys.PageShift)
		p("	ori  r12, 3       ; user|write")
		p("	tlbwr r11, r12")
		p("	iret")
	}

	// Timer: tick, ack. On SMP every core has its own timer device, so the
	// tick counter lives in the per-CPU area (PCPU + CPUID*32 + 8) — a
	// shared counter would mix independent per-core clocks.
	p("timerh:")
	if k.Cores > 1 {
		p("	movrc r12, cr8")
		p("	shli r12, 5")
		p("	addi r12, PCPU")
		p("	ldw  r11, [r12+8]")
		p("	inc  r11")
		p("	stw  r11, [r12+8]")
	} else {
		p("	movi r12, vTICKS")
		p("	ldw  r11, [r12]")
		p("	inc  r11")
		p("	stw  r11, [r12]")
	}
	p("	movi r11, 1")
	p("	out  r11, 0x22")
	p("	iret")

	// Spurious device interrupts: acknowledge everything and return.
	p("spuriret:")
	p("	movi r11, 1")
	p("	out  r11, 0x34    ; disk ack")
	p("	out  r11, 0x43    ; nic ack")
	p("	in   r11, 0x12    ; console drain")
	p("	iret")

	// Syscalls: r0 = number. The trap context (EPC/EFLAGS) is spilled to
	// memory because sleep re-enables interrupts, which overwrites the
	// context CRs. On SMP the spill slot is per-CPU (PCPU + CPUID*32):
	// two cores inside the handler at once must not share it.
	pcpuSlot := func() {
		p("	movrc r12, cr8")
		p("	shli r12, 5")
		p("	addi r12, PCPU")
	}
	if k.FS {
		// The FS syscall surface replaces the whole block below: full
		// register spill/restore through the process table, the extended
		// dispatch, and the file/process/log/NIC handlers (fskernel.go).
		fsSyscalls(p, flags)
	} else {
		p("syscallh:")
		if k.Cores > 1 {
			pcpuSlot()
		} else {
			p("	movi r12, vEPC")
		}
		p("	movrc r11, cr5")
		p("	stw  r11, [r12]")
		p("	movrc r11, cr6")
		p("	stw  r11, [r12+4] ; vEFL")
		p("	cmpi r0, 0")
		p("	jz   shutdown     ; sys_exit")
		p("	cmpi r0, 1")
		p("	jz   sysputc")
		p("	cmpi r0, 2")
		p("	jz   sysgetc")
		p("	cmpi r0, 4")
		p("	jz   syssleep")
		p("	cmpi r0, 5")
		p("	jz   systime")
		p("sysret:")
		if k.Cores > 1 {
			pcpuSlot()
		} else {
			p("	movi r12, vEPC")
		}
		p("	ldw  r11, [r12]")
		p("	movcr r11, cr5")
		p("	ldw  r11, [r12+4]")
		p("	movcr r11, cr6")
		p("	iret")
		p("sysputc:")
		p("	out  r1, 0x10")
		p("	jmp  sysret")
		p("sysgetc:")
		p("	in   r0, 0x12")
		p("	jmp  sysret")
		p("systime:")
		p("	movrc r0, cr4")
		p("	jmp  sysret")
		// sleep(r1 ticks): HALT until the tick counter advances far enough —
		// the perlbmk behaviour ("the default QEMU behavior stops the
		// processor until the timer interrupt fires", §4.4).
		// On SMP the tick counter and sleep target are per-CPU (slots +8/+12
		// of the 32-byte PCPU stride): each core sleeps against its own timer.
		p("syssleep:")
		if k.Cores > 1 {
			pcpuSlot()
			p("	ldw  r11, [r12+8]")
			p("	add  r11, r1")
			p("	stw  r11, [r12+12]")
		} else {
			p("	movi r12, vTICKS")
			p("	ldw  r11, [r12]")
			p("	add  r11, r1")
			p("	stw  r11, [r12+4] ; vSLEEP")
		}
		p("sleeploop:")
		p("	sti")
		p("	halt")
		p("	cli")
		if k.Cores > 1 {
			pcpuSlot()
			p("	ldw  r11, [r12+8]")
			p("	ldw  r12, [r12+12]")
		} else {
			p("	movi r12, vTICKS")
			p("	ldw  r11, [r12]")
			p("	ldw  r12, [r12+4]")
		}
		p("	cmp  r11, r12")
		p("	jl   sleeploop")
		p("	jmp  sysret")
	}

	p("kill:")
	p("shutdown:")
	p("	movi r0, '\\n'")
	p("	out  r0, 0x10")
	p("	cli")
	p("	halt")

	if k.Cores > 1 {
		// Secondary cores: spin on the release flag, then either drop into
		// the user program (SMPUser) or halt as idle SMP siblings.
		p("mpwait:")
		p("	movi r5, vRELEASE")
		p("mpspin:")
		p("	pause")
		p("	ldw  r4, [r5]")
		p("	cmpi r4, 0")
		p("	jz   mpspin")
		if k.SMPUser {
			if k.TimerInterval > 0 {
				// Each core owns a timer device; arm it so syssleep can
				// wake this core (the boot core armed only its own).
				p("	movi r0, %d", k.TimerInterval)
				p("	out  r0, 0x20")
			}
			p("	movi r0, 1")
			p("	movcr r0, cr1     ; enable user paging")
			p("	movi r0, %#x", UserVA)
			p("	movcr r0, cr5")
			p("	movi r0, %#x", flags)
			p("	movcr r0, cr6")
			// Per-CPU user stack, 4 KiB strides below the primary's.
			p("	movrc r4, cr8")
			p("	shli r4, 12")
			p("	movi sp, %#x", UserSP)
			p("	sub  sp, r4")
			for r := 0; r <= 10; r++ {
				p("	movi r%d, 0", r)
			}
			p("	movi r15, 0")
			p("	movi lr, 0")
			p("	movrc r1, cr8     ; user ABI: r1 = CPUID")
			p("	iret              ; enter user program")
		} else {
			p("	cli")
			p("	halt              ; idle secondary")
		}
	}

	if k.Banner != "" {
		p("banner:")
		p("	.ascii %q", k.Banner)
		p("bannerend:")
		p("	.align 4")
	}
	p(".entry bios")
	return b.String()
}

// Boot is a bootable full system: kernel image plus devices with the user
// program preloaded on disk.
type Boot struct {
	Kernel  *isa.Program
	Console *fullsys.Console
	Timer   *fullsys.Timer
	Disk    *fullsys.Disk
	NIC     *fullsys.NIC
}

// Devices returns the device set for fm.Config.
func (b *Boot) Devices() []fullsys.Device {
	return []fullsys.Device{b.Console, b.Timer, b.Disk, b.NIC}
}

// BuildBoot assembles the kernel and the user program, compresses the user
// image onto the disk, and returns the bootable system.
func BuildBoot(k KernelConfig, userAsm string) (*Boot, error) {
	return buildBoot(k, userAsm, nil, nil)
}

// BuildBootFS builds an FS-kernel boot: on top of BuildBoot it mkfs's the
// given root files into a toyFS image on the disk (sectors fs.Base and
// up, after the boot payload) and scripts NIC arrivals.
func BuildBootFS(k KernelConfig, userAsm string, files map[string][]byte, arrivals []fullsys.ScriptedInput) (*Boot, error) {
	if !k.FS {
		return nil, fmt.Errorf("workload: BuildBootFS requires KernelConfig.FS")
	}
	return buildBoot(k, userAsm, files, arrivals)
}

func buildBoot(k KernelConfig, userAsm string, files map[string][]byte, arrivals []fullsys.ScriptedInput) (*Boot, error) {
	if k.FS && k.Cores > 1 {
		return nil, fmt.Errorf("workload: the FS kernel is uniprocessor-only (cores = %d)", k.Cores)
	}
	user, err := isa.Assemble(userAsm, UserVA)
	if err != nil {
		return nil, fmt.Errorf("workload: user program: %w", err)
	}
	if user.Entry != UserVA {
		return nil, fmt.Errorf("workload: user entry %#x, must be %#x", user.Entry, UserVA)
	}
	kernel, err := isa.Assemble(KernelSource(k), 0)
	if err != nil {
		return nil, fmt.Errorf("workload: kernel: %w", err)
	}
	kernelLimit := isa.Word(kSecBuf)
	if k.FS {
		kernelLimit = kProcBase // FS kernel data structures start here
	}
	if kernel.End() > kernelLimit {
		return nil, fmt.Errorf("workload: kernel image %#x overruns the reserved region at %#x",
			kernel.End(), kernelLimit)
	}
	image := append([]byte(nil), user.Code...)
	if k.PayloadPad > 0 {
		// Deterministic pseudo-random padding; PayloadRunFraction percent
		// of it in short runs (compressible), the rest byte-unique.
		lcg := uint32(0x2B00B1E5)
		for len(image) < len(user.Code)+k.PayloadPad {
			lcg = lcg*1664525 + 1013904223
			b := byte(lcg >> 16)
			if int(lcg>>24)%100 < k.PayloadRunFraction {
				run := 3 + int(lcg>>13)%6
				for j := 0; j < run; j++ {
					image = append(image, b)
				}
			} else {
				image = append(image, b)
			}
		}
	}
	latency := uint64(DiskLatency)
	if k.DiskLatency > 0 {
		latency = k.DiskLatency
	}
	disk := fullsys.NewDisk(SectorWords, latency)
	payload := ToSectors(RLECompress(image))
	if k.FS && len(payload)+1 > fs.Base {
		return nil, fmt.Errorf("workload: boot payload (%d sectors) overruns the toyFS region at sector %d",
			len(payload), fs.Base)
	}
	for i, sec := range payload {
		disk.Preload(uint32(i+1), sec)
	}
	if k.FS {
		im, err := fs.Mkfs(files)
		if err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		for sector, words := range im {
			disk.Preload(sector, words)
		}
	}
	return &Boot{
		Kernel:  kernel,
		Console: fullsys.NewConsole(),
		Timer:   fullsys.NewTimer(),
		Disk:    disk,
		NIC:     fullsys.NewNIC(arrivals...),
	}, nil
}
