package workload

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/fm"
	"repro/internal/isa"
)

func TestRLERoundTrip(t *testing.T) {
	cases := [][]byte{
		nil,
		{1},
		{0, 0, 0, 0},
		{1, 2, 3, 4, 5},
		append(make([]byte, 300), 7, 7, 7), // run longer than 255
	}
	for _, c := range cases {
		got, err := RLEDecompress(RLECompress(c))
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if string(got) != string(c) {
			t.Errorf("round trip failed for %v", c)
		}
	}
	f := func(data []byte) bool {
		got, err := RLEDecompress(RLECompress(data))
		return err == nil && string(got) == string(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRLEErrors(t *testing.T) {
	if _, err := RLEDecompress([]uint32{1 << 8}); err == nil {
		t.Error("missing terminator accepted")
	}
	if _, err := RLEDecompress([]uint32{0x00_07, 0}); err == nil {
		t.Error("zero-count word accepted")
	}
}

func TestToSectors(t *testing.T) {
	words := make([]uint32, SectorWords+5)
	secs := ToSectors(words)
	if len(secs) != 2 || len(secs[0]) != SectorWords || len(secs[1]) != SectorWords {
		t.Errorf("sectors: %d of sizes %d,%d", len(secs), len(secs[0]), len(secs[1]))
	}
	if len(ToSectors(nil)) != 1 {
		t.Error("empty stream should still give one sector")
	}
}

// bootAndRun boots a spec on the functional model until terminal halt.
func bootAndRun(t *testing.T, spec Spec, maxSteps int) (*fm.Model, *Boot) {
	t.Helper()
	boot, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := fm.New(fm.Config{Devices: boot.Devices()})
	m.LoadProgram(boot.Kernel)
	idle := 0
	for steps := 0; steps < maxSteps; steps++ {
		if _, ok := m.Step(); ok {
			idle = 0
			continue
		}
		if m.Fatal() != nil {
			t.Fatalf("%s: fatal after %d steps: %v (console %q)",
				spec.Name, steps, m.Fatal(), boot.Console.Output())
		}
		if m.Halted() && m.Flags&isa.FlagI == 0 {
			return m, boot // clean shutdown
		}
		m.AdvanceIdle(100)
		idle++
		if idle > 1_000_000 {
			t.Fatalf("%s: hung in HALT", spec.Name)
		}
	}
	t.Fatalf("%s: did not shut down in %d steps (console %q)",
		spec.Name, maxSteps, boot.Console.Output())
	return nil, nil
}

func TestBootDecompressesUserProgram(t *testing.T) {
	// Run just the boot (init user program) and verify the decompressed
	// image at UserPA matches the assembled user program byte for byte.
	spec := Spec{Name: "boot", Kernel: FastBoot(), UserAsm: InitProgram}
	m, boot := bootAndRun(t, spec, 5_000_000)
	user := isa.MustAssemble(InitProgram(), UserVA)
	for i, want := range user.Code {
		if got := byte(m.Mem.Read(isa.Word(UserPA+i), 1)); got != want {
			t.Fatalf("decompressed byte %d = %#x, want %#x", i, got, want)
		}
	}
	out := string(boot.Console.Output())
	if !strings.Contains(out, "init") {
		t.Errorf("init program did not run: console %q", out)
	}
}

func TestBootBannersAndPhases(t *testing.T) {
	spec, ok := ByName("Linux-2.4")
	if !ok {
		t.Fatal("Linux-2.4 spec missing")
	}
	m, boot := bootAndRun(t, spec, 20_000_000)
	out := string(boot.Console.Output())
	if !strings.Contains(out, "toyOS 2.4 booting") {
		t.Errorf("banner missing: %q", out)
	}
	if m.Interrupts == 0 {
		t.Error("timer never interrupted the boot")
	}
	if m.Exceptions == 0 {
		t.Error("no TLB-miss exceptions during user startup")
	}
}

func TestAllWorkloadsBuild(t *testing.T) {
	specs := append(All(), WindowsXP())
	if len(specs) != 17 {
		t.Fatalf("%d specs, want 17", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Errorf("duplicate workload %s", s.Name)
		}
		seen[s.Name] = true
		if _, err := s.Build(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if s.PaperUopsPerInst < 1 || s.PaperFraction <= 0 || s.PaperFraction > 1 {
			t.Errorf("%s: bad paper reference values", s.Name)
		}
	}
}

// TestWorkloadsRunToCompletion executes every workload (with reduced
// iteration counts via the standard specs but bounded steps) and checks
// clean shutdown plus sane microcode statistics.
func TestWorkloadsRunToCompletion(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			m, _ := bootAndRun(t, shrink(spec), 40_000_000)
			cov := m.Coverage
			if cov.Instructions < 1000 {
				t.Fatalf("only %d instructions executed", cov.Instructions)
			}
			if got := cov.UopsPerInst(); got < 1.0 || got > 2.5 {
				t.Errorf("µops/inst = %.3f implausible", got)
			}
			if got := cov.Fraction(); got < 0.30 || got > 1.0 {
				t.Errorf("microcode coverage = %.3f implausible", got)
			}
		})
	}
}

// shrink reduces a spec's work so functional-only runs stay fast, keeping
// the program structure identical.
func shrink(s Spec) Spec {
	small := map[string]func() string{
		"164.gzip":    func() string { return GzipProgram(3) },
		"175.vpr":     func() string { return VprProgram(3000) },
		"176.gcc":     func() string { return GccProgram(3000) },
		"181.mcf":     func() string { return McfProgram(3000) },
		"186.crafty":  func() string { return CraftyProgram(2000) },
		"197.parser":  func() string { return ParserProgram(5) },
		"252.eon":     func() string { return EonProgram(3000) },
		"253.perlbmk": func() string { return PerlbmkProgram(20) },
		"254.gap":     func() string { return GapProgram(200) },
		"255.vortex":  func() string { return VortexProgram(3000) },
		"256.bzip2":   func() string { return Bzip2Program(20) },
		"300.twolf":   func() string { return TwolfProgram(5000) },
		"Sweep3D":     func() string { return Sweep3DProgram(10) },
		"MySQL":       func() string { return MysqlProgram(500) },
	}
	if f, ok := small[s.Name]; ok {
		s.UserAsm = f
	}
	return s
}

func TestPerlbmkSleeps(t *testing.T) {
	spec := Spec{Name: "perl", Kernel: FastBoot(),
		UserAsm: func() string { return PerlbmkProgram(12) }}
	m, _ := bootAndRun(t, spec, 10_000_000)
	// Sleep syscalls leave the FM halted awaiting the timer: idle time
	// accrues (the §4.4 perlbmk effect).
	if m.Now() <= m.IN() {
		t.Error("no idle (HALT) time accumulated despite sleep syscalls")
	}
	if m.Interrupts < 3 {
		t.Errorf("only %d interrupts; sleeps should wait for the timer", m.Interrupts)
	}
}

func TestMysqlStringOpsRaiseUopRate(t *testing.T) {
	my, _ := bootAndRun(t, shrink(mustSpec(t, "MySQL")), 40_000_000)
	crafty, _ := bootAndRun(t, shrink(mustSpec(t, "186.crafty")), 40_000_000)
	if my.Coverage.UopsPerInst() <= crafty.Coverage.UopsPerInst() {
		t.Errorf("MySQL µops/inst %.3f not above crafty %.3f (string ops, Table 1)",
			my.Coverage.UopsPerInst(), crafty.Coverage.UopsPerInst())
	}
}

func TestFPWorkloadsHaveLowCoverage(t *testing.T) {
	eon, _ := bootAndRun(t, shrink(mustSpec(t, "252.eon")), 40_000_000)
	gzip, _ := bootAndRun(t, shrink(mustSpec(t, "164.gzip")), 40_000_000)
	if eon.Coverage.Fraction() >= gzip.Coverage.Fraction() {
		t.Errorf("eon coverage %.3f not below gzip %.3f (Table 1 FP story)",
			eon.Coverage.Fraction(), gzip.Coverage.Fraction())
	}
	if eon.Coverage.Fraction() > 0.85 {
		t.Errorf("eon coverage %.3f too high; paper reports 52%%", eon.Coverage.Fraction())
	}
}

func mustSpec(t *testing.T, name string) Spec {
	t.Helper()
	s, ok := ByName(name)
	if !ok {
		t.Fatalf("spec %s missing", name)
	}
	return s
}

func TestKernelSourceDeterministic(t *testing.T) {
	a := KernelSource(FastBoot())
	b := KernelSource(FastBoot())
	if a != b {
		t.Error("kernel generation not deterministic")
	}
	if !strings.Contains(a, "rep stos") {
		t.Error("kernel lost its string-op decompressor")
	}
}

func TestUserEntryValidation(t *testing.T) {
	if _, err := BuildBoot(FastBoot(), ".entry lab\n.org 0x40\nlab: halt\n"); err == nil {
		t.Error("user program with wrong entry accepted")
	}
}
