package workload

import (
	"sort"
	"testing"

	"repro/internal/fm"
	"repro/internal/isa"
)

// These tests verify the miniature benchmarks compute what their names
// promise — they are real algorithms, not instruction noise.

// runUser boots a FastBoot system with the given user program and runs to
// shutdown, returning the model for memory/register inspection.
func runUser(t *testing.T, userAsm string) *fm.Model {
	t.Helper()
	boot, err := BuildBoot(FastBoot(), userAsm)
	if err != nil {
		t.Fatal(err)
	}
	m := fm.New(fm.Config{Devices: boot.Devices()})
	m.LoadProgram(boot.Kernel)
	idle := 0
	for steps := 0; steps < 80_000_000; steps++ {
		if _, ok := m.Step(); ok {
			idle = 0
			continue
		}
		if m.Fatal() != nil {
			t.Fatalf("fatal: %v", m.Fatal())
		}
		if m.Halted() && m.Flags&isa.FlagI == 0 {
			return m
		}
		m.AdvanceIdle(100)
		if idle++; idle > 1_000_000 {
			t.Fatal("hung")
		}
	}
	t.Fatal("did not finish")
	return nil
}

// userByte reads a byte from a user virtual address (linear map).
func userByte(m *fm.Model, va uint32) byte {
	return byte(m.Mem.Read(va-UserVA+UserPA, 1))
}

func TestBzip2ActuallySorts(t *testing.T) {
	m := runUser(t, Bzip2Program(1))
	const block = 128
	got := make([]byte, block)
	for i := range got {
		got[i] = userByte(m, uint32(dataVA+i))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Errorf("block not sorted after insertion sort: %v", got)
	}
	// And non-degenerate input: more than 3 distinct byte values.
	distinct := map[byte]bool{}
	for _, b := range got {
		distinct[b] = true
	}
	if len(distinct) < 4 {
		t.Errorf("suspiciously uniform block: %d distinct values", len(distinct))
	}
}

func TestMysqlRowsActuallyCopied(t *testing.T) {
	m := runUser(t, MysqlProgram(300))
	// The row template at dataVA must appear in at least one table slot.
	const rowBytes = 8
	template := make([]byte, rowBytes)
	for i := range template {
		template[i] = userByte(m, uint32(dataVA+i))
	}
	const tableRows = 256
	matches := 0
	for r := 0; r < tableRows; r++ {
		same := true
		for i := 0; i < rowBytes; i++ {
			if userByte(m, uint32(dataVA2+r*rowBytes+i)) != template[i] {
				same = false
				break
			}
		}
		if same {
			matches++
		}
	}
	if matches == 0 {
		t.Error("no inserted rows match the template: REP MOVS copies broken")
	}
	// SELECT verification counted matches in R7 and corruption in R8.
	if m.GPR[8] != 0 {
		t.Errorf("%d corrupt rows detected by in-target verification", m.GPR[8])
	}
}

func TestGapCarriesPropagate(t *testing.T) {
	m := runUser(t, GapProgram(3))
	// After three big-adds a = a + 3b (mod 2^(32·limbs)); spot-check the
	// low limb arithmetic: a0_final = a0_init + 3·b0 (mod 2^32) with the
	// generator's deterministic values. Rather than re-deriving the LCG,
	// verify the invariant that the in-target sum register chain left the
	// arrays intact: b unchanged across iterations.
	const limbs = 64
	// b lives at dataVA + 4·limbs; regenerate expected b with the LCG.
	lcg := func(x uint32) uint32 { return x*1103515245 + 12345 }
	seed := uint32(987654321)
	var vals []uint32
	for i := 0; i < 2*limbs; i++ {
		seed = lcg(seed)
		vals = append(vals, seed>>4)
	}
	for i := 0; i < limbs; i++ {
		got := uint32(m.Mem.Read(uint32(dataVA+4*limbs+4*i)-UserVA+UserPA, 4))
		if got != vals[limbs+i] {
			t.Fatalf("b[%d] = %#x, want %#x (operand corrupted)", i, got, vals[limbs+i])
		}
	}
	// a = a0 + 3·b elementwise with carry; check limb 0 exactly.
	a0 := vals[0]
	b0 := vals[limbs]
	want := a0 + 3*b0 // low limb ignores incoming carry
	got := uint32(m.Mem.Read(uint32(dataVA)-UserVA+UserPA, 4))
	if got != want {
		t.Errorf("a[0] = %#x, want %#x", got, want)
	}
}

func TestVortexHashConsistency(t *testing.T) {
	m := runUser(t, VortexProgram(5000))
	// Lookups of freshly inserted keys use a different random key, so most
	// miss — but the bucket structure must be populated: count nonzero
	// buckets.
	const buckets = 1024
	populated := 0
	for b := 0; b < buckets; b++ {
		if m.Mem.Read(uint32(dataVA+b*8)-UserVA+UserPA, 4) != 0 {
			populated++
		}
	}
	if populated < buckets/2 {
		t.Errorf("only %d/%d buckets populated after 5000 inserts", populated, buckets)
	}
	if m.GPR[8] == 0 {
		t.Error("no lookup misses recorded — hash probe path never ran")
	}
}

func TestGzipFindsMatches(t *testing.T) {
	m := runUser(t, GzipProgram(1))
	// With a 16-symbol alphabet the window search must find matches: the
	// token count (r8) must be well below the buffer length (compression!)
	// and above zero.
	tokens := m.GPR[8]
	if tokens == 0 {
		t.Fatal("no tokens emitted")
	}
	const bufLen = 4096
	if tokens >= bufLen-80 {
		t.Errorf("%d tokens for %d bytes: no matches found, not compressing", tokens, bufLen)
	}
}

func TestSweep3DConverges(t *testing.T) {
	m := runUser(t, Sweep3DProgram(3))
	// The stencil must have written back finite, nonzero interior values.
	const n = 24
	nonzero := 0
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			v := uint32(m.Mem.Read(uint32(dataVA+4*(i*n+j))-UserVA+UserPA, 4))
			if v != 0 {
				nonzero++
			}
		}
	}
	if nonzero < (n-2)*(n-2)/2 {
		t.Errorf("only %d interior cells updated", nonzero)
	}
}
