// Package workload provides the full-system software stack the FAST
// reproduction runs: toyOS — a small kernel with a BIOS phase, an on-disk
// compressed payload it decompresses at boot (the Figure 6 phases), a
// software-filled TLB handler, timer interrupts and a syscall interface —
// plus sixteen synthetic workload programs standing in for the paper's
// benchmarks (SPECINT2000, Linux/Windows boots, MySQL, Sweep3D), each
// tuned to its published characteristics (Table 1 µop expansion and
// microcode coverage, Figure 5 branch-prediction accuracy, Figure 4
// behaviour such as perlbmk's HALT-heavy sleeps).
package workload

import "fmt"

// RLE encoding used for the "compressed kernel/program image" on disk: a
// stream of 32-bit words, each count<<8|value (1 ≤ count ≤ 255), terminated
// by a zero word. toyOS decompresses it with REP STOS — a deliberately
// string-op-heavy boot phase, like a real kernel's decompressor.

// RLECompress encodes data as RLE words (terminator included).
func RLECompress(data []byte) []uint32 {
	var out []uint32
	for i := 0; i < len(data); {
		j := i + 1
		for j < len(data) && data[j] == data[i] && j-i < 255 {
			j++
		}
		out = append(out, uint32(j-i)<<8|uint32(data[i]))
		i = j
	}
	out = append(out, 0)
	return out
}

// RLEDecompress is the reference decoder (tests compare toyOS's in-target
// decompression against it).
func RLEDecompress(words []uint32) ([]byte, error) {
	var out []byte
	for _, w := range words {
		if w == 0 {
			return out, nil
		}
		count := int(w >> 8)
		val := byte(w)
		if count == 0 {
			return nil, fmt.Errorf("workload: zero-count RLE word %#x", w)
		}
		for i := 0; i < count; i++ {
			out = append(out, val)
		}
	}
	return nil, fmt.Errorf("workload: missing RLE terminator")
}

// SectorWords is the toyOS disk geometry (512-byte sectors).
const SectorWords = 128

// ToSectors splits an RLE stream into disk sectors, zero-padding the last.
func ToSectors(words []uint32) [][]uint32 {
	var sectors [][]uint32
	for i := 0; i < len(words); i += SectorWords {
		end := i + SectorWords
		if end > len(words) {
			end = len(words)
		}
		sec := make([]uint32, SectorWords)
		copy(sec, words[i:end])
		sectors = append(sectors, sec)
	}
	if len(sectors) == 0 {
		sectors = append(sectors, make([]uint32, SectorWords))
	}
	return sectors
}
