package workload

import (
	"fmt"

	"repro/internal/fullsys"
)

// Spec describes one benchmark: how to build it and what the paper reports
// for it (Table 1, Figures 4 and 5) so the harness can print
// paper-vs-measured.
type Spec struct {
	Name string
	// Kernel configuration (boot workloads differ here).
	Kernel KernelConfig
	// UserAsm generates the user program.
	UserAsm func() string
	// Files, for FS-kernel workloads (Kernel.FS), generates the file set
	// formatted into the toyFS disk image at build time.
	Files func() map[string][]byte
	// Arrivals scripts NIC packet arrivals (FS-kernel workloads only).
	Arrivals []fullsys.ScriptedInput

	// Published reference values.
	PaperUopsPerInst float64 // Table 1 "µOps/inst"
	PaperFraction    float64 // Table 1 "Fraction" (microcode coverage)
	PaperGshareAcc   float64 // Figure 5 (approximate, read off the plot)
	PaperGshareMIPS  float64 // Figure 4 gshare series (approximate)
}

// Build assembles the bootable system for the spec.
func (s Spec) Build() (*Boot, error) {
	var b *Boot
	var err error
	if s.Kernel.FS {
		var files map[string][]byte
		if s.Files != nil {
			files = s.Files()
		}
		b, err = BuildBootFS(s.Kernel, s.UserAsm(), files, s.Arrivals)
	} else {
		b, err = BuildBoot(s.Kernel, s.UserAsm())
	}
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", s.Name, err)
	}
	return b, nil
}

// iteration counts sized so every workload runs well past any warmup under
// the benches' instruction caps.
const std = 100000

// All returns the sixteen workloads of Table 1 in the paper's order.
func All() []Spec {
	linux24 := KernelConfig{
		BIOSBranchBlocks: 160, ChecksumRounds: 3, DeviceProbes: 3,
		TimerInterval: 20000, Banner: "toyOS 2.4 booting\n",
		PayloadPad: 10 << 10, PayloadRunFraction: 10,
	}
	linux26 := KernelConfig{
		BIOSBranchBlocks: 220, ChecksumRounds: 2, DeviceProbes: 4,
		TimerInterval: 15000, Banner: "toyOS 2.6 booting\n",
		PayloadPad: 20 << 10, PayloadRunFraction: 55,
	}
	fast := FastBoot()

	return []Spec{
		{Name: "Linux-2.4", Kernel: linux24, UserAsm: InitProgram,
			PaperUopsPerInst: 1.15, PaperFraction: 0.9594, PaperGshareAcc: 0.87, PaperGshareMIPS: 1.2},
		{Name: "164.gzip", Kernel: fast, UserAsm: func() string { return GzipProgram(std) },
			PaperUopsPerInst: 1.34, PaperFraction: 0.9998, PaperGshareAcc: 0.90, PaperGshareMIPS: 1.1},
		{Name: "175.vpr", Kernel: fast, UserAsm: func() string { return VprProgram(std) },
			PaperUopsPerInst: 1.19, PaperFraction: 0.8462, PaperGshareAcc: 0.88, PaperGshareMIPS: 1.0},
		{Name: "176.gcc", Kernel: fast, UserAsm: func() string { return GccProgram(std) },
			PaperUopsPerInst: 1.30, PaperFraction: 0.9990, PaperGshareAcc: 0.88, PaperGshareMIPS: 1.1},
		{Name: "181.mcf", Kernel: fast, UserAsm: func() string { return McfProgram(std) },
			PaperUopsPerInst: 1.17, PaperFraction: 0.9993, PaperGshareAcc: 0.91, PaperGshareMIPS: 1.0},
		{Name: "186.crafty", Kernel: fast, UserAsm: func() string { return CraftyProgram(std) },
			PaperUopsPerInst: 1.15, PaperFraction: 0.9896, PaperGshareAcc: 0.85, PaperGshareMIPS: 1.2},
		{Name: "197.parser", Kernel: fast, UserAsm: func() string { return ParserProgram(200) },
			PaperUopsPerInst: 1.27, PaperFraction: 0.9974, PaperGshareAcc: 0.84, PaperGshareMIPS: 1.0},
		{Name: "252.eon", Kernel: fast, UserAsm: func() string { return EonProgram(std) },
			PaperUopsPerInst: 1.24, PaperFraction: 0.5232, PaperGshareAcc: 0.85, PaperGshareMIPS: 1.2},
		{Name: "253.perlbmk", Kernel: fast, UserAsm: func() string { return PerlbmkProgram(400) },
			PaperUopsPerInst: 1.29, PaperFraction: 0.9864, PaperGshareAcc: 0.902, PaperGshareMIPS: 0.6},
		{Name: "254.gap", Kernel: fast, UserAsm: func() string { return GapProgram(4000) },
			PaperUopsPerInst: 1.31, PaperFraction: 0.9980, PaperGshareAcc: 0.92, PaperGshareMIPS: 1.3},
		{Name: "255.vortex", Kernel: fast, UserAsm: func() string { return VortexProgram(std) },
			PaperUopsPerInst: 1.21, PaperFraction: 0.9991, PaperGshareAcc: 0.95, PaperGshareMIPS: 1.5},
		{Name: "256.bzip2", Kernel: fast, UserAsm: func() string { return Bzip2Program(2000) },
			PaperUopsPerInst: 1.29, PaperFraction: 0.9998, PaperGshareAcc: 0.90, PaperGshareMIPS: 1.2},
		{Name: "300.twolf", Kernel: fast, UserAsm: func() string { return TwolfProgram(std) },
			PaperUopsPerInst: 1.25, PaperFraction: 0.9520, PaperGshareAcc: 0.87, PaperGshareMIPS: 1.1},
		{Name: "Linux-2.6", Kernel: linux26, UserAsm: InitProgram,
			PaperUopsPerInst: 1.45, PaperFraction: 0.9802, PaperGshareAcc: 0.87, PaperGshareMIPS: 1.1},
		{Name: "Sweep3D", Kernel: fast, UserAsm: func() string { return Sweep3DProgram(400) },
			PaperUopsPerInst: 1.19, PaperFraction: 0.4405, PaperGshareAcc: 0.94, PaperGshareMIPS: 1.7},
		{Name: "MySQL", Kernel: fast, UserAsm: func() string { return MysqlProgram(20000) },
			PaperUopsPerInst: 1.51, PaperFraction: 0.9915, PaperGshareAcc: 0.90, PaperGshareMIPS: 1.2},
	}
}

// WindowsXP is the Figure 4/5 Windows boot workload (not in Table 1's
// µop-coverage list but in the performance figures).
func WindowsXP() Spec {
	return Spec{
		Name: "WindowsXP",
		Kernel: KernelConfig{
			BIOSBranchBlocks: 400, ChecksumRounds: 4, DeviceProbes: 10,
			TimerInterval: 10000, Banner: "toyOS XP booting (wider instruction mix)\n",
			PayloadPad: 28 << 10, PayloadRunFraction: 25,
		},
		UserAsm:          InitProgram,
		PaperUopsPerInst: 1.3, PaperFraction: 0.98,
		PaperGshareAcc: 0.85, PaperGshareMIPS: 0.9,
	}
}

// SMPName is the multicore workload's name. It is not part of All():
// Table 1 and the single-core figures predate it.
const SMPName = "smp-lock"

// SMP builds the multicore workload for a core count: a fast boot into N
// user contexts contending on an ll/sc spinlock (see SMPProgram). The core
// count is baked into the user program (the completion barrier and the
// final reduction check need it), so callers must rebuild the spec when it
// changes rather than patch the kernel config.
func SMP(cores int) Spec {
	k := FastBoot()
	k.Cores = cores
	k.SMPUser = true
	return Spec{
		Name:    SMPName,
		Kernel:  k,
		UserAsm: func() string { return SMPProgram(2000, cores) },
	}
}

// SMPSleepName is the sleeping multicore workload's name — SMPProgram's
// structure with a sleep system call per work iteration, so every core
// periodically idles in syssleep. It exists for the warm-start path: the
// all-cores-quiescent boundaries a multicore snapshot capture needs never
// occur under the pause-spinning smp-lock workload.
const SMPSleepName = "smp-sleep"

// SMPSleep builds the sleeping multicore workload for a core count; like
// SMP, the count is baked into the user program, so the spec must be
// rebuilt when it changes.
func SMPSleep(cores int) Spec {
	k := FastBoot()
	k.Cores = cores
	k.SMPUser = true
	return Spec{
		Name:    SMPSleepName,
		Kernel:  k,
		UserAsm: func() string { return SMPSleepProgram(200, cores) },
	}
}

// ByName finds a spec by name at a single core — every registered
// workload, including WindowsXP, the smp pair and the FS servers.
func ByName(name string) (Spec, bool) {
	return Lookup(name, 1)
}
