package fs

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// randTree builds a random file map within toyFS limits.
func randTree(rng *rand.Rand) map[string][]byte {
	n := rng.Intn(NumInodes - 1)
	files := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("f%d", i)
		if rng.Intn(4) == 0 {
			name = fmt.Sprintf("longname%03d", i) // 11 bytes, the max
		}
		size := rng.Intn(MaxFileBytes + 1)
		switch rng.Intn(4) {
		case 0:
			size = 0
		case 1:
			size = rng.Intn(3*SectorBytes) + 1 // small files dominate
		}
		content := make([]byte, size)
		rng.Read(content)
		files[name] = content
	}
	return files
}

// TestMkfsFsckRoundTrip is the property test: any legal file tree must
// mkfs into an image that fsck accepts cleanly and that reads back
// byte-identically.
func TestMkfsFsckRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		files := randTree(rng)
		total := 0
		for _, c := range files {
			total += (len(c) + SectorBytes - 1) / SectorBytes
		}
		im, err := Mkfs(files)
		if total > DataSectors-1 {
			if err == nil {
				t.Fatalf("seed %d: Mkfs accepted %d data sectors (capacity %d)", seed, total, DataSectors-1)
			}
			continue
		}
		if err != nil {
			t.Fatalf("seed %d: Mkfs: %v", seed, err)
		}
		rep, err := Fsck(im)
		if err != nil {
			t.Fatalf("seed %d: Fsck rejected a fresh image: %v", seed, err)
		}
		if len(rep.Warnings) != 0 {
			t.Fatalf("seed %d: fresh image has warnings %v", seed, rep.Warnings)
		}
		if rep.LogHead != 0 {
			t.Fatalf("seed %d: fresh image log head = %d", seed, rep.LogHead)
		}
		if len(rep.Files) != len(files) {
			t.Fatalf("seed %d: fsck lists %d files, want %d", seed, len(rep.Files), len(files))
		}
		for name, content := range files {
			if rep.Files[name] != len(content) {
				t.Fatalf("seed %d: fsck size of %q = %d, want %d", seed, name, rep.Files[name], len(content))
			}
			got, err := ReadFile(im, name)
			if err != nil {
				t.Fatalf("seed %d: ReadFile(%q): %v", seed, name, err)
			}
			if !bytes.Equal(got, content) {
				t.Fatalf("seed %d: ReadFile(%q) differs (%d vs %d bytes)", seed, name, len(got), len(content))
			}
		}
	}
}

// TestMkfsDeterministic: the boot-image pipeline is content-addressed, so
// the same file map must always serialize to the same sectors.
func TestMkfsDeterministic(t *testing.T) {
	files := map[string][]byte{"b": {1, 2, 3}, "a": bytes.Repeat([]byte{7}, SectorBytes+9), "c": nil}
	a, err := Mkfs(files)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mkfs(files)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("sector counts differ: %d vs %d", len(a), len(b))
	}
	for s, words := range a {
		if !slicesEqual(words, b[s]) {
			t.Fatalf("sector %d differs between identical Mkfs runs", s)
		}
	}
}

func slicesEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMkfsRejects covers the builder's input validation.
func TestMkfsRejects(t *testing.T) {
	cases := map[string]map[string][]byte{
		"oversized file": {"big": make([]byte, MaxFileBytes+1)},
		"empty name":     {"": {1}},
		"long name":      {"exactlytwelve": {1}},
	}
	for what, files := range cases {
		if _, err := Mkfs(files); err == nil {
			t.Errorf("Mkfs accepted %s", what)
		}
	}
	tooMany := map[string][]byte{}
	for i := 0; i < NumInodes; i++ {
		tooMany[fmt.Sprintf("f%d", i)] = nil
	}
	if _, err := Mkfs(tooMany); err == nil {
		t.Error("Mkfs accepted more files than inodes")
	}
}

// corrupt applies fn to a copy of a known-good image and asserts Fsck
// rejects the result.
func corrupt(t *testing.T, what string, fn func(Image)) {
	t.Helper()
	im, err := Mkfs(map[string][]byte{"hello": []byte("world"), "data": bytes.Repeat([]byte{3}, 2*SectorBytes)})
	if err != nil {
		t.Fatal(err)
	}
	cp := Image{}
	for s, words := range im {
		cw := make([]uint32, len(words))
		copy(cw, words)
		cp[s] = cw
	}
	fn(cp)
	if _, err := Fsck(cp); err == nil {
		t.Errorf("Fsck accepted %s", what)
	}
}

func TestFsckRejectsCorruption(t *testing.T) {
	inodeWord := func(im Image, ino, w uint32) *uint32 {
		return &im[InodeStart+ino/InodesPerSec][(ino%InodesPerSec)*InodeWords+w]
	}
	corrupt(t, "bad magic", func(im Image) { im[Base][SupMagic] = 0xDEAD })
	corrupt(t, "bad version", func(im Image) { im[Base][SupVersion] = 99 })
	corrupt(t, "bad geometry", func(im Image) { im[Base][SupDataStart] = DataStart + 1 })
	corrupt(t, "log head overflow", func(im Image) { im[Base][SupLogHead] = LogSectors + 1 })
	corrupt(t, "bad inode type", func(im Image) { *inodeWord(im, 1, 0) = 7 })
	corrupt(t, "root not a dir", func(im Image) { *inodeWord(im, 0, 0) = TypeFile })
	corrupt(t, "oversized inode", func(im Image) { *inodeWord(im, 1, 1) = MaxFileBytes + 1 })
	corrupt(t, "pointer out of range", func(im Image) { *inodeWord(im, 1, 3) = LogStart })
	corrupt(t, "pointer to unallocated sector", func(im Image) {
		ptr := *inodeWord(im, 1, 3)
		im[BitmapSector][ptr-DataStart] = 0
	})
	corrupt(t, "doubly-referenced sector", func(im Image) { *inodeWord(im, 2, 3) = *inodeWord(im, 1, 3) })
	corrupt(t, "pointer beyond size", func(im Image) { *inodeWord(im, 1, 14) = *inodeWord(im, 1, 3) })
	corrupt(t, "dangling dirent", func(im Image) { im[RootDirSector][0] = NumInodes + 1 })
	corrupt(t, "dirent to free inode", func(im Image) {
		ino := im[RootDirSector][0] - 1
		*inodeWord(im, ino, 0) = TypeFree
		// Zero the pointers too so only the dirent is at fault.
		for w := uint32(1); w < InodeWords; w++ {
			*inodeWord(im, ino, w) = 0
		}
	})
	corrupt(t, "bad link count", func(im Image) { *inodeWord(im, 1, 2) = 2 })
	corrupt(t, "duplicate names", func(im Image) {
		copy(im[RootDirSector][DirEntWords:2*DirEntWords], im[RootDirSector][:DirEntWords])
		// The duplicated entry now also duplicates the inode reference;
		// both are errors, either suffices.
	})
	corrupt(t, "non-canonical name padding", func(im Image) { im[RootDirSector][3] = 'x' << 24 })
	corrupt(t, "bitmap word out of range", func(im Image) { im[BitmapSector][5] = 2 })
	corrupt(t, "log sequence break", func(im Image) {
		im[Base][SupLogHead] = 1
		rec := make([]uint32, SectorWords)
		rec[LogSeq] = 9 // want 1
		im[LogStart] = rec
	})
	corrupt(t, "log record length overflow", func(im Image) {
		im[Base][SupLogHead] = 1
		rec := make([]uint32, SectorWords)
		rec[LogSeq] = 1
		rec[LogLenWords] = SectorWords
		im[LogStart] = rec
	})
}

// TestFsckWarnings: crash residue (orphans, leaks) warns but passes.
func TestFsckWarnings(t *testing.T) {
	im, err := Mkfs(map[string][]byte{"keep": []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	// Leak a data sector: allocated, owned by nobody. This is the window
	// between bitmap-set and inode-write during file growth.
	im[BitmapSector][20] = 1
	// Orphan an inode: valid file, no dirent. This is the window between
	// inode-write and dirent-write during create.
	at := uint32(2) * InodeWords
	im[InodeStart][at+0] = TypeFile
	im[InodeStart][at+1] = 0
	im[InodeStart][at+2] = 1
	rep, err := Fsck(im)
	if err != nil {
		t.Fatalf("Fsck rejected legal crash residue: %v", err)
	}
	if len(rep.Warnings) != 2 {
		t.Fatalf("warnings = %v, want a leak and an orphan", rep.Warnings)
	}
	sort.Strings(rep.Warnings)
	if rep.Warnings[0] != "leaked data sector 90" || rep.Warnings[1] != "orphaned inode 2" {
		t.Fatalf("warnings = %v", rep.Warnings)
	}
}

func TestReadLog(t *testing.T) {
	im, err := Mkfs(nil)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{[]byte("first record"), bytes.Repeat([]byte{0xAB}, MaxLogBytes)}
	for i, p := range payloads {
		rec := make([]uint32, SectorWords)
		rec[LogSeq] = uint32(i) + 1
		rec[LogLenWords] = uint32((len(p) + 3) / 4)
		copy(rec[LogPayload:], bytesToWords(p))
		im[LogStart+uint32(i)] = rec
	}
	im[Base][SupLogHead] = uint32(len(payloads))
	if _, err := Fsck(im); err != nil {
		t.Fatalf("Fsck: %v", err)
	}
	got, err := ReadLog(im)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payloads) {
		t.Fatalf("ReadLog returned %d records, want %d", len(got), len(payloads))
	}
	for i, p := range payloads {
		padded := make([]byte, (len(p)+3)/4*4)
		copy(padded, p)
		if !bytes.Equal(got[i], padded) {
			t.Fatalf("record %d differs", i)
		}
	}
}

// FuzzFsckDecode: no byte pattern on disk may panic the checker — it
// must either report or reject, never crash. The fuzz input is decoded
// as a sequence of (sector, word, value) patches over a valid image,
// which steers coverage toward the interesting near-valid corruptions.
func FuzzFsckDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{byte(Base), 0, 0, 0xDE, 0xAD, 0xBE, 0xEF})
	f.Add(bytes.Repeat([]byte{0xFF}, 70))
	seed := func(sector uint32, word, value uint32) []byte {
		var b [7]byte
		binary.LittleEndian.PutUint16(b[0:], uint16(sector))
		b[2] = byte(word)
		binary.LittleEndian.PutUint32(b[3:], value)
		return b[:]
	}
	f.Add(seed(Base, SupLogHead, LogSectors))
	f.Add(seed(InodeStart, 3, DataStart+200))
	f.Add(seed(RootDirSector, 0, 5))
	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := Mkfs(map[string][]byte{"a": []byte("seed"), "b": bytes.Repeat([]byte{1}, SectorBytes+1)})
		if err != nil {
			t.Fatal(err)
		}
		for len(data) >= 7 {
			sector := uint32(binary.LittleEndian.Uint16(data)) % End
			word := uint32(data[2]) % SectorWords
			value := binary.LittleEndian.Uint32(data[3:])
			s, ok := im[sector]
			if !ok {
				s = make([]uint32, SectorWords)
				im[sector] = s
			}
			s[word] = value
			data = data[7:]
		}
		if rep, err := Fsck(im); err == nil {
			// A passing image must also read back without panicking.
			for name := range rep.Files {
				_, _ = ReadFile(im, name)
			}
			_, _ = ReadLog(im)
		}
	})
}

// TestShortSectors: nil and short sectors read as zeros everywhere.
func TestShortSectors(t *testing.T) {
	im := Image{Base: {Magic}} // short superblock: version word missing
	if _, err := Fsck(im); err == nil {
		t.Fatal("Fsck accepted a short superblock")
	}
	if _, err := ReadFile(Image{}, "x"); err == nil {
		t.Fatal("ReadFile found a file on an empty image")
	}
	if recs, err := ReadLog(Image{}); err != nil || len(recs) != 0 {
		t.Fatalf("ReadLog on empty image = %v, %v", recs, err)
	}
}
