// Package fs is toyFS: the fixed-geometry file system toyOS serves its
// open/read/write/close/unlink syscalls (and its exec loader) from. The
// Go side of the package builds boot images (Mkfs) and audits them
// (Fsck); the kernel side is generated assembly in internal/workload that
// bakes the same constants in as .equ symbols — there is exactly one
// canonical layout, so neither side carries a format-negotiation path.
//
// On-disk layout, in fullsys.Disk sectors of SectorWords 32-bit words:
//
//	sector Base          superblock (magic, geometry, log head)
//	       InodeStart    inode table, InodeSectors sectors, 16 words/inode
//	       BitmapSector  data-sector allocation bitmap, 1 word per sector
//	       DataStart     data region; its first sector is the root directory
//	       LogStart      append-only log region, LogSectors sectors
//
// Crash consistency is by write ordering, not journaling: allocation goes
// bitmap → data → inode, freeing goes dirent → inode → bitmap, and a log
// append writes the record sector before committing the head in the
// superblock. An interrupted operation can therefore leak blocks or
// orphan an inode (Fsck warnings) but never produce a reference to
// unallocated or doubly-used storage (Fsck errors) — which is what lets
// the crash-consistency test run Fsck at every quantum boundary of a
// write-heavy workload.
package fs

import (
	"fmt"
	"sort"
)

// Geometry. Everything is a compile-time constant: the superblock encodes
// the geometry for self-description and Fsck verifies it matches, but no
// reader ever trusts on-disk values for bounds.
const (
	// SectorWords is words per sector; must equal workload.SectorWords
	// (pinned by a test there — this package cannot import workload).
	SectorWords = 128
	SectorBytes = SectorWords * 4

	// Base is the first FS sector. Sectors 1..Base-1 belong to the boot
	// payload (the RLE-compressed user image); BuildBoot rejects payloads
	// that would overrun the file system.
	Base = 64

	Magic   = 0x746F7946 // "Fyot" little-endian on disk
	Version = 1

	InodeWords   = 16
	NumInodes    = 32
	InodeSectors = NumInodes * InodeWords / SectorWords // 4
	InodesPerSec = SectorWords / InodeWords             // 8

	InodeStart   = Base + 1
	BitmapSector = InodeStart + InodeSectors
	DataStart    = BitmapSector + 1
	DataSectors  = SectorWords // one bitmap word per data sector
	LogStart     = DataStart + DataSectors
	LogSectors   = 64
	End          = LogStart + LogSectors // first sector past the FS

	RootInode     = 0
	RootDirSector = DataStart // the root directory's single data block

	DirEntWords = 4
	DirEntries  = SectorWords / DirEntWords // 32
	NameLen     = 12                        // NUL-padded, so max 11 name bytes

	MaxFileBlocks = 12 // direct pointers per inode (words 3..14)
	MaxFileBytes  = MaxFileBlocks * SectorBytes

	// Inode types.
	TypeFree = 0
	TypeFile = 1
	TypeDir  = 2

	// Superblock word indices.
	SupMagic        = 0
	SupVersion      = 1
	SupInodeStart   = 2
	SupInodeSectors = 3
	SupNumInodes    = 4
	SupBitmap       = 5
	SupDataStart    = 6
	SupDataSectors  = 7
	SupLogStart     = 8
	SupLogSectors   = 9
	SupLogHead      = 10

	// Log record sector word indices (payload follows).
	LogSeq      = 0
	LogLenWords = 1
	LogPayload  = 2
	MaxLogBytes = (SectorWords - LogPayload) * 4
)

// SectorReader is the read side both fullsys.Disk and Image satisfy. A
// missing or short sector reads as zeros.
type SectorReader interface {
	Sector(sector uint32) []uint32
}

// Image is an in-memory sector map — the Mkfs output shape, preloadable
// into a fullsys.Disk sector by sector.
type Image map[uint32][]uint32

// Sector implements SectorReader.
func (im Image) Sector(sector uint32) []uint32 { return im[sector] }

// sec returns sector s zero-padded to SectorWords; never nil, never
// short. All Fsck/reader accesses go through it, so corrupt or absent
// sectors cannot cause out-of-range panics.
func sec(r SectorReader, s uint32) []uint32 {
	raw := r.Sector(s)
	if len(raw) == SectorWords {
		return raw
	}
	out := make([]uint32, SectorWords)
	copy(out, raw)
	return out
}

// packName encodes a file name into NameLen NUL-padded bytes.
func packName(name string) ([NameLen]byte, error) {
	var out [NameLen]byte
	if name == "" || len(name) >= NameLen {
		return out, fmt.Errorf("fs: name %q must be 1..%d bytes", name, NameLen-1)
	}
	for i := 0; i < len(name); i++ {
		if name[i] == 0 {
			return out, fmt.Errorf("fs: name %q contains NUL", name)
		}
	}
	copy(out[:], name)
	return out, nil
}

// bytesToWords packs b little-endian into ceil(len/4) words.
func bytesToWords(b []byte) []uint32 {
	out := make([]uint32, (len(b)+3)/4)
	for i, v := range b {
		out[i/4] |= uint32(v) << (8 * uint(i%4))
	}
	return out
}

// wordsToBytes unpacks n little-endian bytes from words.
func wordsToBytes(w []uint32, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(w[i/4] >> (8 * uint(i%4)))
	}
	return out
}

// Mkfs builds a toyFS image holding the given root-directory files. The
// result is deterministic: names are laid out in sorted order, so the
// same file map always produces the same sectors (boot images are
// content-addressed upstream).
func Mkfs(files map[string][]byte) (Image, error) {
	if len(files) > NumInodes-1 || len(files) > DirEntries {
		return nil, fmt.Errorf("fs: %d files exceed the %d-file limit", len(files), NumInodes-1)
	}
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)

	im := Image{}
	super := make([]uint32, SectorWords)
	super[SupMagic] = Magic
	super[SupVersion] = Version
	super[SupInodeStart] = InodeStart
	super[SupInodeSectors] = InodeSectors
	super[SupNumInodes] = NumInodes
	super[SupBitmap] = BitmapSector
	super[SupDataStart] = DataStart
	super[SupDataSectors] = DataSectors
	super[SupLogStart] = LogStart
	super[SupLogSectors] = LogSectors
	super[SupLogHead] = 0

	inodes := make([]uint32, InodeSectors*SectorWords)
	bitmap := make([]uint32, SectorWords)
	rootdir := make([]uint32, SectorWords)

	// Root directory: inode 0, one preallocated (never-growing) block.
	inodes[RootInode*InodeWords+0] = TypeDir
	inodes[RootInode*InodeWords+1] = SectorBytes
	inodes[RootInode*InodeWords+2] = 1
	inodes[RootInode*InodeWords+3] = RootDirSector
	bitmap[RootDirSector-DataStart] = 1

	next := uint32(DataStart + 1) // data allocation cursor
	for i, name := range names {
		content := files[name]
		if len(content) > MaxFileBytes {
			return nil, fmt.Errorf("fs: file %q is %d bytes, max %d", name, len(content), MaxFileBytes)
		}
		packed, err := packName(name)
		if err != nil {
			return nil, err
		}
		ino := uint32(i + 1)
		at := ino * InodeWords
		inodes[at+0] = TypeFile
		inodes[at+1] = uint32(len(content))
		inodes[at+2] = 1
		for blk := 0; blk*SectorBytes < len(content); blk++ {
			if next >= DataStart+DataSectors {
				return nil, fmt.Errorf("fs: out of data sectors at file %q", name)
			}
			lo := blk * SectorBytes
			hi := min(lo+SectorBytes, len(content))
			words := make([]uint32, SectorWords)
			copy(words, bytesToWords(content[lo:hi]))
			im[next] = words
			bitmap[next-DataStart] = 1
			inodes[at+3+uint32(blk)] = next
			next++
		}
		ent := rootdir[i*DirEntWords : i*DirEntWords+DirEntWords]
		ent[0] = ino + 1
		copy(ent[1:], bytesToWords(packed[:]))
	}

	im[Base] = super
	for s := 0; s < InodeSectors; s++ {
		im[uint32(InodeStart+s)] = inodes[s*SectorWords : (s+1)*SectorWords]
	}
	im[BitmapSector] = bitmap
	im[RootDirSector] = rootdir
	return im, nil
}

// Report is a successful Fsck's findings: the directory listing, the
// committed log head, and the non-fatal inconsistencies (leaked blocks,
// orphaned inodes) that legal crash windows can produce.
type Report struct {
	Files    map[string]int // name → size in bytes
	LogHead  uint32
	Warnings []string
}

// Fsck audits an image against the canonical layout. It returns an error
// for any state no crash window of a correct kernel can produce (bad
// superblock, dangling directory entries, references to unallocated or
// doubly-used blocks, malformed log records below the committed head) and
// reports recoverable leaks as warnings. It never panics, whatever the
// sectors hold — FuzzFsckDecode locks that.
func Fsck(r SectorReader) (*Report, error) {
	super := sec(r, Base)
	want := map[int]uint32{
		SupMagic: Magic, SupVersion: Version,
		SupInodeStart: InodeStart, SupInodeSectors: InodeSectors,
		SupNumInodes: NumInodes, SupBitmap: BitmapSector,
		SupDataStart: DataStart, SupDataSectors: DataSectors,
		SupLogStart: LogStart, SupLogSectors: LogSectors,
	}
	for idx, v := range want {
		if super[idx] != v {
			return nil, fmt.Errorf("fs: superblock word %d = %#x, want %#x", idx, super[idx], v)
		}
	}
	head := super[SupLogHead]
	if head > LogSectors {
		return nil, fmt.Errorf("fs: log head %d exceeds %d log sectors", head, LogSectors)
	}

	rep := &Report{Files: map[string]int{}, LogHead: head}
	bitmap := sec(r, BitmapSector)
	for i, w := range bitmap {
		if w > 1 {
			return nil, fmt.Errorf("fs: bitmap word %d = %#x, want 0 or 1", i, w)
		}
	}

	inode := func(ino uint32) []uint32 {
		s := sec(r, InodeStart+ino/InodesPerSec)
		at := (ino % InodesPerSec) * InodeWords
		return s[at : at+InodeWords]
	}

	// Pass 1: inodes. Every referenced block must be allocated and
	// referenced exactly once; pointer count must match the size.
	owner := map[uint32]uint32{} // data sector → owning inode
	for ino := uint32(0); ino < NumInodes; ino++ {
		in := inode(ino)
		typ, size := in[0], in[1]
		switch {
		case typ == TypeFree:
			continue
		case ino == RootInode && typ != TypeDir:
			return nil, fmt.Errorf("fs: root inode type %d, want directory", typ)
		case ino != RootInode && typ != TypeFile:
			return nil, fmt.Errorf("fs: inode %d has type %d", ino, typ)
		}
		if typ == TypeDir && (size != SectorBytes || in[3] != RootDirSector) {
			return nil, fmt.Errorf("fs: root directory must be one block at sector %d", RootDirSector)
		}
		if size > MaxFileBytes {
			return nil, fmt.Errorf("fs: inode %d size %d exceeds %d", ino, size, MaxFileBytes)
		}
		blocks := (size + SectorBytes - 1) / SectorBytes
		for blk := uint32(0); blk < MaxFileBlocks; blk++ {
			ptr := in[3+blk]
			if blk >= blocks {
				if ptr != 0 {
					return nil, fmt.Errorf("fs: inode %d block %d points at %d beyond size %d", ino, blk, ptr, size)
				}
				continue
			}
			if ptr < DataStart || ptr >= DataStart+DataSectors {
				return nil, fmt.Errorf("fs: inode %d block %d points outside the data region (%d)", ino, blk, ptr)
			}
			if bitmap[ptr-DataStart] == 0 {
				return nil, fmt.Errorf("fs: inode %d references unallocated sector %d", ino, ptr)
			}
			if prev, dup := owner[ptr]; dup {
				return nil, fmt.Errorf("fs: sector %d referenced by inodes %d and %d", ptr, prev, ino)
			}
			owner[ptr] = ino
		}
	}

	// Pass 2: the root directory. Entries must reference live file
	// inodes, names must be canonically NUL-padded and unique.
	rootdir := sec(r, RootDirSector)
	referenced := map[uint32]bool{}
	for e := 0; e < DirEntries; e++ {
		ent := rootdir[e*DirEntWords : e*DirEntWords+DirEntWords]
		if ent[0] == 0 {
			continue
		}
		ino := ent[0] - 1
		if ino == RootInode || ino >= NumInodes {
			return nil, fmt.Errorf("fs: directory entry %d references inode %d", e, ino)
		}
		in := inode(ino)
		if in[0] != TypeFile {
			return nil, fmt.Errorf("fs: directory entry %d references inode %d of type %d", e, ino, in[0])
		}
		if in[2] != 1 {
			return nil, fmt.Errorf("fs: referenced inode %d has link count %d, want 1", ino, in[2])
		}
		if referenced[ino] {
			return nil, fmt.Errorf("fs: inode %d referenced by two directory entries", ino)
		}
		referenced[ino] = true
		raw := wordsToBytes(ent[1:], NameLen)
		name, pad := "", false
		for _, c := range raw {
			if c == 0 {
				pad = true
				continue
			}
			if pad {
				return nil, fmt.Errorf("fs: directory entry %d name %q not NUL-padded", e, raw)
			}
			name += string(c)
		}
		if name == "" {
			return nil, fmt.Errorf("fs: directory entry %d has an empty name", e)
		}
		if _, dup := rep.Files[name]; dup {
			return nil, fmt.Errorf("fs: duplicate directory entry %q", name)
		}
		rep.Files[name] = int(inode(ino)[1])
	}

	// Orphans and leaks: legal crash residue, reported not rejected.
	for ino := uint32(1); ino < NumInodes; ino++ {
		if inode(ino)[0] == TypeFile && !referenced[ino] {
			rep.Warnings = append(rep.Warnings, fmt.Sprintf("orphaned inode %d", ino))
		}
	}
	for i, w := range bitmap {
		s := uint32(i) + DataStart
		if w == 1 && owner[s] == 0 && s != RootDirSector {
			rep.Warnings = append(rep.Warnings, fmt.Sprintf("leaked data sector %d", s))
		}
	}

	// Pass 3: the committed log. Record i must carry sequence i+1 and a
	// bounded payload; sectors at or past the head are uncommitted and
	// unchecked (a torn append lives there until the head commits).
	for i := uint32(0); i < head; i++ {
		rec := sec(r, LogStart+i)
		if rec[LogSeq] != i+1 {
			return nil, fmt.Errorf("fs: log record %d has sequence %d, want %d", i, rec[LogSeq], i+1)
		}
		if rec[LogLenWords] > SectorWords-LogPayload {
			return nil, fmt.Errorf("fs: log record %d length %d words exceeds %d", i, rec[LogLenWords], SectorWords-LogPayload)
		}
	}
	return rep, nil
}

// ReadFile extracts a file's content from an image (or a live disk).
func ReadFile(r SectorReader, name string) ([]byte, error) {
	rootdir := sec(r, RootDirSector)
	packed, err := packName(name)
	if err != nil {
		return nil, err
	}
	for e := 0; e < DirEntries; e++ {
		ent := rootdir[e*DirEntWords : e*DirEntWords+DirEntWords]
		if ent[0] == 0 {
			continue
		}
		raw := wordsToBytes(ent[1:], NameLen)
		if string(raw) != string(packed[:]) {
			continue
		}
		ino := ent[0] - 1
		if ino >= NumInodes {
			return nil, fmt.Errorf("fs: entry %q references inode %d", name, ino)
		}
		s := sec(r, InodeStart+ino/InodesPerSec)
		in := s[(ino%InodesPerSec)*InodeWords : (ino%InodesPerSec)*InodeWords+InodeWords]
		size := in[1]
		if size > MaxFileBytes {
			return nil, fmt.Errorf("fs: file %q size %d exceeds %d", name, size, MaxFileBytes)
		}
		out := make([]byte, 0, size)
		for blk := uint32(0); blk*SectorBytes < size; blk++ {
			n := min(int(size)-int(blk)*SectorBytes, SectorBytes)
			out = append(out, wordsToBytes(sec(r, in[3+blk]), n)...)
		}
		return out, nil
	}
	return nil, fmt.Errorf("fs: file %q not found", name)
}

// ReadLog returns the committed log records' payloads in append order.
func ReadLog(r SectorReader) ([][]byte, error) {
	head := sec(r, Base)[SupLogHead]
	if head > LogSectors {
		return nil, fmt.Errorf("fs: log head %d exceeds %d log sectors", head, LogSectors)
	}
	out := make([][]byte, 0, head)
	for i := uint32(0); i < head; i++ {
		rec := sec(r, LogStart+i)
		n := rec[LogLenWords]
		if n > SectorWords-LogPayload {
			return nil, fmt.Errorf("fs: log record %d length %d words", i, n)
		}
		out = append(out, wordsToBytes(rec[LogPayload:], int(n)*4))
	}
	return out, nil
}
