package workload

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/fm"
	"repro/internal/isa"
	"repro/internal/workload/fs"
)

func TestRegistryListsEverything(t *testing.T) {
	entries := Registry()
	want := len(All()) + 1 /* WindowsXP */ + 2 /* smp */ + 3 /* servers */
	if len(entries) != want {
		t.Fatalf("registry has %d entries, want %d", len(entries), want)
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if e.Name == "" || e.Description == "" {
			t.Errorf("entry %+v missing name or description", e)
		}
		if seen[e.Name] {
			t.Errorf("duplicate registry entry %s", e.Name)
		}
		seen[e.Name] = true
		if s := e.Build(1); s.Name != e.Name {
			t.Errorf("entry %s builds spec named %s", e.Name, s.Name)
		}
	}
	for _, name := range []string{ShellForkName, LogWriteName, NICServName, SMPName, "Linux-2.4", "WindowsXP"} {
		if !seen[name] {
			t.Errorf("registry missing %s", name)
		}
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%s) failed", name)
		}
	}
}

func TestServerSpecsBuild(t *testing.T) {
	for _, s := range Servers() {
		if _, err := s.Build(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	// FS kernels are uniprocessor-only: building one at Cores > 1 must be
	// an explicit error, not silent nonsense.
	s := ShellFork()
	s.Kernel.Cores = 2
	if _, err := s.Build(); err == nil {
		t.Error("FS kernel at 2 cores built without error")
	}
}

// TestShellFork is the acceptance check for the process subsystem: the
// parent forks ShellForkChildren children, each exec'd from the toyFS file
// "child"; every child prints 'c', every reap prints 'r', and the parent
// prints 'K' only if the summed exit statuses match the Go reference.
func TestShellFork(t *testing.T) {
	_, boot := bootAndRun(t, ShellFork(), 30_000_000)
	out := string(boot.Console.Output())
	if got := strings.Count(out, "c"); got != ShellForkChildren {
		t.Errorf("%d children ran, want %d (console %q)", got, ShellForkChildren, out)
	}
	if got := strings.Count(out, "r"); got != ShellForkChildren {
		t.Errorf("%d children reaped, want %d (console %q)", got, ShellForkChildren, out)
	}
	if !strings.Contains(out, "K") || strings.Contains(out, "X") {
		t.Errorf("exit-status sum mismatch (console %q)", out)
	}
}

// forkStatusProgram forks one child that computes the ChildExitStatus LCG
// inline (no exec) and exits with it; the parent waits and prints the
// reaped status as two hex digits.
func forkStatusProgram(seed uint32, iters int) string {
	e := &emitter{}
	e.p("start:")
	e.p("	movi r0, 11")
	e.p("	syscall           ; fork")
	e.p("	cmpi r0, 0")
	e.p("	jz   child")
	e.p("wloop:")
	e.p("	movi r0, 13")
	e.p("	syscall           ; wait")
	e.p("	cmpi r0, 0")
	e.p("	jl   wloop")
	e.p("	mov  r8, r1       ; reaped status")
	e.p("	mov  r6, r8")
	e.p("	shri r6, 4")
	e.p("	call hexdig")
	e.p("	mov  r6, r8")
	e.p("	andi r6, 0xF")
	e.p("	call hexdig")
	e.exit()
	e.p("hexdig:")
	e.p("	cmpi r6, 10")
	e.p("	jl   hx_num")
	e.p("	addi r6, %d", 'a'-10)
	e.p("	jmp  hx_out")
	e.p("hx_num:")
	e.p("	addi r6, '0'")
	e.p("hx_out:")
	e.p("	mov  r1, r6")
	e.p("	movi r0, 1")
	e.p("	syscall")
	e.p("	ret")
	e.p("child:")
	e.p("	movi r5, %d", int32(seed))
	e.p("	movi r3, %d", iters)
	e.p("	movi r6, 0")
	e.p("floop:")
	e.lcg("r5")
	e.p("	mov  r4, r5")
	e.p("	shri r4, 16")
	e.p("	andi r4, 0xFF")
	e.p("	add  r6, r4")
	e.p("	dec  r3")
	e.p("	jnz  floop")
	e.p("	andi r6, 0x7F")
	e.p("	mov  r1, r6")
	e.p("	movi r0, 0")
	e.p("	syscall           ; exit(status)")
	e.p("	jmp  .")
	return e.b.String()
}

// TestForkWaitConformance checks the fork/wait exit-status plumbing against
// the straight-line Go reference for several seeds.
func TestForkWaitConformance(t *testing.T) {
	for _, seed := range []uint32{1, 42, 0x1234} {
		spec := Spec{
			Name:    "fork-status",
			Kernel:  fsBoot(),
			UserAsm: func() string { return forkStatusProgram(seed, 100) },
			Files:   func() map[string][]byte { return nil },
		}
		_, boot := bootAndRun(t, spec, 10_000_000)
		out := string(boot.Console.Output())
		want := fmt.Sprintf("%02x", ChildExitStatus(seed, 100))
		if !strings.HasSuffix(strings.TrimSpace(out), want) {
			t.Errorf("seed %d: console %q, want status suffix %q", seed, out, want)
		}
	}
}

// TestLogWriteCrashConsistency boots logwrite, fsck'ing the disk image at
// every quantum boundary: the kernel's write ordering must keep the
// on-disk state fsck-clean (warnings allowed — orphans and leaks are
// exactly the states crash windows produce — errors not) at any point.
func TestLogWriteCrashConsistency(t *testing.T) {
	spec := LogWrite()
	boot, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := fm.New(fm.Config{Devices: boot.Devices()})
	m.LoadProgram(boot.Kernel)
	const quantum = 5000
	checks := 0
	idle := 0
	for steps := 0; ; steps++ {
		if steps%quantum == 0 {
			if _, err := fs.Fsck(boot.Disk); err != nil {
				t.Fatalf("fsck failed mid-run at step %d: %v", steps, err)
			}
			checks++
		}
		if _, ok := m.Step(); ok {
			idle = 0
			continue
		}
		if m.Fatal() != nil {
			t.Fatalf("fatal at step %d: %v (console %q)", steps, m.Fatal(), boot.Console.Output())
		}
		if m.Halted() && m.Flags&isa.FlagI == 0 {
			break
		}
		m.AdvanceIdle(100)
		if idle++; idle > 1_000_000 {
			t.Fatal("hung in HALT")
		}
		if steps > 30_000_000 {
			t.Fatalf("did not shut down (console %q)", boot.Console.Output())
		}
	}
	if checks < 10 {
		t.Errorf("only %d fsck checks ran", checks)
	}
	out := string(boot.Console.Output())
	if !strings.Contains(out, "K") || strings.Contains(out, "X") {
		t.Fatalf("logwrite failed (console %q)", out)
	}
	rep, err := fs.Fsck(boot.Disk)
	if err != nil {
		t.Fatalf("final fsck: %v", err)
	}
	if len(rep.Warnings) != 0 {
		t.Errorf("final image not clean: %v", rep.Warnings)
	}
	if size := rep.Files["out"]; size != 3*256+100 {
		t.Errorf("out is %d bytes, want %d", size, 3*256+100)
	}
	if _, ok := rep.Files["seed"]; ok {
		t.Error("seed survived its unlink")
	}
	if rep.LogHead != 32 {
		t.Errorf("log head %d, want 32", rep.LogHead)
	}
	recs, err := fs.ReadLog(boot.Disk)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 32 {
		t.Fatalf("%d log records, want 32", len(recs))
	}
	for i, r := range recs {
		if len(r) != 128 {
			t.Errorf("record %d is %d bytes, want 128", i, len(r))
		}
	}
	// The file contents must match the user program's LCG buffer.
	data, err := fs.ReadFile(boot.Disk, "out")
	if err != nil {
		t.Fatal(err)
	}
	x := uint32(0xBEEF)
	buf := make([]byte, 256)
	for i := 0; i < 64; i++ {
		x = x*1103515245 + 12345
		buf[4*i], buf[4*i+1], buf[4*i+2], buf[4*i+3] = byte(x), byte(x>>8), byte(x>>16), byte(x>>24)
	}
	want := append(append(append(append([]byte{}, buf...), buf...), buf...), buf[:100]...)
	if string(data) != string(want) {
		t.Error("out contents diverge from the reference LCG fill")
	}
}

// dumpDisk copies every toyFS sector of a boot disk.
func dumpDisk(boot *Boot) map[uint32][]uint32 {
	out := make(map[uint32][]uint32)
	for s := uint32(fs.Base); s < fs.End; s++ {
		out[s] = boot.Disk.Sector(s)
	}
	return out
}

func disksEqual(a, b map[uint32][]uint32) bool {
	for s, av := range a {
		bv := b[s]
		if len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}

// TestFSWriteJournalRollback proves the FM's journaled rollback covers
// toyFS disk writes: rolling the model back across a stretch of logwrite's
// FS activity must restore the sector map to exactly the reference state
// at the rollback target — a speculated-then-rolled-back write never
// reaches the medium — and replay must converge to the reference finish.
func TestFSWriteJournalRollback(t *testing.T) {
	spec := LogWrite()
	run := func() (*fm.Model, *Boot, []isa.Word) {
		boot, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		m := fm.New(fm.Config{Devices: boot.Devices()})
		m.LoadProgram(boot.Kernel)
		return m, boot, nil
	}

	// Reference run to completion, recording the PC of every committed
	// instruction.
	ref, refBoot, _ := run()
	var pcs []isa.Word
	idle := 0
	for {
		if e, ok := ref.Step(); ok {
			pcs = append(pcs, e.PC)
			idle = 0
			continue
		}
		if ref.Fatal() != nil {
			t.Fatalf("reference fatal: %v", ref.Fatal())
		}
		if ref.Halted() && ref.Flags&isa.FlagI == 0 {
			break
		}
		ref.AdvanceIdle(100)
		if idle++; idle > 1_000_000 {
			t.Fatal("reference hung")
		}
		if len(pcs) > 30_000_000 {
			t.Fatal("reference did not shut down")
		}
	}
	refFinal := dumpDisk(refBoot)

	// Reference disk state at the rollback target (mid FS activity).
	target := uint64(len(pcs) / 2)
	mid, midBoot, _ := run()
	for mid.IN() < target {
		if _, ok := mid.Step(); !ok {
			mid.AdvanceIdle(100)
		}
	}
	refAtTarget := dumpDisk(midBoot)

	// Test run: go well past the target (through more syscalls and disk
	// writes), roll back, and check the sector map snapped back.
	m, boot, _ := run()
	past := target + uint64(len(pcs))/4
	for m.IN() < past {
		if _, ok := m.Step(); !ok {
			m.AdvanceIdle(100)
		}
	}
	if disksEqual(dumpDisk(boot), refAtTarget) {
		t.Fatal("no disk writes happened between target and rollback point; pick better points")
	}
	if err := m.SetPC(target, pcs[target]); err != nil {
		t.Fatalf("SetPC(%d): %v", target, err)
	}
	if !disksEqual(dumpDisk(boot), refAtTarget) {
		t.Fatal("rolled-back toyFS writes persist in the sector map")
	}

	// Replay to completion: bit-identical finish.
	idle = 0
	for steps := 0; ; steps++ {
		if _, ok := m.Step(); ok {
			idle = 0
			continue
		}
		if m.Fatal() != nil {
			t.Fatalf("replay fatal: %v", m.Fatal())
		}
		if m.Halted() && m.Flags&isa.FlagI == 0 {
			break
		}
		m.AdvanceIdle(100)
		if idle++; idle > 1_000_000 {
			t.Fatal("replay hung")
		}
		if steps > 30_000_000 {
			t.Fatal("replay did not shut down")
		}
	}
	if !disksEqual(dumpDisk(boot), refFinal) {
		t.Error("replayed run's disk diverges from the reference")
	}
	if got, want := string(boot.Console.Output()), string(refBoot.Console.Output()); got != want {
		t.Errorf("replayed console %q, reference %q", got, want)
	}
}

// TestNICServ runs the request/response server end to end and checks every
// reply word on the NIC tx FIFO against the Go reference.
func TestNICServ(t *testing.T) {
	spec := NICServ()
	_, boot := bootAndRun(t, spec, 30_000_000)
	out := string(boot.Console.Output())
	if !strings.Contains(out, "K") || strings.Contains(out, "X") {
		t.Fatalf("nicserv failed (console %q)", out)
	}
	keys := NICServKeys()
	sent := boot.NIC.Sent()
	if len(sent) != 2*len(keys) {
		t.Fatalf("%d tx words, want %d", len(sent), 2*len(keys))
	}
	for i, k := range keys {
		bucket := (k * 0x9E3779B1) >> 20 & 0xFF
		if sent[2*i] != k^0x5A5A5A5A {
			t.Errorf("reply %d: key word %#x, want %#x", i, sent[2*i], k^0x5A5A5A5A)
		}
		if sent[2*i+1] != bucket {
			t.Errorf("reply %d: bucket %#x, want %#x", i, sent[2*i+1], bucket)
		}
	}
	// The audit log got one record per 8 requests.
	rep, err := fs.Fsck(boot.Disk)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint32(len(keys) / 8); rep.LogHead != want {
		t.Errorf("audit log head %d, want %d", rep.LogHead, want)
	}
}
