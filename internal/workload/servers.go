package workload

import (
	"repro/internal/fullsys"
	"repro/internal/isa"
)

// Server-class workloads: FS-kernel boots exercising fork/exec/wait, the
// toyFS file syscalls, the append-only log, and the NIC. They are not part
// of All() — Table 1 and the single-core figures predate them — but they
// are in Registry() and runnable through every front end.

// ShellForkName is the fork-heavy shell workload: a parent forks
// ShellForkChildren children, each exec'ing a program stored as the toyFS
// file "child", and reaps their exit statuses.
const ShellForkName = "shell-fork"

// LogWriteName is the log-structured write-stress workload: unlink, file
// creation, append-only writes crossing block boundaries, and a burst of
// commit-log appends.
const LogWriteName = "logwrite"

// NICServName is the NIC request/response server: scripted packet
// arrivals, a polled receive loop, per-request hashing into a bucket
// table, two reply words per request, and periodic log appends.
const NICServName = "nicserv"

// ShellForkChildren is how many children shell-fork spawns and reaps.
const ShellForkChildren = 8

// Child program tuning: small enough that 8 children plus the parent stay
// well inside the bench instruction caps, big enough that the children
// dominate the parent's bookkeeping.
const childIters = 300
const childSeed = 7

// nicServRequests is how many scripted requests nicserv serves; it must
// match the arrival script built by NICServ.
const nicServRequests = 24

// ChildExitStatus is the Go reference for the child program's exit status:
// iters rounds of the toyOS LCG starting from seed, accumulating the high
// byte, masked to the 7-bit exit-status range. The fork/wait conformance
// test checks the simulated children against this.
func ChildExitStatus(seed uint32, iters int) uint32 {
	x := seed
	var acc uint32
	for i := 0; i < iters; i++ {
		x = x*1103515245 + 12345
		acc += (x >> 16) & 0xFF
	}
	return acc & 0x7F
}

// childProgram is the program stored as the toyFS file "child": the LCG
// accumulation of ChildExitStatus, a 'c' on the console to mark the child
// ran, then exit with the computed status.
func childProgram(seed uint32, iters int) string {
	e := &emitter{}
	e.p("start:")
	e.p("	movi r5, %d", int32(seed))
	e.p("	movi r6, 0        ; acc")
	e.p("	movi r3, %d", iters)
	e.p("chloop:")
	e.lcg("r5")
	e.p("	mov  r4, r5")
	e.p("	shri r4, 16")
	e.p("	andi r4, 0xFF")
	e.p("	add  r6, r4")
	e.p("	dec  r3")
	e.p("	jnz  chloop")
	e.p("	andi r6, 0x7F")
	e.p("	movi r1, 'c'")
	e.p("	movi r0, 1")
	e.p("	syscall")
	e.p("	mov  r1, r6")
	e.p("	movi r0, 0")
	e.p("	syscall           ; exit(status)")
	e.p("	jmp  .")
	return e.b.String()
}

// ChildProgramBytes assembles the child program as stored in the toyFS
// image: raw code bytes linked at UserVA, exactly what sysexec copies into
// the child's slot.
func ChildProgramBytes() []byte {
	prog := isa.MustAssemble(childProgram(childSeed, childIters), UserVA)
	return prog.Code
}

// shellForkProgram is the init process of the shell-fork workload. It
// forks ShellForkChildren children (each immediately exec's "child"),
// then reaps them all: an 'r' per reaped child, and 'K' if the summed
// exit statuses match the Go reference ('X' otherwise).
func shellForkProgram() string {
	expected := int32(uint32(ShellForkChildren) * ChildExitStatus(childSeed, childIters))
	e := &emitter{}
	e.p("start:")
	e.p("	movi r7, 0")
	e.p("forkloop:")
	e.p("	movi r0, 11")
	e.p("	syscall           ; fork")
	e.p("	cmpi r0, 0")
	e.p("	jz   child")
	e.p("	inc  r7")
	e.p("	cmpi r7, %d", ShellForkChildren)
	e.p("	jl   forkloop")
	e.p("	movi r7, 0        ; reaped")
	e.p("	movi r8, 0        ; status sum")
	e.p("waitloop:")
	e.p("	movi r0, 13")
	e.p("	syscall           ; wait")
	e.p("	cmpi r0, 0")
	e.p("	jl   waitneg")
	e.p("	add  r8, r1")
	e.p("	movi r1, 'r'")
	e.p("	movi r0, 1")
	e.p("	syscall")
	e.p("	inc  r7")
	e.p("	cmpi r7, %d", ShellForkChildren)
	e.p("	jl   waitloop")
	e.p("	jmp  check")
	e.p("waitneg:")
	e.p("	cmpi r0, -2")
	e.p("	jz   check        ; no children left (early; sum check will flag)")
	e.p("	jmp  waitloop     ; -1: children still running, retry")
	e.p("check:")
	e.p("	cmpi r8, %d", expected)
	e.p("	jnz  bad")
	e.p("	movi r1, 'K'")
	e.p("	jmp  report")
	e.p("bad:")
	e.p("	movi r1, 'X'")
	e.p("report:")
	e.p("	movi r0, 1")
	e.p("	syscall")
	e.p("	movi r1, 10")
	e.p("	movi r0, 1")
	e.p("	syscall")
	e.exit()
	e.p("child:")
	e.p("	movi r1, path")
	e.p("	movi r0, 12")
	e.p("	syscall           ; exec(\"child\") — does not return")
	e.p("	jmp  .")
	e.p("path:")
	e.p("	.asciz \"child\"")
	return e.b.String()
}

// logWriteProgram is the log-structured write stress: unlink the seeded
// "seed" file, create "out" and append three full 256-byte buffers plus an
// unaligned 100-byte tail (crossing block boundaries), close it, then
// append 32 mutated 128-byte records to the commit log.
func logWriteProgram() string {
	e := &emitter{}
	e.p("start:")
	e.p("	movi r1, pseed")
	e.p("	movi r0, 10")
	e.p("	syscall           ; unlink(\"seed\")")
	e.p("	movi r1, pout")
	e.p("	movi r2, 1")
	e.p("	movi r0, 6")
	e.p("	syscall           ; open(\"out\", create)")
	e.p("	mov  r9, r0")
	e.p("	cmpi r9, 0")
	e.p("	jl   bad")
	e.p("	movi r5, %d", 0xBEEF)
	e.p("	movi r6, %#x", dataVA)
	e.p("	movi r3, 64")
	e.p("fill:")
	e.lcg("r5")
	e.p("	stw  r5, [r6]")
	e.p("	addi r6, 4")
	e.p("	dec  r3")
	e.p("	jnz  fill")
	e.p("	movi r7, 3")
	e.p("wrloop:")
	e.p("	mov  r1, r9")
	e.p("	movi r2, %#x", dataVA)
	e.p("	movi r3, 256")
	e.p("	movi r0, 8")
	e.p("	syscall           ; write 256")
	e.p("	cmpi r0, 256")
	e.p("	jnz  bad")
	e.p("	dec  r7")
	e.p("	jnz  wrloop")
	e.p("	mov  r1, r9")
	e.p("	movi r2, %#x", dataVA)
	e.p("	movi r3, 100")
	e.p("	movi r0, 8")
	e.p("	syscall           ; unaligned 100-byte tail")
	e.p("	cmpi r0, 100")
	e.p("	jnz  bad")
	e.p("	mov  r1, r9")
	e.p("	movi r0, 9")
	e.p("	syscall           ; close")
	e.p("	movi r7, 0")
	e.p("logloop:")
	e.p("	movi r6, %#x", dataVA)
	e.p("	ldw  r5, [r6]")
	e.p("	inc  r5")
	e.p("	stw  r5, [r6]     ; mutate so every record differs")
	e.p("	movi r1, %#x", dataVA)
	e.p("	movi r2, 128")
	e.p("	movi r0, 14")
	e.p("	syscall           ; logappend")
	e.p("	cmpi r0, 0")
	e.p("	jl   bad")
	e.p("	inc  r7")
	e.p("	cmpi r7, 32")
	e.p("	jl   logloop")
	e.p("	movi r1, 'K'")
	e.p("	jmp  report")
	e.p("bad:")
	e.p("	movi r1, 'X'")
	e.p("report:")
	e.p("	movi r0, 1")
	e.p("	syscall")
	e.p("	movi r1, 10")
	e.p("	movi r0, 1")
	e.p("	syscall")
	e.exit()
	e.p("pseed:")
	e.p("	.asciz \"seed\"")
	e.p("pout:")
	e.p("	.asciz \"out\"")
	return e.b.String()
}

// nicServProgram is the request/response server: read a 64-byte config
// from toyFS, then serve nreq scripted requests — poll the NIC (sleeping a
// tick when idle), hash each key into a 256-bucket table, reply with the
// obfuscated key and its bucket, and append a log record every 8th
// request.
func nicServProgram(nreq int) string {
	e := &emitter{}
	e.p("start:")
	e.p("	movi r1, pconf")
	e.p("	movi r2, 0")
	e.p("	movi r0, 6")
	e.p("	syscall           ; open(\"conf\", read)")
	e.p("	mov  r9, r0")
	e.p("	cmpi r9, 0")
	e.p("	jl   bad")
	e.p("	mov  r1, r9")
	e.p("	movi r2, %#x", dataVA)
	e.p("	movi r3, 64")
	e.p("	movi r0, 7")
	e.p("	syscall           ; read config")
	e.p("	cmpi r0, 64")
	e.p("	jnz  bad")
	e.p("	mov  r1, r9")
	e.p("	movi r0, 9")
	e.p("	syscall           ; close")
	e.p("	movi r7, 0        ; served")
	e.p("reqloop:")
	e.p("poll:")
	e.p("	movi r0, 15")
	e.p("	syscall           ; nicpoll")
	e.p("	andi r0, 1")
	e.p("	jnz  have")
	e.p("	movi r1, 1")
	e.p("	movi r0, 4")
	e.p("	syscall           ; sleep a tick, then re-poll")
	e.p("	jmp  poll")
	e.p("have:")
	e.p("	movi r0, 16")
	e.p("	syscall           ; nicrecv")
	e.p("	mov  r6, r0       ; key")
	e.p("	movi r10, %#x", uint64(0x9E3779B1))
	e.p("	mov  r4, r6")
	e.p("	mul  r4, r10")
	e.p("	shri r4, 20")
	e.p("	andi r4, 0xFF     ; bucket")
	e.p("	mov  r5, r4")
	e.p("	shli r5, 2")
	e.p("	addi r5, %#x", dataVA2)
	e.p("	ldw  r3, [r5]")
	e.p("	inc  r3")
	e.p("	stw  r3, [r5]")
	e.p("	mov  r1, r6")
	e.p("	movi r10, %#x", uint64(0x5A5A5A5A))
	e.p("	xor  r1, r10")
	e.p("	movi r0, 17")
	e.p("	syscall           ; reply: obfuscated key")
	e.p("	mov  r1, r4")
	e.p("	movi r0, 17")
	e.p("	syscall           ; reply: bucket")
	e.p("	mov  r4, r7")
	e.p("	andi r4, 7")
	e.p("	cmpi r4, 7")
	e.p("	jnz  nolog")
	e.p("	movi r5, %#x", dataVA)
	e.p("	ldw  r3, [r5]")
	e.p("	add  r3, r6")
	e.p("	stw  r3, [r5]")
	e.p("	movi r1, %#x", dataVA)
	e.p("	movi r2, 16")
	e.p("	movi r0, 14")
	e.p("	syscall           ; audit-log every 8th request")
	e.p("nolog:")
	e.p("	inc  r7")
	e.p("	cmpi r7, %d", nreq)
	e.p("	jl   reqloop")
	e.p("	movi r1, 'K'")
	e.p("	jmp  report")
	e.p("bad:")
	e.p("	movi r1, 'X'")
	e.p("report:")
	e.p("	movi r0, 1")
	e.p("	syscall")
	e.p("	movi r1, 10")
	e.p("	movi r0, 1")
	e.p("	syscall")
	e.exit()
	e.p("pconf:")
	e.p("	.asciz \"conf\"")
	return e.b.String()
}

// fsBoot is the kernel configuration shared by the server workloads: a
// fast boot with the FS kernel enabled.
func fsBoot() KernelConfig {
	k := FastBoot()
	k.FS = true
	return k
}

// ShellFork builds the fork-heavy shell workload.
func ShellFork() Spec {
	return Spec{
		Name:    ShellForkName,
		Kernel:  fsBoot(),
		UserAsm: shellForkProgram,
		Files: func() map[string][]byte {
			return map[string][]byte{"child": ChildProgramBytes()}
		},
	}
}

// LogWrite builds the log-structured write-stress workload. The seeded
// "seed" file exists only to be unlinked, exercising the free path.
func LogWrite() Spec {
	return Spec{
		Name:    LogWriteName,
		Kernel:  fsBoot(),
		UserAsm: logWriteProgram,
		Files: func() map[string][]byte {
			seed := make([]byte, 600)
			for i := range seed {
				seed[i] = byte(i * 7)
			}
			return map[string][]byte{"seed": seed}
		},
	}
}

// NICServKeys returns the scripted request keys in arrival order: the
// deterministic ground truth the nicserv end-to-end test replays.
func NICServKeys() []uint32 {
	keys := make([]uint32, nicServRequests)
	x := uint32(0xC0FFEE)
	for i := range keys {
		x = x*1103515245 + 12345
		keys[i] = x
	}
	return keys
}

// NICServ builds the NIC request/response server workload: requests
// arrive every 2000 instructions starting after boot settles.
func NICServ() Spec {
	keys := NICServKeys()
	arrivals := make([]fullsys.ScriptedInput, len(keys))
	for i, k := range keys {
		arrivals[i] = fullsys.ScriptedInput{
			At:   20000 + uint64(i)*2000,
			Data: []byte{byte(k), byte(k >> 8), byte(k >> 16), byte(k >> 24)},
		}
	}
	conf := make([]byte, 64)
	for i := range conf {
		conf[i] = byte(0x40 + i)
	}
	return Spec{
		Name:    NICServName,
		Kernel:  fsBoot(),
		UserAsm: func() string { return nicServProgram(nicServRequests) },
		Files: func() map[string][]byte {
			return map[string][]byte{"conf": conf}
		},
		Arrivals: arrivals,
	}
}

// Servers returns the three server-class workloads.
func Servers() []Spec {
	return []Spec{ShellFork(), LogWrite(), NICServ()}
}
