package workload

// toyFS + process support: the kernel-side half of internal/workload/fs.
// KernelConfig.FS grows toyOS from a boot-and-run monitor into a small
// uniprocessor OS: a write-through sector cache over the disk ports,
// open/read/write/close/unlink and an append-only log over the toyFS
// layout, and fork/exec/exit/wait with one physical memory slot and one
// linear page mapping per process. Everything here is generated assembly
// appended to KernelSource when k.FS is set; at FS=false the kernel
// source is byte-identical to the pre-FS kernel.
//
// Kernel ABI (FS mode). Syscall number in r0, args r1-r3, result in r0;
// unlike the base kernel, the FS syscall path spills and restores the
// whole register file through the process table, so user registers other
// than r0 always survive a syscall:
//
//	0  exit(status)     zombie + reschedule (pid 0: power off)
//	1  putc(ch)         4  sleep(ticks)      5  gettime
//	2  getc
//	6  open(path, mode) mode 0 = read, 1 = create/append; returns fd
//	7  read(fd, buf, n) sequential, returns bytes read
//	8  write(fd, buf, n) append-only, returns bytes written
//	9  close(fd)
//	10 unlink(path)
//	11 fork()           parent: child pid; child: 0
//	12 exec(path)       replace user image with a toyFS file
//	13 wait()           r0 = pid, r1 = status; -1 = retry, -2 = no children
//	14 logappend(buf,n) append one record to the toyFS log
//	15 nicpoll          16 nicrecv          17 nicsend(word)
//
// Scheduling is cooperative: only exit and a blocking wait switch
// processes, so there is no preemption to reason about inside the kernel
// (interrupts stay disabled on the kernel stack except inside sleep).
// Crash consistency is by write ordering — see package fs's doc comment;
// the syscall implementations below commit sectors in exactly the order
// fsck's warning model assumes (bitmap→data→inode on growth, dirent→
// inode→bitmap on unlink, record→head on log append).

import (
	"repro/internal/fullsys"
	"repro/internal/workload/fs"
)

// FS-mode physical memory map (above the kernel image, below the boot
// sector-staging buffer at kSecBuf).
const (
	kProcBase = 0x38000 // process table: MaxProcs × 128-byte entries
	kFDBase   = 0x38800 // fd table: 8 × 16-byte entries (ino+1, offset, mode)
	kSCTag    = 0x38900 // sector-cache tags: 8 words, tag = sector+1
	kPathBuf  = 0x38980 // dirlookup's NUL-padded 12-byte name scratch
	kPtrSav   = 0x389C0 // unlink: the dead inode's 12 block pointers
	kSCData   = 0x39000 // sector-cache data: 8 × 512-byte lines
	kKStack   = 0x3B800 // kernel stack top (the SMP PCPU area; FS is UP-only)

	// UserSlot is the per-process physical memory stride: each pid's user
	// pages live at UserPA + pid*UserSlot, exactly covering the virtual
	// range [UserVA, UserVAEnd). MaxProcs slots end at 0x740000, inside
	// the default 16 MiB memory.
	UserSlot = UserVAEnd - UserVA
	MaxProcs = 16
)

// Process-table entry layout (offsets into a 128-byte entry):
//
//	+0 state (0 free, 1 runnable, 3 zombie)   +4 parent pid   +8 exit status
//	+12 EPC   +16 EFLAGS   +20+4i saved r_i (r11/r12 slots unused: kernel
//	scratch by ABI)   → sp at +72, lr at +76, r15 at +80.
const (
	pState  = 0
	pParent = 4
	pStatus = 8
	pEPC    = 12
	pEFlags = 16
	pRegs   = 20
)

type emitfn func(string, ...any)

// fsEquates emits the FS-mode symbol block.
func fsEquates(p emitfn) {
	p(".equ vCURPID, %#x", kVarBase+0x20)
	p(".equ vLOGHEAD, %#x", kVarBase+0x24)
	p(".equ PROCB, %#x", kProcBase)
	p(".equ FDB, %#x", kFDBase)
	p(".equ SCTAG, %#x", kSCTag)
	p(".equ PATHBUF, %#x", kPathBuf)
	p(".equ PTRSAV, %#x", kPtrSav)
	p(".equ SCDATA, %#x", kSCData)
	p(".equ KSTK, %#x", kKStack)
}

// fsInit emits the boot-time FS initialisation: read the committed log
// head from the superblock, mark pid 0 runnable, and mask the NIC's PIC
// line — the NIC has no rx acknowledge, so its level-triggered interrupt
// would livelock a handler; FS workloads poll it through syscalls.
func fsInit(p emitfn) {
	p("	movi sp, KSTK     ; kernel stack for the FS helpers")
	p("	movi r1, %d", fs.Base)
	p("	call diskrd")
	p("	ldw  r0, [r2+%d]", fs.SupLogHead*4)
	p("	movi r1, vLOGHEAD")
	p("	stw  r0, [r1]")
	p("	movi r0, 1")
	p("	movi r1, PROCB")
	p("	stw  r0, [r1]     ; pid 0 runnable")
	p("	movi r0, 0x7")
	p("	out  r0, 0x01     ; PIC mask: timer|disk|console; NIC is polled")
}

// fsTLBMiss emits the per-process miss handler: the linear map is offset
// by the current pid's slot, PFN = VPN - (UserVA>>12) + (UserPA>>12) +
// pid*(UserSlot>>12). Only r11/r12 are free, so the VPN spills to vSAVE1
// while pid*0x70 is built as (pid*8-pid)<<4.
func fsTLBMiss(p emitfn) {
	p("tlbmiss:")
	p("	movrc r11, cr2")
	p("	shri r11, %d", fullsys.PageShift)
	p("	cmpi r11, %#x", UserVA>>fullsys.PageShift)
	p("	jl   kill")
	p("	cmpi r11, %#x", UserVAEnd>>fullsys.PageShift)
	p("	jge  kill")
	p("	movi r12, vSAVE1")
	p("	stw  r11, [r12]")
	p("	movi r12, vCURPID")
	p("	ldw  r12, [r12]")
	p("	mov  r11, r12")
	p("	shli r11, 3")
	p("	sub  r11, r12")
	p("	shli r11, 4       ; pid * (UserSlot>>12)")
	p("	addi r11, %#x", userOffset)
	p("	movi r12, vSAVE1")
	p("	ldw  r12, [r12]")
	p("	add  r11, r12")
	p("	shli r11, %d", fullsys.PageShift)
	p("	ori  r11, 3       ; user|write")
	p("	tlbwr r12, r11")
	p("	iret")
}

// curproc emits "reg = PROCB + vCURPID*128".
func curproc(p emitfn, reg string) {
	p("	movi %s, vCURPID", reg)
	p("	ldw  %s, [%s]", reg, reg)
	p("	shli %s, 7", reg)
	p("	addi %s, PROCB", reg)
}

// slotbase emits "dst = UserPA + pid*UserSlot" with pid already in pid
// (dst and pid may be the same register only if a scratch differs).
func slotbase(p emitfn, dst, pid string) {
	p("	mov  %s, %s", dst, pid)
	p("	shli %s, 3", dst)
	p("	sub  %s, %s", dst, pid)
	p("	shli %s, 16       ; pid * UserSlot", dst)
	p("	addi %s, %#x", dst, UserPA)
}

// fsSyscalls emits the FS syscall entry/exit, every handler, the
// scheduler, and the disk/FS helper routines. flags is the EFLAGS value
// new and exec'd processes start with.
func fsSyscalls(p emitfn, flags int) {
	// Entry: spill the whole register file (and the trap CRs) into the
	// current process entry, then run on the kernel stack. Restoring from
	// the entry at exit is what makes process switching a one-word
	// vCURPID update.
	p("syscallh:")
	curproc(p, "r12")
	p("	movrc r11, cr5")
	p("	stw  r11, [r12+%d]", pEPC)
	p("	movrc r11, cr6")
	p("	stw  r11, [r12+%d]", pEFlags)
	for r := 0; r <= 10; r++ {
		p("	stw  r%d, [r12+%d]", r, pRegs+4*r)
	}
	p("	stw  sp, [r12+%d]", pRegs+4*13)
	p("	stw  lr, [r12+%d]", pRegs+4*14)
	p("	stw  r15, [r12+%d]", pRegs+4*15)
	p("	movi sp, KSTK")
	for n, lbl := range [][2]string{
		{"0", "sysexit"}, {"1", "sysputc"}, {"2", "sysgetc"},
		{"4", "syssleep"}, {"5", "systime"}, {"6", "sysopen"},
		{"7", "sysread"}, {"8", "syswrite"}, {"9", "sysclose"},
		{"10", "sysunlink"}, {"11", "sysfork"}, {"12", "sysexec"},
		{"13", "syswait"}, {"14", "syslogapp"}, {"15", "sysnicpoll"},
		{"16", "sysnicrecv"}, {"17", "sysnicsend"},
	} {
		_ = n
		p("	cmpi r0, %s", lbl[0])
		p("	jz   %s", lbl[1])
	}
	p("	jmp  sysret       ; unknown syscall: no-op")

	// Exit: reload everything from the (possibly different) current
	// process entry and return to user mode.
	p("sysret:")
	curproc(p, "r12")
	p("	ldw  r11, [r12+%d]", pEPC)
	p("	movcr r11, cr5")
	p("	ldw  r11, [r12+%d]", pEFlags)
	p("	movcr r11, cr6")
	for r := 0; r <= 10; r++ {
		p("	ldw  r%d, [r12+%d]", r, pRegs+4*r)
	}
	p("	ldw  sp, [r12+%d]", pRegs+4*13)
	p("	ldw  lr, [r12+%d]", pRegs+4*14)
	p("	ldw  r15, [r12+%d]", pRegs+4*15)
	p("	iret")

	// retr0: store r1 as the current process's syscall result and return.
	p("retr0:")
	curproc(p, "r12")
	p("	stw  r1, [r12+%d]", pRegs)
	p("	jmp  sysret")

	// The base syscalls, adapted to the full-restore exit path: results
	// must go through the saved-r0 slot or they are overwritten.
	p("sysputc:")
	p("	out  r1, 0x10")
	p("	jmp  sysret")
	p("sysgetc:")
	p("	in   r1, 0x12")
	p("	jmp  retr0")
	p("systime:")
	p("	movrc r1, cr4")
	p("	jmp  retr0")
	p("syssleep:")
	p("	movi r12, vTICKS")
	p("	ldw  r11, [r12]")
	p("	add  r11, r1")
	p("	stw  r11, [r12+4] ; vSLEEP")
	p("sleeploop:")
	p("	sti")
	p("	halt")
	p("	cli")
	p("	movi r12, vTICKS")
	p("	ldw  r11, [r12]")
	p("	ldw  r12, [r12+4]")
	p("	cmp  r11, r12")
	p("	jl   sleeploop")
	p("	jmp  sysret")

	fsProcSyscalls(p, flags)
	fsFileSyscalls(p)
	fsLogNICSyscalls(p)
	fsHelpers(p)
}

// fsProcSyscalls emits exit/fork/exec/wait and the cooperative scheduler.
func fsProcSyscalls(p emitfn, flags int) {
	// exit(r1 = status): pid 0 exiting powers off (the pre-FS semantic);
	// anything else turns zombie and yields.
	p("sysexit:")
	p("	movi r12, vCURPID")
	p("	ldw  r12, [r12]")
	p("	cmpi r12, 0")
	p("	jz   shutdown")
	p("	shli r12, 7")
	p("	addi r12, PROCB")
	p("	movi r0, 3")
	p("	stw  r0, [r12+%d]", pState)
	p("	stw  r1, [r12+%d]", pStatus)
	p("	jmp  schednext")

	// fork(): clone the process entry and the whole user memory slot.
	// The child's saved r0 becomes 0; the parent keeps running and gets
	// the child pid.
	p("sysfork:")
	p("	movi r11, vCURPID")
	p("	ldw  r11, [r11]")
	p("	movi r7, 1")
	p("fk_scan:")
	p("	mov  r0, r7")
	p("	shli r0, 7")
	p("	addi r0, PROCB")
	p("	ldw  r1, [r0+%d]", pState)
	p("	cmpi r1, 0")
	p("	jz   fk_got")
	p("	inc  r7")
	p("	cmpi r7, %d", MaxProcs)
	p("	jl   fk_scan")
	p("	movi r1, -1       ; process table full")
	p("	jmp  retr0")
	p("fk_got:")
	p("	mov  r2, r11")
	p("	shli r2, 7")
	p("	addi r2, PROCB    ; parent entry")
	p("	movi r3, %d", pEPC)
	p("fk_cp:")
	p("	mov  r4, r2")
	p("	add  r4, r3")
	p("	ldw  r5, [r4]")
	p("	mov  r4, r0")
	p("	add  r4, r3")
	p("	stw  r5, [r4]")
	p("	addi r3, 4")
	p("	cmpi r3, %d", pRegs+4*16)
	p("	jl   fk_cp")
	p("	movi r3, 0")
	p("	stw  r3, [r0+%d]  ; child sees fork() == 0", pRegs)
	p("	stw  r3, [r0+%d]", pStatus)
	p("	movi r3, 1")
	p("	stw  r3, [r0+%d]", pState)
	p("	stw  r11, [r0+%d]", pParent)
	slotbase(p, "r0", "r11")
	slotbase(p, "r1", "r7")
	p("	movi r6, %d", UserSlot/0x10000)
	p("fk_burst:")
	p("	movi r2, %#x", 0x10000)
	p("fk_rep:")
	p("	rep movs          ; 64 KiB per burst (the REP iteration cap)")
	p("	cmpi r2, 0")
	p("	jnz  fk_rep")
	p("	dec  r6")
	p("	jnz  fk_burst")
	p("	mov  r1, r7")
	p("	jmp  retr0")

	// exec(r1 = path): stream the file's blocks over the current slot and
	// reset the saved context to a fresh program start. The mapping is
	// unchanged (same pid), and the block copies go through the normal
	// store path, so stale predecoded instructions self-invalidate.
	p("sysexec:")
	p("	call dirlookup")
	p("	cmpi r1, -1")
	p("	jz   ex_err")
	p("	mov  r7, r1       ; ino")
	p("	mov  r1, r7")
	p("	call inoline")
	p("	ldw  r0, [r2+4]   ; size")
	p("	movi r3, vSAVE2")
	p("	stw  r0, [r3]")
	p("	movi r11, vCURPID")
	p("	ldw  r11, [r11]")
	slotbase(p, "r10", "r11")
	p("	movi r6, 0        ; block index")
	p("ex_loop:")
	p("	mov  r0, r6")
	p("	shli r0, 9")
	p("	movi r3, vSAVE2")
	p("	ldw  r3, [r3]")
	p("	cmp  r0, r3")
	p("	jge  ex_done")
	p("	mov  r1, r7")
	p("	call inoline      ; re-read: block reads may have evicted it")
	p("	mov  r0, r6")
	p("	shli r0, 2")
	p("	add  r2, r0")
	p("	ldw  r1, [r2+12]  ; block pointer")
	p("	call diskrd")
	p("	mov  r0, r2       ; src = cache line")
	p("	mov  r1, r6")
	p("	shli r1, 9")
	p("	add  r1, r10      ; dst = slot + blk*512")
	p("	movi r2, 512")
	p("	rep movs")
	p("	inc  r6")
	p("	jmp  ex_loop")
	p("ex_done:")
	curproc(p, "r12")
	p("	movi r0, %#x", UserVA)
	p("	stw  r0, [r12+%d]", pEPC)
	p("	movi r0, %#x", flags)
	p("	stw  r0, [r12+%d]", pEFlags)
	p("	movi r0, 0")
	for r := 0; r <= 10; r++ {
		p("	stw  r0, [r12+%d]", pRegs+4*r)
	}
	p("	stw  r0, [r12+%d]", pRegs+4*14)
	p("	stw  r0, [r12+%d]", pRegs+4*15)
	p("	movi r0, %#x", UserSP)
	p("	stw  r0, [r12+%d]", pRegs+4*13)
	p("	jmp  sysret")
	p("ex_err:")
	p("	movi r1, -1")
	p("	jmp  retr0")

	// wait(): reap one zombie child (r0 = pid, r1 = status). With live
	// children but no zombie it parks -1 in the saved r0 and yields — the
	// user wrapper retries; with no children at all it returns -2.
	p("syswait:")
	p("	movi r11, vCURPID")
	p("	ldw  r11, [r11]")
	p("	movi r7, 1")
	p("	movi r6, 0        ; live-child flag")
	p("wt_scan:")
	p("	mov  r0, r7")
	p("	shli r0, 7")
	p("	addi r0, PROCB")
	p("	ldw  r1, [r0+%d]", pState)
	p("	cmpi r1, 0")
	p("	jz   wt_next")
	p("	ldw  r2, [r0+%d]", pParent)
	p("	cmp  r2, r11")
	p("	jnz  wt_next")
	p("	cmpi r1, 3")
	p("	jz   wt_reap")
	p("	movi r6, 1")
	p("wt_next:")
	p("	inc  r7")
	p("	cmpi r7, %d", MaxProcs)
	p("	jl   wt_scan")
	p("	cmpi r6, 0")
	p("	jnz  wt_yield")
	p("	movi r1, -2")
	p("	jmp  retr0")
	p("wt_reap:")
	p("	ldw  r3, [r0+%d]", pStatus)
	p("	movi r2, 0")
	p("	stw  r2, [r0+%d]  ; free the slot", pState)
	curproc(p, "r12")
	p("	stw  r7, [r12+%d]", pRegs)
	p("	stw  r3, [r12+%d]", pRegs+4)
	p("	jmp  sysret")
	p("wt_yield:")
	curproc(p, "r12")
	p("	movi r0, -1")
	p("	stw  r0, [r12+%d]", pRegs)
	p("	jmp  schednext")

	// schednext: round-robin from curpid+1; switching is a vCURPID store
	// plus a TLB flush (mappings are per-pid). Nothing runnable anywhere
	// means every process exited without pid 0 — power off.
	p("schednext:")
	p("	movi r12, vCURPID")
	p("	ldw  r12, [r12]")
	p("	mov  r7, r12")
	p("	movi r6, %d", MaxProcs)
	p("sn_loop:")
	p("	inc  r7")
	p("	cmpi r7, %d", MaxProcs)
	p("	jl   sn_ck")
	p("	movi r7, 0")
	p("sn_ck:")
	p("	mov  r0, r7")
	p("	shli r0, 7")
	p("	addi r0, PROCB")
	p("	ldw  r1, [r0+%d]", pState)
	p("	cmpi r1, 1")
	p("	jz   sn_go")
	p("	dec  r6")
	p("	jnz  sn_loop")
	p("	jmp  shutdown")
	p("sn_go:")
	p("	movi r0, vCURPID")
	p("	stw  r7, [r0]")
	p("	tlbfl             ; per-process mappings")
	p("	jmp  sysret")
}

// fsFileSyscalls emits open/read/write/close/unlink.
func fsFileSyscalls(p emitfn) {
	// open(r1 = path, r2 = mode): mode 0 opens an existing file for
	// sequential reads; mode 1 creates it if missing (inode before
	// dirent — a crash between leaves only an fsck orphan warning) and
	// appends. Returns an fd, or -1.
	p("sysopen:")
	p("	mov  r9, r2       ; mode")
	p("	call dirlookup")
	p("	cmpi r1, -1")
	p("	jnz  op_fd")
	p("	cmpi r9, 0")
	p("	jz   op_err       ; reading a missing file")
	p("	movi r7, 1")
	p("op_scani:")
	p("	mov  r1, r7")
	p("	call inoline")
	p("	ldw  r0, [r2]")
	p("	cmpi r0, 0")
	p("	jz   op_newino")
	p("	inc  r7")
	p("	cmpi r7, %d", fs.NumInodes)
	p("	jl   op_scani")
	p("	jmp  op_err       ; out of inodes")
	p("op_newino:")
	p("	movi r0, %d", fs.TypeFile)
	p("	stw  r0, [r2]")
	p("	movi r0, 0")
	p("	stw  r0, [r2+4]   ; size 0")
	p("	movi r0, 1")
	p("	stw  r0, [r2+8]   ; nlink 1")
	p("	movi r0, 0")
	for off := 12; off <= 60; off += 4 {
		p("	stw  r0, [r2+%d]", off)
	}
	p("	mov  r1, r7")
	p("	shri r1, 3")
	p("	addi r1, %d", fs.InodeStart)
	p("	call wrline")
	p("	call diskwr       ; inode committed before the dirent")
	p("	movi r1, %d", fs.RootDirSector)
	p("	call diskrd")
	p("	movi r5, 0")
	p("op_scand:")
	p("	ldw  r0, [r2]")
	p("	cmpi r0, 0")
	p("	jz   op_newent")
	p("	addi r2, 16")
	p("	inc  r5")
	p("	cmpi r5, %d", fs.DirEntries)
	p("	jl   op_scand")
	p("	jmp  op_err       ; directory full")
	p("op_newent:")
	p("	mov  r0, r7")
	p("	inc  r0")
	p("	stw  r0, [r2]     ; ino+1")
	p("	movi r4, PATHBUF  ; name already packed by dirlookup")
	p("	ldw  r0, [r4]")
	p("	stw  r0, [r2+4]")
	p("	ldw  r0, [r4+4]")
	p("	stw  r0, [r2+8]")
	p("	ldw  r0, [r4+8]")
	p("	stw  r0, [r2+12]")
	p("	movi r1, %d", fs.RootDirSector)
	p("	call wrline")
	p("	call diskwr")
	p("	mov  r1, r7")
	p("op_fd:")
	p("	mov  r7, r1       ; ino")
	p("	movi r3, FDB")
	p("	movi r5, 0")
	p("op_scanf:")
	p("	ldw  r0, [r3]")
	p("	cmpi r0, 0")
	p("	jz   op_newfd")
	p("	addi r3, 16")
	p("	inc  r5")
	p("	cmpi r5, 8")
	p("	jl   op_scanf")
	p("	jmp  op_err       ; out of fds")
	p("op_newfd:")
	p("	mov  r0, r7")
	p("	inc  r0")
	p("	stw  r0, [r3]")
	p("	movi r0, 0")
	p("	stw  r0, [r3+4]   ; offset 0")
	p("	stw  r9, [r3+8]   ; mode")
	p("	mov  r1, r5")
	p("	jmp  retr0")
	p("op_err:")
	p("	movi r1, -1")
	p("	jmp  retr0")

	// read(r1 = fd, r2 = buf VA, r3 = n): sequential from the fd offset,
	// clamped to the file size; returns bytes read.
	p("sysread:")
	p("	mov  r6, r1")
	p("	shli r6, 4")
	p("	addi r6, FDB      ; fd entry (fixed memory, survives helpers)")
	p("	ldw  r7, [r6]")
	p("	cmpi r7, 0")
	p("	jz   rw_err")
	p("	dec  r7           ; ino")
	p("	mov  r8, r2")
	p("	mov  r9, r3")
	p("	mov  r1, r7")
	p("	call inoline")
	p("	ldw  r0, [r2+4]   ; size")
	p("	ldw  r3, [r6+4]   ; offset")
	p("	sub  r0, r3       ; remaining")
	p("	cmpi r0, 0")
	p("	jz   rd_zero")
	p("	cmp  r9, r0")
	p("	jle  rd_clamped")
	p("	mov  r9, r0")
	p("rd_clamped:")
	p("	mov  r1, r8")
	p("	call uva2pa")
	p("	mov  r8, r1       ; buf PA")
	p("	mov  r10, r9      ; total to return")
	p("rd_loop:")
	p("	cmpi r9, 0")
	p("	jz   rd_done")
	p("	ldw  r0, [r6+4]")
	p("	shri r0, 9")
	p("	push r0           ; block index across inoline")
	p("	mov  r1, r7")
	p("	call inoline")
	p("	pop  r0")
	p("	shli r0, 2")
	p("	add  r2, r0")
	p("	ldw  r1, [r2+12]  ; block pointer")
	p("	call diskrd")
	p("	ldw  r3, [r6+4]")
	p("	andi r3, 511")
	p("	add  r2, r3       ; src = line + offset-in-block")
	p("	movi r5, 512")
	p("	sub  r5, r3")
	p("	cmp  r5, r9")
	p("	jle  rd_chunk")
	p("	mov  r5, r9")
	p("rd_chunk:")
	p("	mov  r0, r2")
	p("	mov  r1, r8")
	p("	mov  r2, r5")
	p("	rep movs")
	p("	mov  r8, r1")
	p("	ldw  r3, [r6+4]")
	p("	add  r3, r5")
	p("	stw  r3, [r6+4]")
	p("	sub  r9, r5")
	p("	jmp  rd_loop")
	p("rd_done:")
	p("	mov  r1, r10")
	p("	jmp  retr0")
	p("rd_zero:")
	p("	movi r1, 0")
	p("	jmp  retr0")

	// write(r1 = fd, r2 = buf VA, r3 = n): append-only. Per chunk the
	// commit order is bitmap (on a fresh block), data, then inode — the
	// ordering fsck's leak-warning model assumes.
	p("syswrite:")
	p("	mov  r6, r1")
	p("	shli r6, 4")
	p("	addi r6, FDB")
	p("	ldw  r7, [r6]")
	p("	cmpi r7, 0")
	p("	jz   rw_err")
	p("	dec  r7           ; ino")
	p("	mov  r9, r3       ; remaining (before uva2pa, which clobbers r3)")
	p("	mov  r1, r2")
	p("	call uva2pa")
	p("	mov  r8, r1       ; src PA")
	p("	mov  r10, r9      ; total to return")
	p("wr_loop:")
	p("	cmpi r9, 0")
	p("	jz   wr_done")
	p("	mov  r1, r7")
	p("	call inoline")
	p("	ldw  r0, [r2+4]   ; size")
	p("	cmpi r0, %d", fs.MaxFileBytes)
	p("	jge  rw_err       ; file full")
	p("	movi r3, vSAVE2")
	p("	stw  r0, [r3]")
	p("	andi r0, 511")
	p("	cmpi r0, 0")
	p("	jnz  wr_have")
	p("	movi r1, %d", fs.BitmapSector)
	p("	call diskrd")
	p("	movi r5, 0")
	p("wr_scanb:")
	p("	ldw  r0, [r2]")
	p("	cmpi r0, 0")
	p("	jz   wr_gotb")
	p("	addi r2, 4")
	p("	inc  r5")
	p("	cmpi r5, %d", fs.DataSectors)
	p("	jl   wr_scanb")
	p("	jmp  rw_err       ; disk full")
	p("wr_gotb:")
	p("	movi r0, 1")
	p("	stw  r0, [r2]")
	p("	movi r1, %d", fs.BitmapSector)
	p("	call wrline")
	p("	call diskwr       ; bitmap first")
	p("	mov  r4, r5")
	p("	addi r4, %d", fs.DataStart)
	p("	jmp  wr_havep")
	p("wr_have:")
	p("	ldw  r0, [r2+4]")
	p("	shri r0, 9")
	p("	shli r0, 2")
	p("	add  r2, r0")
	p("	ldw  r4, [r2+12]  ; existing tail block")
	p("wr_havep:")
	p("	movi r0, vSAVE3")
	p("	stw  r4, [r0]     ; chunk's sector")
	p("	mov  r1, r4")
	p("	call diskrd")
	p("	movi r0, vSAVE2")
	p("	ldw  r0, [r0]")
	p("	andi r0, 511      ; offset in block")
	p("	add  r2, r0")
	p("	movi r5, 512")
	p("	sub  r5, r0")
	p("	cmp  r5, r9")
	p("	jle  wr_chunk")
	p("	mov  r5, r9")
	p("wr_chunk:")
	p("	mov  r0, r8")
	p("	mov  r1, r2")
	p("	mov  r2, r5")
	p("	rep movs")
	p("	mov  r8, r0")
	p("	movi r1, vSAVE3")
	p("	ldw  r1, [r1]")
	p("	call wrline")
	p("	call diskwr       ; data second")
	p("	push r5           ; chunk size (inoline clobbers r5)")
	p("	mov  r1, r7")
	p("	call inoline")
	p("	pop  r5")
	p("	ldw  r0, [r2+4]")
	p("	mov  r3, r0")
	p("	andi r3, 511")
	p("	cmpi r3, 0")
	p("	jnz  wr_grow")
	p("	mov  r3, r0")
	p("	shri r3, 9")
	p("	shli r3, 2")
	p("	add  r3, r2")
	p("	movi r4, vSAVE3")
	p("	ldw  r4, [r4]")
	p("	stw  r4, [r3+12]  ; publish the fresh block pointer")
	p("wr_grow:")
	p("	add  r0, r5")
	p("	stw  r0, [r2+4]   ; new size")
	p("	mov  r1, r7")
	p("	shri r1, 3")
	p("	addi r1, %d", fs.InodeStart)
	p("	call wrline")
	p("	call diskwr       ; inode last")
	p("	sub  r9, r5")
	p("	jmp  wr_loop")
	p("wr_done:")
	p("	mov  r1, r10")
	p("	jmp  retr0")
	p("rw_err:")
	p("	movi r1, -1")
	p("	jmp  retr0")

	p("sysclose:")
	p("	shli r1, 4")
	p("	addi r1, FDB")
	p("	movi r0, 0")
	p("	stw  r0, [r1]")
	p("	jmp  sysret")

	// unlink(r1 = path): dirent, then inode, then bitmap — crash windows
	// leave an orphan or a leak (fsck warnings), never a dangling
	// reference.
	p("sysunlink:")
	p("	call dirlookup    ; r1 = ino, r2 = dirent in the root line")
	p("	cmpi r1, -1")
	p("	jz   ul_err")
	p("	mov  r7, r1")
	p("	movi r0, 0")
	p("	stw  r0, [r2]")
	p("	stw  r0, [r2+4]")
	p("	stw  r0, [r2+8]")
	p("	stw  r0, [r2+12]")
	p("	movi r1, %d", fs.RootDirSector)
	p("	call wrline")
	p("	call diskwr       ; dirent first")
	p("	mov  r1, r7")
	p("	call inoline")
	p("	movi r3, PTRSAV")
	p("	movi r5, 0")
	p("ul_save:")
	p("	ldw  r0, [r2+12]")
	p("	stw  r0, [r3]")
	p("	addi r2, 4")
	p("	addi r3, 4")
	p("	inc  r5")
	p("	cmpi r5, %d", fs.MaxFileBlocks)
	p("	jl   ul_save")
	p("	subi r2, %d", 4*fs.MaxFileBlocks)
	p("	movi r0, 0")
	p("	movi r5, 0")
	p("ul_zero:")
	p("	stw  r0, [r2]")
	p("	addi r2, 4")
	p("	inc  r5")
	p("	cmpi r5, %d", fs.InodeWords)
	p("	jl   ul_zero")
	p("	mov  r1, r7")
	p("	shri r1, 3")
	p("	addi r1, %d", fs.InodeStart)
	p("	call wrline")
	p("	call diskwr       ; inode second")
	p("	movi r1, %d", fs.BitmapSector)
	p("	call diskrd")
	p("	movi r3, PTRSAV")
	p("	movi r5, 0")
	p("ul_clr:")
	p("	ldw  r0, [r3]")
	p("	cmpi r0, 0")
	p("	jz   ul_next")
	p("	subi r0, %d", fs.DataStart)
	p("	shli r0, 2")
	p("	add  r0, r2")
	p("	movi r4, 0")
	p("	stw  r4, [r0]")
	p("ul_next:")
	p("	addi r3, 4")
	p("	inc  r5")
	p("	cmpi r5, %d", fs.MaxFileBlocks)
	p("	jl   ul_clr")
	p("	movi r1, %d", fs.BitmapSector)
	p("	call wrline")
	p("	call diskwr       ; bitmap last")
	p("	movi r1, 0")
	p("	jmp  retr0")
	p("ul_err:")
	p("	movi r1, -1")
	p("	jmp  retr0")
}

// fsLogNICSyscalls emits logappend and the polled NIC syscalls.
func fsLogNICSyscalls(p emitfn) {
	// logappend(r1 = buf VA, r2 = n): write the record sector, then
	// commit the head in the superblock — a torn append below the head is
	// invisible to fsck.
	p("syslogapp:")
	p("	cmpi r2, %d", fs.MaxLogBytes)
	p("	jg   lg_err")
	p("	mov  r9, r2")
	p("	call uva2pa")
	p("	mov  r8, r1       ; src PA")
	p("	movi r0, vLOGHEAD")
	p("	ldw  r7, [r0]")
	p("	cmpi r7, %d", fs.LogSectors)
	p("	jge  lg_err       ; log full")
	p("	mov  r1, r7")
	p("	addi r1, %d", fs.LogStart)
	p("	call diskrd")
	p("	mov  r0, r7")
	p("	inc  r0")
	p("	stw  r0, [r2]     ; sequence")
	p("	mov  r0, r9")
	p("	addi r0, 3")
	p("	shri r0, 2")
	p("	stw  r0, [r2+4]   ; payload words")
	p("	mov  r0, r8")
	p("	mov  r1, r2")
	p("	addi r1, 8")
	p("	mov  r2, r9")
	p("	rep movs")
	p("	mov  r1, r7")
	p("	addi r1, %d", fs.LogStart)
	p("	call wrline")
	p("	call diskwr       ; record first")
	p("	movi r1, %d", fs.Base)
	p("	call diskrd")
	p("	mov  r0, r7")
	p("	inc  r0")
	p("	stw  r0, [r2+%d]", fs.SupLogHead*4)
	p("	movi r1, %d", fs.Base)
	p("	call wrline")
	p("	call diskwr       ; head commit second")
	p("	movi r0, vLOGHEAD")
	p("	mov  r1, r7")
	p("	inc  r1")
	p("	stw  r1, [r0]")
	p("	movi r1, 0")
	p("	jmp  retr0")
	p("lg_err:")
	p("	movi r1, -1")
	p("	jmp  retr0")

	p("sysnicpoll:")
	p("	in   r1, 0x40")
	p("	jmp  retr0")
	p("sysnicrecv:")
	p("	in   r1, 0x41")
	p("	jmp  retr0")
	p("sysnicsend:")
	p("	out  r1, 0x42")
	p("	jmp  sysret")
}

// fsHelpers emits the disk and FS primitives. Register contract: diskrd
// preserves r1 and r5-r10, diskwr preserves r5-r10, both return through
// lr (leaves). inoline/dirlookup/uva2pa preserve r6-r10.
func fsHelpers(p emitfn) {
	// diskrd: r1 = sector → r2 = PA of its 512-byte cache line.
	// Direct-mapped 8-line write-through cache; a miss polls the disk
	// with interrupts off and acknowledges completion immediately.
	p("diskrd:")
	p("	mov  r4, r1")
	p("	andi r4, 7        ; line index")
	p("	mov  r3, r4")
	p("	shli r3, 2")
	p("	addi r3, SCTAG")
	p("	ldw  r0, [r3]")
	p("	mov  r2, r1")
	p("	inc  r2           ; tag = sector+1")
	p("	cmp  r0, r2")
	p("	jz   dr_hit")
	p("	out  r1, 0x30")
	p("	movi r0, 1")
	p("	out  r0, 0x31     ; read command")
	p("dr_wait:")
	p("	pause")
	p("	in   r0, 0x33")
	p("	andi r0, 1")
	p("	jnz  dr_wait")
	p("	movi r0, 1")
	p("	out  r0, 0x34     ; ack before interrupts come back on")
	p("	stw  r2, [r3]     ; install tag")
	p("	mov  r2, r4")
	p("	shli r2, 9")
	p("	addi r2, SCDATA")
	p("	mov  r3, r2")
	p("	movi r0, %d", SectorWords)
	p("dr_fill:")
	p("	in   r4, 0x32")
	p("	stw  r4, [r3]")
	p("	addi r3, 4")
	p("	dec  r0")
	p("	jnz  dr_fill")
	p("	ret")
	p("dr_hit:")
	p("	mov  r2, r4")
	p("	shli r2, 9")
	p("	addi r2, SCDATA")
	p("	ret")

	// diskwr: r1 = sector, r2 = source PA. Write-through: streams the
	// sector to the device, then installs it in the cache (skipping the
	// copy when the source already is the cache line).
	p("diskwr:")
	p("	out  r1, 0x30")
	p("	movi r0, 2")
	p("	out  r0, 0x31     ; write command")
	p("	mov  r3, r2")
	p("	movi r0, %d", SectorWords)
	p("dw_out:")
	p("	ldw  r4, [r3]")
	p("	out  r4, 0x32")
	p("	addi r3, 4")
	p("	dec  r0")
	p("	jnz  dw_out")
	p("dw_wait:")
	p("	pause")
	p("	in   r0, 0x33")
	p("	andi r0, 1")
	p("	jnz  dw_wait")
	p("	movi r0, 1")
	p("	out  r0, 0x34")
	p("	mov  r4, r1")
	p("	andi r4, 7")
	p("	mov  r3, r4")
	p("	shli r3, 2")
	p("	addi r3, SCTAG")
	p("	mov  r0, r1")
	p("	inc  r0")
	p("	stw  r0, [r3]     ; retag the line")
	p("	mov  r3, r4")
	p("	shli r3, 9")
	p("	addi r3, SCDATA")
	p("	cmp  r3, r2")
	p("	jz   dw_done      ; source already is the line")
	p("	mov  r0, r2")
	p("	mov  r1, r3")
	p("	movi r2, 512")
	p("	rep movs")
	p("dw_done:")
	p("	ret")

	// wrline: r1 = sector → r2 = its cache-line PA (no tag check: the
	// caller just mutated the cached line and is about to diskwr it).
	p("wrline:")
	p("	mov  r2, r1")
	p("	andi r2, 7")
	p("	shli r2, 9")
	p("	addi r2, SCDATA")
	p("	ret")

	// uva2pa: r1 = user VA → r1 = PA in the current pid's slot.
	p("uva2pa:")
	p("	movi r0, vCURPID")
	p("	ldw  r0, [r0]")
	p("	mov  r3, r0")
	p("	shli r3, 3")
	p("	sub  r3, r0")
	p("	shli r3, 16       ; pid * UserSlot")
	p("	add  r1, r3")
	p("	addi r1, %#x", UserPA-UserVA)
	p("	ret")

	// inoline: r1 = ino → r2 = PA of its 64-byte record in the cached
	// inode sector.
	p("inoline:")
	p("	push lr")
	p("	mov  r5, r1")
	p("	shri r1, 3")
	p("	addi r1, %d", fs.InodeStart)
	p("	call diskrd")
	p("	andi r5, 7")
	p("	shli r5, 6")
	p("	add  r2, r5")
	p("	pop  lr")
	p("	ret")

	// dirlookup: r1 = path VA → r1 = ino (or -1), r2 = the dirent's PA
	// in the cached root-directory line. Packs the name NUL-padded into
	// PATHBUF (create reuses it) and compares whole words.
	p("dirlookup:")
	p("	push lr")
	p("	call uva2pa")
	p("	movi r2, PATHBUF")
	p("	movi r3, 0")
	p("	stw  r3, [r2]")
	p("	stw  r3, [r2+4]")
	p("	stw  r3, [r2+8]")
	p("dl_copy:")
	p("	ldb  r0, [r1]")
	p("	cmpi r0, 0")
	p("	jz   dl_packed")
	p("	stb  r0, [r2]")
	p("	inc  r1")
	p("	inc  r2")
	p("	cmpi r2, %d", kPathBuf+fs.NameLen-1)
	p("	jl   dl_copy")
	p("dl_packed:")
	p("	movi r1, %d", fs.RootDirSector)
	p("	call diskrd")
	p("	movi r5, 0")
	p("dl_scan:")
	p("	ldw  r0, [r2]")
	p("	cmpi r0, 0")
	p("	jz   dl_next")
	p("	movi r4, PATHBUF")
	p("	ldw  r0, [r2+4]")
	p("	ldw  r1, [r4]")
	p("	cmp  r0, r1")
	p("	jnz  dl_next")
	p("	ldw  r0, [r2+8]")
	p("	ldw  r1, [r4+4]")
	p("	cmp  r0, r1")
	p("	jnz  dl_next")
	p("	ldw  r0, [r2+12]")
	p("	ldw  r1, [r4+8]")
	p("	cmp  r0, r1")
	p("	jnz  dl_next")
	p("	ldw  r1, [r2]")
	p("	dec  r1           ; ino")
	p("	pop  lr")
	p("	ret")
	p("dl_next:")
	p("	addi r2, 16")
	p("	inc  r5")
	p("	cmpi r5, %d", fs.DirEntries)
	p("	jl   dl_scan")
	p("	movi r1, -1")
	p("	pop  lr")
	p("	ret")
}
