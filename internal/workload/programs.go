package workload

import (
	"fmt"
	"strings"
)

// User programs follow the toyOS ABI: entry at UserVA, syscalls through r0
// (0 exit, 1 putchar, 2 getchar, 4 sleep, 5 gettime), r11/r12 reserved for
// the kernel, stack at UserSP. Each generator emits a miniature but real
// algorithm whose dynamic character (memory-op fraction, FP-arithmetic
// fraction, branch predictability, string-op and HALT usage) matches its
// paper namesake's published profile (Table 1, Figures 4-5).

type emitter struct{ b strings.Builder }

func (e *emitter) p(format string, args ...any) {
	fmt.Fprintf(&e.b, format+"\n", args...)
}

// lcg advances the linear congruential generator in reg (clobbers r10).
func (e *emitter) lcg(reg string) {
	e.p("	movi r10, 1103515245")
	e.p("	mul  %s, r10", reg)
	e.p("	addi %s, 12345", reg)
}

// guards emits the boundary/sanity checks that pepper real code: strongly
// biased, trivially predictable branches that dilute the noisy ones in the
// global history (n guard branches against impossible conditions).
func (e *emitter) guards(reg string, label string, n int) {
	for i := 0; i < n; i++ {
		e.p("	cmpi %s, %d", reg, -0x7F000000+i)
		e.p("	jz   %s_g%d", label, i)
		e.p("%s_g%d:", label, i)
	}
}

func (e *emitter) exit() {
	e.p("	movi r0, 0")
	e.p("	syscall")
	e.p("	jmp  .") // unreachable
}

// Data region VAs inside the user mapping.
const (
	dataVA  = 0x20000
	dataVA2 = 0x30000
)

// InitProgram is the trivial post-boot init process used by the boot
// workloads: the measurement there is the boot itself.
func InitProgram() string {
	e := &emitter{}
	e.p("start:")
	for _, c := range "init\n" {
		e.p("	movi r1, %d", c)
		e.p("	movi r0, 1")
		e.p("	syscall")
	}
	// "Then the OS really starts running accounting for decreased BP and
	// iCache hits and increased pipe drains" (§4.6): early userspace does
	// branchy, scattered service startup work, preempted by the timer.
	e.p("	movi r3, 30000")
	e.p("	movi r5, 777777")
	e.p("spin:")
	e.lcg("r5")
	e.p("	mov  r4, r5")
	e.p("	shri r4, 11")
	e.p("	andi r4, 0x3FFF")
	e.p("	mov  r6, r4")
	e.p("	addi r6, %#x", dataVA)
	e.p("	ldw  r7, [r6]    ; scattered config reads")
	e.p("	andi r4, 0xFF")
	e.p("	cmpi r4, 200     ; service-dependent decision, ~78%% one way")
	e.p("	jl   common")
	e.p("	add  r8, r7")
	e.p("	jmp  next")
	e.p("common:")
	e.p("	inc  r8")
	e.p("next:")
	e.p("	mov  r4, r3")
	e.p("	andi r4, 2047")
	e.p("	cmpi r4, 0")
	e.p("	jnz  nosys")
	e.p("	movi r0, 5")
	e.p("	syscall          ; gettime")
	e.p("nosys:")
	e.p("	dec  r3")
	e.p("	jnz  spin")
	e.exit()
	return e.b.String()
}

// SMPProgram is the multicore workload: every core (r1 = CPUID under the
// SMP user ABI) mixes private scattered-update work with a shared counter
// increment under an ll/sc spinlock, then announces completion through a
// lock-free ll/sc fetch-and-add; core 0 waits for all cores and verifies
// the counter saw every increment ('K' to the console, 'X' on a lost
// update). The spin loops make lock contention — and therefore the modeled
// interconnect latency — visible in the timing results.
func SMPProgram(iters, cores int) string {
	e := &emitter{}
	// Shared words at dataVA: [lock, counter, done]; per-core private work
	// areas at dataVA2 + CPUID*0x1000.
	e.p("start:")
	e.p("	mov  r9, r1      ; CPUID")
	e.p("	movi r8, %d", iters)
	e.p("	movi r6, %#x", dataVA)
	e.p("	mov  r7, r9")
	e.p("	shli r7, 12")
	e.p("	addi r7, %#x", dataVA2)
	e.p("	movi r5, 48271")
	e.p("	add  r5, r9      ; per-core RNG stream")
	e.p("work:")
	// Private phase: scattered read-modify-write histogram updates.
	e.lcg("r5")
	e.p("	mov  r2, r5")
	e.p("	shri r2, 10")
	e.p("	andi r2, 0x3FC")
	e.p("	add  r2, r7")
	e.p("	ldw  r3, [r2]")
	e.p("	inc  r3")
	e.p("	stw  r3, [r2]")
	// Critical section: ll/sc test-and-set spinlock around the shared
	// counter.
	e.p("acq:")
	e.p("	ll   r4, [r6]")
	e.p("	cmpi r4, 0")
	e.p("	jnz  spinw       ; held: back off")
	e.p("	movi r4, 1")
	e.p("	sc   r4, [r6]")
	e.p("	jz   acq         ; lost the race: retry")
	e.p("	ldw  r3, [r6+4]")
	e.p("	inc  r3")
	e.p("	stw  r3, [r6+4]  ; shared counter")
	e.p("	movi r4, 0")
	e.p("	stw  r4, [r6]    ; release (plain store)")
	e.p("	dec  r8")
	e.p("	jnz  work")
	e.p("	jmp  fin")
	e.p("spinw:")
	e.p("	pause")
	e.p("	jmp  acq")
	// Completion: lock-free fetch-and-add on the done word.
	e.p("fin:")
	e.p("	ll   r4, [r6+8]")
	e.p("	inc  r4")
	e.p("	sc   r4, [r6+8]")
	e.p("	jz   fin")
	e.p("	cmpi r9, 0")
	e.p("	jnz  bye         ; secondaries exit")
	// Core 0: wait for the siblings, then verify the reduction.
	e.p("waitall:")
	e.p("	pause")
	e.p("	ldw  r4, [r6+8]")
	e.p("	cmpi r4, %d", cores)
	e.p("	jl   waitall")
	e.p("	ldw  r3, [r6+4]")
	e.p("	movi r1, 'K'")
	e.p("	cmpi r3, %d", cores*iters)
	e.p("	jz   verified")
	e.p("	movi r1, 'X'     ; lost update")
	e.p("verified:")
	e.p("	movi r0, 1")
	e.p("	syscall          ; putc verdict")
	e.p("bye:")
	e.exit()
	return e.b.String()
}

// SMPSleepProgram is SMPProgram with a sleep system call in every
// iteration of each core's work loop, outside the critical section. All
// cores spend most of each timer interval halted in syssleep, so the whole
// target is periodically simultaneously quiescent — the boundary the
// warm-start snapshot capture of a multicore run needs.
func SMPSleepProgram(iters, cores int) string {
	e := &emitter{}
	e.p("start:")
	e.p("	mov  r9, r1      ; CPUID")
	e.p("	movi r8, %d", iters)
	e.p("	movi r6, %#x", dataVA)
	e.p("	mov  r7, r9")
	e.p("	shli r7, 12")
	e.p("	addi r7, %#x", dataVA2)
	e.p("	movi r5, 48271")
	e.p("	add  r5, r9      ; per-core RNG stream")
	e.p("work:")
	e.lcg("r5")
	e.p("	mov  r2, r5")
	e.p("	shri r2, 10")
	e.p("	andi r2, 0x3FC")
	e.p("	add  r2, r7")
	e.p("	ldw  r3, [r2]")
	e.p("	inc  r3")
	e.p("	stw  r3, [r2]")
	e.p("acq:")
	e.p("	ll   r4, [r6]")
	e.p("	cmpi r4, 0")
	e.p("	jnz  spinw       ; held: back off")
	e.p("	movi r4, 1")
	e.p("	sc   r4, [r6]")
	e.p("	jz   acq         ; lost the race: retry")
	e.p("	ldw  r3, [r6+4]")
	e.p("	inc  r3")
	e.p("	stw  r3, [r6+4]  ; shared counter")
	e.p("	movi r4, 0")
	e.p("	stw  r4, [r6]    ; release (plain store)")
	// Sleep outside the lock: every core halts until its timer fires,
	// giving the target its simultaneous quiescent windows.
	e.p("	movi r0, 4")
	e.p("	movi r1, 1       ; sleep one tick")
	e.p("	syscall")
	e.p("	dec  r8")
	e.p("	jnz  work")
	e.p("	jmp  fin")
	e.p("spinw:")
	e.p("	pause")
	e.p("	jmp  acq")
	e.p("fin:")
	e.p("	ll   r4, [r6+8]")
	e.p("	inc  r4")
	e.p("	sc   r4, [r6+8]")
	e.p("	jz   fin")
	e.p("	cmpi r9, 0")
	e.p("	jnz  bye         ; secondaries exit")
	e.p("waitall:")
	e.p("	movi r0, 4")
	e.p("	movi r1, 1       ; sleep while waiting for the siblings")
	e.p("	syscall")
	e.p("	ldw  r4, [r6+8]")
	e.p("	cmpi r4, %d", cores)
	e.p("	jl   waitall")
	e.p("	ldw  r3, [r6+4]")
	e.p("	movi r1, 'K'")
	e.p("	cmpi r3, %d", cores*iters)
	e.p("	jz   verified")
	e.p("	movi r1, 'X'     ; lost update")
	e.p("verified:")
	e.p("	movi r0, 1")
	e.p("	syscall          ; putc verdict")
	e.p("bye:")
	e.exit()
	return e.b.String()
}

// GzipProgram: LZ-style compression — window scans with byte compares,
// predictable inner loops, heavy byte loads (µops/inst ≈ 1.34, BP ≈ 90%).
func GzipProgram(iters int) string {
	e := &emitter{}
	const bufLen = 4096
	e.p("start:")
	// Fill the buffer with compressible pseudo-text.
	e.p("	movi r1, %#x", dataVA)
	e.p("	movi r2, %d", bufLen)
	e.p("	movi r5, 99991")
	e.p("fill:")
	e.lcg("r5")
	e.p("	mov  r3, r5")
	e.p("	shri r3, 13")
	e.p("	andi r3, 15     ; 16-symbol alphabet => many matches")
	e.p("	addi r3, 'a'")
	e.p("	stb  r3, [r1]")
	e.p("	inc  r1")
	e.p("	dec  r2")
	e.p("	jnz  fill")
	e.p("	movi r9, %d", iters)
	e.p("outer:")
	e.p("	movi r6, %#x", dataVA+64) // cursor
	e.p("	movi r8, 0               ; emitted tokens")
	e.p("compress:")
	// Find the longest match in a 16-byte back-window.
	e.p("	movi r4, 0      ; best length")
	e.p("	movi r7, 16     ; window offset")
	e.p("window:")
	e.p("	mov  r0, r6")
	e.p("	sub  r0, r7     ; candidate")
	e.p("	mov  r1, r6")
	e.p("	movi r2, 0      ; match length")
	e.p("match:")
	e.p("	ldb  r3, [r0]")
	e.p("	ldb  r5, [r1]")
	e.p("	cmp  r3, r5")
	e.p("	jnz  matchend")
	e.p("	inc  r0")
	e.p("	inc  r1")
	e.p("	inc  r2")
	e.p("	cmpi r2, 8")
	e.p("	jl   match")
	e.p("matchend:")
	e.p("	cmp  r2, r4")
	e.p("	jle  nobest")
	e.p("	mov  r4, r2")
	e.p("nobest:")
	e.p("	dec  r7")
	e.p("	jnz  window")
	e.p("	inc  r8")
	// Emit the (offset,length) token.
	e.p("	mov  r0, r8")
	e.p("	andi r0, 2047")
	e.p("	shli r0, 2")
	e.p("	addi r0, %#x", dataVA2)
	e.p("	stw  r4, [r0]")
	e.p("	add  r6, r4")
	e.p("	inc  r6         ; literal advance")
	e.p("	cmpi r6, %#x", dataVA+bufLen-16)
	e.p("	jl   compress")
	e.p("	dec  r9")
	e.p("	jnz  outer")
	e.exit()
	return e.b.String()
}

// VprProgram: simulated-annealing placement — FP cost arithmetic (partially
// uncovered microcode, Table 1 fraction ≈ 84.6%) and half-random accept
// branches.
func VprProgram(iters int) string {
	e := &emitter{}
	const cells = 1024
	e.p("start:")
	e.p("	movi r1, %#x", dataVA)
	e.p("	movi r2, %d", cells)
	e.p("	movi r5, 7777")
	e.p("fill:")
	e.lcg("r5")
	e.p("	mov  r3, r5")
	e.p("	shri r3, 8")
	e.p("	andi r3, 1023")
	e.p("	stw  r3, [r1]")
	e.p("	addi r1, 4")
	e.p("	dec  r2")
	e.p("	jnz  fill")
	e.p("	movi r9, %d", iters)
	e.p("	fldi f2, 0.999")
	e.p("	fldi f3, 1000.0  ; temperature")
	e.p("anneal:")
	// Pick two cells.
	e.lcg("r5")
	e.p("	mov  r1, r5")
	e.p("	shri r1, 10")
	e.p("	andi r1, %d", cells-1)
	e.p("	shli r1, 2")
	e.p("	addi r1, %#x", dataVA)
	e.lcg("r5")
	e.p("	mov  r2, r5")
	e.p("	shri r2, 10")
	e.p("	andi r2, %d", cells-1)
	e.p("	shli r2, 2")
	e.p("	addi r2, %#x", dataVA)
	e.p("	ldw  r3, [r1]")
	e.p("	ldw  r4, [r2]")
	// FP cost delta (fsub/fmul are NOP-replaced in the prototype's table).
	e.p("	i2f  f0, r3")
	e.p("	i2f  f1, r4")
	e.p("	fsub f0, f1")
	e.p("	fmul f0, f0     ; delta^2")
	e.p("	fmul f3, f2     ; cool")
	e.p("	fcmp f0, f3")
	e.p("	jge  reject")
	e.p("	stw  r4, [r1]   ; accept the swap")
	e.p("	stw  r3, [r2]")
	e.p("reject:")
	e.p("	dec  r9")
	e.p("	jnz  anneal")
	e.exit()
	return e.b.String()
}

// GccProgram: IR-tree walking with an indirect-dispatch "switch" through a
// jump table — call/return heavy, moderate predictability.
func GccProgram(iters int) string {
	e := &emitter{}
	const nodes = 512
	e.p("start:")
	// Node: [op, left, right, value] × 4 words. Build a random DAG.
	e.p("	movi r1, %#x", dataVA)
	e.p("	movi r2, 0")
	e.p("	movi r5, 31337")
	e.p("build:")
	e.lcg("r5")
	e.p("	mov  r3, r5")
	e.p("	shri r3, 9")
	e.p("	andi r3, 7      ; op: biased toward 0 (common-operator skew)")
	e.p("	cmpi r3, 1")
	e.p("	jle  opok")
	e.p("	movi r3, 0      ; 75%% of operators are the common one")
	e.p("opok:")
	e.p("	andi r3, 3")
	e.p("	stw  r3, [r1]")
	e.lcg("r5")
	e.p("	mov  r3, r5")
	e.p("	shri r3, 11")
	e.p("	andi r3, %d", nodes-1)
	e.p("	stw  r3, [r1+4]  ; left index")
	e.lcg("r5")
	e.p("	mov  r3, r5")
	e.p("	shri r3, 7")
	e.p("	andi r3, %d", nodes-1)
	e.p("	stw  r3, [r1+8]  ; right index")
	e.p("	stw  r2, [r1+12] ; value")
	e.p("	addi r1, 16")
	e.p("	inc  r2")
	e.p("	cmpi r2, %d", nodes)
	e.p("	jl   build")
	e.p("	movi r9, %d", iters)
	e.p("	movi r8, 0       ; node cursor")
	e.p("walk:")
	e.p("	mov  r1, r8")
	e.p("	shli r1, 4")
	e.p("	addi r1, %#x", dataVA)
	e.p("	ldw  r2, [r1]    ; op")
	e.guards("r2", "gg", 3)
	e.p("	mov  r3, r2")
	e.p("	shli r3, 2")
	e.p("	addi r3, jmptab")
	e.p("	ldw  r3, [r3]")
	e.p("	callr r3         ; dispatch through the jump table")
	e.p("	ldw  r8, [r1+4]  ; follow left link")
	e.p("	dec  r9")
	e.p("	jnz  walk")
	e.exit()
	e.p("opadd:")
	e.p("	ldw  r4, [r1+12]")
	e.p("	addi r4, 3")
	e.p("	stw  r4, [r1+12]")
	e.p("	ret")
	e.p("opsub:")
	e.p("	ldw  r4, [r1+12]")
	e.p("	subi r4, 1")
	e.p("	stw  r4, [r1+12]")
	e.p("	ret")
	e.p("opmul:")
	e.p("	ldw  r4, [r1+12]")
	e.p("	movi r6, 3")
	e.p("	mul  r4, r6")
	e.p("	stw  r4, [r1+12]")
	e.p("	ret")
	e.p("opxor:")
	e.p("	ldw  r4, [r1+12]")
	e.p("	xori r4, 0x55")
	e.p("	stw  r4, [r1+12]")
	e.p("	ret")
	e.p("	.align 4")
	e.p("jmptab:")
	e.p("	.word opadd, opsub, opmul, opxor")
	return e.b.String()
}

// McfProgram: pointer chasing through a large shuffled ring — dL1 misses
// dominate, IPC is low.
func McfProgram(iters int) string {
	e := &emitter{}
	const slots = 16384 // 64 KiB of pointers, far beyond the 32 KiB dL1
	e.p("start:")
	// Build a strided ring: slot i -> slot (i+stride) mod slots, with a
	// stride co-prime to the count so one ring covers everything.
	e.p("	movi r1, 0")
	e.p("ringinit:")
	e.p("	mov  r2, r1")
	e.p("	addi r2, 97          ; stride in slots")
	e.p("	movi r3, %d", slots-1)
	e.p("	and  r2, r3")
	e.p("	shli r2, 2")
	e.p("	addi r2, %#x", dataVA)
	e.p("	mov  r4, r1")
	e.p("	shli r4, 2")
	e.p("	addi r4, %#x", dataVA)
	e.p("	stw  r2, [r4]        ; slot[i] = &slot[(i+97)&mask]")
	e.p("	inc  r1")
	e.p("	cmpi r1, %d", slots)
	e.p("	jl   ringinit")
	e.p("	movi r9, %d", iters)
	e.p("	movi r1, %#x", dataVA)
	e.p("chase:")
	for i := 0; i < 8; i++ {
		e.p("	ldw  r1, [r1]    ; pointer chase %d", i)
	}
	e.p("	add  r6, r1          ; cost accumulation")
	e.p("	dec  r9")
	e.p("	jnz  chase")
	e.exit()
	return e.b.String()
}

// CraftyProgram: bitboard manipulation — shift/mask/popcount chains, mostly
// ALU, data-dependent bit-test branches.
func CraftyProgram(iters int) string {
	e := &emitter{}
	e.p("start:")
	e.p("	movi r5, 0xC0FFEE")
	e.p("	movi r9, %d", iters)
	e.p("	movi r8, 0")
	e.p("search:")
	e.lcg("r5")
	e.p("	mov  r1, r5      ; bitboard")
	e.guards("r1", "cg", 3)
	// Fixed-trip shift-add popcount: the ALU-chain flavour of bitboard
	// code, with a predictable loop.
	e.p("	movi r2, 0")
	e.p("	movi r0, 8")
	e.p("popcnt:")
	e.p("	mov  r3, r1")
	e.p("	andi r3, 1")
	e.p("	add  r2, r3")
	e.p("	shri r1, 4")
	e.p("	dec  r0")
	e.p("	jnz  popcnt")
	// Mobility heuristics: shifted masks and conditional scoring.
	e.p("	mov  r4, r5")
	e.p("	shli r4, 7")
	e.p("	mov  r6, r5")
	e.p("	shri r6, 9")
	e.p("	xor  r4, r6")
	e.p("	andi r4, 0xFF")
	// History/transposition table update: the mem traffic of a real search.
	e.p("	mov  r6, r4")
	e.p("	andi r6, 63")
	e.p("	shli r6, 2")
	e.p("	addi r6, %#x", dataVA)
	e.p("	ldw  r3, [r6]")
	e.p("	add  r3, r2")
	e.p("	stw  r3, [r6]")
	e.p("	cmpi r4, 192     ; ~75%% of byte values fall below")
	e.p("	jl   low")
	e.p("	add  r8, r2")
	e.p("	jmp  next")
	e.p("low:")
	e.p("	sub  r8, r2")
	e.p("next:")
	e.p("	dec  r9")
	e.p("	jnz  search")
	e.exit()
	return e.b.String()
}

// ParserProgram: token classification over generated pseudo-text — chains
// of data-dependent compares; the lowest branch-prediction accuracy of the
// integer set.
func ParserProgram(iters int) string {
	e := &emitter{}
	const textLen = 2048
	e.p("start:")
	e.p("	movi r1, %#x", dataVA)
	e.p("	movi r2, %d", textLen)
	e.p("	movi r5, 424243")
	e.p("gen:")
	e.lcg("r5")
	e.p("	mov  r3, r5")
	e.p("	shri r3, 17")
	e.p("	andi r3, 31")
	e.p("	addi r3, 'a'     ; 'a'..'a'+31: ~81%% lowercase, rest punctuation")
	e.p("	stb  r3, [r1]")
	e.p("	inc  r1")
	e.p("	dec  r2")
	e.p("	jnz  gen")
	e.p("	movi r9, %d", iters)
	e.p("parse:")
	e.p("	movi r1, %#x", dataVA)
	e.p("	movi r6, 0       ; token counts")
	e.p("	movi r7, 0")
	e.p("	movi r8, 0")
	e.p("tok:")
	e.p("	ldb  r3, [r1]")
	e.p("	cmpi r3, 'a'")
	e.p("	jl   notlower")
	e.p("	cmpi r3, 'z'")
	e.p("	jg   notlower")
	e.p("	inc  r6")
	e.p("	jmp  tokdone")
	e.p("notlower:")
	e.p("	cmpi r3, '0'")
	e.p("	jl   notdigit")
	e.p("	cmpi r3, '9'")
	e.p("	jg   notdigit")
	e.p("	inc  r7")
	e.p("	jmp  tokdone")
	e.p("notdigit:")
	e.p("	cmpi r3, 32")
	e.p("	jl   ctrl")
	e.p("	inc  r8")
	e.p("	jmp  tokdone")
	e.p("ctrl:")
	e.p("	add  r8, r3")
	e.p("tokdone:")
	// Emit the token stream (a real parser writes its parse).
	e.p("	mov  r4, r6")
	e.p("	add  r4, r7")
	e.p("	mov  r2, r1")
	e.p("	addi r2, %d", dataVA2-dataVA)
	e.p("	stb  r4, [r2]")
	e.p("	inc  r1")
	e.p("	cmpi r1, %#x", dataVA+textLen)
	e.p("	jl   tok")
	e.p("	dec  r9")
	e.p("	jnz  parse")
	e.exit()
	return e.b.String()
}

// EonProgram: ray-intersection arithmetic — roughly half the dynamic
// instructions are FP arithmetic with no microcode translation (Table 1
// fraction ≈ 52%), whose dependences are therefore not enforced.
func EonProgram(iters int) string {
	e := &emitter{}
	e.p("start:")
	e.p("	movi r5, 271828")
	e.p("	movi r9, %d", iters)
	e.p("	fldi f6, 1.0")
	e.p("	fldi f7, 0.5")
	e.p("ray:")
	e.lcg("r5")
	e.p("	mov  r1, r5")
	e.p("	shri r1, 16")
	e.p("	i2f  f0, r1      ; ray direction components")
	e.lcg("r5")
	e.p("	mov  r1, r5")
	e.p("	shri r1, 12")
	e.p("	i2f  f1, r1")
	// Dot products and normalization: fmul/fadd/fdiv/fsqrt (uncovered).
	e.p("	fmov f2, f0")
	e.p("	fmul f2, f0")
	e.p("	fmov f3, f1")
	e.p("	fmul f3, f1")
	e.p("	fadd f2, f3")
	e.p("	fadd f2, f6      ; avoid sqrt(0) and /0")
	e.p("	fsqrt f4, f2")
	e.p("	fmov f5, f0")
	e.p("	fdiv f5, f4")
	e.p("	fmul f5, f7")
	e.p("	fadd f5, f1")
	// Shading chain: more uncovered FP arithmetic per ray.
	e.p("	fmov f3, f5")
	e.p("	fmul f3, f3")
	e.p("	fadd f3, f6")
	e.p("	fsub f3, f7")
	e.p("	fmul f3, f7")
	e.p("	fadd f3, f5")
	e.p("	fsqrt f3, f3")
	e.p("	fneg f2, f3")
	e.p("	fabs f5, f5")
	e.p("	fldi f1, 250.0   ; most rays miss the near sphere")
	e.guards("r1", "eg", 3)
	e.p("	fcmp f4, f1")
	e.p("	jl   hit")
	e.p("	addi r8, 1")
	e.p("	jmp  raydone")
	e.p("hit:")
	e.p("	addi r7, 1")
	e.p("raydone:")
	e.p("	dec  r9")
	e.p("	jnz  ray")
	e.exit()
	return e.b.String()
}

// PerlbmkProgram: string transformation with periodic sleep system calls —
// the HALT behaviour that starves the timing model of instructions and
// hurts MIPS despite decent prediction accuracy (§4.4).
func PerlbmkProgram(iters int) string {
	e := &emitter{}
	const strLen = 512
	e.p("start:")
	e.p("	movi r1, %#x", dataVA)
	e.p("	movi r2, %d", strLen)
	e.p("	movi r5, 1234577")
	e.p("gen:")
	e.lcg("r5")
	e.p("	mov  r3, r5")
	e.p("	shri r3, 18")
	e.p("	andi r3, 31")
	e.p("	addi r3, 'a'")
	e.p("	stb  r3, [r1]")
	e.p("	inc  r1")
	e.p("	dec  r2")
	e.p("	jnz  gen")
	e.p("	movi r9, %d", iters)
	e.p("work:")
	// tr/s///-style pass: rewrite vowels, count substitutions.
	e.p("	movi r1, %#x", dataVA)
	e.p("	movi r6, 0")
	e.p("subst:")
	e.p("	ldb  r3, [r1]")
	e.p("	cmpi r3, 'e'")
	e.p("	jnz  nsub")
	e.p("	movi r3, '_'")
	e.p("	stb  r3, [r1]")
	e.p("	inc  r6")
	e.p("nsub:")
	e.p("	inc  r1")
	e.p("	cmpi r1, %#x", dataVA+strLen)
	e.p("	jl   subst")
	// Stack traffic around the "interpreter" pass.
	e.p("	push r6")
	e.p("	push r9")
	e.p("	pop  r9")
	e.p("	pop  r6")
	// The time/sleep system calls: HALT until the timer fires (every
	// other pass).
	e.p("	mov  r3, r9")
	e.p("	andi r3, 1")
	e.p("	jnz  nosleep")
	e.p("	movi r0, 4")
	e.p("	movi r1, 1       ; sleep one tick")
	e.p("	syscall")
	e.p("	movi r0, 5")
	e.p("	syscall          ; gettime")
	e.p("nosleep:")
	e.p("	dec  r9")
	e.p("	jnz  work")
	e.exit()
	return e.b.String()
}

// GapProgram: multi-precision arithmetic — carry-propagation loops with
// highly biased branches.
func GapProgram(iters int) string {
	e := &emitter{}
	const limbs = 64
	e.p("start:")
	e.p("	movi r1, %#x", dataVA)
	e.p("	movi r2, %d", 2*limbs)
	e.p("	movi r5, 987654321")
	e.p("fill:")
	e.lcg("r5")
	e.p("	mov  r4, r5")
	e.p("	shri r4, 4       ; small limbs: carries are rare")
	e.p("	stw  r4, [r1]")
	e.p("	addi r1, 4")
	e.p("	dec  r2")
	e.p("	jnz  fill")
	e.p("	movi r9, %d", iters)
	e.p("bigadd:")
	e.p("	movi r1, %#x", dataVA)         // a
	e.p("	movi r2, %#x", dataVA+4*limbs) // b
	e.p("	movi r6, %d", limbs)
	e.p("	movi r7, 0       ; carry")
	e.p("limb:")
	e.p("	ldw  r3, [r1]")
	e.p("	ldw  r4, [r2]")
	e.p("	add  r3, r4")
	e.p("	movi r8, 0")
	e.p("	jnc  nc1")
	e.p("	movi r8, 1")
	e.p("nc1:")
	e.p("	add  r3, r7")
	e.p("	jnc  nc2")
	e.p("	movi r8, 1")
	e.p("nc2:")
	e.p("	mov  r7, r8")
	e.p("	stw  r3, [r1]")
	e.p("	addi r1, 4")
	e.p("	addi r2, 4")
	e.p("	dec  r6")
	e.p("	jnz  limb")
	e.p("	dec  r9")
	e.p("	jnz  bigadd")
	e.exit()
	return e.b.String()
}

// VortexProgram: an object store — hash probes, call-heavy access paths,
// high prediction accuracy.
func VortexProgram(iters int) string {
	e := &emitter{}
	const buckets = 1024
	e.p("start:")
	e.p("	movi r5, 5550123")
	e.p("	movi r9, %d", iters)
	e.p("txn:")
	e.lcg("r5")
	e.p("	mov  r1, r5")
	e.p("	call hash")
	e.p("	call insert")
	e.lcg("r5")
	e.p("	mov  r1, r5")
	e.p("	call hash")
	e.p("	call lookup")
	e.p("	dec  r9")
	e.p("	jnz  txn")
	e.exit()
	e.p("hash:")
	e.p("	mov  r2, r1")
	e.p("	shri r2, 7")
	e.p("	xor  r2, r1")
	e.p("	movi r3, 2654435761")
	e.p("	mul  r2, r3")
	e.p("	shri r2, 20")
	e.p("	andi r2, %d", buckets-1)
	e.p("	shli r2, 3       ; bucket: [key, count]")
	e.p("	addi r2, %#x", dataVA)
	e.p("	ret")
	e.p("insert:")
	e.p("	stw  r1, [r2]")
	e.p("	ldw  r4, [r2+4]")
	e.p("	inc  r4")
	e.p("	stw  r4, [r2+4]")
	e.p("	ret")
	e.p("lookup:")
	e.p("	ldw  r4, [r2]")
	e.p("	cmp  r4, r1")
	e.p("	jnz  miss")
	e.p("	ldw  r6, [r2+4]")
	e.p("	add  r7, r6")
	e.p("	ret")
	e.p("miss:")
	e.p("	inc  r8")
	e.p("	ret")
	return e.b.String()
}

// Bzip2Program: block sorting — compare/swap inner loops over byte blocks.
func Bzip2Program(iters int) string {
	e := &emitter{}
	const block = 128
	e.p("start:")
	e.p("	movi r9, %d", iters)
	e.p("	movi r5, 8675309")
	e.p("blockloop:")
	// Regenerate the block each pass.
	e.p("	movi r1, %#x", dataVA)
	e.p("	movi r2, %d", block)
	e.p("genb:")
	e.lcg("r5")
	e.p("	mov  r3, r5")
	e.p("	shri r3, 15")
	e.p("	andi r3, 255")
	e.p("	stb  r3, [r1]")
	e.p("	inc  r1")
	e.p("	dec  r2")
	e.p("	jnz  genb")
	// Insertion sort: data-dependent while-loops, byte loads/stores.
	e.p("	movi r6, 1       ; i")
	e.p("isort:")
	e.p("	mov  r1, r6")
	e.p("	addi r1, %#x", dataVA)
	e.p("	ldb  r4, [r1]    ; key")
	e.p("	mov  r7, r6      ; j")
	e.p("shiftl:")
	e.p("	cmpi r7, 0")
	e.p("	jz   place")
	e.p("	mov  r1, r7")
	e.p("	addi r1, %#x", dataVA-1)
	e.p("	ldb  r3, [r1]")
	e.p("	cmp  r3, r4")
	e.p("	jle  place")
	e.p("	stb  r3, [r1+1]")
	e.p("	dec  r7")
	e.p("	jmp  shiftl")
	e.p("place:")
	e.p("	mov  r1, r7")
	e.p("	addi r1, %#x", dataVA)
	e.p("	stb  r4, [r1]")
	e.p("	inc  r6")
	e.p("	cmpi r6, %d", block)
	e.p("	jl   isort")
	e.p("	dec  r9")
	e.p("	jnz  blockloop")
	e.exit()
	return e.b.String()
}

// TwolfProgram: integer placement annealing — scattered loads and LCG
// accept branches.
func TwolfProgram(iters int) string {
	e := &emitter{}
	const cells = 2048
	e.p("start:")
	e.p("	movi r1, %#x", dataVA)
	e.p("	movi r2, %d", cells)
	e.p("	movi r5, 1029384")
	e.p("fill:")
	e.lcg("r5")
	e.p("	stw  r5, [r1]")
	e.p("	addi r1, 4")
	e.p("	dec  r2")
	e.p("	jnz  fill")
	e.p("	movi r9, %d", iters)
	e.p("move:")
	e.lcg("r5")
	e.p("	mov  r1, r5")
	e.p("	shri r1, 9")
	e.p("	andi r1, %d", cells-1)
	e.p("	shli r1, 2")
	e.p("	addi r1, %#x", dataVA)
	e.p("	ldw  r3, [r1]")
	// Wire-length delta (always non-negative by construction).
	e.p("	mov  r4, r3")
	e.p("	xor  r4, r5")
	e.p("	andi r4, 0xFFFF")
	e.guards("r4", "tg", 3)
	e.p("	cmpi r4, 0xE000  ; ~87%% of moves accepted")
	e.p("	jl   accept")
	e.p("	inc  r8")
	e.p("	jmp  moved")
	e.p("accept:")
	e.p("	stw  r5, [r1]")
	e.p("moved:")
	e.p("	dec  r9")
	e.p("	jnz  move")
	e.exit()
	return e.b.String()
}

// Sweep3DProgram: a wavefront stencil sweep — deep, perfectly predictable
// loops dominated by FP arithmetic, most of it without microcode (Table 1
// fraction ≈ 44%).
func Sweep3DProgram(iters int) string {
	e := &emitter{}
	const n = 24 // n×n plane
	e.p("start:")
	e.p("	movi r1, %#x", dataVA)
	e.p("	movi r2, %d", n*n)
	e.p("	movi r5, 13579")
	e.p("fill:")
	e.lcg("r5")
	e.p("	mov  r3, r5")
	e.p("	shri r3, 16")
	e.p("	stw  r3, [r1]")
	e.p("	addi r1, 4")
	e.p("	dec  r2")
	e.p("	jnz  fill")
	e.p("	movi r9, %d", iters)
	e.p("	fldi f5, 0.25")
	e.p("	fldi f6, 1.0")
	e.p("sweep:")
	e.p("	movi r6, 1       ; i")
	e.p("iloop:")
	e.p("	movi r7, 1       ; j")
	e.p("jloop:")
	e.p("	mov  r1, r6")
	e.p("	movi r2, %d", n)
	e.p("	mul  r1, r2")
	e.p("	add  r1, r7")
	e.p("	shli r1, 2")
	e.p("	addi r1, %#x", dataVA)
	e.p("	ldw  r2, [r1]")
	e.p("	ldw  r3, [r1-4]")
	e.p("	ldw  r4, [r1+%d]", -4*n)
	e.p("	i2f  f0, r2")
	e.p("	i2f  f1, r3")
	e.p("	i2f  f2, r4")
	e.p("	fadd f1, f2      ; upwind flux")
	e.p("	fmul f1, f5")
	e.p("	fadd f0, f1")
	e.p("	fmul f0, f5")
	e.p("	fadd f0, f6")
	// Scattering source: the angular-moment arithmetic that dominates the
	// real kernel (all uncovered microcode).
	for i := 0; i < 4; i++ {
		e.p("	fmov f3, f0")
		e.p("	fmul f3, f5")
		e.p("	fadd f3, f6")
		e.p("	fsub f3, f1")
		e.p("	fmul f3, f3")
		e.p("	fadd f0, f3")
	}
	e.p("	f2i  r2, f0")
	e.p("	stw  r2, [r1]")
	e.p("	inc  r7")
	e.p("	cmpi r7, %d", n-1)
	e.p("	jl   jloop")
	e.p("	inc  r6")
	e.p("	cmpi r6, %d", n-1)
	e.p("	jl   iloop")
	e.p("	dec  r9")
	e.p("	jnz  sweep")
	e.exit()
	return e.b.String()
}

// MysqlProgram: row store — hash probes, WHERE-clause scans, REP MOVS/CMPS
// row copies (string instructions drive the highest µop expansion in Table
// 1, 1.51) and console I/O system calls.
func MysqlProgram(iters int) string {
	e := &emitter{}
	const rowBytes = 8
	const tableRows = 256
	e.p("start:")
	// Row template.
	e.p("	movi r1, %#x", dataVA)
	e.p("	movi r2, %d", rowBytes)
	e.p("	movi r5, 2024")
	e.p("fill:")
	e.lcg("r5")
	e.p("	stb  r5, [r1]")
	e.p("	inc  r1")
	e.p("	dec  r2")
	e.p("	jnz  fill")
	e.p("	movi r9, %d", iters)
	e.p("query:")
	// Hash the key to a row slot.
	e.lcg("r5")
	e.p("	mov  r4, r5")
	e.p("	shri r4, 13")
	e.p("	andi r4, %d", tableRows-1)
	e.p("	movi r6, %d", rowBytes)
	e.p("	mul  r4, r6")
	e.p("	addi r4, %#x", dataVA2)
	// INSERT: copy the row template with REP MOVS.
	e.p("	movi r0, %#x", dataVA)
	e.p("	mov  r1, r4")
	e.p("	movi r2, %d", rowBytes)
	e.p("	rep movs")
	// SELECT: compare a row back with REP CMPS.
	e.p("	movi r0, %#x", dataVA)
	e.p("	mov  r1, r4")
	e.p("	movi r2, %d", rowBytes)
	e.p("	rep cmps")
	e.p("	jnz  corrupt")
	e.p("	inc  r7")
	e.p("	jmp  scan")
	e.p("corrupt:")
	e.p("	inc  r8")
	// WHERE-clause scan: walk a stretch of the table checking a predicate
	// byte — the integer work that dominates a real query's dynamic mix.
	e.p("scan:")
	e.p("	movi r1, %#x", dataVA2)
	e.p("	movi r2, 48")
	e.p("where:")
	e.p("	ldb  r3, [r1]")
	e.p("	cmpi r3, 'm'")
	e.p("	jnz  nomatch")
	e.p("	inc  r7")
	e.p("nomatch:")
	e.p("	addi r1, %d", rowBytes)
	e.p("	dec  r2")
	e.p("	jnz  where")
	e.p("logq:")
	// Log one status byte per query batch.
	e.p("	mov  r3, r9")
	e.p("	andi r3, 63")
	e.p("	cmpi r3, 0")
	e.p("	jnz  nolog")
	e.p("	movi r0, 1")
	e.p("	movi r1, '.'")
	e.p("	syscall")
	e.p("nolog:")
	e.p("	dec  r9")
	e.p("	jnz  query")
	e.exit()
	return e.b.String()
}
