package workload

// Entry is one registered workload: the name front ends accept, a
// one-line description for listings (fastsim -list-workloads, fastctl
// workloads, GET /v1/workloads), and a builder parameterised by core
// count.
type Entry struct {
	Name        string
	Description string
	// Build constructs the spec at the given core count. The smp-*
	// workloads bake the count into the user program and rebuild; the
	// rest leave single-core configs untouched and set Kernel.Cores only
	// above one (idle secondaries park in the kernel). FS workloads are
	// uniprocessor-only and reject Cores > 1 when the boot is built.
	Build func(cores int) Spec
}

// tableEntry wraps a Table 1 / figure workload already defined elsewhere.
func tableEntry(name, desc string) Entry {
	return Entry{Name: name, Description: desc, Build: func(cores int) Spec {
		var spec Spec
		if name == "WindowsXP" {
			spec = WindowsXP()
		} else {
			for _, s := range All() {
				if s.Name == name {
					spec = s
					break
				}
			}
		}
		if spec.Name == "" {
			panic("workload: registry entry " + name + " missing from All()")
		}
		if cores > 1 {
			spec.Kernel.Cores = cores
		}
		return spec
	}}
}

// fsEntry wraps a server-class FS workload (uniprocessor-only; the core
// count is validated when the boot is built).
func fsEntry(desc string, build func() Spec) Entry {
	s := build()
	return Entry{Name: s.Name, Description: desc, Build: func(int) Spec { return build() }}
}

// Registry returns every runnable workload in listing order: the sixteen
// Table 1 entries, the extra boot workload of Figures 4-5, the multicore
// pair, and the server-class FS workloads.
func Registry() []Entry {
	tableDesc := map[string]string{
		"Linux-2.4": "toyOS 2.4 boot into init (Table 1 boot workload)",
		"Linux-2.6": "toyOS 2.6 boot into init (Table 1 boot workload)",
	}
	var entries []Entry
	for _, s := range All() {
		desc := tableDesc[s.Name]
		if desc == "" {
			desc = s.Name + " dynamic-profile user program over a fast boot (Table 1)"
		}
		entries = append(entries, tableEntry(s.Name, desc))
	}
	entries = append(entries,
		tableEntry("WindowsXP", "Windows-class boot with a wider instruction mix (Figures 4-5)"),
		Entry{Name: SMPName,
			Description: "N cores contending on an ll/sc spinlock over the modeled interconnect",
			Build: func(cores int) Spec {
				if cores < 1 {
					cores = 1
				}
				return SMP(cores)
			}},
		Entry{Name: SMPSleepName,
			Description: "smp-lock with a sleep per iteration so all-quiescent snapshot boundaries occur",
			Build: func(cores int) Spec {
				if cores < 1 {
					cores = 1
				}
				return SMPSleep(cores)
			}},
		fsEntry("FS kernel: fork 8 children exec'd from the toyFS file \"child\", reap their statuses", ShellFork),
		fsEntry("FS kernel: create/append a file across block boundaries, then stress the commit log", LogWrite),
		fsEntry("FS kernel: polled NIC request/response server with hashed buckets and an audit log", NICServ),
	)
	return entries
}

// Lookup finds a registered workload by name and builds it at the given
// core count.
func Lookup(name string, cores int) (Spec, bool) {
	for _, e := range Registry() {
		if e.Name == name {
			return e.Build(cores), true
		}
	}
	return Spec{}, false
}
