package isa

import (
	"fmt"
	"strings"
)

// DisasmLine is one decoded (or undecodable) location in an image.
type DisasmLine struct {
	Addr  Word
	Bytes []byte
	Inst  Inst // valid only when Err is nil
	Err   error
}

func (l DisasmLine) String() string {
	hex := make([]string, len(l.Bytes))
	for i, b := range l.Bytes {
		hex[i] = fmt.Sprintf("%02x", b)
	}
	text := fmt.Sprintf(".byte %#02x", l.Bytes[0])
	if l.Err == nil {
		text = l.Inst.String()
	}
	return fmt.Sprintf("%08x:  %-24s %s", l.Addr, strings.Join(hex, " "), text)
}

// Disassemble decodes an image linearly from base. Undecodable bytes become
// single-byte lines so the stream always resynchronizes (data regions print
// as .byte runs).
func Disassemble(code []byte, base Word) []DisasmLine {
	var out []DisasmLine
	for off := 0; off < len(code); {
		inst, err := Decode(code[off:], base+Word(off))
		if err != nil {
			out = append(out, DisasmLine{
				Addr:  base + Word(off),
				Bytes: code[off : off+1],
				Err:   err,
			})
			off++
			continue
		}
		out = append(out, DisasmLine{
			Addr:  base + Word(off),
			Bytes: code[off : off+inst.Size],
			Inst:  inst,
		})
		off += inst.Size
	}
	return out
}

// DisassembleProgram renders an assembled program with symbol labels
// interleaved.
func DisassembleProgram(p *Program) string {
	labels := make(map[Word][]string)
	for name, addr := range p.Symbols {
		labels[addr] = append(labels[addr], name)
	}
	var b strings.Builder
	for _, line := range Disassemble(p.Code, p.Base) {
		for _, name := range labels[line.Addr] {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		fmt.Fprintf(&b, "  %s\n", line)
	}
	return b.String()
}
