package isa

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzDecode drives Decode with arbitrary byte soup. The functional model
// feeds Decode raw target memory, so beyond not panicking it must uphold
// the contracts the predecode cache leans on:
//
//   - an error always comes with a zero Inst (no partial decode escapes);
//   - a success reports a Size that covers 1..MaxInstLen bytes of the input;
//   - a successful decode re-encodes, and the re-encoded bytes are a fixed
//     point: Decode(Encode(inst)) reproduces inst exactly and Encode of
//     that reproduces the same bytes.
//
// The original buffer is not required to re-encode byte-identically:
// Decode accepts non-canonical forms (duplicate prefixes, junk in ignored
// operand nibbles) that Encode normalizes, which is why the round trip is
// checked on the re-encoded bytes rather than the raw input.
func FuzzDecode(f *testing.F) {
	// Seed with canonical encodings spanning every opcode and format, then
	// a handful of known-malformed shapes so the error paths start covered.
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 256; i++ {
		if enc, err := Encode(nil, randomInst(r)); err == nil {
			f.Add(enc)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{PrefixREP})
	f.Add([]byte{PrefixREP, PrefixLock, PrefixREP, byte(OpMovs)})
	f.Add([]byte{escapeByte})
	f.Add([]byte{escapeByte, 0xEE})
	f.Add([]byte{byte(OpMovRI), 0x10, 1, 2})

	f.Fuzz(func(t *testing.T, buf []byte) {
		inst, err := Decode(buf, 0x1234)
		if err != nil {
			if inst != (Inst{}) {
				t.Fatalf("Decode(% x) returned non-zero Inst %+v alongside error %v", buf, inst, err)
			}
			return
		}
		if inst.Size <= 0 || inst.Size > MaxInstLen || inst.Size > len(buf) {
			t.Fatalf("Decode(% x) reported Size %d outside [1, min(%d, len))", buf, inst.Size, MaxInstLen)
		}
		enc, err := Encode(nil, inst)
		if err != nil {
			t.Fatalf("Encode(Decode(% x)) = %+v failed: %v", buf, inst, err)
		}
		again, err := Decode(enc, 0x1234)
		if err != nil {
			t.Fatalf("re-Decode(% x) of %+v failed: %v", enc, inst, err)
		}
		// Canonical encodings may be shorter than the fuzzed input (e.g.
		// a doubled prefix collapses), so compare modulo Size.
		inst.Size = len(enc)
		if again != inst {
			t.Fatalf("re-decode mismatch:\n got %+v\nwant %+v", again, inst)
		}
		enc2, err := Encode(nil, again)
		if err != nil {
			t.Fatalf("Encode(%+v) failed on second pass: %v", again, err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("Encode not a fixed point: % x vs % x", enc, enc2)
		}
	})
}
