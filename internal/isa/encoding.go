package isa

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Inst is one decoded FISA instruction. The zero value is an invalid
// instruction; Decode and the assembler produce well-formed values.
type Inst struct {
	Op   Op
	Rd   Reg   // destination / first operand register
	Rs   Reg   // source / second operand register (also base for FmtRM in Rs)
	Imm  int64 // immediate, sign-extended; float64 bits for FmtFI64
	Disp int32 // displacement for FmtRM
	Size int   // encoded length in bytes, including prefixes
	Rep  bool  // PrefixREP present
	Lock bool  // PrefixLock present
}

// Info returns the static opcode description for the instruction.
func (i Inst) Info() Info { return Lookup(i.Op) }

// Float returns the FmtFI64 immediate as a float64.
func (i Inst) Float() float64 { return math.Float64frombits(uint64(i.Imm)) }

func (i Inst) String() string {
	in := i.Info()
	pre := ""
	if i.Rep {
		pre = "rep "
	}
	switch in.Format {
	case FmtNone:
		return pre + in.Name
	case FmtR:
		return fmt.Sprintf("%s%s %s", pre, in.Name, i.Rd)
	case FmtRR:
		return fmt.Sprintf("%s%s %s, %s", pre, in.Name, i.Rd, i.Rs)
	case FmtRI8, FmtRI32:
		return fmt.Sprintf("%s%s %s, %d", pre, in.Name, i.Rd, i.Imm)
	case FmtRM:
		return fmt.Sprintf("%s%s %s, [%s%+d]", pre, in.Name, i.Rd, i.Rs, i.Disp)
	case FmtRel16:
		return fmt.Sprintf("%s%s %+d", pre, in.Name, i.Imm)
	case FmtI8R:
		return fmt.Sprintf("%s%s %s, cr%d", pre, in.Name, i.Rd, i.Imm)
	case FmtI16R:
		return fmt.Sprintf("%s%s %s, port %d", pre, in.Name, i.Rd, i.Imm)
	case FmtFI64:
		return fmt.Sprintf("%s%s %s, %g", pre, in.Name, i.Rd, i.Float())
	case FmtI32:
		return fmt.Sprintf("%s%s %#x", pre, in.Name, uint32(i.Imm))
	}
	return pre + in.Name + " ?"
}

// MaxInstLen is the longest legal encoding (REP + escape + FmtFI64).
const MaxInstLen = 15

// regPair packs two register names into one operand byte. FP registers are
// encoded by their low three bits; the opcode determines the bank.
func regPair(rd, rs Reg) byte {
	return byte(rd&0x0F)<<4 | byte(rs&0x0F)
}

// Encode appends the binary encoding of inst to dst and returns the extended
// slice. It returns an error for operands that do not fit the format.
func Encode(dst []byte, inst Inst) ([]byte, error) {
	in := Lookup(inst.Op)
	if inst.Rep {
		dst = append(dst, PrefixREP)
	}
	if inst.Lock {
		dst = append(dst, PrefixLock)
	}
	if inst.Op >= opSecondaryBase {
		dst = append(dst, escapeByte, byte(inst.Op-opSecondaryBase))
	} else {
		dst = append(dst, byte(inst.Op))
	}
	switch in.Format {
	case FmtNone:
	case FmtR:
		dst = append(dst, regPair(inst.Rd, 0))
	case FmtRR, FmtRM:
		dst = append(dst, regPair(inst.Rd, inst.Rs))
	case FmtRI8, FmtI8R:
		if inst.Imm < -128 || inst.Imm > 255 {
			return nil, fmt.Errorf("isa: %s immediate %d out of 8-bit range", in.Name, inst.Imm)
		}
		dst = append(dst, regPair(inst.Rd, 0), byte(inst.Imm))
	case FmtRI32:
		dst = append(dst, regPair(inst.Rd, 0))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(inst.Imm))
	case FmtRel16:
		if inst.Imm < math.MinInt16 || inst.Imm > math.MaxInt16 {
			return nil, fmt.Errorf("isa: %s displacement %d out of 16-bit range", in.Name, inst.Imm)
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(inst.Imm))
	case FmtI16R:
		if inst.Imm < 0 || inst.Imm > math.MaxUint16 {
			return nil, fmt.Errorf("isa: %s port %d out of 16-bit range", in.Name, inst.Imm)
		}
		dst = append(dst, regPair(inst.Rd, 0))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(inst.Imm))
	case FmtFI64:
		dst = append(dst, regPair(inst.Rd, 0))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(inst.Imm))
	case FmtI32:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(inst.Imm))
	default:
		return nil, fmt.Errorf("isa: %s has unknown format %d", in.Name, in.Format)
	}
	if in.Format == FmtRM {
		if inst.Disp < math.MinInt16 || inst.Disp > math.MaxInt16 {
			return nil, fmt.Errorf("isa: %s displacement %d out of 16-bit range", in.Name, inst.Disp)
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(inst.Disp))
	}
	return dst, nil
}

// DecodeError describes a malformed instruction encountered by Decode.
type DecodeError struct {
	PC     Word
	Reason string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("isa: decode fault at %#x: %s", e.PC, e.Reason)
}

// Decode decodes the instruction starting at buf[0]. pc is used only for
// error reporting. A short buffer or an undefined opcode yields a
// *DecodeError, which the functional model turns into an illegal-instruction
// exception. On error the returned Inst is always the zero value — callers
// must never see a partially-populated instruction next to a non-nil error.
func Decode(buf []byte, pc Word) (Inst, error) {
	inst := Inst{Rd: RegNone, Rs: RegNone}
	i := 0
	for i < len(buf) {
		switch buf[i] {
		case PrefixREP:
			inst.Rep = true
			i++
			continue
		case PrefixLock:
			inst.Lock = true
			i++
			continue
		}
		break
	}
	if i > 2 {
		return Inst{}, &DecodeError{PC: pc, Reason: "too many prefixes"}
	}
	if i >= len(buf) {
		return Inst{}, &DecodeError{PC: pc, Reason: "truncated instruction"}
	}
	if buf[i] == escapeByte {
		i++
		if i >= len(buf) {
			return Inst{}, &DecodeError{PC: pc, Reason: "truncated escape opcode"}
		}
		inst.Op = opSecondaryBase + Op(buf[i])
	} else {
		inst.Op = Op(buf[i])
	}
	i++
	if !Valid(inst.Op) {
		return Inst{}, &DecodeError{PC: pc, Reason: fmt.Sprintf("undefined opcode %#x", uint16(inst.Op))}
	}
	in := infoTable[inst.Op]
	need := func(n int) error {
		if i+n > len(buf) {
			return &DecodeError{PC: pc, Reason: "truncated operands"}
		}
		return nil
	}
	fpBank := in.FP && in.Format != FmtRM // FmtRM mixes an FP data reg with a GPR base

	readPair := func(fpRd, fpRs bool) {
		b := buf[i]
		i++
		inst.Rd = Reg(b >> 4)
		inst.Rs = Reg(b & 0x0F)
		if fpRd {
			inst.Rd = FPRBase + (inst.Rd & 0x07)
		}
		if fpRs {
			inst.Rs = FPRBase + (inst.Rs & 0x07)
		}
	}

	switch in.Format {
	case FmtNone:
	case FmtR:
		if err := need(1); err != nil {
			return Inst{}, err
		}
		readPair(fpBank, false)
		inst.Rs = RegNone
	case FmtRR:
		if err := need(1); err != nil {
			return Inst{}, err
		}
		// I2F reads a GPR source; F2I writes a GPR destination.
		switch inst.Op {
		case OpI2F:
			readPair(true, false)
		case OpF2I:
			readPair(false, true)
		default:
			readPair(fpBank, fpBank)
		}
	case FmtRI8, FmtI8R:
		if err := need(2); err != nil {
			return Inst{}, err
		}
		readPair(fpBank, false)
		inst.Rs = RegNone
		if in.Format == FmtRI8 {
			inst.Imm = int64(int8(buf[i]))
		} else {
			inst.Imm = int64(buf[i])
		}
		i++
	case FmtRI32:
		if err := need(5); err != nil {
			return Inst{}, err
		}
		readPair(fpBank, false)
		inst.Rs = RegNone
		inst.Imm = int64(int32(binary.LittleEndian.Uint32(buf[i:])))
		i += 4
	case FmtRM:
		if err := need(3); err != nil {
			return Inst{}, err
		}
		readPair(in.FP, false) // Rd may be FP (FLd/FSt); base Rs is a GPR
		inst.Disp = int32(int16(binary.LittleEndian.Uint16(buf[i:])))
		i += 2
	case FmtRel16:
		if err := need(2); err != nil {
			return Inst{}, err
		}
		inst.Rd, inst.Rs = RegNone, RegNone
		inst.Imm = int64(int16(binary.LittleEndian.Uint16(buf[i:])))
		i += 2
	case FmtI16R:
		if err := need(3); err != nil {
			return Inst{}, err
		}
		readPair(false, false)
		inst.Rs = RegNone
		inst.Imm = int64(binary.LittleEndian.Uint16(buf[i:]))
		i += 2
	case FmtFI64:
		if err := need(9); err != nil {
			return Inst{}, err
		}
		readPair(true, false)
		inst.Rs = RegNone
		inst.Imm = int64(binary.LittleEndian.Uint64(buf[i:]))
		i += 8
	case FmtI32:
		if err := need(4); err != nil {
			return Inst{}, err
		}
		inst.Rd, inst.Rs = RegNone, RegNone
		inst.Imm = int64(binary.LittleEndian.Uint32(buf[i:]))
		i += 4
	}
	inst.Size = i
	if inst.Size > MaxInstLen {
		return Inst{}, &DecodeError{PC: pc, Reason: "instruction longer than 15 bytes"}
	}
	return inst, nil
}
