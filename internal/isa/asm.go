package isa

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Program is an assembled FISA image: a contiguous byte range loaded at Base.
type Program struct {
	Base    Word
	Code    []byte
	Entry   Word
	Symbols map[string]Word
}

// End returns the first address past the image.
func (p *Program) End() Word { return p.Base + Word(len(p.Code)) }

// AsmError reports an assembly failure with its source line.
type AsmError struct {
	Line int
	Text string
	Err  error
}

func (e *AsmError) Error() string {
	return fmt.Sprintf("asm: line %d (%q): %v", e.Line, e.Text, e.Err)
}

func (e *AsmError) Unwrap() error { return e.Err }

// Assemble translates FISA assembly source into a Program loaded at base.
//
// Syntax, one statement per line:
//
//	label:            ; trailing comments with ';' or '#'
//	    movi r0, 42
//	    ldw  r1, [r2+8]
//	    jz   label
//	    rep movs
//	    fldi f0, 2.5
//	.org 0x100        ; move location counter forward (zero fill)
//	.entry label      ; program entry point (default: base)
//	.equ NAME, 123
//	.word 1, sym, 'c' ; 32-bit little-endian words
//	.half 1, 2
//	.byte 1, 2
//	.ascii "text"     ; .asciz appends a NUL
//	.space 64
//	.align 4
//
// Register operands: r0..r15, sp, lr, f0..f7. Immediates: decimal, 0x hex,
// 'c' characters, or symbol names (resolved in pass two). Branch operands
// are labels; the assembler computes the rel16 displacement.
func Assemble(src string, base Word) (*Program, error) {
	a := &assembler{
		base:    base,
		symbols: make(map[string]Word),
		entry:   base,
	}
	// Pass 1: assign addresses to labels. Pass 2: emit bytes.
	for pass := 1; pass <= 2; pass++ {
		a.pass = pass
		a.pc = base
		a.out = a.out[:0]
		for lineNo, raw := range strings.Split(src, "\n") {
			if err := a.line(raw); err != nil {
				return nil, &AsmError{Line: lineNo + 1, Text: strings.TrimSpace(raw), Err: err}
			}
		}
	}
	return &Program{Base: base, Code: a.out, Entry: a.entry, Symbols: a.symbols}, nil
}

// MustAssemble is Assemble for statically known-good sources (the toyOS
// kernel, workload programs); it panics on error.
func MustAssemble(src string, base Word) *Program {
	p, err := Assemble(src, base)
	if err != nil {
		panic(err)
	}
	return p
}

type assembler struct {
	base    Word
	pc      Word
	pass    int
	out     []byte
	symbols map[string]Word
	entry   Word
}

func (a *assembler) emit(b ...byte) {
	a.out = append(a.out, b...)
	a.pc += Word(len(b))
}

func (a *assembler) line(raw string) error {
	s := strings.TrimSpace(stripComment(raw))
	if s == "" {
		return nil
	}
	// Labels, possibly several on one line.
	for {
		i := strings.Index(s, ":")
		if i < 0 || strings.ContainsAny(s[:i], " \t\"'[,") {
			break
		}
		name := s[:i]
		if a.pass == 1 {
			if _, dup := a.symbols[name]; dup {
				return fmt.Errorf("duplicate label %q", name)
			}
			a.symbols[name] = a.pc
		}
		s = strings.TrimSpace(s[i+1:])
		if s == "" {
			return nil
		}
	}
	if strings.HasPrefix(s, ".") {
		return a.directive(s)
	}
	return a.instruction(s)
}

func stripComment(s string) string {
	inStr, inChr := false, false
	for i := 0; i < len(s); i++ {
		switch {
		case inStr:
			if s[i] == '"' {
				inStr = false
			}
		case inChr:
			if s[i] == '\'' {
				inChr = false
			}
		case s[i] == '"':
			inStr = true
		case s[i] == '\'':
			inChr = true
		case s[i] == ';' || s[i] == '#':
			return s[:i]
		}
	}
	return s
}

func (a *assembler) directive(s string) error {
	name, rest, _ := strings.Cut(s, " ")
	rest = strings.TrimSpace(rest)
	switch name {
	case ".org":
		v, err := a.value(rest)
		if err != nil {
			return err
		}
		target := Word(v)
		if target < a.pc {
			return fmt.Errorf(".org %#x moves backwards from %#x", target, a.pc)
		}
		for a.pc < target {
			a.emit(0)
		}
	case ".entry":
		if a.pass == 2 {
			v, err := a.value(rest)
			if err != nil {
				return err
			}
			a.entry = Word(v)
		}
	case ".equ":
		parts := splitOperands(rest)
		if len(parts) != 2 {
			return fmt.Errorf(".equ wants NAME, value")
		}
		if a.pass == 1 {
			v, err := a.value(parts[1])
			if err != nil {
				return err
			}
			a.symbols[parts[0]] = Word(v)
		}
	case ".word", ".half", ".byte":
		size := map[string]int{".word": 4, ".half": 2, ".byte": 1}[name]
		for _, f := range splitOperands(rest) {
			v, err := a.valueOrZero(f)
			if err != nil {
				return err
			}
			for k := 0; k < size; k++ {
				a.emit(byte(v >> (8 * k)))
			}
		}
	case ".ascii", ".asciz":
		str, err := strconv.Unquote(rest)
		if err != nil {
			return fmt.Errorf("bad string %s: %v", rest, err)
		}
		a.emit([]byte(str)...)
		if name == ".asciz" {
			a.emit(0)
		}
	case ".space":
		v, err := a.value(rest)
		if err != nil {
			return err
		}
		for k := int64(0); k < v; k++ {
			a.emit(0)
		}
	case ".align":
		v, err := a.value(rest)
		if err != nil {
			return err
		}
		if v <= 0 || v&(v-1) != 0 {
			return fmt.Errorf(".align %d is not a power of two", v)
		}
		for a.pc%Word(v) != 0 {
			a.emit(0)
		}
	default:
		return fmt.Errorf("unknown directive %s", name)
	}
	return nil
}

func (a *assembler) instruction(s string) error {
	var inst Inst
	mnem, rest, _ := strings.Cut(s, " ")
	mnem = strings.ToLower(mnem)
	for {
		switch mnem {
		case "rep", "repe":
			inst.Rep = true
		case "lock":
			inst.Lock = true
		default:
			goto resolved
		}
		mnem, rest, _ = strings.Cut(strings.TrimSpace(rest), " ")
		mnem = strings.ToLower(mnem)
	}
resolved:
	op, ok := ByName(mnem)
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnem)
	}
	inst.Op = op
	in := Lookup(op)
	ops := splitOperands(strings.TrimSpace(rest))
	var err error
	switch in.Format {
	case FmtNone:
		if len(ops) != 0 {
			return fmt.Errorf("%s takes no operands", mnem)
		}
	case FmtR:
		if err = a.wantOps(mnem, ops, 1); err != nil {
			return err
		}
		if inst.Rd, err = parseReg(ops[0]); err != nil {
			return err
		}
	case FmtRR:
		if err = a.wantOps(mnem, ops, 2); err != nil {
			return err
		}
		if inst.Rd, err = parseReg(ops[0]); err != nil {
			return err
		}
		if inst.Rs, err = parseReg(ops[1]); err != nil {
			return err
		}
	case FmtRI8, FmtRI32:
		if err = a.wantOps(mnem, ops, 2); err != nil {
			return err
		}
		if inst.Rd, err = parseReg(ops[0]); err != nil {
			return err
		}
		if inst.Imm, err = a.valueOrZero(ops[1]); err != nil {
			return err
		}
	case FmtRM:
		if err = a.wantOps(mnem, ops, 2); err != nil {
			return err
		}
		// Data register first for both loads and stores: ldw r1, [r2+8]
		// and stw r1, [r2+8].
		if inst.Rd, err = parseReg(ops[0]); err != nil {
			return err
		}
		base, disp, merr := a.parseMem(ops[1])
		if merr != nil {
			return merr
		}
		inst.Rs, inst.Disp = base, disp
	case FmtRel16:
		if err = a.wantOps(mnem, ops, 1); err != nil {
			return err
		}
		v, verr := a.valueOrZero(ops[0])
		if verr != nil {
			return verr
		}
		// Displacement is relative to the next instruction; the length of
		// a FmtRel16 instruction is fixed, so this is known in pass 1 too.
		next := int64(a.pc) + int64(encodedLen(inst))
		inst.Imm = v - next
		if a.pass == 2 && (inst.Imm < math.MinInt16 || inst.Imm > math.MaxInt16) {
			return fmt.Errorf("branch target %#x out of rel16 range from %#x", v, a.pc)
		}
		if a.pass == 1 {
			inst.Imm = 0 // symbol may be undefined yet
		}
	case FmtI8R, FmtI16R:
		if err = a.wantOps(mnem, ops, 2); err != nil {
			return err
		}
		if inst.Rd, err = parseReg(ops[0]); err != nil {
			return err
		}
		sel := ops[1]
		// Control registers may be written as cr0..cr7.
		if in.Format == FmtI8R && len(sel) > 2 && strings.HasPrefix(strings.ToLower(sel), "cr") {
			sel = sel[2:]
		}
		if inst.Imm, err = a.valueOrZero(sel); err != nil {
			return err
		}
	case FmtFI64:
		if err = a.wantOps(mnem, ops, 2); err != nil {
			return err
		}
		if inst.Rd, err = parseReg(ops[0]); err != nil {
			return err
		}
		f, ferr := strconv.ParseFloat(ops[1], 64)
		if ferr != nil {
			return fmt.Errorf("bad float %q: %v", ops[1], ferr)
		}
		inst.Imm = int64(math.Float64bits(f))
	case FmtI32:
		if err = a.wantOps(mnem, ops, 1); err != nil {
			return err
		}
		if inst.Imm, err = a.valueOrZero(ops[0]); err != nil {
			return err
		}
	}
	if a.pass == 1 {
		a.pc += Word(encodedLen(inst))
		return nil
	}
	buf, eerr := Encode(nil, inst)
	if eerr != nil {
		return eerr
	}
	a.emit(buf...)
	return nil
}

func (a *assembler) wantOps(mnem string, ops []string, n int) error {
	if len(ops) != n {
		return fmt.Errorf("%s wants %d operands, got %d", mnem, n, len(ops))
	}
	return nil
}

// encodedLen returns the byte length of inst without encoding it. Lengths
// depend only on the format, so pass 1 can lay out labels exactly.
func encodedLen(inst Inst) int {
	n := 1
	if inst.Rep {
		n++
	}
	if inst.Lock {
		n++
	}
	if inst.Op >= opSecondaryBase {
		n++
	}
	switch Lookup(inst.Op).Format {
	case FmtNone:
	case FmtR, FmtRR:
		n++
	case FmtRI8, FmtI8R, FmtRel16:
		n += 2
	case FmtRM, FmtI16R:
		n += 3
	case FmtI32:
		n += 4
	case FmtRI32:
		n += 5
	case FmtFI64:
		n += 9
	}
	return n
}

func (a *assembler) parseMem(s string) (base Reg, disp int32, err error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	sign := int64(1)
	regPart, dispPart := inner, ""
	if i := strings.IndexAny(inner, "+-"); i > 0 {
		if inner[i] == '-' {
			sign = -1
		}
		regPart, dispPart = inner[:i], inner[i+1:]
	}
	base, err = parseReg(strings.TrimSpace(regPart))
	if err != nil {
		return 0, 0, err
	}
	if dispPart != "" {
		v, verr := a.valueOrZero(strings.TrimSpace(dispPart))
		if verr != nil {
			return 0, 0, verr
		}
		disp = int32(sign * v)
	}
	return base, disp, nil
}

func parseReg(s string) (Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	switch s {
	case "sp":
		return RegSP, nil
	case "lr":
		return RegLR, nil
	}
	if len(s) >= 2 && (s[0] == 'r' || s[0] == 'f') {
		n, err := strconv.Atoi(s[1:])
		if err == nil {
			if s[0] == 'r' && n >= 0 && n < NumGPR {
				return Reg(n), nil
			}
			if s[0] == 'f' && n >= 0 && n < NumFPR {
				return FP(n), nil
			}
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

// value resolves a numeric or symbolic expression; the symbol must exist.
func (a *assembler) value(s string) (int64, error) {
	v, ok, err := a.eval(s)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("undefined symbol %q", s)
	}
	return v, nil
}

// valueOrZero resolves like value but tolerates undefined symbols in pass 1
// (forward references), returning 0 for them.
func (a *assembler) valueOrZero(s string) (int64, error) {
	v, ok, err := a.eval(s)
	if err != nil {
		return 0, err
	}
	if !ok {
		if a.pass == 2 {
			return 0, fmt.Errorf("undefined symbol %q", s)
		}
		return 0, nil
	}
	return v, nil
}

func (a *assembler) eval(s string) (v int64, defined bool, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false, fmt.Errorf("empty operand")
	}
	if s == "." {
		return int64(a.pc), true, nil
	}
	if len(s) >= 3 && s[0] == '\'' {
		c, err := strconv.Unquote(s)
		if err != nil || len(c) != 1 {
			return 0, false, fmt.Errorf("bad char literal %s", s)
		}
		return int64(c[0]), true, nil
	}
	// symbol+literal / symbol-literal arithmetic.
	if i := lastSignIndex(s); i > 0 {
		lhs, lok, lerr := a.eval(s[:i])
		if lerr != nil {
			return 0, false, lerr
		}
		rhs, rok, rerr := a.eval(s[i+1:])
		if rerr != nil {
			return 0, false, rerr
		}
		if s[i] == '-' {
			rhs = -rhs
		}
		return lhs + rhs, lok && rok, nil
	}
	if n, err := strconv.ParseInt(s, 0, 64); err == nil {
		return n, true, nil
	}
	if n, err := strconv.ParseUint(s, 0, 64); err == nil {
		return int64(n), true, nil
	}
	if sym, ok := a.symbols[s]; ok {
		return int64(sym), true, nil
	}
	if isIdent(s) {
		return 0, false, nil
	}
	return 0, false, fmt.Errorf("bad value %q", s)
}

// lastSignIndex finds a top-level +/- that separates two terms (not a
// leading sign, not inside 0x numbers' 'x').
func lastSignIndex(s string) int {
	for i := len(s) - 1; i > 0; i-- {
		if s[i] == '+' || s[i] == '-' {
			prev := s[i-1]
			if prev == '+' || prev == '-' || prev == 'e' || prev == 'E' {
				continue // exponent or double sign
			}
			return i
		}
	}
	return -1
}

func isIdent(s string) bool {
	for i, r := range s {
		switch {
		case r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z':
		case i > 0 && r >= '0' && r <= '9':
		default:
			return false
		}
	}
	return len(s) > 0 && !(s[0] >= '0' && s[0] <= '9')
}

// splitOperands splits a comma-separated operand list, respecting brackets
// and quotes.
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	inStr, inChr := false, false
	start := 0
	for i := 0; i < len(s); i++ {
		switch {
		case inStr:
			if s[i] == '"' {
				inStr = false
			}
		case inChr:
			if s[i] == '\'' {
				inChr = false
			}
		case s[i] == '"':
			inStr = true
		case s[i] == '\'':
			inChr = true
		case s[i] == '[':
			depth++
		case s[i] == ']':
			depth--
		case s[i] == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}
