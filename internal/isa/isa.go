// Package isa defines FISA, the target instruction-set architecture used by
// the FAST reproduction.
//
// FISA is a deliberately CISC-flavoured 32-bit ISA: instructions are variable
// length (1 to 15 bytes), carry condition codes, include REP-prefixed string
// instructions that can loop for hundreds of operations, and require a
// software-filled TLB — the properties of x86 that the FAST paper leans on
// (instruction cracking into µops, trace compression, software TLB entries in
// the trace). The package provides the architectural definition (registers,
// opcodes, flags), a binary encoder/decoder, and a small assembler used to
// build the toyOS kernel and the synthetic workloads.
package isa

import "fmt"

// Word is the natural machine word of the target.
type Word = uint32

// Architectural general-purpose registers. R13 is the conventional stack
// pointer, R14 the link register; R15 is a plain GPR.
const (
	NumGPR = 16
	NumFPR = 8

	RegSP = 13 // stack pointer by software convention
	RegLR = 14 // link register by software convention
)

// Reg names a general-purpose register (0..15) or, with the FPR bit set, a
// floating-point register (F0..F7).
type Reg uint8

// RegNone marks an unused register slot in decoded instructions and trace
// entries.
const RegNone Reg = 0xFF

// FPRBase offsets floating-point register names so that integer and FP
// registers share one namespace in trace entries.
const FPRBase Reg = 0x20

// FP returns the register name of floating-point register i.
func FP(i int) Reg { return FPRBase + Reg(i) }

// IsFP reports whether r names a floating-point register.
func (r Reg) IsFP() bool { return r >= FPRBase && r < FPRBase+NumFPR }

func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "-"
	case r.IsFP():
		return fmt.Sprintf("F%d", r-FPRBase)
	case r == RegSP:
		return "SP"
	case r == RegLR:
		return "LR"
	case int(r) < NumGPR:
		return fmt.Sprintf("R%d", r)
	default:
		return fmt.Sprintf("R?%d", uint8(r))
	}
}

// Condition-code flag bits held in the FLAGS register.
const (
	FlagZ Word = 1 << 0 // zero
	FlagN Word = 1 << 1 // negative
	FlagC Word = 1 << 2 // carry
	FlagV Word = 1 << 3 // overflow
	FlagI Word = 1 << 4 // interrupts enabled
	FlagU Word = 1 << 5 // user mode (0 = kernel)
)

// Control registers, written via MOVCR/MOVRC in kernel mode.
const (
	CRIVT     = 0 // interrupt vector table base (physical)
	CRPaging  = 1 // nonzero enables TLB translation in user mode
	CRFaultVA = 2 // faulting virtual address of the last TLB miss
	CRKSP     = 3 // kernel scratch (by convention, the kernel stack top)
	CRCycles  = 4 // free-running retired-instruction counter (read-only)
	CREPC     = 5 // trap: PC to return to
	CREFLAGS  = 6 // trap: saved FLAGS
	CRECause  = 7 // trap: vector number
	NumCR     = 8
)

// CRCpuID is a read-only pseudo control register holding the core's id in a
// multicore target (0 on core 0 and on every single-core target). It sits
// above NumCR so it occupies no slot in the writable CR file: MOVRC
// special-cases it like CRCycles, and a MOVCR to it is ignored by the
// NumCR bound check.
const CRCpuID = 8

// Vector numbers in the interrupt vector table. Vectors 0..15 are exceptions
// raised by instruction execution; 16..31 are external interrupts delivered
// by the interrupt controller.
const (
	VecReset     = 0
	VecIllegal   = 1
	VecDivZero   = 2
	VecTLBMiss   = 3
	VecProt      = 4
	VecSyscall   = 5
	VecBreak     = 6
	VecAlign     = 7
	VecFPError   = 8
	VecIRQBase   = 16
	VecTimer     = VecIRQBase + 0
	VecDisk      = VecIRQBase + 1
	VecConsole   = VecIRQBase + 2
	VecNIC       = VecIRQBase + 3
	NumVectors   = 32
	VectorStride = 4 // bytes per IVT slot (each holds a handler PC)
)

// Op is a FISA opcode. Opcodes occupy 8 bits in the primary map; opcode
// 0xFF escapes to a secondary map (two-byte opcodes), mirroring x86's
// escape-byte structure so that the ISA has >256 nameable operations and the
// trace layer has something real to compress into 11 bits.
type Op uint16

// Primary one-byte opcode map. Opcode 0 is deliberately reserved/invalid so
// that execution of zero-filled memory faults instead of sliding through a
// NOP sled.
const (
	opReserved Op = iota
	OpNop
	OpHalt
	OpMovRR  // rd <- rs
	OpMovRI  // rd <- imm32
	OpMovRI8 // rd <- sext(imm8)
	OpAddRR  // rd <- rd + rs, sets flags
	OpAddRI  // rd <- rd + imm32
	OpSubRR
	OpSubRI
	OpAndRR
	OpAndRI
	OpOrRR
	OpOrRI
	OpXorRR
	OpXorRI
	OpShlRR
	OpShlRI8
	OpShrRR
	OpShrRI8
	OpSarRR
	OpSarRI8
	OpMulRR // 32x32 -> low 32
	OpDivRR // rd <- rd / rs ; raises #DE on rs==0
	OpModRR
	OpNegR
	OpNotR
	OpIncR
	OpDecR
	OpCmpRR // flags <- rd - rs
	OpCmpRI
	OpTestRR // flags <- rd & rs
	OpLea    // rd <- rb + disp16
	OpLdW    // rd <- mem32[rb + disp16]
	OpLdH    // rd <- zext(mem16[rb + disp16])
	OpLdB    // rd <- zext(mem8[rb + disp16])
	OpStW    // mem32[rb + disp16] <- rs
	OpStH
	OpStB
	OpPush // mem32[--SP] <- rs
	OpPop  // rd <- mem32[SP++]
	OpJmp  // pc <- pc + rel16 (relative to next instruction)
	OpJz
	OpJnz
	OpJl  // signed less (N != V)
	OpJge // signed >=
	OpJg  // signed >
	OpJle // signed <=
	OpJc
	OpJnc
	OpJmpR  // pc <- rs (indirect)
	OpCall  // LR <- next pc; pc <- pc + rel16
	OpCallR // LR <- next pc; pc <- rs
	OpRet   // pc <- LR
	OpLoop  // R2--; if R2 != 0 jump rel16 (x86 LOOP with its implicit count register)
	OpMovs  // mem8[R1++] <- mem8[R0++]; with REP repeats R2 times
	OpStos  // mem8[R1++] <- low8(R3); with REP repeats R2 times
	OpLods  // R3 <- mem8[R0++]; with REP repeats R2 times
	OpCmps  // flags <- mem8[R0++] - mem8[R1++]; REPE loops while equal
	OpScas  // flags <- low8(R3) - mem8[R1++]; REPE loops while equal
	OpSyscall
	OpIret
	OpCli
	OpSti
	OpTlbWr // write TLB entry: VPN in rd, PFN|perm in rs (kernel only)
	OpTlbFl // flush entire TLB (kernel only)
	OpMovCR // CR[imm8] <- rs (kernel only)
	OpMovRC // rd <- CR[imm8] (kernel only)
	OpIn    // rd <- io[imm16]
	OpOut   // io[imm16] <- rs
	OpBreak // breakpoint trap
	OpCpuid // rd <- ISA identification constant
	OpPause // spin-loop hint; no architectural effect
	OpLl    // rd <- mem32[rb + disp16], acquiring a load-link reservation
	OpSc    // store-conditional: if the reservation holds, mem32[rb+disp16] <- rd, rd <- 1; else rd <- 0. Sets Z from rd.
	numPrimary
)

// Secondary (escape 0xFF) opcode map: floating point and long-immediate
// forms. These are the instructions the prototype's microcode compiler only
// partially covers (Table 1's FP coverage story).
const (
	opSecondaryBase Op = 0x100

	OpFAdd Op = opSecondaryBase + iota // fd <- fd + fs
	OpFSub
	OpFMul
	OpFDiv // raises #FP on fs == 0
	OpFSqrt
	OpFAbs
	OpFNeg
	OpFMov
	OpFCmp   // flags <- compare(fd, fs)
	OpFLd    // fd <- mem64[rb + disp16]
	OpFSt    // mem64[rb + disp16] <- fs
	OpFLdI   // fd <- immediate float64 (8-byte immediate; a 10-15 byte inst)
	OpI2F    // fd <- float64(rs)
	OpF2I    // rd <- int32(fs)
	OpJmpFar // pc <- imm32 absolute (5-byte + escape = 6-byte inst)
	OpCallFar
	numSecondaryEnd
)

// NumOpcodes is the size of a dense opcode table covering both maps.
const NumOpcodes = int(numSecondaryEnd)

// Prefix bytes. PrefixREP turns the string instructions into data-dependent
// loops; PrefixLock is accepted and ignored (uniprocessor target).
const (
	PrefixREP  byte = 0xF0
	PrefixLock byte = 0xF1
	escapeByte byte = 0xFF
)

// Format describes how an opcode's operands are encoded.
type Format uint8

const (
	FmtNone  Format = iota // op
	FmtRR                  // op, rd<<4|rs
	FmtR                   // op, rd<<4
	FmtRI8                 // op, rd<<4, imm8
	FmtRI32                // op, rd<<4, imm32le
	FmtRM                  // op, rd<<4|rb, disp16le
	FmtRel16               // op, rel16le
	FmtI8R                 // op, rd<<4, imm8  (MovCR/MovRC: imm selects CR)
	FmtI16R                // op, rd<<4, imm16le (In/Out port forms)
	FmtFI64                // op, fd<<4, imm64le (FLdI)
	FmtI32                 // op, imm32le (far jumps)
)

// Class buckets opcodes by the functional-unit resource they consume in the
// timing model.
type Class uint8

const (
	ClassALU Class = iota
	ClassLoad
	ClassStore
	ClassBranch
	ClassFPU
	ClassSystem
	ClassString // cracked into many µops; uses Load+Store+ALU resources
	NumClasses
)

func (c Class) String() string {
	switch c {
	case ClassALU:
		return "alu"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassFPU:
		return "fpu"
	case ClassSystem:
		return "system"
	case ClassString:
		return "string"
	}
	return "?"
}

// Info is the static description of one opcode.
type Info struct {
	Op       Op
	Name     string
	Format   Format
	Class    Class
	Branch   bool // any control transfer
	Cond     bool // conditional control transfer
	FP       bool // floating-point unit instruction
	Priv     bool // kernel-mode only
	WritesCC bool
	ReadsCC  bool
}

var infoTable [NumOpcodes]Info

func define(op Op, name string, f Format, c Class, set func(*Info)) {
	in := Info{Op: op, Name: name, Format: f, Class: c}
	if set != nil {
		set(&in)
	}
	infoTable[op] = in
}

func init() {
	ccW := func(i *Info) { i.WritesCC = true }
	br := func(i *Info) { i.Branch = true }
	brc := func(i *Info) { i.Branch = true; i.Cond = true; i.ReadsCC = true }
	priv := func(i *Info) { i.Priv = true }
	fp := func(i *Info) { i.FP = true }

	define(OpNop, "nop", FmtNone, ClassALU, nil)
	define(OpHalt, "halt", FmtNone, ClassSystem, priv)
	define(OpMovRR, "mov", FmtRR, ClassALU, nil)
	define(OpMovRI, "movi", FmtRI32, ClassALU, nil)
	define(OpMovRI8, "movi8", FmtRI8, ClassALU, nil)
	define(OpAddRR, "add", FmtRR, ClassALU, ccW)
	define(OpAddRI, "addi", FmtRI32, ClassALU, ccW)
	define(OpSubRR, "sub", FmtRR, ClassALU, ccW)
	define(OpSubRI, "subi", FmtRI32, ClassALU, ccW)
	define(OpAndRR, "and", FmtRR, ClassALU, ccW)
	define(OpAndRI, "andi", FmtRI32, ClassALU, ccW)
	define(OpOrRR, "or", FmtRR, ClassALU, ccW)
	define(OpOrRI, "ori", FmtRI32, ClassALU, ccW)
	define(OpXorRR, "xor", FmtRR, ClassALU, ccW)
	define(OpXorRI, "xori", FmtRI32, ClassALU, ccW)
	define(OpShlRR, "shl", FmtRR, ClassALU, ccW)
	define(OpShlRI8, "shli", FmtRI8, ClassALU, ccW)
	define(OpShrRR, "shr", FmtRR, ClassALU, ccW)
	define(OpShrRI8, "shri", FmtRI8, ClassALU, ccW)
	define(OpSarRR, "sar", FmtRR, ClassALU, ccW)
	define(OpSarRI8, "sari", FmtRI8, ClassALU, ccW)
	define(OpMulRR, "mul", FmtRR, ClassALU, ccW)
	define(OpDivRR, "div", FmtRR, ClassALU, ccW)
	define(OpModRR, "mod", FmtRR, ClassALU, ccW)
	define(OpNegR, "neg", FmtR, ClassALU, ccW)
	define(OpNotR, "not", FmtR, ClassALU, ccW)
	define(OpIncR, "inc", FmtR, ClassALU, ccW)
	define(OpDecR, "dec", FmtR, ClassALU, ccW)
	define(OpCmpRR, "cmp", FmtRR, ClassALU, ccW)
	define(OpCmpRI, "cmpi", FmtRI32, ClassALU, ccW)
	define(OpTestRR, "test", FmtRR, ClassALU, ccW)
	define(OpLea, "lea", FmtRM, ClassALU, nil)
	define(OpLdW, "ldw", FmtRM, ClassLoad, nil)
	define(OpLdH, "ldh", FmtRM, ClassLoad, nil)
	define(OpLdB, "ldb", FmtRM, ClassLoad, nil)
	define(OpStW, "stw", FmtRM, ClassStore, nil)
	define(OpStH, "sth", FmtRM, ClassStore, nil)
	define(OpStB, "stb", FmtRM, ClassStore, nil)
	define(OpPush, "push", FmtR, ClassStore, nil)
	define(OpPop, "pop", FmtR, ClassLoad, nil)
	define(OpJmp, "jmp", FmtRel16, ClassBranch, br)
	define(OpJz, "jz", FmtRel16, ClassBranch, brc)
	define(OpJnz, "jnz", FmtRel16, ClassBranch, brc)
	define(OpJl, "jl", FmtRel16, ClassBranch, brc)
	define(OpJge, "jge", FmtRel16, ClassBranch, brc)
	define(OpJg, "jg", FmtRel16, ClassBranch, brc)
	define(OpJle, "jle", FmtRel16, ClassBranch, brc)
	define(OpJc, "jc", FmtRel16, ClassBranch, brc)
	define(OpJnc, "jnc", FmtRel16, ClassBranch, brc)
	define(OpJmpR, "jmpr", FmtR, ClassBranch, br)
	define(OpCall, "call", FmtRel16, ClassBranch, br)
	define(OpCallR, "callr", FmtR, ClassBranch, br)
	define(OpRet, "ret", FmtNone, ClassBranch, br)
	define(OpLoop, "loop", FmtRel16, ClassBranch, func(i *Info) {
		i.Branch = true
		i.Cond = true // condition comes from the counter register, not CC
		i.WritesCC = true
	})
	define(OpMovs, "movs", FmtNone, ClassString, nil)
	define(OpStos, "stos", FmtNone, ClassString, nil)
	define(OpLods, "lods", FmtNone, ClassString, nil)
	define(OpCmps, "cmps", FmtNone, ClassString, ccW)
	define(OpScas, "scas", FmtNone, ClassString, ccW)
	define(OpSyscall, "syscall", FmtNone, ClassSystem, br)
	define(OpIret, "iret", FmtNone, ClassSystem, func(i *Info) {
		i.Branch = true
		i.Priv = true
	})
	define(OpCli, "cli", FmtNone, ClassSystem, priv)
	define(OpSti, "sti", FmtNone, ClassSystem, priv)
	define(OpTlbWr, "tlbwr", FmtRR, ClassSystem, priv)
	define(OpTlbFl, "tlbfl", FmtNone, ClassSystem, priv)
	define(OpMovCR, "movcr", FmtI8R, ClassSystem, priv)
	define(OpMovRC, "movrc", FmtI8R, ClassSystem, priv)
	define(OpIn, "in", FmtI16R, ClassSystem, priv)
	define(OpOut, "out", FmtI16R, ClassSystem, priv)
	define(OpBreak, "break", FmtNone, ClassSystem, br)
	define(OpCpuid, "cpuid", FmtR, ClassALU, nil)
	define(OpPause, "pause", FmtNone, ClassALU, nil)
	define(OpLl, "ll", FmtRM, ClassLoad, nil)
	define(OpSc, "sc", FmtRM, ClassStore, ccW)

	define(OpFAdd, "fadd", FmtRR, ClassFPU, func(i *Info) { fp(i); ccW(i) })
	define(OpFSub, "fsub", FmtRR, ClassFPU, func(i *Info) { fp(i); ccW(i) })
	define(OpFMul, "fmul", FmtRR, ClassFPU, func(i *Info) { fp(i); ccW(i) })
	define(OpFDiv, "fdiv", FmtRR, ClassFPU, func(i *Info) { fp(i); ccW(i) })
	define(OpFSqrt, "fsqrt", FmtRR, ClassFPU, fp)
	define(OpFAbs, "fabs", FmtRR, ClassFPU, fp)
	define(OpFNeg, "fneg", FmtRR, ClassFPU, fp)
	define(OpFMov, "fmov", FmtRR, ClassFPU, fp)
	define(OpFCmp, "fcmp", FmtRR, ClassFPU, func(i *Info) { fp(i); ccW(i) })
	define(OpFLd, "fld", FmtRM, ClassLoad, fp)
	define(OpFSt, "fst", FmtRM, ClassStore, fp)
	define(OpFLdI, "fldi", FmtFI64, ClassFPU, fp)
	define(OpI2F, "i2f", FmtRR, ClassFPU, fp)
	define(OpF2I, "f2i", FmtRR, ClassFPU, fp)
	define(OpJmpFar, "jmpf", FmtI32, ClassBranch, br)
	define(OpCallFar, "callf", FmtI32, ClassBranch, br)

	for op := opReserved + 1; op < numPrimary; op++ {
		if infoTable[op].Name == "" {
			panic(fmt.Sprintf("isa: opcode %d has no definition", op))
		}
	}
	for _, op := range Opcodes() {
		nameIndex[infoTable[op].Name] = op
	}
}

// Lookup returns the static description of op. It panics on an opcode
// outside both maps; use Valid to probe.
func Lookup(op Op) Info {
	if !Valid(op) {
		panic(fmt.Sprintf("isa: invalid opcode %#x", uint16(op)))
	}
	return infoTable[op]
}

// Valid reports whether op is a defined opcode in either map.
func Valid(op Op) bool {
	if op < numPrimary {
		return infoTable[op].Name != ""
	}
	return op >= opSecondaryBase && op < numSecondaryEnd && infoTable[op].Name != ""
}

// Opcodes returns every defined opcode, primary map first.
func Opcodes() []Op {
	ops := make([]Op, 0, NumOpcodes)
	for op := opReserved + 1; op < numPrimary; op++ {
		ops = append(ops, op)
	}
	for op := opSecondaryBase; op < numSecondaryEnd; op++ {
		if infoTable[op].Name != "" {
			ops = append(ops, op)
		}
	}
	return ops
}

// ByName resolves an assembler mnemonic to its opcode.
func ByName(name string) (Op, bool) {
	op, ok := nameIndex[name]
	return op, ok
}

// nameIndex is populated by init after the opcode table is defined (package
// variable initializers run before init functions, so it cannot be built
// inline).
var nameIndex = make(map[string]Op, NumOpcodes)
