package isa

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpcodeTableComplete(t *testing.T) {
	for _, op := range Opcodes() {
		in := Lookup(op)
		if in.Name == "" {
			t.Errorf("opcode %#x has no name", uint16(op))
		}
		if in.Op != op {
			t.Errorf("opcode %#x self-reference mismatch: %#x", uint16(op), uint16(in.Op))
		}
		if back, ok := ByName(in.Name); !ok || back != op {
			t.Errorf("ByName(%q) = %#x, %v; want %#x", in.Name, uint16(back), ok, uint16(op))
		}
	}
}

func TestOpcodeFitsElevenBits(t *testing.T) {
	// §4: "We have compressed opcodes to 11 bits". Every opcode, including
	// the secondary map, must be nameable in 11 bits for the trace encoding.
	for _, op := range Opcodes() {
		if op >= 1<<11 {
			t.Errorf("opcode %s = %#x does not fit in 11 bits", Lookup(op).Name, uint16(op))
		}
	}
}

func TestValid(t *testing.T) {
	if Valid(numPrimary) {
		t.Errorf("Valid(%#x) between maps = true", uint16(numPrimary))
	}
	if Valid(opSecondaryBase) {
		t.Error("Valid(secondary offset 0) = true; that slot is reserved")
	}
	if Valid(numSecondaryEnd) {
		t.Error("Valid(end of secondary map) = true")
	}
	if !Valid(OpNop) || !Valid(OpFAdd) || !Valid(OpCallFar) {
		t.Error("Valid rejects defined opcodes")
	}
}

func TestRegString(t *testing.T) {
	cases := map[Reg]string{
		0: "R0", 5: "R5", RegSP: "SP", RegLR: "LR", 15: "R15",
		FP(0): "F0", FP(7): "F7", RegNone: "-",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
	}
}

// randomInst builds a well-formed random instruction for the round-trip
// property test.
func randomInst(r *rand.Rand) Inst {
	ops := Opcodes()
	op := ops[r.Intn(len(ops))]
	in := Lookup(op)
	inst := Inst{Op: op, Rd: RegNone, Rs: RegNone}
	gpr := func() Reg { return Reg(r.Intn(NumGPR)) }
	fpr := func() Reg { return FP(r.Intn(NumFPR)) }
	dreg := gpr
	if in.FP {
		dreg = fpr
	}
	switch in.Format {
	case FmtR:
		inst.Rd = dreg()
	case FmtRR:
		switch op {
		case OpI2F:
			inst.Rd, inst.Rs = fpr(), gpr()
		case OpF2I:
			inst.Rd, inst.Rs = gpr(), fpr()
		default:
			inst.Rd, inst.Rs = dreg(), dreg()
		}
	case FmtRI8:
		inst.Rd = dreg()
		inst.Imm = int64(int8(r.Intn(256)))
	case FmtI8R:
		inst.Rd = dreg()
		inst.Imm = int64(r.Intn(NumCR))
	case FmtRI32:
		inst.Rd = dreg()
		inst.Imm = int64(int32(r.Uint32()))
	case FmtRM:
		inst.Rd = dreg()
		inst.Rs = gpr()
		inst.Disp = int32(int16(r.Uint32()))
	case FmtRel16:
		inst.Imm = int64(int16(r.Uint32()))
	case FmtI16R:
		inst.Rd = gpr()
		inst.Imm = int64(uint16(r.Uint32()))
	case FmtFI64:
		inst.Rd = fpr()
		inst.Imm = int64(math.Float64bits(r.NormFloat64()))
	case FmtI32:
		inst.Imm = int64(r.Uint32())
	}
	if r.Intn(8) == 0 {
		inst.Rep = true
	}
	if r.Intn(16) == 0 {
		inst.Lock = true
	}
	return inst
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		want := randomInst(r)
		buf, err := Encode(nil, want)
		if err != nil {
			t.Fatalf("Encode(%v): %v", want, err)
		}
		if len(buf) > MaxInstLen {
			t.Fatalf("Encode(%v) = %d bytes > MaxInstLen", want, len(buf))
		}
		got, err := Decode(buf, 0)
		if err != nil {
			t.Fatalf("Decode(Encode(%v)): %v", want, err)
		}
		want.Size = len(buf)
		if got != want {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestEncodedLenMatchesEncode(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		inst := randomInst(r)
		buf, err := Encode(nil, inst)
		if err != nil {
			t.Fatalf("Encode(%v): %v", inst, err)
		}
		if n := encodedLen(inst); n != len(buf) {
			t.Fatalf("encodedLen(%v) = %d, Encode produced %d bytes", inst, n, len(buf))
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"bare prefix", []byte{PrefixREP}},
		{"bare escape", []byte{escapeByte}},
		{"undefined primary", []byte{byte(numPrimary) + 3}},
		{"undefined secondary", []byte{escapeByte, 0}},
		{"truncated rr", []byte{byte(OpAddRR)}},
		{"truncated imm32", []byte{byte(OpMovRI), 0x10, 1, 2}},
		{"triple prefix", []byte{PrefixREP, PrefixLock, PrefixREP, byte(OpMovs)}},
	}
	for _, c := range cases {
		if inst, err := Decode(c.buf, 0x100); err == nil {
			t.Errorf("%s: Decode succeeded, want error", c.name)
		} else if de, ok := err.(*DecodeError); !ok {
			t.Errorf("%s: error type %T, want *DecodeError", c.name, err)
		} else if de.PC != 0x100 {
			t.Errorf("%s: DecodeError.PC = %#x, want 0x100", c.name, de.PC)
		} else if inst != (Inst{}) {
			// The predecode cache and fault paths rely on failed decodes
			// never leaking a partially-populated instruction.
			t.Errorf("%s: Decode returned non-zero Inst %+v alongside error", c.name, inst)
		}
	}
}

func TestDecodeImmediateSignExtension(t *testing.T) {
	buf, err := Encode(nil, Inst{Op: OpMovRI8, Rd: 3, Imm: -5})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Decode(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Imm != -5 {
		t.Errorf("imm8 sign extension: got %d, want -5", inst.Imm)
	}
}

func TestEncodeRangeChecks(t *testing.T) {
	if _, err := Encode(nil, Inst{Op: OpJmp, Imm: 1 << 20}); err == nil {
		t.Error("rel16 overflow not rejected")
	}
	if _, err := Encode(nil, Inst{Op: OpMovRI8, Rd: 0, Imm: 1 << 10}); err == nil {
		t.Error("imm8 overflow not rejected")
	}
	if _, err := Encode(nil, Inst{Op: OpLdW, Rd: 0, Rs: 1, Disp: 1 << 20}); err == nil {
		t.Error("disp16 overflow not rejected")
	}
	if _, err := Encode(nil, Inst{Op: OpIn, Rd: 0, Imm: 1 << 17}); err == nil {
		t.Error("port16 overflow not rejected")
	}
}

func TestDecodeArbitraryBytesNeverPanics(t *testing.T) {
	// Property: Decode must return, not panic, on arbitrary byte soup —
	// the functional model feeds it raw target memory.
	f := func(buf []byte) bool {
		inst, err := Decode(buf, 0)
		if err == nil && (inst.Size <= 0 || inst.Size > MaxInstLen) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		inst Inst
		want string
	}{
		{Inst{Op: OpNop}, "nop"},
		{Inst{Op: OpMovRI, Rd: 2, Imm: 42}, "movi R2, 42"},
		{Inst{Op: OpLdW, Rd: 1, Rs: 2, Disp: -4}, "ldw R1, [R2-4]"},
		{Inst{Op: OpMovs, Rep: true}, "rep movs"},
		{Inst{Op: OpJz, Imm: 16}, "jz +16"},
		{Inst{Op: OpFAdd, Rd: FP(1), Rs: FP(2)}, "fadd F1, F2"},
	}
	for _, c := range cases {
		if got := c.inst.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
