package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func decodeAll(t *testing.T, p *Program) []Inst {
	t.Helper()
	var out []Inst
	for off := 0; off < len(p.Code); {
		inst, err := Decode(p.Code[off:], p.Base+Word(off))
		if err != nil {
			t.Fatalf("decode at +%d: %v", off, err)
		}
		out = append(out, inst)
		off += inst.Size
	}
	return out
}

func TestAssembleBasic(t *testing.T) {
	p, err := Assemble(`
		; a tiny program
		start:
			movi r0, 10
			movi r1, 0
		loop:
			add  r1, r0
			dec  r0
			jnz  loop
			halt
		.entry start
	`, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 0x1000 {
		t.Errorf("entry = %#x, want 0x1000", p.Entry)
	}
	insts := decodeAll(t, p)
	wantOps := []Op{OpMovRI, OpMovRI, OpAddRR, OpDecR, OpJnz, OpHalt}
	if len(insts) != len(wantOps) {
		t.Fatalf("got %d instructions, want %d", len(insts), len(wantOps))
	}
	for i, w := range wantOps {
		if insts[i].Op != w {
			t.Errorf("inst %d op = %v, want %v", i, insts[i].Op, w)
		}
	}
	// jnz displacement: target = loop label; check it round-trips.
	loopAddr := p.Symbols["loop"]
	jnzOff := 0
	for _, in := range insts[:4] {
		jnzOff += in.Size
	}
	jnz := insts[4]
	next := p.Base + Word(jnzOff) + Word(jnz.Size)
	if got := Word(int64(next) + jnz.Imm); got != loopAddr {
		t.Errorf("jnz resolves to %#x, want %#x", got, loopAddr)
	}
}

func TestAssembleForwardReference(t *testing.T) {
	p, err := Assemble(`
			jmp done
			nop
		done:
			halt
	`, 0)
	if err != nil {
		t.Fatal(err)
	}
	insts := decodeAll(t, p)
	if len(insts) != 3 {
		t.Fatalf("got %d instructions, want 3", len(insts))
	}
	if got := Word(int64(insts[0].Size) + insts[0].Imm); got != p.Symbols["done"] {
		t.Errorf("forward jmp resolves to %#x, want %#x", got, p.Symbols["done"])
	}
}

func TestAssembleDirectives(t *testing.T) {
	p, err := Assemble(`
		.equ MAGIC, 0xBEEF
		.org 0x10
		data:
		.word MAGIC, data, 'A'
		.half 0x1234
		.byte 1, 2, 3
		.asciz "ok"
		.align 8
		aligned:
		.space 4
	`, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) < 0x10 {
		t.Fatalf(".org did not pad: len=%d", len(p.Code))
	}
	w := func(off int) uint32 {
		return uint32(p.Code[off]) | uint32(p.Code[off+1])<<8 |
			uint32(p.Code[off+2])<<16 | uint32(p.Code[off+3])<<24
	}
	if w(0x10) != 0xBEEF {
		t.Errorf(".word MAGIC = %#x, want 0xBEEF", w(0x10))
	}
	if w(0x14) != 0x10 {
		t.Errorf(".word data = %#x, want 0x10", w(0x14))
	}
	if w(0x18) != 'A' {
		t.Errorf(".word 'A' = %#x, want %#x", w(0x18), 'A')
	}
	if p.Code[0x1C] != 0x34 || p.Code[0x1D] != 0x12 {
		t.Errorf(".half wrong: % x", p.Code[0x1C:0x1E])
	}
	if string(p.Code[0x21:0x24]) != "ok\x00" {
		t.Errorf(".asciz wrong: %q", p.Code[0x21:0x24])
	}
	if p.Symbols["aligned"]%8 != 0 {
		t.Errorf("aligned label at %#x, not 8-aligned", p.Symbols["aligned"])
	}
}

func TestAssembleMemOperands(t *testing.T) {
	p, err := Assemble(`
		ldw r1, [r2]
		ldw r1, [r2+8]
		stw r3, [sp-4]
		fld f0, [r4+16]
		fst f1, [r4+24]
	`, 0)
	if err != nil {
		t.Fatal(err)
	}
	insts := decodeAll(t, p)
	if insts[0].Disp != 0 || insts[1].Disp != 8 || insts[2].Disp != -4 {
		t.Errorf("displacements: %d %d %d, want 0 8 -4",
			insts[0].Disp, insts[1].Disp, insts[2].Disp)
	}
	if insts[2].Rs != RegSP {
		t.Errorf("store base = %v, want SP", insts[2].Rs)
	}
	if insts[3].Rd != FP(0) || insts[3].Rs != 4 {
		t.Errorf("fld operands: %v, [%v]", insts[3].Rd, insts[3].Rs)
	}
	if insts[4].Rd != FP(1) {
		t.Errorf("fst data reg = %v, want F1", insts[4].Rd)
	}
}

func TestAssemblePrefixes(t *testing.T) {
	p, err := Assemble("rep movs\nlock inc r0\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	insts := decodeAll(t, p)
	if !insts[0].Rep || insts[0].Op != OpMovs {
		t.Errorf("rep movs decoded as %+v", insts[0])
	}
	if !insts[1].Lock || insts[1].Op != OpIncR {
		t.Errorf("lock inc decoded as %+v", insts[1])
	}
}

func TestAssembleFloatImmediate(t *testing.T) {
	p, err := Assemble("fldi f2, 2.5\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	insts := decodeAll(t, p)
	if insts[0].Op != OpFLdI || insts[0].Float() != 2.5 || insts[0].Rd != FP(2) {
		t.Errorf("fldi decoded as %+v (float %g)", insts[0], insts[0].Float())
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", "frobnicate r0\n", "unknown mnemonic"},
		{"bad register", "mov r99, r0\n", "bad register"},
		{"wrong arity", "add r0\n", "wants 2 operands"},
		{"undefined symbol", "jmp nowhere\n", "undefined symbol"},
		{"duplicate label", "a:\na:\n", "duplicate label"},
		{"org backwards", ".org 8\n.org 4\n", "moves backwards"},
		{"bad align", ".align 3\n", "not a power of two"},
		{"unknown directive", ".bogus 1\n", "unknown directive"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src, 0)
		if err == nil {
			t.Errorf("%s: assembled without error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
		if _, ok := err.(*AsmError); !ok {
			t.Errorf("%s: error type %T, want *AsmError", c.name, err)
		}
	}
}

func TestAssembleCommentsAndLiterals(t *testing.T) {
	p, err := Assemble(`
		movi r0, ';'   ; a semicolon character
		movi r1, '#'   # a hash character
	`, 0)
	if err != nil {
		t.Fatal(err)
	}
	insts := decodeAll(t, p)
	if insts[0].Imm != ';' || insts[1].Imm != '#' {
		t.Errorf("char literals: %d %d, want %d %d", insts[0].Imm, insts[1].Imm, ';', '#')
	}
}

func TestAssembleRel16RangeCheck(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("jmp far\n")
	for i := 0; i < 9000; i++ {
		sb.WriteString("movi r0, 1\n") // 6 bytes each; > 32 KiB total
	}
	sb.WriteString("far: halt\n")
	if _, err := Assemble(sb.String(), 0); err == nil {
		t.Error("out-of-range rel16 branch not rejected")
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("bogus r0\n", 0)
}

func TestProgramEnd(t *testing.T) {
	p := MustAssemble("nop\nnop\n", 0x100)
	if p.End() != 0x102 {
		t.Errorf("End() = %#x, want 0x102", p.End())
	}
}

// TestAssembleArbitraryInputNeverPanics: the assembler must reject garbage
// with errors, never panics (it consumes generated workload sources).
func TestAssembleArbitraryInputNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", src, r)
				panic(r)
			}
		}()
		_, _ = Assemble(src, 0)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	// A few adversarial shapes.
	for _, src := range []string{
		":", "::", "a:b:", ".word", ".ascii", ".ascii \"", "movi r0,",
		"[r1]", "ldw r1, [", "jmp", ".equ", ".org", "rep", "rep rep movs",
		".align 0", ".space -1", "movi r0, 'ab'", "x" + string(rune(0)),
	} {
		_, _ = Assemble(src, 0)
	}
}
