package isa

import (
	"math/rand"
	"strings"
	"testing"
)

func TestDisassembleRoundTrip(t *testing.T) {
	// Every defined opcode encodes, then disassembles back to the same
	// instruction.
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		want := randomInst(r)
		buf, err := Encode(nil, want)
		if err != nil {
			t.Fatal(err)
		}
		lines := Disassemble(buf, 0x1000)
		if len(lines) != 1 {
			t.Fatalf("%v disassembled to %d lines", want, len(lines))
		}
		if lines[0].Err != nil {
			t.Fatalf("%v failed to disassemble: %v", want, lines[0].Err)
		}
		want.Size = len(buf)
		if lines[0].Inst != want {
			t.Fatalf("round trip: got %+v want %+v", lines[0].Inst, want)
		}
	}
}

func TestDisassembleResynchronizes(t *testing.T) {
	// Garbage byte in the middle: the stream must not lose the following
	// instruction.
	good, _ := Encode(nil, Inst{Op: OpIncR, Rd: 3})
	buf := append([]byte{0xFE}, good...) // 0xFE is undefined
	lines := Disassemble(buf, 0)
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	if lines[0].Err == nil {
		t.Error("garbage byte decoded")
	}
	if lines[1].Err != nil || lines[1].Inst.Op != OpIncR {
		t.Errorf("did not resynchronize: %+v", lines[1])
	}
	if !strings.Contains(lines[0].String(), ".byte") {
		t.Error("garbage line not rendered as .byte")
	}
}

func TestDisassembleProgramLabels(t *testing.T) {
	p := MustAssemble(`
		start:
			movi r0, 5
		loop:	dec r0
			jnz loop
			halt
	`, 0x2000)
	out := DisassembleProgram(p)
	for _, want := range []string{"start:", "loop:", "movi", "jnz", "halt", "00002000"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}
