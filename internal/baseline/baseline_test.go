package baseline

import (
	"testing"

	"repro/internal/fm"
	"repro/internal/hostlink"
	"repro/internal/isa"
	"repro/internal/tm"
)

const prog = `
	movi sp, 0x9000
	movi r0, 500
	movi r4, 0x4000
loop:
	stw  r0, [r4]
	ldw  r1, [r4]
	add  r2, r1
	mov  r3, r2
	andi r3, 7
	cmpi r3, 3
	jz   hit
	addi r2, 1
hit:	dec  r0
	jnz  loop
	cli
	halt
`

func load() *isa.Program { return isa.MustAssemble(prog, 0x1000) }

func fmCfg() fm.Config { return fm.Config{DisableInterrupts: true} }

func TestMonolithicRuns(t *testing.T) {
	b := Monolithic{TM: tm.DefaultConfig(), FM: fmCfg(), Cost: SimOutorderCost(), Label: "sim-outorder-class"}
	r, err := b.Run(load())
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions == 0 || r.KIPS <= 0 {
		t.Fatalf("bad result %+v", r)
	}
	// Table 3 territory: a software cycle-accurate simulator runs at
	// hundreds of KIPS, far below FAST's 1.2+ MIPS.
	if r.KIPS < 100 || r.KIPS > 2000 {
		t.Errorf("monolithic %.0f KIPS outside software-simulator range", r.KIPS)
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestGEMSClassSlower(t *testing.T) {
	fast, err := Monolithic{TM: tm.DefaultConfig(), FM: fmCfg(), Cost: SimOutorderCost()}.Run(load())
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Monolithic{TM: tm.DefaultConfig(), FM: fmCfg(), Cost: GEMSCost()}.Run(load())
	if err != nil {
		t.Fatal(err)
	}
	if slow.KIPS*5 > fast.KIPS {
		t.Errorf("GEMS-class (%.0f KIPS) not ≫ slower than sim-outorder-class (%.0f)",
			slow.KIPS, fast.KIPS)
	}
	if slow.TargetCycles != fast.TargetCycles {
		t.Error("cost model changed target timing")
	}
}

func TestLockstepLimitedByRoundTrips(t *testing.T) {
	b := Lockstep{
		TM: tm.DefaultConfig(), FM: fmCfg(),
		Link:                    hostlink.DRC(),
		FunctionalNanosPerCycle: 50,
		FPGANanosPerCycle:       300,
	}
	r, err := b.Run(load())
	if err != nil {
		t.Fatal(err)
	}
	// Per-cycle round trips bound the rate at ~1/(469+307+350)ns cycles/s;
	// with IPC < 1 the KIPS must be below that.
	maxKIPS := 1e6 / (469 + 307 + 350)
	if r.KIPS >= maxKIPS*1000 {
		t.Errorf("lockstep %.0f KIPS above the round-trip bound", r.KIPS)
	}
	if r.KIPS <= 0 {
		t.Error("lockstep produced nothing")
	}
}

func TestFSBCacheSlowerThanSoftware(t *testing.T) {
	// The [30] result: adding the FPGA cache makes the simulator slower.
	b := FSBCache{TM: tm.DefaultConfig(), FM: fmCfg(), Cost: SimOutorderCost(), Link: hostlink.DRC()}
	withFPGA, sw, err := b.Run(load())
	if err != nil {
		t.Fatal(err)
	}
	if withFPGA.KIPS >= sw.KIPS {
		t.Errorf("FPGA-on-FSB (%.0f KIPS) not slower than pure software (%.0f): "+
			"the Intel experiment's outcome is lost", withFPGA.KIPS, sw.KIPS)
	}
	if withFPGA.TargetCycles != sw.TargetCycles {
		t.Error("cost model changed target timing")
	}
}

func TestPublishedRows(t *testing.T) {
	rows := PublishedRows()
	if len(rows) != 7 {
		t.Fatalf("%d published rows, want 7", len(rows))
	}
	for _, r := range rows {
		if r.KIPS <= 0 || r.Simulator == "" {
			t.Errorf("bad row %+v", r)
		}
	}
	// Ordering sanity from Table 3: sim-outorder is the fastest software
	// simulator listed; Intel/AMD the slowest.
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Simulator] = r.KIPS
	}
	if byName["sim-outorder"] <= byName["PTLSim"] || byName["Intel"] >= byName["GEMS"] {
		t.Error("published ordering broken")
	}
}

func TestMaxInstructionsBound(t *testing.T) {
	b := Monolithic{TM: tm.DefaultConfig(), FM: fmCfg(), Cost: SimOutorderCost(), MaxInstructions: 50}
	r, err := b.Run(load())
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions > 60 {
		t.Errorf("bound ignored: %d instructions", r.Instructions)
	}
}

func TestFatalPropagates(t *testing.T) {
	bad := isa.MustAssemble("movi r0, 0\nmovi r1, 0\ndiv r0, r1\n", 0x1000)
	_, err := Monolithic{TM: tm.DefaultConfig(), FM: fmCfg(), Cost: SimOutorderCost()}.Run(bad)
	if err == nil {
		t.Error("fatal functional-model error not propagated")
	}
}
