// Package baseline implements the comparison points of the paper: a
// monolithic software cycle-accurate simulator (sim-outorder/GEMS class,
// Table 3), a lockstep timing-directed simulator that round-trips every
// target cycle (Asim/Timing-First/HASim class, §5), and the Intel
// FPGA-L1-cache-on-the-front-side-bus experiment [30] that motivated §3.1.
//
// Every baseline executes the *same* target simulation (the internal/fm
// functional model and internal/tm timing model), so architectural results
// are identical across simulators; what differs is the host-time cost
// model — which is exactly the paper's point.
package baseline

import (
	"context"
	"fmt"

	"repro/internal/fm"
	"repro/internal/hostlink"
	"repro/internal/isa"
	"repro/internal/tm"
	"repro/internal/trace"
)

// Result is a baseline run summary, comparable with core.Result and
// liftable into the unified internal/sim result shape: it carries the full
// timing-model statistics so architectural counters (basic blocks, per-
// class issues, mispredicts) are available from every simulator, not just
// FAST.
type Result struct {
	Name         string
	Instructions uint64
	TargetCycles uint64
	IPC          float64
	SimNanos     float64
	KIPS         float64 // Table 3 reports software simulators in KIPS
	BPAccuracy   float64
	TM           tm.Stats
}

func (r Result) String() string {
	return fmt.Sprintf("%s: inst=%d cycles=%d IPC=%.3f %.0f KIPS",
		r.Name, r.Instructions, r.TargetCycles, r.IPC, r.KIPS)
}

// SoftwareCost models the host cost of evaluating one target cycle of the
// timing model in software on the DRC platform's Opteron.
type SoftwareCost struct {
	// BaseNanosPerCycle covers the event loop and stage evaluation.
	BaseNanosPerCycle float64
	// NanosPerUop covers per-µop work: wakeup, select, writeback, commit.
	NanosPerUop float64
	// FunctionalNanosPerInst is the integrated functional execution.
	FunctionalNanosPerInst float64
}

// SimOutorderCost calibrates to Table 3's sim-outorder row (~740 KIPS on
// the DRC platform at the prototype's IPC levels).
func SimOutorderCost() SoftwareCost {
	return SoftwareCost{BaseNanosPerCycle: 700, NanosPerUop: 400, FunctionalNanosPerInst: 100}
}

// GEMSCost calibrates to Table 3's GEMS row (~69 KIPS): a full-system,
// multiprocessor-capable infrastructure pays roughly an order of magnitude
// more per cycle.
func GEMSCost() SoftwareCost {
	return SoftwareCost{BaseNanosPerCycle: 8000, NanosPerUop: 2200, FunctionalNanosPerInst: 800}
}

// ctxCheckInterval bounds cancellation latency: the execution loops test
// ctx.Err() once per this many iterations, keeping the per-step cost of an
// uncancelled run to one counter increment.
const ctxCheckInterval = 1024

// runTarget executes prog to completion on a fresh FM and returns the
// trace. Baselines are trace-equivalent to FAST by construction.
func runTarget(ctx context.Context, prog *isa.Program, fmCfg fm.Config, maxInst uint64) ([]trace.Entry, *fm.Model, error) {
	const idleLimit = 10_000_000 // hung-target guard
	m := fm.New(fmCfg)
	m.LoadProgram(prog)
	var out []trace.Entry
	var ticks uint64
	idle := 0
	for {
		if maxInst > 0 && uint64(len(out)) >= maxInst {
			break
		}
		if ticks++; ticks%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		e, ok := m.Step()
		if !ok {
			if m.Fatal() != nil {
				return nil, nil, fmt.Errorf("baseline: functional model: %w", m.Fatal())
			}
			// Idle-wait for the next interrupt, bounded.
			if m.Halted() && m.Flags&isa.FlagI != 0 && idle < idleLimit {
				m.AdvanceIdle(1)
				idle++
				continue
			}
			break
		}
		idle = 0
		out = append(out, e)
	}
	return out, m, nil
}

// Monolithic simulates the classic integrated software simulator: one
// thread interleaves functional execution and cycle-accurate timing; no
// parallelism is available ("Simulators ... have traditionally resisted
// parallelization", §1).
type Monolithic struct {
	TM    tm.Config
	FM    fm.Config
	Cost  SoftwareCost
	Label string
	// MaxInstructions bounds the run (0 = to completion).
	MaxInstructions uint64
}

// Run executes prog and returns the cost-modeled result.
func (b Monolithic) Run(prog *isa.Program) (Result, error) {
	return b.RunContext(context.Background(), prog)
}

// RunContext is Run with cooperative cancellation.
func (b Monolithic) RunContext(ctx context.Context, prog *isa.Program) (Result, error) {
	entries, _, err := runTarget(ctx, prog, b.FM, b.MaxInstructions)
	if err != nil {
		return Result{}, err
	}
	model, err := tm.New(b.TM, &tm.SliceSource{Entries: entries}, nil)
	if err != nil {
		return Result{}, err
	}
	if err := runTiming(ctx, model); err != nil {
		return Result{}, err
	}
	st := model.Stats
	nanos := float64(st.Cycles)*b.Cost.BaseNanosPerCycle +
		float64(st.UOps)*b.Cost.NanosPerUop +
		float64(st.Instructions)*b.Cost.FunctionalNanosPerInst
	name := b.Label
	if name == "" {
		name = "monolithic"
	}
	return finish(name, model, nanos), nil
}

// Lockstep simulates the timing-directed partitioning (Asim, Timing-First,
// current M5): "both components must run in essentially lock-step order
// with each other and generally must round-trip communicate every simulated
// cycle" (§5). With the timing model on the FPGA this is the HASim shape:
// the host pays the full link round trip per target cycle.
type Lockstep struct {
	TM   tm.Config
	FM   fm.Config
	Link hostlink.Config
	// FunctionalNanosPerCycle is the software functional model's work per
	// target cycle (it executes piecewise, when the TM tells it to).
	FunctionalNanosPerCycle float64
	FPGANanosPerCycle       float64 // TM host time per target cycle
	MaxInstructions         uint64
}

// Run executes prog under the lockstep cost model.
func (b Lockstep) Run(prog *isa.Program) (Result, error) {
	return b.RunContext(context.Background(), prog)
}

// RunContext is Run with cooperative cancellation.
func (b Lockstep) RunContext(ctx context.Context, prog *isa.Program) (Result, error) {
	entries, _, err := runTarget(ctx, prog, b.FM, b.MaxInstructions)
	if err != nil {
		return Result{}, err
	}
	model, err := tm.New(b.TM, &tm.SliceSource{Entries: entries}, nil)
	if err != nil {
		return Result{}, err
	}
	if err := runTiming(ctx, model); err != nil {
		return Result{}, err
	}
	st := model.Stats
	// Every cycle: round trip + both sides' work, fully serialized.
	perCycle := b.Link.ReadNanos + b.Link.WriteNanos +
		b.FunctionalNanosPerCycle + b.FPGANanosPerCycle
	nanos := float64(st.Cycles) * perCycle
	return finish("lockstep(F=1)", model, nanos), nil
}

// FSBCache reproduces the Intel experiment of [30]/§1: the L1 data cache of
// a software simulator moved into an FPGA on the front-side bus. Every data
// memory access becomes a round trip, and the result is *slower* than the
// unmodified software simulator.
type FSBCache struct {
	TM              tm.Config
	FM              fm.Config
	Cost            SoftwareCost // the software simulator around the FPGA cache
	Link            hostlink.Config
	MaxInstructions uint64
}

// Run executes prog under the FSB-cache cost model and also returns the
// pure-software result it should be compared against.
func (b FSBCache) Run(prog *isa.Program) (withFPGA, pureSoftware Result, err error) {
	return b.RunContext(context.Background(), prog)
}

// RunContext is Run with cooperative cancellation.
func (b FSBCache) RunContext(ctx context.Context, prog *isa.Program) (withFPGA, pureSoftware Result, err error) {
	entries, _, err := runTarget(ctx, prog, b.FM, b.MaxInstructions)
	if err != nil {
		return Result{}, Result{}, err
	}
	model, err := tm.New(b.TM, &tm.SliceSource{Entries: entries}, nil)
	if err != nil {
		return Result{}, Result{}, err
	}
	if err := runTiming(ctx, model); err != nil {
		return Result{}, Result{}, err
	}
	st := model.Stats

	memAccesses := st.IssuedByClass[isa.ClassLoad] + st.IssuedByClass[isa.ClassStore]
	swNanos := float64(st.Cycles)*b.Cost.BaseNanosPerCycle +
		float64(st.UOps)*b.Cost.NanosPerUop +
		float64(st.Instructions)*b.Cost.FunctionalNanosPerInst
	pureSoftware = finish("software (unmodified)", model, swNanos)

	// Offloading the dL1 removes its software cost (a fraction of per-µop
	// work) but adds a blocking round trip per access.
	offloaded := swNanos - float64(memAccesses)*b.Cost.NanosPerUop*0.5
	fpgaNanos := offloaded + float64(memAccesses)*(b.Link.ReadNanos+b.Link.WriteNanos)
	withFPGA = finish("software + FPGA L1 on FSB", model, fpgaNanos)
	return withFPGA, pureSoftware, nil
}

// runTiming drains the timing model in bounded slices so cancellation is
// honoured between slices rather than only at end of trace.
func runTiming(ctx context.Context, model *tm.TM) error {
	const slice = 1 << 16
	for !model.Done() {
		if err := ctx.Err(); err != nil {
			return err
		}
		model.Run(slice)
	}
	return nil
}

func finish(name string, model *tm.TM, nanos float64) Result {
	st := model.Stats
	r := Result{
		Name:         name,
		Instructions: st.Instructions,
		TargetCycles: st.Cycles,
		IPC:          st.IPC(),
		SimNanos:     nanos,
		BPAccuracy:   model.BPStats.Accuracy(),
		TM:           st,
	}
	if nanos > 0 {
		r.KIPS = float64(st.Instructions) / nanos * 1e6
	}
	return r
}

// Table3Published holds the published rows of Table 3 that come from
// proprietary simulators we cannot run (personal communications in the
// paper); speeds in KIPS.
type PublishedRow struct {
	Simulator, ISA, Uarch string
	KIPS                  float64
	FullSystem            bool
}

// PublishedRows returns Table 3's constants. Intel's and AMD's "1-10KHz"
// cycle rates are recorded at their midpoint as ~5 KIPS-equivalents
// (cycle-rate ≈ instruction rate at IPC ~1).
func PublishedRows() []PublishedRow {
	return []PublishedRow{
		{"Intel", "x86-64", "Core 2", 5, true},
		{"AMD", "x86-64", "Opteron", 5, true},
		{"IBM", "Power", "Power5", 200, true},
		{"Freescale", "PPC", "e500", 80, false},
		{"PTLSim", "x86-64", "Athlon", 270, true},
		{"sim-outorder", "Alpha", "21264", 740, false},
		{"GEMS", "Sparc", "generic", 69, true},
	}
}
