package cache

import (
	"math/rand"
	"testing"
)

// refCache is a golden model: per-set slices of line numbers in
// recency order (index 0 = MRU), brute force.
type refCache struct {
	sets      int
	ways      int
	lineBytes int
	data      [][]uint32 // line addresses per set, MRU first
}

func newRefCache(cfg Config) *refCache {
	return &refCache{
		sets:      cfg.SizeBytes / (cfg.Ways * cfg.LineBytes),
		ways:      cfg.Ways,
		lineBytes: cfg.LineBytes,
		data:      make([][]uint32, cfg.SizeBytes/(cfg.Ways*cfg.LineBytes)),
	}
}

// access returns hit.
func (r *refCache) access(addr uint32) bool {
	line := addr / uint32(r.lineBytes)
	set := int(line) % r.sets
	s := r.data[set]
	for i, l := range s {
		if l == line {
			// move to front
			copy(s[1:i+1], s[:i])
			s[0] = line
			return true
		}
	}
	s = append([]uint32{line}, s...)
	if len(s) > r.ways {
		s = s[:r.ways]
	}
	r.data[set] = s
	return false
}

// TestCacheAgainstLRUGoldenModel: the set-associative LRU cache must make
// exactly the same hit/miss decisions as a brute-force recency-list model
// over a long random access stream.
func TestCacheAgainstLRUGoldenModel(t *testing.T) {
	cfg := Config{Name: "gold", SizeBytes: 4 << 10, Ways: 4, LineBytes: 64, HitLatency: 1}
	c := New(cfg, NewFixedMemory(10))
	ref := newRefCache(cfg)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300000; i++ {
		// Skewed address distribution so hits and misses both occur.
		addr := uint32(rng.Intn(16 << 10))
		if rng.Intn(3) == 0 {
			addr = uint32(rng.Intn(2 << 10))
		}
		wantHit := ref.access(addr)
		lat := c.Access(addr, rng.Intn(4) == 0)
		gotHit := lat == cfg.HitLatency
		if gotHit != wantHit {
			t.Fatalf("access %d (addr %#x): hit=%v, golden model says %v",
				i, addr, gotHit, wantHit)
		}
	}
	s := c.Stats()
	if s.Hits == 0 || s.Misses == 0 {
		t.Fatalf("degenerate stream: %+v", s)
	}
}
