package cache

import (
	"math/rand"
	"testing"
)

func l1() *Cache { return New(DefaultL1D(), NewFixedMemory(25)) }

func TestHitAfterMiss(t *testing.T) {
	c := l1()
	lat := c.Access(0x1000, false)
	if lat != 1+25 {
		t.Errorf("cold miss latency %d, want 26", lat)
	}
	if lat := c.Access(0x1000, false); lat != 1 {
		t.Errorf("hit latency %d, want 1", lat)
	}
	// Same line, different word: still a hit.
	if lat := c.Access(0x1030, false); lat != 1 {
		t.Errorf("same-line hit latency %d, want 1", lat)
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Hits != 2 || s.Misses != 1 {
		t.Errorf("stats %+v", s)
	}
}

func TestLRUWithinSet(t *testing.T) {
	cfg := Config{Name: "t", SizeBytes: 8 * 64, Ways: 2, LineBytes: 64, HitLatency: 1}
	c := New(cfg, NewFixedMemory(10)) // 4 sets × 2 ways
	setStride := uint32(4 * 64)       // next address in the same set
	a, b, d := uint32(0), setStride, 2*setStride
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is MRU
	c.Access(d, false) // evicts b
	if !c.Contains(a) {
		t.Error("MRU line evicted")
	}
	if c.Contains(b) {
		t.Error("LRU line survived")
	}
	if !c.Contains(d) {
		t.Error("new line missing")
	}
}

func TestRoundRobinDiffersFromLRU(t *testing.T) {
	cfg := Config{Name: "rr", SizeBytes: 4 * 64, Ways: 4, LineBytes: 64, HitLatency: 1, Policy: RoundRobin}
	c := New(cfg, NewFixedMemory(10)) // 1 set × 4 ways
	for i := uint32(0); i < 4; i++ {
		c.Access(i*64, false)
	}
	c.Access(0, false)    // hit; RR pointer unaffected
	c.Access(4*64, false) // evicts way 0 (address 0) despite being MRU
	if c.Contains(0) {
		t.Error("round-robin kept the pointer victim")
	}
}

func TestWritebackOfDirtyLines(t *testing.T) {
	cfg := Config{Name: "wb", SizeBytes: 2 * 64, Ways: 1, LineBytes: 64, HitLatency: 1}
	mem := NewFixedMemory(25)
	c := New(cfg, mem)
	c.Access(0x0000, true)  // miss, dirty
	c.Access(0x1000, false) // conflicting set 0? 0x1000/64=64 -> set 0. evicts dirty line
	// The second access pays fill + writeback.
	memAccesses := mem.Stats().Accesses
	if memAccesses != 3 { // fill, fill, writeback
		t.Errorf("memory accesses = %d, want 3 (two fills + one writeback)", memAccesses)
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats().Evictions)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	mem := NewFixedMemory(25)
	l2 := New(DefaultL2(), mem)
	l1 := New(DefaultL1D(), l2)
	// Cold: L1 miss + L2 miss + memory = 1 + 8 + 25.
	if lat := l1.Access(0x4000, false); lat != 34 {
		t.Errorf("cold access = %d, want 34", lat)
	}
	// L1 hit.
	if lat := l1.Access(0x4000, false); lat != 1 {
		t.Errorf("L1 hit = %d", lat)
	}
	// Evict from L1 but not L2: an address mapping to the same L1 set.
	// L1 has 64 sets × 64B lines: stride = 64*64 = 4096; 8 ways, so 9
	// accesses force out 0x4000 while the 512-set L2 keeps them all.
	for i := uint32(1); i <= 8; i++ {
		l1.Access(0x4000+i*4096, false)
	}
	if lat := l1.Access(0x4000, false); lat != 1+8 {
		t.Errorf("L1-miss/L2-hit = %d, want 9", lat)
	}
}

func TestWorkingSetHitRates(t *testing.T) {
	// Property: a working set within capacity converges to ~100% hits; a
	// uniform sweep far beyond capacity stays mostly misses.
	c := l1()
	for pass := 0; pass < 4; pass++ {
		for a := uint32(0); a < 16<<10; a += 64 {
			c.Access(a, false)
		}
	}
	if hr := c.Stats().HitRate(); hr < 0.7 {
		t.Errorf("in-capacity hit rate %.3f", hr)
	}
	c2 := l1()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		c2.Access(uint32(r.Intn(64<<20))&^63, false)
	}
	if hr := c2.Stats().HitRate(); hr > 0.1 {
		t.Errorf("out-of-capacity hit rate %.3f", hr)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []Config{
		{Name: "a", SizeBytes: 1000, Ways: 3, LineBytes: 64},
		{Name: "b", SizeBytes: 0, Ways: 1, LineBytes: 64},
		{Name: "c", SizeBytes: 3 * 64, Ways: 1, LineBytes: 64}, // 3 sets
	}
	for _, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			New(cfg, nil)
		}()
	}
}

func TestTLBTiming(t *testing.T) {
	tlb := NewTLBTiming(4)
	if tlb.Access(1) {
		t.Error("cold TLB hit")
	}
	if !tlb.Access(1) {
		t.Error("warm TLB miss")
	}
	// Fill beyond capacity: LRU (vpn 1 touched most recently after 2,3,4
	// inserted... fill 2,3,4 then 5 evicts the oldest untouched).
	tlb.Access(2)
	tlb.Access(3)
	tlb.Access(4)
	tlb.Access(5) // evicts 1 (oldest)
	if tlb.Access(1) {
		t.Error("evicted VPN still present")
	}
	s := tlb.Stats()
	if s.Hits != 1 || s.Misses != 6 {
		t.Errorf("stats %+v", s)
	}
}

func TestTLBInsertMirrorsSoftwareFill(t *testing.T) {
	tlb := NewTLBTiming(4)
	tlb.Insert(9)
	if !tlb.Access(9) {
		t.Error("inserted VPN missed")
	}
	tlb.Insert(9) // idempotent
	if got := tlb.Stats().Accesses; got != 1 {
		t.Errorf("Insert counted as access: %d", got)
	}
}

func TestVictimAddressReconstruction(t *testing.T) {
	// Writing back a dirty victim must target the victim's address, not
	// the incoming one; observable via a 2-level hierarchy.
	mem := NewFixedMemory(25)
	l2 := New(Config{Name: "l2", SizeBytes: 4 << 10, Ways: 8, LineBytes: 64, HitLatency: 8}, mem)
	l1 := New(Config{Name: "l1", SizeBytes: 128, Ways: 1, LineBytes: 64, HitLatency: 1}, l2)
	l1.Access(0x0000, true)
	l1.Access(0x0080, false) // evicts dirty 0x0000, writes it back into L2
	if !l2.Contains(0x0000) {
		t.Error("victim write-back did not land in L2 at the victim address")
	}
}

func TestHitRateEmpty(t *testing.T) {
	if (Stats{}).HitRate() != 1 {
		t.Error("empty stats hit rate should be 1")
	}
}
