// Package cache implements the memory-hierarchy timing models of the FAST
// prototype: set-associative blocking caches (LRU or round-robin
// replacement, §4: "arbiters (currently LRU and round-robin)"), TLB timing
// structures, and the fixed-delay DRAM model ("a simple delay model of
// memory", Figure 3).
package cache

import "fmt"

// Level is anything an access can be forwarded to: a lower cache or memory.
type Level interface {
	Name() string
	// Access returns the cycles taken to satisfy an access at physical
	// address addr. write marks stores.
	Access(addr uint32, write bool) int
	// Stats returns the level's accumulated counters.
	Stats() Stats
}

// Stats counts cache activity.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// HitRate returns hits over accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 1
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Policy selects the replacement arbiter.
type Policy uint8

const (
	LRU Policy = iota
	RoundRobin
)

func (p Policy) String() string {
	if p == RoundRobin {
		return "round-robin"
	}
	return "lru"
}

// Config describes one cache.
type Config struct {
	Name       string
	SizeBytes  int
	Ways       int
	LineBytes  int
	HitLatency int // cycles on a hit
	Policy     Policy
}

// DefaultL1I, DefaultL1D and DefaultL2 are the prototype target's caches
// (§4: "eight-way 32KB L1 instruction and data caches, an eight-way 256KB
// shared L2 cache"), with the Figure 3 delays (L1 hit 1, L1→L2 8).
func DefaultL1I() Config {
	return Config{Name: "iL1", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, HitLatency: 1}
}

// DefaultL1D is the 32 KiB 8-way data cache.
func DefaultL1D() Config {
	return Config{Name: "dL1", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, HitLatency: 1}
}

// DefaultL2 is the 256 KiB 8-way shared L2 with the Figure 3 8-cycle access.
func DefaultL2() Config {
	return Config{Name: "L2", SizeBytes: 256 << 10, Ways: 8, LineBytes: 64, HitLatency: 8}
}

// Cache is a blocking set-associative cache.
type Cache struct {
	cfg   Config
	sets  int
	tags  []uint32
	valid []bool
	dirty []bool
	meta  []uint8 // LRU age or round-robin pointer storage
	rrPtr []uint8 // per-set round-robin pointer
	next  Level
	stats Stats
}

// New builds a cache over the given next level.
func New(cfg Config, next Level) *Cache {
	if cfg.Ways <= 0 || cfg.LineBytes <= 0 || cfg.SizeBytes%(cfg.Ways*cfg.LineBytes) != 0 {
		panic(fmt.Sprintf("cache: bad geometry %+v", cfg))
	}
	sets := cfg.SizeBytes / (cfg.Ways * cfg.LineBytes)
	if sets < 1 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: %s set count %d not a power of two", cfg.Name, sets))
	}
	n := sets * cfg.Ways
	return &Cache{
		cfg: cfg, sets: sets, next: next,
		tags: make([]uint32, n), valid: make([]bool, n),
		dirty: make([]bool, n), meta: make([]uint8, n),
		rrPtr: make([]uint8, sets),
	}
}

// Name implements Level.
func (c *Cache) Name() string { return c.cfg.Name }

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats implements Level.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears counters (the periodic statistics sampler uses deltas
// instead, but tests use this).
func (c *Cache) ResetStats() { c.stats = Stats{} }

func (c *Cache) index(addr uint32) (set int, tag uint32) {
	line := addr / uint32(c.cfg.LineBytes)
	return int(line) & (c.sets - 1), line / uint32(c.sets)
}

// Access implements Level: LRU/RR lookup, miss fill from the next level.
func (c *Cache) Access(addr uint32, write bool) int {
	c.stats.Accesses++
	set, tag := c.index(addr)
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.stats.Hits++
			c.touch(base, w)
			if write {
				c.dirty[i] = true
			}
			return c.cfg.HitLatency
		}
	}
	c.stats.Misses++
	// Miss: fetch the line from below (blocking), install it.
	lat := c.cfg.HitLatency
	if c.next != nil {
		lat += c.next.Access(addr, false)
	}
	victim := c.victim(set)
	i := base + victim
	if c.valid[i] {
		c.stats.Evictions++
		if c.dirty[i] && c.next != nil {
			// Write-back of the dirty victim; blocking caches pay for it
			// inline.
			lat += c.next.Access(c.victimAddr(set, i), true)
		}
	}
	c.tags[i], c.valid[i], c.dirty[i] = tag, true, write
	c.touch(base, victim)
	return lat
}

// victimAddr reconstructs the physical address of the line in slot i.
func (c *Cache) victimAddr(set, i int) uint32 {
	line := c.tags[i]*uint32(c.sets) + uint32(set)
	return line * uint32(c.cfg.LineBytes)
}

func (c *Cache) victim(set int) int {
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if !c.valid[base+w] {
			return w
		}
	}
	if c.cfg.Policy == RoundRobin {
		v := int(c.rrPtr[set])
		c.rrPtr[set] = uint8((v + 1) % c.cfg.Ways)
		return v
	}
	victim, oldest := 0, uint8(0)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.meta[base+w] >= oldest {
			victim, oldest = w, c.meta[base+w]
		}
	}
	return victim
}

func (c *Cache) touch(base, w int) {
	if c.cfg.Policy != LRU {
		return
	}
	for k := 0; k < c.cfg.Ways; k++ {
		if c.meta[base+k] < 255 {
			c.meta[base+k]++
		}
	}
	c.meta[base+w] = 0
}

// Invalidate drops addr's line if resident — a directory-initiated
// back-invalidation. No write-back happens here: the coherence model
// charges the data movement at the directory, and architectural data lives
// in the functional model's memory, not in this timing structure.
func (c *Cache) Invalidate(addr uint32) {
	set, tag := c.index(addr)
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.valid[base+w] = false
			c.dirty[base+w] = false
			return
		}
	}
}

// Contains reports whether addr's line is resident (probe; no state
// change). Used by tests and the prefetch ablations.
func (c *Cache) Contains(addr uint32) bool {
	set, tag := c.index(addr)
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// FixedMemory is the fixed-delay DRAM model ("We currently do not model
// peripherals and DRAM, beyond a fixed delay", §4.1; Figure 3 shows 25).
type FixedMemory struct {
	Latency int
	stats   Stats
}

// NewFixedMemory builds the delay model (Figure 3's default is 25 cycles).
func NewFixedMemory(latency int) *FixedMemory { return &FixedMemory{Latency: latency} }

// Name implements Level.
func (m *FixedMemory) Name() string { return "MEM" }

// Access implements Level.
func (m *FixedMemory) Access(_ uint32, _ bool) int {
	m.stats.Accesses++
	m.stats.Hits++
	return m.Latency
}

// Stats implements Level.
func (m *FixedMemory) Stats() Stats { return m.stats }

// TLBTiming is the timing-model view of a TLB: a small fully-associative
// LRU structure tracking hit rates. Misses are *architecturally* handled by
// the software fill handler whose instructions appear in the trace; the
// timing structure only decides how often that happens in the target.
type TLBTiming struct {
	entries []uint32
	valid   []bool
	age     []uint8
	stats   Stats
}

// NewTLBTiming builds an n-entry TLB timing model.
func NewTLBTiming(n int) *TLBTiming {
	return &TLBTiming{entries: make([]uint32, n), valid: make([]bool, n), age: make([]uint8, n)}
}

// Access looks up vpn, filling on miss, and reports whether it hit.
func (t *TLBTiming) Access(vpn uint32) bool {
	t.stats.Accesses++
	for i := range t.entries {
		if t.valid[i] && t.entries[i] == vpn {
			t.stats.Hits++
			t.touch(i)
			return true
		}
	}
	t.stats.Misses++
	victim, oldest := 0, uint8(0)
	for i := range t.entries {
		if !t.valid[i] {
			victim = i
			break
		}
		if t.age[i] >= oldest {
			victim, oldest = i, t.age[i]
		}
	}
	t.entries[victim], t.valid[victim] = vpn, true
	t.touch(victim)
	return false
}

// Insert mirrors a software TLB fill carried in the trace (§2: "data
// written to special registers, such as software-filled TLB entries").
func (t *TLBTiming) Insert(vpn uint32) {
	for i := range t.entries {
		if t.valid[i] && t.entries[i] == vpn {
			t.touch(i)
			return
		}
	}
	victim, oldest := 0, uint8(0)
	for i := range t.entries {
		if !t.valid[i] {
			victim = i
			break
		}
		if t.age[i] >= oldest {
			victim, oldest = i, t.age[i]
		}
	}
	t.entries[victim], t.valid[victim] = vpn, true
	t.touch(victim)
}

func (t *TLBTiming) touch(i int) {
	for k := range t.age {
		if t.age[k] < 255 {
			t.age[k]++
		}
	}
	t.age[i] = 0
}

// Stats returns TLB counters.
func (t *TLBTiming) Stats() Stats { return t.stats }
