package cache

// Warm-start serialization of the timing-model memory hierarchy. Geometry
// (set count, ways, latencies) is configuration and is not serialized; the
// encodings carry only dynamic state and validate that the receiver was
// built with matching geometry, so a blob restored onto a differently
// configured hierarchy fails decode instead of silently diverging.

import "repro/internal/snap"

const cacheStateV = 1

func checkVersion(r *snap.Reader, what string) error {
	v := r.U8()
	if err := r.Err(); err != nil {
		return err
	}
	if v != cacheStateV {
		return snap.Corruptf("%s state version %d, want %d", what, v, cacheStateV)
	}
	return nil
}

func writeBools(w *snap.Writer, b []bool) {
	for _, v := range b {
		w.Bool(v)
	}
}

func readBools(r *snap.Reader, b []bool) {
	for i := range b {
		b[i] = r.Bool()
	}
}

func (s *Stats) save(w *snap.Writer) {
	w.U64(s.Accesses)
	w.U64(s.Hits)
	w.U64(s.Misses)
	w.U64(s.Evictions)
}

func (s *Stats) load(r *snap.Reader) {
	s.Accesses, s.Hits, s.Misses, s.Evictions = r.U64(), r.U64(), r.U64(), r.U64()
}

// SaveState appends the cache's dynamic state (tags, valid/dirty bits,
// replacement metadata, counters).
func (c *Cache) SaveState(w *snap.Writer) {
	w.U8(cacheStateV)
	w.U32(uint32(len(c.tags)))
	for _, t := range c.tags {
		w.U32(t)
	}
	writeBools(w, c.valid)
	writeBools(w, c.dirty)
	w.Raw(c.meta)
	w.Raw(c.rrPtr)
	c.stats.save(w)
}

// LoadState decodes state written by SaveState onto a cache of identical
// geometry.
func (c *Cache) LoadState(r *snap.Reader) error {
	if err := checkVersion(r, "cache"); err != nil {
		return err
	}
	if n := r.U32(); r.Err() == nil && int(n) != len(c.tags) {
		return snap.Corruptf("cache %s: %d lines, want %d", c.cfg.Name, n, len(c.tags))
	}
	tags := make([]uint32, len(c.tags))
	for i := range tags {
		tags[i] = r.U32()
	}
	valid := make([]bool, len(c.valid))
	dirty := make([]bool, len(c.dirty))
	readBools(r, valid)
	readBools(r, dirty)
	meta := r.Raw(len(c.meta))
	rrPtr := r.Raw(len(c.rrPtr))
	var st Stats
	st.load(r)
	if err := r.Err(); err != nil {
		return err
	}
	copy(c.tags, tags)
	copy(c.valid, valid)
	copy(c.dirty, dirty)
	copy(c.meta, meta)
	copy(c.rrPtr, rrPtr)
	c.stats = st
	return nil
}

// SaveState appends the DRAM delay model's counters (latency is config).
func (m *FixedMemory) SaveState(w *snap.Writer) {
	w.U8(cacheStateV)
	m.stats.save(w)
}

// LoadState decodes FixedMemory counters.
func (m *FixedMemory) LoadState(r *snap.Reader) error {
	if err := checkVersion(r, "memory"); err != nil {
		return err
	}
	var st Stats
	st.load(r)
	if err := r.Err(); err != nil {
		return err
	}
	m.stats = st
	return nil
}

// SaveState appends the TLB timing structure's dynamic state.
func (t *TLBTiming) SaveState(w *snap.Writer) {
	w.U8(cacheStateV)
	w.U32(uint32(len(t.entries)))
	for _, e := range t.entries {
		w.U32(e)
	}
	writeBools(w, t.valid)
	w.Raw(t.age)
	t.stats.save(w)
}

// LoadState decodes state written by SaveState onto a same-size TLB.
func (t *TLBTiming) LoadState(r *snap.Reader) error {
	if err := checkVersion(r, "tlb"); err != nil {
		return err
	}
	if n := r.U32(); r.Err() == nil && int(n) != len(t.entries) {
		return snap.Corruptf("tlb timing: %d entries, want %d", n, len(t.entries))
	}
	entries := make([]uint32, len(t.entries))
	for i := range entries {
		entries[i] = r.U32()
	}
	valid := make([]bool, len(t.valid))
	readBools(r, valid)
	age := r.Raw(len(t.age))
	var st Stats
	st.load(r)
	if err := r.Err(); err != nil {
		return err
	}
	copy(t.entries, entries)
	copy(t.valid, valid)
	copy(t.age, age)
	t.stats = st
	return nil
}

// SaveState appends the shared hierarchy's state: the L2 array, the DRAM
// counters, the directory (sorted by line for a canonical byte stream) and
// the coherence counters. The attached L1s are serialized by their owning
// timing models, not here.
func (c *Coherent) SaveState(w *snap.Writer) {
	w.U8(cacheStateV)
	c.l2.SaveState(w)
	c.mem.SaveState(w)

	keys := make([]uint32, 0, len(c.dir))
	for k := range c.dir {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		d := c.dir[k]
		w.U32(k)
		w.U64(d.sharers)
		w.U8(uint8(d.owner))
		w.Bool(d.dirty)
	}
	w.U64(c.stats.Transfers)
	w.U64(c.stats.Invalidations)
	w.U64(c.stats.Hops)
}

// LoadState decodes state written by SaveState.
func (c *Coherent) LoadState(r *snap.Reader) error {
	if err := checkVersion(r, "coherent"); err != nil {
		return err
	}
	if err := c.l2.LoadState(r); err != nil {
		return err
	}
	if err := c.mem.LoadState(r); err != nil {
		return err
	}
	n := r.U32()
	if r.Err() == nil && uint64(n)*14 > uint64(r.Remaining()) {
		return snap.Corruptf("coherent directory: %d entries exceeds remaining input", n)
	}
	dir := make(map[uint32]dirLine, n)
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		k := r.U32()
		d := dirLine{sharers: r.U64(), owner: int8(r.U8()), dirty: r.Bool()}
		dir[k] = d
	}
	var st CoherentStats
	st.Transfers, st.Invalidations, st.Hops = r.U64(), r.U64(), r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	c.dir = dir
	c.stats = st
	return nil
}
