package cache

import "testing"

func coherentPair(t *testing.T) (*Coherent, *CoherentPort, *CoherentPort) {
	t.Helper()
	c := NewCoherent(CoherentConfig{
		L2: DefaultL2(), MemLatency: 25, InterconnectLatency: 4, Cores: 2,
	})
	return c, c.Port(0), c.Port(1)
}

func TestCoherentReadSharing(t *testing.T) {
	c, p0, p1 := coherentPair(t)
	// Cold read: hop + L2 miss (8 + 25).
	if got := p0.Access(0x1000, false); got != 4+8+25 {
		t.Errorf("cold read latency = %d, want %d", got, 4+8+25)
	}
	// Second core reads the now-resident clean line: hop + L2 hit, no
	// coherence action.
	if got := p1.Access(0x1000, false); got != 4+8 {
		t.Errorf("shared read latency = %d, want %d", got, 4+8)
	}
	s := c.Stats()
	if s.Transfers != 0 || s.Invalidations != 0 {
		t.Errorf("clean sharing caused coherence actions: %+v", s)
	}
}

func TestCoherentWriteInvalidatesSharers(t *testing.T) {
	c, p0, p1 := coherentPair(t)
	p0.Access(0x2000, false)
	p1.Access(0x2000, false) // both cores share the line
	// Core 1 writes: one invalidation hop for core 0's copy, then an L2 hit.
	if got := p1.Access(0x2000, true); got != 4+4+8 {
		t.Errorf("invalidating write latency = %d, want %d", got, 4+4+8)
	}
	if s := c.Stats(); s.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", s.Invalidations)
	}
	// A write by the sole owner costs no invalidation.
	if got := p1.Access(0x2000, true); got != 4+8 {
		t.Errorf("owner re-write latency = %d, want %d", got, 4+8)
	}
}

func TestCoherentDirtyTransfer(t *testing.T) {
	c, p0, p1 := coherentPair(t)
	p0.Access(0x3000, true) // core 0 dirties the line
	// Core 1 reads: request hop + owner-transfer round trip + L2 hit.
	if got := p1.Access(0x3000, false); got != 4+8+8 {
		t.Errorf("dirty-transfer read latency = %d, want %d", got, 4+8+8)
	}
	if s := c.Stats(); s.Transfers != 1 {
		t.Errorf("transfers = %d, want 1", s.Transfers)
	}
	// The line is shared now; the owner's next read is plain.
	if got := p0.Access(0x3000, false); got != 4+8 {
		t.Errorf("post-transfer read latency = %d, want %d", got, 4+8)
	}
}

func TestCoherentStoreUpgradeBackInvalidates(t *testing.T) {
	c, p0, p1 := coherentPair(t)
	l1a := New(DefaultL1D(), p0)
	l1b := New(DefaultL1D(), p1)
	c.AttachL1(0, l1a)
	c.AttachL1(1, l1b)

	// Both cores pull the line into their private L1s (read fills).
	l1a.Access(0x5000, false)
	l1b.Access(0x5000, false)

	// Core 0 stores. Its L1 write hit hides the store from the port, so
	// the upgrade must charge the directory round trip plus one
	// invalidation hop, and drop core 1's copy.
	if got := c.Upgrade(0, 0x5000); got != 4+4 {
		t.Errorf("shared→owned upgrade latency = %d, want %d", got, 4+4)
	}
	if l1b.Contains(0x5000) {
		t.Error("remote L1 copy survived the upgrade")
	}
	if s := c.Stats(); s.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", s.Invalidations)
	}

	// The dirty owner stores for free.
	if got := c.Upgrade(0, 0x5000); got != 0 {
		t.Errorf("owner re-store charged %d cycles", got)
	}

	// Core 1 steals the line: round trip + dirty transfer + invalidation,
	// and core 0's copy is dropped.
	if got := c.Upgrade(1, 0x5000); got != 4+2*4+4 {
		t.Errorf("steal upgrade latency = %d, want %d", got, 4+2*4+4)
	}
	if l1a.Contains(0x5000) {
		t.Error("previous owner's L1 copy survived the steal")
	}
	if s := c.Stats(); s.Transfers != 1 || s.Invalidations != 2 {
		t.Errorf("stats after steal: %+v", s)
	}
}

func TestCoherentPortAsL1Next(t *testing.T) {
	c, p0, _ := coherentPair(t)
	l1 := New(DefaultL1D(), p0)
	// L1 miss forwards through the port: 1 (L1) + 4 (hop) + 8+25 (L2 miss).
	if got := l1.Access(0x4000, false); got != 1+4+8+25 {
		t.Errorf("L1-miss-through-port latency = %d, want %d", got, 1+4+8+25)
	}
	// L1 hit never touches the interconnect.
	hops := c.Stats().Hops
	if got := l1.Access(0x4000, false); got != 1 {
		t.Errorf("L1 hit latency = %d, want 1", got)
	}
	if c.Stats().Hops != hops {
		t.Error("L1 hit traversed the interconnect")
	}
}
