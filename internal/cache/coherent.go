package cache

import (
	"fmt"
	"math/bits"
)

// DefaultInterconnectLatency is the default per-hop core↔L2 interconnect
// delay of the multicore target, in target cycles. It sits between the L1
// and L2 hit latencies of the Figure 3 hierarchy: the shared L2 is one
// interconnect traversal away from every core.
const DefaultInterconnectLatency = 4

// CoherentConfig describes the shared memory-side hierarchy of a multicore
// target: one L2 array behind a crossbar, a directory tracking which cores'
// L1s hold each line, and the flat DRAM delay below.
type CoherentConfig struct {
	L2         Config
	MemLatency int
	// InterconnectLatency is the cost of one interconnect hop (core to L2
	// or L2 to core), charged on every port access and again for each
	// directory-induced remote action (owner transfer, sharer
	// invalidation). 0 selects DefaultInterconnectLatency.
	InterconnectLatency int
	Cores               int
}

// CoherentStats counts directory activity.
type CoherentStats struct {
	Transfers     uint64 // dirty lines pulled from a remote owner on a read
	Invalidations uint64 // L1 sharer copies invalidated by a remote write
	Hops          uint64 // interconnect traversals charged
}

// dirLine is one directory entry: which cores' L1s may hold the line, and
// whether one of them owns it dirty. The model is MSI-shaped: it tracks
// just enough state to charge transfer and invalidation latencies; data
// correctness lives in the functional models' shared memory.
type dirLine struct {
	sharers uint64
	owner   int8
	dirty   bool
}

// Coherent is the shared L2 + directory. Each core accesses it through its
// own port (a Level, so per-core L1s stack on top unchanged); the directory
// arbitrates the ports and charges coherence latency. All ports are driven
// from one goroutine by the multicore scheduler, in a deterministic order,
// so the modeled cycle counts are reproducible at any host parallelism.
type Coherent struct {
	cfg   CoherentConfig
	l2    *Cache
	mem   *FixedMemory
	dir   map[uint32]dirLine
	l1s   [][]*Cache // per-core private caches, for back-invalidation
	stats CoherentStats
}

// NewCoherent builds the shared hierarchy for cfg.Cores ports.
func NewCoherent(cfg CoherentConfig) *Coherent {
	if cfg.Cores <= 0 || cfg.Cores > 64 {
		panic(fmt.Sprintf("cache: coherent directory supports 1..64 cores, got %d", cfg.Cores))
	}
	if cfg.InterconnectLatency <= 0 {
		cfg.InterconnectLatency = DefaultInterconnectLatency
	}
	mem := NewFixedMemory(cfg.MemLatency)
	return &Coherent{
		cfg: cfg,
		l2:  New(cfg.L2, mem),
		mem: mem,
		dir: make(map[uint32]dirLine),
		l1s: make([][]*Cache, cfg.Cores),
	}
}

// AttachL1 registers core's private caches with the directory so write
// transitions can back-invalidate remote copies — without it the private
// L1s would keep serving lines the directory has already handed to another
// core's writer.
func (c *Coherent) AttachL1(core int, caches ...*Cache) {
	if core < 0 || core >= c.cfg.Cores {
		panic(fmt.Sprintf("cache: attach to port %d of a %d-core hierarchy", core, c.cfg.Cores))
	}
	c.l1s[core] = append(c.l1s[core], caches...)
}

// Port returns core's interconnect port; it implements Level so a private
// L1 can use it as its next level.
func (c *Coherent) Port(core int) *CoherentPort {
	if core < 0 || core >= c.cfg.Cores {
		panic(fmt.Sprintf("cache: port %d of a %d-core hierarchy", core, c.cfg.Cores))
	}
	return &CoherentPort{c: c, core: core}
}

// L2 exposes the shared array (stats reporting).
func (c *Coherent) L2() *Cache { return c.l2 }

// Memory exposes the DRAM delay model.
func (c *Coherent) Memory() *FixedMemory { return c.mem }

// Stats returns the directory counters.
func (c *Coherent) Stats() CoherentStats { return c.stats }

// access is the directory-arbitrated L2 access for one core.
func (c *Coherent) access(core int, addr uint32, write bool) int {
	hop := c.cfg.InterconnectLatency
	lat := hop // the request's own traversal to the L2
	c.stats.Hops++

	line := addr / uint32(c.cfg.L2.LineBytes)
	d := c.dir[line]
	if write {
		lat += c.claim(core, addr, &d)
	} else {
		// A read of a remotely dirty line pulls the data from the owner's
		// L1 (request + response hops) and leaves it shared.
		if d.dirty && int(d.owner) != core {
			lat += 2 * hop
			c.stats.Hops += 2
			c.stats.Transfers++
			d.dirty = false
		}
		d.sharers |= uint64(1) << core
	}
	c.dir[line] = d
	return lat + c.l2.Access(addr, write)
}

// claim performs the write transition for core on addr's line: pull a
// remote dirty copy, invalidate every other sharer (one hop per victim,
// plus the L1 back-invalidation), and record core as the dirty owner.
func (c *Coherent) claim(core int, addr uint32, d *dirLine) int {
	hop := c.cfg.InterconnectLatency
	lat := 0
	self := uint64(1) << core
	if d.dirty && int(d.owner) != core {
		lat += 2 * hop
		c.stats.Hops += 2
		c.stats.Transfers++
	}
	if others := d.sharers &^ self; others != 0 {
		n := bits.OnesCount64(others)
		lat += hop * n
		c.stats.Hops += uint64(n)
		c.stats.Invalidations += uint64(n)
		c.backInvalidate(others, addr)
	}
	d.sharers, d.owner, d.dirty = self, int8(core), true
	return lat
}

// backInvalidate drops addr's line from the private caches of every core
// in the mask.
func (c *Coherent) backInvalidate(cores uint64, addr uint32) {
	for cores != 0 {
		i := bits.TrailingZeros64(cores)
		cores &^= 1 << i
		for _, l1 := range c.l1s[i] {
			l1.Invalidate(addr)
		}
	}
}

// Upgrade is the store-side coherence action, consulted by a core's timing
// model on every store — including L1 write hits, where a private
// write-back cache would otherwise hide the ownership upgrade from the
// directory. It is free while the core stays the line's dirty owner (a
// core hammering its own data pays nothing extra); a store that steals the
// line from a remote owner or sharers pays the directory round trip plus
// the remote actions.
func (c *Coherent) Upgrade(core int, addr uint32) int {
	line := addr / uint32(c.cfg.L2.LineBytes)
	d := c.dir[line]
	if d.dirty && int(d.owner) == core {
		return 0
	}
	hop := c.cfg.InterconnectLatency
	lat := hop // the directory round trip
	c.stats.Hops++
	lat += c.claim(core, addr, &d)
	c.dir[line] = d
	return lat
}

// CoherentPort is one core's view of the shared hierarchy.
type CoherentPort struct {
	c    *Coherent
	core int
}

// Name implements Level.
func (p *CoherentPort) Name() string { return fmt.Sprintf("L2@core%d", p.core) }

// Access implements Level.
func (p *CoherentPort) Access(addr uint32, write bool) int {
	return p.c.access(p.core, addr, write)
}

// Stats implements Level: the shared array's counters (every port sees the
// same totals; per-core activity is visible in the L1s above).
func (p *CoherentPort) Stats() Stats { return p.c.l2.Stats() }
