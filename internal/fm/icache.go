package fm

import (
	"repro/internal/fullsys"
	"repro/internal/isa"
	"repro/internal/microcode"
	"repro/internal/trace"
)

// The predecode cache is the FM's analogue of QEMU's translation cache
// (the paper's FM is a modified QEMU, §2/§3.4): code is fetched, decoded
// and microcode-instantiated once, then replayed from the cache until
// something that could change the bytes behind a physical address — a
// store, a rollback, a mapping change — invalidates it. The steady-state
// per-instruction path becomes translate → probe → execute, with zero
// byte copies, zero isa.Decode calls and zero µop-template instantiation.
//
// Correctness rests on three invalidation rules:
//
//   - Stores: a per-physical-page code-presence bitmap marks pages that
//     back at least one cached instruction. A store that hits a marked
//     page bumps that page's generation counter; entries record the
//     generations of the page(s) they were fetched from and miss when
//     they disagree. Memory undo during rollback rewrites memory through
//     the same hook, so undone stores invalidate identically.
//
//   - Mapping changes: entries are keyed by *physical* address, so TLB and
//     paging-control changes are invisible to single-page entries — the
//     next fetch re-translates and probes whatever physical line the new
//     mapping yields. Page-crossing entries are the exception: their tail
//     bytes came from the physical page that *followed virtually* at fill
//     time, so any TLB write/flush, control-register write or rollback
//     bumps a global mapping generation that paged crossing entries must
//     match. Kernel/paging-off crossing entries are physically contiguous
//     and only need the two page generations (plus a paged/unpaged context
//     match, since the same physical line crosses differently under
//     paging).
//
//   - Program load: LoadProgram rewrites memory wholesale and flushes.
//
// All methods are nil-receiver-safe; a disabled cache (Config.ICacheEntries
// == 0) costs one nil check on the fetch path and nothing on stores.

// DefaultICacheEntries is the predecode-cache size the CLIs and the
// direct core.DefaultConfig use. 4 Ki direct-mapped slots cover the
// resident code of every bundled workload while keeping the zeroed
// footprint small enough to construct per run; the knob only trades host
// memory for FM speed — architected results are identical at any size.
const DefaultICacheEntries = 4096

// icEntry is one direct-mapped predecode-cache slot. size == 0 marks an
// empty slot (no legal instruction encodes in zero bytes).
type icEntry struct {
	pa      isa.Word // physical address of the first instruction byte
	size    uint8    // fetch length in bytes; 0 = invalid slot
	crosses bool     // instruction bytes span two physical pages
	paged   bool     // filled from a paged user-mode fetch
	gen1    uint32   // pageGen of the first page at fill time
	gen2    uint32   // pageGen of the last page at fill time
	page2   isa.Word // physical page number of the last instruction byte
	mapGen  uint32   // mapping generation at fill time (paged crossers)
	inst    isa.Inst
	pre     microcode.Precracked

	// Predecoded trace-entry register fields (fillRegs is pure in the
	// decoded instruction, so its output is cached alongside it).
	srcA, srcB, dst   isa.Reg
	readsCC, writesCC bool
}

// icache is the direct-mapped predecode cache.
type icache struct {
	slots []icEntry
	mask  isa.Word

	pageGen  []uint32 // per-physical-page store generation
	codePage []uint64 // bitmap: page backs at least one cached instruction
	mapGen   uint32   // bumped on TLB/CR mutations and rollbacks

	// Statistics, published as fm_icache_* by Model.PublishTelemetry.
	hits          uint64
	misses        uint64
	invalidations uint64
	flushes       uint64
}

// newICache sizes the cache to the next power of two ≥ entries over a
// memBytes physical memory.
func newICache(entries, memBytes int) *icache {
	n := 1
	for n < entries {
		n <<= 1
	}
	pages := (memBytes + fullsys.PageSize - 1) >> fullsys.PageShift
	return &icache{
		slots:    make([]icEntry, n),
		mask:     isa.Word(n - 1),
		pageGen:  make([]uint32, pages),
		codePage: make([]uint64, (pages+63)/64),
	}
}

func (c *icache) markCode(page isa.Word) {
	c.codePage[page>>6] |= 1 << (page & 63)
}

func (c *icache) codeBacked(page isa.Word) bool {
	return c.codePage[page>>6]&(1<<(page&63)) != 0
}

// probe looks up the instruction at physical address pa. paged reports the
// current translation context (user mode with paging enabled).
func (c *icache) probe(pa isa.Word, paged bool) (*icEntry, bool) {
	if c == nil {
		return nil, false
	}
	e := &c.slots[pa&c.mask]
	if e.size == 0 || e.pa != pa || e.gen1 != c.pageGen[pa>>fullsys.PageShift] {
		c.misses++
		return nil, false
	}
	if e.crosses {
		// The tail bytes' location depends on how the next virtual page
		// mapped at fill time; revalidate that context (see file comment).
		if e.paged != paged || (e.paged && e.mapGen != c.mapGen) || e.gen2 != c.pageGen[e.page2] {
			c.misses++
			return nil, false
		}
	}
	c.hits++
	return e, true
}

// fill installs the freshly decoded instruction at pa. page2 is the
// physical page holding the last instruction byte (== the first page for
// non-crossing instructions).
func (c *icache) fill(pa isa.Word, inst isa.Inst, crosses, paged bool, page2 isa.Word, pre microcode.Precracked) {
	if c == nil {
		return
	}
	page1 := pa >> fullsys.PageShift
	if !crosses {
		page2 = page1
	}
	e := icEntry{
		pa:      pa,
		size:    uint8(inst.Size),
		crosses: crosses,
		paged:   paged,
		gen1:    c.pageGen[page1],
		gen2:    c.pageGen[page2],
		page2:   page2,
		mapGen:  c.mapGen,
		inst:    inst,
		pre:     pre,
	}
	var scratch trace.Entry
	fillRegs(inst, &scratch)
	e.srcA, e.srcB, e.dst = scratch.SrcA, scratch.SrcB, scratch.Dst
	e.readsCC, e.writesCC = scratch.ReadsCC, scratch.WritesCC
	c.slots[pa&c.mask] = e
	c.markCode(page1)
	if crosses {
		c.markCode(page2)
	}
}

// noteStore invalidates cached instructions overlapped by an n-byte write
// at physical address pa. Called from Model.store and from rollback memory
// undo (which rewrites memory without going through store).
func (c *icache) noteStore(pa isa.Word, n int) {
	if c == nil {
		return
	}
	p := pa >> fullsys.PageShift
	if c.codeBacked(p) {
		c.pageGen[p]++
		c.invalidations++
	}
	if p2 := (pa + isa.Word(n) - 1) >> fullsys.PageShift; p2 != p && c.codeBacked(p2) {
		c.pageGen[p2]++
		c.invalidations++
	}
}

// noteMapping records a change to address-translation state (TLB write or
// flush, control-register write, rollback): paged page-crossing entries
// fetched their tail through the old mapping and must re-fetch.
func (c *icache) noteMapping() {
	if c == nil {
		return
	}
	c.mapGen++
}

// flush empties the cache (program load).
func (c *icache) flush() {
	if c == nil {
		return
	}
	clear(c.slots)
	clear(c.codePage)
	c.flushes++
}
