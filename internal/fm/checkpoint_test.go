package fm

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

// checkpointed builds a model using the leapfrog-checkpoint engine.
func checkpointed(prog *isa.Program, interval int) *Model {
	m := New(Config{
		MemBytes: 1 << 20, DisableInterrupts: true,
		Rollback: RollbackCheckpoint, CheckpointInterval: interval,
	})
	m.LoadProgram(prog)
	return m
}

const checkpointSrc = `
	movi sp, 0x9000
	movi r0, 0
	movi r1, 0
	movi r4, 0x4000
loop:
	addi r0, 3
	stw  r0, [r4]
	ldw  r2, [r4]
	add  r1, r2
	push r1
	pop  r3
	inc  r1
	movi r5, 'c'
	out  r5, 0x10
	cmpi r1, 1500
	jl   loop
	halt
`

// TestCheckpointEquivalence is the engine-equivalence property: under an
// identical random re-steer schedule, the journal engine and the
// leapfrog-checkpoint engine produce the same trace and the same final
// state.
func TestCheckpointEquivalence(t *testing.T) {
	prog := isa.MustAssemble(checkpointSrc, 0x1000)

	type driver struct {
		m       *Model
		entries []trace.Entry
	}
	run := func(m *Model, seed int64) driver {
		d := driver{m: m}
		rng := rand.New(rand.NewSource(seed))
		for {
			e, ok := m.Step()
			if !ok {
				break
			}
			if int(e.IN) >= len(d.entries) {
				d.entries = append(d.entries, e)
			} else {
				d.entries[e.IN] = e
			}
			if rng.Intn(9) == 0 && m.JournalLen() > 1 {
				back := rng.Intn(min(25, m.JournalLen()-1)) + 1
				target := m.IN() - uint64(back)
				if err := m.SetPC(target, d.entries[target].PC); err != nil {
					t.Fatalf("SetPC: %v", err)
				}
			}
			if rng.Intn(13) == 0 && m.IN() > 40 {
				m.Commit(m.IN() - 40)
			}
		}
		return d
	}

	ref := New(Config{MemBytes: 1 << 20, DisableInterrupts: true})
	ref.LoadProgram(prog)
	refRun := run(ref, 99)

	for _, interval := range []int{1, 7, 64} {
		cp := run(checkpointed(prog, interval), 99)
		if len(cp.entries) != len(refRun.entries) {
			t.Fatalf("interval %d: %d entries vs %d", interval, len(cp.entries), len(refRun.entries))
		}
		for i := range cp.entries {
			if !entriesEqual(cp.entries[i], refRun.entries[i]) {
				t.Fatalf("interval %d: entry %d differs:\n%+v\n%+v",
					interval, i, cp.entries[i], refRun.entries[i])
			}
		}
		if cp.m.Scalars != refRun.m.Scalars {
			t.Fatalf("interval %d: final scalar state differs", interval)
		}
		if cp.m.Rollbacks == 0 {
			t.Fatalf("interval %d: no rollbacks exercised", interval)
		}
		if interval > 1 && cp.m.ReExecuted() == 0 {
			t.Errorf("interval %d: no re-execution counted (αBA missing)", interval)
		}
	}
	if refRun.m.ReExecuted() != 0 {
		t.Error("journal engine should never re-execute")
	}
}

// TestCheckpointReplayCost: the coarser the checkpoint interval, the more
// re-execution a rollback costs — §3.1's αBA trade-off.
func TestCheckpointReplayCost(t *testing.T) {
	// A non-terminating variant: the test bounds the step count itself.
	prog := isa.MustAssemble(`
		movi sp, 0x9000
		movi r4, 0x4000
	loop:	addi r0, 3
		stw  r0, [r4]
		ldw  r2, [r4]
		add  r1, r2
		jmp  loop
	`, 0x1000)
	cost := func(interval int) uint64 {
		m := checkpointed(prog, interval)
		var pcs []isa.Word
		for i := 0; i < 600; i++ {
			e, ok := m.Step()
			if !ok {
				t.Fatal("ended early")
			}
			pcs = append(pcs, e.PC)
			if i%50 == 49 {
				target := m.IN() - 10
				if err := m.SetPC(target, pcs[target]); err != nil {
					t.Fatal(err)
				}
				pcs = pcs[:target]
			}
		}
		return m.ReExecuted()
	}
	fine := cost(4)
	coarse := cost(128)
	if coarse <= fine {
		t.Errorf("coarse checkpoints (%d re-executed) not above fine (%d)", coarse, fine)
	}
}

// TestCheckpointCommitLeapfrogs: commits release old checkpoints while
// keeping rollback capability for the uncommitted window.
func TestCheckpointCommitLeapfrogs(t *testing.T) {
	prog := isa.MustAssemble(checkpointSrc, 0x1000)
	m := checkpointed(prog, 8)
	var pcs []isa.Word
	for i := 0; i < 200; i++ {
		e, ok := m.Step()
		if !ok {
			t.Fatal("ended early")
		}
		pcs = append(pcs, e.PC)
	}
	m.Commit(150)
	if m.JournalLen() > 64 {
		t.Errorf("window %d after commit; checkpoints not released", m.JournalLen())
	}
	// Rollback inside the live window still works...
	if err := m.SetPC(180, pcs[180]); err != nil {
		t.Errorf("rollback to uncommitted IN failed: %v", err)
	}
	// ...but not below the commit frontier's checkpoint.
	if err := m.SetPC(10, pcs[10]); err == nil {
		t.Error("rollback below the released checkpoints succeeded")
	}
}

// TestCheckpointWithDevicesAndIdle exercises replay across I/O and HALT:
// the idle log must reproduce interrupt timing exactly.
func TestCheckpointWithDevicesAndIdle(t *testing.T) {
	src := `
		.org 0
		.space 256
		.org 0x400
	timer:	inc  r10
		movi r9, 1
		out  r9, 0x22
		iret
		.org 0x1000
	entry:
		movi r8, timer
		movi r9, 64
		stw  r8, [r9]
		movi r8, 100
		out  r8, 0x20
		sti
		movi r7, 0
	work:	inc  r7
		cmpi r7, 40
		jl   work
		halt            ; wait for a timer tick
		cmpi r10, 4
		jl   work
		cli
		halt
	.entry entry
	`
	prog := isa.MustAssemble(src, 0)
	run := func(m *Model, resteer bool) ([]trace.Entry, Scalars) {
		var entries []trace.Entry
		idleGuard := 0
		lastResteer := uint64(0)
		for {
			e, ok := m.Step()
			if !ok {
				if m.Halted() && m.Flags&isa.FlagI != 0 && idleGuard < 1_000_000 {
					m.AdvanceIdle(7)
					idleGuard++
					continue
				}
				break
			}
			idleGuard = 0
			if int(e.IN) >= len(entries) {
				entries = append(entries, e)
			} else {
				entries[e.IN] = e
			}
			// Guard against re-steering the same IN after its own replay
			// (that would loop forever).
			if resteer && e.IN%37 == 36 && e.IN > lastResteer && m.JournalLen() > 5 {
				lastResteer = e.IN
				target := m.IN() - 4
				if err := m.SetPC(target, entries[target].PC); err != nil {
					t.Fatal(err)
				}
			}
		}
		return entries, m.Scalars
	}
	ref := New(Config{MemBytes: 1 << 20})
	ref.LoadProgram(prog)
	refEntries, refState := run(ref, false)

	cp := New(Config{MemBytes: 1 << 20, Rollback: RollbackCheckpoint, CheckpointInterval: 16})
	cp.LoadProgram(prog)
	cpEntries, cpState := run(cp, true)

	if len(cpEntries) != len(refEntries) {
		t.Fatalf("%d entries vs %d", len(cpEntries), len(refEntries))
	}
	if cpState != refState {
		t.Fatalf("state diverged across HALT/interrupt replay:\n%+v\n%+v", cpState, refState)
	}
	if cp.GPR[10] != 4 {
		t.Errorf("timer handler ran %d times, want 4", cp.GPR[10])
	}
}
