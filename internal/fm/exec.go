package fm

import (
	"fmt"
	"math"

	"repro/internal/fullsys"
	"repro/internal/isa"
	"repro/internal/microcode"
	"repro/internal/trace"
)

// Step executes one dynamic instruction (delivering a pending interrupt
// first when enabled) and returns its trace entry. ok is false when the
// target is halted or has hit a fatal condition (see Fatal) — no entry is
// produced then.
func (m *Model) Step() (trace.Entry, bool) {
	if m.halted || m.fatal != nil {
		return trace.Entry{}, false
	}
	m.beginInstruction()
	now := m.Now()
	if m.Bus.Due(now) {
		m.journalBus()
	}
	m.Bus.Tick(now)

	// Interrupt delivery at the instruction boundary. The prototype "does
	// not model interrupts ... accurately (though they are handled
	// functionally correctly)" — the same holds here: the FM delivers at
	// its own boundary; the TM replays the resulting trace.
	interrupted := false
	if !m.cfg.DisableInterrupts && m.Flags&isa.FlagI != 0 {
		if line := m.Bus.Pending(); line >= 0 {
			if !m.replay {
				m.Interrupts++
			}
			if !m.deliverTrap(uint8(isa.VecIRQBase+line), m.PC, 0) {
				m.abortInstruction()
				return trace.Entry{}, false
			}
			interrupted = true
		}
	}

	e := trace.Entry{IN: m.in, PC: m.PC, Kernel: m.Kernel(), Interrupt: interrupted}

	inst, ce, ppc, f := m.fetchDecode(m.PC)
	if f != nil {
		return m.faultEntry(e, isa.Inst{}, nil, f)
	}
	e.PPC = ppc
	e.Op = inst.Op
	e.Size = uint8(inst.Size)
	var pre *microcode.Precracked
	if ce != nil {
		pre = &ce.pre
		e.SrcA, e.SrcB, e.Dst = ce.srcA, ce.srcB, ce.dst
		e.ReadsCC, e.WritesCC = ce.readsCC, ce.writesCC
	} else {
		fillRegs(inst, &e)
	}

	nextPC := m.PC + isa.Word(inst.Size)
	f = m.execute(inst, nextPC, &e)
	if f != nil {
		return m.faultEntry(e, inst, pre, f)
	}
	if m.fatal != nil {
		m.abortInstruction()
		return trace.Entry{}, false
	}
	return m.finishEntry(e, inst, pre)
}

// Fatal returns the unrecoverable condition that stopped the model, if any
// (an unhandled trap with no vector table installed).
func (m *Model) Fatal() error { return m.fatal }

// fetchDecode fetches and decodes the instruction at virtual address pc.
// With the predecode cache enabled (icache.go) the steady-state path is
// translate → probe → done, with no byte copies and no isa.Decode call;
// the slow path fills the cache on success. The returned cache entry
// (nil when uncached) carries the memoized µop instantiation and
// predecoded trace-entry register fields. It is only valid until the next
// fetch — Step consumes it within the same instruction.
func (m *Model) fetchDecode(pc isa.Word) (isa.Inst, *icEntry, isa.Word, *fault) {
	pa, f := m.translate(pc, false)
	if f != nil {
		return isa.Inst{}, nil, 0, f
	}
	if !m.Mem.InRange(pa, 1) {
		return isa.Inst{}, nil, 0, &fault{vector: isa.VecProt, faultVA: pc, retry: true}
	}
	paged := !m.Kernel() && m.CR[isa.CRPaging] != 0
	if e, ok := m.icache.probe(pa, paged); ok {
		return e.inst, e, pa, nil
	}
	inst, crosses, page2, f := m.fetchDecodeSlow(pc, pa, paged)
	if f != nil {
		return isa.Inst{}, nil, 0, f
	}
	if c := m.icache; c != nil {
		c.fill(pa, inst, crosses, paged, page2, m.table.Precrack(inst))
		return inst, &c.slots[pa&c.mask], pa, nil
	}
	return inst, nil, pa, nil
}

// fetchDecodeSlow is the uncached fetch path: copy up to MaxInstLen bytes
// (split at the page boundary under paging, walking the next page only if
// the decoder needs it) and run the variable-length decoder. It also
// reports whether the instruction's bytes span two physical pages and the
// physical page of the last byte — the predecode cache revalidates
// crossing entries against both pages.
func (m *Model) fetchDecodeSlow(pc, pa isa.Word, paged bool) (isa.Inst, bool, isa.Word, *fault) {
	var buf [isa.MaxInstLen]byte
	n := isa.MaxInstLen
	if !paged {
		// Kernel or paging off: virtually contiguous is physically
		// contiguous, one copy suffices.
		if rem := m.Mem.Size() - int(pa); rem < n {
			n = rem
		}
		copy(buf[:n], m.Mem.Bytes(pa, n))
		inst, derr := isa.Decode(buf[:n], pc)
		if derr != nil {
			return isa.Inst{}, false, 0, &fault{vector: isa.VecIllegal, faultVA: pc}
		}
		last := pa + isa.Word(inst.Size) - 1
		return inst, last>>fullsys.PageShift != pa>>fullsys.PageShift, last >> fullsys.PageShift, nil
	}
	// Paged fetch: bytes up to the page end, then (only if the decoder
	// needs them) the next page.
	rem := int(fullsys.PageSize - pc&(fullsys.PageSize-1))
	if rem < n {
		n = rem
	}
	copy(buf[:n], m.Mem.Bytes(pa, n))
	crosses := false
	var page2 isa.Word
	if n < isa.MaxInstLen {
		if _, derr := isa.Decode(buf[:n], pc); derr != nil {
			// Might be a page-crossing instruction: try the next page.
			pa2, f2 := m.translate(pc+isa.Word(n), false)
			if f2 != nil {
				// Decode is deterministic: the truncated prefix just
				// failed, so re-decoding it cannot succeed — the fault on
				// the second page is the architectural outcome.
				return isa.Inst{}, false, 0, f2
			}
			if m.Mem.InRange(pa2, 1) {
				n2 := isa.MaxInstLen - n
				if rem2 := m.Mem.Size() - int(pa2); rem2 < n2 {
					n2 = rem2
				}
				copy(buf[n:n+n2], m.Mem.Bytes(pa2, n2))
				n += n2
				// If the full decode below succeeds it consumed bytes the
				// truncated decode lacked, so the instruction crosses.
				crosses = true
				page2 = pa2 >> fullsys.PageShift
			}
		}
	}
	inst, derr := isa.Decode(buf[:n], pc)
	if derr != nil {
		return isa.Inst{}, false, 0, &fault{vector: isa.VecIllegal, faultVA: pc}
	}
	return inst, crosses, page2, nil
}

// faultEntry finalizes the trace entry for an instruction that raised an
// exception: the FM indicates the exception in the trace (§3.4) and steers
// to the handler.
func (m *Model) faultEntry(e trace.Entry, inst isa.Inst, pre *microcode.Precracked, f *fault) (trace.Entry, bool) {
	if !m.replay {
		m.Exceptions++
	}
	epc := m.PC
	if !f.retry {
		epc = m.PC + isa.Word(inst.Size)
	}
	if !m.deliverTrap(f.vector, epc, f.faultVA) {
		m.abortInstruction()
		return trace.Entry{}, false
	}
	e.Exception = true
	e.ExcVector = f.vector
	e.Branch = true
	e.Taken = true
	e.NextPC = m.PC // handler address
	if inst.Size == 0 {
		e.Op = isa.OpNop // fetch fault: no opcode was decoded
		e.Size = 0
	}
	return m.finishEntry(e, inst, pre)
}

// finishEntry cracks the instruction (from the cached Precracked when one
// is available), accounts trace bandwidth and advances the instruction
// number.
func (m *Model) finishEntry(e trace.Entry, inst isa.Inst, pre *microcode.Precracked) (trace.Entry, bool) {
	iters := int(e.RepIterations)
	if !inst.Rep {
		iters = 1
	}
	if isa.Valid(e.Op) && e.Op == inst.Op {
		var c microcode.Crack
		if pre != nil {
			c = pre.Crack(iters)
		} else {
			c = m.table.Crack(inst, iters)
		}
		if !m.replay {
			m.Coverage.Add(c)
		}
		e.UopCount = uint32(c.Count)
		e.UOps = c.UOps
		e.Microcode = c.Valid
	} else {
		// Fetch fault placeholder: one µop, valid.
		e.UopCount = 1
		e.Microcode = true
		if !m.replay {
			m.Coverage.Instructions++
			m.Coverage.Covered++
			m.Coverage.UOps++
		}
	}
	if !m.replay {
		m.TraceWords += uint64(m.cfg.Encoding.Words(e))
	}
	m.in++
	return e, true
}

// deliverTrap enters the kernel through the IVT. Returns false (and sets
// the fatal condition) when no handler is installed.
func (m *Model) deliverTrap(vec uint8, epc isa.Word, faultVA isa.Word) bool {
	vecAddr := m.CR[isa.CRIVT] + isa.Word(vec)*isa.VectorStride
	if !m.Mem.InRange(vecAddr, 4) {
		m.fatal = fmt.Errorf("fm: trap vector %d: IVT slot %#x outside memory", vec, vecAddr)
		return false
	}
	handler := isa.Word(m.Mem.Read(vecAddr, 4))
	if handler == 0 {
		m.fatal = fmt.Errorf("fm: unhandled trap vector %d at pc %#x", vec, m.PC)
		return false
	}
	m.CR[isa.CREPC] = epc
	m.CR[isa.CREFLAGS] = m.Flags
	m.CR[isa.CRECause] = isa.Word(vec)
	m.CR[isa.CRFaultVA] = faultVA
	m.Flags &^= isa.FlagI | isa.FlagU
	m.PC = handler
	return true
}

// setFlagsZN sets Z and N from v, clearing C and V.
func (m *Model) setFlagsZN(v isa.Word) {
	m.Flags &^= isa.FlagZ | isa.FlagN | isa.FlagC | isa.FlagV
	if v == 0 {
		m.Flags |= isa.FlagZ
	}
	if int32(v) < 0 {
		m.Flags |= isa.FlagN
	}
}

// setFlagsAdd sets all four flags for r = a + b.
func (m *Model) setFlagsAdd(a, b, r isa.Word) {
	m.setFlagsZN(r)
	if r < a {
		m.Flags |= isa.FlagC
	}
	if (^(a ^ b) & (a ^ r) >> 31) != 0 {
		m.Flags |= isa.FlagV
	}
}

// setFlagsSub sets all four flags for r = a - b.
func (m *Model) setFlagsSub(a, b, r isa.Word) {
	m.setFlagsZN(r)
	if a < b {
		m.Flags |= isa.FlagC
	}
	if ((a ^ b) & (a ^ r) >> 31) != 0 {
		m.Flags |= isa.FlagV
	}
}

// setFlagsFloat sets Z/N from a float compare a-b.
func (m *Model) setFlagsFloat(a, b float64) {
	m.Flags &^= isa.FlagZ | isa.FlagN | isa.FlagC | isa.FlagV
	switch {
	case a == b:
		m.Flags |= isa.FlagZ
	case a < b:
		m.Flags |= isa.FlagN | isa.FlagC
	}
	if math.IsNaN(a) || math.IsNaN(b) {
		m.Flags |= isa.FlagV
	}
}

// cond evaluates a conditional branch predicate from FLAGS.
func (m *Model) cond(op isa.Op) bool {
	z := m.Flags&isa.FlagZ != 0
	n := m.Flags&isa.FlagN != 0
	c := m.Flags&isa.FlagC != 0
	v := m.Flags&isa.FlagV != 0
	switch op {
	case isa.OpJz:
		return z
	case isa.OpJnz:
		return !z
	case isa.OpJl:
		return n != v
	case isa.OpJge:
		return n == v
	case isa.OpJg:
		return !z && n == v
	case isa.OpJle:
		return z || n != v
	case isa.OpJc:
		return c
	case isa.OpJnc:
		return !c
	}
	panic(fmt.Sprintf("fm: cond on %v", op))
}

// privCheck raises a protection fault for kernel-only instructions in user
// mode.
func (m *Model) privCheck(in isa.Info) *fault {
	if in.Priv && !m.Kernel() {
		return &fault{vector: isa.VecProt, faultVA: m.PC, retry: false}
	}
	return nil
}

// fpRegOf extracts the FPR index from a register name known to be FP.
func fpRegOf(r isa.Reg) int { return int(r - isa.FPRBase) }

// execute runs one decoded instruction. nextPC is the fall-through PC. It
// fills the dynamic fields of the trace entry and updates m.PC.
func (m *Model) execute(inst isa.Inst, nextPC isa.Word, e *trace.Entry) *fault {
	in := inst.Info()
	if f := m.privCheck(in); f != nil {
		return f
	}
	branchTo := func(target isa.Word, taken bool) {
		e.Branch = true
		e.Cond = in.Cond
		e.Taken = taken
		if taken {
			nextPC = target
		}
		e.NextPC = nextPC
	}
	rel := func() isa.Word { return nextPC + isa.Word(int32(inst.Imm)) }

	switch inst.Op {
	case isa.OpNop, isa.OpPause:
	case isa.OpHalt:
		m.halted = true
	case isa.OpMovRR:
		m.GPR[inst.Rd] = m.GPR[inst.Rs]
	case isa.OpMovRI, isa.OpMovRI8:
		m.GPR[inst.Rd] = isa.Word(inst.Imm)
	case isa.OpAddRR, isa.OpAddRI:
		a := m.GPR[inst.Rd]
		b := m.aluOperand(inst)
		r := a + b
		m.GPR[inst.Rd] = r
		m.setFlagsAdd(a, b, r)
	case isa.OpSubRR, isa.OpSubRI:
		a := m.GPR[inst.Rd]
		b := m.aluOperand(inst)
		r := a - b
		m.GPR[inst.Rd] = r
		m.setFlagsSub(a, b, r)
	case isa.OpAndRR, isa.OpAndRI:
		m.GPR[inst.Rd] &= m.aluOperand(inst)
		m.setFlagsZN(m.GPR[inst.Rd])
	case isa.OpOrRR, isa.OpOrRI:
		m.GPR[inst.Rd] |= m.aluOperand(inst)
		m.setFlagsZN(m.GPR[inst.Rd])
	case isa.OpXorRR, isa.OpXorRI:
		m.GPR[inst.Rd] ^= m.aluOperand(inst)
		m.setFlagsZN(m.GPR[inst.Rd])
	case isa.OpShlRR, isa.OpShlRI8:
		m.GPR[inst.Rd] <<= m.aluOperand(inst) & 31
		m.setFlagsZN(m.GPR[inst.Rd])
	case isa.OpShrRR, isa.OpShrRI8:
		m.GPR[inst.Rd] >>= m.aluOperand(inst) & 31
		m.setFlagsZN(m.GPR[inst.Rd])
	case isa.OpSarRR, isa.OpSarRI8:
		m.GPR[inst.Rd] = isa.Word(int32(m.GPR[inst.Rd]) >> (m.aluOperand(inst) & 31))
		m.setFlagsZN(m.GPR[inst.Rd])
	case isa.OpMulRR:
		m.GPR[inst.Rd] *= m.GPR[inst.Rs]
		m.setFlagsZN(m.GPR[inst.Rd])
	case isa.OpDivRR, isa.OpModRR:
		d := int32(m.GPR[inst.Rs])
		if d == 0 {
			return &fault{vector: isa.VecDivZero, faultVA: m.PC, retry: true}
		}
		a := int32(m.GPR[inst.Rd])
		if a == math.MinInt32 && d == -1 {
			// Wrap instead of faulting (documented ISA choice).
			if inst.Op == isa.OpDivRR {
				m.GPR[inst.Rd] = isa.Word(1) << 31
			} else {
				m.GPR[inst.Rd] = 0
			}
		} else if inst.Op == isa.OpDivRR {
			m.GPR[inst.Rd] = isa.Word(a / d)
		} else {
			m.GPR[inst.Rd] = isa.Word(a % d)
		}
		m.setFlagsZN(m.GPR[inst.Rd])
	case isa.OpNegR:
		m.GPR[inst.Rd] = -m.GPR[inst.Rd]
		m.setFlagsZN(m.GPR[inst.Rd])
	case isa.OpNotR:
		m.GPR[inst.Rd] = ^m.GPR[inst.Rd]
		m.setFlagsZN(m.GPR[inst.Rd])
	case isa.OpIncR:
		m.GPR[inst.Rd]++
		m.setFlagsZN(m.GPR[inst.Rd])
	case isa.OpDecR:
		m.GPR[inst.Rd]--
		m.setFlagsZN(m.GPR[inst.Rd])
	case isa.OpCmpRR, isa.OpCmpRI:
		a := m.GPR[inst.Rd]
		b := m.aluOperand(inst)
		m.setFlagsSub(a, b, a-b)
	case isa.OpTestRR:
		m.setFlagsZN(m.GPR[inst.Rd] & m.GPR[inst.Rs])
	case isa.OpLea:
		m.GPR[inst.Rd] = m.GPR[inst.Rs] + isa.Word(inst.Disp)
	case isa.OpLdW, isa.OpLdH, isa.OpLdB:
		size := memAccessSize(inst.Op)
		va := m.GPR[inst.Rs] + isa.Word(inst.Disp)
		v, pa, f := m.load(va, size)
		if f != nil {
			return f
		}
		m.GPR[inst.Rd] = isa.Word(v)
		e.MemVA, e.MemPA, e.MemSize = va, pa, uint8(size)
	case isa.OpStW, isa.OpStH, isa.OpStB:
		size := memAccessSize(inst.Op)
		va := m.GPR[inst.Rs] + isa.Word(inst.Disp)
		pa, f := m.store(va, uint64(m.GPR[inst.Rd]), size)
		if f != nil {
			return f
		}
		e.MemVA, e.MemPA, e.MemSize, e.IsStore = va, pa, uint8(size), true
	case isa.OpPush:
		va := m.GPR[isa.RegSP] - 4
		pa, f := m.store(va, uint64(m.GPR[inst.Rd]), 4)
		if f != nil {
			return f
		}
		m.GPR[isa.RegSP] = va
		e.MemVA, e.MemPA, e.MemSize, e.IsStore = va, pa, 4, true
	case isa.OpPop:
		va := m.GPR[isa.RegSP]
		v, pa, f := m.load(va, 4)
		if f != nil {
			return f
		}
		m.GPR[inst.Rd] = isa.Word(v)
		m.GPR[isa.RegSP] = va + 4
		e.MemVA, e.MemPA, e.MemSize = va, pa, 4
	case isa.OpLl:
		// Load-linked: an ordinary word load that also records the link
		// (address + loaded value) in the architectural link register. The
		// link lives in Scalars, so rollback restores it exactly and a
		// checkpoint replay reproduces the original ll/sc outcomes.
		va := m.GPR[inst.Rs] + isa.Word(inst.Disp)
		v, pa, f := m.load(va, 4)
		if f != nil {
			return f
		}
		m.GPR[inst.Rd] = isa.Word(v)
		m.LLValid, m.LLAddr, m.LLVal = true, va, isa.Word(v)
		e.MemVA, e.MemPA, e.MemSize = va, pa, 4
	case isa.OpSc:
		// Store-conditional: succeeds iff the link is live, names this
		// address, and the word in memory still holds the linked value —
		// an intervening store (own or remote core, committed or undone)
		// that changed the value fails the sc. Because success is a pure
		// function of (Scalars, memory), it needs no hidden reservation
		// state and is stable under rollback re-execution.
		va := m.GPR[inst.Rs] + isa.Word(inst.Disp)
		pa, f := m.translate(va, true)
		if f != nil {
			return f
		}
		if !m.Mem.InRange(pa, 4) {
			return &fault{vector: isa.VecProt, faultVA: va, retry: true}
		}
		ok := m.LLValid && va == m.LLAddr && isa.Word(m.Mem.Read(pa, 4)) == m.LLVal
		m.LLValid = false // the link is consumed either way
		if ok {
			m.journalMem(pa, 4)
			m.noteStore(pa, 4)
			m.Mem.Write(pa, uint64(m.GPR[inst.Rd]), 4)
			m.GPR[inst.Rd] = 1
		} else {
			m.GPR[inst.Rd] = 0
		}
		m.setFlagsZN(m.GPR[inst.Rd]) // Z set on failure: `jz retry`
		e.MemVA, e.MemPA, e.MemSize, e.IsStore = va, pa, 4, ok
	case isa.OpJmp:
		branchTo(rel(), true)
	case isa.OpJz, isa.OpJnz, isa.OpJl, isa.OpJge, isa.OpJg, isa.OpJle, isa.OpJc, isa.OpJnc:
		branchTo(rel(), m.cond(inst.Op))
	case isa.OpJmpR:
		branchTo(m.GPR[inst.Rd], true)
	case isa.OpCall:
		m.GPR[isa.RegLR] = nextPC
		branchTo(rel(), true)
	case isa.OpCallR:
		target := m.GPR[inst.Rd]
		m.GPR[isa.RegLR] = nextPC
		branchTo(target, true)
	case isa.OpRet:
		branchTo(m.GPR[isa.RegLR], true)
	case isa.OpLoop:
		// x86-style LOOP: the count register is implicit (R2, the string
		// count register).
		m.GPR[2]--
		m.setFlagsZN(m.GPR[2])
		branchTo(rel(), m.GPR[2] != 0)
	case isa.OpMovs, isa.OpStos, isa.OpLods, isa.OpCmps, isa.OpScas:
		if f := m.execString(inst, e); f != nil {
			return f
		}
	case isa.OpSyscall:
		// A trap by design, not an exception: EPC is the next instruction
		// and the trace records an ordinary taken branch to the handler.
		if !m.deliverTrap(isa.VecSyscall, nextPC, 0) {
			return nil // fatal set; Step aborts
		}
		branchTo(m.PC, true)
	case isa.OpBreak:
		if !m.deliverTrap(isa.VecBreak, nextPC, 0) {
			return nil
		}
		branchTo(m.PC, true)
	case isa.OpIret:
		m.Flags = m.CR[isa.CREFLAGS]
		branchTo(m.CR[isa.CREPC], true)
	case isa.OpCli:
		m.Flags &^= isa.FlagI
	case isa.OpSti:
		m.Flags |= isa.FlagI
	case isa.OpTlbWr:
		m.journalTLB()
		m.icache.noteMapping()
		vpn := m.GPR[inst.Rd]
		val := m.GPR[inst.Rs]
		entry := fullsys.TLBEntry{
			VPN:   vpn,
			PFN:   val >> fullsys.PageShift,
			Valid: true,
			User:  val&fullsys.TLBFlagUser != 0,
			Write: val&fullsys.TLBFlagWrite != 0,
		}
		m.TLB.Insert(entry)
		e.TLBWrite, e.TLBVPN, e.TLBPFN = true, vpn, val
	case isa.OpTlbFl:
		m.journalTLB()
		m.icache.noteMapping()
		m.TLB.Reset()
	case isa.OpMovCR:
		if int(inst.Imm) < isa.NumCR {
			// Any CR write may change translation (CRPaging directly; a
			// coarse rule keeps the hot path branch-free).
			m.icache.noteMapping()
			m.CR[inst.Imm] = m.GPR[inst.Rd]
		}
	case isa.OpMovRC:
		switch inst.Imm {
		case isa.CRCycles:
			m.GPR[inst.Rd] = isa.Word(m.Now())
		case isa.CRCpuID:
			m.GPR[inst.Rd] = isa.Word(m.cfg.CoreID)
		default:
			if int(inst.Imm) < isa.NumCR {
				m.GPR[inst.Rd] = m.CR[inst.Imm]
			}
		}
	case isa.OpIn:
		m.journalBus()
		m.GPR[inst.Rd] = m.Bus.In(uint16(inst.Imm), m.Now())
	case isa.OpOut:
		m.journalBus()
		m.Bus.Out(uint16(inst.Imm), m.GPR[inst.Rd], m.Now())
	case isa.OpCpuid:
		m.GPR[inst.Rd] = 0x46495341 // "FISA"
	case isa.OpFMov:
		m.FPR[fpRegOf(inst.Rd)] = m.FPR[fpRegOf(inst.Rs)]
	case isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv:
		a := m.FPR[fpRegOf(inst.Rd)]
		b := m.FPR[fpRegOf(inst.Rs)]
		var r float64
		switch inst.Op {
		case isa.OpFAdd:
			r = a + b
		case isa.OpFSub:
			r = a - b
		case isa.OpFMul:
			r = a * b
		case isa.OpFDiv:
			if b == 0 {
				return &fault{vector: isa.VecFPError, faultVA: m.PC, retry: true}
			}
			r = a / b
		}
		m.FPR[fpRegOf(inst.Rd)] = r
		m.setFlagsFloat(r, 0)
	case isa.OpFSqrt:
		m.FPR[fpRegOf(inst.Rd)] = math.Sqrt(m.FPR[fpRegOf(inst.Rs)])
	case isa.OpFAbs:
		m.FPR[fpRegOf(inst.Rd)] = math.Abs(m.FPR[fpRegOf(inst.Rs)])
	case isa.OpFNeg:
		m.FPR[fpRegOf(inst.Rd)] = -m.FPR[fpRegOf(inst.Rs)]
	case isa.OpFCmp:
		m.setFlagsFloat(m.FPR[fpRegOf(inst.Rd)], m.FPR[fpRegOf(inst.Rs)])
	case isa.OpFLd:
		va := m.GPR[inst.Rs] + isa.Word(inst.Disp)
		v, pa, f := m.load(va, 8)
		if f != nil {
			return f
		}
		m.FPR[fpRegOf(inst.Rd)] = math.Float64frombits(v)
		e.MemVA, e.MemPA, e.MemSize = va, pa, 8
	case isa.OpFSt:
		va := m.GPR[inst.Rs] + isa.Word(inst.Disp)
		pa, f := m.store(va, math.Float64bits(m.FPR[fpRegOf(inst.Rd)]), 8)
		if f != nil {
			return f
		}
		e.MemVA, e.MemPA, e.MemSize, e.IsStore = va, pa, 8, true
	case isa.OpFLdI:
		m.FPR[fpRegOf(inst.Rd)] = inst.Float()
	case isa.OpI2F:
		m.FPR[fpRegOf(inst.Rd)] = float64(int32(m.GPR[inst.Rs]))
	case isa.OpF2I:
		f := m.FPR[fpRegOf(inst.Rs)]
		switch {
		case math.IsNaN(f):
			m.GPR[inst.Rd] = 0
		case f >= math.MaxInt32:
			m.GPR[inst.Rd] = isa.Word(math.MaxInt32)
		case f <= math.MinInt32:
			m.GPR[inst.Rd] = isa.Word(1) << 31
		default:
			m.GPR[inst.Rd] = isa.Word(int32(f))
		}
	case isa.OpJmpFar:
		branchTo(isa.Word(inst.Imm), true)
	case isa.OpCallFar:
		m.GPR[isa.RegLR] = nextPC
		branchTo(isa.Word(inst.Imm), true)
	default:
		return &fault{vector: isa.VecIllegal, faultVA: m.PC}
	}
	m.PC = nextPC
	return nil
}

// memAccessSize maps a scalar load/store opcode to its access width.
func memAccessSize(op isa.Op) int {
	switch op {
	case isa.OpLdW, isa.OpStW:
		return 4
	case isa.OpLdH, isa.OpStH:
		return 2
	}
	return 1
}

// aluOperand returns the second ALU operand: the Rs register for RR forms,
// the immediate otherwise.
func (m *Model) aluOperand(inst isa.Inst) isa.Word {
	if inst.Rs != isa.RegNone {
		return m.GPR[inst.Rs]
	}
	return isa.Word(inst.Imm)
}

// execString runs one string instruction, including REP loops, updating the
// fixed registers R0 (source), R1 (destination), R2 (count) and R3 (value).
func (m *Model) execString(inst isa.Inst, e *trace.Entry) *fault {
	iters := 1
	if inst.Rep {
		iters = int(m.GPR[2])
		if iters > m.cfg.RepCap {
			iters = m.cfg.RepCap
		}
		if iters <= 0 {
			e.RepIterations = 0
			return nil
		}
	}
	first := true
	done := uint32(0)
	for i := 0; i < iters; i++ {
		var f *fault
		var va isa.Word
		var store bool
		switch inst.Op {
		case isa.OpMovs:
			var v uint64
			v, _, f = m.load(m.GPR[0], 1)
			if f == nil {
				va = m.GPR[1]
				store = true
				_, f = m.store(va, v, 1)
			} else {
				va = m.GPR[0]
			}
			if f == nil {
				m.GPR[0]++
				m.GPR[1]++
			}
		case isa.OpStos:
			va = m.GPR[1]
			store = true
			_, f = m.store(va, uint64(m.GPR[3]&0xFF), 1)
			if f == nil {
				m.GPR[1]++
			}
		case isa.OpLods:
			va = m.GPR[0]
			var v uint64
			v, _, f = m.load(va, 1)
			if f == nil {
				m.GPR[3] = isa.Word(v)
				m.GPR[0]++
			}
		case isa.OpCmps:
			va = m.GPR[0]
			var a, b uint64
			a, _, f = m.load(m.GPR[0], 1)
			if f == nil {
				b, _, f = m.load(m.GPR[1], 1)
			}
			if f == nil {
				m.setFlagsSub(isa.Word(a), isa.Word(b), isa.Word(a)-isa.Word(b))
				m.GPR[0]++
				m.GPR[1]++
			}
		case isa.OpScas:
			va = m.GPR[1]
			var b uint64
			b, _, f = m.load(va, 1)
			if f == nil {
				a := m.GPR[3] & 0xFF
				m.setFlagsSub(a, isa.Word(b), a-isa.Word(b))
				m.GPR[1]++
			}
		}
		if first {
			pa, _ := m.translate(va, store)
			e.MemVA, e.MemPA = va, pa
			e.MemSize, e.IsStore = 1, store
			first = false
		}
		if f != nil {
			// Partial progress is architectural (x86 REP semantics): the
			// count register reflects completed iterations and the trap
			// retries the instruction.
			if inst.Rep {
				m.GPR[2] -= done
				e.RepIterations = done
			}
			return f
		}
		done++
		if inst.Rep {
			// REPE termination for the compare forms: stop when not equal.
			if (inst.Op == isa.OpCmps || inst.Op == isa.OpScas) && m.Flags&isa.FlagZ == 0 {
				break
			}
		}
	}
	if inst.Rep {
		m.GPR[2] -= done
		e.RepIterations = done
	}
	return nil
}

// fillRegs derives the trace's architectural register names from the
// decoded instruction (§2: "source, destination and condition code
// architectural register names").
func fillRegs(inst isa.Inst, e *trace.Entry) {
	in := inst.Info()
	e.ReadsCC = in.ReadsCC
	e.WritesCC = in.WritesCC
	e.SrcA, e.SrcB, e.Dst = isa.RegNone, isa.RegNone, isa.RegNone
	switch inst.Op {
	case isa.OpMovRR, isa.OpFMov, isa.OpI2F, isa.OpF2I, isa.OpFSqrt, isa.OpFAbs, isa.OpFNeg:
		e.SrcA, e.Dst = inst.Rs, inst.Rd
	case isa.OpMovRI, isa.OpMovRI8, isa.OpFLdI, isa.OpCpuid, isa.OpMovRC:
		e.Dst = inst.Rd
	case isa.OpLea:
		e.SrcA, e.Dst = inst.Rs, inst.Rd
	case isa.OpLdW, isa.OpLdH, isa.OpLdB, isa.OpFLd, isa.OpLl:
		e.SrcA, e.Dst = inst.Rs, inst.Rd
	case isa.OpStW, isa.OpStH, isa.OpStB, isa.OpFSt:
		e.SrcA, e.SrcB = inst.Rs, inst.Rd
	case isa.OpSc:
		// Reads the address base and the store value, writes the success
		// flag back into rd.
		e.SrcA, e.SrcB, e.Dst = inst.Rs, inst.Rd, inst.Rd
	case isa.OpPush:
		e.SrcA, e.SrcB, e.Dst = isa.RegSP, inst.Rd, isa.RegSP
	case isa.OpPop:
		e.SrcA, e.Dst = isa.RegSP, inst.Rd
	case isa.OpJmpR, isa.OpCallR:
		e.SrcA = inst.Rd
		if inst.Op == isa.OpCallR {
			e.Dst = isa.RegLR
		}
	case isa.OpCall, isa.OpCallFar:
		e.Dst = isa.RegLR
	case isa.OpRet:
		e.SrcA = isa.RegLR
	case isa.OpCmpRR, isa.OpTestRR, isa.OpFCmp:
		e.SrcA, e.SrcB = inst.Rd, inst.Rs
	case isa.OpCmpRI:
		e.SrcA = inst.Rd
	case isa.OpLoop:
		e.SrcA, e.Dst = 2, 2 // implicit count register
	case isa.OpMovs, isa.OpStos, isa.OpLods, isa.OpCmps, isa.OpScas:
		e.SrcA, e.SrcB = 0, 1 // fixed string registers
		e.Dst = 3
	case isa.OpMovCR, isa.OpOut, isa.OpTlbWr:
		e.SrcA = inst.Rd
		if inst.Op == isa.OpTlbWr {
			e.SrcB = inst.Rs
		}
	case isa.OpIn:
		e.Dst = inst.Rd
	default:
		if in.Format == isa.FmtRR {
			e.SrcA, e.SrcB, e.Dst = inst.Rd, inst.Rs, inst.Rd
		} else if in.Format == isa.FmtR || in.Format == isa.FmtRI8 || in.Format == isa.FmtRI32 {
			e.SrcA, e.Dst = inst.Rd, inst.Rd
		}
	}
}
