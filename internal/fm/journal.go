package fm

import (
	"fmt"

	"repro/internal/fullsys"
)

// The functional model supports two interchangeable rollback engines:
//
//   - journalEngine (default): a per-instruction undo journal. Each record
//     holds the pre-instruction scalar state plus memory/TLB/device undo
//     data. Rollback pops records. Simple, exact, O(1) rollback per
//     instruction undone.
//
//   - checkpointEngine: the paper's §3.2 mechanism verbatim — "periodic
//     software checkpoints of architectural state along with memory and
//     I/O logging. At least two checkpoints that leapfrog each other are
//     maintained to ensure that the functional model can rollback to any
//     non-committed instruction." Rollback restores the checkpoint at or
//     below the target and *re-executes* forward — the re-execution is the
//     αBA cost of §3.1's analytical model, which the engine counts.
//
// Both satisfy the same contract and are equivalence-tested against each
// other.

// RollbackMode selects the engine.
type RollbackMode uint8

const (
	// RollbackJournal is the per-instruction undo journal (default).
	RollbackJournal RollbackMode = iota
	// RollbackCheckpoint is the leapfrog-checkpoint + replay engine.
	RollbackCheckpoint
)

type rollbackEngine interface {
	// begin is called before any architectural mutation of an instruction.
	begin(m *Model)
	// abort discards begin's work when no instruction was produced.
	abort(m *Model)
	// noteMem is called with the bytes about to be overwritten.
	noteMem(m *Model, pa uint32, n int)
	// noteTLB is called before the instruction's first TLB mutation.
	noteTLB(m *Model)
	// noteBus is called before the instruction's first device mutation.
	noteBus(m *Model)
	// noteIdle records idle ticks advanced while halted (replay input).
	noteIdle(m *Model, ticks uint64)
	// commit releases resources for instructions <= in.
	commit(m *Model, in uint64)
	// setPC rolls the model back so the next instruction is in at pc.
	setPC(m *Model, in uint64, pc uint32) error
	// window reports the number of uncommitted (rollback-able) instructions.
	window() int
}

type memUndo struct {
	pa   uint32
	old  uint64
	size uint8
}

// undoMem applies a memory undo list newest-first. The rewrites bypass
// Model.store, so the predecode cache is notified here: an undone store
// changes code bytes just as surely as the store did.
func undoMem(m *Model, undos []memUndo) {
	for i := len(undos) - 1; i >= 0; i-- {
		u := undos[i]
		m.noteStore(u.pa, int(u.size))
		m.Mem.Write(u.pa, u.old, int(u.size))
	}
}

// ---------------------------------------------------------------------------
// journalEngine

type undoRecord struct {
	pre    Scalars
	mem    []memUndo
	tlbSet bool
	tlbPre fullsys.TLB
	busPre []any
	halted bool
	idle   uint64
}

type journalEngine struct {
	journal []undoRecord
	base    uint64 // IN of journal[0]
}

func (j *journalEngine) begin(m *Model) {
	if len(j.journal) == 0 {
		j.base = m.in
	}
	j.journal = append(j.journal, undoRecord{
		pre:    m.Scalars,
		halted: m.halted,
		idle:   m.idle,
	})
}

func (j *journalEngine) abort(m *Model) {
	j.journal = j.journal[:len(j.journal)-1]
}

func (j *journalEngine) current() *undoRecord { return &j.journal[len(j.journal)-1] }

func (j *journalEngine) noteMem(m *Model, pa uint32, n int) {
	r := j.current()
	r.mem = append(r.mem, memUndo{pa: pa, old: m.Mem.Read(pa, n), size: uint8(n)})
}

func (j *journalEngine) noteTLB(m *Model) {
	r := j.current()
	if !r.tlbSet {
		r.tlbPre = m.TLB.Snapshot()
		r.tlbSet = true
	}
}

func (j *journalEngine) noteBus(m *Model) {
	r := j.current()
	if r.busPre == nil {
		r.busPre = m.Bus.Snapshot()
	}
}

func (j *journalEngine) noteIdle(*Model, uint64) {}

func (j *journalEngine) commit(m *Model, in uint64) {
	if in < j.base {
		return
	}
	keep := in + 1 - j.base
	if keep >= uint64(len(j.journal)) {
		j.journal = j.journal[:0]
		j.base = m.in
		return
	}
	n := copy(j.journal, j.journal[keep:])
	j.journal = j.journal[:n]
	j.base = in + 1
}

func (j *journalEngine) setPC(m *Model, in uint64, pc uint32) error {
	if in < j.base {
		return fmt.Errorf("fm: set_pc(%d) below committed window (base %d)", in, j.base)
	}
	for m.in > in {
		r := &j.journal[len(j.journal)-1]
		undoMem(m, r.mem)
		if r.tlbSet {
			m.TLB.Restore(r.tlbPre)
		}
		if r.busPre != nil {
			m.Bus.Restore(r.busPre)
		}
		m.Scalars = r.pre
		m.halted = r.halted
		m.idle = r.idle
		j.journal = j.journal[:len(j.journal)-1]
		m.in--
	}
	m.PC = pc
	return nil
}

func (j *journalEngine) window() int { return len(j.journal) }

// ---------------------------------------------------------------------------
// checkpointEngine

// segment is the log between two leapfrogging checkpoints.
type segment struct {
	startIN uint64
	pre     Scalars
	tlb     fullsys.TLB
	bus     []any
	halted  bool
	idle    uint64

	count   int       // instructions executed in this segment
	mem     []memUndo // memory undo across the whole segment
	idleLog []idleEvent
}

type idleEvent struct {
	afterIN uint64 // idle happened while the next IN would be this
	ticks   uint64
}

type checkpointEngine struct {
	interval int
	segs     []segment
	// ReExecuted counts instructions replayed during rollbacks — the §3.1
	// αBA extra work.
	reExecuted uint64
	replaying  bool
}

func newCheckpointEngine(interval int) *checkpointEngine {
	if interval < 1 {
		interval = 64
	}
	return &checkpointEngine{interval: interval}
}

func (c *checkpointEngine) cur() *segment { return &c.segs[len(c.segs)-1] }

func (c *checkpointEngine) begin(m *Model) {
	if len(c.segs) == 0 || (!c.replaying && c.cur().count >= c.interval) {
		c.take(m)
	}
	c.cur().count++
}

// take opens a new checkpoint at the current state.
func (c *checkpointEngine) take(m *Model) {
	c.segs = append(c.segs, segment{
		startIN: m.in,
		pre:     m.Scalars,
		tlb:     m.TLB.Snapshot(),
		bus:     m.Bus.Snapshot(),
		halted:  m.halted,
		idle:    m.idle,
	})
}

func (c *checkpointEngine) abort(m *Model) {
	c.cur().count--
}

func (c *checkpointEngine) noteMem(m *Model, pa uint32, n int) {
	s := c.cur()
	s.mem = append(s.mem, memUndo{pa: pa, old: m.Mem.Read(pa, n), size: uint8(n)})
}

// noteTLB/noteBus: nothing per-instruction — the segment snapshot taken at
// the checkpoint covers TLB and device state, and replay regenerates the
// rest deterministically.
func (c *checkpointEngine) noteTLB(*Model) {}
func (c *checkpointEngine) noteBus(*Model) {}

func (c *checkpointEngine) noteIdle(m *Model, ticks uint64) {
	if len(c.segs) == 0 || c.replaying {
		return
	}
	s := c.cur()
	if n := len(s.idleLog); n > 0 && s.idleLog[n-1].afterIN == m.in {
		s.idleLog[n-1].ticks += ticks
		return
	}
	s.idleLog = append(s.idleLog, idleEvent{afterIN: m.in, ticks: ticks})
}

func (c *checkpointEngine) commit(m *Model, in uint64) {
	// Release checkpoints entirely below the commit frontier, always
	// keeping the one covering the first uncommitted instruction — the
	// "checkpoints are released and others are taken" leapfrog.
	for len(c.segs) > 1 && c.segs[1].startIN <= in+1 {
		c.segs = c.segs[1:]
	}
}

func (c *checkpointEngine) setPC(m *Model, in uint64, pc uint32) error {
	if len(c.segs) == 0 || in < c.segs[0].startIN {
		base := uint64(0)
		if len(c.segs) > 0 {
			base = c.segs[0].startIN
		}
		return fmt.Errorf("fm: set_pc(%d) below committed window (base %d)", in, base)
	}
	// Find the checkpoint at or below in.
	k := len(c.segs) - 1
	for k > 0 && c.segs[k].startIN > in {
		k--
	}
	// Undo memory newest-segment-first, including the containing segment
	// (replay regenerates its prefix).
	for i := len(c.segs) - 1; i >= k; i-- {
		undoMem(m, c.segs[i].mem)
	}
	s := c.segs[k]
	m.Scalars = s.pre
	m.TLB.Restore(s.tlb)
	m.Bus.Restore(s.bus)
	m.halted = s.halted
	m.idle = s.idle
	m.in = s.startIN
	idleLog := s.idleLog
	c.segs = c.segs[:k]
	c.take(m)

	// Replay forward to in, feeding the logged idle periods so interrupt
	// timing reproduces exactly. Statistics are suppressed: the replayed
	// instructions were already counted the first time.
	c.replaying = true
	m.replay = true
	defer func() { c.replaying = false; m.replay = false }()
	li := 0
	for m.in < in {
		for li < len(idleLog) && idleLog[li].afterIN == m.in && m.halted {
			m.AdvanceIdle(idleLog[li].ticks)
			li++
		}
		if _, ok := m.Step(); !ok {
			if m.halted && li < len(idleLog) && idleLog[li].afterIN == m.in {
				continue // consume the next idle event
			}
			return fmt.Errorf("fm: checkpoint replay stalled at IN %d (target %d)", m.in, in)
		}
		c.reExecuted++
	}
	m.PC = pc
	return nil
}

func (c *checkpointEngine) window() int {
	if len(c.segs) == 0 {
		return 0
	}
	n := 0
	for i := range c.segs {
		n += c.segs[i].count
	}
	return n
}

// ---------------------------------------------------------------------------
// Model-facing API (engine-independent)

// Commit releases rollback resources for instructions with numbers <= in.
// The timing model calls this as the ROB commits ("As commits return from
// the timing model, checkpoints are released and others are taken", §3.2).
func (m *Model) Commit(in uint64) { m.engine.commit(m, in) }

// JournalLen reports the number of uncommitted instructions (rollback
// window size).
func (m *Model) JournalLen() int { return m.engine.window() }

// ReExecuted returns instructions replayed by checkpoint rollbacks (0 for
// the journal engine) — §3.1's αBA extra work.
func (m *Model) ReExecuted() uint64 {
	if c, ok := m.engine.(*checkpointEngine); ok {
		return c.reExecuted
	}
	return 0
}

// SetPC implements the paper's set_pc command: "takes two arguments, an IN
// and a program counter (PC). Calling set_pc rolls back the functional
// model to that IN, removing the effects of that instruction, changing to
// the new PC and then executing from that PC on."
//
// After SetPC(in, pc), the next instruction the model produces has number
// in and executes at pc. Only non-committed instructions can be rolled
// back; in == IN() is a pure redirect (zero instructions undone).
func (m *Model) SetPC(in uint64, pc uint32) error {
	if in > m.in {
		return fmt.Errorf("fm: set_pc(%d) beyond produced instructions (next %d)", in, m.in)
	}
	m.Rollbacks++
	m.obs.rollbacks.Inc()
	m.obs.journalDepth.Observe(float64(m.engine.window()))
	m.obs.rollbackDist.Observe(float64(m.in - in))
	// A fatal condition reached on the speculative path dies with the
	// re-steer: the faulting instruction was aborted (neither state nor IN
	// advanced), so redirecting supersedes it. A right-path fatal re-arises
	// deterministically on re-execution.
	m.fatal = nil
	if in == m.in {
		// Pure redirect: the TM re-steers the next instruction before the
		// FM ran ahead. Still a set_pc round trip, zero work undone.
		m.PC = pc
		return nil
	}
	undone := m.in - in
	m.RolledBack += undone
	m.obs.rolledBack.Add(undone)
	// Rollback restores TLB snapshots and pre-instruction control
	// registers without passing through the instructions that set them;
	// one mapping-generation bump covers every translation change the
	// undo can make (paged page-crossing entries revalidate against it).
	m.icache.noteMapping()
	reBefore := m.ReExecuted()
	err := m.engine.setPC(m, in, pc)
	m.obs.reExecuted.Add(m.ReExecuted() - reBefore)
	return err
}

// Compatibility wrappers used by the executor.
func (m *Model) beginInstruction()           { m.engine.begin(m) }
func (m *Model) abortInstruction()           { m.engine.abort(m) }
func (m *Model) journalMem(pa uint32, n int) { m.engine.noteMem(m, pa, n) }
func (m *Model) journalTLB()                 { m.engine.noteTLB(m) }
func (m *Model) journalBus()                 { m.engine.noteBus(m) }
