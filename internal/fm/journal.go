package fm

import (
	"fmt"

	"repro/internal/fullsys"
)

// The functional model supports two interchangeable rollback engines:
//
//   - journalEngine (default): a per-instruction undo journal. Each record
//     holds the pre-instruction scalar state plus memory/TLB/device undo
//     data. Rollback pops records. Simple, exact, O(1) rollback per
//     instruction undone.
//
//   - checkpointEngine: the paper's §3.2 mechanism verbatim — "periodic
//     software checkpoints of architectural state along with memory and
//     I/O logging. At least two checkpoints that leapfrog each other are
//     maintained to ensure that the functional model can rollback to any
//     non-committed instruction." Rollback restores the checkpoint at or
//     below the target and *re-executes* forward — the re-execution is the
//     αBA cost of §3.1's analytical model, which the engine counts.
//
// Both satisfy the same contract and are equivalence-tested against each
// other.

// RollbackMode selects the engine.
type RollbackMode uint8

const (
	// RollbackJournal is the per-instruction undo journal (default).
	RollbackJournal RollbackMode = iota
	// RollbackCheckpoint is the leapfrog-checkpoint + replay engine.
	RollbackCheckpoint
)

type rollbackEngine interface {
	// begin is called before any architectural mutation of an instruction.
	begin(m *Model)
	// abort discards begin's work when no instruction was produced.
	abort(m *Model)
	// noteMem is called with the bytes about to be overwritten.
	noteMem(m *Model, pa uint32, n int)
	// noteTLB is called before the instruction's first TLB mutation.
	noteTLB(m *Model)
	// noteBus is called before the instruction's first device mutation.
	noteBus(m *Model)
	// noteIdle records idle ticks advanced while halted (replay input).
	noteIdle(m *Model, ticks uint64)
	// commit releases resources for instructions <= in.
	commit(m *Model, in uint64)
	// setPC rolls the model back so the next instruction is in at pc.
	setPC(m *Model, in uint64, pc uint32) error
	// window reports the number of uncommitted (rollback-able) instructions.
	window(m *Model) int
}

type memUndo struct {
	pa   uint32
	old  uint64
	size uint8
}

// undoMem applies a memory undo list newest-first. The rewrites bypass
// Model.store, so the predecode cache is notified here: an undone store
// changes code bytes just as surely as the store did.
func undoMem(m *Model, undos []memUndo) {
	for i := len(undos) - 1; i >= 0; i-- {
		u := undos[i]
		m.noteStore(u.pa, int(u.size))
		m.Mem.Write(u.pa, u.old, int(u.size))
	}
}

// ---------------------------------------------------------------------------
// journalEngine

// undoRecord captures everything needed to return the model to the state it
// held when the record opened. A record normally spans one instruction; the
// superblock executor (superblock.go) opens one record per *block*, so a
// record spans [startIN, next record's startIN) — or [startIN, m.in) for
// the open tail record.
type undoRecord struct {
	startIN uint64 // IN of the first instruction the record covers
	pre     Scalars
	mem     []memUndo
	tlbSet  bool
	tlbPre  fullsys.TLB
	busPre  func()
	halted  bool
	idle    uint64
}

type journalEngine struct {
	journal []undoRecord
}

func (j *journalEngine) begin(m *Model) {
	j.journal = append(j.journal, undoRecord{
		startIN: m.in,
		pre:     m.Scalars,
		halted:  m.halted,
		idle:    m.idle,
	})
}

func (j *journalEngine) abort(m *Model) {
	j.journal = j.journal[:len(j.journal)-1]
}

// beginBlock opens one record covering a whole superblock: the snapshot at
// the block's start plus the memory/TLB/device undo of every instruction
// inside it. One record per block instead of one per instruction is the
// superblock executor's "one rollback check per block".
func (j *journalEngine) beginBlock(m *Model) { j.begin(m) }

// endBlock closes the block record; retired is the number of instructions
// it ended up covering (a block can end early on faults, SMC splits or a
// full trace buffer). A record that covers nothing is dropped.
func (j *journalEngine) endBlock(m *Model, retired int) {
	if retired == 0 {
		j.abort(m)
	}
}

func (j *journalEngine) current() *undoRecord { return &j.journal[len(j.journal)-1] }

func (j *journalEngine) noteMem(m *Model, pa uint32, n int) {
	r := j.current()
	r.mem = append(r.mem, memUndo{pa: pa, old: m.Mem.Read(pa, n), size: uint8(n)})
}

func (j *journalEngine) noteTLB(m *Model) {
	r := j.current()
	if !r.tlbSet {
		r.tlbPre = m.TLB.Snapshot()
		r.tlbSet = true
	}
}

func (j *journalEngine) noteBus(m *Model) {
	r := j.current()
	if r.busPre == nil {
		r.busPre = m.Bus.CaptureRollback()
	}
}

func (j *journalEngine) noteIdle(*Model, uint64) {}

// commit trims records from the front while they are fully committed: a
// record is releasable only once every instruction it covers is <= in (for
// one-instruction records this reduces to startIN <= in, the pre-superblock
// behaviour).
func (j *journalEngine) commit(m *Model, in uint64) {
	k := 0
	for k < len(j.journal) {
		end := m.in
		if k+1 < len(j.journal) {
			end = j.journal[k+1].startIN
		}
		if end > in+1 {
			break
		}
		k++
	}
	if k > 0 {
		n := copy(j.journal, j.journal[k:])
		j.journal = j.journal[:n]
	}
}

// setPC pops records until the model sits at a record boundary at or below
// in, then — when in falls *inside* a block record — replays forward to in
// by re-executing from the restored state. The replay is deterministic: the
// restored state is bit-identical to the original block entry, and block
// formation guarantees no device event or interrupt could fire inside the
// span. Replayed instructions are a host-side artifact of block-granular
// records, not the paper's §3.1 αBA re-execution, so they are *not* counted
// in ReExecuted (m.replay suppresses all statistics).
func (j *journalEngine) setPC(m *Model, in uint64, pc uint32) error {
	base := m.in
	if len(j.journal) > 0 {
		base = j.journal[0].startIN
	}
	if in < base {
		return fmt.Errorf("fm: set_pc(%d) below committed window (base %d)", in, base)
	}
	for m.in > in {
		j.undoTop(m)
	}
	if m.in < in {
		m.replay = true
		defer func() { m.replay = false }()
		for m.in < in {
			// Each replayed Step opens a fresh per-instruction record, so
			// the replayed prefix stays rollback-able.
			if _, ok := m.Step(); !ok {
				return fmt.Errorf("fm: journal replay stalled at IN %d (target %d)", m.in, in)
			}
		}
	}
	m.PC = pc
	return nil
}

// undoTop restores everything the newest record captured — memory, TLB,
// device, scalar state and the instruction counter — and removes it. This
// is a real state rewind, unlike abort, which merely discards a record
// whose instruction never mutated anything (or whose partial effects are
// deliberately left in place on a fatal stop, matching Step).
func (j *journalEngine) undoTop(m *Model) {
	r := &j.journal[len(j.journal)-1]
	undoMem(m, r.mem)
	if r.tlbSet {
		m.TLB.Restore(r.tlbPre)
	}
	if r.busPre != nil {
		r.busPre()
	}
	m.Scalars = r.pre
	m.halted = r.halted
	m.idle = r.idle
	m.in = r.startIN
	j.journal = j.journal[:len(j.journal)-1]
}

// window reports uncommitted instructions. With block-granularity records
// len(journal) undercounts, so the span is measured in INs — identical to
// the record count in the per-instruction case.
func (j *journalEngine) window(m *Model) int {
	if len(j.journal) == 0 {
		return 0
	}
	return int(m.in - j.journal[0].startIN)
}

// ---------------------------------------------------------------------------
// checkpointEngine

// segment is the log between two leapfrogging checkpoints.
type segment struct {
	startIN uint64
	pre     Scalars
	tlb     fullsys.TLB
	bus     func()
	halted  bool
	idle    uint64

	count   int       // instructions executed in this segment
	mem     []memUndo // memory undo across the whole segment
	idleLog []idleEvent
}

type idleEvent struct {
	afterIN uint64 // idle happened while the next IN would be this
	ticks   uint64
}

type checkpointEngine struct {
	interval int
	segs     []segment
	// ReExecuted counts instructions replayed during rollbacks — the §3.1
	// αBA extra work.
	reExecuted uint64
	replaying  bool
}

func newCheckpointEngine(interval int) *checkpointEngine {
	if interval < 1 {
		interval = 64
	}
	return &checkpointEngine{interval: interval}
}

func (c *checkpointEngine) cur() *segment { return &c.segs[len(c.segs)-1] }

func (c *checkpointEngine) begin(m *Model) {
	if len(c.segs) == 0 || (!c.replaying && c.cur().count >= c.interval) {
		c.take(m)
	}
	c.cur().count++
}

// take opens a new checkpoint at the current state.
func (c *checkpointEngine) take(m *Model) {
	c.segs = append(c.segs, segment{
		startIN: m.in,
		pre:     m.Scalars,
		tlb:     m.TLB.Snapshot(),
		bus:     m.Bus.CaptureRollback(),
		halted:  m.halted,
		idle:    m.idle,
	})
}

func (c *checkpointEngine) abort(m *Model) {
	c.cur().count--
}

func (c *checkpointEngine) noteMem(m *Model, pa uint32, n int) {
	s := c.cur()
	s.mem = append(s.mem, memUndo{pa: pa, old: m.Mem.Read(pa, n), size: uint8(n)})
}

// noteTLB/noteBus: nothing per-instruction — the segment snapshot taken at
// the checkpoint covers TLB and device state, and replay regenerates the
// rest deterministically.
func (c *checkpointEngine) noteTLB(*Model) {}
func (c *checkpointEngine) noteBus(*Model) {}

func (c *checkpointEngine) noteIdle(m *Model, ticks uint64) {
	if len(c.segs) == 0 || c.replaying {
		return
	}
	s := c.cur()
	if n := len(s.idleLog); n > 0 && s.idleLog[n-1].afterIN == m.in {
		s.idleLog[n-1].ticks += ticks
		return
	}
	s.idleLog = append(s.idleLog, idleEvent{afterIN: m.in, ticks: ticks})
}

func (c *checkpointEngine) commit(m *Model, in uint64) {
	// Release checkpoints entirely below the commit frontier, always
	// keeping the one covering the first uncommitted instruction — the
	// "checkpoints are released and others are taken" leapfrog.
	for len(c.segs) > 1 && c.segs[1].startIN <= in+1 {
		c.segs = c.segs[1:]
	}
}

func (c *checkpointEngine) setPC(m *Model, in uint64, pc uint32) error {
	if len(c.segs) == 0 || in < c.segs[0].startIN {
		base := uint64(0)
		if len(c.segs) > 0 {
			base = c.segs[0].startIN
		}
		return fmt.Errorf("fm: set_pc(%d) below committed window (base %d)", in, base)
	}
	// Find the checkpoint at or below in.
	k := len(c.segs) - 1
	for k > 0 && c.segs[k].startIN > in {
		k--
	}
	// Undo memory newest-segment-first, including the containing segment
	// (replay regenerates its prefix).
	for i := len(c.segs) - 1; i >= k; i-- {
		undoMem(m, c.segs[i].mem)
	}
	s := c.segs[k]
	m.Scalars = s.pre
	m.TLB.Restore(s.tlb)
	s.bus()
	m.halted = s.halted
	m.idle = s.idle
	m.in = s.startIN
	idleLog := s.idleLog
	c.segs = c.segs[:k]
	c.take(m)

	// Replay forward to in, feeding the logged idle periods so interrupt
	// timing reproduces exactly. Statistics are suppressed: the replayed
	// instructions were already counted the first time.
	c.replaying = true
	m.replay = true
	defer func() { c.replaying = false; m.replay = false }()
	li := 0
	for m.in < in {
		for li < len(idleLog) && idleLog[li].afterIN == m.in && m.halted {
			m.AdvanceIdle(idleLog[li].ticks)
			li++
		}
		if _, ok := m.Step(); !ok {
			if m.halted && li < len(idleLog) && idleLog[li].afterIN == m.in {
				continue // consume the next idle event
			}
			return fmt.Errorf("fm: checkpoint replay stalled at IN %d (target %d)", m.in, in)
		}
		c.reExecuted++
	}
	m.PC = pc
	return nil
}

func (c *checkpointEngine) window(*Model) int {
	if len(c.segs) == 0 {
		return 0
	}
	n := 0
	for i := range c.segs {
		n += c.segs[i].count
	}
	return n
}

// ---------------------------------------------------------------------------
// Model-facing API (engine-independent)

// Commit releases rollback resources for instructions with numbers <= in.
// The timing model calls this as the ROB commits ("As commits return from
// the timing model, checkpoints are released and others are taken", §3.2).
func (m *Model) Commit(in uint64) { m.engine.commit(m, in) }

// JournalLen reports the number of uncommitted instructions (rollback
// window size).
func (m *Model) JournalLen() int { return m.engine.window(m) }

// ReExecuted returns instructions replayed by checkpoint rollbacks (0 for
// the journal engine) — §3.1's αBA extra work.
func (m *Model) ReExecuted() uint64 {
	if c, ok := m.engine.(*checkpointEngine); ok {
		return c.reExecuted
	}
	return 0
}

// SetPC implements the paper's set_pc command: "takes two arguments, an IN
// and a program counter (PC). Calling set_pc rolls back the functional
// model to that IN, removing the effects of that instruction, changing to
// the new PC and then executing from that PC on."
//
// After SetPC(in, pc), the next instruction the model produces has number
// in and executes at pc. Only non-committed instructions can be rolled
// back; in == IN() is a pure redirect (zero instructions undone).
func (m *Model) SetPC(in uint64, pc uint32) error {
	if in > m.in {
		return fmt.Errorf("fm: set_pc(%d) beyond produced instructions (next %d)", in, m.in)
	}
	m.Rollbacks++
	m.obs.rollbacks.Inc()
	m.obs.journalDepth.Observe(float64(m.engine.window(m)))
	m.obs.rollbackDist.Observe(float64(m.in - in))
	// A fatal condition reached on the speculative path dies with the
	// re-steer: the faulting instruction was aborted (neither state nor IN
	// advanced), so redirecting supersedes it. A right-path fatal re-arises
	// deterministically on re-execution.
	m.fatal = nil
	if in == m.in {
		// Pure redirect: the TM re-steers the next instruction before the
		// FM ran ahead. Still a set_pc round trip, zero work undone.
		m.PC = pc
		return nil
	}
	undone := m.in - in
	m.RolledBack += undone
	m.obs.rolledBack.Add(undone)
	// Rollback restores TLB snapshots and pre-instruction control
	// registers without passing through the instructions that set them;
	// one mapping-generation bump covers every translation change the
	// undo can make (paged page-crossing entries revalidate against it).
	m.icache.noteMapping()
	reBefore := m.ReExecuted()
	err := m.engine.setPC(m, in, pc)
	m.obs.reExecuted.Add(m.ReExecuted() - reBefore)
	return err
}

// Compatibility wrappers used by the executor.
func (m *Model) beginInstruction()           { m.engine.begin(m) }
func (m *Model) abortInstruction()           { m.engine.abort(m) }
func (m *Model) journalMem(pa uint32, n int) { m.engine.noteMem(m, pa, n) }
func (m *Model) journalTLB()                 { m.engine.noteTLB(m) }
func (m *Model) journalBus()                 { m.engine.noteBus(m) }
