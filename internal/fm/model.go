// Package fm implements FAST's speculative functional model: a full-system
// FISA interpreter that executes the target sequentially, emits the
// functional-path instruction trace, and supports the set_pc roll-back
// operation (§3.2) so the timing model can re-steer it down wrong paths and
// back.
//
// The paper's prototype modified QEMU, implementing set_pc with "periodic
// software checkpoints of architectural state along with memory and I/O
// logging", keeping "at least two checkpoints that leapfrog each other ...
// to ensure that the functional model can rollback to any non-committed
// instruction". We implement the same contract with a per-instruction undo
// journal: each record holds the pre-instruction scalar state plus memory,
// TLB and device undo data, and records are released as the timing model
// commits — functionally identical to leapfrog checkpoints + logs (a
// checkpoint interval of one), and it makes the "rollback to any
// non-committed instruction" invariant directly testable.
package fm

import (
	"fmt"
	"strconv"

	"repro/internal/fullsys"
	"repro/internal/isa"
	"repro/internal/microcode"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Scalars is the architectural scalar state: everything except memory, TLB
// and device state.
type Scalars struct {
	GPR   [isa.NumGPR]isa.Word
	FPR   [isa.NumFPR]float64
	Flags isa.Word
	PC    isa.Word
	CR    [isa.NumCR]isa.Word

	// The ll/sc link register: LL records the address and value it loaded,
	// SC succeeds iff the linked word still holds that value. Keeping the
	// link in Scalars (rather than as hidden model state) means rollback
	// restores it exactly, so a re-executed ll/sc sequence reproduces its
	// original outcome and checkpoint replay stays deterministic.
	LLValid bool
	LLAddr  isa.Word
	LLVal   isa.Word
}

// Config parameterizes a functional model instance.
type Config struct {
	// MemBytes is the physical memory size (default 16 MiB).
	MemBytes int
	// Devices are attached to the port bus (a default console and timer
	// are created when nil).
	Devices []fullsys.Device
	// RepCap bounds dynamic REP iterations. Wrong-path execution can reach
	// a REP with a garbage count register; the cap keeps wrong-path work
	// bounded without affecting correct-path programs (which stay far
	// below it). 0 means the default of 65536.
	RepCap int
	// ICacheEntries sizes the predecode cache (icache.go): direct-mapped
	// slots keyed by physical address, rounded up to a power of two.
	// 0 disables the cache. Architected state and the emitted trace are
	// bit-identical at any value — the knob trades host memory for FM
	// speed only.
	ICacheEntries int
	// SuperblockLen caps superblock length (superblock.go): straight-line
	// runs of predecoded instructions executed as a fused closure chain
	// with one rollback/interrupt/device check per block. 0 disables
	// superblocks; they also require the predecode cache (ICacheEntries >
	// 0) and the journal rollback engine — under RollbackCheckpoint,
	// block-granular accounting would move checkpoint placement and hence
	// the modeled re-execution cost, so the knob is ignored there. Like
	// ICacheEntries, architected state and the emitted trace are
	// bit-identical at any value.
	SuperblockLen int
	// Encoding selects the trace compression model for link accounting.
	Encoding trace.EncodeOptions
	// DisableInterrupts prevents autonomous interrupt delivery; used by
	// unit tests that want pure sequential semantics.
	DisableInterrupts bool
	// Rollback selects the rollback engine: the per-instruction undo
	// journal (default) or the paper's leapfrog checkpoints + replay.
	Rollback RollbackMode
	// CheckpointInterval is the instruction distance between leapfrog
	// checkpoints (RollbackCheckpoint only; default 64).
	CheckpointInterval int
	// Telemetry, when non-nil, receives rollback/re-execution counters and
	// the journal-depth distribution (fm_* series). Nil telemetry costs one
	// nil check per rollback event.
	Telemetry *obs.Telemetry
	// CoreID is this core's index in a multicore target (0 in a single-core
	// one); it is what MOVRC from CRCpuID reads.
	CoreID int
	// SharedMem, when non-nil, is the physical memory shared by all cores of
	// a multicore target; the model attaches to it instead of allocating its
	// own. MemBytes is ignored for sizing when set.
	SharedMem *fullsys.Memory
	// Coherence, when non-nil, fans store notifications out to every
	// attached core's predecode cache so cross-core self-modifying code
	// invalidates remotely cached instructions (coherence.go).
	Coherence *Coherence
}

// Model is the speculative functional model.
type Model struct {
	Scalars
	Mem *fullsys.Memory
	TLB fullsys.TLB
	Bus *fullsys.Bus

	table  *microcode.Table
	icache *icache  // predecode cache; nil when disabled
	sb     *sbCache // superblock cache; nil when disabled
	// sbEnt is StepBlock's scratch trace entry: its address crosses the
	// op.run function-pointer boundary, so a loop-local would be forced to
	// heap-allocate per instruction. execute never retains the pointer.
	sbEnt trace.Entry
	cfg   Config

	in     uint64 // next instruction number to produce
	halted bool
	idle   uint64 // device-time ticks accumulated while halted
	fatal  error  // unrecoverable condition (unhandled trap)
	replay bool   // inside a checkpoint-engine replay: skip statistics

	engine rollbackEngine
	jeng   *journalEngine // engine when journal mode; nil under checkpoints
	obs    fmInstruments

	// Statistics.
	Coverage   microcode.CoverageStats
	TraceWords uint64 // 32-bit words emitted into the trace
	Rollbacks  uint64 // set_pc invocations
	RolledBack uint64 // instructions undone by set_pc
	Interrupts uint64
	Exceptions uint64
}

// New builds a functional model with the given configuration.
func New(cfg Config) *Model {
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 16 << 20
	}
	if cfg.RepCap == 0 {
		cfg.RepCap = 65536
	}
	if cfg.Encoding == (trace.EncodeOptions{}) {
		cfg.Encoding = trace.DefaultEncoding
	}
	devs := cfg.Devices
	if devs == nil {
		devs = []fullsys.Device{fullsys.NewConsole(), fullsys.NewTimer()}
	}
	mem := cfg.SharedMem
	if mem == nil {
		mem = fullsys.NewMemory(cfg.MemBytes)
	} else {
		cfg.MemBytes = mem.Size()
	}
	m := &Model{
		Mem:   mem,
		Bus:   fullsys.NewBus(devs...),
		table: microcode.NewTable(),
		cfg:   cfg,
	}
	if cfg.Rollback == RollbackCheckpoint {
		m.engine = newCheckpointEngine(cfg.CheckpointInterval)
	} else {
		m.jeng = &journalEngine{}
		m.engine = m.jeng
	}
	if cfg.ICacheEntries > 0 {
		m.icache = newICache(cfg.ICacheEntries, cfg.MemBytes)
		if cfg.SuperblockLen > 0 && m.jeng != nil {
			m.sb = newSBCache(cfg.SuperblockLen, m.icache)
		}
	}
	cfg.Coherence.attach(m)
	m.obs.attach(cfg.Telemetry, m.series())
	return m
}

// fmInstruments are the functional model's observability handles. Fields
// are nil when telemetry is disabled; every obs method is nil-safe.
type fmInstruments struct {
	rollbacks    *obs.Counter
	rolledBack   *obs.Counter
	reExecuted   *obs.Counter
	journalDepth *obs.Histogram
	rollbackDist *obs.Histogram
}

func (i *fmInstruments) attach(tel *obs.Telemetry, series func(string) string) {
	if tel == nil {
		return
	}
	i.rollbacks = tel.Counter(series("fm_rollbacks_total"))
	i.rolledBack = tel.Counter(series("fm_rolled_back_instructions_total"))
	i.reExecuted = tel.Counter(series("fm_reexecuted_instructions_total"))
	i.journalDepth = tel.Histogram(series("fm_journal_depth"), obs.DepthBuckets)
	// Distance distribution of set_pc re-steers, in instructions undone:
	// how far the speculative run-ahead had gone when the TM pulled it
	// back (0 = pure redirect). The chunked trace coupling discards the
	// same entries from the TB, so this is also the rewind-depth profile.
	i.rollbackDist = tel.Histogram(series("fm_rollback_distance"), obs.ChunkBuckets)
}

// series returns the telemetry series namer for this model: identity on a
// single-core target, a core label on every multicore series.
func (m *Model) series() func(string) string {
	if m.cfg.Coherence == nil {
		return func(name string) string { return name }
	}
	id := strconv.Itoa(m.cfg.CoreID)
	return func(name string) string { return obs.AddLabel(name, "core", id) }
}

// PublishTelemetry flushes the run-total FM statistics that are not worth
// counting incrementally (interrupts, exceptions, trace words) into tel.
// The coupled simulator calls it once when a run finishes.
func (m *Model) PublishTelemetry(tel *obs.Telemetry) {
	if tel == nil {
		return
	}
	series := m.series()
	tel.Counter(series("fm_interrupts_total")).Add(m.Interrupts)
	tel.Counter(series("fm_exceptions_total")).Add(m.Exceptions)
	tel.Counter(series("fm_trace_words_total")).Add(m.TraceWords)
	if c := m.icache; c != nil {
		tel.Counter(series("fm_icache_hits_total")).Add(c.hits)
		tel.Counter(series("fm_icache_misses_total")).Add(c.misses)
		tel.Counter(series("fm_icache_invalidations_total")).Add(c.invalidations)
		tel.Counter(series("fm_icache_flushes_total")).Add(c.flushes)
	}
	if c := m.sb; c != nil {
		tel.Counter(series("fm_superblock_hits_total")).Add(c.hits)
		tel.Counter(series("fm_superblock_misses_total")).Add(c.misses)
		tel.Counter(series("fm_superblock_splits_total")).Add(c.splits)
		tel.Counter(series("fm_superblock_invalidations_total")).Add(c.invalidations)
	}
}

// ICacheStats reports the predecode-cache counters (all zero when the
// cache is disabled): probe hits, probe misses, store-driven page
// invalidations and whole-cache flushes.
func (m *Model) ICacheStats() (hits, misses, invalidations, flushes uint64) {
	if m.icache == nil {
		return 0, 0, 0, 0
	}
	return m.icache.hits, m.icache.misses, m.icache.invalidations, m.icache.flushes
}

// Table exposes the microcode table (shared with the timing model).
func (m *Model) Table() *microcode.Table { return m.table }

// LoadProgram copies the image into physical memory and jumps to its entry.
func (m *Model) LoadProgram(p *isa.Program) {
	m.Mem.Load(p.Base, p.Code)
	m.icache.flush()
	// Page generations survive an icache flush, so block entries would
	// still generation-match stale bytes: drop them outright.
	m.sb.flush()
	m.PC = p.Entry
}

// IN returns the next instruction number the model will produce.
func (m *Model) IN() uint64 { return m.in }

// Halted reports whether the target executed HALT and no interrupt has
// woken it yet.
func (m *Model) Halted() bool { return m.halted }

// Now is the model's device time: retired instructions plus idle ticks.
func (m *Model) Now() uint64 { return m.in + m.idle }

// AdvanceIdle moves device time forward by n ticks while the target is
// halted, then delivers any interrupt that became pending. It reports
// whether the target woke up.
func (m *Model) AdvanceIdle(n uint64) bool {
	if !m.halted {
		return true
	}
	m.engine.noteIdle(m, n)
	m.idle += n
	m.Bus.Tick(m.Now())
	if m.cfg.DisableInterrupts {
		return false
	}
	// HALT waits for an interrupt regardless of FlagI; delivery still
	// requires interrupts enabled (the kernel idles with STI; a CLI+HALT
	// would hang real hardware too, and toyOS never does it).
	if m.Flags&isa.FlagI != 0 && m.Bus.Pending() >= 0 {
		m.halted = false
		return true
	}
	return false
}

// Kernel reports whether the target is in kernel mode.
func (m *Model) Kernel() bool { return m.Flags&isa.FlagU == 0 }

// fault carries an exception discovered during execution.
type fault struct {
	vector  uint8
	faultVA isa.Word
	// retry: EPC points at the faulting instruction (TLB miss) rather
	// than past it (syscall/break).
	retry bool
}

func (f *fault) Error() string { return fmt.Sprintf("fault vector %d", f.vector) }

// translate maps a virtual address to physical. In kernel mode, or with
// paging disabled, addresses are physical. wr marks stores (permission
// check).
func (m *Model) translate(va isa.Word, wr bool) (isa.Word, *fault) {
	if m.Kernel() || m.CR[isa.CRPaging] == 0 {
		return va, nil
	}
	vpn := va >> fullsys.PageShift
	e, ok := m.TLB.Lookup(vpn)
	if !ok {
		return 0, &fault{vector: isa.VecTLBMiss, faultVA: va, retry: true}
	}
	if !e.User || wr && !e.Write {
		return 0, &fault{vector: isa.VecProt, faultVA: va, retry: true}
	}
	return e.PFN<<fullsys.PageShift | va&(fullsys.PageSize-1), nil
}

// load reads n bytes of data memory at virtual address va.
func (m *Model) load(va isa.Word, n int) (uint64, isa.Word, *fault) {
	pa, f := m.translate(va, false)
	if f != nil {
		return 0, 0, f
	}
	if !m.Mem.InRange(pa, n) {
		return 0, 0, &fault{vector: isa.VecProt, faultVA: va, retry: true}
	}
	return m.Mem.Read(pa, n), pa, nil
}

// store writes n bytes at va, journaling the old contents.
func (m *Model) store(va isa.Word, v uint64, n int) (isa.Word, *fault) {
	pa, f := m.translate(va, true)
	if f != nil {
		return 0, f
	}
	if !m.Mem.InRange(pa, n) {
		return 0, &fault{vector: isa.VecProt, faultVA: va, retry: true}
	}
	m.journalMem(pa, n)
	m.noteStore(pa, n)
	m.Mem.Write(pa, v, n)
	return pa, nil
}
