package fm

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/fullsys"
	"repro/internal/isa"
	"repro/internal/trace"
)

// run assembles src at base 0x1000, loads it into a bare-mode model
// (kernel, no paging, interrupts off) and executes up to max steps or HALT.
func run(t *testing.T, src string, max int) (*Model, []trace.Entry) {
	t.Helper()
	return runAt(t, src, 0x1000, max)
}

// runAt is run with an explicit load base (tests that lay out an IVT at
// physical 0 use base 0).
func runAt(t *testing.T, src string, base isa.Word, max int) (*Model, []trace.Entry) {
	t.Helper()
	m := New(Config{MemBytes: 1 << 20, DisableInterrupts: true})
	m.LoadProgram(isa.MustAssemble(src, base))
	var out []trace.Entry
	for i := 0; i < max; i++ {
		e, ok := m.Step()
		if !ok {
			if m.Fatal() != nil {
				t.Fatalf("fatal after %d steps: %v", i, m.Fatal())
			}
			break
		}
		out = append(out, e)
	}
	return m, out
}

func TestArithmeticAndFlags(t *testing.T) {
	m, _ := run(t, `
		movi r0, 10
		movi r1, 3
		mov  r2, r0
		sub  r2, r1      ; r2 = 7
		mov  r3, r0
		mul  r3, r1      ; r3 = 30
		mov  r4, r0
		div  r4, r1      ; r4 = 3
		mov  r5, r0
		mod  r5, r1      ; r5 = 1
		movi r6, -8
		sari r6, 2       ; r6 = -2
		movi r7, -8
		shri r7, 28      ; r7 = 15
		halt
	`, 100)
	want := map[int]isa.Word{2: 7, 3: 30, 4: 3, 5: 1, 6: 0xFFFFFFFE, 7: 15}
	for r, v := range want {
		if m.GPR[r] != v {
			t.Errorf("R%d = %#x, want %#x", r, m.GPR[r], v)
		}
	}
	if !m.Halted() {
		t.Error("machine should have halted")
	}
}

func TestConditionalBranches(t *testing.T) {
	m, _ := run(t, `
		movi r0, 5
		cmpi r0, 5
		jz   eq          ; taken
		movi r1, 99
	eq:	cmpi r0, 10
		jl   lt          ; 5 < 10 taken
		movi r1, 98
	lt:	cmpi r0, 3
		jg   gt          ; 5 > 3 taken
		movi r1, 97
	gt:	movi r2, 1
		cmpi r0, 6
		jge  bad
		jmp  good
	bad:	movi r2, 0
	good:	halt
	`, 100)
	if m.GPR[1] != 0 {
		t.Errorf("R1 = %d, a not-taken path executed", m.GPR[1])
	}
	if m.GPR[2] != 1 {
		t.Errorf("R2 = %d, jge mis-evaluated", m.GPR[2])
	}
}

func TestUnsignedCarryAndOverflow(t *testing.T) {
	m, _ := run(t, `
		movi r0, 0xFFFFFFFF
		addi r0, 1       ; carry out, r0=0
		jc   c1
		movi r9, 1
	c1:	movi r1, 0x7FFFFFFF
		addi r1, 1       ; signed overflow
		movi r2, 0
		jl   neg         ; N=1,V=1 -> jl false (N==V)
		movi r2, 1
	neg:	halt
	`, 100)
	if m.GPR[9] != 0 {
		t.Error("carry flag not set by 0xFFFFFFFF+1")
	}
	if m.GPR[0] != 0 {
		t.Errorf("R0 = %#x, want 0", m.GPR[0])
	}
	if m.GPR[2] != 1 {
		t.Error("overflow semantics wrong: jl taken after 0x7FFFFFFF+1")
	}
}

func TestMemoryAndStack(t *testing.T) {
	m, _ := run(t, `
		movi sp, 0x8000
		movi r0, 0xDEAD
		movi r1, 0x2000
		stw  r0, [r1]
		ldw  r2, [r1]
		sth  r0, [r1+8]
		ldh  r3, [r1+8]
		stb  r0, [r1+12]
		ldb  r4, [r1+12]
		push r0
		push r1
		pop  r5
		pop  r6
		halt
	`, 100)
	if m.GPR[2] != 0xDEAD {
		t.Errorf("ldw = %#x", m.GPR[2])
	}
	if m.GPR[3] != 0xDEAD {
		t.Errorf("ldh = %#x", m.GPR[3])
	}
	if m.GPR[4] != 0xAD {
		t.Errorf("ldb = %#x", m.GPR[4])
	}
	if m.GPR[5] != 0x2000 || m.GPR[6] != 0xDEAD {
		t.Errorf("stack pops: %#x %#x", m.GPR[5], m.GPR[6])
	}
	if m.GPR[isa.RegSP] != 0x8000 {
		t.Errorf("SP = %#x, want 0x8000", m.GPR[isa.RegSP])
	}
}

func TestCallRet(t *testing.T) {
	m, _ := run(t, `
		movi r0, 0
		call fn
		addi r0, 100
		halt
	fn:	addi r0, 1
		ret
	`, 100)
	if m.GPR[0] != 101 {
		t.Errorf("R0 = %d, want 101", m.GPR[0])
	}
}

func TestStringInstructions(t *testing.T) {
	m, _ := run(t, `
		movi r0, src
		movi r1, 0x3000
		movi r2, 5
		rep movs         ; copy "hello"
		movi r1, 0x3100
		movi r2, 4
		movi r3, 'x'
		rep stos         ; xxxx
		movi r0, src
		movi r1, src
		movi r2, 5
		rep cmps         ; equal -> Z set
		jz   ok
		movi r9, 1
	ok:	halt
	src:	.ascii "hello"
	`, 100)
	got := make([]byte, 5)
	for i := range got {
		got[i] = byte(m.Mem.Read(isa.Word(0x3000+i), 1))
	}
	if string(got) != "hello" {
		t.Errorf("rep movs copied %q", got)
	}
	if m.Mem.Read(0x3100, 1) != 'x' || m.Mem.Read(0x3103, 1) != 'x' {
		t.Error("rep stos did not fill")
	}
	if m.GPR[9] != 0 {
		t.Error("rep cmps of identical buffers not equal")
	}
	if m.GPR[2] != 0 {
		t.Errorf("count register after rep = %d, want 0", m.GPR[2])
	}
}

func TestRepScasFindsMismatch(t *testing.T) {
	m, _ := run(t, `
		movi r1, data
		movi r2, 10
		movi r3, 'a'
		rep scas        ; scan while equal to 'a'
		halt
	data:	.ascii "aaab"
	`, 100)
	// Stops at the 'b': 4 iterations consumed.
	if m.GPR[2] != 6 {
		t.Errorf("remaining count = %d, want 6", m.GPR[2])
	}
	if m.Flags&isa.FlagZ != 0 {
		t.Error("Z set after mismatch")
	}
}

func TestFloatingPoint(t *testing.T) {
	m, _ := run(t, `
		fldi f0, 2.5
		fldi f1, 1.5
		fadd f0, f1      ; 4.0
		fldi f2, 9.0
		fsqrt f3, f2     ; 3.0
		movi r0, 7
		i2f  f4, r0
		f2i  r1, f3
		movi r2, 0x4000
		fst  f0, [r2]
		fld  f5, [r2]
		halt
	`, 100)
	if m.FPR[0] != 4.0 {
		t.Errorf("fadd = %g", m.FPR[0])
	}
	if m.FPR[3] != 3.0 {
		t.Errorf("fsqrt = %g", m.FPR[3])
	}
	if m.FPR[4] != 7.0 {
		t.Errorf("i2f = %g", m.FPR[4])
	}
	if m.GPR[1] != 3 {
		t.Errorf("f2i = %d", m.GPR[1])
	}
	if m.FPR[5] != 4.0 {
		t.Errorf("fld round trip = %g", m.FPR[5])
	}
}

func TestTraceEntries(t *testing.T) {
	_, es := run(t, `
		movi r0, 3
	loop:	dec r0
		jnz loop
		halt
	`, 100)
	if len(es) != 8 { // movi + 3×(dec,jnz) + halt
		t.Fatalf("%d trace entries, want 8", len(es))
	}
	for i, e := range es {
		if e.IN != uint64(i) {
			t.Errorf("entry %d has IN %d", i, e.IN)
		}
	}
	jnz := es[2]
	if !jnz.Branch || !jnz.Cond || !jnz.Taken {
		t.Errorf("first jnz entry: %+v", jnz)
	}
	if jnz.NextPC != es[1].PC {
		t.Errorf("taken jnz NextPC = %#x, want loop head %#x", jnz.NextPC, es[1].PC)
	}
	last := es[6]
	if !last.Branch || last.Taken {
		t.Errorf("final jnz should be not-taken: %+v", last)
	}
	if last.NextPC != last.PC+isa.Word(last.Size) {
		t.Errorf("not-taken NextPC = %#x", last.NextPC)
	}
}

func TestDivideByZeroFaultsWithoutIVT(t *testing.T) {
	m := New(Config{MemBytes: 1 << 20, DisableInterrupts: true})
	m.LoadProgram(isa.MustAssemble(`
		movi r0, 1
		movi r1, 0
		div  r0, r1
		halt
	`, 0x1000))
	steps := 0
	for {
		if _, ok := m.Step(); !ok {
			break
		}
		steps++
	}
	if m.Fatal() == nil {
		t.Fatal("expected fatal unhandled trap")
	}
	if steps != 2 {
		t.Errorf("executed %d instructions before fault, want 2", steps)
	}
}

func TestTrapAndIret(t *testing.T) {
	// Install an IVT and a divide-error handler that fixes up R1 and
	// returns; EPC for div faults points at the faulting instruction.
	m, es := runAt(t, `
		.org 0
		.space 256       ; IVT at physical 0
		.org 0x400
	handler:
		movi r1, 2       ; repair divisor
		iret
		.org 0x1000
	entry:
		movi r8, handler
		movi r9, ivtslot2
		stw  r8, [r9]    ; IVT[2] (divide error)
		movi r0, 8
		movi r1, 0
		div  r0, r1      ; faults, handler sets r1=2, retry divides 8/2
		halt
	.equ ivtslot2, 8
	.entry entry
	`, 0, 100)
	if m.GPR[0] != 4 {
		t.Errorf("after trap-retry division R0 = %d, want 4", m.GPR[0])
	}
	var sawExc bool
	for _, e := range es {
		if e.Exception && e.ExcVector == isa.VecDivZero {
			sawExc = true
			if !e.Branch || e.NextPC != 0x400 {
				t.Errorf("exception entry should branch to handler: %+v", e)
			}
		}
	}
	if !sawExc {
		t.Error("no exception entry in trace")
	}
}

func TestPortIO(t *testing.T) {
	con := fullsys.NewConsole()
	m := New(Config{MemBytes: 1 << 20, DisableInterrupts: true,
		Devices: []fullsys.Device{con}})
	m.LoadProgram(isa.MustAssemble(`
		movi r0, 'h'
		out  r0, 0x10
		movi r0, 'i'
		out  r0, 0x10
		in   r1, 0x11
		halt
	`, 0x1000))
	for {
		if _, ok := m.Step(); !ok {
			break
		}
	}
	if string(con.Output()) != "hi" {
		t.Errorf("console output %q", con.Output())
	}
	if m.GPR[1]&1 == 0 {
		t.Error("console status not ready")
	}
}

func TestUserModeProtection(t *testing.T) {
	// Kernel installs the IVT, maps one user page, drops to user mode via
	// IRET; user executes a privileged instruction -> protection fault.
	m, es := runAt(t, `
		.org 0
		.space 256
		.org 0x400
	prot:	movi r10, 1
		halt
		.org 0x440
	tlbmiss: movi r10, 2
		halt
		.org 0x1000
	entry:
		movi r8, prot
		movi r9, 16      ; IVT[4] = prot
		stw  r8, [r9]
		movi r8, tlbmiss
		movi r9, 12      ; IVT[3] = tlbmiss
		stw  r8, [r9]
		movi r8, 1
		movcr r8, cr1    ; enable paging
		; map user VPN 8 -> PFN 2 (user, write)
		movi r0, 8
		movi r1, 0x2003  ; pfn 2 | user|write
		tlbwr r0, r1
		; copy a tiny user program to physical 0x2000
		movi r0, uprog
		movi r1, 0x2000
		movi r2, 8
		rep movs
		; return to user mode at VA 0x8000
		movi r8, 0x8000
		movcr r8, cr5    ; EPC
		movi r8, 0x20    ; FLAGS: user mode, interrupts off
		movcr r8, cr6
		iret
	uprog:
		cli              ; privileged in user mode -> fault
		halt
	.entry entry
	`, 0, 200)
	if m.GPR[10] != 1 {
		t.Errorf("R10 = %d, want 1 (protection handler ran)", m.GPR[10])
	}
	var userSeen bool
	for _, e := range es {
		if !e.Kernel {
			userSeen = true
		}
	}
	if !userSeen {
		t.Error("no user-mode instructions in trace")
	}
}

func TestTLBMissHandled(t *testing.T) {
	// Same setup, but the user program touches an unmapped page; the miss
	// handler maps it identity-style and returns for retry.
	m, _ := runAt(t, `
		.org 0
		.space 256
		.org 0x400
	tlbmiss:
		movrc r11, cr2   ; fault VA
		shri  r11, 12    ; VPN
		mov   r12, r11
		shli  r12, 12
		shri  r12, 12    ; identity PFN = VPN (already page number)
		mov   r12, r11
		shli  r12, 12
		ori   r12, 3     ; pfn<<12 | user|write
		tlbwr r11, r12
		iret             ; retry
		.org 0x480
	sys:	halt             ; syscall = exit for this test
		.org 0x1000
	entry:
		movi r8, tlbmiss
		movi r9, 12
		stw  r8, [r9]
		movi r8, sys
		movi r9, 20      ; IVT[5] = syscall
		stw  r8, [r9]
		movi r8, 1
		movcr r8, cr1
		movi r0, 8
		movi r1, 0x2003
		tlbwr r0, r1
		movi r0, uprog
		movi r1, 0x2000
		movi r2, 32
		rep movs
		movi r8, 0x8000
		movcr r8, cr5
		movi r8, 0x20
		movcr r8, cr6
		iret
	uprog:
		movi r5, 0x5000  ; unmapped VA -> TLB miss -> handler maps
		movi r6, 77
		stw  r6, [r5]
		ldw  r7, [r5]
		syscall          ; exit to kernel, which halts
	.entry entry
	`, 0, 300)
	if m.GPR[7] != 77 {
		t.Errorf("user load after TLB fill = %d, want 77", m.GPR[7])
	}
	if m.Exceptions == 0 {
		t.Error("no exceptions counted")
	}
}

// --- Rollback machinery ---

// TestSetPCEquivalence is the core speculative-FM property: executing with
// arbitrary rollbacks interleaved must leave the machine in exactly the
// state reached by straight-line execution.
func TestSetPCEquivalence(t *testing.T) {
	src := `
		movi sp, 0x9000
		movi r0, 0
		movi r1, 0
		movi r4, 0x4000
	loop:
		addi r0, 3
		stw  r0, [r4]
		ldw  r2, [r4]
		add  r1, r2
		push r1
		pop  r3
		inc  r1
		movi r5, 'c'
		out  r5, 0x10
		cmpi r1, 2000
		jl   loop
		halt
	`
	prog := isa.MustAssemble(src, 0x1000)

	newModel := func() *Model {
		m := New(Config{MemBytes: 1 << 20, DisableInterrupts: true})
		m.LoadProgram(prog)
		return m
	}

	// Reference run.
	ref := newModel()
	var refEntries []trace.Entry
	for {
		e, ok := ref.Step()
		if !ok {
			break
		}
		refEntries = append(refEntries, e)
	}

	// Speculative run: random rollbacks to random uncommitted points; after
	// each rollback re-execution must reproduce the identical trace suffix.
	spec := newModel()
	rng := rand.New(rand.NewSource(42))
	var got []trace.Entry
	for {
		e, ok := spec.Step()
		if !ok {
			break
		}
		if int(e.IN) < len(refEntries) {
			if !entriesEqual(e, refEntries[e.IN]) {
				t.Fatalf("entry %d diverged:\n got %+v\nwant %+v", e.IN, e, refEntries[e.IN])
			}
		}
		if int(e.IN) >= len(got) {
			got = append(got, e)
		} else {
			got[e.IN] = e
		}
		// Occasionally roll back 1..20 instructions and replay.
		if rng.Intn(7) == 0 && spec.JournalLen() > 1 {
			back := rng.Intn(min(20, spec.JournalLen()-1)) + 1
			target := spec.IN() - uint64(back)
			wantPC := got[target].PC
			if err := spec.SetPC(target, wantPC); err != nil {
				t.Fatalf("SetPC: %v", err)
			}
			if spec.IN() != target {
				t.Fatalf("after SetPC IN=%d, want %d", spec.IN(), target)
			}
		}
		// Occasionally commit to bound the journal.
		if rng.Intn(11) == 0 && spec.IN() > 30 {
			spec.Commit(spec.IN() - 30)
		}
	}
	if len(got) != len(refEntries) {
		t.Fatalf("%d entries, want %d", len(got), len(refEntries))
	}
	refM := ref
	if spec.Scalars != refM.Scalars {
		t.Errorf("scalar state diverged:\n got %+v\nwant %+v", spec.Scalars, refM.Scalars)
	}
	if spec.Rollbacks == 0 {
		t.Fatal("test exercised no rollbacks")
	}
}

// TestSetPCWrongPath forces the model down a wrong path (what the TM does
// after a predicted-taken branch the functional path didn't take), then
// restores the right path and checks full state equivalence.
func TestSetPCWrongPath(t *testing.T) {
	src := `
		movi r0, 10
		movi r1, 0
	loop:	add r1, r0
		dec r0
		jnz loop
		movi r2, 111
		halt
	wrong:	movi r3, 66     ; wrong-path code: clobbers r3, stores
		movi r4, 0x7000
		stw  r3, [r4]
		jmp  wrong
	`
	prog := isa.MustAssemble(src, 0x1000)
	ref := New(Config{MemBytes: 1 << 20, DisableInterrupts: true})
	ref.LoadProgram(prog)
	for {
		if _, ok := ref.Step(); !ok {
			break
		}
	}

	m := New(Config{MemBytes: 1 << 20, DisableInterrupts: true})
	m.LoadProgram(prog)
	var entries []trace.Entry
	wrongPC := prog.Symbols["wrong"]
	redirected := false
	for {
		e, ok := m.Step()
		if !ok {
			break
		}
		if int(e.IN) >= len(entries) {
			entries = append(entries, e)
		} else {
			entries[e.IN] = e
		}
		// After the first taken jnz, wander down the wrong path for a
		// while, then resume the correct path.
		if !redirected && e.Branch && e.Cond && e.Taken {
			divergeAt := e.IN + 1
			if err := m.SetPC(divergeAt, wrongPC); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 25; i++ {
				if _, ok := m.Step(); !ok {
					t.Fatal("wrong path halted unexpectedly")
				}
			}
			// Resolution: back to the right path (the branch's actual
			// successor).
			if err := m.SetPC(divergeAt, e.NextPC); err != nil {
				t.Fatal(err)
			}
			redirected = true
		}
	}
	if !redirected {
		t.Fatal("never redirected")
	}
	if m.Scalars != ref.Scalars {
		t.Errorf("state after wrong-path excursion diverged:\n got %+v\nwant %+v",
			m.Scalars, ref.Scalars)
	}
	if m.Mem.Read(0x7000, 4) != ref.Mem.Read(0x7000, 4) {
		t.Error("wrong-path store not rolled back")
	}
	if m.GPR[2] != 111 {
		t.Error("right path did not complete")
	}
}

func TestSetPCBounds(t *testing.T) {
	m, _ := run(t, "nop\nnop\nnop\nhalt\n", 2) // executes 2 instructions
	if err := m.SetPC(5, 0); err == nil {
		t.Error("SetPC beyond produced instructions should fail")
	}
	m.Commit(1) // instructions 0 and 1 committed
	if err := m.SetPC(0, 0x1000); err == nil {
		t.Error("SetPC below committed window should fail")
	}
	if err := m.SetPC(1, 0x1000); err == nil {
		t.Error("SetPC of a committed instruction should fail")
	}
	if err := m.SetPC(2, 0x1000); err != nil {
		t.Errorf("SetPC(2) redirect of next instruction failed: %v", err)
	}
	if m.PC != 0x1000 {
		t.Errorf("redirect did not move PC: %#x", m.PC)
	}
}

func TestCommitReleasesJournal(t *testing.T) {
	m, _ := run(t, "movi r0, 1\nmovi r0, 2\nmovi r0, 3\nmovi r0, 4\nhalt\n", 4)
	if m.JournalLen() != 4 {
		t.Fatalf("journal = %d, want 4", m.JournalLen())
	}
	m.Commit(1)
	if m.JournalLen() != 2 {
		t.Errorf("journal after Commit(1) = %d, want 2", m.JournalLen())
	}
	m.Commit(100)
	if m.JournalLen() != 0 {
		t.Errorf("journal after Commit(all) = %d, want 0", m.JournalLen())
	}
}

func TestRollbackAcrossIO(t *testing.T) {
	con := fullsys.NewConsole()
	m := New(Config{MemBytes: 1 << 20, DisableInterrupts: true,
		Devices: []fullsys.Device{con}})
	m.LoadProgram(isa.MustAssemble(`
		movi r0, 'a'
		out  r0, 0x10
		movi r0, 'b'
		out  r0, 0x10
		halt
	`, 0x1000))
	for i := 0; i < 4; i++ {
		if _, ok := m.Step(); !ok {
			t.Fatal("unexpected stop")
		}
	}
	if string(con.Output()) != "ab" {
		t.Fatalf("output %q", con.Output())
	}
	// Roll back past the second OUT: the console must forget 'b'.
	if err := m.SetPC(3, 0); err != nil {
		t.Fatal(err)
	}
	if string(con.Output()) != "a" {
		t.Errorf("output after rollback %q, want %q", con.Output(), "a")
	}
}

func TestHaltWakeByInterrupt(t *testing.T) {
	// Kernel programs the timer then halts; AdvanceIdle must wake it and
	// deliver the timer interrupt to the handler.
	m := New(Config{MemBytes: 1 << 20})
	m.LoadProgram(isa.MustAssemble(`
		.org 0
		.space 256
		.org 0x400
	timer:	movi r10, 123
		movi r9, 1
		out  r9, 0x22    ; ack
		halt
		.org 0x1000
	entry:
		movi r8, timer
		movi r9, 64      ; IVT[16] = timer handler
		stw  r8, [r9]
		movi r8, 50
		out  r8, 0x20    ; timer interval = 50
		sti
		halt             ; wait for interrupt
	.entry entry
	`, 0))
	for {
		if _, ok := m.Step(); !ok {
			break
		}
	}
	if !m.Halted() {
		t.Fatal("should be halted waiting for timer")
	}
	woke := false
	for i := 0; i < 100 && !woke; i++ {
		woke = m.AdvanceIdle(10)
	}
	if !woke {
		t.Fatal("timer interrupt never woke the machine")
	}
	for {
		if _, ok := m.Step(); !ok {
			break
		}
	}
	if m.GPR[10] != 123 {
		t.Errorf("timer handler did not run: R10=%d", m.GPR[10])
	}
	if m.Interrupts != 1 {
		t.Errorf("interrupts = %d, want 1", m.Interrupts)
	}
}

func TestCoverageAccounting(t *testing.T) {
	m, _ := run(t, `
		movi r0, 5
		fldi f0, 1.0     ; NOP-replaced: not covered
		fadd f0, f0      ; NOP-replaced
		ldw  r1, [r0+100]
		halt
	`, 10)
	cov := m.Coverage
	if cov.Instructions != 5 {
		t.Fatalf("instructions = %d, want 5", cov.Instructions)
	}
	if cov.Covered != 3 {
		t.Errorf("covered = %d, want 3", cov.Covered)
	}
	if cov.UopsPerInst() <= 1.0 {
		t.Errorf("µops/inst = %v, want > 1 (ldw is 2 µops)", cov.UopsPerInst())
	}
	if m.TraceWords == 0 {
		t.Error("no trace words accounted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// entriesEqual compares trace entries including their µop slices (Entry
// contains a slice, so == does not apply).
func entriesEqual(a, b trace.Entry) bool {
	return reflect.DeepEqual(a, b)
}

// TestRandomMemoryNeverPanics is the failure-injection property: executing
// arbitrary byte soup (what wrong-path excursions can reach) must never
// panic the model — it may fault, trap or go fatal, but always returns.
func TestRandomMemoryNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 30; trial++ {
		m := New(Config{MemBytes: 1 << 18})
		// An IVT whose every vector points at a tiny handler, so traps
		// keep executing rather than ending the run immediately.
		handler := isa.MustAssemble("iret\n", 0x80)
		m.Mem.Load(handler.Base, handler.Code)
		for v := 0; v < isa.NumVectors; v++ {
			m.Mem.Write(isa.Word(v*isa.VectorStride), uint64(handler.Base), 4)
		}
		// Random soup everywhere above.
		soup := make([]byte, 1<<16)
		rng.Read(soup)
		m.Mem.Load(0x1000, soup)
		m.PC = 0x1000 + isa.Word(rng.Intn(1<<15))
		steps := 0
		for steps < 20000 {
			if _, ok := m.Step(); !ok {
				if m.Fatal() != nil || m.Halted() {
					break
				}
			}
			steps++
		}
		// Also survive a rollback of whatever just happened.
		if w := m.JournalLen(); w > 1 {
			if err := m.SetPC(m.IN()-uint64(w/2), 0x1000); err != nil {
				t.Fatalf("trial %d: rollback failed: %v", trial, err)
			}
		}
	}
}

// TestRepFaultCountRegister drives the partial-progress semantics directly
// through the model API (no OS): iterate a REP across a protection fault
// and check R2.
func TestRepFaultCountRegister(t *testing.T) {
	m := New(Config{MemBytes: 1 << 16, DisableInterrupts: true})
	// Copy 64 bytes where the destination runs off the end of physical
	// memory after 32 iterations: store to 0xFFE0..0xFFFF ok, then fault.
	m.LoadProgram(isa.MustAssemble(`
		movi r0, 0x8000
		movi r1, 0xFFE0
		movi r2, 64
		rep movs
		halt
	`, 0x1000))
	for {
		if _, ok := m.Step(); !ok {
			break
		}
	}
	if m.Fatal() == nil {
		t.Fatal("expected unhandled protection fault")
	}
	if m.GPR[2] != 64-32 {
		t.Errorf("count register = %d, want 32 remaining after partial REP", m.GPR[2])
	}
	if m.GPR[1] != 0xFFE0+32 {
		t.Errorf("destination pointer = %#x, want %#x", m.GPR[1], 0xFFE0+32)
	}
}

// TestPageCrossingFetch places a long instruction across a user page
// boundary: the fetch path must stitch both pages (or fault on the second,
// which the TLB handler services) and execute it correctly.
func TestPageCrossingFetch(t *testing.T) {
	m, _ := runAt(t, `
		.org 0
		.space 256
		.org 0x400
	tlbmiss:
		movrc r11, cr2
		shri  r11, 12
		mov   r12, r11
		shli  r12, 12
		ori   r12, 3
		tlbwr r11, r12
		iret
		.org 0x480
	sys:	halt
		.org 0x1000
	entry:
		movi r8, tlbmiss
		movi r9, 12
		stw  r8, [r9]
		movi r8, sys
		movi r9, 20
		stw  r8, [r9]
		movi r8, 1
		movcr r8, cr1
		movi r8, 0x8000
		movcr r8, cr5
		movi r8, 0x20
		movcr r8, cr6
		iret
		; user code physically at 0x8000 (identity-mapped on demand). Pad so
		; that a 6-byte movi straddles the 0x9000 page boundary.
		.org 0x8000
	user:
		jmpf nearend
		.org 0x8FFD
	nearend:
		movi r7, 0x12345678   ; 6 bytes: 0x8FFD..0x9002 crosses the page
		syscall
	.entry entry
	`, 0, 100000)
	if m.GPR[7] != 0x12345678 {
		t.Errorf("page-crossing instruction executed wrong: R7 = %#x", m.GPR[7])
	}
}
