package fm

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

// sbModel builds a model with the superblock fast path enabled (small
// caches, so conflict evictions happen too).
func sbModel(prog *isa.Program, sblen int) *Model {
	m := New(Config{
		MemBytes:          1 << 20,
		DisableInterrupts: true,
		ICacheEntries:     64,
		SuperblockLen:     sblen,
	})
	m.LoadProgram(prog)
	return m
}

// sbDrain runs m block-at-a-time with an always-continue sink (the way the
// coupled pump drives it with budget to spare) until the stream ends or
// max entries have been produced. It returns the entries and the per-call
// retired counts (the observed block lengths).
func sbDrain(t *testing.T, m *Model, max int) ([]trace.Entry, []int) {
	t.Helper()
	var entries []trace.Entry
	var blocks []int
	for len(entries) < max {
		n := m.StepBlock(func(e trace.Entry) bool {
			entries = append(entries, e)
			return true
		})
		if n == 0 {
			if m.Fatal() != nil {
				t.Fatalf("fatal after %d entries: %v", len(entries), m.Fatal())
			}
			break
		}
		blocks = append(blocks, n)
	}
	return entries, blocks
}

// sbReference runs src per-instruction on a plain model (no caches) and
// returns it with its trace.
func sbReference(t *testing.T, prog *isa.Program, max int) (*Model, []trace.Entry) {
	t.Helper()
	m := New(Config{MemBytes: 1 << 20, DisableInterrupts: true})
	m.LoadProgram(prog)
	var out []trace.Entry
	for i := 0; i < max; i++ {
		e, ok := m.Step()
		if !ok {
			if m.Fatal() != nil {
				t.Fatalf("fatal after %d steps: %v", i, m.Fatal())
			}
			break
		}
		out = append(out, e)
	}
	return m, out
}

func sbCompare(t *testing.T, name string, got, want []trace.Entry, gotM, wantM *Model) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d entries, reference %d", name, len(got), len(want))
	}
	for i := range got {
		if !entriesEqual(got[i], want[i]) {
			t.Fatalf("%s: entry %d differs:\n got %+v\nwant %+v", name, i, got[i], want[i])
		}
	}
	if gotM.Scalars != wantM.Scalars {
		t.Fatalf("%s: final scalar state differs:\n got %+v\nwant %+v", name, gotM.Scalars, wantM.Scalars)
	}
}

// TestSuperblockSMCSplitsHotBlock patches an instruction inside the hot
// loop body itself: the patch store lands on the block's own page while the
// block is running, so the executor must split the block at the store and
// re-form from fresh bytes — and the trace must match per-instruction
// execution exactly.
func TestSuperblockSMCSplitsHotBlock(t *testing.T) {
	prog := isa.MustAssemble(`
		movi r6, 0
	loop:
	target:
		movi r7, 0x11111111
		movi r0, target
		addi r0, 2
		movi r1, 0x22222222
		stw  r1, [r0]
		movi r5, 0x1234
		addi r6, 1
		cmpi r6, 4
		jl   loop
		halt
	`, 0x1000)
	ref, want := sbReference(t, prog, 1000)
	for _, sblen := range []int{1, 8, 64} {
		m := sbModel(prog, sblen)
		got, _ := sbDrain(t, m, 1000)
		sbCompare(t, "smc", got, want, m, ref)
		if m.GPR[7] != 0x22222222 {
			t.Errorf("sblen %d: R7 = %#x, want 0x22222222 (patched immediate)", sblen, m.GPR[7])
		}
		if sblen > 1 {
			_, _, splits, _ := m.SuperblockStats()
			if splits == 0 {
				t.Errorf("sblen %d: in-block code store caused no split", sblen)
			}
		}
	}
}

// TestSuperblockRollbackMidBlock re-steers the model to instruction
// numbers that landed in the middle of executed superblocks, under a
// randomized rollback/commit schedule over a self-modifying loop. Every
// replay must reproduce the reference trace bit-exactly: this is the
// block-granular journal's core obligation (records cover spans, setPC
// pops whole records then replays forward to the target).
func TestSuperblockRollbackMidBlock(t *testing.T) {
	prog := isa.MustAssemble(`
		movi sp, 0x9000
		movi r6, 0
		movi r3, 0x22222222
		movi r4, 0x33333333
	loop:
	target:
		movi r7, 0x11111111
		add  r1, r7
		movi r0, target
		addi r0, 2
		stw  r3, [r0]
		mov  r5, r3
		mov  r3, r4
		mov  r4, r5
		addi r6, 1
		cmpi r6, 300
		jl   loop
		halt
	`, 0x1000)
	ref, want := sbReference(t, prog, 100_000)

	m := sbModel(prog, 8)
	rng := rand.New(rand.NewSource(7))
	entries := make([]trace.Entry, len(want))
	produced := 0
	midBlock := 0
	for {
		n := m.StepBlock(func(e trace.Entry) bool {
			if int(e.IN) < len(entries) {
				entries[e.IN] = e
			}
			produced++
			return true
		})
		if n == 0 {
			if m.Fatal() != nil {
				t.Fatalf("fatal: %v", m.Fatal())
			}
			break
		}
		// Re-steers target the same PC the instruction already had, so the
		// replayed path is the original path and the final trace must equal
		// a straight run's.
		if rng.Intn(4) == 0 && m.JournalLen() > 1 {
			back := rng.Intn(min(20, m.JournalLen()-1)) + 1
			target := m.IN() - uint64(back)
			if back < n {
				midBlock++ // target lands inside the block just executed
			}
			if err := m.SetPC(target, entries[target].PC); err != nil {
				t.Fatalf("SetPC(%d): %v", target, err)
			}
		}
		if rng.Intn(13) == 0 && m.IN() > 40 {
			m.Commit(m.IN() - 40)
		}
	}
	sbCompare(t, "rollback", entries, want, m, ref)
	if m.Rollbacks == 0 || midBlock == 0 {
		t.Fatalf("schedule exercised %d rollbacks (%d mid-block), want both > 0",
			m.Rollbacks, midBlock)
	}
	if produced <= len(want) {
		t.Errorf("produced %d entries total, want > %d (re-steers must replay work)",
			produced, len(want))
	}
}

// TestSuperblockLLSCTerminatesBlock pins the block-boundary rule for the
// atomics: both LL and SC end the block they appear in, so the multicore
// converge-at-boundary semantics around the link register see exactly the
// same instruction boundaries as per-instruction stepping.
func TestSuperblockLLSCTerminatesBlock(t *testing.T) {
	prog := isa.MustAssemble(`
		movi r7, 0x5000
		movi r0, 5
		stw  r0, [r7]
		ll   r1, [r7]
		addi r1, 1
		sc   r1, [r7]
		ldw  r2, [r7]
		halt
	`, 0x1000)
	ref, want := sbReference(t, prog, 100)
	m := sbModel(prog, 64)
	got, blocks := sbDrain(t, m, 100)
	sbCompare(t, "llsc", got, want, m, ref)
	// movi/movi/stw/ll | addi/sc | ldw/halt: LL and SC are terminators even
	// with a 64-deep cap.
	wantBlocks := []int{4, 2, 2}
	if len(blocks) != len(wantBlocks) {
		t.Fatalf("block lengths %v, want %v", blocks, wantBlocks)
	}
	for i := range blocks {
		if blocks[i] != wantBlocks[i] {
			t.Fatalf("block lengths %v, want %v", blocks, wantBlocks)
		}
	}
	if m.GPR[1] != 1 || m.GPR[2] != 6 {
		t.Errorf("sc outcome r1=%d r2=%d, want 1, 6", m.GPR[1], m.GPR[2])
	}
}

// FuzzSuperblockForm is the differential property behind every superblock
// test: executing arbitrary byte soup block-at-a-time must produce exactly
// the per-instruction model's trace and final state — faults, fatal stops
// and all — and never panic. Block formation over garbage exercises decode
// failures, length caps, page-end clipping and terminator detection.
func FuzzSuperblockForm(f *testing.F) {
	for _, src := range []string{
		`movi r0, 3
	loop:	addi r1, 3
		stw  r1, [r2+0x4000]
		ldw  r3, [r2+0x4000]
		dec  r0
		jnz  loop
		halt`,
		`movi r7, 0x5000
		ll   r1, [r7]
		addi r1, 1
		sc   r1, [r7]
		halt`,
		`movi r0, 0x1000
		movi r1, 0x22222222
		stw  r1, [r0]
		halt`,
	} {
		f.Add(isa.MustAssemble(src, 0x1000).Code)
	}
	f.Add([]byte{0x00, 0x01, 0x02, 0x03})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, code []byte) {
		if len(code) > 4096 {
			code = code[:4096]
		}
		prog := &isa.Program{Base: 0x1000, Code: code, Entry: 0x1000}
		const max = 500

		ref := New(Config{MemBytes: 1 << 20, DisableInterrupts: true})
		ref.LoadProgram(prog)
		var want []trace.Entry
		for i := 0; i < max; i++ {
			e, ok := ref.Step()
			if !ok {
				break
			}
			want = append(want, e)
		}

		m := New(Config{MemBytes: 1 << 20, DisableInterrupts: true,
			ICacheEntries: 16, SuperblockLen: 8})
		m.LoadProgram(prog)
		var got []trace.Entry
		for len(got) < max {
			n := m.StepBlock(func(e trace.Entry) bool {
				got = append(got, e)
				return true
			})
			if n == 0 {
				break
			}
		}
		// The reference may have stopped at max mid-stream; compare the
		// common prefix and the stop state only when both streams ended.
		limit := min(len(got), len(want))
		for i := 0; i < limit; i++ {
			if !entriesEqual(got[i], want[i]) {
				t.Fatalf("entry %d differs:\n got %+v\nwant %+v", i, got[i], want[i])
			}
		}
		if len(want) < max && len(got) < max {
			if len(got) != len(want) {
				t.Fatalf("stream lengths differ: block %d, reference %d", len(got), len(want))
			}
			if m.Scalars != ref.Scalars {
				t.Fatalf("final scalar state differs:\n got %+v\nwant %+v", m.Scalars, ref.Scalars)
			}
			if (m.Fatal() != nil) != (ref.Fatal() != nil) {
				t.Fatalf("fatal mismatch: block %v, reference %v", m.Fatal(), ref.Fatal())
			}
		}
	})
}
