package fm

import "repro/internal/isa"

// Coherence links the functional models of a multicore target. The cores
// share one physical memory (Config.SharedMem), so data values need no
// propagation — but each core keeps a private predecode cache keyed by
// physical address, and a store by one core must invalidate instructions
// another core predecoded from the written bytes. Coherence fans every
// store notification (including rollback memory undo, which rewrites
// memory without going through store) out to all attached models.
//
// The multicore scheduler runs all cores on one goroutine, so no locking
// is needed; attach order only affects private counters, never architected
// state.
type Coherence struct {
	models []*Model
}

// NewCoherence returns an empty coherence domain; fm.New attaches each
// model built with Config.Coherence set to it.
func NewCoherence() *Coherence { return &Coherence{} }

func (c *Coherence) attach(m *Model) {
	if c == nil {
		return
	}
	c.models = append(c.models, m)
}

// noteStore reports an n-byte write at physical address pa to every
// predecode cache in this model's coherence domain (or just its own when
// the model is not part of one).
func (m *Model) noteStore(pa isa.Word, n int) {
	if c := m.cfg.Coherence; c != nil {
		for _, peer := range c.models {
			peer.icache.noteStore(pa, n)
		}
		return
	}
	m.icache.noteStore(pa, n)
}
