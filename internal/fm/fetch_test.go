package fm

import "testing"

// TestPageCrossingFetchFaultVA: when an instruction straddles a page
// boundary and the second virtual page is unmapped, the fetch must fault
// with the *second* page's address — the first page's bytes were readable
// and only the tail is missing. The handler logs every fault VA to memory
// so the test can see exactly which pages missed, then identity-maps as
// usual so the retry proves the crossing fetch completes once both pages
// are present.
func TestPageCrossingFetchFaultVA(t *testing.T) {
	m, _ := runAt(t, `
		.org 0
		.space 256
		.org 0x400
	tlbmiss:
		movrc r11, cr2
		stw  r11, [r10]   ; log the fault VA
		addi r10, 4
		shri r11, 12
		mov  r12, r11
		shli r12, 12
		ori  r12, 3
		tlbwr r11, r12
		iret
		.org 0x480
	sys:	halt
		.org 0x1000
	entry:
		movi r8, tlbmiss
		movi r9, 12
		stw  r8, [r9]
		movi r8, sys
		movi r9, 20
		stw  r8, [r9]
		movi r10, 0x7000 ; fault-VA log cursor
		movi r8, 1
		movcr r8, cr1
		movi r8, 0x8000
		movcr r8, cr5
		movi r8, 0x20
		movcr r8, cr6
		iret
		.org 0x8000
	user:
		jmpf nearend
		.org 0x8FFD
	nearend:
		movi r7, 0x12345678  ; 6 bytes: 0x8FFD..0x9002 crosses into VPN 9
		syscall
	.entry entry
	`, 0, 100_000)
	if m.GPR[7] != 0x12345678 {
		t.Errorf("crossing instruction after retry: R7 = %#x, want 0x12345678", m.GPR[7])
	}
	// Exactly two TLB misses: the first user fetch, then the crossing
	// instruction's tail — reported as the second page, not the fetch PC.
	if got := m.Mem.Read(0x7000, 4); got != 0x8000 {
		t.Errorf("first fault VA = %#x, want 0x8000", got)
	}
	if got := m.Mem.Read(0x7004, 4); got != 0x9000 {
		t.Errorf("crossing fault VA = %#x, want 0x9000 (second page)", got)
	}
	if got := m.Mem.Read(0x7008, 4); got != 0 {
		t.Errorf("unexpected third fault VA %#x", got)
	}
}

// TestFetchEndingAtPageBoundaryNoFault: an instruction whose last byte is
// the last byte of a mapped page must execute without touching the next
// page, even though the decoder's speculative fetch window would reach
// past it. The next virtual page stays unmapped for the whole run.
func TestFetchEndingAtPageBoundaryNoFault(t *testing.T) {
	m, _ := runAt(t, `
		.org 0
		.space 256
		.org 0x400
	tlbmiss:
		movrc r11, cr2
		stw  r11, [r10]
		addi r10, 4
		shri r11, 12
		mov  r12, r11
		shli r12, 12
		ori  r12, 3
		tlbwr r11, r12
		iret
		.org 0x480
	sys:	halt
		.org 0x1000
	entry:
		movi r8, tlbmiss
		movi r9, 12
		stw  r8, [r9]
		movi r8, sys
		movi r9, 20
		stw  r8, [r9]
		movi r10, 0x7000
		movi r8, 1
		movcr r8, cr1
		movi r8, 0x8000
		movcr r8, cr5
		movi r8, 0x20
		movcr r8, cr6
		iret
		.org 0x8000
	user:
		jmpf mid
	done:
		syscall
		.org 0x8FF7
	mid:
		movi r7, 0x55AA55AA  ; 0x8FF7..0x8FFC
		jmp  done            ; 3 bytes: 0x8FFD..0x8FFF, ends at the page edge
	.entry entry
	`, 0, 100_000)
	if m.GPR[7] != 0x55AA55AA {
		t.Errorf("R7 = %#x, want 0x55AA55AA", m.GPR[7])
	}
	// Only the initial user-page miss; the boundary-hugging jmpf must not
	// have faulted on 0x9000.
	if got := m.Mem.Read(0x7000, 4); got != 0x8000 {
		t.Errorf("first fault VA = %#x, want 0x8000", got)
	}
	if got := m.Mem.Read(0x7004, 4); got != 0 {
		t.Errorf("unexpected second fault VA %#x — fetch touched the unmapped page", got)
	}
}
