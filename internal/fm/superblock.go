package fm

import (
	"repro/internal/fullsys"
	"repro/internal/isa"
	"repro/internal/microcode"
	"repro/internal/trace"
)

// Superblock threaded execution, built on top of the predecode cache
// (icache.go): straight-line runs of predecoded instructions are formed
// once and then executed as a chain of pre-bound closures with ONE
// rollback record, ONE interrupt/device check and ONE translation per
// block instead of one per instruction. Trace entries are assembled
// block-at-a-time and handed to the caller's sink, which enforces the
// coupling loop's per-entry predicates (budget, buffer occupancy) so a
// block stops at exactly the instruction a per-instruction loop would
// have stopped at — the property that keeps every architected and
// modeled number bit-identical at any SuperblockLen.
//
// Block formation walks physical memory forward from the entry PC's
// translation, reusing (and filling) the predecode cache per candidate,
// and stops at:
//
//   - a terminator instruction (included as the block's last op): any
//     branch/call/ret/trap, HALT, ll/sc (the link register must see
//     per-boundary semantics, and multicore converge-at-boundary rides
//     on that), TLB/CR writes (they can change translation), port I/O
//     and STI (they can change device/interrupt state mid-block);
//   - a physical page end (blocks never span pages, so ONE page
//     generation compare validates a whole block — page-crossing
//     predecode entries are skipped for the same reason);
//   - a decode failure (the per-instruction path raises the fault);
//   - the configured length cap.
//
// Invalidation rides the predecode cache's per-physical-page generation
// counters: stores (own, remote-core via Coherence, or rollback memory
// undo) bump the page generation, and a block whose fill-time generation
// disagrees re-forms. A store *inside* a running block is caught by a
// post-instruction generation compare and splits the block (the executed
// prefix is correct; the stale suffix never runs). LoadProgram flushes
// the block cache outright — page generations survive an icache flush,
// so stale blocks would otherwise still generation-match.
//
// Entry conditions (checked once per block, replacing the per-instruction
// Bus.Due/Tick and interrupt-delivery checks of Step):
//
//   - no interrupt is deliverable right now, and none can become
//     deliverable mid-block: pending lines only change via device events
//     or port I/O, FlagI is only set by terminators, and
//   - no device event falls due inside the block's device-time span
//     (Bus.NextDue), so the skipped Bus.Tick calls are state-identical
//     no-ops. Device `now` fields are not snapshot state and port I/O
//     re-ticks before touching a device, so skipping them is
//     unobservable.
//
// When any condition fails, StepBlock degrades to a single Step().

// DefaultSuperblockLen is the superblock length cap the CLIs and the
// direct core.DefaultConfig use. Like ICacheEntries, the knob only trades
// host memory for FM speed — architected results are identical at any
// value, including 0 (disabled).
const DefaultSuperblockLen = 32

// sbOp is one predecoded instruction inside a superblock. Register names
// and the µop instantiation are copied out of the predecode-cache slot at
// formation time (slots are direct-mapped and unstable); run is the
// pre-bound execution closure — the "threaded code" dispatch.
type sbOp struct {
	off  isa.Word // byte offset from the block's first instruction
	size uint8
	inst isa.Inst
	pre  microcode.Precracked

	srcA, srcB, dst   isa.Reg
	readsCC, writesCC bool

	run func(m *Model, nextPC isa.Word, e *trace.Entry) *fault
}

// sbEntry is one direct-mapped superblock-cache slot. len(ops) == 0 marks
// an empty slot.
type sbEntry struct {
	pa   isa.Word // physical address of the first instruction byte
	page isa.Word // pa >> PageShift (blocks never span pages)
	gen  uint32   // the page's store generation at formation time
	ops  []sbOp
}

// sbCache is the direct-mapped superblock cache. It shares the predecode
// cache's per-page generation counters, so every existing invalidation
// path (stores, coherence fan-out, rollback memory undo) covers blocks
// for free.
type sbCache struct {
	slots  []sbEntry
	mask   isa.Word
	maxLen int
	ic     *icache

	// Statistics, published as fm_superblock_* by Model.PublishTelemetry.
	hits          uint64
	misses        uint64
	splits        uint64 // blocks ended early by an in-block store (SMC)
	invalidations uint64 // probes rejected by a stale page generation
}

// newSBCache sizes the block cache to the predecode cache's slot count
// (already a power of two) and caps blocks at maxLen instructions.
func newSBCache(maxLen int, ic *icache) *sbCache {
	return &sbCache{
		slots:  make([]sbEntry, len(ic.slots)),
		mask:   isa.Word(len(ic.slots) - 1),
		maxLen: maxLen,
		ic:     ic,
	}
}

// probe looks up the block starting at physical address pa.
func (c *sbCache) probe(pa isa.Word) *sbEntry {
	e := &c.slots[pa&c.mask]
	if len(e.ops) == 0 || e.pa != pa {
		c.misses++
		return nil
	}
	if e.gen != c.ic.pageGen[e.page] {
		c.invalidations++
		c.misses++
		return nil
	}
	c.hits++
	return e
}

// stale reports whether a store has hit the block's page since formation
// (checked after every executed instruction to catch in-block SMC).
func (c *sbCache) stale(e *sbEntry) bool { return e.gen != c.ic.pageGen[e.page] }

// flush empties the block cache (program load).
func (c *sbCache) flush() {
	if c == nil {
		return
	}
	clear(c.slots)
}

// blockTerminator reports whether op must end a superblock: anything that
// redirects the PC, halts, touches the ll/sc link, changes translation
// state, or can change device/interrupt state mid-block.
func blockTerminator(op isa.Op) bool {
	switch op {
	case isa.OpJmp, isa.OpJz, isa.OpJnz, isa.OpJl, isa.OpJge, isa.OpJg,
		isa.OpJle, isa.OpJc, isa.OpJnc, isa.OpJmpR, isa.OpCall, isa.OpCallR,
		isa.OpRet, isa.OpLoop, isa.OpJmpFar, isa.OpCallFar,
		isa.OpSyscall, isa.OpBreak, isa.OpIret, isa.OpHalt,
		isa.OpLl, isa.OpSc,
		isa.OpTlbWr, isa.OpTlbFl, isa.OpMovCR,
		isa.OpIn, isa.OpOut, isa.OpSti:
		return true
	}
	return false
}

// form builds, installs and returns the superblock starting at (pc, pa),
// or nil when not even one instruction qualifies. Candidates come from
// the predecode cache when present (page-crossing entries stop the walk)
// and are decoded-and-filled otherwise, so formation leaves the
// per-instruction path's cache warm too.
func (c *sbCache) form(m *Model, pc, pa isa.Word) *sbEntry {
	page := pa >> fullsys.PageShift
	pageEnd := (page + 1) << fullsys.PageShift
	paged := !m.Kernel() && m.CR[isa.CRPaging] != 0
	ops := make([]sbOp, 0, c.maxLen)
	off := isa.Word(0)
	for len(ops) < c.maxLen {
		cur := pa + off
		if cur >= pageEnd || !m.Mem.InRange(cur, 1) {
			break
		}
		var op sbOp
		if ce, ok := m.icache.probe(cur, paged); ok {
			if ce.crosses {
				break
			}
			op = sbOp{
				off: off, size: ce.size, inst: ce.inst, pre: ce.pre,
				srcA: ce.srcA, srcB: ce.srcB, dst: ce.dst,
				readsCC: ce.readsCC, writesCC: ce.writesCC,
			}
		} else {
			// Decode with the byte window capped at the page end: a decode
			// that succeeds cannot cross, and one that would have crossed
			// fails here and ends the block instead.
			n := isa.MaxInstLen
			if rem := int(pageEnd - cur); rem < n {
				n = rem
			}
			if rem := m.Mem.Size() - int(cur); rem < n {
				n = rem
			}
			inst, derr := isa.Decode(m.Mem.Bytes(cur, n), pc+off)
			if derr != nil {
				break
			}
			pre := m.table.Precrack(inst)
			m.icache.fill(cur, inst, false, paged, page, pre)
			var scratch trace.Entry
			fillRegs(inst, &scratch)
			op = sbOp{
				off: off, size: uint8(inst.Size), inst: inst, pre: pre,
				srcA: scratch.SrcA, srcB: scratch.SrcB, dst: scratch.Dst,
				readsCC: scratch.ReadsCC, writesCC: scratch.WritesCC,
			}
		}
		bound := op.inst
		op.run = func(m *Model, nextPC isa.Word, e *trace.Entry) *fault {
			return m.execute(bound, nextPC, e)
		}
		ops = append(ops, op)
		if blockTerminator(op.inst.Op) {
			break
		}
		off += isa.Word(op.size)
	}
	if len(ops) == 0 {
		return nil
	}
	e := &c.slots[pa&c.mask]
	*e = sbEntry{pa: pa, page: page, gen: c.ic.pageGen[page], ops: ops}
	return e
}

// blockReady returns the superblock at the current PC when the block fast
// path may run right now, nil when the caller must take the
// per-instruction path: superblocks disabled, target halted/fatal, an
// interrupt deliverable (or able to become deliverable mid-block), a
// device event due inside the block's device-time span, a fetch that
// faults (the per-instruction path raises it), or no formable block.
func (m *Model) blockReady() *sbEntry {
	c := m.sb
	if c == nil || m.halted || m.fatal != nil {
		return nil
	}
	if !m.cfg.DisableInterrupts && m.Flags&isa.FlagI != 0 && m.Bus.Pending() >= 0 {
		return nil
	}
	now := m.Now()
	if m.Bus.NextDue(now) <= now+uint64(c.maxLen) {
		return nil
	}
	pa, f := m.translate(m.PC, false)
	if f != nil || !m.Mem.InRange(pa, 1) {
		return nil
	}
	if e := c.probe(pa); e != nil {
		return e
	}
	return c.form(m, m.PC, pa)
}

// StepBlock executes up to one superblock of dynamic instructions,
// invoking sink with each produced trace entry in order. sink's return
// value is the continuation predicate: returning false stops the block
// after the entry just delivered (the caller's budget or buffer gate),
// leaving the model at that exact instruction boundary. The return value
// is the number of entries produced (0 means the target is halted or
// fatal, exactly like Step's ok == false).
//
// When the block path is unavailable StepBlock executes a single Step()
// — so a caller looping over StepBlock is behaviourally identical to one
// looping over Step, just faster.
func (m *Model) StepBlock(sink func(trace.Entry) bool) int {
	blk := m.blockReady()
	if blk == nil {
		e, ok := m.Step()
		if !ok {
			return 0
		}
		sink(e)
		return 1
	}
	j := m.jeng
	j.beginBlock(m)
	retired := 0
	basePC := m.PC
	for i := range blk.ops {
		op := &blk.ops[i]
		e := &m.sbEnt
		*e = trace.Entry{IN: m.in, PC: basePC + op.off, Kernel: m.Kernel()}
		e.PPC = blk.pa + op.off
		e.Op = op.inst.Op
		e.Size = op.size
		e.SrcA, e.SrcB, e.Dst = op.srcA, op.srcB, op.dst
		e.ReadsCC, e.WritesCC = op.readsCC, op.writesCC
		nextPC := e.PC + isa.Word(op.size)
		f := op.run(m, nextPC, e)
		if f != nil || m.fatal != nil {
			// Rare slow path: an exception (or a fatal condition) inside the
			// block. The block journal record cannot undo just the faulting
			// instruction's partial effects without per-instruction
			// snapshots, so undo the WHOLE block, re-execute the retired
			// prefix per-instruction under the replay flag (its entries are
			// already delivered and its statistics already counted), and let
			// Step handle the faulting instruction exactly as the
			// per-instruction path would — including trap delivery, the
			// Exceptions counter and the fatal abort.
			return m.replayFault(sink, retired)
		}
		ent, _ := m.finishEntry(*e, op.inst, &op.pre)
		retired++
		if !sink(ent) {
			break
		}
		if m.halted {
			break
		}
		if m.sb.stale(blk) {
			// An in-block store hit this block's page: the executed prefix
			// is correct, the predecoded suffix may not be. Split here; the
			// next probe re-forms from fresh bytes.
			m.sb.splits++
			break
		}
	}
	j.endBlock(m, retired)
	return retired
}

// replayFault recovers from an exception or fatal condition raised inside
// a superblock: the open block record is rolled back wholesale, the
// already-delivered prefix is re-executed silently, and the faulting
// instruction re-runs through Step on the per-instruction path. Replay is
// deterministic — blockReady proved no interrupt or device event falls in
// the window, and the prefix cannot have patched its own block (the
// staleness check splits first).
func (m *Model) replayFault(sink func(trace.Entry) bool, retired int) int {
	m.jeng.undoTop(m)
	m.fatal = nil
	if retired > 0 {
		m.replay = true
		for k := 0; k < retired; k++ {
			if _, ok := m.Step(); !ok {
				m.replay = false
				panic("fm: superblock prefix replay diverged")
			}
		}
		m.replay = false
	}
	if e, ok := m.Step(); ok {
		retired++
		sink(e)
	}
	return retired
}

// SuperblocksEnabled reports whether the block fast path exists at all
// (Config.SuperblockLen > 0 with the predecode cache and journal engine
// present). Callers may use it to skip StepBlock's sink indirection and
// drive Step directly when blocks can never form.
func (m *Model) SuperblocksEnabled() bool { return m.sb != nil }

// SuperblockStats reports the superblock-cache counters (all zero when
// disabled): block probe hits, misses, SMC splits and generation-stale
// probe invalidations.
func (m *Model) SuperblockStats() (hits, misses, splits, invalidations uint64) {
	if m.sb == nil {
		return 0, 0, 0, 0
	}
	return m.sb.hits, m.sb.misses, m.sb.splits, m.sb.invalidations
}
