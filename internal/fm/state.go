package fm

// Warm-start serialization of the functional model. A Model snapshot is
// legal only at a quiescent boundary — every produced instruction
// committed by the timing model, no wrong-path speculation in flight —
// which the coupled simulator (internal/core) verifies before calling
// Snapshot. At such a boundary the rollback window is semantically empty,
// so the journal contributes nothing; the only engine state that must
// survive is the checkpoint engine's phase (distance into the current
// leapfrog segment) and its cumulative re-execution count, without which a
// resumed run would place future checkpoints differently and drift from
// the cold run's modeled cost.
//
// The encoding covers architected scalars, physical memory (sparse,
// zero-page-elided), the TLB, the whole device bus, and the model's
// cumulative statistics, so a resumed run continues every counter exactly
// where the cold run left it. Host-side accelerator caches (predecode
// icache, superblock cache) are deliberately excluded: they are
// bit-invariant by contract and rebuild on demand; Restore flushes them.

import (
	"fmt"

	"repro/internal/snap"
)

const fmStateV = 1

// Snapshot serializes the model at a quiescent boundary. withMem controls
// whether physical memory is included: a single-core model owns its
// memory (true); multicore cores share one Memory, which the multicore
// container serializes once (false).
func (m *Model) Snapshot(withMem bool) ([]byte, error) {
	if m.fatal != nil {
		return nil, fmt.Errorf("fm: snapshot with fatal condition: %w", m.fatal)
	}
	if m.replay {
		return nil, fmt.Errorf("fm: snapshot during checkpoint replay")
	}
	w := snap.NewWriter(4096)
	m.SaveState(w, withMem)
	return w.Bytes(), nil
}

// SaveState appends the model's versioned binary state.
func (m *Model) SaveState(w *snap.Writer, withMem bool) {
	w.U8(fmStateV)

	// Architected scalars.
	for _, r := range m.GPR {
		w.U32(r)
	}
	for _, f := range m.FPR {
		w.F64(f)
	}
	w.U32(m.Flags)
	w.U32(m.PC)
	for _, c := range m.CR {
		w.U32(c)
	}
	w.Bool(m.LLValid)
	w.U32(m.LLAddr)
	w.U32(m.LLVal)

	// Execution position.
	w.U64(m.in)
	w.Bool(m.halted)
	w.U64(m.idle)

	// Cumulative statistics.
	w.U64(m.Coverage.Instructions)
	w.U64(m.Coverage.Covered)
	w.U64(m.Coverage.UOps)
	w.U64(m.TraceWords)
	w.U64(m.Rollbacks)
	w.U64(m.RolledBack)
	w.U64(m.Interrupts)
	w.U64(m.Exceptions)

	// Rollback-engine phase.
	w.U8(uint8(m.cfg.Rollback))
	if c, ok := m.engine.(*checkpointEngine); ok {
		w.U64(c.reExecuted)
		count := 0
		if len(c.segs) > 0 {
			count = c.cur().count
		}
		w.U32(uint32(count))
	}

	m.TLB.SaveState(w)
	w.Bool(withMem)
	if withMem {
		m.Mem.SaveState(w)
	}
	m.Bus.SaveState(w)
}

// Restore reinstates a Snapshot blob onto a freshly configured model. The
// model must have been built with the same workload-shaping configuration
// (memory geometry, device complement, rollback mode) — mismatches are
// decode errors, not silent divergence.
func (m *Model) Restore(blob []byte) error {
	r := snap.NewReader(blob)
	if err := m.LoadState(r, true); err != nil {
		return err
	}
	return r.Close()
}

// LoadState decodes model state written by SaveState. wantMem asserts
// whether the blob is expected to carry physical memory (single-core) or
// not (multicore cores, whose shared memory the container restores).
func (m *Model) LoadState(r *snap.Reader, wantMem bool) error {
	if v := r.U8(); r.Err() == nil && v != fmStateV {
		return snap.Corruptf("fm state version %d, want %d", v, fmStateV)
	}

	var s Scalars
	for i := range s.GPR {
		s.GPR[i] = r.U32()
	}
	for i := range s.FPR {
		s.FPR[i] = r.F64()
	}
	s.Flags = r.U32()
	s.PC = r.U32()
	for i := range s.CR {
		s.CR[i] = r.U32()
	}
	s.LLValid = r.Bool()
	s.LLAddr = r.U32()
	s.LLVal = r.U32()

	in := r.U64()
	halted := r.Bool()
	idle := r.U64()

	covInst, covCovered, covUOps := r.U64(), r.U64(), r.U64()
	traceWords, rollbacks, rolledBack := r.U64(), r.U64(), r.U64()
	interrupts, exceptions := r.U64(), r.U64()

	mode := RollbackMode(r.U8())
	if r.Err() == nil && mode != m.cfg.Rollback {
		return snap.Corruptf("rollback mode %d, model configured for %d", mode, m.cfg.Rollback)
	}
	var reExec uint64
	var segCount uint32
	if mode == RollbackCheckpoint {
		reExec = r.U64()
		segCount = r.U32()
	}

	if err := m.TLB.LoadState(r); err != nil {
		return err
	}
	hasMem := r.Bool()
	if r.Err() == nil && hasMem != wantMem {
		return snap.Corruptf("memory presence %v, want %v", hasMem, wantMem)
	}
	if hasMem {
		if err := m.Mem.LoadState(r); err != nil {
			return err
		}
	}
	if err := m.Bus.LoadState(r); err != nil {
		return err
	}
	if err := r.Err(); err != nil {
		return err
	}

	// Decode complete: apply.
	m.Scalars = s
	m.in, m.halted, m.idle = in, halted, idle
	m.fatal = nil
	m.Coverage.Instructions, m.Coverage.Covered, m.Coverage.UOps = covInst, covCovered, covUOps
	m.TraceWords, m.Rollbacks, m.RolledBack = traceWords, rollbacks, rolledBack
	m.Interrupts, m.Exceptions = interrupts, exceptions
	if c, ok := m.engine.(*checkpointEngine); ok {
		// Rebuild the leapfrog phase: one segment anchored at the restored
		// state, already segCount instructions deep, so the next checkpoint
		// lands exactly where the cold run's would have.
		c.reExecuted = reExec
		c.segs = c.segs[:0]
		c.take(m)
		c.cur().count = int(segCount)
	} else if m.jeng != nil {
		m.jeng.journal = m.jeng.journal[:0]
	}
	// Memory contents changed under the host-side caches: rebuild on demand.
	m.icache.flush()
	m.sb.flush()
	return nil
}
