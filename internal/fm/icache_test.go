package fm

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/trace"
)

// icachePair runs src on two otherwise identical models — predecode cache
// enabled (small, so conflict evictions happen too) and disabled — and
// fails unless the traces and final scalar state are identical. It returns
// the cached model for stat assertions.
func icachePair(t *testing.T, src string, base isa.Word, max int) *Model {
	t.Helper()
	prog := isa.MustAssemble(src, base)
	exec := func(entries int) (*Model, []trace.Entry) {
		m := New(Config{MemBytes: 1 << 20, DisableInterrupts: true, ICacheEntries: entries})
		m.LoadProgram(prog)
		var out []trace.Entry
		for i := 0; i < max; i++ {
			e, ok := m.Step()
			if !ok {
				if m.Fatal() != nil {
					t.Fatalf("fatal after %d steps: %v", i, m.Fatal())
				}
				break
			}
			out = append(out, e)
		}
		return m, out
	}
	on, onT := exec(64)
	off, offT := exec(0)
	if len(onT) != len(offT) {
		t.Fatalf("cached run: %d entries, uncached %d", len(onT), len(offT))
	}
	for i := range onT {
		if !entriesEqual(onT[i], offT[i]) {
			t.Fatalf("entry %d differs with cache on:\n  on: %+v\n off: %+v", i, onT[i], offT[i])
		}
	}
	if on.Scalars != off.Scalars {
		t.Fatalf("final scalar state differs:\n  on: %+v\n off: %+v", on.Scalars, off.Scalars)
	}
	return on
}

// TestICacheSelfModifyingCode stores into an already-cached instruction's
// immediate and re-executes it: the store must invalidate the cached
// decode, so the patched bytes execute and the trace matches an uncached
// model exactly.
func TestICacheSelfModifyingCode(t *testing.T) {
	m := icachePair(t, `
		movi r6, 0
	loop:
	target:
		movi r7, 0x11111111
		addi r6, 1
		cmpi r6, 2
		jl   patch
		halt
	patch:
		movi r0, target
		addi r0, 2
		movi r1, 0x22222222
		stw  r1, [r0]
		jmp  loop
	`, 0x1000, 100)
	if m.GPR[7] != 0x22222222 {
		t.Errorf("R7 = %#x, want 0x22222222 (patched immediate)", m.GPR[7])
	}
	// No hit assertion: the patch store lands on the page holding the loop
	// itself, so every iteration legitimately re-decodes the whole page.
	_, _, invalidations, _ := m.ICacheStats()
	if invalidations == 0 {
		t.Error("code store caused no invalidation")
	}
}

// TestICachePagedCrossingRemap caches a page-crossing user instruction,
// then has the kernel remap the second virtual page to a different frame
// holding different tail bytes. The mapping-generation check must force a
// re-fetch: the entry's physical first page is untouched, so nothing else
// would invalidate it.
func TestICachePagedCrossingRemap(t *testing.T) {
	m := icachePair(t, `
		.org 0
		.space 256
		.org 0x400
	tlbmiss:
		movrc r11, cr2
		shri  r11, 12
		mov   r12, r11
		shli  r12, 12
		ori   r12, 3
		tlbwr r11, r12
		iret
		.org 0x480
	sys:
		cmpi r5, 0
		jnz  fin
		movi r5, 1
		; build an alternate image of the tail page in frame 3: copy the
		; original page-9 bytes, then rewrite the first two (the crossing
		; instruction's middle immediate bytes).
		movi r0, 0x9000
		movi r1, 0x3000
		movi r2, 16
		rep movs
		movi r3, 0xBBAA
		movi r4, 0x3000
		sth  r3, [r4]
		; remap user VPN 9 -> PFN 3 and re-run the crossing instruction
		movi r11, 9
		movi r12, 0x3003
		tlbwr r11, r12
		movi r8, 0x8FFD
		movcr r8, cr5
		iret
	fin:	halt
		.org 0x1000
	entry:
		movi r8, tlbmiss
		movi r9, 12
		stw  r8, [r9]
		movi r8, sys
		movi r9, 20
		stw  r8, [r9]
		movi r8, 1
		movcr r8, cr1
		movi r8, 0x8000
		movcr r8, cr5
		movi r8, 0x20
		movcr r8, cr6
		iret
		; user code, identity-mapped on demand; the movi's 6 bytes sit at
		; 0x8FFD..0x9002, crossing into VPN 9.
		.org 0x8000
	user:
		jmpf nearend
		.org 0x8FFD
	nearend:
		movi r7, 0x12345678
		syscall
	.entry entry
	`, 0, 100_000)
	// Second execution reads imm bytes {0x78 | AA BB 0x12}: frame 3 holds
	// the copied page with its first halfword rewritten to 0xBBAA.
	if m.GPR[7] != 0x12BBAA78 {
		t.Errorf("R7 = %#x, want 0x12BBAA78 (remapped tail bytes)", m.GPR[7])
	}
}

// TestICacheRollbackPastCodeStore is the directed store-then-rollback SMC
// case: cache an instruction, patch it, execute the patched form, then
// roll back to before the patch store and steer straight back to the
// instruction. Memory undo rewrites the original bytes without passing
// through Model.store, so the cache must learn about it from the undo path.
func TestICacheRollbackPastCodeStore(t *testing.T) {
	src := `
		movi r7, 0
	target:
		movi r7, 0x11111111
		movi r0, target
		addi r0, 2
		movi r1, 0x22222222
		stw  r1, [r0]
		jmp  target
	`
	prog := isa.MustAssemble(src, 0x1000)
	for _, cfg := range []Config{
		{MemBytes: 1 << 20, DisableInterrupts: true, ICacheEntries: 64},
		{MemBytes: 1 << 20, DisableInterrupts: true, ICacheEntries: 64,
			Rollback: RollbackCheckpoint, CheckpointInterval: 4},
		{MemBytes: 1 << 20, DisableInterrupts: true},
	} {
		m := New(cfg)
		m.LoadProgram(prog)
		var entries []trace.Entry
		for i := 0; i < 8; i++ { // IN 0..7; IN 7 re-executes target patched
			e, ok := m.Step()
			if !ok {
				t.Fatalf("halted early at step %d", i)
			}
			entries = append(entries, e)
		}
		if m.GPR[7] != 0x22222222 {
			t.Fatalf("after patch R7 = %#x, want 0x22222222", m.GPR[7])
		}
		// Roll back to IN 2 (undoes the store at IN 5) and steer to target.
		if err := m.SetPC(2, entries[1].PC); err != nil {
			t.Fatalf("SetPC: %v", err)
		}
		e, ok := m.Step()
		if !ok || e.IN != 2 || e.PC != entries[1].PC {
			t.Fatalf("redirected step = %+v ok=%v, want IN 2 at %#x", e, ok, entries[1].PC)
		}
		if m.GPR[7] != 0x11111111 {
			t.Fatalf("replay after rollback R7 = %#x, want original 0x11111111", m.GPR[7])
		}
	}
}

// TestICacheRollbackReplayEquivalence runs a self-modifying loop under an
// identical random rollback/commit schedule on three models — journal and
// leapfrog-checkpoint with the cache on, journal with it off — and
// requires byte-identical traces and final state. This locks the cache's
// two rollback obligations at once: undo-driven invalidation and
// checkpoint replay through the normal store path.
func TestICacheRollbackReplayEquivalence(t *testing.T) {
	prog := isa.MustAssemble(`
		movi sp, 0x9000
		movi r6, 0
		movi r3, 0x22222222
		movi r4, 0x33333333
	loop:
	target:
		movi r7, 0x11111111
		add  r1, r7
		movi r0, target
		addi r0, 2
		stw  r3, [r0]
		mov  r5, r3
		mov  r3, r4
		mov  r4, r5
		addi r6, 1
		cmpi r6, 300
		jl   loop
		halt
	`, 0x1000)

	drive := func(m *Model, seed int64) []trace.Entry {
		var entries []trace.Entry
		rng := rand.New(rand.NewSource(seed))
		for {
			e, ok := m.Step()
			if !ok {
				if m.Fatal() != nil {
					t.Fatalf("fatal: %v", m.Fatal())
				}
				break
			}
			if int(e.IN) >= len(entries) {
				entries = append(entries, e)
			} else {
				entries[e.IN] = e
			}
			if rng.Intn(8) == 0 && m.JournalLen() > 1 {
				back := rng.Intn(min(20, m.JournalLen()-1)) + 1
				target := m.IN() - uint64(back)
				if err := m.SetPC(target, entries[target].PC); err != nil {
					t.Fatalf("SetPC: %v", err)
				}
			}
			if rng.Intn(13) == 0 && m.IN() > 40 {
				m.Commit(m.IN() - 40)
			}
		}
		return entries
	}

	ref := New(Config{MemBytes: 1 << 20, DisableInterrupts: true})
	ref.LoadProgram(prog)
	refEntries := drive(ref, 7)

	for name, cfg := range map[string]Config{
		"journal": {MemBytes: 1 << 20, DisableInterrupts: true, ICacheEntries: 64},
		"checkpoint": {MemBytes: 1 << 20, DisableInterrupts: true, ICacheEntries: 64,
			Rollback: RollbackCheckpoint, CheckpointInterval: 8},
	} {
		m := New(cfg)
		m.LoadProgram(prog)
		entries := drive(m, 7)
		if len(entries) != len(refEntries) {
			t.Fatalf("%s: %d entries vs %d uncached", name, len(entries), len(refEntries))
		}
		for i := range entries {
			if !entriesEqual(entries[i], refEntries[i]) {
				t.Fatalf("%s: entry %d differs:\n got %+v\nwant %+v", name, i, entries[i], refEntries[i])
			}
		}
		if m.Scalars != ref.Scalars {
			t.Fatalf("%s: final scalar state differs", name)
		}
		if m.Rollbacks == 0 {
			t.Fatalf("%s: schedule exercised no rollbacks", name)
		}
	}
}

// TestICacheStatsAndTelemetry pins the counter plumbing: LoadProgram
// counts one flush, a loop hits, and the counters surface under the
// documented fm_icache_* metric names (absent when the cache is off).
func TestICacheStatsAndTelemetry(t *testing.T) {
	src := `
		movi r0, 0
	loop:
		addi r0, 1
		cmpi r0, 50
		jl   loop
		halt
	`
	m, _ := func() (*Model, []trace.Entry) {
		m := New(Config{MemBytes: 1 << 20, DisableInterrupts: true, ICacheEntries: 16})
		m.LoadProgram(isa.MustAssemble(src, 0x1000))
		for {
			if _, ok := m.Step(); !ok {
				break
			}
		}
		return m, nil
	}()
	hits, misses, _, flushes := m.ICacheStats()
	if hits == 0 || misses == 0 {
		t.Errorf("stats hits=%d misses=%d, want both > 0", hits, misses)
	}
	if flushes != 1 {
		t.Errorf("flushes = %d, want exactly 1 (LoadProgram)", flushes)
	}

	tel := obs.New()
	m.PublishTelemetry(tel)
	var buf bytes.Buffer
	tel.Metrics.WritePrometheus(&buf)
	for _, name := range []string{
		"fm_icache_hits_total", "fm_icache_misses_total",
		"fm_icache_invalidations_total", "fm_icache_flushes_total",
	} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("metric %s missing from telemetry output", name)
		}
	}

	off := New(Config{MemBytes: 1 << 20, DisableInterrupts: true})
	if h, ms, inv, fl := off.ICacheStats(); h|ms|inv|fl != 0 {
		t.Errorf("disabled cache reported stats %d %d %d %d", h, ms, inv, fl)
	}
	tel2 := obs.New()
	off.PublishTelemetry(tel2)
	buf.Reset()
	tel2.Metrics.WritePrometheus(&buf)
	if strings.Contains(buf.String(), "fm_icache") {
		t.Error("disabled cache still publishes fm_icache_* metrics")
	}
}
