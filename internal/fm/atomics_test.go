package fm

import (
	"testing"

	"repro/internal/fullsys"
	"repro/internal/isa"
	"repro/internal/trace"
)

// llscProgram exercises both ll/sc outcomes: a successful increment and a
// failure after an intervening store changes the linked word.
const llscProgram = `
	movi r7, 0x5000
	movi r0, 5
	stw  r0, [r7]
	ll   r1, [r7]      ; link (0x5000, 5)
	addi r1, 1
	sc   r1, [r7]      ; succeeds: mem <- 6, r1 <- 1
	ldw  r2, [r7]      ; r2 = 6
	ll   r3, [r7]      ; link (0x5000, 6)
	movi r4, 9
	stw  r4, [r7]      ; the linked value changes
	sc   r3, [r7]      ; fails: r3 <- 0, mem stays 9
	halt
`

func TestLLSCOutcomes(t *testing.T) {
	m, _ := run(t, llscProgram, 100)
	if m.GPR[1] != 1 {
		t.Errorf("successful sc: r1 = %d, want 1", m.GPR[1])
	}
	if m.GPR[2] != 6 {
		t.Errorf("sc'd word reads back %d, want 6", m.GPR[2])
	}
	if m.GPR[3] != 0 {
		t.Errorf("sc after intervening store: r3 = %d, want 0", m.GPR[3])
	}
	if v := m.Mem.Read(0x5000, 4); v != 9 {
		t.Errorf("failed sc must not store: mem = %d, want 9", v)
	}
}

// TestLLSCRollbackReplay rolls the model back into the middle of the ll/sc
// sequences (between link and store-conditional, and before the link) under
// both rollback engines: the re-executed sequence must reproduce the
// reference trace exactly, because the link register lives in Scalars and
// the journal restores the linked word in memory.
func TestLLSCRollbackReplay(t *testing.T) {
	prog := isa.MustAssemble(llscProgram, 0x1000)

	ref := New(Config{MemBytes: 1 << 20, DisableInterrupts: true})
	ref.LoadProgram(prog)
	var want []trace.Entry
	for i := 0; i < 100; i++ {
		e, ok := ref.Step()
		if !ok {
			break
		}
		want = append(want, e)
	}

	for _, mode := range []struct {
		name string
		cfg  Config
	}{
		{"journal", Config{MemBytes: 1 << 20, DisableInterrupts: true}},
		{"checkpoint", Config{MemBytes: 1 << 20, DisableInterrupts: true,
			Rollback: RollbackCheckpoint, CheckpointInterval: 4}},
	} {
		// Roll back to: between ll and sc (4), the ll itself (3), the
		// successful sc (5), and between the second ll and the breaking
		// store (8).
		for _, target := range []uint64{3, 4, 5, 8} {
			m := New(mode.cfg)
			m.LoadProgram(prog)
			// Run past both sc's, then rewind.
			for m.IN() < 11 {
				if _, ok := m.Step(); !ok {
					t.Fatalf("%s: stalled at IN %d", mode.name, m.IN())
				}
			}
			if err := m.SetPC(target, want[target].PC); err != nil {
				t.Fatalf("%s: SetPC(%d): %v", mode.name, target, err)
			}
			for i := target; ; i++ {
				e, ok := m.Step()
				if !ok {
					if m.Fatal() != nil {
						t.Fatalf("%s target %d: fatal: %v", mode.name, target, m.Fatal())
					}
					break
				}
				if !entriesEqual(e, want[i]) {
					t.Fatalf("%s target %d: entry %d differs after rollback:\n got %+v\nwant %+v",
						mode.name, target, i, e, want[i])
				}
			}
			if m.Scalars != ref.Scalars {
				t.Fatalf("%s target %d: final scalars differ", mode.name, target)
			}
			if v := m.Mem.Read(0x5000, 4); v != 9 {
				t.Fatalf("%s target %d: final mem = %d, want 9", mode.name, target, v)
			}
		}
	}
}

// TestLLSCCrossCoreStoreBreaksLink interleaves two functional models over
// one shared physical memory: a store by core 1 between core 0's ll and sc
// must fail core 0's sc. Also checks MOVRC from CRCpuID reads each core's
// own id.
func TestLLSCCrossCoreStoreBreaksLink(t *testing.T) {
	shared := fullsys.NewMemory(1 << 20)
	coh := NewCoherence()
	mk := func(id int) *Model {
		return New(Config{SharedMem: shared, Coherence: coh, CoreID: id,
			DisableInterrupts: true, ICacheEntries: 64})
	}
	m0, m1 := mk(0), mk(1)
	m0.LoadProgram(isa.MustAssemble(`
		movi  r7, 0x5000
		ll    r1, [r7]
		movi  r2, 1
		sc    r2, [r7]     ; core 1 stored in between: must fail
		movrc r3, cr8
		halt
	`, 0x1000))
	m1.LoadProgram(isa.MustAssemble(`
		movi  r7, 0x5000
		movi  r0, 123
		stw   r0, [r7]
		movrc r3, cr8
		halt
	`, 0x2000))

	step := func(m *Model, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, ok := m.Step(); !ok {
				t.Fatalf("unexpected stop at IN %d: %v", m.IN(), m.Fatal())
			}
		}
	}
	step(m0, 2) // movi + ll: core 0 holds the link
	for !m1.Halted() {
		if _, ok := m1.Step(); !ok {
			t.Fatalf("core 1: %v", m1.Fatal())
		}
	}
	step(m0, 4) // movi + sc + movrc + halt

	if m0.GPR[2] != 0 {
		t.Errorf("core 0 sc after core 1's store: r2 = %d, want 0", m0.GPR[2])
	}
	if v := shared.Read(0x5000, 4); v != 123 {
		t.Errorf("shared word = %d, want 123 (core 1's store)", v)
	}
	if m0.GPR[3] != 0 || m1.GPR[3] != 1 {
		t.Errorf("cr8 cpuid reads: core0=%d core1=%d, want 0 and 1", m0.GPR[3], m1.GPR[3])
	}
}

// TestICacheSMCOverAtomic patches the displacement bytes of a cached sc
// instruction between loop iterations: the predecode cache must invalidate
// the atomic site, so the patched sc targets the new address (and fails,
// since the link names the old one).
func TestICacheSMCOverAtomic(t *testing.T) {
	m := icachePair(t, `
		movi r6, 0
		movi r7, 0x5000
		movi r0, 0xAA
		stw  r0, [r7]
	loop:
		ll   r1, [r7]
		addi r1, 1
	target:
		sc   r1, [r7]      ; second pass: disp patched to 4 -> link mismatch
		add  r5, r1        ; accumulate success flags
		addi r6, 1
		cmpi r6, 2
		jl   patch
		halt
	patch:
		movi r0, target
		movi r1, 4
		sth  r1, [r0+2]    ; FmtRM displacement lives at bytes 2..3
		jmp  loop
	`, 0x1000, 200)
	if m.GPR[5] != 1 {
		t.Errorf("success-flag sum = %d, want 1 (second sc must miss the link)", m.GPR[5])
	}
	if v := m.Mem.Read(0x5004, 4); v != 0 {
		t.Errorf("patched sc stored despite broken link: mem[0x5004] = %#x", v)
	}
	_, _, invalidations, _ := m.ICacheStats()
	if invalidations == 0 {
		t.Error("store over the sc site caused no predecode invalidation")
	}
}
