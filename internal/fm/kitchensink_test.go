package fm

import (
	"testing"

	"repro/internal/isa"
)

// TestEveryOpcodeExecutes runs a program that touches every FISA opcode at
// least once, with checked results — interpreter coverage in one sweep.
func TestEveryOpcodeExecutes(t *testing.T) {
	m, entries := runAt(t, `
		.org 0
		.space 256
		.org 0x400
	anyhandler:                ; generic: fix div by zero and fp error
		movi r1, 2
		iret
		.org 0x440
	syshandler:
		movi r15, 0x51          ; syscall marker
		iret
		.org 0x480
	breakhandler:
		movi r15, 0x52
		iret
		.org 0x1000
	entry:
		; install handlers
		movi r8, anyhandler
		movi r9, 8             ; div zero
		stw  r8, [r9]
		movi r9, 32            ; fp error
		stw  r8, [r9]
		movi r8, syshandler
		movi r9, 20
		stw  r8, [r9]
		movi r8, breakhandler
		movi r9, 24
		stw  r8, [r9]
		movi sp, 0x9000

		; --- ALU group ---
		movi  r0, 6
		movi8 r1, -3            ; small-immediate form
		add   r0, r1            ; 3
		addi  r0, 7             ; 10
		sub   r0, r1            ; 13
		subi  r0, 3             ; 10
		and   r0, r0
		andi  r0, 0xFF
		or    r0, r1
		ori   r0, 0x10
		xor   r0, r1
		xori  r0, 0x3
		shl   r0, r0
		shli  r0, 1
		shr   r0, r1
		shri  r0, 1
		sar   r0, r1
		sari  r0, 1
		mov   r2, r3            ; plain register move
		movi  r2, 3
		mul   r2, r2            ; 9
		movi  r3, 27
		movi  r4, 4
		div   r3, r4            ; 6
		movi  r3, 27
		mod   r3, r4            ; 3
		neg   r3                ; -3
		not   r3                ; 2
		inc   r3                ; 3
		dec   r3                ; 2
		cmp   r3, r4
		cmpi  r3, 2
		test  r3, r4
		lea   r5, [sp-16]
		cpuid r6
		pause

		; --- memory group ---
		movi  r7, 0x5000
		stw   r2, [r7]
		ldw   r8, [r7]
		sth   r2, [r7+8]
		ldh   r8, [r7+8]
		stb   r2, [r7+12]
		ldb   r8, [r7+12]
		push  r2
		pop   r9

		; --- atomics: ll/sc success, then failure after an intervening store ---
		ll    r9, [r7]          ; link the word stw'd above (9)
		inc   r9
		sc    r9, [r7]          ; link intact: mem <- 10, r9 <- 1
		ll    r9, [r7+32]       ; link a zero word
		movi  r8, 0x77
		stw   r8, [r7+32]       ; the value changes: link broken
		sc    r9, [r7+32]       ; fails: memory keeps 0x77, r9 <- 0

		; --- branches ---
		cmpi  r2, 9
		jz    t1
		nop
	t1:	jnz   t2
		nop
	t2:	cmpi  r2, 100
		jl    t3
		nop
	t3:	jge   t4
	t4:	cmpi  r2, 1
		jg    t5
		nop
	t5:	jle   t6
		jmp   t6
	t6:	movi  r10, 0xFFFFFFFF
		addi  r10, 1
		jc    t7
		nop
	t7:	jnc   t8
	t8:	movi  r10, t9
		jmpr  r10
		nop
	t9:	call  sub1
		movi  r10, sub2
		callr r10
		jmpf  t10
		nop
	t10:	callf sub1
		movi  r2, 3
	lp:	loop  lp               ; spins R2 down to 0

		; --- string group ---
		movi  r0, strsrc
		movi  r1, 0x5100
		movi  r2, 4
		rep movs
		movs                   ; single iteration
		movi  r1, 0x5200
		movi  r3, 'q'
		stos
		movi  r0, strsrc
		lods
		movi  r0, strsrc
		movi  r1, strsrc
		cmps
		movi  r1, strsrc
		movi  r3, 'a'
		scas

		; --- FP group ---
		fldi  f0, 2.0
		fldi  f1, 8.0
		fadd  f0, f1           ; 10
		fsub  f1, f0           ; -2
		fmul  f0, f0           ; 100
		fldi  f2, 4.0
		fdiv  f0, f2           ; 25
		fsqrt f3, f0           ; 5
		fabs  f4, f1           ; 2
		fneg  f5, f4           ; -2
		fmov  f6, f3
		fcmp  f3, f4
		fld   f7, [r7]
		fst   f7, [r7+16]
		movi  r11, 9
		i2f   f7, r11
		f2i   r12, f3          ; 5
		; FP divide by zero -> handler patches r1 (which fdiv ignores),
		; then retry succeeds because we overwrite the divisor register.
		fldi  f2, 1.0
		fdiv  f0, f2

		; --- system group ---
		lock inc r6
		movi  r8, 1
		movcr r8, cr1
		movrc r8, cr1
		movi  r10, 7
		movi  r11, 0x7003
		tlbwr r10, r11
		tlbfl
		movi  r8, 0
		movcr r8, cr1
		in    r8, 0x11
		movi  r8, 'K'
		out   r8, 0x10
		syscall
		break
		; div by zero -> handler sets r1=2, retry 10/2
		movi  r0, 10
		movi  r1, 0
		div   r0, r1
		sti
		cli
		halt
	sub1:	ret
	sub2:	ret
	strsrc:	.ascii "abcd"
	.entry entry
	`, 0, 5000)

	if m.Fatal() != nil {
		t.Fatalf("fatal: %v", m.Fatal())
	}
	if !m.Halted() {
		t.Fatal("did not halt")
	}
	if m.GPR[0] != 5 {
		t.Errorf("div-retry result R0 = %d, want 5", m.GPR[0])
	}
	if m.GPR[12] != 5 {
		t.Errorf("f2i(sqrt(25)) = %d, want 5", m.GPR[12])
	}
	if m.FPR[3] != 5.0 || m.FPR[4] != 2.0 || m.FPR[5] != -2.0 {
		t.Errorf("FP chain: f3=%g f4=%g f5=%g", m.FPR[3], m.FPR[4], m.FPR[5])
	}
	if m.GPR[6] != 0x46495341+1 {
		t.Errorf("cpuid+lock-inc = %#x", m.GPR[6])
	}
	if v := m.Mem.Read(0x5000, 4); v != 10 {
		t.Errorf("sc success: mem[0x5000] = %d, want 10", v)
	}
	if v := m.Mem.Read(0x5020, 4); v != 0x77 {
		t.Errorf("sc failure must not store: mem[0x5020] = %#x, want 0x77", v)
	}
	if m.GPR[15] != 0x52 {
		t.Errorf("syscall/break handlers did not run: r15=%#x", m.GPR[15])
	}
	// Every defined opcode must appear in the trace.
	seen := map[isa.Op]bool{}
	for _, e := range entries {
		seen[e.Op] = true
	}
	for _, op := range isa.Opcodes() {
		if op == isa.OpIret {
			// IRET executes (handlers return) — confirm explicitly.
			if !seen[op] {
				t.Error("iret never executed despite handlers")
			}
			continue
		}
		if !seen[op] {
			t.Errorf("opcode %s never executed", isa.Lookup(op).Name)
		}
	}
	_ = entries
}
