package experiments

import (
	"strings"
	"testing"
)

func TestTable2Static(t *testing.T) {
	out := Table2()
	for _, want := range []string{"Issue Width", "51.2%", "32.7"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 output missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyticalStatic(t *testing.T) {
	out := Analytical()
	for _, want := range []string{"8.70", "6.80", "1.76", "2.13"} {
		if !strings.Contains(out, want) {
			t.Errorf("analytical output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure6Small(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled run")
	}
	sampler, out, err := Figure6(500, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(sampler.Samples) < 3 {
		t.Fatalf("only %d samples", len(sampler.Samples))
	}
	if !strings.Contains(out, "drain%") {
		t.Error("render missing columns")
	}
}

func TestTable1Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("sixteen functional runs")
	}
	out, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"252.eon", "Sweep3D", "MySQL", "aggregate"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}
