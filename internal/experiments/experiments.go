// Package experiments regenerates every table and figure of the paper's
// evaluation (the per-experiment index in DESIGN.md). cmd/fastbench and the
// top-level benchmarks both drive these functions, so the numbers printed
// by `go test -bench` and by the CLI are the same.
//
// Every simulator run goes through the internal/sim engine registry, and
// every multi-point experiment is a declarative sim.Sweep executed by a
// sim.Fleet — Figure 4's 51 coupled simulations fan out over a worker pool
// and still aggregate in spec order, so the rendered tables are
// byte-identical at any worker count.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/analytic"
	"repro/internal/baseline"
	"repro/internal/fm"
	"repro/internal/fpga"
	"repro/internal/hostlink"
	"repro/internal/isa"
	"repro/internal/microcode"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tm"
	"repro/internal/workload"
)

// Runner carries the cross-cutting execution state of an experiment pass: a
// cancellation context (ctrl-C in cmd/fastbench lands here) and the fleet —
// worker width, telemetry, progress callback — every sweep fans out over.
// The zero value runs to completion on GOMAXPROCS workers with no
// telemetry; the package-level experiment functions are thin wrappers over
// it.
type Runner struct {
	Ctx   context.Context
	Fleet sim.Fleet

	// Overlay is merged (sim.Merge, non-zero fields win) into every point
	// an experiment runs — single runs and sweeps alike. It carries
	// host-side knobs that must not change any printed number, like
	// Params.TraceChunk; the experiment's own fields always take
	// precedence over the zero-value semantics of Merge, so an overlay
	// cannot silently alter an experiment's axes.
	Overlay sim.Params
}

func (r Runner) ctx() context.Context {
	if r.Ctx == nil {
		return context.Background()
	}
	return r.Ctx
}

// run executes one engine point under the runner's context and telemetry.
func (r Runner) run(engine string, p sim.Params) (sim.Result, error) {
	p = sim.Merge(r.Overlay, p)
	if p.Telemetry == nil {
		p.Telemetry = r.Fleet.Telemetry
	}
	return sim.RunContext(r.ctx(), engine, p)
}

// sweep executes a sweep through the runner's fleet.
func (r Runner) sweep(s sim.Sweep) []sim.PointResult {
	s.Base = sim.Merge(r.Overlay, s.Base)
	return r.Fleet.RunContext(r.ctx(), s.Points())
}

// InstCap bounds committed instructions per coupled run so a full harness
// pass stays interactive. The shapes (who wins, by what factor) are stable
// well below the cap.
const InstCap = 250_000

// FMInstCap bounds functional-model-only runs (Table 1), which are cheap.
const FMInstCap = 400_000

// runFM executes a workload on the functional model alone and returns it.
// (Table 1 measures the microcode layer, not a simulator, so it is the one
// run shape that does not go through the engine registry.)
func runFM(spec workload.Spec, maxInst uint64) (*fm.Model, *workload.Boot, error) {
	boot, err := spec.Build()
	if err != nil {
		return nil, nil, err
	}
	m := fm.New(fm.Config{Devices: boot.Devices()})
	m.LoadProgram(boot.Kernel)
	idle := 0
	for m.IN() < maxInst {
		if _, ok := m.Step(); ok {
			idle = 0
			continue
		}
		if m.Fatal() != nil {
			return nil, nil, fmt.Errorf("%s: %w", spec.Name, m.Fatal())
		}
		if m.Halted() && m.Flags&isa.FlagI == 0 {
			break
		}
		m.AdvanceIdle(100)
		if idle++; idle > 1_000_000 {
			break
		}
	}
	return m, boot, nil
}

// fastParams is the shared parameter shape of a capped FAST run. Ablation
// knobs overlay named Params fields via sim.Merge — Params.Mutate is
// deprecated for sweep axes and no experiment uses it anymore.
func fastParams(workloadName, predictor string) sim.Params {
	return sim.Params{
		Workload:        workloadName,
		Predictor:       predictor,
		MaxInstructions: InstCap,
	}
}

// Table1 reproduces "Fraction of Dynamic Instructions Translated to µOps".
func Table1() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — microcode coverage and µop expansion\n")
	fmt.Fprintf(&b, "%-14s %10s %10s %12s %12s\n",
		"App", "Fraction", "(paper)", "µOps/inst", "(paper)")
	var agg microcode.CoverageStats
	for _, spec := range workload.All() {
		m, _, err := runFM(spec, FMInstCap)
		if err != nil {
			return "", err
		}
		cov := m.Coverage
		agg.Merge(cov)
		fmt.Fprintf(&b, "%-14s %9.2f%% %9.2f%% %12.2f %12.2f\n",
			spec.Name, 100*cov.Fraction(), 100*spec.PaperFraction,
			cov.UopsPerInst(), spec.PaperUopsPerInst)
	}
	fmt.Fprintf(&b, "%-14s %9.2f%% %10s %12.2f\n", "aggregate",
		100*agg.Fraction(), "", agg.UopsPerInst())
	return b.String(), nil
}

// Figure4Row is one bar group of the simulator-performance figure.
type Figure4Row struct {
	Name                     string
	Gshare, Fixed97, Perfect float64 // MIPS
	PaperGshare              float64
	GshareAccuracy           float64
	IPC                      float64
}

// figure4Predictors are the three predictor configurations of the figure,
// in column order.
var figure4Predictors = []string{"gshare", "97%", "perfect"}

// Figure4Sweep is the declarative spec of the figure: every workload
// (Linux and WindowsXP first, as the paper orders them) × the FAST engine
// × the three predictor configurations.
func Figure4Sweep() sim.Sweep {
	all := workload.All()
	names := make([]string, 0, len(all)+1)
	names = append(names, all[0].Name, "WindowsXP")
	for _, s := range all[1:] {
		names = append(names, s.Name)
	}
	variants := make([]sim.Params, len(figure4Predictors))
	for i, pred := range figure4Predictors {
		variants[i] = sim.Params{Predictor: pred}
	}
	return sim.Sweep{
		Workloads: names,
		Engines:   []string{"fast"},
		Variants:  variants,
		Base:      sim.Params{MaxInstructions: InstCap},
	}
}

// Figure4 reproduces simulator performance under the three predictor
// configurations (gshare, 97%, perfect), fanning the sweep out over
// GOMAXPROCS fleet workers.
func Figure4() ([]Figure4Row, string, error) { return Figure4Workers(0) }

// Figure4Workers is Figure4 with an explicit fleet width (1 = the
// sequential path; output is byte-identical at any width).
func Figure4Workers(workers int) ([]Figure4Row, string, error) {
	return Runner{Fleet: sim.Fleet{Workers: workers}}.Figure4()
}

// Figure4 runs the figure's sweep through the runner's fleet.
func (r Runner) Figure4() ([]Figure4Row, string, error) {
	sweep := Figure4Sweep()
	results := r.sweep(sweep)
	if err := sim.FirstErr(results); err != nil {
		return nil, "", err
	}
	nPred := len(figure4Predictors)
	var rows []Figure4Row
	for i := 0; i < len(results); i += nPred {
		g := results[i].Result // the gshare point leads each group
		spec, _ := workload.ByName(g.Workload)
		rows = append(rows, Figure4Row{
			Name:           g.Workload,
			PaperGshare:    spec.PaperGshareMIPS,
			Gshare:         g.TargetMIPS,
			GshareAccuracy: g.BPAccuracy,
			IPC:            g.IPC,
			Fixed97:        results[i+1].Result.TargetMIPS,
			Perfect:        results[i+2].Result.TargetMIPS,
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — simulator performance (MIPS)\n")
	fmt.Fprintf(&b, "%-14s %8s %8s %8s %10s %8s\n",
		"App", "gshare", "BP 97%", "BP 100%", "(paper g)", "IPC")
	var sum float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %8.2f %8.2f %8.2f %10.2f %8.3f\n",
			r.Name, r.Gshare, r.Fixed97, r.Perfect, r.PaperGshare, r.IPC)
		sum += r.Gshare
	}
	fmt.Fprintf(&b, "%-14s %8.2f %26s\n", "amean", sum/float64(len(rows)),
		"(paper average: 1.2 MIPS)")
	return rows, b.String(), nil
}

// Figure5 reproduces branch-prediction accuracy (all branches) per
// workload under the default gshare predictor.
func Figure5(rows []Figure4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — gshare branch prediction accuracy (incl. all branches)\n")
	fmt.Fprintf(&b, "%-14s %10s %10s\n", "App", "accuracy", "(paper~)")
	var sum float64
	n := 0
	for _, r := range rows {
		paper := ""
		if s, ok := workload.ByName(r.Name); ok && s.PaperGshareAcc > 0 {
			paper = fmt.Sprintf("%9.1f%%", 100*s.PaperGshareAcc)
		}
		fmt.Fprintf(&b, "%-14s %9.2f%% %10s\n", r.Name, 100*r.GshareAccuracy, paper)
		sum += r.GshareAccuracy
		n++
	}
	fmt.Fprintf(&b, "%-14s %9.2f%%\n", "amean", 100*sum/float64(n))
	return b.String()
}

// Figure6 reproduces the statistics trace over the Linux boot: iCache hit
// rate, BP accuracy and pipe-drain percentage sampled every interval basic
// blocks. The sampler attaches between Configure and Run — the reason the
// engine interface splits them.
func Figure6(interval uint64, maxInst uint64) (*stats.Sampler, string, error) {
	return Runner{}.Figure6(interval, maxInst)
}

// Figure6 runs the statistics trace under the runner's context.
func (r Runner) Figure6(interval uint64, maxInst uint64) (*stats.Sampler, string, error) {
	eng, err := sim.New("fast", sim.Params{
		Workload:        "Linux-2.4",
		MaxInstructions: maxInst,
		Telemetry:       r.Fleet.Telemetry,
	})
	if err != nil {
		return nil, "", err
	}
	t := eng.(sim.Coupled).TimingModel()
	sampler := stats.NewSampler(t, interval)
	t.Probe = func(uint64, int) { sampler.Poll() }
	if _, err := eng.RunContext(r.ctx()); err != nil {
		return nil, "", err
	}
	out := "Figure 6 — statistics trace, Linux boot (per-window metrics)\n" + sampler.Render()
	return sampler, out, nil
}

// Table2 reproduces the FPGA-area sweep over issue widths.
func Table2() string {
	var b strings.Builder
	dev := fpga.Virtex4LX200
	fmt.Fprintf(&b, "Table 2 — fraction of a Virtex-4 LX200 consumed by the timing model\n")
	fmt.Fprintf(&b, "%-12s %8s %8s %8s %8s   (paper: 32.84/32.76/32.81/32.87 logic; 50.0/51.2 BRAM)\n",
		"Issue Width", "1", "2", "4", "8")
	logic, brams := "User Logic ", "Block RAMs "
	for _, w := range []int{1, 2, 4, 8} {
		a := tm.DefaultConfig().WithIssueWidth(w).Area()
		logic += fmt.Sprintf(" %7.2f%%", 100*dev.LogicFraction(a))
		brams += fmt.Sprintf(" %7.1f%%", 100*dev.BRAMFraction(a))
	}
	fmt.Fprintf(&b, "%s\n%s\n", logic, brams)
	return b.String()
}

// table3Engines are the runnable rows of the simulator comparison, with
// the display labels the paper's table uses.
var table3Engines = []struct{ engine, label, note string }{
	{"monolithic", "monolithic (sim-outorder-class)", "(ours, measured)"},
	{"gems", "monolithic (GEMS-class)", "(ours, measured)"},
	{"lockstep", "lockstep(F=1)", "(ours, measured)"},
	{"fast", "FAST", "(ours, measured; paper: 1.2 MIPS avg)"},
}

// Table3 reproduces the simulator comparison: published rows, then every
// runnable engine on the Linux boot — one sweep across the registry.
func Table3() (string, error) { return Runner{}.Table3() }

// Table3 runs the comparison through the runner's fleet.
func (r Runner) Table3() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3 — software simulator performance (Linux boot class workload)\n")
	fmt.Fprintf(&b, "%-28s %10s %6s\n", "Simulator", "speed", "OS")
	for _, r := range baseline.PublishedRows() {
		os := "N"
		if r.FullSystem {
			os = "Y"
		}
		fmt.Fprintf(&b, "%-28s %7.0fKIPS %6s   (published)\n", r.Simulator, r.KIPS, os)
	}
	engines := make([]string, len(table3Engines))
	for i, row := range table3Engines {
		engines[i] = row.engine
	}
	results := r.sweep(sim.Sweep{
		Workloads: []string{"Linux-2.4"},
		Engines:   engines,
		Base:      sim.Params{MaxInstructions: InstCap},
	})
	if err := sim.FirstErr(results); err != nil {
		return "", err
	}
	for i, row := range table3Engines {
		fmt.Fprintf(&b, "%-28s %7.0fKIPS %6s   %s\n",
			row.label, results[i].Result.KIPS, "Y", row.note)
	}
	return b.String(), nil
}

// Analytical reproduces the §3.1 worked examples.
func Analytical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§3.1 — analytical model of parallel simulator performance\n")
	for _, ex := range analytic.PaperExamples() {
		fmt.Fprintf(&b, "%-45s %6.2f MIPS (paper: %.1f)\n", ex.Name, ex.Model.MIPS(), ex.PaperMIPS)
	}
	return b.String()
}

// Bottleneck reproduces the §4.5 analysis: the functional-model config
// ladder, the measured DRC latencies, the 2-basic-block streaming
// arithmetic and the coherent-HT projection.
func Bottleneck() (string, error) { return Runner{}.Bottleneck() }

// Bottleneck runs the analysis through the runner's fleet.
func (r Runner) Bottleneck() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "§4.5 — bottleneck analysis\n\n")
	fmt.Fprintf(&b, "Functional model configuration ladder (Linux boot class):\n")
	// The ladder's top rows are the paper's measured QEMU-variant speeds
	// (our model constants embed the tracing-rig row: 87 ns/inst); the
	// rollback rows are derived from the model: 87 ns/inst plus F×(Lrt+α)
	// per-instruction rollback overhead at the given accuracy.
	rollbackMIPS := func(acc float64) float64 {
		f := (1 - acc) * 0.20 * 2 // §3.1's F with a 20% branch ratio
		perInst := 87 + f*(469+1000)
		return 1e3 / perInst
	}
	ladder := []struct {
		name  string
		mips  float64
		paper float64
	}{
		{"unmodified QEMU", 137, 137},
		{"optimizations off", 45.8, 45.8},
		{"+ tracing & checkpointing (test rig)", 1e3 / 87, 11.5},
		{"+ 97% BP rollbacks", rollbackMIPS(0.97), 8.6},
		{"+ 95% BP rollbacks", rollbackMIPS(0.95), 5.9},
		{"+ software 2-bit BP (94.8%)", rollbackMIPS(0.948), 5.1},
		{"immediate-commit FPGA dummy TM", 5.4, 5.4},
		{"real Fetch, perfect BP", 4.6, 4.6},
	}
	for _, l := range ladder {
		fmt.Fprintf(&b, "  %-38s %6.1f MIPS (paper: %.1f)\n", l.name, l.mips, l.paper)
	}

	fmt.Fprintf(&b, "\nMeasured DRC HyperTransport latencies:\n")
	drc, pin := hostlink.DRC(), hostlink.DRCPinRegisters()
	fmt.Fprintf(&b, "  user-logic read %0.0fns write %0.0fns burst %0.1fns/word\n",
		drc.ReadNanos, drc.WriteNanos, drc.BurstWriteNanosPerWord)
	fmt.Fprintf(&b, "  pin-register read %0.0fns write %0.0fns burst %0.1fns/word\n",
		pin.ReadNanos, pin.WriteNanos, pin.BurstWriteNanosPerWord)

	l := hostlink.New(hostlink.DRC())
	per2BB := 10*87.0 + l.Poll(1) + l.BurstWrite(40)
	fmt.Fprintf(&b, "\nPer-2-basic-block streaming cost: 10×87ns + 469ns + 800ns = %.0fns\n", per2BB)
	fmt.Fprintf(&b, "  => %.0fns/inst = %.1f MIPS streaming bound (paper: 214ns, 4.7 MIPS; measured 4.6)\n",
		per2BB/10, 1e3/(per2BB/10))

	// Coherent-HT projection: run the same workload under both links.
	linkSweep := r.sweep(sim.Sweep{
		Workloads: []string{"Linux-2.4"},
		Variants:  []sim.Params{{Link: "drc"}, {Link: "coherent"}},
		Base:      sim.Params{Predictor: "95%", MaxInstructions: InstCap},
	})
	if err := sim.FirstErr(linkSweep); err != nil {
		return "", err
	}
	perInst := func(r sim.Result) float64 {
		return r.LinkStats.Nanos / float64(r.Instructions+r.WrongPath)
	}
	fmt.Fprintf(&b, "\nCoherent-HT projection (95%% BP): link cost %.1f -> %.1f ns/inst "+
		"(paper: ~127 -> ~1.2 ns/inst; FM-side bound then ~5.9 MIPS)\n",
		perInst(linkSweep[0].Result), perInst(linkSweep[1].Result))
	return b.String(), nil
}

// SMP reproduces the multicore extension study on the default runner.
func SMP() (string, error) { return Runner{}.SMP() }

// SMP is the Table-3-style multicore study: the smp-lock workload (ll/sc
// spinlock contention over shared counters) swept over a core-count ×
// interconnect-latency grid on the serial fast engine — the one engine that
// models the coherent interconnect. The single-core row is the contention-
// free baseline; the grid shows coherence traffic and the latency it costs
// growing with both axes.
func (r Runner) SMP() (string, error) {
	var variants []sim.Params
	for _, cores := range []int{1, 2, 4} {
		if cores == 1 {
			variants = append(variants, sim.Params{Cores: 1})
			continue
		}
		for _, hop := range []int{2, 4, 8} {
			variants = append(variants, sim.Params{Cores: cores, InterconnectLatency: hop})
		}
	}
	results := r.sweep(sim.Sweep{
		Workloads: []string{workload.SMPName},
		Variants:  variants,
		Base:      sim.Params{MaxInstructions: InstCap},
	})
	if err := sim.FirstErr(results); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Multicore study — %s (ll/sc spinlock) on the fast engine\n", workload.SMPName)
	fmt.Fprintf(&b, "%5s %4s %10s %10s %6s %10s %10s %10s\n",
		"cores", "hop", "inst", "cycles", "IPC", "transfers", "invals", "hops")
	for _, pr := range results {
		res := pr.Result
		p := pr.Point.Params
		cores, hop := p.Cores, p.InterconnectLatency
		if cores == 1 {
			fmt.Fprintf(&b, "%5d %4s %10d %10d %6.3f %10s %10s %10s\n",
				cores, "-", res.Instructions, res.TargetCycles, res.IPC, "-", "-", "-")
			continue
		}
		fmt.Fprintf(&b, "%5d %4d %10d %10d %6.3f %10d %10d %10d\n",
			cores, hop, res.Instructions, res.TargetCycles, res.IPC,
			res.CoherenceTransfers, res.CoherenceInvalidations, res.CoherenceHops)
	}
	return b.String(), nil
}

// Servers runs the server-class workload study with package defaults.
func Servers() (string, error) { return Runner{}.Servers() }

// Servers is the toyFS/server-workload study: the three server-class
// workloads (shell-fork, logwrite, nicserv) swept over a disk-latency
// grid on the fast engine. Every workload runs to completion (each
// powers off well under InstCap), so the instruction count itself moves
// with the disk knob — the FS kernel polls the disk status port, and a
// slower disk is paid for in polled instructions as well as in target
// cycles. Only deterministic fields are printed, so the table is
// byte-identical at any fleet width.
func (r Runner) Servers() (string, error) {
	lats := []int{50, 200, 1000}
	var variants []sim.Params
	for _, lat := range lats {
		variants = append(variants, sim.Params{DiskLatency: lat})
	}
	results := r.sweep(sim.Sweep{
		Workloads: []string{workload.ShellForkName, workload.LogWriteName, workload.NICServName},
		Variants:  variants,
		Base:      sim.Params{MaxInstructions: InstCap},
	})
	if err := sim.FirstErr(results); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Server workloads — toyFS + process syscalls on the fast engine\n")
	fmt.Fprintf(&b, "%-10s %8s %10s %10s %6s\n",
		"workload", "disklat", "inst", "cycles", "IPC")
	for _, pr := range results {
		res := pr.Result
		p := pr.Point.Params
		fmt.Fprintf(&b, "%-10s %8d %10d %10d %6.3f\n",
			p.Workload, p.DiskLatency, res.Instructions, res.TargetCycles, res.IPC)
	}
	return b.String(), nil
}

// Ablations runs A1-A8 of DESIGN.md on a fixed workload.
func Ablations() (string, error) { return Runner{}.Ablations() }

// Ablations runs A1-A8 under the runner's context.
func (r Runner) Ablations() (string, error) {
	var b strings.Builder
	const app = "176.gcc"
	fmt.Fprintf(&b, "Ablations (%s, gshare)\n", app)

	// A1: parallel (latency-tolerant) vs lockstep coupling.
	fastRes, err := r.run("fast", fastParams(app, "gshare"))
	if err != nil {
		return "", err
	}
	lock, err := r.run("lockstep", sim.Params{Workload: app, MaxInstructions: InstCap})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "  A1 coupling: FAST %.2f MIPS vs lockstep %.2f MIPS (%.1fx)\n",
		fastRes.TargetMIPS, lock.TargetMIPS, fastRes.TargetMIPS/lock.TargetMIPS)

	// A2: polling frequency.
	perBB, err := r.run("fast", sim.Merge(fastParams(app, "gshare"),
		sim.Params{PollEveryBBs: 1}))
	if err != nil {
		return "", err
	}
	resteer, err := r.run("fast", sim.Merge(fastParams(app, "gshare"),
		sim.Params{PollEveryBBs: sim.PollOnResteer}))
	if err != nil {
		return "", err
	}
	linkPer := func(r sim.Result) float64 {
		return r.LinkStats.Nanos / float64(r.Instructions+r.WrongPath)
	}
	fmt.Fprintf(&b, "  A2 polling: per-BB %d reads, per-2-BB %d reads, per-resteer %d reads "+
		"(link %.0f / %.0f / %.0f ns/inst)\n",
		perBB.LinkStats.Reads, fastRes.LinkStats.Reads, resteer.LinkStats.Reads,
		linkPer(perBB), linkPer(fastRes), linkPer(resteer))

	// A3: branch-predictor-predictor.
	bpp, err := r.run("fast", sim.Merge(fastParams(app, "gshare"),
		sim.Params{BPP: true}))
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "  A3 BPP: off %.2fms FM-side, on %.2fms\n",
		fastRes.FMNanos/1e6, bpp.FMNanos/1e6)

	// A4: multi-host-cycle structures (20-ported register file).
	fmt.Fprintf(&b, "  A4 ports: 20-port RF = %d host cycles on a dual-ported BRAM "+
		"(area %v vs %v direct)\n",
		fpga.HostCyclesForPorts(20), fpga.BlockRAM(64*32, 20), fpga.BlockRAM(64*32, 2))

	// A5: trace compression.
	comp := fastRes
	uncomp, err := r.run("fast", sim.Merge(fastParams(app, "gshare"),
		sim.Params{UncompressedTrace: true}))
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "  A5 trace compression: %.2f words/inst compressed vs %.2f uncompressed\n",
		float64(comp.TraceWords)/float64(comp.Instructions+comp.WrongPath),
		float64(uncomp.TraceWords)/float64(uncomp.Instructions+uncomp.WrongPath))

	// A6: blocking vs coherent polling reads.
	coh, err := r.run("fast", sim.Merge(fastParams(app, "gshare"),
		sim.Params{Link: "coherent"}))
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "  A6 link: DRC blocking reads %.0f ns/inst vs coherent HT %.0f ns/inst\n",
		linkPer(fastRes), linkPer(coh))

	// A7: rollback engine — per-instruction undo journal vs the paper's
	// leapfrog checkpoints + replay (§3.2), whose re-execution is the αBA
	// of §3.1. Needs the live functional model, so it uses the two-phase
	// engine API instead of sim.Run.
	cpEng, err := sim.New("fast", sim.Merge(fastParams(app, "gshare"),
		sim.Params{Rollback: "checkpoint", CheckpointInterval: 64}))
	if err != nil {
		return "", err
	}
	cp, err := cpEng.RunContext(r.ctx())
	if err != nil {
		return "", err
	}
	cpFM := cpEng.(sim.Coupled).FunctionalModel()
	fmt.Fprintf(&b, "  A7 rollback: journal FM %.2fms vs leapfrog checkpoints %.2fms "+
		"(%d instructions re-executed across %d rollbacks)\n",
		fastRes.FMNanos/1e6, cp.FMNanos/1e6, cpFM.ReExecuted(), cp.Rollbacks)

	// A8: the §4.1 target limitations fixed — non-blocking caches +
	// resolve-time recovery ("Improving performance requires both improving
	// the target microarchitecture ... and going over each module", §4.5).
	future, err := r.run("fast", sim.Merge(fastParams(app, "gshare"),
		sim.Params{FutureMicroarch: true}))
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "  A8 future µarch: prototype IPC %.3f / %.2f MIPS vs "+
		"non-blocking+fast-recovery IPC %.3f / %.2f MIPS\n",
		fastRes.IPC, fastRes.TargetMIPS, future.IPC, future.TargetMIPS)
	return b.String(), nil
}
