// Package hostlink models the host platform's CPU↔FPGA communication
// channel: the DRC development platform's HyperTransport interface with the
// latencies measured in §4.5, plus the projected cache-coherent
// HyperTransport interface the paper expects future systems to provide.
//
// The link enters the FAST performance model in three ways:
//
//   - the FM streams the instruction trace to the FPGA with burst writes
//     (~20 32-bit words per basic block at 20 ns/word);
//   - the FM polls an FPGA queue for commits and re-steers (1 blocking
//     read per commit poll, 2 per misprediction) at 469 ns per read —
//     "Currently, the reads are blocking, a serious issue that ...
//     transforms what should be a one-way communication ... into a
//     round-trip communication";
//   - the prototype pays this poll every other basic block rather than
//     only on re-steers (§4: "we are paying a round-trip communication
//     cost every two basic blocks rather than twice per mis-predicted
//     branch").
package hostlink

import "repro/internal/obs"

// Config holds link latencies in nanoseconds.
type Config struct {
	Name string

	// ReadNanos is a blocking read from the host CPU to FPGA user logic
	// (the realistic 469 ns figure; reads from registers at the I/O pins
	// take 378 ns).
	ReadNanos float64
	// WriteNanos is a single write (307 ns to user logic, 287 ns to pin
	// registers).
	WriteNanos float64
	// BurstWriteNanosPerWord is the per-word cost of a burst write
	// (20 ns/word to user logic, 13.3 ns/word to pin registers).
	BurstWriteNanosPerWord float64
	// PollIsRoundTrip marks blocking reads: the CPU stalls for the full
	// read latency. The coherent-HT projection clears it.
	PollIsRoundTrip bool
}

// DRC is the measured DRC platform configuration, reads/writes to the
// prototype's own user logic (§4.5).
func DRC() Config {
	return Config{
		Name:                   "DRC HyperTransport (measured)",
		ReadNanos:              469,
		WriteNanos:             307,
		BurstWriteNanosPerWord: 20,
		PollIsRoundTrip:        true,
	}
}

// DRCPinRegisters is the best-case variant: operations against registers
// at the FPGA's I/O pins.
func DRCPinRegisters() Config {
	return Config{
		Name:                   "DRC HyperTransport (pin registers)",
		ReadNanos:              378,
		WriteNanos:             287,
		BurstWriteNanosPerWord: 13.3,
		PollIsRoundTrip:        true,
	}
}

// CoherentHT is §4.5's projection for cache-coherent HyperTransport:
// trace writes buffer in the cache and flow via coherence; polls read a
// shared buffer that hits in cache unless the FPGA wrote (75-100 ns memory
// read), making the poll cost "(75ns * 2) + 19ns ... per 20 * 7
// instructions = 1.2ns/instruction".
func CoherentHT() Config {
	return Config{
		Name:                   "cache-coherent HyperTransport (projected)",
		ReadNanos:              75,
		WriteNanos:             5, // cached write, drained by coherence
		BurstWriteNanosPerWord: 1, // cache-line writes at memory bandwidth
		PollIsRoundTrip:        false,
	}
}

// Stats counts link traffic. The JSON tags are a stable serialization
// schema shared by `fastsim -json` and the obs exporters.
type Stats struct {
	Reads      uint64  `json:"reads"`
	Writes     uint64  `json:"writes"`
	BurstWords uint64  `json:"burst_words"`
	Nanos      float64 `json:"nanos"`
}

// Link accumulates the host-side time spent on the CPU↔FPGA channel.
type Link struct {
	cfg   Config
	stats Stats

	// Per-operation latency histograms (hostlink_transfer_nanos{op=...}).
	// Nil when telemetry is disabled; obs methods are nil-safe, so the
	// disabled hot-path cost is one nil check per transfer.
	readH  *obs.Histogram
	writeH *obs.Histogram
	burstH *obs.Histogram
}

// New builds a link with the given configuration.
func New(cfg Config) *Link { return &Link{cfg: cfg} }

// Attach wires the link's transfer-latency histograms into tel. Call before
// traffic flows; a nil tel leaves the link uninstrumented.
func (l *Link) Attach(tel *obs.Telemetry) {
	if tel == nil {
		return
	}
	l.readH = tel.Histogram(obs.L("hostlink_transfer_nanos", "op", "read"), obs.NanosBuckets)
	l.writeH = tel.Histogram(obs.L("hostlink_transfer_nanos", "op", "write"), obs.NanosBuckets)
	l.burstH = tel.Histogram(obs.L("hostlink_transfer_nanos", "op", "burst_write"), obs.NanosBuckets)
}

// Config returns the link configuration.
func (l *Link) Config() Config { return l.cfg }

// Stats returns accumulated counters.
func (l *Link) Stats() Stats { return l.stats }

// Read models one blocking read; it returns the host nanoseconds consumed.
func (l *Link) Read() float64 {
	l.stats.Reads++
	l.stats.Nanos += l.cfg.ReadNanos
	l.readH.Observe(l.cfg.ReadNanos)
	return l.cfg.ReadNanos
}

// Write models one single-word write.
func (l *Link) Write() float64 {
	l.stats.Writes++
	l.stats.Nanos += l.cfg.WriteNanos
	l.writeH.Observe(l.cfg.WriteNanos)
	return l.cfg.WriteNanos
}

// BurstNanos returns the cost of an n-word burst write without recording
// it. The couplings price each trace entry with BurstNanos as it is
// produced but record one BurstWrite per published chunk: the packed
// trace records stream to the FPGA a chunk at a time, and because the
// burst cost is linear in words, total Nanos is identical to per-entry
// recording — only the transfer count reflects the batching.
func (l *Link) BurstNanos(words int) float64 {
	return float64(words) * l.cfg.BurstWriteNanosPerWord
}

// BurstWrite models an n-word burst write (the trace stream).
func (l *Link) BurstWrite(words int) float64 {
	l.stats.Writes++
	l.stats.BurstWords += uint64(words)
	ns := float64(words) * l.cfg.BurstWriteNanosPerWord
	l.stats.Nanos += ns
	l.burstH.Observe(ns)
	return ns
}

// Poll models the FM's commit/re-steer poll: reads blocking reads if the
// link is uncached, or cheap cached reads under coherent HT.
func (l *Link) Poll(reads int) float64 {
	var ns float64
	for i := 0; i < reads; i++ {
		if l.cfg.PollIsRoundTrip {
			ns += l.Read()
		} else {
			// Cached read: ~1 ns when the FPGA hasn't written; the
			// ReadNanos memory-read cost is paid only on actual events,
			// which callers charge via Read().
			l.stats.Reads++
			l.stats.Nanos++
			l.readH.Observe(1)
			ns++
		}
	}
	return ns
}
