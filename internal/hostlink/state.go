package hostlink

// Warm-start serialization: the link's dynamic state is exactly its
// accumulated counters (configuration and histograms are rebuilt by the
// owning simulator). Nanos is a float accumulator; F64 carries the exact
// bit pattern so a resumed run's link time is byte-identical.

import "repro/internal/snap"

const linkStateV = 1

// SaveState appends the link's accumulated counters.
func (l *Link) SaveState(w *snap.Writer) {
	w.U8(linkStateV)
	w.U64(l.stats.Reads)
	w.U64(l.stats.Writes)
	w.U64(l.stats.BurstWords)
	w.F64(l.stats.Nanos)
}

// LoadState decodes counters written by SaveState.
func (l *Link) LoadState(r *snap.Reader) error {
	if v := r.U8(); r.Err() == nil && v != linkStateV {
		return snap.Corruptf("hostlink state version %d, want %d", v, linkStateV)
	}
	var st Stats
	st.Reads, st.Writes, st.BurstWords, st.Nanos = r.U64(), r.U64(), r.U64(), r.F64()
	if err := r.Err(); err != nil {
		return err
	}
	l.stats = st
	return nil
}
