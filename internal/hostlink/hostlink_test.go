package hostlink

import (
	"math"
	"testing"
)

func TestMeasuredDRCNumbers(t *testing.T) {
	// §4.5's measured latencies must be encoded exactly.
	d := DRC()
	if d.ReadNanos != 469 || d.WriteNanos != 307 || d.BurstWriteNanosPerWord != 20 {
		t.Errorf("DRC config %+v does not match the measured numbers", d)
	}
	p := DRCPinRegisters()
	if p.ReadNanos != 378 || p.WriteNanos != 287 || math.Abs(p.BurstWriteNanosPerWord-13.3) > 1e-9 {
		t.Errorf("pin-register config %+v wrong", p)
	}
	if !d.PollIsRoundTrip || CoherentHT().PollIsRoundTrip {
		t.Error("round-trip flags wrong")
	}
}

func TestAccounting(t *testing.T) {
	l := New(DRC())
	if got := l.Read(); got != 469 {
		t.Errorf("Read = %v", got)
	}
	if got := l.Write(); got != 307 {
		t.Errorf("Write = %v", got)
	}
	if got := l.BurstWrite(20); got != 400 {
		t.Errorf("BurstWrite(20) = %v, want 400", got)
	}
	s := l.Stats()
	if s.Reads != 1 || s.Writes != 2 || s.BurstWords != 20 {
		t.Errorf("stats %+v", s)
	}
	if s.Nanos != 469+307+400 {
		t.Errorf("nanos %v", s.Nanos)
	}
}

func TestPollBlockingVsCoherent(t *testing.T) {
	drc := New(DRC())
	if got := drc.Poll(2); got != 938 {
		t.Errorf("DRC 2-read poll = %v, want 938 (the §4.5 arithmetic)", got)
	}
	coh := New(CoherentHT())
	if got := coh.Poll(2); got >= 100 {
		t.Errorf("coherent poll = %v, should be near-free cached reads", got)
	}
}

// TestBottleneckArithmetic reproduces §4.5's back-of-envelope: "for each
// pair of basic blocks we take 10 * 87ns + 469ns + 800ns = 2139ns. Each
// instruction takes 2139ns/10 = 214ns, or 4.7MIPS".
func TestBottleneckArithmetic(t *testing.T) {
	l := New(DRC())
	const instPer2BB = 10.0 // 5-instruction basic blocks
	fmWork := instPer2BB * 87
	poll := l.Poll(1)              // one blocking read per 2 BBs
	stream := l.BurstWrite(2 * 20) // 20 words per basic block
	total := fmWork + poll + stream
	if math.Abs(total-2139) > 1e-9 {
		t.Fatalf("2-BB cost = %v ns, paper says 2139", total)
	}
	mips := 1e3 / (total / instPer2BB)
	if math.Abs(mips-4.67) > 0.05 {
		t.Errorf("streaming bound = %.2f MIPS, paper says ~4.7", mips)
	}
}
