package trace

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

// refBuffer is a brutally simple reference model of the trace buffer:
// an unbounded slice plus pointers.
type refBuffer struct {
	entries []Entry
	commit  uint64
	next    uint64
	cap     int
}

func (r *refBuffer) tryPush(e Entry) bool {
	if int(r.next-r.commit) >= r.cap {
		return false
	}
	if int(r.next) < len(r.entries) {
		r.entries[r.next] = e
	} else {
		r.entries = append(r.entries, e)
	}
	r.next++
	return true
}

func (r *refBuffer) tryFetch(in uint64) (Entry, bool) {
	if in >= r.next || in < r.commit {
		return Entry{}, false
	}
	return r.entries[in], true
}

func (r *refBuffer) commitTo(in uint64) {
	if in+1 > r.commit {
		r.commit = in + 1
	}
}

func (r *refBuffer) rewind(in uint64) {
	if in < r.next {
		r.next = in
	}
}

// TestBufferAgainstReferenceModel drives the real buffer and the reference
// with the same random operation stream and requires identical observable
// behaviour — the model-based property test for Figure 1/2 TB semantics.
func TestBufferAgainstReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const capacity = 16
	b := NewBuffer(capacity)
	ref := &refBuffer{cap: capacity}
	mk := func(in uint64) Entry {
		return Entry{IN: in, PC: isa.Word(rng.Uint32()), Op: isa.OpAddRR}
	}
	for step := 0; step < 200000; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // push
			e := mk(ref.next)
			got := b.TryPush(e)
			want := ref.tryPush(e)
			if got != want {
				t.Fatalf("step %d: push accepted=%v want %v", step, got, want)
			}
		case 4, 5, 6: // fetch a random IN in a plausible range
			span := ref.next - ref.commit + 3
			in := ref.commit + uint64(rng.Int63n(int64(span+1)))
			ge, gok := b.TryFetch(in)
			we, wok := ref.tryFetch(in)
			if gok != wok {
				t.Fatalf("step %d: fetch(%d) ok=%v want %v", step, in, gok, wok)
			}
			if gok && (ge.IN != we.IN || ge.PC != we.PC) {
				t.Fatalf("step %d: fetch(%d) = %+v want %+v", step, in, ge, we)
			}
		case 7: // commit within the produced window
			if ref.next > ref.commit {
				in := ref.commit + uint64(rng.Int63n(int64(ref.next-ref.commit)))
				b.Commit(in)
				ref.commitTo(in)
			}
		case 8: // rewind to an uncommitted point
			if ref.next > ref.commit {
				in := ref.commit + uint64(rng.Int63n(int64(ref.next-ref.commit+1)))
				b.Rewind(in)
				ref.rewind(in)
			}
		case 9: // invariant probes
			if got, want := b.Produced(), ref.next; got != want {
				t.Fatalf("step %d: produced %d want %d", step, got, want)
			}
			if got, want := b.Committed(), ref.commit; got != want {
				t.Fatalf("step %d: committed %d want %d", step, got, want)
			}
			if got, want := b.Occupancy(), int(ref.next-ref.commit); got != want {
				t.Fatalf("step %d: occupancy %d want %d", step, got, want)
			}
		}
	}
}
