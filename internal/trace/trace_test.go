package trace

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func entry(in uint64) Entry { return Entry{IN: in, Op: isa.OpNop} }

func TestBufferFIFO(t *testing.T) {
	b := NewBuffer(4)
	for i := uint64(0); i < 4; i++ {
		if !b.TryPush(entry(i)) {
			t.Fatalf("push %d failed", i)
		}
	}
	if b.TryPush(entry(4)) {
		t.Error("push into full buffer succeeded")
	}
	if b.Occupancy() != 4 {
		t.Errorf("occupancy = %d", b.Occupancy())
	}
	e, ok := b.TryFetch(2)
	if !ok || e.IN != 2 {
		t.Errorf("fetch(2) = %+v, %v", e, ok)
	}
	// Entries stay until committed: fetch(0) still works.
	if _, ok := b.TryFetch(0); !ok {
		t.Error("uncommitted entry deallocated")
	}
	b.Commit(1)
	if b.Occupancy() != 2 {
		t.Errorf("occupancy after commit = %d", b.Occupancy())
	}
	if !b.TryPush(entry(4)) || !b.TryPush(entry(5)) {
		t.Error("space not reclaimed by commit")
	}
}

func TestBufferRewindOverwrites(t *testing.T) {
	// Figure 2: wrong-path entries are overwritten by the re-steered
	// producer.
	b := NewBuffer(8)
	for i := uint64(0); i < 6; i++ {
		b.TryPush(entry(i))
	}
	b.Rewind(3)
	if b.Produced() != 3 {
		t.Fatalf("produced after rewind = %d", b.Produced())
	}
	repl := Entry{IN: 3, Op: isa.OpHalt}
	if !b.TryPush(repl) {
		t.Fatal("re-push failed")
	}
	e, _ := b.TryFetch(3)
	if e.Op != isa.OpHalt {
		t.Errorf("fetch(3) returned stale entry %v", e.Op)
	}
	if _, ok := b.TryFetch(4); ok {
		t.Error("fetch(4) returned a discarded wrong-path entry")
	}
}

func TestBufferPanicsOnMisuse(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	b := NewBuffer(4)
	b.TryPush(entry(0))
	b.TryPush(entry(1))
	expectPanic("out-of-order push", func() { b.TryPush(entry(5)) })
	expectPanic("commit unproduced", func() { b.Commit(7) })
	b.Commit(0)
	expectPanic("rewind committed", func() { b.Rewind(0) })
	expectPanic("fetch committed", func() { b.Fetch(0) })
	expectPanic("zero capacity", func() { NewBuffer(0) })
}

func TestBufferConcurrent(t *testing.T) {
	// One producer, one consumer, interleaved commits: every fetched IN
	// must match, and blocking push/fetch must not deadlock.
	const n = 10000
	b := NewBuffer(16)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < n; i++ {
			if !b.Push(entry(i)) {
				t.Error("push failed")
				return
			}
		}
	}()
	for i := uint64(0); i < n; i++ {
		e, ok := b.Fetch(i)
		if !ok || e.IN != i {
			t.Fatalf("fetch(%d) = %+v, %v", i, e, ok)
		}
		b.Commit(i)
	}
	wg.Wait()
	if b.MaxOccupancy() > 16 {
		t.Errorf("max occupancy %d exceeded capacity", b.MaxOccupancy())
	}
}

func TestBufferCloseUnblocks(t *testing.T) {
	b := NewBuffer(2)
	done := make(chan bool)
	go func() {
		_, ok := b.Fetch(0) // blocks: nothing produced
		done <- ok
	}()
	b.Close()
	if ok := <-done; ok {
		t.Error("fetch after close reported ok")
	}
	if b.Push(entry(0)) {
		t.Error("push after close succeeded")
	}
}

func TestEncodingWords(t *testing.T) {
	o := DefaultEncoding
	alu := Entry{Op: isa.OpAddRR, Size: 2}
	if w := o.Words(alu); w != 3 {
		t.Errorf("ALU entry = %d words, want 3", w)
	}
	br := Entry{Op: isa.OpJz, Size: 3, Branch: true}
	if w := o.Words(br); w != 4 {
		t.Errorf("branch entry = %d words, want 4", w)
	}
	mem := Entry{Op: isa.OpLdW, Size: 4, MemSize: 4}
	if w := o.Words(mem); w != 5 {
		t.Errorf("mem entry = %d words, want 5 (with PA)", w)
	}
	noPA := EncodeOptions{SendPhysical: false}
	if w := noPA.Words(mem); w != 4 {
		t.Errorf("mem entry without PA = %d words, want 4", w)
	}
	tlb := Entry{Op: isa.OpTlbWr, Size: 2, TLBWrite: true}
	if w := o.Words(tlb); w != 5 {
		t.Errorf("tlb entry = %d words, want 5", w)
	}
}

func TestEncodingCompressionWins(t *testing.T) {
	// Property: the compressed encoding is never larger than the naive
	// encoding (ablation A5's premise).
	f := func(size uint8, branch, mem, tlbw bool) bool {
		e := Entry{Op: isa.OpAddRR, Size: size%16 + 1, Branch: branch, TLBWrite: tlbw}
		if mem {
			e.MemSize = 4
		}
		c := DefaultEncoding.Words(e)
		u := EncodeOptions{Uncompressed: true}.Words(e)
		return c <= u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEntryString(t *testing.T) {
	e := Entry{IN: 7, PC: 0x100, Op: isa.OpJz, Branch: true, Taken: true, NextPC: 0x200}
	s := e.String()
	if s == "" {
		t.Fatal("empty String()")
	}
	m := Entry{IN: 8, PC: 0x104, Op: isa.OpStW, MemSize: 4, IsStore: true, MemVA: 0x3000}
	if m.String() == "" {
		t.Fatal("empty String()")
	}
}
