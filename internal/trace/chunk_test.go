package trace

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/isa"
)

func TestChunkPushFetch(t *testing.T) {
	b := NewBuffer(8)
	es := make([]Entry, 5)
	for i := range es {
		es[i] = entry(uint64(i))
	}
	occ, ok := b.TryPushChunk(es)
	if !ok || occ != 5 {
		t.Fatalf("TryPushChunk = (%d, %v), want (5, true)", occ, ok)
	}
	if _, ok := b.TryPushChunk(make([]Entry, 0)); !ok {
		t.Error("empty chunk push on open buffer failed")
	}
	// Not enough room for 4 more.
	four := []Entry{entry(5), entry(6), entry(7), entry(8)}
	if _, ok := b.TryPushChunk(four); ok {
		t.Error("oversized chunk push succeeded")
	}
	if b.Produced() != 5 {
		t.Errorf("partial chunk published: produced = %d", b.Produced())
	}
	b.Commit(1)
	if occ, ok := b.TryPushChunk(four); !ok || occ != 7 {
		t.Errorf("TryPushChunk after commit = (%d, %v), want (7, true)", occ, ok)
	}

	dst := make([]Entry, 4)
	if n := b.TryFetchChunk(2, dst); n != 4 {
		t.Fatalf("TryFetchChunk(2) = %d, want 4", n)
	}
	for i, e := range dst {
		if e.IN != uint64(2+i) {
			t.Errorf("dst[%d].IN = %d, want %d", i, e.IN, 2+i)
		}
	}
	// Fetch straddling the ring wrap (cap 8, INs 2..8 live).
	if n := b.TryFetchChunk(6, dst); n != 3 {
		t.Fatalf("TryFetchChunk(6) = %d, want 3", n)
	}
	for i := 0; i < 3; i++ {
		if dst[i].IN != uint64(6+i) {
			t.Errorf("wrap dst[%d].IN = %d, want %d", i, dst[i].IN, 6+i)
		}
	}
	if n := b.TryFetchChunk(9, dst); n != 0 {
		t.Errorf("TryFetchChunk past tail = %d, want 0", n)
	}
	if n := b.TryFetchChunk(0, dst); n != 0 {
		t.Errorf("TryFetchChunk of committed IN = %d, want 0", n)
	}
}

func TestChunkPushWraps(t *testing.T) {
	// A chunk that straddles the ring boundary must land in the right slots.
	b := NewBuffer(8)
	for i := uint64(0); i < 6; i++ {
		b.TryPush(entry(i))
	}
	b.Commit(5)
	es := []Entry{entry(6), entry(7), entry(8), entry(9)} // slots 6,7,0,1
	if _, ok := b.TryPushChunk(es); !ok {
		t.Fatal("wrapping chunk push failed")
	}
	for in := uint64(6); in <= 9; in++ {
		e, ok := b.TryFetch(in)
		if !ok || e.IN != in {
			t.Errorf("fetch(%d) = %+v, %v", in, e, ok)
		}
	}
}

func TestAppenderFlushAtChunkSize(t *testing.T) {
	b := NewBuffer(64)
	a := b.NewAppender(4)
	var flushed []int
	a.OnFlush = func(n, occ int) { flushed = append(flushed, n) }
	for i := uint64(0); i < 10; i++ {
		if !a.TryAppend(entry(i)) {
			t.Fatalf("append %d failed", i)
		}
	}
	if b.Produced() != 8 {
		t.Errorf("produced = %d, want 8 (two full chunks)", b.Produced())
	}
	if a.Pending() != 2 {
		t.Errorf("pending = %d, want 2", a.Pending())
	}
	if !a.Flush() {
		t.Fatal("flush failed")
	}
	if b.Produced() != 10 || a.Pending() != 0 {
		t.Errorf("after flush: produced = %d, pending = %d", b.Produced(), a.Pending())
	}
	if a.Flushes() != 3 || a.Entries() != 10 {
		t.Errorf("flushes = %d entries = %d, want 3/10", a.Flushes(), a.Entries())
	}
	if len(flushed) != 3 || flushed[0] != 4 || flushed[1] != 4 || flushed[2] != 2 {
		t.Errorf("OnFlush sizes = %v, want [4 4 2]", flushed)
	}
}

func TestAppenderCapacityGate(t *testing.T) {
	// Live() counts the unpublished chunk, so the appender refuses exactly
	// when a per-entry occupancy check on an unchunked buffer would.
	b := NewBuffer(4)
	a := b.NewAppender(8) // clamped to 4
	if a.ChunkSize() != 4 {
		t.Fatalf("chunk size = %d, want clamped 4", a.ChunkSize())
	}
	for i := uint64(0); i < 4; i++ {
		if !a.TryAppend(entry(i)) {
			t.Fatalf("append %d failed", i)
		}
	}
	if a.TryAppend(entry(4)) {
		t.Error("append into full buffer succeeded")
	}
	b.Commit(0) // frees exactly one slot
	// Lazy refresh: the cached commit pointer is stale but the gate must
	// notice the freed space on the next attempt.
	if !a.TryAppend(entry(4)) {
		t.Error("append after commit failed (stale commit cache not refreshed)")
	}
	if a.TryAppend(entry(5)) {
		t.Error("append past freed space succeeded")
	}
}

func TestAppenderRewindMidChunk(t *testing.T) {
	// Re-steer inside the open chunk: pure local truncation, nothing
	// published changes.
	b := NewBuffer(64)
	a := b.NewAppender(8)
	for i := uint64(0); i < 6; i++ {
		a.TryAppend(entry(i))
	}
	a.Rewind(3)
	if a.NextIN() != 3 || a.Pending() != 3 {
		t.Fatalf("after rewind: next = %d pending = %d", a.NextIN(), a.Pending())
	}
	if b.Produced() != 0 {
		t.Errorf("local rewind touched the buffer: produced = %d", b.Produced())
	}
	// Replacement path then fills the chunk; the published entries must be
	// the corrected ones (Figure 2 overwrite).
	for i := uint64(3); i < 8; i++ {
		a.TryAppend(Entry{IN: i, Op: isa.OpHalt})
	}
	if b.Produced() != 8 {
		t.Fatalf("produced = %d, want 8", b.Produced())
	}
	e, _ := b.TryFetch(3)
	if e.Op != isa.OpHalt {
		t.Errorf("fetch(3) = %v, want replacement OpHalt", e.Op)
	}
	e, _ = b.TryFetch(2)
	if e.Op != isa.OpNop {
		t.Errorf("fetch(2) = %v, want original OpNop", e.Op)
	}
}

func TestAppenderRewindAtChunkEdge(t *testing.T) {
	// Re-steer exactly at the boundary between published chunks and the
	// open chunk: the open chunk empties, the buffer is untouched.
	b := NewBuffer(64)
	a := b.NewAppender(4)
	for i := uint64(0); i < 6; i++ {
		a.TryAppend(entry(i)) // publishes 0..3, holds 4..5
	}
	a.Rewind(4)
	if a.NextIN() != 4 || a.Pending() != 0 {
		t.Fatalf("after edge rewind: next = %d pending = %d", a.NextIN(), a.Pending())
	}
	if b.Produced() != 4 {
		t.Errorf("edge rewind touched published entries: produced = %d", b.Produced())
	}
}

func TestAppenderRewindAcrossPublishedChunks(t *testing.T) {
	// Re-steer below the published tail: open chunk dropped AND published
	// wrong-path entries invalidated in the buffer.
	b := NewBuffer(64)
	a := b.NewAppender(4)
	for i := uint64(0); i < 10; i++ {
		a.TryAppend(entry(i)) // publishes 0..7, holds 8..9
	}
	a.Rewind(2)
	if a.NextIN() != 2 || a.Pending() != 0 {
		t.Fatalf("after deep rewind: next = %d pending = %d", a.NextIN(), a.Pending())
	}
	if b.Produced() != 2 {
		t.Errorf("produced = %d, want 2", b.Produced())
	}
	if _, ok := b.TryFetch(2); ok {
		t.Error("fetch(2) returned a discarded wrong-path entry")
	}
	// Corrected path republishes through the appender.
	for i := uint64(2); i < 6; i++ {
		a.TryAppend(Entry{IN: i, Op: isa.OpHalt})
	}
	e, ok := b.TryFetch(2)
	if !ok || e.Op != isa.OpHalt {
		t.Errorf("fetch(2) after re-steer = %+v, %v", e, ok)
	}
}

func TestAppenderRandomizedVsReference(t *testing.T) {
	// Single-threaded: drive an Appender and a plain per-entry Buffer with
	// the same random append/rewind/commit schedule; the observable entry
	// streams must be identical for any chunk size.
	for _, chunk := range []int{1, 3, 8, 64} {
		rng := rand.New(rand.NewSource(int64(chunk)))
		ref := NewBuffer(32)
		chk := NewBuffer(32)
		a := chk.NewAppender(chunk)
		var next, fetched uint64
		seq := 0 // payload discriminator: distinguishes re-steered paths
		for step := 0; step < 20000; step++ {
			switch r := rng.Intn(10); {
			case r < 6: // append
				e := Entry{IN: next, PC: isa.Word(seq)}
				seq++
				okRef := ref.TryPush(e)
				okChk := a.TryAppend(e)
				if okRef != okChk {
					t.Fatalf("chunk %d step %d: push ok mismatch ref=%v chk=%v", chunk, step, okRef, okChk)
				}
				if okRef {
					next++
				}
			case r < 8: // consume + commit
				a.Flush() // consumer sees everything the reference sees
				if fetched >= next {
					continue
				}
				eRef, okRef := ref.TryFetch(fetched)
				eChk, okChk := chk.TryFetch(fetched)
				if !okRef || !okChk {
					t.Fatalf("chunk %d step %d: fetch(%d) ref=%v chk=%v", chunk, step, fetched, okRef, okChk)
				}
				if eRef.IN != eChk.IN || eRef.PC != eChk.PC {
					t.Fatalf("chunk %d step %d: entry mismatch at %d: %+v vs %+v", chunk, step, fetched, eRef, eChk)
				}
				ref.Commit(fetched)
				chk.Commit(fetched)
				fetched++
			default: // re-steer
				if next == fetched {
					continue
				}
				in := fetched + uint64(rng.Int63n(int64(next-fetched)))
				ref.Rewind(in)
				a.Rewind(in)
				next = in
			}
		}
		a.Flush()
		for ; fetched < next; fetched++ {
			eRef, _ := ref.TryFetch(fetched)
			eChk, _ := chk.TryFetch(fetched)
			if eRef.IN != eChk.IN || eRef.PC != eChk.PC {
				t.Fatalf("chunk %d drain: entry mismatch at %d", chunk, fetched)
			}
		}
	}
}

func TestChunkConcurrentStress(t *testing.T) {
	// 1 producer (Appender) / 1 consumer (chunk views), randomized chunk
	// sizes and commit strides. Run under -race this exercises the
	// publish/fetch memory ordering.
	const n = 50000
	for _, chunk := range []int{1, 7, 64} {
		b := NewBuffer(128)
		a := b.NewAppender(chunk)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(0); i < n; {
				if a.TryAppend(entry(i)) {
					i++
				} else {
					runtime.Gosched()
				}
			}
			a.Flush()
		}()
		dst := make([]Entry, 32)
		rng := rand.New(rand.NewSource(42))
		for in := uint64(0); in < n; {
			got := b.TryFetchChunk(in, dst[:1+rng.Intn(len(dst))])
			if got == 0 {
				runtime.Gosched()
				continue
			}
			for i := 0; i < got; i++ {
				if dst[i].IN != in+uint64(i) {
					t.Fatalf("chunk %d: view[%d].IN = %d, want %d", chunk, i, dst[i].IN, in+uint64(i))
				}
			}
			in += uint64(got)
			b.Commit(in - 1)
		}
		wg.Wait()
		if b.MaxOccupancy() > 128 {
			t.Errorf("chunk %d: max occupancy %d exceeded capacity", chunk, b.MaxOccupancy())
		}
	}
}

func TestFetchChunkBlockingClose(t *testing.T) {
	b := NewBuffer(4)
	done := make(chan bool)
	go func() {
		_, ok := b.FetchChunk(0, make([]Entry, 2))
		done <- ok
	}()
	b.Close()
	if ok := <-done; ok {
		t.Error("FetchChunk after close reported ok")
	}
	if b.PushChunk([]Entry{entry(0)}) {
		t.Error("PushChunk after close succeeded")
	}
}
