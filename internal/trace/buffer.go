package trace

import (
	"fmt"
	"sync"
)

// Buffer is the trace buffer (TB) coupling the functional model (producer)
// to the timing model (consumer), with the semantics of Figures 1 and 2:
//
//   - Entries are indexed by instruction number (IN). The FM pushes entries
//     in IN order at the tail.
//   - An entry holds information used by multiple pipeline stages and "is
//     thus not deallocated until the instruction is fully committed": the
//     commit pointer, advanced by the TM, frees space.
//   - On a re-steer (mis-speculation or resolution) the FM rewinds the tail
//     to the re-steered IN and overwrites the incorrect-path entries, as I4*
//     and I5* overwrite I3..I5 in Figure 2.
//
// The buffer is safe for one producer and one consumer goroutine; it also
// supports non-blocking Try variants for deterministic serial coupling.
//
// Synchronization granularity: the per-entry Push/Fetch calls take the lock
// once per instruction — exactly the fine-grained cross-partition overhead
// §3.1's Amdahl model warns about. The chunked API (TryPushChunk /
// TryFetchChunk, and the Appender built on top) amortizes one lock acquire
// and one condvar broadcast over a whole chunk of entries, the software
// analogue of the paper's packed trace records streaming in bursts.
type Buffer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ring   []Entry
	commit uint64 // oldest live IN (everything below is committed & freed)
	next   uint64 // next IN to be produced (tail)
	closed bool

	// Peak occupancy statistic.
	maxOccupancy int
}

// NewBuffer creates a trace buffer holding capacity in-flight instructions.
// Capacity bounds FM run-ahead: the paper's prototype sizes it so the FM can
// speculate well past the TM without unbounded memory.
func NewBuffer(capacity int) *Buffer {
	if capacity < 1 {
		panic("trace: buffer capacity must be positive")
	}
	b := &Buffer{ring: make([]Entry, capacity)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Cap returns the buffer capacity.
func (b *Buffer) Cap() int { return len(b.ring) }

func (b *Buffer) slot(in uint64) *Entry { return &b.ring[in%uint64(len(b.ring))] }

// Push appends e (which must carry IN == next unproduced IN) at the tail,
// blocking while the buffer is full. It returns false if the buffer was
// closed.
func (b *Buffer) Push(e Entry) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.next-b.commit >= uint64(len(b.ring)) && !b.closed {
		b.cond.Wait()
	}
	if b.closed {
		return false
	}
	b.pushLocked(e)
	return true
}

// TryPush is Push without blocking; it reports whether the entry was stored.
func (b *Buffer) TryPush(e Entry) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || b.next-b.commit >= uint64(len(b.ring)) {
		return false
	}
	b.pushLocked(e)
	return true
}

func (b *Buffer) pushLocked(e Entry) {
	if e.IN != b.next {
		panic(fmt.Sprintf("trace: push IN %d, expected %d", e.IN, b.next))
	}
	*b.slot(e.IN) = e
	b.next++
	if occ := int(b.next - b.commit); occ > b.maxOccupancy {
		b.maxOccupancy = occ
	}
	b.cond.Broadcast()
}

// Fetch returns the entry with instruction number in, blocking until the
// producer has written it. ok is false if the buffer closed first.
//
// After a Rewind past in, the eventually produced entry is the
// *replacement* (correct-path) instruction — exactly the Figure 2 overwrite
// behaviour — so a TM that stalls waiting for IN k always receives the
// current functional path's instruction k.
func (b *Buffer) Fetch(in uint64) (Entry, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for in >= b.next && !b.closed {
		b.cond.Wait()
	}
	if in >= b.next {
		return Entry{}, false
	}
	if in < b.commit {
		panic(fmt.Sprintf("trace: fetch of committed IN %d (commit=%d)", in, b.commit))
	}
	return *b.slot(in), true
}

// TryFetch is Fetch without blocking.
func (b *Buffer) TryFetch(in uint64) (Entry, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if in >= b.next || in < b.commit {
		return Entry{}, false
	}
	return *b.slot(in), true
}

// TryPushChunk publishes a contiguous run of entries — es[0] must carry the
// next unproduced IN — with one lock acquire and one broadcast. It is
// all-or-nothing: if the buffer lacks space for every entry, or is closed,
// nothing is stored and ok is false. On success it returns the occupancy
// after the publish (live entries, for producer-side flow control and
// telemetry sampling).
func (b *Buffer) TryPushChunk(es []Entry) (occupancy int, ok bool) {
	if len(es) == 0 {
		b.mu.Lock()
		defer b.mu.Unlock()
		return int(b.next - b.commit), !b.closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || b.next-b.commit+uint64(len(es)) > uint64(len(b.ring)) {
		return int(b.next - b.commit), false
	}
	b.pushChunkLocked(es)
	return int(b.next - b.commit), true
}

// PushChunk is TryPushChunk with blocking: it waits until the buffer has
// room for the whole chunk. It returns false if the buffer was closed.
func (b *Buffer) PushChunk(es []Entry) bool {
	if len(es) == 0 {
		return !b.Closed()
	}
	if len(es) > len(b.ring) {
		panic(fmt.Sprintf("trace: chunk of %d entries exceeds buffer capacity %d", len(es), len(b.ring)))
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.next-b.commit+uint64(len(es)) > uint64(len(b.ring)) && !b.closed {
		b.cond.Wait()
	}
	if b.closed {
		return false
	}
	b.pushChunkLocked(es)
	return true
}

func (b *Buffer) pushChunkLocked(es []Entry) {
	for i := range es {
		if es[i].IN != b.next+uint64(i) {
			panic(fmt.Sprintf("trace: chunk entry %d has IN %d, expected %d",
				i, es[i].IN, b.next+uint64(i)))
		}
	}
	// Two copies handle the ring wrap without a per-entry modulo.
	idx := int(b.next % uint64(len(b.ring)))
	n := copy(b.ring[idx:], es)
	copy(b.ring, es[n:])
	b.next += uint64(len(es))
	if occ := int(b.next - b.commit); occ > b.maxOccupancy {
		b.maxOccupancy = occ
	}
	b.cond.Broadcast()
}

// TryFetchChunk copies up to len(dst) consecutive live entries starting at
// instruction number in into dst, under one lock acquire, and returns how
// many were copied (0 if in is not live). The copies form a consumer-owned
// view: a later Rewind past in invalidates the buffer's own entries but
// never mutates dst — consumers that can observe re-steers must drop their
// view when they issue one.
func (b *Buffer) TryFetchChunk(in uint64, dst []Entry) int {
	if len(dst) == 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fetchChunkLocked(in, dst)
}

func (b *Buffer) fetchChunkLocked(in uint64, dst []Entry) int {
	if in >= b.next || in < b.commit {
		return 0
	}
	n := len(dst)
	if live := int(b.next - in); live < n {
		n = live
	}
	idx := int(in % uint64(len(b.ring)))
	c := copy(dst[:n], b.ring[idx:])
	copy(dst[c:n], b.ring)
	return n
}

// FetchChunk is TryFetchChunk with blocking: it waits until at least one
// entry at or past in is live. ok is false if the buffer closed first.
func (b *Buffer) FetchChunk(in uint64, dst []Entry) (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for in >= b.next && !b.closed {
		b.cond.Wait()
	}
	n := b.fetchChunkLocked(in, dst)
	return n, n > 0
}

// Commit advances the commit pointer past in: the ROB has fully committed
// instructions up to and including in, deallocating their TB entries and
// releasing the FM's rollback resources.
func (b *Buffer) Commit(in uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if in+1 > b.next {
		panic(fmt.Sprintf("trace: commit of unproduced IN %d (next=%d)", in, b.next))
	}
	if in+1 > b.commit {
		b.commit = in + 1
		b.cond.Broadcast()
	}
}

// Rewind moves the tail back so that in is the next IN to be produced,
// discarding the incorrect-path entries at and above in. The producer calls
// this when servicing a set_pc.
func (b *Buffer) Rewind(in uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if in < b.commit {
		panic(fmt.Sprintf("trace: rewind to committed IN %d (commit=%d)", in, b.commit))
	}
	if in < b.next {
		b.next = in
		b.cond.Broadcast()
	}
}

// Close wakes all waiters; subsequent pushes fail and fetches past the tail
// return ok=false.
func (b *Buffer) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.cond.Broadcast()
}

// Closed reports whether the producer closed the stream.
func (b *Buffer) Closed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closed
}

// Produced returns the next IN the producer will write.
func (b *Buffer) Produced() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.next
}

// Committed returns the commit pointer (first uncommitted IN).
func (b *Buffer) Committed() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.commit
}

// Occupancy returns the number of live (produced, uncommitted) entries.
func (b *Buffer) Occupancy() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return int(b.next - b.commit)
}

// MaxOccupancy returns the high-water mark of Occupancy.
func (b *Buffer) MaxOccupancy() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.maxOccupancy
}

// ResetDrained reinitializes the buffer to the drained state at instruction
// number in — commit == next == in, nothing live — restoring the occupancy
// high-water mark. Warm-start restore only: the snapshot contract
// guarantees the buffer it describes was drained at capture, so no entry
// contents need to survive.
func (b *Buffer) ResetDrained(in uint64, maxOccupancy int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.commit, b.next = in, in
	b.maxOccupancy = maxOccupancy
	b.closed = false
	b.cond.Broadcast()
}
