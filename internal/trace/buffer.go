package trace

import (
	"fmt"
	"sync"
)

// Buffer is the trace buffer (TB) coupling the functional model (producer)
// to the timing model (consumer), with the semantics of Figures 1 and 2:
//
//   - Entries are indexed by instruction number (IN). The FM pushes entries
//     in IN order at the tail.
//   - An entry holds information used by multiple pipeline stages and "is
//     thus not deallocated until the instruction is fully committed": the
//     commit pointer, advanced by the TM, frees space.
//   - On a re-steer (mis-speculation or resolution) the FM rewinds the tail
//     to the re-steered IN and overwrites the incorrect-path entries, as I4*
//     and I5* overwrite I3..I5 in Figure 2.
//
// The buffer is safe for one producer and one consumer goroutine; it also
// supports non-blocking Try variants for deterministic serial coupling.
type Buffer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ring   []Entry
	commit uint64 // oldest live IN (everything below is committed & freed)
	next   uint64 // next IN to be produced (tail)
	closed bool

	// Peak occupancy statistic.
	maxOccupancy int
}

// NewBuffer creates a trace buffer holding capacity in-flight instructions.
// Capacity bounds FM run-ahead: the paper's prototype sizes it so the FM can
// speculate well past the TM without unbounded memory.
func NewBuffer(capacity int) *Buffer {
	if capacity < 1 {
		panic("trace: buffer capacity must be positive")
	}
	b := &Buffer{ring: make([]Entry, capacity)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Cap returns the buffer capacity.
func (b *Buffer) Cap() int { return len(b.ring) }

func (b *Buffer) slot(in uint64) *Entry { return &b.ring[in%uint64(len(b.ring))] }

// Push appends e (which must carry IN == next unproduced IN) at the tail,
// blocking while the buffer is full. It returns false if the buffer was
// closed.
func (b *Buffer) Push(e Entry) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.next-b.commit >= uint64(len(b.ring)) && !b.closed {
		b.cond.Wait()
	}
	if b.closed {
		return false
	}
	b.pushLocked(e)
	return true
}

// TryPush is Push without blocking; it reports whether the entry was stored.
func (b *Buffer) TryPush(e Entry) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || b.next-b.commit >= uint64(len(b.ring)) {
		return false
	}
	b.pushLocked(e)
	return true
}

func (b *Buffer) pushLocked(e Entry) {
	if e.IN != b.next {
		panic(fmt.Sprintf("trace: push IN %d, expected %d", e.IN, b.next))
	}
	*b.slot(e.IN) = e
	b.next++
	if occ := int(b.next - b.commit); occ > b.maxOccupancy {
		b.maxOccupancy = occ
	}
	b.cond.Broadcast()
}

// Fetch returns the entry with instruction number in, blocking until the
// producer has written it. ok is false if the buffer closed first.
//
// After a Rewind past in, the eventually produced entry is the
// *replacement* (correct-path) instruction — exactly the Figure 2 overwrite
// behaviour — so a TM that stalls waiting for IN k always receives the
// current functional path's instruction k.
func (b *Buffer) Fetch(in uint64) (Entry, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for in >= b.next && !b.closed {
		b.cond.Wait()
	}
	if in >= b.next {
		return Entry{}, false
	}
	if in < b.commit {
		panic(fmt.Sprintf("trace: fetch of committed IN %d (commit=%d)", in, b.commit))
	}
	return *b.slot(in), true
}

// TryFetch is Fetch without blocking.
func (b *Buffer) TryFetch(in uint64) (Entry, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if in >= b.next || in < b.commit {
		return Entry{}, false
	}
	return *b.slot(in), true
}

// Commit advances the commit pointer past in: the ROB has fully committed
// instructions up to and including in, deallocating their TB entries and
// releasing the FM's rollback resources.
func (b *Buffer) Commit(in uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if in+1 > b.next {
		panic(fmt.Sprintf("trace: commit of unproduced IN %d (next=%d)", in, b.next))
	}
	if in+1 > b.commit {
		b.commit = in + 1
		b.cond.Broadcast()
	}
}

// Rewind moves the tail back so that in is the next IN to be produced,
// discarding the incorrect-path entries at and above in. The producer calls
// this when servicing a set_pc.
func (b *Buffer) Rewind(in uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if in < b.commit {
		panic(fmt.Sprintf("trace: rewind to committed IN %d (commit=%d)", in, b.commit))
	}
	if in < b.next {
		b.next = in
		b.cond.Broadcast()
	}
}

// Close wakes all waiters; subsequent pushes fail and fetches past the tail
// return ok=false.
func (b *Buffer) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.cond.Broadcast()
}

// Closed reports whether the producer closed the stream.
func (b *Buffer) Closed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closed
}

// Produced returns the next IN the producer will write.
func (b *Buffer) Produced() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.next
}

// Committed returns the commit pointer (first uncommitted IN).
func (b *Buffer) Committed() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.commit
}

// Occupancy returns the number of live (produced, uncommitted) entries.
func (b *Buffer) Occupancy() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return int(b.next - b.commit)
}

// MaxOccupancy returns the high-water mark of Occupancy.
func (b *Buffer) MaxOccupancy() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.maxOccupancy
}
