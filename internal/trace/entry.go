// Package trace defines the functional-path instruction trace that flows
// from the functional model to the timing model, and the trace buffer (TB)
// that couples them.
//
// §2 of the paper: "The functional model sequentially executes the program,
// generating a functional path instruction trace, and pipes that stream to
// the timing model. ... Each instruction entry in the trace includes
// everything needed by the timing model that the functional model can
// conveniently provide, such as a fixed-length opcode, instruction size,
// source, destination and condition code architectural register names,
// instruction and data virtual addresses and data written to special
// registers, such as software-filled TLB entries."
package trace

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/microcode"
)

// Entry is one dynamic instruction in the functional-path trace.
type Entry struct {
	IN   uint64   // dynamic instruction number assigned by the FM
	PC   isa.Word // virtual PC
	PPC  isa.Word // physical PC (redundant info that simplifies the TM, §2)
	Op   isa.Op   // compressed 11-bit opcode
	Size uint8    // encoded instruction length in bytes

	// Architectural register names (not values): sources, destination and
	// whether condition codes are read/written.
	SrcA, SrcB, Dst isa.Reg
	ReadsCC         bool
	WritesCC        bool

	// Control flow.
	Branch bool
	Cond   bool
	Taken  bool
	NextPC isa.Word // PC the functional path followed after this instruction

	// Data memory access, if any.
	MemVA   isa.Word
	MemPA   isa.Word
	MemSize uint8 // 0 = no access
	IsStore bool

	// String-instruction dynamics.
	RepIterations uint32

	// Microcode cracking (µop count includes REP iterations). UOps holds
	// one iteration's instantiated µops; on the FPGA these come from the
	// microcode table indexed by the 11-bit opcode, so they are NOT extra
	// trace bandwidth — carrying them here just saves the TM a re-crack.
	UopCount  uint32
	UOps      []microcode.UOp
	Microcode bool // table entry valid (not NOP-replaced)

	// Interrupt marks that an external interrupt was delivered immediately
	// before this instruction (it is the first handler instruction).
	Interrupt bool

	// Exceptions discovered by the functional model ("If the functional
	// model discovers an exception, it indicates that in the instruction
	// trace", §3.4).
	Exception bool
	ExcVector uint8

	// Data written to special registers: software-filled TLB entries ride
	// in the trace so the TM's TLB timing models can mirror them.
	TLBWrite bool
	TLBVPN   isa.Word
	TLBPFN   isa.Word

	// Kernel-mode marker (lets statistics separate OS from user code).
	Kernel bool
}

func (e Entry) String() string {
	s := fmt.Sprintf("#%d pc=%#x %s", e.IN, e.PC, isa.Lookup(e.Op).Name)
	if e.Branch {
		t := "not-taken"
		if e.Taken {
			t = "taken"
		}
		s += fmt.Sprintf(" %s->%#x", t, e.NextPC)
	}
	if e.MemSize != 0 {
		k := "ld"
		if e.IsStore {
			k = "st"
		}
		s += fmt.Sprintf(" %s%d@%#x", k, e.MemSize, e.MemVA)
	}
	return s
}

// Encoding model for link-bandwidth accounting (§4: "We have compressed
// opcodes to 11bits and instructions down to an average of about four 32bit
// words per x86 instruction").
//
// Word layout of the compressed encoding:
//
//	word 0: opcode(11) | size(4) | flags(9) | dst(6) | memsize hint(2)
//	word 1: srcA(6) | srcB(6) | rep-iteration count or 0 (20)
//	word 2: PC (always sent; the TM needs it for fetch modeling)
//	word 3: next-PC (branches only)
//	word 4: data virtual address (memory ops only)
//	word 5: data physical address (memory ops only; redundant-info option)
//	word 6,7: TLB fill data (TLB writes only)
//
// Branch-free ALU instructions therefore cost 3 words, memory operations 5,
// and the dynamic mix lands near the paper's four words per instruction.

// EncodeOptions selects the trace compression level (ablation A5).
type EncodeOptions struct {
	// SendPhysical includes physical addresses (redundant information that
	// simplifies the TM at the cost of a larger trace, §2).
	SendPhysical bool
	// Uncompressed models the naive encoding: the raw instruction bytes
	// plus full 32-bit fields, as if no opcode/field compression had been
	// implemented.
	Uncompressed bool
}

// DefaultEncoding is the prototype's compressed encoding.
var DefaultEncoding = EncodeOptions{SendPhysical: true}

// Words returns how many 32-bit words e occupies on the host link under o.
func (o EncodeOptions) Words(e Entry) int {
	if o.Uncompressed {
		// One word per instruction byte region (padded), plus every field
		// uncompacted: opcode, size, 3 regs, flags, PC, next PC, VA, PA,
		// TLB data.
		n := (int(e.Size) + 3) / 4
		return n + 11
	}
	n := 3 // words 0,1,2
	if e.Branch || e.Exception {
		n++
	}
	if e.MemSize != 0 {
		n++
		if o.SendPhysical {
			n++
		}
	}
	if e.TLBWrite {
		n += 2
	}
	return n
}
