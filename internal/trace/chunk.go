package trace

import "fmt"

// DefaultChunk is the default number of entries the producer accumulates
// locally before publishing them to the trace buffer in one synchronized
// operation. 64 entries ≈ 9 basic blocks at the paper's dynamic branch
// ratio: large enough to amortize the lock/notify to noise, small enough
// that the TM never waits long for visibility.
const DefaultChunk = 64

// Appender is the producer-side chunking façade over a Buffer: the
// functional model appends entries into a locally-owned chunk (no
// synchronization at all) and the Appender publishes whole chunks with a
// single lock acquire and condvar broadcast — the software realization of
// streaming the paper's packed trace records in bursts rather than one
// record at a time.
//
// The Appender owns the producer side of the buffer: all pushes and rewinds
// must go through it (mixing direct Buffer pushes with an active Appender
// corrupts the IN sequence). It is not safe for concurrent use; like the
// Buffer's producer side, it belongs to exactly one goroutine.
//
// Re-steer semantics (Figure 2) are preserved chunk-aware: a Rewind whose
// target lies inside the unpublished chunk simply truncates it in place —
// the cheapest possible overwrite — while a rewind past published entries
// invalidates them in the buffer with one lock.
type Appender struct {
	b     *Buffer
	size  int
	chunk []Entry

	// next is the IN the producer will append next (published + pending).
	next uint64
	// commitCache is a monotone under-estimate of the buffer's commit
	// pointer, refreshed lazily: Live() therefore over-estimates and only
	// takes the lock when the estimate would gate the producer, so the
	// steady-state append path costs zero synchronization.
	commitCache uint64

	flushes uint64
	entries uint64

	// OnFlush, when non-nil, observes every successful publish with the
	// number of entries published and the buffer occupancy just after.
	// Couplings hook link-transfer accounting and telemetry sampling here.
	OnFlush func(entries, occupancy int)
}

// NewAppender builds an Appender over b publishing chunkSize-entry chunks.
// chunkSize < 1 selects DefaultChunk; it is clamped to the buffer capacity
// so a full chunk is always publishable into an empty buffer.
func (b *Buffer) NewAppender(chunkSize int) *Appender {
	if chunkSize < 1 {
		chunkSize = DefaultChunk
	}
	if chunkSize > b.Cap() {
		chunkSize = b.Cap()
	}
	return &Appender{
		b:           b,
		size:        chunkSize,
		chunk:       make([]Entry, 0, chunkSize),
		next:        b.Produced(),
		commitCache: b.Committed(),
	}
}

// ChunkSize returns the configured chunk size.
func (a *Appender) ChunkSize() int { return a.size }

// NextIN returns the IN the next appended entry must carry.
func (a *Appender) NextIN() uint64 { return a.next }

// Pending returns the number of locally-buffered, unpublished entries.
func (a *Appender) Pending() int { return len(a.chunk) }

// Flushes returns the number of chunks published so far.
func (a *Appender) Flushes() uint64 { return a.flushes }

// Entries returns the total number of entries published so far.
func (a *Appender) Entries() uint64 { return a.entries }

// Live returns the exact number of live entries the producer is
// responsible for: published-but-uncommitted entries plus the unpublished
// chunk. The fast path uses the cached commit pointer (an over-estimate of
// Live); the lock is taken only when that estimate reaches the buffer
// capacity, so gating decisions match a per-entry occupancy check exactly
// without paying for one.
func (a *Appender) Live() int {
	live := int(a.next - a.commitCache)
	if live < a.b.Cap() {
		return live
	}
	a.commitCache = a.b.Committed()
	return int(a.next - a.commitCache)
}

// TryAppend appends e (which must carry IN == NextIN) to the local chunk,
// publishing the chunk when it fills. It reports whether the entry was
// accepted; false means the buffer is full (counting the local chunk) and
// the producer has run as far ahead as the capacity allows.
func (a *Appender) TryAppend(e Entry) bool {
	if a.Live() >= a.b.Cap() {
		return false
	}
	if e.IN != a.next {
		panic(fmt.Sprintf("trace: append IN %d, expected %d", e.IN, a.next))
	}
	a.chunk = append(a.chunk, e)
	a.next++
	if len(a.chunk) >= a.size {
		a.Flush()
	}
	return true
}

// Flush publishes the partial chunk, if any. It reports whether the chunk
// is now empty (an empty chunk is trivially flushed; a publish into a
// closed buffer fails and leaves the chunk pending). Capacity gating in
// TryAppend guarantees an open buffer always has room for the chunk.
func (a *Appender) Flush() bool {
	if len(a.chunk) == 0 {
		return true
	}
	occ, ok := a.b.TryPushChunk(a.chunk)
	if !ok {
		return false
	}
	n := len(a.chunk)
	a.chunk = a.chunk[:0]
	a.flushes++
	a.entries += uint64(n)
	// occ = next - commit at publish time: refresh the commit estimate for
	// free.
	a.commitCache = a.next - uint64(occ)
	if a.OnFlush != nil {
		a.OnFlush(n, occ)
	}
	return true
}

// Rebase re-synchronizes the appender with its buffer after an external
// reset (warm-start restore): the local chunk is dropped, the production
// frontier and commit estimate are re-read from the buffer, and the
// publish counters are restored to the snapshot's values.
func (a *Appender) Rebase(flushes, entries uint64) {
	a.chunk = a.chunk[:0]
	a.next = a.b.Produced()
	a.commitCache = a.b.Committed()
	a.flushes, a.entries = flushes, entries
}

// Rewind discards entries at and above in so that in is the next IN to be
// produced — the chunk-aware Figure 2 re-steer. A target inside the
// unpublished chunk truncates it locally with no synchronization at all; a
// target below the published tail invalidates the published entries past in
// with one lock. A target at or past NextIN is a no-op.
func (a *Appender) Rewind(in uint64) {
	if in >= a.next {
		return
	}
	base := a.next - uint64(len(a.chunk))
	if in >= base {
		a.chunk = a.chunk[:in-base]
		a.next = in
		return
	}
	a.chunk = a.chunk[:0]
	a.b.Rewind(in)
	a.next = in
}
