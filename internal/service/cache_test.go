package service

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

func testResult(n uint64) sim.Result {
	return sim.Result{Engine: "fast", Workload: "w", Instructions: n, TargetCycles: 2 * n}
}

func mustJSON(t *testing.T, r sim.Result) []byte {
	t.Helper()
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestResultCacheLRU pins eviction order: the least recently used entry
// (including use via get) is the one that falls off.
func TestResultCacheLRU(t *testing.T) {
	tel := obs.New()
	c := newResultCache(2, nil, tel)
	c.put("a", testResult(1), mustJSON(t, testResult(1)))
	c.put("b", testResult(2), mustJSON(t, testResult(2)))
	if _, _, ok := c.get("a"); !ok { // refresh a → b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", testResult(3), mustJSON(t, testResult(3)))
	if _, _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, _, ok := c.get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if _, _, ok := c.get("c"); !ok {
		t.Error("c should be resident")
	}
	if got := c.len(); got != 2 {
		t.Errorf("len = %d, want 2", got)
	}
	if hits, misses := tel.Metrics.Counter("service_cache_hits_total").Value(),
		tel.Metrics.Counter("service_cache_misses_total").Value(); hits != 3 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 3/1", hits, misses)
	}
}

// TestResultCacheDisabled: max <= 0 means every put drops and every get
// misses — the service runs uncached but correct.
func TestResultCacheDisabled(t *testing.T) {
	c := newResultCache(0, nil, obs.New())
	c.put("a", testResult(1), mustJSON(t, testResult(1)))
	if _, _, ok := c.get("a"); ok {
		t.Error("disabled cache returned a hit")
	}
	if c.len() != 0 {
		t.Error("disabled cache holds entries")
	}
}

// TestResultCacheContains must not disturb accounting or recency: it is the
// sweep capacity pre-check, not a read.
func TestResultCacheContains(t *testing.T) {
	tel := obs.New()
	c := newResultCache(2, nil, tel)
	c.put("a", testResult(1), mustJSON(t, testResult(1)))
	c.put("b", testResult(2), mustJSON(t, testResult(2)))
	if !c.contains("a") || c.contains("z") {
		t.Fatal("contains wrong")
	}
	// contains("a") must NOT have refreshed a: inserting c evicts a (the
	// true LRU), not b.
	c.put("c", testResult(3), mustJSON(t, testResult(3)))
	if c.contains("a") {
		t.Error("contains refreshed LRU order")
	}
	if hits := tel.Metrics.Counter("service_cache_hits_total").Value(); hits != 0 {
		t.Errorf("contains counted %d hits", hits)
	}
	if misses := tel.Metrics.Counter("service_cache_misses_total").Value(); misses != 0 {
		t.Errorf("contains counted %d misses", misses)
	}
}

// TestResultCacheConcurrentReaders is the sharing-hazard regression test
// behind Result.Clone: many goroutines get the same entry, mutate their
// copy, and re-put racing writers — under -race this proves a cache hit
// never hands out state shared with another caller, and that the raw bytes
// stay the canonical encoding throughout.
func TestResultCacheConcurrentReaders(t *testing.T) {
	tel := obs.New()
	c := newResultCache(8, nil, tel)
	want := testResult(42)
	wantRaw := mustJSON(t, want)
	c.put("k", want, wantRaw)

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				res, raw, ok := c.get("k")
				if !ok {
					t.Error("entry vanished")
					return
				}
				// Mutating the returned copy must not be visible to anyone.
				res.Instructions = uint64(g*1000 + i)
				res.IPC = float64(g)
				if string(raw) != string(wantRaw) {
					t.Errorf("raw bytes changed: %s", raw)
					return
				}
				if i%50 == 0 {
					// Racing refresh with the identical (deterministic) value.
					c.put("k", want, wantRaw)
					c.put(fmt.Sprintf("g%d-%d", g, i), testResult(uint64(i)), wantRaw)
				}
			}
		}(g)
	}
	wg.Wait()
	res, _, ok := c.get("k")
	if !ok || res.Instructions != 42 {
		t.Fatalf("entry corrupted by readers: %+v ok=%v", res, ok)
	}
}
