package service

import (
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
)

// Collection listing: GET /v1/jobs and GET /v1/sweeps enumerate accepted
// work newest-first with cursor pagination, so operators can inspect the
// backlog without scraping metrics.
//
// Query parameters (shared by both endpoints):
//
//	status= filter to one job/sweep state (jobs: queued|running|done|
//	        failed|canceled; sweeps: running|done). Empty = all.
//	limit=  page size, 1..MaxListLimit; 0/absent = DefaultListLimit.
//	after=  cursor: return entries strictly older than this id (the
//	        next_after value of the previous page). Absent = newest.
//
// The response carries next_after only while older matching entries
// remain, so a client pages with `after = next_after` until it is empty.
const (
	DefaultListLimit = 50
	MaxListLimit     = 500
)

// JobList is the GET /v1/jobs body.
type JobList struct {
	Jobs      []JobView `json:"jobs"`
	NextAfter string    `json:"next_after,omitempty"`
}

// SweepList is the GET /v1/sweeps body.
type SweepList struct {
	Sweeps    []SweepView `json:"sweeps"`
	NextAfter string      `json:"next_after,omitempty"`
}

// listQuery is the parsed ?status=&limit=&after= triple. afterSeq is the
// cursor id's admission sequence number; 0 means "start at newest".
type listQuery struct {
	status   string
	limit    int
	afterSeq uint64
}

// ParseListQuery validates the shared listing parameters. knownStatus
// guards the status filter (job and sweep states differ); the after cursor
// is any well-formed id — it need not name a live entry, so a page cursor
// stays valid even if its last entry is gone by the next request.
// Exported so the cluster coordinator lists with identical semantics.
func ParseListQuery(q url.Values, knownStatus func(string) bool) (status string, limit int, afterSeq uint64, err error) {
	status = q.Get("status")
	if status != "" && !knownStatus(status) {
		return "", 0, 0, fmt.Errorf("unknown status %q", status)
	}
	limit = DefaultListLimit
	if raw := q.Get("limit"); raw != "" {
		limit, err = strconv.Atoi(raw)
		if err != nil || limit < 0 {
			return "", 0, 0, fmt.Errorf("limit must be a non-negative integer, got %q", raw)
		}
		if limit == 0 {
			limit = DefaultListLimit
		}
		if limit > MaxListLimit {
			limit = MaxListLimit
		}
	}
	if after := q.Get("after"); after != "" {
		afterSeq, err = idSeq(after)
		if err != nil {
			return "", 0, 0, err
		}
	}
	return status, limit, afterSeq, nil
}

// idSeq recovers the admission sequence number from a job/sweep id
// ("job-000123" → 123). Ordering by the numeric suffix instead of the id
// string keeps newest-first correct past the %06d formatting width.
func idSeq(id string) (uint64, error) {
	i := strings.LastIndexByte(id, '-')
	if i < 0 {
		return 0, fmt.Errorf("malformed id %q", id)
	}
	n, err := strconv.ParseUint(id[i+1:], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("malformed id %q", id)
	}
	return n, nil
}

func (s *Server) parseListQuery(w http.ResponseWriter, r *http.Request, knownStatus func(string) bool) (listQuery, bool) {
	status, limit, afterSeq, err := ParseListQuery(r.URL.Query(), knownStatus)
	if err != nil {
		s.writeError(w, &httpError{status: 400, code: CodeBadParams, msg: err.Error()})
		return listQuery{}, false
	}
	return listQuery{status: status, limit: limit, afterSeq: afterSeq}, true
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	q, ok := s.parseListQuery(w, r, KnownStatus)
	if !ok {
		return
	}
	type row struct {
		seq  uint64
		view JobView
	}
	s.mu.Lock()
	rows := make([]row, 0, len(s.jobs))
	for _, j := range s.jobs {
		if q.afterSeq != 0 && j.seq >= q.afterSeq {
			continue
		}
		if q.status != "" && j.status != q.status {
			continue
		}
		rows = append(rows, row{seq: j.seq, view: s.viewLocked(j)})
	}
	s.mu.Unlock()
	sort.Slice(rows, func(i, k int) bool { return rows[i].seq > rows[k].seq })

	out := JobList{Jobs: []JobView{}}
	for i, rw := range rows {
		if i == q.limit {
			out.NextAfter = out.Jobs[len(out.Jobs)-1].ID
			break
		}
		out.Jobs = append(out.Jobs, rw.view)
	}
	WriteJSON(w, http.StatusOK, out)
}

// knownSweepStatus guards the sweep list filter: a sweep is only ever
// running (some child not terminal) or done.
func knownSweepStatus(status string) bool {
	return status == StatusRunning || status == StatusDone
}

func (s *Server) handleListSweeps(w http.ResponseWriter, r *http.Request) {
	q, ok := s.parseListQuery(w, r, knownSweepStatus)
	if !ok {
		return
	}
	type row struct {
		seq  uint64
		view SweepView
	}
	s.mu.Lock()
	rows := make([]row, 0, len(s.sweeps))
	for _, sw := range s.sweeps {
		if q.afterSeq != 0 && sw.seq >= q.afterSeq {
			continue
		}
		v := s.sweepViewLocked(sw)
		if q.status != "" && v.Status != q.status {
			continue
		}
		rows = append(rows, row{seq: sw.seq, view: v})
	}
	s.mu.Unlock()
	sort.Slice(rows, func(i, k int) bool { return rows[i].seq > rows[k].seq })

	out := SweepList{Sweeps: []SweepView{}}
	for i, rw := range rows {
		if i == q.limit {
			out.NextAfter = out.Sweeps[len(out.Sweeps)-1].ID
			break
		}
		out.Sweeps = append(out.Sweeps, rw.view)
	}
	WriteJSON(w, http.StatusOK, out)
}
