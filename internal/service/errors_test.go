package service_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/service"
)

// envelope reads the code/retry_after_sec fields of an error body map.
func envelopeCode(t *testing.T, m map[string]any) string {
	t.Helper()
	code, _ := m["code"].(string)
	if code == "" {
		t.Fatalf("response is not an error envelope: %v", m)
	}
	if msg, _ := m["message"].(string); msg == "" {
		t.Errorf("envelope %q has no message: %v", code, m)
	}
	return code
}

// TestErrorEnvelopeCodes drives every /v1 failure path and asserts the
// (HTTP status, stable code) pair of the envelope — the contract clients
// and the cluster coordinator dispatch on.
func TestErrorEnvelopeCodes(t *testing.T) {
	resetGate()
	h := newHarness(t, service.Config{Workers: 1, QueueDepth: 1})

	// A terminal (canceled) job for the conflict paths: cancel it while
	// the queue is still free.
	st, m, _ := h.do("POST", "/v1/jobs", `{"engine":"svc-block","params":{"workload":"164.gzip"}}`)
	if st != http.StatusAccepted {
		t.Fatalf("seed submit: %d %v", st, m)
	}
	blockID := m["id"].(string)
	// Park the worker on it, then cancel a second queued job so it
	// terminates without ever running.
	for {
		_, jm, _ := h.do("GET", "/v1/jobs/"+blockID, "")
		if jm["status"] == "running" {
			break
		}
		time.Sleep(time.Millisecond)
	}
	st, m, _ = h.do("POST", "/v1/jobs", `{"engine":"svc-block","params":{"workload":"176.gcc"}}`)
	if st != http.StatusAccepted {
		t.Fatalf("queued submit: %d %v", st, m)
	}
	canceledID := m["id"].(string)
	if st, m, _ = h.do("DELETE", "/v1/jobs/"+canceledID, ""); st != http.StatusOK {
		t.Fatalf("cancel: %d %v", st, m)
	}

	cases := []struct {
		name         string
		method, path string
		body         string
		wantStatus   int
		wantCode     string
	}{
		{"malformed body", "POST", "/v1/jobs", `{`, 400, service.CodeBadParams},
		{"unknown request field", "POST", "/v1/jobs", `{"engine":"fast","bogus":1}`, 400, service.CodeBadParams},
		{"trailing data", "POST", "/v1/jobs", `{"engine":"fast","params":{"workload":"164.gzip"}} {}`, 400, service.CodeBadParams},
		{"unknown params field", "POST", "/v1/jobs", `{"engine":"fast","params":{"frobnicate":1}}`, 400, service.CodeBadParams},
		{"unknown engine", "POST", "/v1/jobs", `{"engine":"warp-drive","params":{"workload":"164.gzip"}}`, 400, service.CodeUnknownEngine},
		{"invalid params", "POST", "/v1/jobs", `{"engine":"fast","params":{"workload":"no-such-workload"}}`, 400, service.CodeBadParams},
		{"queue full", "POST", "/v1/jobs", `{"engine":"svc-block","params":{"workload":"186.crafty"}}`, 429, service.CodeQueueFull},
		{"job not found", "GET", "/v1/jobs/job-999999", "", 404, service.CodeNotFound},
		{"result not found", "GET", "/v1/jobs/job-999999/result", "", 404, service.CodeNotFound},
		{"cancel not found", "DELETE", "/v1/jobs/job-999999", "", 404, service.CodeNotFound},
		{"result of canceled job", "GET", "/v1/jobs/" + canceledID + "/result", "", 409, service.CodeConflict},
		{"cancel terminal job", "DELETE", "/v1/jobs/" + canceledID, "", 409, service.CodeConflict},
		{"sweep not found", "GET", "/v1/sweeps/sweep-999999", "", 404, service.CodeNotFound},
		{"sweep invalid point", "POST", "/v1/sweeps", `{"sweep":{"workloads":["no-such-workload"],"base":{}}}`, 400, service.CodeBadParams},
		{"sweep unknown engine", "POST", "/v1/sweeps", `{"sweep":{"engines":["warp-drive"],"base":{"workload":"164.gzip"}}}`, 400, service.CodeUnknownEngine},
		{"sweep over capacity", "POST", "/v1/sweeps", `{"sweep":{"engines":["svc-block"],"workloads":["164.gzip","176.gcc","186.crafty"],"base":{}}}`, 429, service.CodeQueueFull},
		{"list bad status", "GET", "/v1/jobs?status=zombie", "", 400, service.CodeBadParams},
		{"list bad limit", "GET", "/v1/jobs?limit=-1", "", 400, service.CodeBadParams},
		{"list bad cursor", "GET", "/v1/jobs?after=nonsense", "", 400, service.CodeBadParams},
		{"sweep list bad status", "GET", "/v1/sweeps?status=queued", "", 400, service.CodeBadParams},
	}
	// The canceled job still occupies the single queue slot (the parked
	// worker never dequeued it), so the queue-full rows reject naturally.
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, m, hdr := h.do(tc.method, tc.path, tc.body)
			if st != tc.wantStatus {
				t.Fatalf("%s %s: status %d, want %d (%v)", tc.method, tc.path, st, tc.wantStatus, m)
			}
			if code := envelopeCode(t, m); code != tc.wantCode {
				t.Fatalf("%s %s: code %q, want %q", tc.method, tc.path, code, tc.wantCode)
			}
			if tc.wantStatus == 429 {
				if hdr.Get("Retry-After") == "" {
					t.Error("429 without Retry-After header")
				}
				if ra, _ := m["retry_after_sec"].(float64); ra <= 0 {
					t.Errorf("429 envelope without retry_after_sec: %v", m)
				}
			}
		})
	}
	openGate()
}

// TestErrorEnvelopeDraining covers the draining rejection, which needs a
// dedicated server mid-shutdown.
func TestErrorEnvelopeDraining(t *testing.T) {
	h := newHarness(t, service.Config{Workers: 1, QueueDepth: 4})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := h.srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, tc := range []struct{ path, body string }{
		{"/v1/jobs", `{"engine":"fast","params":{"workload":"164.gzip"}}`},
		{"/v1/sweeps", `{"sweep":{"engines":["fast"],"base":{"workload":"164.gzip"}}}`},
	} {
		st, m, _ := h.do("POST", tc.path, tc.body)
		if st != 503 {
			t.Fatalf("POST %s while draining: status %d (%v)", tc.path, st, m)
		}
		if code := envelopeCode(t, m); code != service.CodeDraining {
			t.Fatalf("POST %s while draining: code %q, want %q", tc.path, code, service.CodeDraining)
		}
	}
}

// TestListPagination exercises the cursor walk over /v1/jobs and
// /v1/sweeps: newest-first order, page boundaries, exhaustion, and the
// status filter.
func TestListPagination(t *testing.T) {
	h := newHarness(t, service.Config{Workers: 2, QueueDepth: 32})

	// 5 instantly-completing jobs with distinct params, submitted in order.
	var ids []string
	for i := 0; i < 5; i++ {
		body := fmt.Sprintf(`{"engine":"svc-stub","params":{"workload":"164.gzip","max_instructions":%d}}`, 1000+i)
		st, m, _ := h.do("POST", "/v1/jobs", body)
		if st != http.StatusAccepted {
			t.Fatalf("submit %d: %d %v", i, st, m)
		}
		ids = append(ids, m["id"].(string))
	}
	waitDone := func(id string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			_, m, _ := h.do("GET", "/v1/jobs/"+id, "")
			if m["status"] == "done" {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("job %s never finished", id)
	}
	for _, id := range ids {
		waitDone(id)
	}

	listIDs := func(path string) ([]string, string) {
		t.Helper()
		st, raw := h.raw("GET", path, "")
		if st != 200 {
			t.Fatalf("GET %s: %d %s", path, st, raw)
		}
		var out struct {
			Jobs []struct {
				ID string `json:"id"`
			} `json:"jobs"`
			NextAfter string `json:"next_after"`
		}
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		var got []string
		for _, j := range out.Jobs {
			got = append(got, j.ID)
		}
		return got, out.NextAfter
	}

	// Full listing: newest first = reverse submission order.
	got, next := listIDs("/v1/jobs")
	if next != "" {
		t.Fatalf("full listing set next_after=%q", next)
	}
	if len(got) != 5 {
		t.Fatalf("full listing: %d jobs, want 5", len(got))
	}
	for i := range got {
		if want := ids[len(ids)-1-i]; got[i] != want {
			t.Fatalf("listing[%d] = %s, want %s (newest first)", i, got[i], want)
		}
	}

	// Page with limit=2: 2+2+1, cursors chaining, no overlap.
	var pages [][]string
	after := ""
	for {
		path := "/v1/jobs?limit=2"
		if after != "" {
			path += "&after=" + after
		}
		page, na := listIDs(path)
		pages = append(pages, page)
		if na == "" {
			break
		}
		after = na
	}
	if len(pages) != 3 || len(pages[0]) != 2 || len(pages[1]) != 2 || len(pages[2]) != 1 {
		t.Fatalf("page shape %v, want [2 2 1]", pages)
	}
	var walked []string
	for _, p := range pages {
		walked = append(walked, p...)
	}
	for i := range walked {
		if want := ids[len(ids)-1-i]; walked[i] != want {
			t.Fatalf("cursor walk[%d] = %s, want %s", i, walked[i], want)
		}
	}

	// Boundary: limit exactly the population → one page, no cursor (the
	// cursor only appears when more entries remain).
	got, next = listIDs("/v1/jobs?limit=5")
	if len(got) != 5 || next != "" {
		t.Fatalf("limit=5: %d jobs next_after=%q, want 5 and empty", len(got), next)
	}

	// Cursor past the oldest: empty page, no next_after.
	got, next = listIDs("/v1/jobs?after=" + ids[0])
	if len(got) != 0 || next != "" {
		t.Fatalf("after oldest: %v next=%q, want empty", got, next)
	}

	// Status filter: all done, none failed.
	if got, _ = listIDs("/v1/jobs?status=done"); len(got) != 5 {
		t.Fatalf("status=done: %d jobs, want 5", len(got))
	}
	if got, _ = listIDs("/v1/jobs?status=failed"); len(got) != 0 {
		t.Fatalf("status=failed: %v, want none", got)
	}

	// Sweeps listing: 3 sweeps, newest first, paginated at 2.
	var sweepIDs []string
	for i := 0; i < 3; i++ {
		body := fmt.Sprintf(`{"sweep":{"engines":["svc-stub"],"base":{"workload":"164.gzip","max_instructions":%d}}}`, 2000+i)
		st, m, _ := h.do("POST", "/v1/sweeps", body)
		if st != http.StatusAccepted {
			t.Fatalf("sweep %d: %d %v", i, st, m)
		}
		sweepIDs = append(sweepIDs, m["id"].(string))
	}
	st, raw := h.raw("GET", "/v1/sweeps?limit=2", "")
	if st != 200 {
		t.Fatalf("GET /v1/sweeps: %d %s", st, raw)
	}
	var sl struct {
		Sweeps []struct {
			ID string `json:"id"`
		} `json:"sweeps"`
		NextAfter string `json:"next_after"`
	}
	if err := json.Unmarshal(raw, &sl); err != nil {
		t.Fatal(err)
	}
	if len(sl.Sweeps) != 2 || sl.Sweeps[0].ID != sweepIDs[2] || sl.Sweeps[1].ID != sweepIDs[1] {
		t.Fatalf("sweep page %v, want [%s %s]", sl.Sweeps, sweepIDs[2], sweepIDs[1])
	}
	if sl.NextAfter != sweepIDs[1] {
		t.Fatalf("sweep next_after %q, want %q", sl.NextAfter, sweepIDs[1])
	}
	st, raw = h.raw("GET", "/v1/sweeps?limit=2&after="+sl.NextAfter, "")
	if st != 200 {
		t.Fatalf("GET /v1/sweeps page 2: %d %s", st, raw)
	}
	sl.Sweeps, sl.NextAfter = nil, ""
	if err := json.Unmarshal(raw, &sl); err != nil {
		t.Fatal(err)
	}
	if len(sl.Sweeps) != 1 || sl.Sweeps[0].ID != sweepIDs[0] || sl.NextAfter != "" {
		t.Fatalf("sweep page 2 %v next=%q, want [%s] and no cursor", sl.Sweeps, sl.NextAfter, sweepIDs[0])
	}
}
