// Package service turns the simulator registry into a multi-tenant batch
// backend: a zero-external-dependency HTTP job server (exposed as
// cmd/fastd) that accepts engine + sim.Params submissions, drains them
// through a bounded queue and worker pool, and — because runs are
// deterministic (locked by the golden and invariance tests of
// internal/sim) — serves repeated submissions from a content-addressed
// result cache keyed by engine name + sim.Params.Key() without simulating.
//
// API (all request/response bodies are JSON; unknown fields are rejected;
// every non-2xx response is an ErrorBody envelope with a stable code):
//
//	POST   /v1/jobs             {"engine","params","timeout_ms"} → 202 job view
//	GET    /v1/jobs             list, newest first (?status=&limit=&after=)
//	GET    /v1/jobs/{id}        job view (status, cache flag, timestamps)
//	GET    /v1/jobs/{id}/result 200 canonical sim.Result | 202 while pending
//	GET    /v1/jobs/{id}/metrics per-job Prometheus dump
//	DELETE /v1/jobs/{id}        cancel (queued → skipped, running → ctx cancel)
//	POST   /v1/sweeps           {"sweep","timeout_ms"} → 202 sweep view
//	GET    /v1/sweeps           list, newest first (?status=&limit=&after=)
//	GET    /v1/sweeps/{id}      sweep view (per-status child counts)
//	GET    /v1/sweeps/{id}/result spec-order aggregation of child results
//	GET    /v1/engines          registry names + descriptions
//	GET    /v1/workloads        workload registry names + descriptions
//	GET    /metrics             server-wide Prometheus dump (service_* series
//	                            plus every per-run series of runs that
//	                            inherited the server telemetry)
//	GET    /healthz             liveness + drain state + queue depth
//
// Production behaviors: a full queue answers 429 with a Retry-After
// estimated from recent job wall times; every job runs under a deadline
// enforced through Engine.RunContext; Shutdown drains gracefully (stop
// accepting, finish queued and in-flight work, or cancel it when the drain
// context expires). The in-memory result LRU can be backed by a Store
// (internal/service/diskcache) so the cache survives restarts and can be
// shared cluster-wide; internal/cluster shards this API across many nodes.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Config sizes the server. The zero value is a usable single-host default.
type Config struct {
	// Workers is the simulation worker-pool size; <= 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the backlog of accepted-but-not-started jobs;
	// <= 0 means 64. A full queue rejects submissions with 429.
	QueueDepth int
	// CacheEntries caps the in-memory content-addressed result cache;
	// 0 means 256, negative disables the memory tier.
	CacheEntries int
	// Store, when non-nil, persistently backs the memory cache: puts are
	// written through, memory misses fall back to it (and promote). See
	// internal/service/diskcache for the disk implementation.
	Store Store
	// Snapshots, when non-nil, persistently backs the warm-start snapshot
	// tier; nil falls back to Store, so one shared disk directory carries
	// both results and boot snapshots cluster-wide.
	Snapshots Store
	// DisableWarmStart turns the snapshot tier off entirely: every run
	// boots cold and captures nothing. Results are bit-identical either
	// way (the determinism CI matrix locks this); the switch only exists
	// to trade the snapshot disk/memory footprint back for boot time.
	DisableWarmStart bool
	// DefaultTimeout is the per-job deadline applied when a submission
	// carries no timeout_ms; <= 0 means 10 minutes.
	DefaultTimeout time.Duration
	// Telemetry receives the service_* series and, transitively, the
	// engine/fleet series of every run (each job also keeps a private
	// registry for /v1/jobs/{id}/metrics). Nil allocates a fresh one.
	Telemetry *obs.Telemetry
}

// Server is the job service. Build with New (which starts the worker
// pool), mount Handler on an http.Server, and Shutdown to drain.
type Server struct {
	cfg   Config
	tel   *obs.Telemetry
	mux   *http.ServeMux
	cache *resultCache
	snaps *snapshotStore // nil when warm starts are disabled
	queue chan *job

	mu       sync.Mutex
	draining bool
	seq      uint64
	jobs     map[string]*job
	sweeps   map[string]*sweepJob

	workers sync.WaitGroup

	jobsSubmitted *obs.Counter
	engineRuns    *obs.Counter
	sweepsTotal   *obs.Counter
	queueDepth    *obs.Gauge
	queueWait     *obs.Histogram
	jobSeconds    *obs.Histogram
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	switch {
	case cfg.CacheEntries == 0:
		cfg.CacheEntries = 256
	case cfg.CacheEntries < 0:
		cfg.CacheEntries = 0 // memory tier disabled
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 10 * time.Minute
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = obs.New()
	}
	s := &Server{
		cfg:           cfg,
		tel:           cfg.Telemetry,
		cache:         newResultCache(cfg.CacheEntries, cfg.Store, cfg.Telemetry),
		queue:         make(chan *job, cfg.QueueDepth),
		jobs:          map[string]*job{},
		sweeps:        map[string]*sweepJob{},
		jobsSubmitted: cfg.Telemetry.Counter("service_jobs_submitted_total"),
		engineRuns:    cfg.Telemetry.Counter("service_engine_runs_total"),
		sweepsTotal:   cfg.Telemetry.Counter("service_sweeps_total"),
		queueDepth:    cfg.Telemetry.Gauge("service_queue_depth"),
		queueWait:     cfg.Telemetry.Histogram("service_queue_wait_seconds", obs.SecondsBuckets),
		jobSeconds:    cfg.Telemetry.Histogram("service_job_seconds", obs.SecondsBuckets),
	}
	if !cfg.DisableWarmStart {
		backing := cfg.Snapshots
		if backing == nil {
			backing = cfg.Store
		}
		s.snaps = newSnapshotStore(backing, cfg.Telemetry)
	}
	s.mux = http.NewServeMux()
	s.routes()
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// jobsByStatus resolves the service_jobs_total{status=...} series.
func (s *Server) jobsByStatus(status string) *obs.Counter {
	return s.tel.Counter(obs.L("service_jobs_total", "status", status))
}

// rejected resolves the service_jobs_rejected_total{reason=...} series.
func (s *Server) rejected(reason string) *obs.Counter {
	return s.tel.Counter(obs.L("service_jobs_rejected_total", "reason", reason))
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/metrics", s.handleJobMetrics)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmitSweep)
	s.mux.HandleFunc("GET /v1/sweeps", s.handleListSweeps)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepStatus)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/result", s.handleSweepResult)
	s.mux.HandleFunc("GET /v1/engines", s.handleEngines)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /v1/snapshots", s.handleSnapshots)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
}

// maxBodyBytes bounds request bodies: the largest legitimate submission is
// a sweep spec a few KB long; anything bigger is a client bug or abuse.
const maxBodyBytes = 1 << 20

// JobRequest is the POST /v1/jobs body. Params stays raw so the strict
// decode (sim.DecodeParams — unknown fields, trailing data) is the single
// authority for the overlay schema. Exported: the typed client and the
// cluster coordinator assemble the exact same body.
type JobRequest struct {
	Engine    string          `json:"engine"`
	Params    json.RawMessage `json:"params"`
	TimeoutMS int64           `json:"timeout_ms,omitempty"`
}

// SweepRequest is the POST /v1/sweeps body.
type SweepRequest struct {
	Sweep     sim.Sweep `json:"sweep"`
	TimeoutMS int64     `json:"timeout_ms,omitempty"`
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	p, err := sim.DecodeParams(req.Params)
	if err != nil {
		s.rejected("invalid").Inc()
		s.writeError(w, &httpError{status: 400, code: CodeBadParams, msg: err.Error()})
		return
	}
	j, err := s.submitJob(req.Engine, p, time.Duration(req.TimeoutMS)*time.Millisecond)
	if err != nil {
		s.writeError(w, err)
		return
	}
	WriteJSON(w, http.StatusAccepted, s.view(j))
}

func (s *Server) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	sw, err := s.submitSweep(req.Sweep, time.Duration(req.TimeoutMS)*time.Millisecond)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.mu.Lock()
	v := s.sweepViewLocked(sw)
	s.mu.Unlock()
	WriteJSON(w, http.StatusAccepted, v)
}

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*job, bool) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		s.writeError(w, &httpError{status: 404, code: CodeNotFound, msg: fmt.Sprintf("no job %q", r.PathValue("id"))})
	}
	return j, ok
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	WriteJSON(w, http.StatusOK, s.view(j))
}

// handleJobResult serves the canonical result JSON — the exact bytes
// marshaled when the run (or its cache ancestor) completed, so identical
// submissions are byte-identical on the wire.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	status, raw, errMsg := j.status, j.raw, j.errMsg
	s.mu.Unlock()
	switch status {
	case StatusDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(raw)
		w.Write([]byte("\n"))
	case StatusFailed, StatusCanceled:
		s.writeError(w, &httpError{status: 409, code: CodeConflict,
			msg: fmt.Sprintf("job %s %s: %s", j.id, status, errMsg)})
	default:
		WriteJSON(w, http.StatusAccepted, s.view(j))
	}
}

func (s *Server) handleJobMetrics(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	j.tel.Metrics.WritePrometheus(w)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	changed := s.cancelLocked(j)
	v := s.viewLocked(j)
	s.mu.Unlock()
	if !changed {
		s.writeError(w, &httpError{status: 409, code: CodeConflict, msg: fmt.Sprintf("job %s already %s", j.id, v.Status)})
		return
	}
	WriteJSON(w, http.StatusOK, v)
}

func (s *Server) lookupSweep(w http.ResponseWriter, r *http.Request) (*sweepJob, bool) {
	s.mu.Lock()
	sw, ok := s.sweeps[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		s.writeError(w, &httpError{status: 404, code: CodeNotFound, msg: fmt.Sprintf("no sweep %q", r.PathValue("id"))})
	}
	return sw, ok
}

func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.lookupSweep(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	v := s.sweepViewLocked(sw)
	s.mu.Unlock()
	WriteJSON(w, http.StatusOK, v)
}

// SweepResult is one spec-order slot of GET /v1/sweeps/{id}/result.
type SweepResult struct {
	Index  int             `json:"index"`
	JobID  string          `json:"job_id"`
	Point  string          `json:"point"`
	Cached bool            `json:"cached"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// SweepResults is the GET /v1/sweeps/{id}/result body: every expanded
// point in spec order. The cluster coordinator emits the identical shape,
// so a sharded sweep aggregates byte-identically to a single-node one.
type SweepResults struct {
	ID      string        `json:"id"`
	Results []SweepResult `json:"results"`
}

func (s *Server) handleSweepResult(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.lookupSweep(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	v := s.sweepViewLocked(sw)
	if v.Status != StatusDone {
		s.mu.Unlock()
		WriteJSON(w, http.StatusAccepted, v)
		return
	}
	out := SweepResults{ID: sw.id, Results: make([]SweepResult, len(sw.children))}
	for i, j := range sw.children {
		out.Results[i] = SweepResult{
			Index:  i,
			JobID:  j.id,
			Point:  sw.points[i].String(),
			Cached: j.cached,
			Result: json.RawMessage(j.raw),
			Error:  j.errMsg,
		}
	}
	s.mu.Unlock()
	WriteJSON(w, http.StatusOK, out)
}

// EngineView is one element of GET /v1/engines.
type EngineView struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

func (s *Server) handleEngines(w http.ResponseWriter, r *http.Request) {
	var out []EngineView
	for _, name := range sim.Names() {
		eng, err := sim.New(name, sim.Params{Workload: "164.gzip"})
		if err != nil {
			s.writeError(w, &httpError{status: 500, code: CodeInternal, msg: err.Error()})
			return
		}
		out = append(out, EngineView{Name: name, Description: eng.Describe()})
	}
	WriteJSON(w, http.StatusOK, out)
}

// WorkloadView is one element of GET /v1/workloads.
type WorkloadView struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	var out []WorkloadView
	for _, e := range workload.Registry() {
		out = append(out, WorkloadView{Name: e.Name, Description: e.Description})
	}
	WriteJSON(w, http.StatusOK, out)
}

// handleSnapshots lists the warm-start snapshots resident in this
// process's memory tier (an empty list when the tier is disabled).
func (s *Server) handleSnapshots(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, s.listSnapshots())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.tel.Metrics.WritePrometheus(w)
}

// Health is the GET /healthz body.
type Health struct {
	Status     string `json:"status"` // "ok" | "draining"
	QueueDepth int    `json:"queue_depth"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	status := "ok"
	code := http.StatusOK
	if draining {
		status, code = "draining", http.StatusServiceUnavailable
	}
	WriteJSON(w, code, Health{Status: status, QueueDepth: len(s.queue)})
}

// decodeBody strictly decodes a bounded JSON request body into dst.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.rejected("invalid").Inc()
		s.writeError(w, &httpError{status: 400, code: CodeBadParams, msg: fmt.Sprintf("decode request: %v", err)})
		return false
	}
	if dec.More() {
		s.rejected("invalid").Inc()
		s.writeError(w, &httpError{status: 400, code: CodeBadParams, msg: "trailing data after JSON body"})
		return false
	}
	return true
}

// Shutdown drains the server: new submissions are refused with 503, the
// queue is closed, and workers finish queued and in-flight jobs. If ctx
// expires first, every remaining queued job is canceled, every running
// job's context is cancelled, and Shutdown still waits for the workers to
// observe that before returning ctx's error. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
	}
	s.mu.Lock()
	for _, j := range s.jobs {
		if j.status == StatusQueued || j.status == StatusRunning {
			s.cancelLocked(j)
		}
	}
	s.mu.Unlock()
	<-drained
	return ctx.Err()
}
