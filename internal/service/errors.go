package service

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Stable machine-readable error codes. Every non-2xx /v1 response carries
// exactly one of these in its ErrorBody; clients dispatch on the code, the
// message is for humans. Codes are part of the API contract (DESIGN.md
// §11): add freely, never rename or repurpose.
const (
	// CodeBadParams: the request body failed strict decoding or parameter
	// validation (unknown fields, trailing data, out-of-range values,
	// unknown workloads, malformed query parameters).
	CodeBadParams = "bad_params"
	// CodeUnknownEngine: the engine name is not in the registry.
	CodeUnknownEngine = "unknown_engine"
	// CodeQueueFull: the bounded job queue has no free slot (or not enough
	// free slots for a whole sweep). Retry after RetryAfterSec.
	CodeQueueFull = "queue_full"
	// CodeDraining: the server is shutting down and refuses new work.
	CodeDraining = "draining"
	// CodeNotFound: no job/sweep with that id.
	CodeNotFound = "not_found"
	// CodeConflict: the request is valid but the resource's state forbids
	// it (cancelling a terminal job, reading the result of a failed one).
	CodeConflict = "conflict"
	// CodeInternal: the server broke; the message says how.
	CodeInternal = "internal"
	// CodeNodeUnavailable (cluster only): the worker node owning the
	// resource is unreachable and the coordinator has no replacement yet.
	CodeNodeUnavailable = "node_unavailable"
)

// ErrorBody is the single error envelope of the /v1 API: every non-2xx
// response body is exactly this shape. Code is stable and machine-readable
// (the Code* constants); RetryAfterSec, when non-zero, mirrors the
// Retry-After header on 429/503 responses.
type ErrorBody struct {
	Code          string `json:"code"`
	Message       string `json:"message"`
	RetryAfterSec int    `json:"retry_after_sec,omitempty"`
}

// Error makes ErrorBody usable as a Go error (the typed client returns it
// wrapped in client.APIError; the server side uses httpError internally).
func (e ErrorBody) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// WriteAPIError writes the envelope with its status code (and Retry-After
// header when the body carries a retry hint). Exported so the cluster
// coordinator emits the exact same wire shape as a single node.
func WriteAPIError(w http.ResponseWriter, status int, body ErrorBody) {
	if body.Code == "" {
		body.Code = CodeInternal
	}
	if body.RetryAfterSec > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", body.RetryAfterSec))
	}
	WriteJSON(w, status, body)
}

// WriteJSON writes v as a compact JSON body with a trailing newline — the
// canonical response framing of the whole /v1 surface (shared with the
// cluster coordinator so proxied and local responses are byte-identical).
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// httpError carries a status code, a stable error code and an optional
// Retry-After hint out of the submit path to the handler layer.
type httpError struct {
	status     int
	code       string // one of the Code* constants
	retryAfter int    // seconds; 0 = no header
	msg        string
}

func (e *httpError) Error() string { return e.msg }

func (s *Server) writeError(w http.ResponseWriter, err error) {
	he, ok := err.(*httpError)
	if !ok {
		he = &httpError{status: 500, code: CodeInternal, msg: err.Error()}
	}
	WriteAPIError(w, he.status, ErrorBody{Code: he.code, Message: he.msg, RetryAfterSec: he.retryAfter})
}
