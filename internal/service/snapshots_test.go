package service_test

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/service"
	"repro/internal/service/diskcache"
	"repro/internal/sim"
	"time"
)

// fastJSON computes the storeless reference result for a cap.
func fastJSON(t *testing.T, maxInst uint64) []byte {
	t.Helper()
	r, err := sim.Run("fast", sim.Params{Workload: "253.perlbmk", MaxInstructions: maxInst})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestWarmStartAcrossJobs is the service-level warm-start contract: two
// jobs sharing a boot prefix at different instruction caps — the first
// captures a snapshot (miss), the second resumes from it (hit) — and both
// serve result JSON byte-identical to storeless runs.
func TestWarmStartAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real fast engine")
	}
	h := newHarness(t, service.Config{Workers: 1, QueueDepth: 8})

	id1 := h.submit(`{"engine":"fast","params":{"workload":"253.perlbmk","max_instructions":50000}}`)
	if v := h.wait(id1); v["status"] != "done" {
		t.Fatalf("job 1: %v", v)
	}
	if got := h.counter("service_snapshot_misses_total"); got != 1 {
		t.Errorf("service_snapshot_misses_total = %d, want 1", got)
	}
	if got := h.counter("service_snapshot_hits_total"); got != 0 {
		t.Errorf("service_snapshot_hits_total = %d, want 0", got)
	}
	if got := h.counter("service_snapshot_bytes_total"); got == 0 {
		t.Error("no snapshot bytes recorded after the capture run")
	}

	id2 := h.submit(`{"engine":"fast","params":{"workload":"253.perlbmk","max_instructions":80000}}`)
	if v := h.wait(id2); v["status"] != "done" {
		t.Fatalf("job 2: %v", v)
	}
	if got := h.counter("service_snapshot_hits_total"); got != 1 {
		t.Errorf("service_snapshot_hits_total = %d, want 1", got)
	}
	if got := h.counter("service_snapshot_resumed_instructions_total"); got == 0 {
		t.Error("no resumed instructions recorded on the warm start")
	}

	code, raw := h.raw("GET", "/v1/jobs/"+id2+"/result", "")
	if code != http.StatusOK {
		t.Fatalf("result: %d", code)
	}
	want := append(fastJSON(t, 80_000), '\n')
	if string(raw) != string(want) {
		t.Errorf("warm-started result JSON diverged from the storeless run:\n%s\nvs\n%s", raw, want)
	}

	// The listing shows the captured snapshot.
	code, views := h.raw("GET", "/v1/snapshots", "")
	if code != http.StatusOK {
		t.Fatalf("snapshots: %d", code)
	}
	var list []service.SnapshotView
	if err := json.Unmarshal(views, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].IN == 0 || list[0].Bytes == 0 || list[0].Prefix == "" {
		t.Errorf("snapshot listing = %+v", list)
	}
}

// TestWarmStartSurvivesRestartViaSharedDisk: a snapshot captured by one
// server incarnation warm-starts a fresh one sharing the disk directory —
// the cluster-wide tier in miniature.
func TestWarmStartSurvivesRestartViaSharedDisk(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real fast engine")
	}
	dir := t.TempDir()

	store1, err := diskcache.New(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	h1 := newHarness(t, service.Config{Workers: 1, QueueDepth: 8, Store: store1})
	if v := h1.wait(h1.submit(`{"engine":"fast","params":{"workload":"253.perlbmk","max_instructions":50000}}`)); v["status"] != "done" {
		t.Fatalf("capture job: %v", v)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	h1.srv.Shutdown(ctx)

	store2, err := diskcache.New(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	h2 := newHarness(t, service.Config{Workers: 1, QueueDepth: 8, Store: store2})
	id := h2.submit(`{"engine":"fast","params":{"workload":"253.perlbmk","max_instructions":80000}}`)
	if v := h2.wait(id); v["status"] != "done" {
		t.Fatalf("resume job: %v", v)
	}
	if got := h2.counter("service_snapshot_hits_total"); got != 1 {
		t.Errorf("restarted server snapshot hits = %d, want 1", got)
	}
	code, raw := h2.raw("GET", "/v1/jobs/"+id+"/result", "")
	if code != http.StatusOK {
		t.Fatalf("result: %d", code)
	}
	want := append(fastJSON(t, 80_000), '\n')
	if string(raw) != string(want) {
		t.Errorf("disk-resumed result JSON diverged:\n%s\nvs\n%s", raw, want)
	}
}
