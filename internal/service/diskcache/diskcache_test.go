package diskcache

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
)

func mustNew(t *testing.T, root string, maxBytes int64, tel *obs.Telemetry) *Cache {
	t.Helper()
	c, err := New(root, maxBytes, tel)
	if err != nil {
		t.Fatalf("New(%s): %v", root, err)
	}
	return c
}

func TestPutGetRoundTrip(t *testing.T) {
	tel := obs.New()
	c := mustNew(t, t.TempDir(), 0, tel)

	// Keys are opaque bytes — embed the NUL the service keys carry.
	key := "fast\x00abc123"
	blob := []byte(`{"engine":"fast","ipc":0.5}`)
	if _, ok := c.Get(key); ok {
		t.Fatal("Get on empty store hit")
	}
	c.Put(key, blob)
	got, ok := c.Get(key)
	if !ok || string(got) != string(blob) {
		t.Fatalf("Get = %q, %v; want the exact put bytes", got, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if c.Bytes() != int64(len(blob)) {
		t.Fatalf("Bytes = %d, want %d", c.Bytes(), len(blob))
	}
	if h := tel.Metrics.Counter("service_disk_cache_hits_total").Value(); h != 1 {
		t.Fatalf("hits = %d, want 1", h)
	}
	if m := tel.Metrics.Counter("service_disk_cache_misses_total").Value(); m != 1 {
		t.Fatalf("misses = %d, want 1", m)
	}

	// Overwrite: same key, new bytes; byte total tracks the replacement.
	blob2 := []byte(`{"engine":"fast","ipc":0.75,"extra":true}`)
	c.Put(key, blob2)
	got, ok = c.Get(key)
	if !ok || string(got) != string(blob2) {
		t.Fatalf("Get after overwrite = %q, %v", got, ok)
	}
	if c.Len() != 1 || c.Bytes() != int64(len(blob2)) {
		t.Fatalf("after overwrite Len=%d Bytes=%d, want 1/%d", c.Len(), c.Bytes(), len(blob2))
	}
}

// TestRestartRoundTrip is the persistence contract: a fresh Cache over the
// same directory serves the exact bytes a previous process put.
func TestRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key := "engine\x00key-1"
	blob := []byte(`{"target_cycles":12345}`)

	c1 := mustNew(t, dir, 0, nil)
	c1.Put(key, blob)

	c2 := mustNew(t, dir, 0, nil)
	if c2.Len() != 1 {
		t.Fatalf("restart index: Len = %d, want 1", c2.Len())
	}
	got, ok := c2.Get(key)
	if !ok || string(got) != string(blob) {
		t.Fatalf("restart Get = %q, %v; want original bytes", got, ok)
	}
}

// TestSharedDirectory is the cluster-store contract: a blob written by one
// Cache instance is visible to another instance that never indexed it.
func TestSharedDirectory(t *testing.T) {
	dir := t.TempDir()
	reader := mustNew(t, dir, 0, nil) // opened first: has never seen the key
	writer := mustNew(t, dir, 0, nil)

	key := "engine\x00shared"
	blob := []byte(`{"shared":true}`)
	writer.Put(key, blob)
	got, ok := reader.Get(key)
	if !ok || string(got) != string(blob) {
		t.Fatalf("cross-instance Get = %q, %v", got, ok)
	}
}

func TestEvictionBudget(t *testing.T) {
	tel := obs.New()
	// Each blob is 10 bytes; budget fits 3.
	c := mustNew(t, t.TempDir(), 30, tel)
	blob := []byte("0123456789")
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("key-%d", i), blob)
	}
	if c.Len() != 3 || c.Bytes() != 30 {
		t.Fatalf("after 5 puts: Len=%d Bytes=%d, want 3/30", c.Len(), c.Bytes())
	}
	// Oldest two evicted, newest three resident.
	for i := 0; i < 2; i++ {
		if _, ok := c.Get(fmt.Sprintf("key-%d", i)); ok {
			t.Fatalf("key-%d survived eviction", i)
		}
	}
	for i := 2; i < 5; i++ {
		if _, ok := c.Get(fmt.Sprintf("key-%d", i)); !ok {
			t.Fatalf("key-%d evicted, want resident", i)
		}
	}
	if ev := tel.Metrics.Counter("service_disk_cache_evictions_total").Value(); ev != 2 {
		t.Fatalf("evictions = %d, want 2", ev)
	}
}

// TestEvictionLRUOrder: touching an old key via Get protects it from the
// next eviction round.
func TestEvictionLRUOrder(t *testing.T) {
	c := mustNew(t, t.TempDir(), 30, nil)
	blob := []byte("0123456789")
	c.Put("a", blob)
	c.Put("b", blob)
	c.Put("c", blob)
	c.Get("a")       // a is now most recently used
	c.Put("d", blob) // over budget: evicts b (LRU), not a
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite being most recently used")
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived, want evicted as LRU")
	}
}

// TestScanCleansTempFiles: crashed-writer leftovers are removed at open,
// and never counted as blobs.
func TestScanCleansTempFiles(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, ".tmp-crashed")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, dir, 0, nil)
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp file survived scan: %v", err)
	}
}

// TestRestartBudgetEnforced: reopening over budget evicts oldest-by-mtime
// down to the budget immediately.
func TestRestartBudgetEnforced(t *testing.T) {
	dir := t.TempDir()
	c1 := mustNew(t, dir, 0, nil)
	blob := []byte("0123456789")
	for i := 0; i < 5; i++ {
		c1.Put(fmt.Sprintf("key-%d", i), blob)
		// Distinct mtimes so the restart scan sees a strict LRU order even
		// on coarse filesystem timestamps.
		name := filepath.Join(dir, filename(fmt.Sprintf("key-%d", i)))
		mt := time.Now().Add(time.Duration(i-5) * time.Second)
		os.Chtimes(name, mt, mt)
	}
	c2 := mustNew(t, dir, 30, nil)
	if c2.Len() != 3 || c2.Bytes() != 30 {
		t.Fatalf("restart over budget: Len=%d Bytes=%d, want 3/30", c2.Len(), c2.Bytes())
	}
	for i := 0; i < 2; i++ {
		if _, ok := c2.Get(fmt.Sprintf("key-%d", i)); ok {
			t.Fatalf("key-%d survived restart eviction", i)
		}
	}
}
