// Package diskcache is the disk-backed content-addressed result store
// behind internal/service's in-memory LRU (service.Store): one JSON blob
// per key under a root directory, written atomically (temp file + rename),
// evicted least-recently-used against a total-size budget.
//
// Persistence is what turns the result cache from a per-process
// optimization into infrastructure: a fastd restart no longer forgets
// every completed run, and a directory shared between worker nodes (NFS,
// bind mount) makes the store cluster-wide — any node can serve any
// node's completed result without simulating.
//
// Layout and concurrency: a key (engine\x00Params.Key(), opaque bytes) is
// addressed as sha256(key).json directly under root; writes go to a
// .tmp-* sibling first and rename into place, so readers — including
// other processes sharing the directory — only ever observe complete
// blobs. The eviction index (sizes + LRU order) is per-process, rebuilt
// from directory mtimes at startup; Get reads the file even when the
// index has never seen it, so blobs written by other nodes are found.
// IO failures are swallowed (counted in service_disk_cache_errors_total):
// the store is best-effort by contract, a lost blob only costs a re-run.
package diskcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Cache implements service.Store on a directory. Build with New; safe for
// concurrent use by one process, and safe to share a directory across
// processes (atomic renames; per-process eviction indexes may briefly
// disagree, which only skews eviction order, never blob content).
type Cache struct {
	root     string
	maxBytes int64 // <= 0 = unbounded

	mu     sync.Mutex
	ll     *list.List // front = most recently used; values are *entry
	byName map[string]*list.Element
	total  int64

	hits      *obs.Counter
	misses    *obs.Counter
	writes    *obs.Counter
	evictions *obs.Counter
	errors    *obs.Counter
	entries   *obs.Gauge
	bytes     *obs.Gauge
}

type entry struct {
	name string
	size int64
}

// New opens (creating if needed) a disk store rooted at root with a total
// size budget of maxBytes (<= 0 = unbounded). Existing blobs are indexed
// by modification time so LRU order approximately survives restarts;
// leftover temp files from a crashed writer are removed. tel may be nil.
func New(root string, maxBytes int64, tel *obs.Telemetry) (*Cache, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	c := &Cache{
		root:     root,
		maxBytes: maxBytes,
		ll:       list.New(),
		byName:   map[string]*list.Element{},
	}
	if tel != nil {
		c.hits = tel.Counter("service_disk_cache_hits_total")
		c.misses = tel.Counter("service_disk_cache_misses_total")
		c.writes = tel.Counter("service_disk_cache_writes_total")
		c.evictions = tel.Counter("service_disk_cache_evictions_total")
		c.errors = tel.Counter("service_disk_cache_errors_total")
		c.entries = tel.Gauge("service_disk_cache_entries")
		c.bytes = tel.Gauge("service_disk_cache_bytes")
	}
	if err := c.scan(); err != nil {
		return nil, err
	}
	return c, nil
}

// scan rebuilds the eviction index from the directory: blobs ordered by
// mtime (oldest = least recently used), crashed temp files removed.
func (c *Cache) scan() error {
	dirents, err := os.ReadDir(c.root)
	if err != nil {
		return err
	}
	type stat struct {
		name  string
		size  int64
		mtime time.Time
	}
	var stats []stat
	for _, de := range dirents {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		if filepath.Ext(name) != ".json" {
			// Crashed writers leave .tmp-* files; they are garbage.
			os.Remove(filepath.Join(c.root, name))
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		stats = append(stats, stat{name: name, size: info.Size(), mtime: info.ModTime()})
	}
	sort.Slice(stats, func(i, k int) bool { return stats[i].mtime.Before(stats[k].mtime) })
	for _, st := range stats {
		c.byName[st.name] = c.ll.PushFront(&entry{name: st.name, size: st.size})
		c.total += st.size
	}
	c.entries.Set(int64(c.ll.Len()))
	c.bytes.Set(c.total)
	c.evict()
	return nil
}

// filename addresses a key on disk: keys are opaque bytes (they embed
// NULs), so the file name is the hex SHA-256 of the key. Get recomputes
// it, so no reverse map is needed.
func filename(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + ".json"
}

// Get returns the blob stored for key. The file is read even when this
// process never indexed it (another node may have written it); a hit is
// indexed, touched most-recently-used, and its mtime refreshed so LRU
// order survives restarts.
func (c *Cache) Get(key string) ([]byte, bool) {
	name := filename(key)
	path := filepath.Join(c.root, name)
	c.mu.Lock()
	defer c.mu.Unlock()
	raw, err := os.ReadFile(path)
	if err != nil {
		if el, ok := c.byName[name]; ok {
			// Indexed but unreadable: evicted by a sibling process or
			// damaged — drop it from the index either way.
			c.removeLocked(el)
		}
		c.misses.Inc()
		return nil, false
	}
	c.touchLocked(name, int64(len(raw)))
	os.Chtimes(path, time.Now(), time.Now()) // best-effort persistent LRU
	c.hits.Inc()
	return raw, true
}

// Put atomically stores raw for key (temp file + rename) and evicts the
// least-recently-used blobs past the size budget. Errors are swallowed
// and counted: persistence is best-effort.
func (c *Cache) Put(key string, raw []byte) {
	name := filename(key)
	tmp, err := os.CreateTemp(c.root, ".tmp-*")
	if err != nil {
		c.errors.Inc()
		return
	}
	_, werr := tmp.Write(raw)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		c.errors.Inc()
		return
	}
	if err := os.Rename(tmp.Name(), filepath.Join(c.root, name)); err != nil {
		os.Remove(tmp.Name())
		c.errors.Inc()
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchLocked(name, int64(len(raw)))
	c.writes.Inc()
	c.evict()
}

// touchLocked indexes name at most-recently-used with the given size,
// adjusting the running total if the size changed.
func (c *Cache) touchLocked(name string, size int64) {
	if el, ok := c.byName[name]; ok {
		e := el.Value.(*entry)
		c.total += size - e.size
		e.size = size
		c.ll.MoveToFront(el)
	} else {
		c.byName[name] = c.ll.PushFront(&entry{name: name, size: size})
		c.total += size
	}
	c.entries.Set(int64(c.ll.Len()))
	c.bytes.Set(c.total)
}

// evict removes least-recently-used blobs until the total fits the
// budget, always keeping the most recent one. Caller holds mu.
func (c *Cache) evict() {
	if c.maxBytes <= 0 {
		return
	}
	for c.total > c.maxBytes && c.ll.Len() > 1 {
		el := c.ll.Back()
		os.Remove(filepath.Join(c.root, el.Value.(*entry).name))
		c.removeLocked(el)
		c.evictions.Inc()
	}
}

// removeLocked drops an index element and updates totals. Caller holds mu.
func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.byName, e.name)
	c.total -= e.size
	c.entries.Set(int64(c.ll.Len()))
	c.bytes.Set(c.total)
}

// Len reports the indexed blob count (tests and topology views).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes reports the indexed total size.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}
