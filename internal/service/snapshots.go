package service

import (
	"container/list"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/sim"
)

// The warm-start tier: a content-addressed store of boot snapshots keyed
// by sim.Params.SnapshotPrefix(), handed to every engine run the server
// executes. A miss costs nothing (the engine boots cold and captures);
// a hit skips the boot instructions entirely. Like the result cache it is
// a memory LRU over the optional persistent Store, and because the blob
// Store can be a shared disk directory, a snapshot captured by one node
// (or one fastd incarnation) warm-starts every other.
//
// Snapshots never change a Result — resumed runs are bit-identical by
// the engine contract — so this tier needs none of the result cache's
// correctness machinery; it only trades host time.

// snapshotKey namespaces warm-start artifacts inside the shared blob
// store, disjoint from result keys ("<engine>\x00<params key>") by the
// leading tag.
func snapshotKey(prefix string) string { return "snapshot\x00" + prefix }

// snapshotMemEntries bounds the memory tier: snapshots embed a sparse
// physical-memory image, so they are orders of magnitude bigger than
// result JSON and the LRU stays small.
const snapshotMemEntries = 8

// snapshotStore implements sim.SnapshotStore over the memory LRU +
// optional Store pair.
type snapshotStore struct {
	mu       sync.Mutex
	store    Store      // nil = memory only
	ll       *list.List // front = most recently used; values are sim.Snapshot
	byPrefix map[string]*list.Element

	hits     *obs.Counter
	misses   *obs.Counter
	bytes    *obs.Counter
	resumedI *obs.Counter
}

// NewSnapshotStore builds the warm-start tier for standalone use
// (fastsim -snapshot-dir): the same memory LRU over an optional blob
// Store the server runs, usable as sim.Params.Snapshots directly.
// tel may be nil.
func NewSnapshotStore(store Store, tel *obs.Telemetry) sim.SnapshotStore {
	if tel == nil {
		tel = obs.New()
	}
	return newSnapshotStore(store, tel)
}

func newSnapshotStore(store Store, tel *obs.Telemetry) *snapshotStore {
	return &snapshotStore{
		store:    store,
		ll:       list.New(),
		byPrefix: map[string]*list.Element{},
		hits:     tel.Counter("service_snapshot_hits_total"),
		misses:   tel.Counter("service_snapshot_misses_total"),
		bytes:    tel.Counter("service_snapshot_bytes_total"),
		resumedI: tel.Counter("service_snapshot_resumed_instructions_total"),
	}
}

// GetSnapshot resolves a prefix key: memory first, then the blob store
// (so snapshots written by other processes sharing the directory are
// found and promoted). A blob that no longer decodes is treated as
// absent — the run boots cold and its capture overwrites it.
func (c *snapshotStore) GetSnapshot(prefix string) (sim.Snapshot, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byPrefix[prefix]; ok {
		c.ll.MoveToFront(el)
		s := el.Value.(sim.Snapshot)
		c.hits.Inc()
		c.resumedI.Add(s.IN)
		return s, true
	}
	if c.store != nil {
		if raw, ok := c.store.Get(snapshotKey(prefix)); ok {
			if s, err := sim.DecodeSnapshot(raw); err == nil && s.Prefix == prefix {
				c.insertLocked(s)
				c.hits.Inc()
				c.resumedI.Add(s.IN)
				return s, true
			}
		}
	}
	c.misses.Inc()
	return sim.Snapshot{}, false
}

// PutSnapshot inserts a freshly captured snapshot and writes it through
// to the blob store. Determinism makes racing captures idempotent: any
// two runs of the prefix capture the identical blob.
func (c *snapshotStore) PutSnapshot(s sim.Snapshot) {
	c.mu.Lock()
	c.insertLocked(s)
	c.mu.Unlock()
	c.bytes.Add(uint64(len(s.Blob)))
	if c.store != nil {
		c.store.Put(snapshotKey(s.Prefix), s.Encode())
	}
}

func (c *snapshotStore) insertLocked(s sim.Snapshot) {
	if el, ok := c.byPrefix[s.Prefix]; ok {
		c.ll.MoveToFront(el)
		el.Value = s
		return
	}
	c.byPrefix[s.Prefix] = c.ll.PushFront(s)
	for c.ll.Len() > snapshotMemEntries {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.byPrefix, tail.Value.(sim.Snapshot).Prefix)
	}
}

// SnapshotView is one element of GET /v1/snapshots: the memory-resident
// warm-start index of this process (snapshots persisted by other nodes
// appear once a run here resolves them).
type SnapshotView struct {
	Prefix string `json:"prefix"`
	IN     uint64 `json:"instructions"`
	Bytes  int    `json:"bytes"`
}

// list snapshots the memory tier, most recently used first.
func (c *snapshotStore) list() []SnapshotView {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SnapshotView, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		s := el.Value.(sim.Snapshot)
		out = append(out, SnapshotView{Prefix: s.Prefix, IN: s.IN, Bytes: len(s.Blob)})
	}
	return out
}

// listSnapshots backs GET /v1/snapshots. Sorted by prefix for a stable
// wire shape: concurrent touches must not reorder the listing mid-scrape.
func (s *Server) listSnapshots() []SnapshotView {
	if s.snaps == nil {
		return []SnapshotView{}
	}
	views := s.snaps.list()
	sort.Slice(views, func(i, k int) bool { return views[i].Prefix < views[k].Prefix })
	return views
}
