package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/sim"
)

// Two test engines keep the lifecycle tests fast and deterministic without
// giving up the real submission path: "svc-stub" completes instantly with a
// result derived from its params (so spec-order aggregation is checkable),
// "svc-block" parks until the test opens the gate or the job deadline
// fires (so queue-full, timeout, cancel and drain states are reachable on
// demand). Both accept the same Params every real engine does, so the
// validation and cache layers treat them identically.
func init() {
	sim.Register("svc-stub", func() sim.Engine { return &stubEngine{} })
	sim.Register("svc-block", func() sim.Engine { return &blockEngine{} })
}

type stubEngine struct{ p sim.Params }

func (e *stubEngine) Describe() string             { return "test stub: result derived from params" }
func (e *stubEngine) Configure(p sim.Params) error { e.p = p; return nil }
func (e *stubEngine) Run() (sim.Result, error)     { return e.RunContext(context.Background()) }
func (e *stubEngine) RunContext(ctx context.Context) (sim.Result, error) {
	if err := ctx.Err(); err != nil {
		return sim.Result{}, err
	}
	return sim.Result{
		Engine:       "svc-stub",
		Workload:     e.p.Workload,
		Instructions: e.p.MaxInstructions,
		TargetCycles: 2 * e.p.MaxInstructions,
		IPC:          0.5,
	}, nil
}

// gate is the shared release signal for svc-block runs. Tests that use the
// blocking engine call resetGate first and must not run in parallel.
var gate = struct {
	sync.Mutex
	ch     chan struct{}
	closed bool
}{ch: make(chan struct{})}

func resetGate() {
	gate.Lock()
	gate.ch = make(chan struct{})
	gate.closed = false
	gate.Unlock()
}

func openGate() {
	gate.Lock()
	if !gate.closed {
		close(gate.ch)
		gate.closed = true
	}
	gate.Unlock()
}

func gateCh() chan struct{} {
	gate.Lock()
	defer gate.Unlock()
	return gate.ch
}

type blockEngine struct{ p sim.Params }

func (e *blockEngine) Describe() string             { return "test stub: blocks until released" }
func (e *blockEngine) Configure(p sim.Params) error { e.p = p; return nil }
func (e *blockEngine) Run() (sim.Result, error)     { return e.RunContext(context.Background()) }
func (e *blockEngine) RunContext(ctx context.Context) (sim.Result, error) {
	select {
	case <-ctx.Done():
		return sim.Result{}, ctx.Err()
	case <-gateCh():
		return sim.Result{Engine: "svc-block", Instructions: e.p.MaxInstructions}, nil
	}
}

// harness spins up a server + httptest listener and tears both down.
type harness struct {
	t   *testing.T
	srv *service.Server
	ts  *httptest.Server
	tel *obs.Telemetry
}

func newHarness(t *testing.T, cfg service.Config) *harness {
	t.Helper()
	if cfg.Telemetry == nil {
		cfg.Telemetry = obs.New()
	}
	srv := service.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	h := &harness{t: t, srv: srv, ts: ts, tel: cfg.Telemetry}
	t.Cleanup(func() {
		ts.Close()
		openGate() // never leave workers parked on the gate
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return h
}

func (h *harness) counter(name string) uint64 { return h.tel.Metrics.Counter(name).Value() }

// do issues a request and decodes the JSON body into a generic map.
func (h *harness) do(method, path string, body string) (int, map[string]any, http.Header) {
	h.t.Helper()
	req, err := http.NewRequest(method, h.ts.URL+path, strings.NewReader(body))
	if err != nil {
		h.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var m map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &m); err != nil {
			h.t.Fatalf("%s %s: non-JSON body %q", method, path, raw)
		}
	}
	return resp.StatusCode, m, resp.Header
}

// raw issues a request and returns the exact response bytes.
func (h *harness) raw(method, path, body string) (int, []byte) {
	h.t.Helper()
	req, err := http.NewRequest(method, h.ts.URL+path, strings.NewReader(body))
	if err != nil {
		h.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// submit posts a job and returns its id.
func (h *harness) submit(body string) string {
	h.t.Helper()
	code, m, _ := h.do("POST", "/v1/jobs", body)
	if code != http.StatusAccepted {
		h.t.Fatalf("submit %s: status %d, body %v", body, code, m)
	}
	return m["id"].(string)
}

// wait polls a job until it reaches a terminal state and returns its view.
func (h *harness) wait(id string) map[string]any {
	h.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, m, _ := h.do("GET", "/v1/jobs/"+id, "")
		if code != http.StatusOK {
			h.t.Fatalf("status %s: %d %v", id, code, m)
		}
		switch m["status"] {
		case "done", "failed", "canceled":
			return m
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.t.Fatalf("job %s never reached a terminal state", id)
	return nil
}

// waitStatus polls until a job reports the wanted (non-terminal) status.
func (h *harness) waitStatus(id, want string) {
	h.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		_, m, _ := h.do("GET", "/v1/jobs/"+id, "")
		if m["status"] == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.t.Fatalf("job %s never reached status %q", id, want)
}

// TestJobLifecycle walks the happy path end to end on the stub engine:
// accepted view → terminal status → result derived from the submitted
// params → per-job metrics endpoint.
func TestJobLifecycle(t *testing.T) {
	h := newHarness(t, service.Config{Workers: 2, QueueDepth: 8})
	id := h.submit(`{"engine":"svc-stub","params":{"workload":"164.gzip","max_instructions":777}}`)
	view := h.wait(id)
	if view["status"] != "done" || view["cached"] != false {
		t.Fatalf("view = %v", view)
	}
	code, res, _ := h.do("GET", "/v1/jobs/"+id+"/result", "")
	if code != http.StatusOK {
		t.Fatalf("result: %d %v", code, res)
	}
	if res["instructions"] != float64(777) || res["engine"] != "svc-stub" {
		t.Errorf("result = %v", res)
	}
	if code, _ := h.raw("GET", "/v1/jobs/"+id+"/metrics", ""); code != http.StatusOK {
		t.Errorf("per-job metrics: %d", code)
	}
	if code, _, _ := h.do("GET", "/v1/jobs/nope", ""); code != http.StatusNotFound {
		t.Errorf("missing job: %d", code)
	}
	if got := h.counter("service_jobs_submitted_total"); got != 1 {
		t.Errorf("service_jobs_submitted_total = %d", got)
	}
	if got := h.counter(obs.L("service_jobs_total", "status", "done")); got != 1 {
		t.Errorf("service_jobs_total{done} = %d", got)
	}
}

// TestCacheHitByteIdentical is the acceptance bar verbatim: the second of
// two identical submissions — here a real Figure-4-style point on the fast
// engine — is served from cache with byte-identical result JSON, a cache
// hit recorded and no second engine run.
func TestCacheHitByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled run")
	}
	h := newHarness(t, service.Config{Workers: 2, QueueDepth: 8})
	body := `{"engine":"fast","params":{"workload":"164.gzip","predictor":"gshare","max_instructions":3000}}`
	id1 := h.submit(body)
	if v := h.wait(id1); v["status"] != "done" {
		t.Fatalf("first run: %v", v)
	}
	// Spell the same simulation differently: explicit defaults must land on
	// the same content address.
	id2 := h.submit(`{"engine":"fast","params":{"workload":"164.gzip","predictor":"gshare","link":"drc","max_instructions":3000,"icache_entries":16}}`)
	v2 := h.wait(id2)
	if v2["status"] != "done" || v2["cached"] != true {
		t.Fatalf("second run should be a cache hit: %v", v2)
	}
	_, raw1 := h.raw("GET", "/v1/jobs/"+id1+"/result", "")
	_, raw2 := h.raw("GET", "/v1/jobs/"+id2+"/result", "")
	if !bytes.Equal(raw1, raw2) {
		t.Errorf("cached result not byte-identical:\n%s\n%s", raw1, raw2)
	}
	if hits := h.counter("service_cache_hits_total"); hits != 1 {
		t.Errorf("service_cache_hits_total = %d, want 1", hits)
	}
	if runs := h.counter("service_engine_runs_total"); runs != 1 {
		t.Errorf("service_engine_runs_total = %d, want 1 (hit must not simulate)", runs)
	}
	// The scrape surface carries the series.
	_, prom := h.raw("GET", "/metrics", "")
	if !strings.Contains(string(prom), "service_cache_hits_total 1") {
		t.Errorf("/metrics missing cache-hit series:\n%s", prom)
	}
}

// TestQueueFull429 pins the backpressure contract: with one worker parked
// and a one-slot queue occupied, the next submission bounces with 429 and
// a Retry-After hint, and previously accepted work still completes.
func TestQueueFull429(t *testing.T) {
	resetGate()
	h := newHarness(t, service.Config{Workers: 1, QueueDepth: 1})
	id1 := h.submit(`{"engine":"svc-block","params":{"workload":"164.gzip","max_instructions":1}}`)
	h.waitStatus(id1, "running")
	id2 := h.submit(`{"engine":"svc-block","params":{"workload":"164.gzip","max_instructions":2}}`)
	code, m, hdr := h.do("POST", "/v1/jobs", `{"engine":"svc-block","params":{"workload":"164.gzip","max_instructions":3}}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("third submission: %d %v", code, m)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After")
	}
	if got := h.counter(obs.L("service_jobs_rejected_total", "reason", "queue_full")); got != 1 {
		t.Errorf("rejected{queue_full} = %d", got)
	}
	openGate()
	if v := h.wait(id1); v["status"] != "done" {
		t.Errorf("job1: %v", v)
	}
	if v := h.wait(id2); v["status"] != "done" {
		t.Errorf("job2: %v", v)
	}
}

// TestJobTimeout checks the per-job deadline flows through RunContext: a
// parked engine is cancelled at timeout_ms and the job fails loudly.
func TestJobTimeout(t *testing.T) {
	resetGate()
	h := newHarness(t, service.Config{Workers: 1, QueueDepth: 4})
	id := h.submit(`{"engine":"svc-block","params":{"workload":"164.gzip"},"timeout_ms":50}`)
	v := h.wait(id)
	if v["status"] != "failed" || !strings.Contains(v["error"].(string), "deadline exceeded") {
		t.Fatalf("timed-out job: %v", v)
	}
	code, m, _ := h.do("GET", "/v1/jobs/"+id+"/result", "")
	if code != http.StatusConflict {
		t.Errorf("failed job result: %d %v", code, m)
	}
}

// TestJobCancel covers DELETE in both preemption windows: a running job is
// cancelled through its context, a queued job terminates without running.
func TestJobCancel(t *testing.T) {
	resetGate()
	h := newHarness(t, service.Config{Workers: 1, QueueDepth: 4})
	running := h.submit(`{"engine":"svc-block","params":{"workload":"164.gzip","max_instructions":10}}`)
	h.waitStatus(running, "running")
	queued := h.submit(`{"engine":"svc-block","params":{"workload":"164.gzip","max_instructions":20}}`)
	if code, m, _ := h.do("DELETE", "/v1/jobs/"+queued, ""); code != http.StatusOK || m["status"] != "canceled" {
		t.Fatalf("cancel queued: %d %v", code, m)
	}
	if code, _, _ := h.do("DELETE", "/v1/jobs/"+running, ""); code != http.StatusOK {
		t.Fatalf("cancel running: %d", code)
	}
	if v := h.wait(running); v["status"] != "canceled" {
		t.Errorf("running job after cancel: %v", v)
	}
	if code, _, _ := h.do("DELETE", "/v1/jobs/"+queued, ""); code != http.StatusConflict {
		t.Errorf("double cancel: %d", code)
	}
	// The engine run count proves the queued job never started.
	if runs := h.counter("service_engine_runs_total"); runs != 1 {
		t.Errorf("service_engine_runs_total = %d, want 1", runs)
	}
}

// TestGracefulDrain: Shutdown stops intake with 503, lets queued and
// in-flight jobs finish, and returns nil inside the drain budget.
func TestGracefulDrain(t *testing.T) {
	resetGate()
	h := newHarness(t, service.Config{Workers: 1, QueueDepth: 4})
	inflight := h.submit(`{"engine":"svc-block","params":{"workload":"164.gzip","max_instructions":1}}`)
	h.waitStatus(inflight, "running")
	queued := h.submit(`{"engine":"svc-block","params":{"workload":"164.gzip","max_instructions":2}}`)

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- h.srv.Shutdown(ctx)
	}()
	// Intake flips to draining before the workers finish.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _, _ := h.do("GET", "/healthz", "")
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never reported draining")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code, _, _ := h.do("POST", "/v1/jobs", `{"engine":"svc-stub","params":{"workload":"164.gzip"}}`); code != http.StatusServiceUnavailable {
		t.Fatalf("submission during drain: %d", code)
	}
	openGate()
	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if v := h.wait(inflight); v["status"] != "done" {
		t.Errorf("in-flight job after drain: %v", v)
	}
	if v := h.wait(queued); v["status"] != "done" {
		t.Errorf("queued job after drain: %v", v)
	}
}

// TestDrainDeadlineCancelsInFlight: when the drain budget expires the
// server cancels what is still running instead of hanging.
func TestDrainDeadlineCancelsInFlight(t *testing.T) {
	resetGate()
	h := newHarness(t, service.Config{Workers: 1, QueueDepth: 4})
	id := h.submit(`{"engine":"svc-block","params":{"workload":"164.gzip"}}`)
	h.waitStatus(id, "running")
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := h.srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	if v := h.wait(id); v["status"] != "canceled" {
		t.Errorf("in-flight job after forced drain: %v", v)
	}
}

// TestSweepSpecOrderUnder4Workers is the concurrency acceptance bar: a
// 64-point sweep against a 4-worker pool (exercised under `make race`)
// completes with results aggregated in spec order.
func TestSweepSpecOrderUnder4Workers(t *testing.T) {
	h := newHarness(t, service.Config{Workers: 4, QueueDepth: 128})
	var variants []string
	for i := 0; i < 64; i++ {
		variants = append(variants, fmt.Sprintf(`{"max_instructions":%d}`, 1000+i))
	}
	body := fmt.Sprintf(`{"sweep":{"engines":["svc-stub"],"workloads":["164.gzip"],"variants":[%s]}}`,
		strings.Join(variants, ","))
	code, m, _ := h.do("POST", "/v1/sweeps", body)
	if code != http.StatusAccepted {
		t.Fatalf("sweep submit: %d %v", code, m)
	}
	id := m["id"].(string)
	if m["total"] != float64(64) {
		t.Fatalf("sweep expanded to %v points", m["total"])
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, m, _ = h.do("GET", "/v1/sweeps/"+id, "")
		if code != http.StatusOK {
			t.Fatalf("sweep status: %d %v", code, m)
		}
		if m["status"] == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never finished: %v", m)
		}
		time.Sleep(2 * time.Millisecond)
	}
	code, res, _ := h.do("GET", "/v1/sweeps/"+id+"/result", "")
	if code != http.StatusOK {
		t.Fatalf("sweep result: %d %v", code, res)
	}
	results := res["results"].([]any)
	if len(results) != 64 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		slot := r.(map[string]any)
		if slot["index"] != float64(i) {
			t.Errorf("slot %d has index %v", i, slot["index"])
		}
		if slot["error"] != nil && slot["error"] != "" {
			t.Errorf("slot %d failed: %v", i, slot["error"])
			continue
		}
		got := slot["result"].(map[string]any)
		if got["instructions"] != float64(1000+i) {
			t.Errorf("slot %d: instructions %v, want %d (spec-order aggregation broken)", i, got["instructions"], 1000+i)
		}
	}
	if got := h.counter("service_sweeps_total"); got != 1 {
		t.Errorf("service_sweeps_total = %d", got)
	}
}

// TestConcurrentSubmissions fires 64 independent client submissions at a
// 4-worker pool and checks every one completes with its own result.
func TestConcurrentSubmissions(t *testing.T) {
	h := newHarness(t, service.Config{Workers: 4, QueueDepth: 128})
	ids := make([]string, 64)
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"engine":"svc-stub","params":{"workload":"164.gzip","max_instructions":%d}}`, 5000+i)
			req, _ := http.NewRequest("POST", h.ts.URL+"/v1/jobs", strings.NewReader(body))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var m map[string]any
			json.NewDecoder(resp.Body).Decode(&m)
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("submission %d: %d %v", i, resp.StatusCode, m)
				return
			}
			ids[i] = m["id"].(string)
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i, id := range ids {
		v := h.wait(id)
		if v["status"] != "done" {
			t.Errorf("job %d (%s): %v", i, id, v)
			continue
		}
		_, res, _ := h.do("GET", "/v1/jobs/"+id+"/result", "")
		if res["instructions"] != float64(5000+i) {
			t.Errorf("job %d: instructions %v, want %d", i, res["instructions"], 5000+i)
		}
	}
}

// TestSweepAdmissionAtomic: a sweep that does not fit in the queue's free
// space is rejected whole — no child jobs leak into the queue.
func TestSweepAdmissionAtomic(t *testing.T) {
	resetGate()
	h := newHarness(t, service.Config{Workers: 1, QueueDepth: 2})
	id := h.submit(`{"engine":"svc-block","params":{"workload":"164.gzip","max_instructions":1}}`)
	h.waitStatus(id, "running")
	body := `{"sweep":{"engines":["svc-block"],"workloads":["164.gzip"],"variants":[{"max_instructions":11},{"max_instructions":12},{"max_instructions":13}]}}`
	code, m, hdr := h.do("POST", "/v1/sweeps", body)
	if code != http.StatusTooManyRequests {
		t.Fatalf("oversized sweep: %d %v", code, m)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After")
	}
	// The queue is untouched: a 2-point sweep still fits.
	body2 := `{"sweep":{"engines":["svc-stub"],"workloads":["164.gzip"],"variants":[{"max_instructions":21},{"max_instructions":22}]}}`
	if code, m, _ := h.do("POST", "/v1/sweeps", body2); code != http.StatusAccepted {
		t.Fatalf("follow-up sweep: %d %v", code, m)
	}
	openGate()
}

// TestRejectUnknownFields pins strictness at every decode layer of the API.
func TestRejectUnknownFields(t *testing.T) {
	h := newHarness(t, service.Config{Workers: 1, QueueDepth: 4})
	for name, body := range map[string]string{
		"top-level typo":   `{"enigne":"fast","params":{}}`,
		"params typo":      `{"engine":"fast","params":{"warkload":"164.gzip"}}`,
		"unknown engine":   `{"engine":"hasim","params":{}}`,
		"unknown workload": `{"engine":"fast","params":{"workload":"no-such-app"}}`,
		"bad rollback":     `{"engine":"fast","params":{"rollback":"undo-log"}}`,
		"trailing garbage": `{"engine":"fast","params":{}} x`,
		"params trailing":  `{"engine":"fast","params":{"bpp":true} }x`,
	} {
		if code, m, _ := h.do("POST", "/v1/jobs", body); code != http.StatusBadRequest {
			t.Errorf("%s: %d %v", name, code, m)
		}
	}
	if code, m, _ := h.do("POST", "/v1/sweeps", `{"sweep":{"base":{"warkload":"x"}}}`); code != http.StatusBadRequest {
		t.Errorf("sweep nested typo: %d %v", code, m)
	}
}

// TestEnginesEndpoint: the registry (including the test stubs) is listed.
func TestEnginesEndpoint(t *testing.T) {
	h := newHarness(t, service.Config{Workers: 1, QueueDepth: 1})
	code, body := h.raw("GET", "/v1/engines", "")
	if code != http.StatusOK {
		t.Fatalf("engines: %d", code)
	}
	var engines []map[string]any
	if err := json.Unmarshal(body, &engines); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range engines {
		names[e["name"].(string)] = true
	}
	for _, want := range []string{"fast", "fast-parallel", "monolithic", "gems", "lockstep", "fsbcache"} {
		if !names[want] {
			t.Errorf("engine %q missing from /v1/engines", want)
		}
	}
}

// TestWorkloadsEndpoint: the workload registry — boot, SPEC-alike, SMP and
// the toyFS server workloads — is discoverable over the API with
// non-empty descriptions.
func TestWorkloadsEndpoint(t *testing.T) {
	h := newHarness(t, service.Config{Workers: 1, QueueDepth: 1})
	code, body := h.raw("GET", "/v1/workloads", "")
	if code != http.StatusOK {
		t.Fatalf("workloads: %d", code)
	}
	var views []map[string]any
	if err := json.Unmarshal(body, &views); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, v := range views {
		name := v["name"].(string)
		names[name] = true
		if v["description"].(string) == "" {
			t.Errorf("workload %q has no description", name)
		}
	}
	for _, want := range []string{"Linux-2.4", "164.gzip", "smp-lock", "shell-fork", "logwrite", "nicserv"} {
		if !names[want] {
			t.Errorf("workload %q missing from /v1/workloads", want)
		}
	}
}
