package service

import (
	"container/list"
	"sync"

	"repro/internal/obs"
	"repro/internal/sim"
)

// resultCache is the content-addressed LRU of completed runs. Keys are
// "<engine>\x00<Params.Key()>" (see jobKey): runs are deterministic, so a
// key fully addresses both the sim.Result and its canonical JSON encoding,
// and a hit is served without simulating.
//
// Entries hold the Result value plus the JSON bytes marshaled once at run
// completion. Both are immutable from the cache's point of view: get hands
// out Result.Clone() (a deep copy by construction) and the shared raw bytes,
// which every caller only ever writes to a response — never mutates.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element

	hits    *obs.Counter
	misses  *obs.Counter
	entries *obs.Gauge
}

type cacheEntry struct {
	key    string
	result sim.Result
	raw    []byte // canonical JSON of result; read-only after insertion
}

// newResultCache builds a cache holding up to max completed results
// (max <= 0 disables caching: every get misses, every put is dropped).
func newResultCache(max int, tel *obs.Telemetry) *resultCache {
	return &resultCache{
		max:     max,
		ll:      list.New(),
		byKey:   map[string]*list.Element{},
		hits:    tel.Counter("service_cache_hits_total"),
		misses:  tel.Counter("service_cache_misses_total"),
		entries: tel.Gauge("service_cache_entries"),
	}
}

// get returns an independent copy of the cached result and its canonical
// JSON bytes, marking the entry most-recently-used.
func (c *resultCache) get(key string) (sim.Result, []byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses.Inc()
		return sim.Result{}, nil, false
	}
	c.hits.Inc()
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.result.Clone(), e.raw, true
}

// put inserts (or refreshes) a completed result, evicting from the LRU tail
// past capacity. Deterministic runs make refreshes idempotent: a racing
// duplicate run computes the identical result, so last-writer-wins is safe.
func (c *resultCache) put(key string, r sim.Result, raw []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).result = r.Clone()
		el.Value.(*cacheEntry).raw = raw
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, result: r.Clone(), raw: raw})
	for c.ll.Len() > c.max {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.byKey, tail.Value.(*cacheEntry).key)
	}
	c.entries.Set(int64(c.ll.Len()))
}

// len reports the resident entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
