package service

import (
	"container/list"
	"encoding/json"
	"sync"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Store is the persistence interface behind the in-memory result LRU: a
// content-addressed blob store of canonical result JSON. Puts are
// write-through and best-effort (the authoritative copy is the completed
// run in memory; a store that drops a blob only costs a future re-run);
// Gets back memory misses and their hits are promoted into the LRU.
//
// Implementations must be safe for concurrent use and must return the
// exact bytes previously Put for the key — the byte-identical-replay
// contract of the cache rides on it. internal/service/diskcache is the
// disk implementation; a shared directory makes it a cluster-wide store.
type Store interface {
	Get(key string) ([]byte, bool)
	Put(key string, raw []byte)
}

// resultCache is the content-addressed cache of completed runs: a memory
// LRU over an optional persistent Store. Keys are
// "<engine>\x00<Params.Key()>" (see jobKey): runs are deterministic, so a
// key fully addresses both the sim.Result and its canonical JSON encoding,
// and a hit is served without simulating.
//
// Entries hold the Result value plus the JSON bytes marshaled once at run
// completion. Both are immutable from the cache's point of view: get hands
// out Result.Clone() (a deep copy by construction) and the shared raw bytes,
// which every caller only ever writes to a response — never mutates.
type resultCache struct {
	mu    sync.Mutex
	max   int
	store Store      // nil = memory only
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element

	hits     *obs.Counter
	diskHits *obs.Counter
	misses   *obs.Counter
	entries  *obs.Gauge
}

type cacheEntry struct {
	key    string
	result sim.Result
	raw    []byte // canonical JSON of result; read-only after insertion
}

// newResultCache builds a cache holding up to max completed results in
// memory (max <= 0 disables the memory tier) over an optional Store.
func newResultCache(max int, store Store, tel *obs.Telemetry) *resultCache {
	return &resultCache{
		max:      max,
		store:    store,
		ll:       list.New(),
		byKey:    map[string]*list.Element{},
		hits:     tel.Counter("service_cache_hits_total"),
		diskHits: tel.Counter("service_cache_store_hits_total"),
		misses:   tel.Counter("service_cache_misses_total"),
		entries:  tel.Gauge("service_cache_entries"),
	}
}

// get returns an independent copy of the cached result and its canonical
// JSON bytes, marking the entry most-recently-used. A memory miss falls
// back to the Store; a store hit is decoded, promoted into the memory LRU
// and counted as both a hit and a store hit.
func (c *resultCache) get(key string) (sim.Result, []byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.hits.Inc()
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		return e.result.Clone(), e.raw, true
	}
	if c.store != nil {
		if raw, ok := c.store.Get(key); ok {
			var r sim.Result
			if err := json.Unmarshal(raw, &r); err == nil {
				c.hits.Inc()
				c.diskHits.Inc()
				c.insertLocked(key, r, raw)
				return r.Clone(), raw, true
			}
			// A blob that no longer decodes is treated as absent; the run
			// recomputes and the put overwrites it.
		}
	}
	c.misses.Inc()
	return sim.Result{}, nil, false
}

// put inserts (or refreshes) a completed result, evicting from the LRU tail
// past capacity, and writes through to the Store. Deterministic runs make
// refreshes idempotent: a racing duplicate run computes the identical
// result, so last-writer-wins is safe.
func (c *resultCache) put(key string, r sim.Result, raw []byte) {
	c.mu.Lock()
	c.insertLocked(key, r, raw)
	c.mu.Unlock()
	if c.store != nil {
		c.store.Put(key, raw)
	}
}

// insertLocked is the memory-tier insert shared by put and store-hit
// promotion. No-op when the memory tier is disabled.
func (c *resultCache) insertLocked(key string, r sim.Result, raw []byte) {
	if c.max <= 0 {
		return
	}
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).result = r.Clone()
		el.Value.(*cacheEntry).raw = raw
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, result: r.Clone(), raw: raw})
	for c.ll.Len() > c.max {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.byKey, tail.Value.(*cacheEntry).key)
	}
	c.entries.Set(int64(c.ll.Len()))
}

// len reports the memory-resident entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
