package service_test

import (
	"bytes"
	"net/http"
	"testing"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/service/diskcache"
)

// waitResult blocks until id is terminal and returns the exact result
// response bytes (framing included), for byte-identity assertions.
func (h *harness) waitResult(id string) []byte {
	h.t.Helper()
	h.wait(id)
	st, raw := h.raw("GET", "/v1/jobs/"+id+"/result", "")
	if st != http.StatusOK {
		h.t.Fatalf("result %s: %d %s", id, st, raw)
	}
	return raw
}

// TestDiskStoreRestartRoundTrip is the persistence acceptance test: a
// result computed before a server restart is served byte-identically after
// it, from disk, with zero engine runs.
func TestDiskStoreRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	body := `{"engine":"svc-stub","params":{"workload":"164.gzip","max_instructions":7777}}`

	// First server: compute and persist.
	store1, err := diskcache.New(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	h1 := newHarness(t, service.Config{Workers: 1, Store: store1})
	st, m, _ := h1.do("POST", "/v1/jobs", body)
	if st != http.StatusAccepted {
		t.Fatalf("submit: %d %v", st, m)
	}
	raw1 := h1.waitResult(m["id"].(string))
	if h1.counter("service_engine_runs_total") != 1 {
		t.Fatalf("first server engine runs = %d, want 1", h1.counter("service_engine_runs_total"))
	}

	// Second server: fresh process state, same directory. The submission
	// must resolve at admit time from the disk store — no engine run, no
	// queue slot — and return the exact bytes.
	tel2 := obs.New()
	store2, err := diskcache.New(dir, 0, tel2)
	if err != nil {
		t.Fatal(err)
	}
	h2 := newHarness(t, service.Config{Workers: 1, Store: store2, Telemetry: tel2})
	st, m, _ = h2.do("POST", "/v1/jobs", body)
	if st != http.StatusAccepted {
		t.Fatalf("resubmit: %d %v", st, m)
	}
	if m["cached"] != true || m["status"] != "done" {
		t.Fatalf("restart submission not served from store: %v", m)
	}
	raw2 := h2.waitResult(m["id"].(string))
	if !bytes.Equal(raw1, raw2) {
		t.Fatalf("restart result bytes differ:\n first %s\nsecond %s", raw1, raw2)
	}
	if runs := h2.counter("service_engine_runs_total"); runs != 0 {
		t.Fatalf("second server engine runs = %d, want 0", runs)
	}
	if hits := h2.counter("service_cache_store_hits_total"); hits != 1 {
		t.Fatalf("store hits = %d, want 1", hits)
	}
	if hits := h2.counter("service_cache_hits_total"); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}

	// Third submission on the same server: now memory-resident, the disk
	// tier is not consulted again.
	st, m, _ = h2.do("POST", "/v1/jobs", body)
	if st != http.StatusAccepted || m["cached"] != true {
		t.Fatalf("memory-tier resubmit: %d %v", st, m)
	}
	if hits := h2.counter("service_cache_store_hits_total"); hits != 1 {
		t.Fatalf("store hits after memory hit = %d, want still 1", hits)
	}
}
