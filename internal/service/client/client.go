// Package client is the typed Go client of the fastd /v1 API
// (internal/service): submit jobs and sweeps, wait for results, list and
// cancel work — context-aware throughout, with non-2xx responses decoded
// into *APIError (the service.ErrorBody envelope plus the HTTP status)
// and 429/503 backpressure honored via Retry-After with capped backoff.
//
// Everything that drives the API programmatically goes through this
// package: cmd/fastctl (the operator CLI), scripts/service_smoke.sh via
// fastctl, and internal/cluster — the coordinator speaks to its worker
// nodes with the same client an external user would, so the node RPC
// surface can never drift from the public one.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/service"
	"repro/internal/sim"
)

// Client talks to one fastd node (or coordinator). The zero value is not
// usable; build with New. Fields may be adjusted before first use.
type Client struct {
	base string
	// HTTP is the underlying transport client. Per-call deadlines come
	// from the caller's context, not a transport timeout.
	HTTP *http.Client
	// RetryMax bounds the automatic retries of a request answered 429 or
	// 503 with a Retry-After hint. 0 disables retrying.
	RetryMax int
	// RetryCap caps one backoff sleep regardless of the server's hint.
	RetryCap time.Duration
	// Poll is the status-poll interval of the Wait helpers.
	Poll time.Duration
}

// New builds a client for the node at base (e.g. "http://127.0.0.1:8080").
func New(base string) *Client {
	return &Client{
		base:     strings.TrimRight(base, "/"),
		HTTP:     &http.Client{},
		RetryMax: 4,
		RetryCap: 5 * time.Second,
		Poll:     25 * time.Millisecond,
	}
}

// Base returns the node URL this client targets.
func (c *Client) Base() string { return c.base }

// APIError is a non-2xx response: the service's ErrorBody envelope plus
// the HTTP status. Dispatch on Code (the service.Code* constants).
type APIError struct {
	Status        int    // HTTP status code
	Code          string // stable machine-readable code (service.Code*)
	Message       string
	RetryAfterSec int
}

func (e *APIError) Error() string {
	return fmt.Sprintf("%s (http %d): %s", e.Code, e.Status, e.Message)
}

// ErrorCode extracts the stable code from an error returned by this
// package ("" when err is not an *APIError).
func ErrorCode(err error) string {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Code
	}
	return ""
}

// do issues one request and decodes a 2xx JSON body into out (skipped when
// out is nil). Non-2xx bodies become *APIError; transport failures are
// returned as-is (the cluster coordinator dispatches on that difference:
// an APIError came from a live node, anything else means the node is gone).
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	raw, _, err := c.doRaw(ctx, method, path, body)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// doRaw issues one request and returns the exact 2xx body bytes and status
// code. Non-2xx responses become *APIError.
func (c *Client) doRaw(ctx context.Context, method, path string, body []byte) ([]byte, int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.StatusCode, err
	}
	if resp.StatusCode >= 400 {
		ae := &APIError{Status: resp.StatusCode, Code: service.CodeInternal, Message: strings.TrimSpace(string(raw))}
		var eb service.ErrorBody
		if json.Unmarshal(raw, &eb) == nil && eb.Code != "" {
			ae.Code, ae.Message, ae.RetryAfterSec = eb.Code, eb.Message, eb.RetryAfterSec
		}
		if ae.RetryAfterSec == 0 {
			if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
				ae.RetryAfterSec = s
			}
		}
		return nil, resp.StatusCode, ae
	}
	return raw, resp.StatusCode, nil
}

// doRetry wraps do with the backpressure contract: a 429/503 APIError is
// retried up to RetryMax times, sleeping the server's Retry-After hint
// capped at RetryCap (1s when the server gave none), context-aware.
func (c *Client) doRetry(ctx context.Context, method, path string, body []byte, out any) error {
	for attempt := 0; ; attempt++ {
		err := c.do(ctx, method, path, body, out)
		var ae *APIError
		if err == nil || attempt >= c.RetryMax ||
			!errors.As(err, &ae) || (ae.Status != 429 && ae.Status != 503) {
			return err
		}
		wait := time.Duration(ae.RetryAfterSec) * time.Second
		if wait <= 0 {
			wait = time.Second
		}
		if wait > c.RetryCap {
			wait = c.RetryCap
		}
		if err := sleep(ctx, wait); err != nil {
			return err
		}
	}
}

func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// SubmitJob submits params (a strict sim.Params JSON overlay, e.g.
// {"workload":"164.gzip"}) to engine. timeout <= 0 uses the server's
// default deadline. 429/503 are retried per the client's backoff policy.
func (c *Client) SubmitJob(ctx context.Context, engine string, params json.RawMessage, timeout time.Duration) (service.JobView, error) {
	if len(params) == 0 {
		params = json.RawMessage(`{}`)
	}
	body, err := json.Marshal(service.JobRequest{Engine: engine, Params: params, TimeoutMS: timeout.Milliseconds()})
	if err != nil {
		return service.JobView{}, err
	}
	var v service.JobView
	return v, c.doRetry(ctx, "POST", "/v1/jobs", body, &v)
}

// SubmitParams is SubmitJob for an already-typed sim.Params.
func (c *Client) SubmitParams(ctx context.Context, engine string, p sim.Params, timeout time.Duration) (service.JobView, error) {
	raw, err := json.Marshal(p)
	if err != nil {
		return service.JobView{}, err
	}
	return c.SubmitJob(ctx, engine, raw, timeout)
}

// Job fetches one job view.
func (c *Client) Job(ctx context.Context, id string) (service.JobView, error) {
	var v service.JobView
	return v, c.do(ctx, "GET", "/v1/jobs/"+url.PathEscape(id), nil, &v)
}

// Cancel cancels a job (queued → terminal immediately, running → engine
// context cancelled). A terminal job answers conflict.
func (c *Client) Cancel(ctx context.Context, id string) (service.JobView, error) {
	var v service.JobView
	return v, c.do(ctx, "DELETE", "/v1/jobs/"+url.PathEscape(id), nil, &v)
}

// JobResult fetches a job's canonical result bytes. ok=false with a nil
// error means the job is still pending (202). A failed or canceled job
// returns a conflict *APIError. The returned bytes are the node's exact
// marshaled result (trailing newline framing removed).
func (c *Client) JobResult(ctx context.Context, id string) (json.RawMessage, bool, error) {
	raw, status, err := c.doRaw(ctx, "GET", "/v1/jobs/"+url.PathEscape(id)+"/result", nil)
	if err != nil {
		return nil, false, err
	}
	if status == http.StatusAccepted {
		return nil, false, nil
	}
	return bytes.TrimSuffix(raw, []byte("\n")), true, nil
}

// WaitResult polls until the job is terminal and returns its canonical
// result bytes. A failed or canceled job surfaces as the server's
// conflict *APIError; ctx bounds the wait.
func (c *Client) WaitResult(ctx context.Context, id string) (json.RawMessage, error) {
	for {
		raw, ok, err := c.JobResult(ctx, id)
		if err != nil {
			return nil, err
		}
		if ok {
			return raw, nil
		}
		if err := sleep(ctx, c.Poll); err != nil {
			return nil, err
		}
	}
}

// SubmitSweep submits a typed sweep spec. 429/503 are retried per the
// backoff policy — sweep admission is all-or-nothing server-side, so a
// retry never duplicates points.
func (c *Client) SubmitSweep(ctx context.Context, spec sim.Sweep, timeout time.Duration) (service.SweepView, error) {
	body, err := json.Marshal(service.SweepRequest{Sweep: spec, TimeoutMS: timeout.Milliseconds()})
	if err != nil {
		return service.SweepView{}, err
	}
	var v service.SweepView
	return v, c.doRetry(ctx, "POST", "/v1/sweeps", body, &v)
}

// SubmitSweepRaw submits a raw sweep spec (the JSON object that would sit
// under "sweep" in the request body), preserving the caller's bytes.
func (c *Client) SubmitSweepRaw(ctx context.Context, spec json.RawMessage, timeout time.Duration) (service.SweepView, error) {
	body, err := json.Marshal(struct {
		Sweep     json.RawMessage `json:"sweep"`
		TimeoutMS int64           `json:"timeout_ms,omitempty"`
	}{Sweep: spec, TimeoutMS: timeout.Milliseconds()})
	if err != nil {
		return service.SweepView{}, err
	}
	var v service.SweepView
	return v, c.doRetry(ctx, "POST", "/v1/sweeps", body, &v)
}

// Sweep fetches one sweep view.
func (c *Client) Sweep(ctx context.Context, id string) (service.SweepView, error) {
	var v service.SweepView
	return v, c.do(ctx, "GET", "/v1/sweeps/"+url.PathEscape(id), nil, &v)
}

// SweepResult fetches the spec-order aggregation. ok=false with a nil
// error means some child is still pending (202). raw carries the exact
// aggregation bytes (newline framing removed) for byte-identical
// comparisons; the decoded form is returned alongside.
func (c *Client) SweepResult(ctx context.Context, id string) (service.SweepResults, json.RawMessage, bool, error) {
	raw, status, err := c.doRaw(ctx, "GET", "/v1/sweeps/"+url.PathEscape(id)+"/result", nil)
	if err != nil {
		return service.SweepResults{}, nil, false, err
	}
	if status == http.StatusAccepted {
		return service.SweepResults{}, nil, false, nil
	}
	var out service.SweepResults
	if err := json.Unmarshal(raw, &out); err != nil {
		return service.SweepResults{}, nil, false, err
	}
	return out, bytes.TrimSuffix(raw, []byte("\n")), true, nil
}

// WaitSweepResult polls until every child of the sweep is terminal and
// returns the spec-order aggregation (decoded and exact bytes).
func (c *Client) WaitSweepResult(ctx context.Context, id string) (service.SweepResults, json.RawMessage, error) {
	for {
		out, raw, ok, err := c.SweepResult(ctx, id)
		if err != nil {
			return service.SweepResults{}, nil, err
		}
		if ok {
			return out, raw, nil
		}
		if err := sleep(ctx, c.Poll); err != nil {
			return service.SweepResults{}, nil, err
		}
	}
}

// listPath assembles a collection URL from the shared pagination triple.
func listPath(base, status string, limit int, after string) string {
	q := url.Values{}
	if status != "" {
		q.Set("status", status)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if after != "" {
		q.Set("after", after)
	}
	if enc := q.Encode(); enc != "" {
		return base + "?" + enc
	}
	return base
}

// ListJobs fetches one page of jobs, newest first. Page with
// after = the previous page's NextAfter until it comes back empty.
func (c *Client) ListJobs(ctx context.Context, status string, limit int, after string) (service.JobList, error) {
	var v service.JobList
	return v, c.do(ctx, "GET", listPath("/v1/jobs", status, limit, after), nil, &v)
}

// ListSweeps fetches one page of sweeps, newest first.
func (c *Client) ListSweeps(ctx context.Context, status string, limit int, after string) (service.SweepList, error) {
	var v service.SweepList
	return v, c.do(ctx, "GET", listPath("/v1/sweeps", status, limit, after), nil, &v)
}

// Engines lists the node's engine registry.
func (c *Client) Engines(ctx context.Context) ([]service.EngineView, error) {
	var v []service.EngineView
	return v, c.do(ctx, "GET", "/v1/engines", nil, &v)
}

// Workloads lists the server's workload registry (names a job's
// params.workload may name, with descriptions).
func (c *Client) Workloads(ctx context.Context) ([]service.WorkloadView, error) {
	var v []service.WorkloadView
	return v, c.do(ctx, "GET", "/v1/workloads", nil, &v)
}

// Health probes /healthz. A draining node answers 503 — that still counts
// as alive, so the 503 envelope is folded into the view rather than
// returned as an error; only transport failures error.
func (c *Client) Health(ctx context.Context) (service.Health, error) {
	raw, _, err := c.doRaw(ctx, "GET", "/healthz", nil)
	var ae *APIError
	if errors.As(err, &ae) {
		// Draining nodes answer 503 with the health body, not an envelope.
		raw, err = []byte(ae.Message), nil
	}
	if err != nil {
		return service.Health{}, err
	}
	var h service.Health
	if jerr := json.Unmarshal(raw, &h); jerr != nil || h.Status == "" {
		return service.Health{}, fmt.Errorf("malformed health body %q", raw)
	}
	return h, nil
}

// Snapshots lists the node's memory-resident warm-start snapshots.
func (c *Client) Snapshots(ctx context.Context) ([]service.SnapshotView, error) {
	var v []service.SnapshotView
	return v, c.do(ctx, "GET", "/v1/snapshots", nil, &v)
}

// Metrics fetches the node's Prometheus dump.
func (c *Client) Metrics(ctx context.Context) ([]byte, error) {
	raw, _, err := c.doRaw(ctx, "GET", "/metrics", nil)
	return raw, err
}

// ClusterView fetches GET /v1/cluster (coordinator nodes only) as raw
// JSON; the shape is internal/cluster.View, left undecoded here to keep
// this package independent of the coordinator.
func (c *Client) ClusterView(ctx context.Context) (json.RawMessage, error) {
	raw, _, err := c.doRaw(ctx, "GET", "/v1/cluster", nil)
	return raw, err
}
