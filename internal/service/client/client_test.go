package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// stubServer answers each request with the next scripted (status, body)
// pair, repeating the last one forever.
type stubServer struct {
	t       *testing.T
	calls   atomic.Int64
	replies []reply
}

type reply struct {
	status int
	body   string
	header map[string]string
}

func (s *stubServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	i := int(s.calls.Add(1)) - 1
	if i >= len(s.replies) {
		i = len(s.replies) - 1
	}
	rp := s.replies[i]
	for k, v := range rp.header {
		w.Header().Set(k, v)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(rp.status)
	w.Write([]byte(rp.body))
}

func newStub(t *testing.T, replies ...reply) (*stubServer, *Client) {
	t.Helper()
	s := &stubServer{t: t, replies: replies}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	c := New(ts.URL)
	c.RetryCap = 5 * time.Millisecond // keep backoff test-speed
	c.Poll = time.Millisecond
	return s, c
}

// TestAPIErrorDecoding: a non-2xx envelope becomes a typed *APIError with
// the stable code, and ErrorCode extracts it.
func TestAPIErrorDecoding(t *testing.T) {
	_, c := newStub(t, reply{status: 404, body: `{"code":"not_found","message":"no job \"job-9\""}`})
	c.RetryMax = 0
	_, err := c.Job(context.Background(), "job-9")
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if ae.Status != 404 || ae.Code != service.CodeNotFound {
		t.Fatalf("APIError = %+v", ae)
	}
	if ErrorCode(err) != service.CodeNotFound {
		t.Fatalf("ErrorCode = %q", ErrorCode(err))
	}
	if ErrorCode(errors.New("plain")) != "" {
		t.Fatal("ErrorCode on non-APIError should be empty")
	}
}

// TestRetryBackpressure: 429 responses are retried up to RetryMax, honoring
// retry_after_sec capped at RetryCap, then succeed.
func TestRetryBackpressure(t *testing.T) {
	full := reply{status: 429, body: `{"code":"queue_full","message":"full","retry_after_sec":1}`}
	ok := reply{status: 202, body: `{"id":"job-000001","engine":"fast","status":"queued","submitted_at":"2026-01-01T00:00:00Z","started_at":"0001-01-01T00:00:00Z","finished_at":"0001-01-01T00:00:00Z"}`}
	s, c := newStub(t, full, full, ok)
	c.RetryMax = 4

	start := time.Now()
	v, err := c.SubmitJob(context.Background(), "fast", nil, 0)
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if v.ID != "job-000001" {
		t.Fatalf("view = %+v", v)
	}
	if got := s.calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 rejections + success)", got)
	}
	// Two backoffs, each capped at RetryCap=5ms despite the 1s hint.
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("backoff ignored RetryCap: took %s", el)
	}
}

// TestRetryExhaustion: RetryMax bounds the attempts and the final error is
// the server's envelope.
func TestRetryExhaustion(t *testing.T) {
	full := reply{status: 429, body: `{"code":"queue_full","message":"full","retry_after_sec":0}`}
	s, c := newStub(t, full)
	c.RetryMax = 2
	c.RetryCap = time.Millisecond
	_, err := c.SubmitJob(context.Background(), "fast", nil, 0)
	if ErrorCode(err) != service.CodeQueueFull {
		t.Fatalf("err = %v, want queue_full", err)
	}
	if got := s.calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (initial + 2 retries)", got)
	}
}

// TestNoRetryOn400: client errors are not retried.
func TestNoRetryOn400(t *testing.T) {
	s, c := newStub(t, reply{status: 400, body: `{"code":"bad_params","message":"nope"}`})
	c.RetryMax = 4
	_, err := c.SubmitJob(context.Background(), "fast", nil, 0)
	if ErrorCode(err) != service.CodeBadParams {
		t.Fatalf("err = %v", err)
	}
	if got := s.calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retry on 400)", got)
	}
}

// TestRetryAfterHeaderFallback: a 503 with only a Retry-After header (no
// envelope field) still carries the hint.
func TestRetryAfterHeaderFallback(t *testing.T) {
	_, c := newStub(t, reply{
		status: 503,
		body:   `{"code":"draining","message":"server is draining"}`,
		header: map[string]string{"Retry-After": "7"},
	})
	c.RetryMax = 0
	_, jerr := c.Job(context.Background(), "job-1")
	var ae *APIError
	if !errors.As(jerr, &ae) {
		t.Fatalf("err = %v", jerr)
	}
	if ae.RetryAfterSec != 7 {
		t.Fatalf("RetryAfterSec = %d, want 7 (from header)", ae.RetryAfterSec)
	}
}

// TestWaitResult: 202 polls until the 200 arrives; the newline framing is
// trimmed so callers hold the canonical bytes.
func TestWaitResult(t *testing.T) {
	pending := reply{status: 202, body: `{"id":"job-000001","status":"running"}`}
	done := reply{status: 200, body: `{"engine":"fast","ipc":0.5}` + "\n"}
	s, c := newStub(t, pending, pending, done)
	raw, err := c.WaitResult(context.Background(), "job-000001")
	if err != nil {
		t.Fatalf("WaitResult: %v", err)
	}
	if string(raw) != `{"engine":"fast","ipc":0.5}` {
		t.Fatalf("raw = %q", raw)
	}
	if got := s.calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

// TestWaitResultConflict: a job that terminates failed/canceled surfaces
// as the server's conflict error, not a hang.
func TestWaitResultConflict(t *testing.T) {
	_, c := newStub(t,
		reply{status: 202, body: `{"id":"job-000001","status":"running"}`},
		reply{status: 409, body: `{"code":"conflict","message":"job job-000001 failed: boom"}`},
	)
	_, err := c.WaitResult(context.Background(), "job-000001")
	if ErrorCode(err) != service.CodeConflict {
		t.Fatalf("err = %v, want conflict", err)
	}
}

// TestWaitContextCancel: the waits are context-bounded.
func TestWaitContextCancel(t *testing.T) {
	_, c := newStub(t, reply{status: 202, body: `{"id":"job-000001","status":"running"}`})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := c.WaitResult(ctx, "job-000001")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

// TestHealthDraining: a draining node's 503 health body is folded into the
// view instead of surfacing as an error.
func TestHealthDraining(t *testing.T) {
	_, c := newStub(t, reply{status: 503, body: `{"status":"draining","queue_depth":3}` + "\n"})
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if h.Status != "draining" || h.QueueDepth != 3 {
		t.Fatalf("health = %+v", h)
	}
}

// TestSubmitSweepRawPreservesSpec: the raw spec bytes pass through without
// re-marshaling.
func TestSubmitSweepRawPreservesSpec(t *testing.T) {
	var seen json.RawMessage
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Sweep json.RawMessage `json:"sweep"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		seen = req.Sweep
		w.WriteHeader(202)
		w.Write([]byte(`{"id":"sweep-000001","status":"running"}`))
	}))
	t.Cleanup(ts.Close)
	c := New(ts.URL)
	spec := json.RawMessage(`{"engines":["fast"],"base":{"workload":"164.gzip"}}`)
	if _, err := c.SubmitSweepRaw(context.Background(), spec, 0); err != nil {
		t.Fatal(err)
	}
	if string(seen) != string(spec) {
		t.Fatalf("server saw %s, want %s", seen, spec)
	}
}
