package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Job states. A job is terminal in done, failed or canceled; cached jobs
// are born terminal (done with Cached=true) and never occupy a queue slot.
// Exported: the typed client and the cluster coordinator dispatch on them.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

// Terminal reports whether status is a resting state (done, failed or
// canceled) from which a job never moves again.
func Terminal(status string) bool {
	switch status {
	case StatusDone, StatusFailed, StatusCanceled:
		return true
	}
	return false
}

// KnownStatus reports whether status names a job state at all — the guard
// behind the ?status= list filter.
func KnownStatus(status string) bool {
	switch status {
	case StatusQueued, StatusRunning, StatusDone, StatusFailed, StatusCanceled:
		return true
	}
	return false
}

// job is one accepted simulation. Mutable fields are guarded by the
// server's mu; done closes exactly once, at the terminal transition, so
// waiters can block without polling.
type job struct {
	id      string
	seq     uint64 // admission order; the pagination cursor
	engine  string
	params  sim.Params
	key     string // content address ("" when uncacheable); see jobKey
	timeout time.Duration

	tel *obs.Telemetry // per-job registry, served at /v1/jobs/{id}/metrics

	status    string
	cached    bool
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc // non-nil while running
	result    sim.Result
	raw       []byte // canonical result JSON; read-only once set
	errMsg    string

	done chan struct{}
}

// jobKey combines the engine name with the Params content address into the
// cache key. Engines model different cost structures over the same target,
// so the same Params under two engines are two different results. The
// cluster coordinator uses the same key as its shard address, so a point
// always lands on the node whose cache can already hold it.
func jobKey(engine string, p sim.Params) string {
	if !p.Cacheable() {
		return ""
	}
	return engine + "\x00" + p.Key()
}

// JobKey is jobKey for external callers (the cluster coordinator shards on
// it). Empty means the params are not content-addressable.
func JobKey(engine string, p sim.Params) string { return jobKey(engine, p) }

// JobView is the stable JSON shape of GET /v1/jobs/{id} and the elements
// of GET /v1/jobs.
type JobView struct {
	ID          string    `json:"id"`
	Engine      string    `json:"engine"`
	Status      string    `json:"status"`
	Cached      bool      `json:"cached"`
	Key         string    `json:"key,omitempty"`
	Error       string    `json:"error,omitempty"`
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at"`  // zero until the job leaves the queue
	FinishedAt  time.Time `json:"finished_at"` // zero until the job is terminal
}

// view snapshots a job under the server lock.
func (s *Server) view(j *job) JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.viewLocked(j)
}

func (s *Server) viewLocked(j *job) JobView {
	return JobView{
		ID:          j.id,
		Engine:      j.engine,
		Status:      j.status,
		Cached:      j.cached,
		Key:         j.key,
		Error:       j.errMsg,
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
	}
}

// submitJob validates, resolves the cache, and either completes the job
// instantly (hit) or enqueues it (miss). The whole step holds mu, so a
// sweep's batch of submissions is atomic with respect to draining and
// queue capacity.
func (s *Server) submitJob(engine string, p sim.Params, timeout time.Duration) (*job, error) {
	if !sim.Registered(engine) {
		s.rejected("invalid").Inc()
		return nil, &httpError{status: 400, code: CodeUnknownEngine,
			msg: fmt.Sprintf("unknown engine %q (registered: %v)", engine, sim.Names())}
	}
	if err := p.Validate(); err != nil {
		s.rejected("invalid").Inc()
		return nil, &httpError{status: 400, code: CodeBadParams, msg: err.Error()}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j, err := s.admitLocked(engine, p, timeout)
	if err != nil {
		return nil, err
	}
	return j, nil
}

// admitLocked is the mu-held core of submission, shared by single jobs and
// sweep fan-out. It never blocks: a full queue is a 429, not a wait.
func (s *Server) admitLocked(engine string, p sim.Params, timeout time.Duration) (*job, error) {
	if s.draining {
		s.rejected("draining").Inc()
		return nil, &httpError{status: 503, code: CodeDraining, retryAfter: 10, msg: "server is draining"}
	}
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	s.seq++
	j := &job{
		id:        fmt.Sprintf("job-%06d", s.seq),
		seq:       s.seq,
		engine:    engine,
		params:    p,
		key:       jobKey(engine, p),
		timeout:   timeout,
		tel:       obs.New(),
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	if j.key != "" {
		if res, raw, ok := s.cache.get(j.key); ok {
			j.status = StatusDone
			j.cached = true
			j.result, j.raw = res, raw
			j.finished = j.submitted
			close(j.done)
			s.jobs[j.id] = j
			s.jobsSubmitted.Inc()
			s.jobsByStatus("cached").Inc()
			return j, nil
		}
	}
	j.status = StatusQueued
	select {
	case s.queue <- j:
	default:
		s.rejected("queue_full").Inc()
		return nil, &httpError{status: 429, code: CodeQueueFull, retryAfter: s.retryAfterSeconds(), msg: "job queue is full"}
	}
	s.jobs[j.id] = j
	s.jobsSubmitted.Inc()
	s.queueDepth.Set(int64(len(s.queue)))
	return j, nil
}

// retryAfterSeconds turns the recent per-job wall-time average into a
// Retry-After hint: with W workers a queue slot frees roughly every
// avg/W seconds. Falls back to 1s before any job has finished.
func (s *Server) retryAfterSeconds() int {
	n := s.jobSeconds.Count()
	if n == 0 {
		return 1
	}
	per := s.jobSeconds.Sum() / float64(n) / float64(s.cfg.Workers)
	if per < 1 {
		return 1
	}
	if per > 60 {
		return 60
	}
	return int(per + 0.5)
}

// worker drains the queue until it is closed and empty (graceful drain).
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.queueDepth.Set(int64(len(s.queue)))
		s.runJob(j)
	}
}

// runJob executes one dequeued job under its deadline and records the
// terminal state. A job canceled while queued is skipped; a key that
// became resident while the job waited (an identical submission finished
// first) is served from cache without an engine run.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	if j.status != StatusQueued {
		s.mu.Unlock()
		return
	}
	if j.key != "" {
		if res, raw, ok := s.cache.get(j.key); ok {
			j.status = StatusDone
			j.cached = true
			j.result, j.raw = res, raw
			j.finished = time.Now()
			close(j.done)
			s.jobsByStatus("cached").Inc()
			s.mu.Unlock()
			return
		}
	}
	j.status = StatusRunning
	j.started = time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), j.timeout)
	j.cancel = cancel
	s.mu.Unlock()
	defer cancel()
	s.queueWait.Observe(j.started.Sub(j.submitted).Seconds())

	p := j.params
	if p.Telemetry == nil {
		p.Telemetry = j.tel
	}
	// Warm-start tier: the engine resumes from a stored boot snapshot when
	// one matches, or captures one for the next run of this boot prefix.
	// Attached only for cacheable params — an uncacheable run has no
	// prefix key — and never overriding a caller-supplied store.
	if p.Snapshots == nil && s.snaps != nil && p.Cacheable() {
		p.Snapshots = s.snaps
	}
	s.engineRuns.Inc()
	res, err := sim.RunContext(ctx, j.engine, p)
	finished := time.Now()
	s.jobSeconds.Observe(finished.Sub(j.started).Seconds())

	s.mu.Lock()
	defer s.mu.Unlock()
	j.finished = finished
	j.cancel = nil
	switch {
	case err == nil:
		raw, merr := json.Marshal(res)
		if merr != nil {
			j.status = StatusFailed
			j.errMsg = fmt.Sprintf("encode result: %v", merr)
			break
		}
		j.status = StatusDone
		j.result, j.raw = res, raw
		if j.key != "" {
			s.cache.put(j.key, res, raw)
		}
	case errors.Is(err, context.DeadlineExceeded):
		j.status = StatusFailed
		j.errMsg = fmt.Sprintf("deadline exceeded after %s: %v", j.timeout, err)
	case errors.Is(err, context.Canceled):
		j.status = StatusCanceled
		j.errMsg = err.Error()
	default:
		j.status = StatusFailed
		j.errMsg = err.Error()
	}
	s.jobsByStatus(j.status).Inc()
	close(j.done)
}

// cancelLocked moves a job toward termination: a queued job terminates
// immediately (the worker will skip it), a running job gets its context
// cancelled and terminates when the engine notices. Terminal jobs are
// left alone (reported false).
func (s *Server) cancelLocked(j *job) bool {
	switch j.status {
	case StatusQueued:
		j.status = StatusCanceled
		j.errMsg = "canceled while queued"
		j.finished = time.Now()
		s.jobsByStatus(StatusCanceled).Inc()
		close(j.done)
		return true
	case StatusRunning:
		if j.cancel != nil {
			j.cancel()
		}
		return true
	}
	return false
}

// sweepJob is one fanned-out sim.Sweep: child jobs in spec order, each an
// ordinary job (cache-resolved or queued) that GET /v1/sweeps/{id}/result
// aggregates back in spec order.
type sweepJob struct {
	id        string
	seq       uint64 // admission order; the pagination cursor
	submitted time.Time
	points    []sim.Point
	children  []*job
}

// SweepView is the stable JSON shape of GET /v1/sweeps/{id} and the
// elements of GET /v1/sweeps.
type SweepView struct {
	ID          string         `json:"id"`
	Status      string         `json:"status"` // running until every child is terminal
	Total       int            `json:"total"`
	ByStatus    map[string]int `json:"by_status"`
	Cached      int            `json:"cached"`
	JobIDs      []string       `json:"job_ids"`
	SubmittedAt time.Time      `json:"submitted_at"`
}

func (s *Server) sweepViewLocked(sw *sweepJob) SweepView {
	v := SweepView{
		ID:          sw.id,
		Total:       len(sw.children),
		ByStatus:    map[string]int{},
		JobIDs:      make([]string, len(sw.children)),
		SubmittedAt: sw.submitted,
	}
	terminal := 0
	for i, j := range sw.children {
		v.JobIDs[i] = j.id
		v.ByStatus[j.status]++
		if j.cached {
			v.Cached++
		}
		if Terminal(j.status) {
			terminal++
		}
	}
	v.Status = StatusRunning
	if terminal == len(sw.children) {
		v.Status = StatusDone
	}
	return v
}

// submitSweep expands the spec and admits every point atomically: either
// the whole sweep is accepted (cache hits resolved, the rest enqueued) or
// nothing is, so a half-admitted sweep can never wedge the queue.
func (s *Server) submitSweep(spec sim.Sweep, timeout time.Duration) (*sweepJob, error) {
	points := spec.Points()
	if len(points) == 0 {
		return nil, &httpError{status: 400, code: CodeBadParams, msg: "sweep expands to zero points"}
	}
	for i, pt := range points {
		if !sim.Registered(pt.Engine) {
			s.rejected("invalid").Inc()
			return nil, &httpError{status: 400, code: CodeUnknownEngine,
				msg: fmt.Sprintf("point %d: unknown engine %q", i, pt.Engine)}
		}
		if err := pt.Params.Validate(); err != nil {
			s.rejected("invalid").Inc()
			return nil, &httpError{status: 400, code: CodeBadParams, msg: fmt.Sprintf("point %d (%s): %v", i, pt, err)}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.rejected("draining").Inc()
		return nil, &httpError{status: 503, code: CodeDraining, retryAfter: 10, msg: "server is draining"}
	}
	// All-or-nothing capacity check: points not already resident must all
	// fit in the queue's free space right now.
	need := 0
	for _, pt := range points {
		key := jobKey(pt.Engine, pt.Params)
		if key == "" || !s.cache.contains(key) {
			need++
		}
	}
	if free := cap(s.queue) - len(s.queue); need > free {
		s.rejected("queue_full").Inc()
		return nil, &httpError{status: 429, code: CodeQueueFull, retryAfter: s.retryAfterSeconds(),
			msg: fmt.Sprintf("sweep needs %d queue slots, %d free", need, free)}
	}
	s.seq++
	sw := &sweepJob{
		id:        fmt.Sprintf("sweep-%06d", s.seq),
		seq:       s.seq,
		submitted: time.Now(),
		points:    points,
		children:  make([]*job, len(points)),
	}
	for i, pt := range points {
		j, err := s.admitLocked(pt.Engine, pt.Params, timeout)
		if err != nil {
			// Capacity was checked above; only a concurrent drain could get
			// here, and draining flips under mu — so this is unreachable.
			// Fail closed anyway rather than leak a half-built sweep.
			for _, prev := range sw.children[:i] {
				s.cancelLocked(prev)
			}
			return nil, err
		}
		sw.children[i] = j
	}
	s.sweeps[sw.id] = sw
	s.sweepsTotal.Inc()
	return sw, nil
}

// contains reports residency without touching hit/miss accounting or LRU
// order — the sweep capacity pre-check must not distort cache metrics.
// Memory-resident entries only: a disk-store hit still resolves at admit
// time, the pre-check just stays conservative about queue slots.
func (c *resultCache) contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.byKey[key]
	return ok
}
