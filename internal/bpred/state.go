package bpred

// Warm-start serialization of predictor state. Predictor is an interface
// with small concrete implementations, so rather than widen the interface
// (and every test fake) the codec lives here as a pair of free functions
// that switch on the concrete type. A resumed run must replay predictions
// bit-identically, so everything that influences a Prediction is carried:
// PHT/counter tables, global history, the BTB arrays including LRU ages,
// and the fixed predictor's branch count.

import (
	"repro/internal/snap"
)

const predStateV = 1

func saveBTB(w *snap.Writer, b *BTB) {
	w.U32(uint32(len(b.tags)))
	for _, t := range b.tags {
		w.U32(t)
	}
	for _, t := range b.targets {
		w.U32(t)
	}
	for _, v := range b.valid {
		w.Bool(v)
	}
	w.Raw(b.lru)
}

func loadBTB(r *snap.Reader, b *BTB) error {
	if n := r.U32(); r.Err() == nil && int(n) != len(b.tags) {
		return snap.Corruptf("btb: %d entries, want %d", n, len(b.tags))
	}
	tags := make([]uint32, len(b.tags))
	for i := range tags {
		tags[i] = r.U32()
	}
	targets := make([]uint32, len(b.targets))
	for i := range targets {
		targets[i] = r.U32()
	}
	valid := make([]bool, len(b.valid))
	for i := range valid {
		valid[i] = r.Bool()
	}
	lru := r.Raw(len(b.lru))
	if err := r.Err(); err != nil {
		return err
	}
	copy(b.tags, tags)
	copy(b.targets, targets)
	copy(b.valid, valid)
	copy(b.lru, lru)
	return nil
}

func counterBytes(t []counter) []byte {
	b := make([]byte, len(t))
	for i, c := range t {
		b[i] = byte(c)
	}
	return b
}

// SaveState appends p's versioned dynamic state. Predictors are tagged by
// name so a blob restored onto a differently configured predictor fails
// decode rather than silently diverging.
func SaveState(w *snap.Writer, p Predictor) {
	w.U8(predStateV)
	w.String(p.Name())
	switch v := p.(type) {
	case Perfect:
	case *Fixed:
		w.U64(v.period)
		w.U64(v.n)
	case *TwoBit:
		w.Raw(counterBytes(v.table))
		saveBTB(w, v.btb)
	case *Gshare:
		w.Raw(counterBytes(v.pht))
		w.U32(v.history)
		saveBTB(w, v.btb)
	default:
		panic("bpred: SaveState: unknown predictor type " + p.Name())
	}
}

// LoadState decodes state written by SaveState onto an identically
// configured predictor.
func LoadState(r *snap.Reader, p Predictor) error {
	if ver := r.U8(); r.Err() == nil && ver != predStateV {
		return snap.Corruptf("predictor state version %d, want %d", ver, predStateV)
	}
	name := r.String()
	if r.Err() == nil && name != p.Name() {
		return snap.Corruptf("predictor %q, want %q", name, p.Name())
	}
	switch v := p.(type) {
	case Perfect:
		return r.Err()
	case *Fixed:
		period, n := r.U64(), r.U64()
		if r.Err() == nil && period != v.period {
			return snap.Corruptf("fixed predictor period %d, want %d", period, v.period)
		}
		if err := r.Err(); err != nil {
			return err
		}
		v.n = n
		return nil
	case *TwoBit:
		table := r.Raw(len(v.table))
		if err := r.Err(); err != nil {
			return err
		}
		if err := loadBTB(r, v.btb); err != nil {
			return err
		}
		for i := range v.table {
			v.table[i] = counter(table[i])
		}
		return nil
	case *Gshare:
		pht := r.Raw(len(v.pht))
		history := r.U32()
		if err := r.Err(); err != nil {
			return err
		}
		if err := loadBTB(r, v.btb); err != nil {
			return err
		}
		for i := range v.pht {
			v.pht[i] = counter(pht[i])
		}
		v.history = history
		return nil
	default:
		return snap.Corruptf("predictor %q has no decoder", p.Name())
	}
}

// SaveStats appends the accuracy counters.
func SaveStats(w *snap.Writer, s Stats) {
	w.U64(s.Branches)
	w.U64(s.Correct)
	w.U64(s.DirWrong)
	w.U64(s.TargetWrong)
}

// LoadStats decodes counters written by SaveStats.
func LoadStats(r *snap.Reader) Stats {
	return Stats{Branches: r.U64(), Correct: r.U64(), DirWrong: r.U64(), TargetWrong: r.U64()}
}
