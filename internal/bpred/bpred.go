// Package bpred implements the branch predictors of the FAST prototype:
// perfect, fixed-accuracy ("97%" count-based), 2-bit saturating and gshare
// with a set-associative BTB (§4: "branch predictors (currently perfect, 2b
// saturating and gshare)"; the prototype target uses "a 4-way and 8K BTB
// gshare branch predictor").
//
// Since most branch predictors depend on timing information, the predictor
// proper lives in the timing model (§2.1); the functional model may run a
// "branch predictor predictor" — a second instance of the same structure —
// to keep the functional path close to the target path (ablation A3).
package bpred

import (
	"fmt"

	"repro/internal/isa"
)

// Prediction is the front-end's guess for one fetched branch.
type Prediction struct {
	Taken  bool
	Target isa.Word // meaningful only when Taken and BTBHit
	BTBHit bool
}

// Predictor predicts conditional and indirect control flow. The trace-driven
// timing model knows the architectural outcome at prediction time, so
// Predict receives it; real predictors must ignore it (the perfect predictor
// is exactly the one that does not).
type Predictor interface {
	Name() string
	// Predict returns the front-end prediction for the branch at pc.
	// actualTaken/actualTarget are the architectural outcome (used only by
	// the perfect predictor).
	Predict(pc isa.Word, actualTaken bool, actualTarget isa.Word) Prediction
	// Update trains the predictor with the resolved outcome.
	Update(pc isa.Word, taken bool, target isa.Word)
}

// Stats accumulates prediction accuracy, including all branches (Figure 5
// counts unconditional branches and target mispredictions too).
type Stats struct {
	Branches    uint64
	Correct     uint64
	DirWrong    uint64 // direction mispredictions
	TargetWrong uint64 // direction right, target wrong (BTB miss/alias)
}

// Record classifies one prediction against the architectural outcome and
// reports whether it was a misprediction.
func (s *Stats) Record(p Prediction, taken bool, target isa.Word) bool {
	s.Branches++
	if p.Taken != taken {
		s.DirWrong++
		return true
	}
	if taken && (!p.BTBHit || p.Target != target) {
		s.TargetWrong++
		return true
	}
	s.Correct++
	return false
}

// Accuracy is correct predictions over all branches.
func (s Stats) Accuracy() float64 {
	if s.Branches == 0 {
		return 1
	}
	return float64(s.Correct) / float64(s.Branches)
}

// Mispredicts returns the total misprediction count.
func (s Stats) Mispredicts() uint64 { return s.DirWrong + s.TargetWrong }

// Perfect always predicts the architectural outcome. "Some studies, such as
// perfect branch predictor studies, cannot be done on Asim" (§5) — they can
// here.
type Perfect struct{}

// Name implements Predictor.
func (Perfect) Name() string { return "perfect" }

// Predict implements Predictor.
func (Perfect) Predict(_ isa.Word, taken bool, target isa.Word) Prediction {
	return Prediction{Taken: taken, Target: target, BTBHit: true}
}

// Update implements Predictor.
func (Perfect) Update(isa.Word, bool, isa.Word) {}

// Fixed is the count-based fixed-accuracy predictor of §4.5 ("a 97%
// count-based branch predictor"): it deterministically mispredicts the
// direction of every k-th branch so that the long-run accuracy is
// NumerN/DenomN.
type Fixed struct {
	period uint64 // mispredict every period-th branch
	n      uint64
	name   string
}

// NewFixed builds a predictor with the given accuracy in [0,1).
func NewFixed(accuracy float64) *Fixed {
	if accuracy < 0 || accuracy >= 1 {
		panic(fmt.Sprintf("bpred: fixed accuracy %v out of [0,1)", accuracy))
	}
	period := uint64(1.0/(1.0-accuracy) + 0.5)
	if period < 1 {
		period = 1
	}
	return &Fixed{period: period, name: fmt.Sprintf("fixed-%.0f%%", accuracy*100)}
}

// Name implements Predictor.
func (f *Fixed) Name() string { return f.name }

// Predict implements Predictor.
func (f *Fixed) Predict(_ isa.Word, taken bool, target isa.Word) Prediction {
	f.n++
	if f.n%f.period == 0 {
		return Prediction{Taken: !taken, Target: target, BTBHit: true}
	}
	return Prediction{Taken: taken, Target: target, BTBHit: true}
}

// Update implements Predictor.
func (f *Fixed) Update(isa.Word, bool, isa.Word) {}

// counter is a 2-bit saturating counter: 0,1 predict not-taken; 2,3 taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }
func (c *counter) train(taken bool) {
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

// BTB is a set-associative branch target buffer with LRU replacement.
type BTB struct {
	sets    int
	ways    int
	tags    []isa.Word // sets × ways
	targets []isa.Word
	valid   []bool
	lru     []uint8
}

// NewBTB builds a BTB with entries total entries, ways-way associative.
func NewBTB(entries, ways int) *BTB {
	if entries%ways != 0 {
		panic("bpred: BTB entries must divide by ways")
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		panic("bpred: BTB set count must be a power of two")
	}
	n := sets * ways
	return &BTB{
		sets: sets, ways: ways,
		tags: make([]isa.Word, n), targets: make([]isa.Word, n),
		valid: make([]bool, n), lru: make([]uint8, n),
	}
}

func (b *BTB) set(pc isa.Word) int { return int(pc>>1) & (b.sets - 1) }

// Lookup returns the stored target for pc.
func (b *BTB) Lookup(pc isa.Word) (isa.Word, bool) {
	base := b.set(pc) * b.ways
	for w := 0; w < b.ways; w++ {
		i := base + w
		if b.valid[i] && b.tags[i] == pc {
			b.touch(base, w)
			return b.targets[i], true
		}
	}
	return 0, false
}

// Insert stores pc→target, evicting LRU.
func (b *BTB) Insert(pc, target isa.Word) {
	base := b.set(pc) * b.ways
	victim, oldest := 0, uint8(0)
	for w := 0; w < b.ways; w++ {
		i := base + w
		if b.valid[i] && b.tags[i] == pc {
			b.targets[i] = target
			b.touch(base, w)
			return
		}
		if !b.valid[i] {
			victim = w
			oldest = 255
			break
		}
		if b.lru[i] >= oldest {
			victim, oldest = w, b.lru[i]
		}
	}
	i := base + victim
	b.tags[i], b.targets[i], b.valid[i] = pc, target, true
	b.touch(base, victim)
}

// touch marks way w most recently used within its set.
func (b *BTB) touch(base, w int) {
	for k := 0; k < b.ways; k++ {
		if b.lru[base+k] < 255 {
			b.lru[base+k]++
		}
	}
	b.lru[base+w] = 0
}

// TwoBit is a per-PC table of 2-bit saturating counters with a BTB.
type TwoBit struct {
	table []counter
	btb   *BTB
}

// NewTwoBit builds a 2-bit predictor with 2^logEntries counters and a BTB.
func NewTwoBit(logEntries int, btb *BTB) *TwoBit {
	return &TwoBit{table: make([]counter, 1<<logEntries), btb: btb}
}

// Name implements Predictor.
func (p *TwoBit) Name() string { return "2bit" }

func (p *TwoBit) index(pc isa.Word) int { return int(pc>>1) & (len(p.table) - 1) }

// Predict implements Predictor.
func (p *TwoBit) Predict(pc isa.Word, _ bool, _ isa.Word) Prediction {
	taken := p.table[p.index(pc)].taken()
	tgt, hit := p.btb.Lookup(pc)
	return Prediction{Taken: taken, Target: tgt, BTBHit: hit}
}

// Update implements Predictor.
func (p *TwoBit) Update(pc isa.Word, taken bool, target isa.Word) {
	p.table[p.index(pc)].train(taken)
	if taken {
		p.btb.Insert(pc, target)
	}
}

// Gshare is the prototype's default predictor: global history XOR PC
// indexing a pattern history table of 2-bit counters, plus a 4-way BTB.
type Gshare struct {
	pht     []counter
	history isa.Word
	bits    int
	btb     *BTB
}

// NewGshare builds a gshare predictor with 2^logEntries PHT counters,
// logEntries bits of global history and the given BTB.
func NewGshare(logEntries int, btb *BTB) *Gshare {
	return &Gshare{pht: make([]counter, 1<<logEntries), bits: logEntries, btb: btb}
}

// NewDefaultGshare is the paper's configuration: "a 4-way and 8K BTB gshare
// branch predictor" — an 8K-entry 4-way BTB with an 8K-entry PHT.
func NewDefaultGshare() *Gshare { return NewGshare(13, NewBTB(8192, 4)) }

// Name implements Predictor.
func (g *Gshare) Name() string { return "gshare" }

func (g *Gshare) index(pc isa.Word) int {
	return int((pc>>1)^g.history) & (len(g.pht) - 1)
}

// Predict implements Predictor.
func (g *Gshare) Predict(pc isa.Word, _ bool, _ isa.Word) Prediction {
	taken := g.pht[g.index(pc)].taken()
	tgt, hit := g.btb.Lookup(pc)
	return Prediction{Taken: taken, Target: tgt, BTBHit: hit}
}

// Update implements Predictor.
func (g *Gshare) Update(pc isa.Word, taken bool, target isa.Word) {
	g.pht[g.index(pc)].train(taken)
	g.history = (g.history << 1) & (1<<g.bits - 1)
	if taken {
		g.history |= 1
		g.btb.Insert(pc, target)
	}
}

// New constructs a predictor by configuration name: "perfect", "gshare",
// "2bit", or "fixed:<accuracy>" handled by callers via NewFixed.
func New(name string) (Predictor, error) {
	switch name {
	case "perfect":
		return Perfect{}, nil
	case "gshare":
		return NewDefaultGshare(), nil
	case "2bit":
		return NewTwoBit(13, NewBTB(8192, 4)), nil
	case "97%":
		return NewFixed(0.97), nil
	case "95%":
		return NewFixed(0.95), nil
	}
	return nil, fmt.Errorf("bpred: unknown predictor %q", name)
}
