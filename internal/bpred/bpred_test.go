package bpred

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

func TestPerfect(t *testing.T) {
	var p Perfect
	var s Stats
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		pc := isa.Word(r.Uint32())
		taken := r.Intn(2) == 0
		target := isa.Word(r.Uint32())
		pred := p.Predict(pc, taken, target)
		if s.Record(pred, taken, target) {
			t.Fatal("perfect predictor mispredicted")
		}
	}
	if s.Accuracy() != 1.0 {
		t.Errorf("accuracy %v", s.Accuracy())
	}
}

func TestFixedAccuracy(t *testing.T) {
	for _, acc := range []float64{0.97, 0.95, 0.92} {
		p := NewFixed(acc)
		var s Stats
		for i := 0; i < 100000; i++ {
			pred := p.Predict(0x100, true, 0x200)
			s.Record(pred, true, 0x200)
		}
		got := s.Accuracy()
		if got < acc-0.02 || got > acc+0.02 {
			t.Errorf("fixed %.2f delivered %.4f", acc, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("NewFixed(1.0) did not panic")
		}
	}()
	NewFixed(1.0)
}

func TestTwoBitLearnsBias(t *testing.T) {
	p := NewTwoBit(10, NewBTB(64, 4))
	var s Stats
	// Strongly biased taken branch: after warmup it should predict taken.
	for i := 0; i < 100; i++ {
		pred := p.Predict(0x40, true, 0x80)
		s.Record(pred, true, 0x80)
		p.Update(0x40, true, 0x80)
	}
	if s.Accuracy() < 0.95 {
		t.Errorf("2-bit accuracy %.3f on a monotone branch", s.Accuracy())
	}
	// Hysteresis: one not-taken shouldn't flip the prediction.
	p.Update(0x40, false, 0)
	if !p.Predict(0x40, true, 0x80).Taken {
		t.Error("2-bit counter flipped after a single contrary outcome")
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	// Alternating T,N,T,N is hopeless for a 2-bit counter but trivial for
	// global history.
	g := NewGshare(12, NewBTB(256, 4))
	two := NewTwoBit(12, NewBTB(256, 4))
	var gs, ts Stats
	pc := isa.Word(0x1234)
	tgt := isa.Word(0x2000)
	for i := 0; i < 4000; i++ {
		taken := i%2 == 0
		gp := g.Predict(pc, taken, tgt)
		gs.Record(gp, taken, tgt)
		g.Update(pc, taken, tgt)
		tp := two.Predict(pc, taken, tgt)
		ts.Record(tp, taken, tgt)
		two.Update(pc, taken, tgt)
	}
	if gs.Accuracy() < 0.95 {
		t.Errorf("gshare accuracy %.3f on alternating pattern", gs.Accuracy())
	}
	if gs.Accuracy() <= ts.Accuracy() {
		t.Errorf("gshare (%.3f) not better than 2-bit (%.3f) on pattern",
			gs.Accuracy(), ts.Accuracy())
	}
}

func TestBTBLRUAndAliasing(t *testing.T) {
	b := NewBTB(8, 2) // 4 sets × 2 ways
	// Two PCs mapping to the same set fit; a third evicts the LRU.
	set0 := func(i int) isa.Word { return isa.Word(i*8) << 1 } // same set index
	b.Insert(set0(0), 0x100)
	b.Insert(set0(1), 0x200)
	if _, ok := b.Lookup(set0(0)); !ok {
		t.Fatal("entry 0 missing")
	}
	// Touch 0 so 1 becomes LRU; insert 2 -> evicts 1.
	b.Insert(set0(2), 0x300)
	if _, ok := b.Lookup(set0(1)); ok {
		t.Error("LRU entry survived eviction")
	}
	if tgt, ok := b.Lookup(set0(0)); !ok || tgt != 0x100 {
		t.Error("MRU entry evicted")
	}
	if tgt, ok := b.Lookup(set0(2)); !ok || tgt != 0x300 {
		t.Error("new entry missing")
	}
}

func TestBTBTargetUpdate(t *testing.T) {
	b := NewBTB(64, 4)
	b.Insert(0x10, 0x100)
	b.Insert(0x10, 0x180) // indirect branch changed target
	if tgt, _ := b.Lookup(0x10); tgt != 0x180 {
		t.Errorf("target = %#x, want 0x180", tgt)
	}
}

func TestStatsTargetMisprediction(t *testing.T) {
	var s Stats
	// Direction right, target wrong (BTB miss).
	miss := s.Record(Prediction{Taken: true, BTBHit: false}, true, 0x100)
	if !miss || s.TargetWrong != 1 {
		t.Errorf("BTB miss not a misprediction: %+v", s)
	}
	// Direction right, stale target.
	miss = s.Record(Prediction{Taken: true, BTBHit: true, Target: 0x999}, true, 0x100)
	if !miss || s.TargetWrong != 2 {
		t.Errorf("stale target not a misprediction: %+v", s)
	}
	// Not-taken prediction needs no target.
	miss = s.Record(Prediction{Taken: false}, false, 0)
	if miss || s.Correct != 1 {
		t.Errorf("not-taken correct prediction misclassified: %+v", s)
	}
	if s.Mispredicts() != 2 {
		t.Errorf("mispredicts = %d", s.Mispredicts())
	}
}

func TestNewByName(t *testing.T) {
	for _, name := range []string{"perfect", "gshare", "2bit", "97%", "95%"} {
		p, err := New(name)
		if err != nil || p == nil {
			t.Errorf("New(%q): %v", name, err)
		}
	}
	if _, err := New("nope"); err == nil {
		t.Error("unknown predictor accepted")
	}
}

func TestBTBConstructionPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewBTB(10, 4) }, // not divisible
		func() { NewBTB(24, 4) }, // sets not power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad BTB construction did not panic")
				}
			}()
			f()
		}()
	}
}

func TestEmptyStatsAccuracy(t *testing.T) {
	var s Stats
	if s.Accuracy() != 1 {
		t.Error("empty stats accuracy should be 1")
	}
}
