package core

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/fm"
	"repro/internal/fullsys"
	"repro/internal/isa"
)

// MulticoreConfig shapes an N-core target built from one per-core Config.
type MulticoreConfig struct {
	Cores int
	// InterconnectLatency is the per-hop core↔L2 delay of the shared
	// hierarchy (0 selects cache.DefaultInterconnectLatency).
	InterconnectLatency int
	// QuantumCycles is the bounded-lag quantum: how many target cycles a
	// core advances before the scheduler moves on. 0 derives it from the
	// trace chunk size, making the skew bound ride the same granule as the
	// FM→TM coupling.
	QuantumCycles uint64
}

// Multicore couples N FM/TM pairs over one shared physical memory and a
// modeled shared L2 + directory. The cores advance round-robin in bounded
// quanta on a single goroutine, and every quantum ends with a convergence
// phase (Sim.converge) that retires the core's speculative run-ahead, so a
// core only ever observes the *stable* memory state of its peers:
//
//   - Within its quantum a core runs exactly the serial coupled
//     simulation, including wrong-path FM run-ahead into shared memory.
//   - At the quantum boundary the core's TM has consumed every produced
//     entry and no wrong-path episode is in flight, so every store it has
//     made is final — nothing a later re-steer could undo remains visible.
//   - Only then does the next core run. Cross-core visibility therefore
//     happens exclusively at quantum boundaries (bounded lag), and the
//     whole schedule is a deterministic function of the configuration —
//     byte-identical results at any host parallelism, by construction.
type Multicore struct {
	cfg       Config
	mc        MulticoreConfig
	cores     []*Sim
	shared    *cache.Coherent
	sharedMem *fullsys.Memory
	quantum   uint64
	// snapHook is the container-owned warm-start capture: it fires at the
	// first round boundary where the boot core has reached user mode and
	// every core is quiescent (state.go).
	snapHook func(in uint64, blob []byte)
	err      error
}

// MulticoreResult is the run summary: the aggregate view plus each core's
// own Result and the directory counters.
type MulticoreResult struct {
	Aggregate Result
	PerCore   []Result
	Coherence cache.CoherentStats
}

// NewMulticore builds an N-core simulator from the per-core configuration:
// one shared physical memory and predecode-coherence domain on the FM side,
// one shared L2 + directory on the TM side, and N serial Sims around them.
func NewMulticore(cfg Config, mc MulticoreConfig) (*Multicore, error) {
	if mc.Cores < 1 || mc.Cores > 64 {
		return nil, fmt.Errorf("core: multicore supports 1..64 cores, got %d", mc.Cores)
	}
	if cfg.FM.MemBytes == 0 {
		cfg.FM.MemBytes = 16 << 20
	}
	if cfg.TM.MemLatency == 0 {
		cfg.TM.MemLatency = 25
	}
	sharedMem := fullsys.NewMemory(cfg.FM.MemBytes)
	coh := fm.NewCoherence()
	shared := cache.NewCoherent(cache.CoherentConfig{
		L2:                  cfg.TM.L2,
		MemLatency:          cfg.TM.MemLatency,
		InterconnectLatency: mc.InterconnectLatency,
		Cores:               mc.Cores,
	})
	m := &Multicore{cfg: cfg, mc: mc, shared: shared, sharedMem: sharedMem}
	m.snapHook = cfg.SnapshotHook
	for i := 0; i < mc.Cores; i++ {
		ci := cfg
		// Capture is a whole-target decision: the container owns the hook
		// and arms only boot-completion tracking on core 0.
		ci.SnapshotHook = nil
		ci.FM.SharedMem = sharedMem
		ci.FM.Coherence = coh
		ci.FM.CoreID = i
		ci.TM.Shared = shared
		ci.TM.CoreID = i
		// The instruction cap is a whole-target budget; the scheduler
		// enforces it across cores.
		ci.MaxInstructions = 0
		if i > 0 {
			// Boot devices (disk, NIC) hang off core 0; secondaries get
			// the default per-core console + timer.
			ci.FM.Devices = nil
		}
		s, err := New(ci)
		if err != nil {
			return nil, fmt.Errorf("core %d: %w", i, err)
		}
		if s.tlog != nil {
			s.tlog.ProcessName(s.pid, fmt.Sprintf("FAST core %d", i))
		}
		m.cores = append(m.cores, s)
	}
	m.quantum = mc.QuantumCycles
	if m.quantum == 0 {
		m.quantum = uint64(m.cores[0].app.ChunkSize())
	}
	if m.snapHook != nil {
		m.cores[0].trackUser = true
	}
	return m, nil
}

// Cores exposes the per-core simulators (core 0 carries the boot devices).
func (m *Multicore) Cores() []*Sim { return m.cores }

// LoadProgram loads the image into the shared memory and points every
// core's PC at its entry; the per-CPU boot path dispatches on CPUID.
func (m *Multicore) LoadProgram(p *isa.Program) {
	for _, s := range m.cores {
		s.LoadProgram(p)
	}
}

// Run executes the multicore simulation to completion or its limits.
func (m *Multicore) Run() (MulticoreResult, error) { return m.RunContext(context.Background()) }

// RunContext is Run with cooperative cancellation.
func (m *Multicore) RunContext(ctx context.Context) (MulticoreResult, error) {
	var ticks uint64
	for m.err == nil {
		if m.snapHook != nil {
			m.maybeCapture()
		}
		live := false
		for _, s := range m.cores {
			if s.TM.Done() || s.err != nil {
				continue
			}
			live = true
			end := s.TM.Cycle() + m.quantum
			for s.TM.Cycle() < end && !s.TM.Done() {
				if m.capped() {
					break
				}
				if s.TM.Cycle() >= s.cfg.MaxCycles {
					s.err = fmt.Errorf("core %d: exceeded max cycles %d", s.cfg.FM.CoreID, s.cfg.MaxCycles)
					break
				}
				if ticks++; ticks%ctxCheckInterval == 0 {
					if err := ctx.Err(); err != nil {
						s.err = err
						break
					}
				}
				s.stepCycle()
			}
			// Quantum boundary: retire the run-ahead so the next core sees
			// only stable memory.
			s.converge()
			if s.err != nil {
				m.err = s.err
			}
		}
		if !live || m.capped() {
			break
		}
	}
	return m.result(), m.err
}

// capped reports whether the whole-target committed-instruction budget is
// exhausted.
func (m *Multicore) capped() bool {
	if m.cfg.MaxInstructions == 0 {
		return false
	}
	var total uint64
	for _, s := range m.cores {
		total += s.committed
	}
	return total >= m.cfg.MaxInstructions
}

// result aggregates the per-core runs. Host-time semantics: the N
// functional models run on N host cores while the single FPGA hosts all N
// timing models, so the end-to-end wall time is the slowest core's
// SimNanos; FM work is reported summed.
func (m *Multicore) result() MulticoreResult {
	var r MulticoreResult
	var weightedBP float64
	for _, s := range m.cores {
		cr := s.result()
		r.PerCore = append(r.PerCore, cr)
		a := &r.Aggregate
		a.Instructions += cr.Instructions
		a.WrongPath += cr.WrongPath
		a.FMNanos += cr.FMNanos
		a.Mispredicts += cr.Mispredicts
		a.Rollbacks += cr.Rollbacks
		a.TraceWords += cr.TraceWords
		weightedBP += cr.BPAccuracy * float64(cr.Instructions)
		a.LinkStats.Nanos += cr.LinkStats.Nanos
		a.LinkStats.Reads += cr.LinkStats.Reads
		a.LinkStats.Writes += cr.LinkStats.Writes
		a.LinkStats.BurstWords += cr.LinkStats.BurstWords
		if cr.TargetCycles > a.TargetCycles {
			a.TargetCycles = cr.TargetCycles
		}
		if cr.TMNanos > a.TMNanos {
			a.TMNanos = cr.TMNanos
		}
		if cr.SimNanos > a.SimNanos {
			a.SimNanos = cr.SimNanos
		}
		if cr.TBMaxOccupancy > a.TBMaxOccupancy {
			a.TBMaxOccupancy = cr.TBMaxOccupancy
		}
		// The aggregate TM stats keep the whole-target totals the study
		// tables read (cycles stay the max, not the sum).
		a.TM.Instructions += cr.TM.Instructions
		a.TM.UOps += cr.TM.UOps
		a.TM.BasicBlocks += cr.TM.BasicBlocks
		a.TM.Mispredicts += cr.TM.Mispredicts
		if cr.TM.Cycles > a.TM.Cycles {
			a.TM.Cycles = cr.TM.Cycles
		}
	}
	a := &r.Aggregate
	if a.Instructions > 0 {
		a.BPAccuracy = weightedBP / float64(a.Instructions)
	}
	if a.TargetCycles > 0 {
		a.IPC = float64(a.Instructions) / float64(a.TargetCycles)
	}
	if a.SimNanos > 0 {
		a.TargetMIPS = float64(a.Instructions+a.WrongPath) / a.SimNanos * 1e3
	}
	r.Coherence = m.shared.Stats()
	return r
}
