package core

import (
	"testing"

	"repro/internal/fm"
	"repro/internal/hostlink"
	"repro/internal/isa"
)

// testProgram is a self-terminating kernel-mode program with data-dependent
// branches (so real predictors mispredict) and some memory traffic.
const testProgram = `
	movi sp, 0x9000
	movi r0, 300       ; outer counter
	movi r4, 0x4000
	movi r5, 12345     ; LCG state
loop:
	; pseudo-random branch: taken ~half the time
	movi r6, 1103515245
	mul  r5, r6
	addi r5, 12345
	mov  r6, r5
	shri r6, 16
	andi r6, 1
	cmpi r6, 0
	jz   skip
	addi r1, 7
	stw  r1, [r4]
skip:
	ldw  r2, [r4]
	add  r3, r2
	dec  r0
	jnz  loop
	cli
	halt
`

func mustRun(t *testing.T, cfg Config, src string) Result {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.LoadProgram(isa.MustAssemble(src, 0x1000))
	r, err := s.Run()
	if err != nil {
		t.Fatalf("run: %v (result %v)", err, r)
	}
	return r
}

func TestCoupledRunCompletes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FM.DisableInterrupts = true
	r := mustRun(t, cfg, testProgram)
	if r.Instructions == 0 {
		t.Fatal("no instructions committed")
	}
	if r.Mispredicts == 0 {
		t.Error("random branches never mispredicted under gshare")
	}
	if r.Rollbacks < 2*r.Mispredicts {
		t.Errorf("rollbacks %d < 2×mispredicts %d: wrong-path excursions missing",
			r.Rollbacks, r.Mispredicts)
	}
	if r.WrongPath == 0 {
		t.Error("no wrong-path instructions were produced")
	}
	if r.TargetMIPS <= 0 {
		t.Errorf("MIPS = %v", r.TargetMIPS)
	}
	if r.IPC <= 0 || r.IPC > 2 {
		t.Errorf("IPC = %v", r.IPC)
	}
}

// TestCoupledMatchesUncoupledArchState: the wrong-path excursions driven by
// the TM must leave the committed instruction stream identical to a pure
// functional run.
func TestCoupledMatchesPureFunctionalRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FM.DisableInterrupts = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog := isa.MustAssemble(testProgram, 0x1000)
	s.LoadProgram(prog)
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}

	ref, err2 := New(func() Config {
		c := DefaultConfig()
		c.FM.DisableInterrupts = true
		c.TM.Predictor = "perfect" // no re-steers at all
		return c
	}())
	if err2 != nil {
		t.Fatal(err2)
	}
	ref.LoadProgram(prog)
	rr, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions != rr.Instructions {
		t.Errorf("committed %d vs %d instructions", r.Instructions, rr.Instructions)
	}
	if s.FM.Scalars != ref.FM.Scalars {
		t.Errorf("final architectural state diverged after wrong-path excursions:\n%+v\n%+v",
			s.FM.Scalars, ref.FM.Scalars)
	}
}

func TestPerfectBPFasterThanGshare(t *testing.T) {
	mk := func(pred string) Result {
		cfg := DefaultConfig()
		cfg.FM.DisableInterrupts = true
		cfg.TM.Predictor = pred
		return mustRun(t, cfg, testProgram)
	}
	perfect := mk("perfect")
	gshare := mk("gshare")
	if perfect.TargetCycles >= gshare.TargetCycles {
		t.Errorf("perfect (%d cycles) not faster than gshare (%d)",
			perfect.TargetCycles, gshare.TargetCycles)
	}
	if perfect.TargetMIPS <= gshare.TargetMIPS {
		t.Errorf("perfect MIPS %.2f not above gshare %.2f (Figure 4 ordering)",
			perfect.TargetMIPS, gshare.TargetMIPS)
	}
}

func TestParallelMatchesSerialArchitecturally(t *testing.T) {
	cfgS := DefaultConfig()
	cfgS.FM.DisableInterrupts = true
	serial := mustRun(t, cfgS, testProgram)

	cfgP := DefaultConfig()
	cfgP.FM.DisableInterrupts = true
	p, err := NewParallel(cfgP)
	if err != nil {
		t.Fatal(err)
	}
	p.LoadProgram(isa.MustAssemble(testProgram, 0x1000))
	par, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if par.Instructions != serial.Instructions {
		t.Errorf("parallel committed %d, serial %d", par.Instructions, serial.Instructions)
	}
	// Predictor state depends on the predict/update interleaving, which
	// shifts with fetch-bubble timing; allow a small tolerance.
	if d := par.BPAccuracy - serial.BPAccuracy; d < -0.01 || d > 0.01 {
		t.Errorf("BP accuracy differs: %.4f vs %.4f", par.BPAccuracy, serial.BPAccuracy)
	}
	// Timing may differ (real scheduling vs modeled rate), but not wildly.
	lo, hi := serial.TargetCycles*3/4, serial.TargetCycles*3/2
	if par.TargetCycles < lo || par.TargetCycles > hi {
		t.Errorf("parallel cycles %d outside [%d,%d] of serial %d",
			par.TargetCycles, lo, hi, serial.TargetCycles)
	}
}

func TestCoherentHTReducesLinkTime(t *testing.T) {
	mk := func(link hostlink.Config) Result {
		cfg := DefaultConfig()
		cfg.FM.DisableInterrupts = true
		cfg.Link = link
		return mustRun(t, cfg, testProgram)
	}
	drc := mk(hostlink.DRC())
	coh := mk(hostlink.CoherentHT())
	// Compare per-produced-instruction link cost: total FM time also scales
	// with how far ahead the FM managed to run, which itself improves with
	// the cheaper link.
	per := func(r Result) float64 {
		return r.LinkStats.Nanos / float64(r.Instructions+r.WrongPath)
	}
	if per(coh) >= per(drc) {
		t.Errorf("coherent HT link cost %.1fns/inst not below DRC %.1fns/inst (§4.5 projection)",
			per(coh), per(drc))
	}
}

func TestPollingAblation(t *testing.T) {
	// A2/A6: polling every 2 basic blocks costs more FM time than polling
	// only on re-steers.
	mk := func(poll int) Result {
		cfg := DefaultConfig()
		cfg.FM.DisableInterrupts = true
		cfg.PollEveryBBs = poll
		return mustRun(t, cfg, testProgram)
	}
	everyBB := mk(1)
	prototype := mk(2)
	architected := mk(0)
	if architected.LinkStats.Reads >= prototype.LinkStats.Reads {
		t.Errorf("architected polling (%d reads) not below prototype (%d)",
			architected.LinkStats.Reads, prototype.LinkStats.Reads)
	}
	if prototype.LinkStats.Reads >= everyBB.LinkStats.Reads {
		t.Errorf("per-2-BB polling (%d reads) not below per-BB (%d)",
			prototype.LinkStats.Reads, everyBB.LinkStats.Reads)
	}
}

func TestBPPAblation(t *testing.T) {
	// A3: the branch-predictor-predictor removes mispredict rollback cost.
	mk := func(bpp bool) Result {
		cfg := DefaultConfig()
		cfg.FM.DisableInterrupts = true
		cfg.BPP = bpp
		return mustRun(t, cfg, testProgram)
	}
	off := mk(false)
	on := mk(true)
	if on.FMNanos >= off.FMNanos {
		t.Errorf("BPP FM time %.0f not below baseline %.0f", on.FMNanos, off.FMNanos)
	}
}

func TestFullSystemWithInterrupts(t *testing.T) {
	// A kernel that programs the timer, handles a few ticks, then shuts
	// down: exercises interrupt entries flowing through the coupled TM.
	src := `
		.org 0
		.space 256
		.org 0x400
	timer:
		inc  r10
		movi r9, 1
		out  r9, 0x22   ; ack
		cmpi r10, 3
		jge  shutdown
		iret
	shutdown:
		cli
		halt
		.org 0x1000
	entry:
		movi r8, timer
		movi r9, 64     ; IVT[16]
		stw  r8, [r9]
		movi r8, 400
		out  r8, 0x20   ; timer period
		sti
	idle:	addi r7, 1
		cmpi r7, 100000
		jl   idle
		cli
		halt
	.entry entry
	`
	cfg := DefaultConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.LoadProgram(isa.MustAssemble(src, 0))
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s.FM.GPR[10] != 3 {
		t.Errorf("timer handler ran %d times, want 3", s.FM.GPR[10])
	}
	if r.TM.Serializes == 0 {
		t.Error("interrupt redirects did not serialize the TM")
	}
}

func TestMaxInstructionsStops(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FM.DisableInterrupts = true
	cfg.MaxInstructions = 100
	r := mustRun(t, cfg, testProgram)
	if r.Instructions < 100 || r.Instructions > 150 {
		t.Errorf("stopped at %d instructions, want ~100", r.Instructions)
	}
}

func TestResultString(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FM.DisableInterrupts = true
	r := mustRun(t, cfg, testProgram)
	if r.String() == "" {
		t.Error("empty result string")
	}
}

// TestCheckpointEngineCoupled runs the coupled simulator with the paper's
// leapfrog-checkpoint rollback engine in the FM: architectural results must
// match the journal engine exactly, and the replay work must surface in the
// FM-side time.
func TestCheckpointEngineCoupled(t *testing.T) {
	prog := isa.MustAssemble(testProgram, 0x1000)
	mk := func(mode int) (*Sim, Result) {
		cfg := DefaultConfig()
		cfg.FM.DisableInterrupts = true
		if mode == 1 {
			cfg.FM.Rollback = fm.RollbackCheckpoint
			cfg.FM.CheckpointInterval = 32
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.LoadProgram(prog)
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return s, r
	}
	js, jr := mk(0)
	cs, cr := mk(1)
	if jr.Instructions != cr.Instructions {
		t.Errorf("instructions differ: %d vs %d", jr.Instructions, cr.Instructions)
	}
	if js.FM.Scalars != cs.FM.Scalars {
		t.Error("final state differs between rollback engines")
	}
	if cs.FM.ReExecuted() == 0 {
		t.Error("checkpoint engine never replayed despite mispredicts")
	}
	if cr.FMNanos <= jr.FMNanos {
		t.Errorf("checkpoint replay cost (%.0f ns) not above journal cost (%.0f ns)",
			cr.FMNanos, jr.FMNanos)
	}
}

// TestTraceBufferCapacityBoundsRunAhead: a tiny trace buffer limits how far
// the FM can speculate ahead; a larger one increases peak occupancy and
// never hurts.
func TestTraceBufferCapacityBoundsRunAhead(t *testing.T) {
	mk := func(capacity int) Result {
		cfg := DefaultConfig()
		cfg.FM.DisableInterrupts = true
		cfg.TBCapacity = capacity
		return mustRun(t, cfg, testProgram)
	}
	small := mk(24)
	large := mk(1024)
	if small.TBMaxOccupancy > 24 {
		t.Errorf("occupancy %d exceeded capacity 24", small.TBMaxOccupancy)
	}
	if large.TBMaxOccupancy <= small.TBMaxOccupancy {
		t.Errorf("larger TB did not increase run-ahead: %d vs %d",
			large.TBMaxOccupancy, small.TBMaxOccupancy)
	}
	if small.Instructions != large.Instructions {
		t.Errorf("capacity changed architectural results: %d vs %d",
			small.Instructions, large.Instructions)
	}
}
