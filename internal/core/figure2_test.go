package core

import (
	"testing"

	"repro/internal/isa"
)

// TestFigure2MisSpeculation reproduces the paper's Figure 2 flow end to end
// through the coupled simulator: a branch the cold predictor gets wrong
// sends the functional model down the wrong path (set_pc), the wrong-path
// instructions land in the trace buffer, the resolution re-steers the FM
// back, and the committed result is exactly the architectural one.
func TestFigure2MisSpeculation(t *testing.T) {
	// Figure 2's program shape:
	//   1: R0 = R0 + R2
	//   2: BRz L1        (taken architecturally; a cold 2-bit counter
	//                     predicts not-taken -> mis-speculation)
	//   3: R0 = R0 + R3  (wrong path)
	//   4: L1: R0 = R0 + R4
	prog := isa.MustAssemble(`
		movi r0, 0
		movi r2, 0
		movi r3, 100
		movi r4, 1000
		add  r0, r2      ; I1: result 0 -> Z set
		jz   L1          ; I2: TAKEN
		add  r0, r3      ; I3: wrong path
	L1:	add  r0, r4      ; I4
		cli
		halt
	`, 0x1000)
	cfg := DefaultConfig()
	cfg.FM.DisableInterrupts = true
	cfg.TM.Predictor = "2bit" // cold counters predict not-taken
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.LoadProgram(prog)
	r, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Mispredicts == 0 {
		t.Fatal("the cold predictor must mis-speculate the taken BRz")
	}
	if r.WrongPath == 0 {
		t.Error("no wrong-path instructions were produced for the TM")
	}
	if r.Rollbacks < 2 {
		t.Errorf("rollbacks = %d; Figure 2 needs the mis-speculation re-steer "+
			"and the resolution re-steer", r.Rollbacks)
	}
	if sim.FM.GPR[0] != 1000 {
		t.Errorf("R0 = %d; the wrong-path +100 must leave no trace (want 1000)",
			sim.FM.GPR[0])
	}
	if r.Instructions != 9 {
		t.Errorf("committed %d instructions, want 9 (the architectural path)",
			r.Instructions)
	}
	if r.TM.DrainCycles == 0 {
		t.Error("the TM must stall (drain) between mis-speculation and resolution")
	}
}
