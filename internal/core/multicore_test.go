package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/workload"
)

// smpBoot builds the SMP spinlock workload for n cores with a small
// iteration count so the run completes (no instruction cap needed).
func smpBoot(t *testing.T, n, iters int) *workload.Boot {
	t.Helper()
	k := workload.FastBoot()
	k.Cores = n
	k.SMPUser = true
	boot, err := workload.BuildBoot(k, workload.SMPProgram(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	return boot
}

func runMulticore(t *testing.T, n, iters int) (MulticoreResult, string) {
	t.Helper()
	boot := smpBoot(t, n, iters)
	cfg := DefaultConfig()
	cfg.FM.Devices = boot.Devices()
	m, err := NewMulticore(cfg, MulticoreConfig{Cores: n})
	if err != nil {
		t.Fatal(err)
	}
	m.LoadProgram(boot.Kernel)
	r, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return r, string(boot.Console.Output())
}

// TestMulticoreSMPLockNoLostUpdates boots the SMP workload on two cores:
// the ll/sc spinlock must serialize the shared-counter increments (core 0
// prints 'K' after verifying the reduction), and the directory must have
// seen cross-core sharing.
func TestMulticoreSMPLockNoLostUpdates(t *testing.T) {
	r, out := runMulticore(t, 2, 150)
	if !strings.Contains(out, "K") {
		t.Fatalf("core 0 did not verify the reduction: console %q", out)
	}
	if strings.Contains(out, "X") {
		t.Fatalf("lost update detected: console %q", out)
	}
	if len(r.PerCore) != 2 {
		t.Fatalf("got %d per-core results", len(r.PerCore))
	}
	for i, cr := range r.PerCore {
		if cr.Instructions == 0 {
			t.Errorf("core %d committed no instructions", i)
		}
	}
	if r.Coherence.Invalidations == 0 {
		t.Error("no directory invalidations despite write sharing")
	}
	if r.Coherence.Hops == 0 {
		t.Error("no interconnect hops charged")
	}
	if r.Aggregate.Instructions != r.PerCore[0].Instructions+r.PerCore[1].Instructions {
		t.Error("aggregate instructions are not the per-core sum")
	}
	if r.Aggregate.TargetCycles < r.PerCore[0].TargetCycles ||
		r.Aggregate.TargetCycles < r.PerCore[1].TargetCycles {
		t.Error("aggregate target cycles below a per-core value")
	}
}

// TestMulticoreDeterministic runs the same 2-core configuration twice and
// requires bit-identical results — the bounded-lag schedule may not depend
// on anything but the configuration.
func TestMulticoreDeterministic(t *testing.T) {
	a, outA := runMulticore(t, 2, 100)
	b, outB := runMulticore(t, 2, 100)
	if outA != outB {
		t.Errorf("console output diverged: %q vs %q", outA, outB)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("results diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestMulticoreSingleCoreArchMatchesSerial runs a deterministic kernel-mode
// program through a 1-core Multicore and the plain serial Sim: the shared
// hierarchy adds interconnect latency (so cycles differ) but the
// architectural work must be identical.
func TestMulticoreSingleCoreArchMatchesSerial(t *testing.T) {
	prog := isa.MustAssemble(testProgram, 0x1000)

	cfg := DefaultConfig()
	cfg.FM.DisableInterrupts = true
	m, err := NewMulticore(cfg, MulticoreConfig{Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.LoadProgram(prog)
	mr, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}

	cfg2 := DefaultConfig()
	cfg2.FM.DisableInterrupts = true
	s, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	s.LoadProgram(prog)
	sr, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}

	if mr.Aggregate.Instructions != sr.Instructions {
		t.Errorf("instructions: multicore %d, serial %d", mr.Aggregate.Instructions, sr.Instructions)
	}
	if mr.Aggregate.TM.Instructions != sr.TM.Instructions {
		t.Errorf("TM instructions: multicore %d, serial %d", mr.Aggregate.TM.Instructions, sr.TM.Instructions)
	}
	if mr.Aggregate.TM.UOps != sr.TM.UOps {
		t.Errorf("TM µops: multicore %d, serial %d", mr.Aggregate.TM.UOps, sr.TM.UOps)
	}
	if mr.Coherence.Invalidations != 0 || mr.Coherence.Transfers != 0 {
		t.Errorf("coherence events on a single core: %+v", mr.Coherence)
	}
}

// TestMulticoreScalesCores checks the 4-core run completes and every core
// contributed; a coarse sanity check ahead of the fastbench sweep.
func TestMulticoreScalesCores(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	r, out := runMulticore(t, 4, 80)
	if !strings.Contains(out, "K") {
		t.Fatalf("4-core reduction not verified: console %q", out)
	}
	for i, cr := range r.PerCore {
		if cr.Instructions == 0 {
			t.Errorf("core %d committed no instructions", i)
		}
	}
}
