package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/fm"
	"repro/internal/fpga"
	"repro/internal/hostlink"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/tm"
	"repro/internal/trace"
)

// ParallelSim runs the functional model and the timing model in separate
// goroutines, coupled only by the trace buffer and a TM→FM command channel
// — the software realization of §3's parallelization across the
// functional/timing boundary. The FM runs ahead speculatively; round trips
// occur only on mispredicts, resolutions and the commit stream.
//
// Cross-goroutine synchronization is chunked (§3.1's Amdahl argument made
// concrete): the producer publishes trace entries a chunk at a time through
// a trace.Appender, the TM consumes chunk views, and the commit stream is
// batched at the chunk stride — one channel send per chunk instead of one
// per instruction. The producer's accounting fields are goroutine-local
// (the command loop runs on the producer), so the steady-state entry path
// acquires no locks at all.
//
// Architectural results (instructions, branch outcomes, basic blocks) are
// identical to the serial mode; cycle counts can differ slightly because
// fetch-bubble timing depends on real goroutine scheduling rather than the
// modeled production rate.
type ParallelSim struct {
	cfg Config
	FM  *fm.Model
	TM  *tm.TM
	TB  *trace.Buffer

	// Producer-side chunking over TB, plus the TM-side view scratch.
	app     *trace.Appender
	viewBuf []trace.Entry // parSource.FetchChunk scratch (TM goroutine)
	chunkH  *obs.Histogram

	link *hostlink.Link

	// Observability (tlog nil unless the run captures a timeline).
	tlog *obs.TraceLog
	pid  int

	cmds   chan command
	done   chan struct{}
	notify chan struct{} // producer progress ticks for blocking fetches

	// Producer-goroutine-owned accounting (the command loop runs on the
	// producer, so no lock is needed; RunContext reads them only after the
	// producer's WaitGroup establishes the happens-before edge).
	fmNanos       float64
	bbSincePoll   int
	pendingWords  int
	wrongPath     bool
	wrongProduced uint64

	// TM-goroutine-owned commit batching: retirements accumulate and one
	// cmdCommit carrying the latest IN covers the whole batch (the commit
	// pointer is monotone).
	commitStride int
	commitPend   int
	lastCommit   uint64

	// terminalFlag is set by the producer when the FM is halted forever
	// *on the right path*: only then may the TM treat the stream as ended.
	// A wrong-path HALT is speculative and will be rolled back by the
	// pending resolution.
	terminalFlag atomic.Bool

	err error
}

type cmdKind uint8

const (
	cmdCommit cmdKind = iota
	cmdMispredict
	cmdResolve
)

type command struct {
	kind cmdKind
	in   uint64
	pc   isa.Word
	// ack is closed by the producer once the command has been applied.
	// Mispredict and Resolve are round-trip communications (§3.1): the TM
	// waits for the FM to be re-steered — which is also what makes it safe
	// for the TM to resume fetching after a recovery (the stale wrong-path
	// entries are guaranteed rewound). Commits are one-way (ack == nil).
	ack chan struct{}
}

// NewParallel builds a goroutine-coupled simulator.
func NewParallel(cfg Config) (*ParallelSim, error) {
	if cfg.TBCapacity == 0 {
		cfg.TBCapacity = 512
	}
	if cfg.Clock.MHz == 0 {
		cfg.Clock = fpga.DefaultClock
	}
	if cfg.FMNanosPerInst == 0 {
		cfg.FMNanosPerInst = 87
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 2_000_000_000
	}
	cfg.FM.Telemetry = cfg.Telemetry
	p := &ParallelSim{
		cfg:    cfg,
		FM:     fm.New(cfg.FM),
		TB:     trace.NewBuffer(cfg.TBCapacity),
		link:   hostlink.New(cfg.Link),
		cmds:   make(chan command, 4096),
		done:   make(chan struct{}),
		notify: make(chan struct{}, 1),
	}
	p.link.Attach(cfg.Telemetry)
	p.app = p.TB.NewAppender(cfg.TraceChunk)
	p.app.OnFlush = p.onFlush
	p.viewBuf = make([]trace.Entry, p.app.ChunkSize())
	p.commitStride = p.app.ChunkSize()
	p.chunkH = cfg.Telemetry.Histogram(
		obs.L("core_trace_chunk_entries", "coupling", "parallel"), obs.ChunkBuckets)
	if tlog := cfg.Telemetry.TraceLog(); tlog != nil {
		p.tlog, p.pid = tlog, obs.NextPID()
		openTraceTracks(tlog, p.pid, "parallel")
	}
	t, err := tm.New(cfg.TM, (*parSource)(p), (*parControl)(p))
	if err != nil {
		return nil, err
	}
	p.TM = t
	return p, nil
}

// LoadProgram loads an assembled image into the functional model.
func (p *ParallelSim) LoadProgram(prog *isa.Program) { p.FM.LoadProgram(prog) }

func (p *ParallelSim) terminal() bool {
	if p.FM.Fatal() != nil {
		return true
	}
	return p.FM.Halted() && p.FM.Flags&isa.FlagI == 0
}

// Run executes the coupled simulation with the FM as a producer goroutine
// and the TM on the calling goroutine.
func (p *ParallelSim) Run() (Result, error) { return p.RunContext(context.Background()) }

// RunContext is Run with cooperative cancellation: on ctx cancellation the
// TM loop stops at a cycle boundary, the producer goroutine is shut down
// through the done channel (no goroutine is abandoned), and the partial
// result returns alongside ctx.Err().
func (p *ParallelSim) RunContext(ctx context.Context) (Result, error) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.producer()
	}()

	var ticks uint64
	for !p.TM.Done() {
		if p.cfg.MaxInstructions > 0 && p.TM.Stats.Instructions >= p.cfg.MaxInstructions {
			break
		}
		if p.TM.Cycle() >= p.cfg.MaxCycles {
			p.err = fmt.Errorf("core: exceeded max cycles %d", p.cfg.MaxCycles)
			break
		}
		if ticks++; ticks%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				p.err = err
				break
			}
		}
		p.TM.Step()
	}
	close(p.done)
	wg.Wait()

	// The producer has exited: its accounting fields are safe to read, and
	// trace words from a chunk a re-steer discarded before publish still
	// owe their link burst.
	if p.pendingWords > 0 {
		p.link.BurstWrite(p.pendingWords)
		p.pendingWords = 0
	}
	return buildResult(p.cfg, p.TM, p.FM, p.TB, p.link, p.fmNanos, p.wrongProduced, p.tlog, p.pid), p.err
}

// producer is the FM goroutine: it speculatively runs ahead, appending
// trace entries into the chunk, and services TM commands.
func (p *ParallelSim) producer() {
	var pending *trace.Entry
	// idleLimit guards against a hung target (HALT with interrupts enabled
	// but no interrupt source): after this many idle ticks with no wake,
	// the stream is declared over.
	const idleLimit = 50_000_000
	idleTicks := uint64(0)
	// sink accounts one block-produced entry and parks the first that does
	// not fit, stopping the block. Hoisted out of the loop (one closure for
	// the goroutine's lifetime) and parking a fresh copy so the parameter
	// itself never escapes — the hot path stays allocation-free.
	sink := func(e trace.Entry) bool {
		p.fmNanos += p.entryCost(e)
		if p.wrongPath {
			p.wrongProduced++
		}
		if !p.app.TryAppend(e) {
			parked := e
			pending = &parked
			return false
		}
		return true
	}
	blocks := p.FM.SuperblocksEnabled()
	for {
		// Drain pending commands first — they may roll the FM back and
		// invalidate the pending entry.
		for {
			select {
			case c := <-p.cmds:
				p.apply(c, &pending)
				continue
			case <-p.done:
				return
			default:
			}
			break
		}
		if pending != nil {
			if pending.IN >= p.FM.IN() {
				pending = nil // rolled back underneath us
			} else if p.app.TryAppend(*pending) {
				pending = nil
			} else {
				// Buffer full: we have run as far ahead as allowed. Publish
				// the partial chunk (the capacity gate guarantees it fits)
				// so the TM can drain it, then block on the next command (a
				// commit frees space, a re-steer rewinds).
				p.app.Flush()
				select {
				case c := <-p.cmds:
					p.apply(c, &pending)
				case <-p.done:
					return
				}
				continue
			}
		}
		if p.terminal() || idleTicks > idleLimit {
			// The FM can do nothing more on its own. This is NOT
			// necessarily the end of the run: the TM may still re-steer
			// us into a wrong path (a mispredicted branch it has not
			// reached yet), or a resolve may roll a speculative
			// wrong-path HALT back. Publish the partial chunk and the
			// terminal state — in that order, so the TM never sees
			// end-of-stream with entries still unpublished — and service
			// commands.
			if p.app.Flush() {
				p.terminalFlag.Store(true)
			}
			p.tick()
			select {
			case c := <-p.cmds:
				p.apply(c, &pending)
				if !p.terminal() {
					idleTicks = 0
				}
			case <-p.done:
				return
			}
			continue
		}
		if p.FM.Halted() {
			// Waiting for a timer wake: publish what the TM can already
			// consume, then let idle time pass.
			p.app.Flush()
			p.FM.AdvanceIdle(1)
			idleTicks++
			continue
		}
		idleTicks = 0
		if blocks {
			// Run a superblock at a time. The sink parks the first entry
			// that does not fit and stops the block — the loop top then
			// flushes and blocks on commands exactly as the
			// per-instruction path did. Commands are drained once per
			// block rather than per instruction; fast-parallel coupling
			// is asynchronous by design (§3.3), so command latency is a
			// performance knob, not an architectural one.
			p.FM.StepBlock(sink)
			continue
		}
		e, ok := p.FM.Step()
		if !ok {
			continue
		}
		p.fmNanos += p.entryCost(e)
		if p.wrongPath {
			p.wrongProduced++
		}
		if !p.app.TryAppend(e) {
			pending = &e
		}
	}
}

// onFlush observes every published chunk on the producer goroutine: one
// link burst for the accumulated words, a consumer wake-up, and telemetry.
func (p *ParallelSim) onFlush(entries, occupancy int) {
	if p.pendingWords > 0 {
		p.link.BurstWrite(p.pendingWords)
		p.pendingWords = 0
	}
	p.chunkH.Observe(float64(entries))
	if p.tlog != nil {
		p.tlog.CounterSample("tb_occupancy", p.pid, p.fmNanos,
			map[string]any{"entries": occupancy})
	}
	p.tick()
}

// tick wakes a TM goroutine blocked waiting for producer progress.
func (p *ParallelSim) tick() {
	select {
	case p.notify <- struct{}{}:
	default:
	}
}

// entryCost prices one entry into the FM's host time: execution, its share
// of the chunk's burst write, and the periodic poll. Producer-owned — no
// lock.
func (p *ParallelSim) entryCost(e trace.Entry) float64 {
	cost := p.cfg.FMNanosPerInst
	words := trace.DefaultEncoding.Words(e)
	cost += p.link.BurstNanos(words)
	p.pendingWords += words
	if e.Branch {
		p.bbSincePoll++
		if p.cfg.PollEveryBBs > 0 && p.bbSincePoll >= p.cfg.PollEveryBBs {
			p.bbSincePoll = 0
			cost += p.link.Poll(1)
		}
	}
	return cost
}

func (p *ParallelSim) apply(c command, pending **trace.Entry) {
	switch c.kind {
	case cmdCommit:
		p.TB.Commit(c.in)
		p.FM.Commit(c.in)
	case cmdMispredict, cmdResolve:
		p.app.Rewind(c.in)
		// The re-steer revives the FM; clear the end-of-stream hint before
		// the TM resumes (the ack provides the happens-before edge).
		p.terminalFlag.Store(false)
		defer close(c.ack)
		rolledBefore := p.FM.RolledBack
		if err := p.FM.SetPC(c.in, c.pc); err != nil {
			panic(fmt.Sprintf("core: parallel re-steer failed: %v", err))
		}
		*pending = nil
		if c.kind == cmdMispredict {
			p.wrongPath = true
			if !p.cfg.BPP {
				p.fmNanos += p.link.Poll(1)
				p.fmNanos += float64(p.FM.RolledBack-rolledBefore) * p.cfg.FMRollbackNanosPerInst
			}
		} else {
			p.wrongPath = false
			p.fmNanos += p.link.Poll(1)
			p.fmNanos += float64(p.FM.RolledBack-rolledBefore) * p.cfg.FMRollbackNanosPerInst
		}
	}
}

// parSource adapts the parallel sim to tm.Source (runs on the TM
// goroutine).
type parSource ParallelSim

// flushCommits sends the batched commit pointer to the producer. Called
// before the TM blocks on producer progress: withholding retirements while
// the producer waits for buffer space would deadlock, so any pending batch
// is released at the block boundary.
func (ps *ParallelSim) flushCommits() {
	if ps.commitPend == 0 {
		return
	}
	ps.commitPend = 0
	ps.cmds <- command{kind: cmdCommit, in: ps.lastCommit}
}

// Fetch implements tm.Source. It blocks until the producer delivers the
// entry or the stream genuinely ends: in the parallel coupling the trace
// buffer is the synchronizer, so host-scheduling hiccups do not masquerade
// as target fetch bubbles. (The modeled FM-rate bubbles are the serial
// mode's job.) The end-of-stream condition needs both sides: the producer
// says the FM is stuck (terminalFlag) and the TM — which only fetches when
// not recovering — wants an entry past everything produced.
func (p *parSource) Fetch(in uint64) (trace.Entry, tm.FetchStatus) {
	ps := (*ParallelSim)(p)
	for {
		if e, ok := ps.TB.TryFetch(in); ok {
			return e, tm.FetchOK
		}
		if ps.terminalFlag.Load() && in >= ps.TB.Produced() {
			return trace.Entry{}, tm.FetchEnd
		}
		ps.flushCommits()
		select {
		case <-ps.notify:
		case <-ps.done:
			return trace.Entry{}, tm.FetchEnd
		}
	}
}

// FetchChunk implements tm.ChunkSource: one buffer lock hands the TM a run
// of entries it then consumes lock-free until the view drains or a re-steer
// drops it.
func (p *parSource) FetchChunk(in uint64) ([]trace.Entry, tm.FetchStatus) {
	ps := (*ParallelSim)(p)
	for {
		if n := ps.TB.TryFetchChunk(in, ps.viewBuf); n > 0 {
			return ps.viewBuf[:n], tm.FetchOK
		}
		if ps.terminalFlag.Load() && in >= ps.TB.Produced() {
			return nil, tm.FetchEnd
		}
		ps.flushCommits()
		select {
		case <-ps.notify:
		case <-ps.done:
			return nil, tm.FetchEnd
		}
	}
}

// parControl adapts the parallel sim to tm.Control (runs on the TM
// goroutine); commands travel to the producer over the channel.
type parControl ParallelSim

// Commit implements tm.Control. Retirements batch at the chunk stride: the
// commit pointer is monotone, so one command carrying the newest IN
// releases the whole batch — one channel send per chunk of instructions.
func (p *parControl) Commit(in uint64) {
	ps := (*ParallelSim)(p)
	ps.lastCommit = in
	if ps.commitPend++; ps.commitPend >= ps.commitStride {
		ps.commitPend = 0
		ps.cmds <- command{kind: cmdCommit, in: in}
	}
}

// Mispredict implements tm.Control. Re-steers are round trips: the call
// returns only after the producer has rewound the FM. The batched commits
// flush first so the producer observes them before the rewind.
func (p *parControl) Mispredict(in uint64, wrongPC isa.Word) {
	ps := (*ParallelSim)(p)
	ps.flushCommits()
	ack := make(chan struct{})
	ps.cmds <- command{kind: cmdMispredict, in: in, pc: wrongPC, ack: ack}
	<-ack
}

// Resolve implements tm.Control (round trip, like Mispredict).
func (p *parControl) Resolve(in uint64, rightPC isa.Word) {
	ps := (*ParallelSim)(p)
	ps.flushCommits()
	ack := make(chan struct{})
	ps.cmds <- command{kind: cmdResolve, in: in, pc: rightPC, ack: ack}
	<-ack
}
