// Package core implements the FAST simulator proper: the speculative
// functional model (internal/fm) coupled to the FPGA-hosted timing model
// (internal/tm) through the trace buffer (internal/trace), over the DRC
// host link (internal/hostlink).
//
// Two coupling modes are provided:
//
//   - Serial (default): a deterministic co-simulation. Each target cycle
//     the timing model executes, and the functional model receives a host
//     time budget equal to the host time the TM just consumed; it produces
//     trace entries (including speculative wrong-path run-ahead) as that
//     budget allows. This models the two components running in parallel at
//     their real relative rates — reproducibly.
//
//   - Parallel: the FM and TM actually run in separate goroutines coupled
//     by the blocking trace buffer, with TM→FM commands (commit,
//     mispredict, resolve) on a channel. This realizes §3's claim that the
//     speculative functional model makes the functional/timing boundary
//     latency-tolerant: the producer runs ahead of the consumer and is
//     only re-steered on round trips.
//
// The performance model (Result) accounts host time the way §4.5 does:
// trace burst writes at the link's per-word cost, blocking poll reads every
// other basic block (or per re-steer, ablation A2), FM instruction
// execution at the modified-QEMU rate, and FPGA host cycles per target
// cycle for the TM. Reported MIPS are target-path MIPS: committed
// instructions plus TM-requested wrong-path instructions, like the paper's
// Figure 4.
package core

import (
	"context"
	"fmt"

	"repro/internal/fm"
	"repro/internal/fpga"
	"repro/internal/hostlink"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/tm"
	"repro/internal/trace"
)

// Config assembles a FAST simulator.
type Config struct {
	TM tm.Config
	FM fm.Config

	// TBCapacity bounds functional-model run-ahead (trace buffer entries).
	TBCapacity int

	// TraceChunk is how many trace entries the FM accumulates locally
	// before publishing them to the TB with one synchronized operation
	// (and one modeled link burst — the packed records stream a chunk at
	// a time). 0 selects trace.DefaultChunk; 1 degenerates to per-entry
	// coupling. Architectural results are identical for every value ≥ 1;
	// only host-side synchronization cost and the modeled transfer count
	// change.
	TraceChunk int

	// Link is the host CPU↔FPGA channel.
	Link hostlink.Config
	// Clock is the FPGA host clock (default 100 MHz).
	Clock fpga.Clock

	// FMNanosPerInst is the functional model's execution cost per
	// instruction: 87 ns for the paper's modified QEMU with tracing and
	// checkpointing (11.5 MIPS, §4.5).
	FMNanosPerInst float64
	// FMRollbackNanosPerInst is the per-instruction cost of undoing
	// speculative work on a set_pc.
	FMRollbackNanosPerInst float64

	// PollEveryBBs makes the FM poll the FPGA queue every N basic blocks
	// (the prototype's 2, §4). 0 polls only on re-steers — the architected
	// behaviour the prototype had not reached yet (ablation A2/A6).
	PollEveryBBs int

	// BPP enables the FM-side branch-predictor-predictor (§2.1): the FM
	// anticipates target-path divergence, so a Mispredict re-steer needs
	// no rollback work or extra poll read (ablation A3).
	BPP bool

	// MaxInstructions stops the run after this many committed
	// instructions (0 = run to completion).
	MaxInstructions uint64
	// MaxCycles bounds target cycles as a safety net.
	MaxCycles uint64

	// SnapshotHook, when non-nil, arms a one-shot warm-start capture: at
	// the first quiescent boundary at or after the FM's first user-mode
	// instruction (boot complete), the coupled state is serialized and the
	// hook receives the committed instruction count and the blob. Arming
	// it changes no modeled quantity — capture is pure observation.
	SnapshotHook func(in uint64, blob []byte)

	// Telemetry, when non-nil, receives the run's metrics (fm_*, tm_*,
	// hostlink_*, core_* series) and — when it carries a TraceLog — a
	// Chrome trace_event timeline of the FM/TM/link phases: re-steer
	// instants, trace-buffer occupancy samples and per-side host-time
	// spans. Nil telemetry costs a nil check per instrumented event.
	Telemetry *obs.Telemetry
}

// DefaultConfig returns the prototype configuration of §4.
func DefaultConfig() Config {
	return Config{
		TM: tm.DefaultConfig(),
		FM: fm.Config{
			ICacheEntries: fm.DefaultICacheEntries,
			SuperblockLen: fm.DefaultSuperblockLen,
		},
		TBCapacity:             512,
		Link:                   hostlink.DRC(),
		Clock:                  fpga.DefaultClock,
		FMNanosPerInst:         87,
		FMRollbackNanosPerInst: 30,
		PollEveryBBs:           2,
		MaxCycles:              2_000_000_000,
	}
}

// Result summarizes one run.
type Result struct {
	Instructions uint64 // committed (right-path) instructions
	WrongPath    uint64 // TM-requested wrong-path instructions produced
	TargetCycles uint64
	IPC          float64

	// Host-time accounting (performance model).
	FMNanos    float64 // FM execution + trace writes + polls + rollbacks
	TMNanos    float64 // FPGA host cycles × cycle time
	SimNanos   float64 // end-to-end simulated wall time
	TargetMIPS float64 // paper's Figure 4 metric

	BPAccuracy     float64
	Mispredicts    uint64
	Rollbacks      uint64
	TraceWords     uint64
	LinkStats      hostlink.Stats
	TM             tm.Stats
	TBMaxOccupancy int
}

func (r Result) String() string {
	return fmt.Sprintf("inst=%d cycles=%d IPC=%.3f bp=%.2f%% MIPS=%.2f (fm=%.1fms tm=%.1fms)",
		r.Instructions, r.TargetCycles, r.IPC, 100*r.BPAccuracy, r.TargetMIPS,
		r.FMNanos/1e6, r.TMNanos/1e6)
}

// Sim is a coupled FAST simulator instance.
type Sim struct {
	cfg Config
	FM  *fm.Model
	TM  *tm.TM
	TB  *trace.Buffer

	// app is the producer-side chunking façade over TB: the FM appends
	// into a locally-owned chunk and publishes per chunk. pump flushes it
	// before every TM.Step, so entry visibility at cycle boundaries — and
	// therefore every architectural result — is independent of the chunk
	// size.
	app     *trace.Appender
	viewBuf []trace.Entry // serialSource.FetchChunk scratch

	link *hostlink.Link
	// pendingWords accumulates the trace words of the open chunk; the
	// flush records them as one link burst (each entry's cost still enters
	// the FM budget per entry, keeping the serial host-time arithmetic
	// identical to per-entry coupling).
	pendingWords int
	chunkH       *obs.Histogram

	// Observability: tlog is non-nil only when the run captures a
	// timeline; pid is its trace track.
	tlog *obs.TraceLog
	pid  int

	// FM-side accounting.
	fmNanos       float64
	budget        float64 // host nanoseconds available to the FM (serial mode)
	bbSincePoll   int
	wrongPath     bool
	wrongIN       uint64
	wrongProduced uint64
	committed     uint64
	lastHost      uint64

	// Warm-start capture: trackUser latches sawUser at the FM's first
	// user-mode instruction; snapHook is the armed one-shot capture
	// callback (serial runs own theirs, multicore containers keep it at
	// the container and arm only the tracking on the boot core).
	trackUser bool
	sawUser   bool
	snapHook  func(in uint64, blob []byte)

	// sink is the bound pumpSink handed to FM.StepBlock, created once at
	// construction (a fresh method value per call would allocate). nil
	// when superblocks are off — pump then takes the plain Step path.
	sink func(trace.Entry) bool

	err error
}

// Trace track ids within a run's process: one per simulator phase.
const (
	tidTM   = 1 // FPGA-hosted timing model
	tidFM   = 2 // speculative functional model
	tidLink = 3 // host CPU↔FPGA channel
)

// openTraceTracks labels a run's process and phase tracks in the timeline.
func openTraceTracks(tlog *obs.TraceLog, pid int, coupling string) {
	tlog.ProcessName(pid, "FAST "+coupling+" run")
	tlog.ThreadName(pid, tidTM, "TM (timing model)")
	tlog.ThreadName(pid, tidFM, "FM (functional model)")
	tlog.ThreadName(pid, tidLink, "host link")
}

// New builds a simulator; load a program into s.FM before Run.
func New(cfg Config) (*Sim, error) {
	if cfg.TBCapacity == 0 {
		cfg.TBCapacity = 512
	}
	if cfg.Clock.MHz == 0 {
		cfg.Clock = fpga.DefaultClock
	}
	if cfg.FMNanosPerInst == 0 {
		cfg.FMNanosPerInst = 87
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 2_000_000_000
	}
	cfg.FM.Telemetry = cfg.Telemetry
	s := &Sim{
		cfg:  cfg,
		FM:   fm.New(cfg.FM),
		TB:   trace.NewBuffer(cfg.TBCapacity),
		link: hostlink.New(cfg.Link),
	}
	s.link.Attach(cfg.Telemetry)
	if s.FM.SuperblocksEnabled() {
		s.sink = s.pumpSink
	}
	s.app = s.TB.NewAppender(cfg.TraceChunk)
	s.app.OnFlush = s.onFlush
	s.viewBuf = make([]trace.Entry, s.app.ChunkSize())
	s.chunkH = cfg.Telemetry.Histogram(
		obs.L("core_trace_chunk_entries", "coupling", "serial"), obs.ChunkBuckets)
	if tlog := cfg.Telemetry.TraceLog(); tlog != nil {
		s.tlog, s.pid = tlog, obs.NextPID()
		openTraceTracks(tlog, s.pid, "serial")
	}
	s.snapHook = cfg.SnapshotHook
	s.trackUser = s.snapHook != nil
	t, err := tm.New(cfg.TM, (*serialSource)(s), (*serialControl)(s))
	if err != nil {
		return nil, err
	}
	s.TM = t
	return s, nil
}

// LoadProgram loads an assembled image into the functional model.
func (s *Sim) LoadProgram(p *isa.Program) { s.FM.LoadProgram(p) }

// terminal reports whether the FM can make no further progress on its own.
func (s *Sim) terminal() bool {
	if s.FM.Fatal() != nil {
		return true
	}
	// HALT with interrupts disabled is the shutdown idiom: nothing can
	// ever wake the target.
	return s.FM.Halted() && s.FM.Flags&isa.FlagI == 0
}

// pump lets the functional model spend its accumulated host-time budget
// producing trace entries (running ahead speculatively, §3). Entries land
// in the appender's local chunk; the trailing Flush publishes the partial
// chunk so the TM.Step that follows sees exactly what per-entry coupling
// would have shown it. The FM runs a superblock at a time (StepBlock);
// pumpSink re-checks the loop predicates after every entry, so the block
// path stops at exactly the instruction per-instruction stepping would.
func (s *Sim) pump() {
	for {
		if s.terminal() {
			break
		}
		if s.FM.Halted() {
			// Idle time passes at the TM's rate; nothing to produce.
			break
		}
		if s.app.Live() >= s.TB.Cap() {
			break
		}
		// Peek at the cost of one more instruction.
		if s.budget < s.cfg.FMNanosPerInst {
			break
		}
		if s.sink != nil {
			if s.FM.StepBlock(s.sink) == 0 {
				break
			}
			continue
		}
		// Superblocks off: plain per-instruction stepping, no sink
		// indirection on the hot path.
		e, ok := s.FM.Step()
		if !ok {
			break
		}
		s.pumpSink(e)
	}
	s.app.Flush()
}

// pumpSink accounts one produced entry and reports whether the current
// superblock may keep running: the same budget and occupancy predicates
// the pump loop checks between instructions.
func (s *Sim) pumpSink(e trace.Entry) bool {
	cost := s.entryCost(e)
	s.budget -= cost
	s.fmNanos += cost
	if s.wrongPath {
		s.wrongProduced++
	}
	if !s.app.TryAppend(e) {
		panic("core: trace buffer overflow despite occupancy check")
	}
	return s.budget >= s.cfg.FMNanosPerInst && s.app.Live() < s.TB.Cap()
}

// onFlush observes every published chunk: the accumulated words of its
// entries ship as one link burst, and telemetry sees the chunk size and
// post-publish TB occupancy.
func (s *Sim) onFlush(entries, occupancy int) {
	if s.pendingWords > 0 {
		s.link.BurstWrite(s.pendingWords)
		s.pendingWords = 0
	}
	s.chunkH.Observe(float64(entries))
	if s.tlog != nil {
		s.tlog.CounterSample("tb_occupancy", s.pid,
			s.cfg.Clock.Nanos(s.TM.HostCycles()),
			map[string]any{"entries": occupancy})
	}
}

// entryCost is the FM host time to produce and ship one entry. The burst
// cost enters the budget here, per entry (keeping the serial host-time
// arithmetic chunk-size-independent); the words accumulate and are
// recorded against the link when the chunk publishes.
func (s *Sim) entryCost(e trace.Entry) float64 {
	cost := s.cfg.FMNanosPerInst
	words := s.encWords(e)
	cost += s.link.BurstNanos(words)
	s.pendingWords += words
	if e.Branch {
		s.bbSincePoll++
		if s.cfg.PollEveryBBs > 0 && s.bbSincePoll >= s.cfg.PollEveryBBs {
			s.bbSincePoll = 0
			cost += s.link.Poll(1)
		}
	}
	return cost
}

func (s *Sim) encWords(e trace.Entry) int {
	return trace.DefaultEncoding.Words(e)
}

// Run executes the coupled simulation to completion (or the configured
// limits) and returns the result.
func (s *Sim) Run() (Result, error) { return s.RunContext(context.Background()) }

// ctxCheckInterval is how many iterations of a run loop pass between
// context-cancellation checks: frequent enough that SIGINT lands within
// microseconds of simulated work, rare enough to cost nothing.
const ctxCheckInterval = 1024

// RunContext is Run with cooperative cancellation: when ctx is cancelled
// the loop stops at the next cycle boundary and returns the partial result
// alongside ctx.Err().
func (s *Sim) RunContext(ctx context.Context) (Result, error) {
	var ticks uint64
	for !s.TM.Done() {
		if s.cfg.MaxInstructions > 0 && s.committed >= s.cfg.MaxInstructions {
			break
		}
		if s.TM.Cycle() >= s.cfg.MaxCycles {
			s.err = fmt.Errorf("core: exceeded max cycles %d", s.cfg.MaxCycles)
			break
		}
		if ticks++; ticks%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				s.err = err
				break
			}
		}
		s.stepCycle()
		// Deadlock guard: if the FM is terminally halted and the TB is
		// drained, the TM will see FetchEnd and drain itself.
	}
	return s.result(), s.err
}

// stepCycle advances the coupled simulation by one target cycle: the FM is
// granted the host time the TM consumed last cycle, produces trace entries
// as that budget allows, then the TM executes one cycle. The serial run
// loop and the multicore quantum scheduler share this body, so a one-core
// multicore run is cycle-for-cycle the serial simulation.
func (s *Sim) stepCycle() {
	if s.trackUser {
		s.observeBoot()
	}
	h := s.TM.HostCycles()
	s.budget += s.cfg.Clock.Nanos(h - s.lastHost)
	s.lastHost = h
	if s.FM.Halted() && !s.terminal() {
		s.FM.AdvanceIdle(1)
	}
	s.pump()
	s.TM.Step()
}

// converged reports whether the core's shared-memory state is stable: the
// FM is not inside a wrong-path episode and the TM's fetch pointer has
// consumed every produced entry, so any future re-steer targets an IN
// beyond everything already produced and no store in memory can be undone.
// This is the multicore quantum boundary condition.
func (s *Sim) converged() bool {
	return !s.wrongPath && s.TM.NextFetchIN() >= s.app.NextIN()
}

// converge steps the TM — without granting the FM budget to produce new
// entries — until the core converges or its TM drains. The cycles spent
// here are the modeled cost of quantum synchronization.
func (s *Sim) converge() {
	s.app.Flush()
	for !s.TM.Done() && !s.converged() {
		if s.TM.Cycle() >= s.cfg.MaxCycles {
			s.err = fmt.Errorf("core: exceeded max cycles %d during convergence", s.cfg.MaxCycles)
			return
		}
		h := s.TM.HostCycles()
		s.budget += s.cfg.Clock.Nanos(h - s.lastHost)
		s.lastHost = h
		s.TM.Step()
	}
}

func (s *Sim) result() Result {
	// Drain trace words whose chunk was discarded by a re-steer before it
	// ever published: their burst cost entered the FM budget at production
	// time (as in per-entry coupling) and must reach the link totals.
	if s.pendingWords > 0 {
		s.link.BurstWrite(s.pendingWords)
		s.pendingWords = 0
	}
	return buildResult(s.cfg, s.TM, s.FM, s.TB, s.link, s.fmNanos, s.wrongProduced, s.tlog, s.pid)
}

// buildResult assembles the canonical run summary from a finished coupled
// simulation — shared by the serial and goroutine-parallel engines, which
// account host time identically.
func buildResult(cfg Config, t *tm.TM, f *fm.Model, tb *trace.Buffer,
	link *hostlink.Link, fmNanos float64, wrongProduced uint64,
	tlog *obs.TraceLog, pid int) Result {
	st := t.Stats
	tmNanos := cfg.Clock.Nanos(t.HostCycles())
	r := Result{
		Instructions:   st.Instructions,
		WrongPath:      wrongProduced,
		TargetCycles:   st.Cycles,
		IPC:            st.IPC(),
		FMNanos:        fmNanos,
		TMNanos:        tmNanos,
		SimNanos:       tmNanos,
		BPAccuracy:     t.BPStats.Accuracy(),
		Mispredicts:    st.Mispredicts,
		Rollbacks:      f.Rollbacks,
		TraceWords:     f.TraceWords,
		LinkStats:      link.Stats(),
		TM:             st,
		TBMaxOccupancy: tb.MaxOccupancy(),
	}
	if r.SimNanos < r.FMNanos {
		// The FM never finished streaming inside the TM's time: it is the
		// bottleneck (possible with PollEveryBBs and slow links).
		r.SimNanos = r.FMNanos
	}
	if r.SimNanos > 0 {
		r.TargetMIPS = float64(r.Instructions+r.WrongPath) / r.SimNanos * 1e3
	}
	publishRun(cfg, t, f, r, tlog, pid)
	return r
}

// publishRun flushes the finished run into the configured telemetry: the
// per-layer metric series and the FM/TM/link phase spans of the timeline.
func publishRun(cfg Config, t *tm.TM, f *fm.Model, r Result, tlog *obs.TraceLog, pid int) {
	tel := cfg.Telemetry
	if tel == nil {
		return
	}
	t.PublishTelemetry(tel)
	f.PublishTelemetry(tel)
	tel.Counter("core_runs_total").Inc()
	tel.Counter("core_wrong_path_instructions_total").Add(r.WrongPath)
	tel.Counter("core_fm_nanos_total").Add(uint64(r.FMNanos))
	tel.Counter("core_tm_nanos_total").Add(uint64(r.TMNanos))
	tel.Counter("core_link_nanos_total").Add(uint64(r.LinkStats.Nanos))
	tel.Gauge("core_tb_max_occupancy").SetMax(int64(r.TBMaxOccupancy))
	if tlog != nil {
		// Phase spans: the modeled host time each side consumed, starting
		// at t=0 of the run's process — the §3.1 FM ∥ TM picture rendered
		// literally.
		tlog.Complete("phase", "TM: target execution", pid, tidTM, 0, r.TMNanos,
			map[string]any{"cycles": r.TargetCycles, "instructions": r.Instructions})
		tlog.Complete("phase", "FM: trace production", pid, tidFM, 0, r.FMNanos,
			map[string]any{"rollbacks": r.Rollbacks, "wrong_path": r.WrongPath})
		tlog.Complete("phase", "link: trace stream + polls", pid, tidLink, 0, r.LinkStats.Nanos,
			map[string]any{"reads": r.LinkStats.Reads, "writes": r.LinkStats.Writes,
				"burst_words": r.LinkStats.BurstWords})
	}
}

// serialSource adapts the Sim to the TM's Source interface.
type serialSource Sim

// Fetch implements tm.Source.
func (s *serialSource) Fetch(in uint64) (trace.Entry, tm.FetchStatus) {
	sim := (*Sim)(s)
	if e, ok := sim.TB.TryFetch(in); ok {
		return e, tm.FetchOK
	}
	// End of stream only when the FM is halted forever on the RIGHT path:
	// a wrong-path HALT is speculative and the pending resolution will
	// roll it back.
	if in >= sim.app.NextIN() && sim.terminal() && !sim.wrongPath {
		return trace.Entry{}, tm.FetchEnd
	}
	return trace.Entry{}, tm.FetchWait
}

// FetchChunk implements tm.ChunkSource: the TM pulls a run of live entries
// with one buffer lock instead of one per fetch slot. pump flushes before
// every TM.Step, so the live set the view captures is exactly the set
// per-entry fetches would have seen.
func (s *serialSource) FetchChunk(in uint64) ([]trace.Entry, tm.FetchStatus) {
	sim := (*Sim)(s)
	if n := sim.TB.TryFetchChunk(in, sim.viewBuf); n > 0 {
		return sim.viewBuf[:n], tm.FetchOK
	}
	if in >= sim.app.NextIN() && sim.terminal() && !sim.wrongPath {
		return nil, tm.FetchEnd
	}
	return nil, tm.FetchWait
}

// serialControl adapts the Sim to the TM's Control interface.
type serialControl Sim

// Commit implements tm.Control.
func (c *serialControl) Commit(in uint64) {
	sim := (*Sim)(c)
	sim.TB.Commit(in)
	sim.FM.Commit(in)
	sim.committed++
}

// Mispredict implements tm.Control: re-steer the FM down the predicted
// (wrong) path.
func (c *serialControl) Mispredict(in uint64, wrongPC isa.Word) {
	sim := (*Sim)(c)
	rolledBefore := sim.FM.RolledBack
	reExecBefore := sim.FM.ReExecuted()
	sim.app.Rewind(in)
	if err := sim.FM.SetPC(in, wrongPC); err != nil {
		// The FM had not yet produced in (it is behind): it will fetch
		// from wrongPC when it gets there only if redirected; a pure
		// redirect handles it.
		panic(fmt.Sprintf("core: mispredict re-steer failed: %v", err))
	}
	sim.wrongPath = true
	sim.wrongIN = in
	if sim.tlog != nil {
		sim.tlog.Instant("resteer", "mispredict", sim.pid, tidFM, sim.fmNanos,
			map[string]any{"in": in, "rolled_back": sim.FM.RolledBack - rolledBefore})
	}
	if !sim.cfg.BPP {
		sim.fmNanos += sim.link.Poll(1) // the extra mispredict read (§4.5)
		sim.fmNanos += float64(sim.FM.RolledBack-rolledBefore) * sim.cfg.FMRollbackNanosPerInst
		// Checkpoint-engine rollbacks really re-execute instructions;
		// charge them at full FM speed (§3.1's αBA).
		sim.fmNanos += float64(sim.FM.ReExecuted()-reExecBefore) * sim.cfg.FMNanosPerInst
	}
}

// Resolve implements tm.Control: return the FM to the right path.
func (c *serialControl) Resolve(in uint64, rightPC isa.Word) {
	sim := (*Sim)(c)
	rolledBefore := sim.FM.RolledBack
	reExecBefore := sim.FM.ReExecuted()
	sim.app.Rewind(in)
	if err := sim.FM.SetPC(in, rightPC); err != nil {
		panic(fmt.Sprintf("core: resolve re-steer failed: %v", err))
	}
	sim.wrongPath = false
	if sim.tlog != nil {
		sim.tlog.Instant("resteer", "resolve", sim.pid, tidFM, sim.fmNanos,
			map[string]any{"in": in, "rolled_back": sim.FM.RolledBack - rolledBefore})
	}
	sim.fmNanos += sim.link.Poll(1)
	sim.fmNanos += float64(sim.FM.RolledBack-rolledBefore) * sim.cfg.FMRollbackNanosPerInst
	sim.fmNanos += float64(sim.FM.ReExecuted()-reExecBefore) * sim.cfg.FMNanosPerInst
}
