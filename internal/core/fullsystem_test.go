package core

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// TestParallelFullSystemBoot runs the complete toyOS boot — BIOS, disk
// decompression, TLB-filled user mode, timer interrupts, syscalls — through
// the goroutine-parallel coupling, and checks it against the serial mode.
// This is the closest thing to the paper's headline demo: a full system
// booting on the parallel simulator. Run with -race in CI.
func TestParallelFullSystemBoot(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	spec, ok := workload.ByName("Linux-2.4")
	if !ok {
		t.Fatal("spec missing")
	}

	run := func(parallel bool) (Result, string) {
		boot, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.FM.Devices = boot.Devices()
		cfg.MaxInstructions = 420_000 // past user-mode entry (~270k) so TLB misses and timer IRQs occur
		var r Result
		if parallel {
			sim, err := NewParallel(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sim.LoadProgram(boot.Kernel)
			if r, err = sim.Run(); err != nil {
				t.Fatal(err)
			}
		} else {
			sim, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sim.LoadProgram(boot.Kernel)
			if r, err = sim.Run(); err != nil {
				t.Fatal(err)
			}
		}
		return r, string(boot.Console.Output())
	}

	serial, serialOut := run(false)
	par, parOut := run(true)

	if !strings.Contains(serialOut, "toyOS 2.4 booting") {
		t.Errorf("serial boot banner missing: %q", serialOut)
	}
	if !strings.Contains(parOut, "toyOS 2.4 booting") {
		t.Errorf("parallel boot banner missing: %q", parOut)
	}
	if par.Instructions == 0 || serial.Instructions == 0 {
		t.Fatal("no instructions committed")
	}
	// Interrupt timing is FM-side and both modes drive it from the same
	// deterministic device clocks, but wrong-path run-ahead differs, so
	// interrupt delivery points can shift; instruction counts stay within
	// a small band around the cap.
	lo, hi := serial.Instructions*95/100, serial.Instructions*105/100
	if par.Instructions < lo || par.Instructions > hi {
		t.Errorf("parallel committed %d, serial %d", par.Instructions, serial.Instructions)
	}
	if par.TM.Serializes == 0 || serial.TM.Serializes == 0 {
		t.Error("no interrupt/exception serializations observed during boot")
	}
	if par.Mispredicts == 0 {
		t.Error("boot ran without a single mispredict — implausible")
	}
}
