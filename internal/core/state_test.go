package core

import (
	"reflect"
	"testing"

	"repro/internal/workload"
)

// perlbmkCfg builds the serial configuration for the 253.perlbmk workload,
// whose periodic sleep system calls provide the quiescent boundaries the
// warm-start capture needs.
func perlbmkCfg(t *testing.T, maxInst uint64) (Config, *workload.Boot) {
	t.Helper()
	spec, ok := workload.ByName("253.perlbmk")
	if !ok {
		t.Fatal("253.perlbmk spec missing")
	}
	boot, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.FM.Devices = boot.Devices()
	cfg.MaxInstructions = maxInst
	return cfg, boot
}

// TestWarmStartBitIdentical is the non-negotiable warm-start contract: a
// run resumed from a boot snapshot produces a Result byte-identical to the
// uninterrupted run, and arming the capture hook perturbs nothing.
func TestWarmStartBitIdentical(t *testing.T) {
	const maxInst = 260_000

	run := func(hook func(uint64, []byte)) Result {
		cfg, boot := perlbmkCfg(t, maxInst)
		cfg.SnapshotHook = hook
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.LoadProgram(boot.Kernel)
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	cold := run(nil)

	var blob []byte
	var snapIN uint64
	hooked := run(func(in uint64, b []byte) { snapIN, blob = in, b })
	if blob == nil {
		t.Fatal("snapshot hook never fired — no quiescent boundary after boot")
	}
	if snapIN == 0 || snapIN >= maxInst {
		t.Fatalf("snapshot at IN %d, want inside (0, %d)", snapIN, maxInst)
	}
	if !reflect.DeepEqual(cold, hooked) {
		t.Fatalf("arming the snapshot hook perturbed the run:\ncold   %+v\nhooked %+v", cold, hooked)
	}

	cfg, _ := perlbmkCfg(t, maxInst)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(blob); err != nil {
		t.Fatal(err)
	}
	warm, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("warm-start run diverged from the cold run:\ncold %+v\nwarm %+v", cold, warm)
	}
	if warm.Instructions != cold.Instructions {
		t.Fatalf("warm committed %d, cold %d", warm.Instructions, cold.Instructions)
	}
}

// TestWarmStartSkipsBoot verifies the point of the exercise: the snapshot
// lands at or after user-mode entry, so a resumed run skips the boot-phase
// instructions entirely.
func TestWarmStartSkipsBoot(t *testing.T) {
	cfg, boot := perlbmkCfg(t, 260_000)
	var snapIN uint64
	cfg.SnapshotHook = func(in uint64, _ []byte) { snapIN = in }
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.LoadProgram(boot.Kernel)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if snapIN < 10_000 {
		t.Fatalf("snapshot at IN %d — before any plausible boot completion", snapIN)
	}
}

// smpSleepCfg builds the n-core sleeping SMP workload: every core sleeps
// each work iteration, so the whole target hits simultaneous quiescent
// round boundaries — the multicore capture condition.
func smpSleepCfg(t *testing.T, n, iters int) (Config, *workload.Boot) {
	t.Helper()
	k := workload.FastBoot()
	k.Cores = n
	k.SMPUser = true
	boot, err := workload.BuildBoot(k, workload.SMPSleepProgram(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.FM.Devices = boot.Devices()
	return cfg, boot
}

// TestMulticoreWarmStartBitIdentical is the multicore half of the
// warm-start contract: capture at a quiescent round boundary, restore onto
// a freshly built target, and the finished MulticoreResult must be
// byte-identical to the uninterrupted run — with the hook itself perturbing
// nothing.
func TestMulticoreWarmStartBitIdentical(t *testing.T) {
	const cores, iters = 4, 30

	run := func(hook func(uint64, []byte), blob []byte) MulticoreResult {
		cfg, boot := smpSleepCfg(t, cores, iters)
		cfg.SnapshotHook = hook
		m, err := NewMulticore(cfg, MulticoreConfig{Cores: cores})
		if err != nil {
			t.Fatal(err)
		}
		m.LoadProgram(boot.Kernel)
		if blob != nil {
			if err := m.Restore(blob); err != nil {
				t.Fatal(err)
			}
		}
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	cold := run(nil, nil)

	var blob []byte
	var snapIN uint64
	hooked := run(func(in uint64, b []byte) { snapIN, blob = in, b }, nil)
	if blob == nil {
		t.Fatal("multicore snapshot hook never fired — no all-core quiescent boundary")
	}
	if snapIN == 0 {
		t.Fatal("snapshot captured before any instruction committed")
	}
	if !reflect.DeepEqual(cold, hooked) {
		t.Fatalf("arming the snapshot hook perturbed the run:\ncold   %+v\nhooked %+v", cold, hooked)
	}

	warm := run(nil, blob)
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("multicore warm start diverged:\ncold %+v\nwarm %+v", cold, warm)
	}
}

// TestSnapshotRejectsCorruptBlob checks the decode-don't-panic contract at
// the top level: truncations and bit flips must surface as errors.
func TestSnapshotRejectsCorruptBlob(t *testing.T) {
	cfg, boot := perlbmkCfg(t, 260_000)
	var blob []byte
	cfg.SnapshotHook = func(_ uint64, b []byte) { blob = b }
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.LoadProgram(boot.Kernel)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if blob == nil {
		t.Fatal("no snapshot captured")
	}

	fresh := func() *Sim {
		cfg2, _ := perlbmkCfg(t, 260_000)
		s2, err := New(cfg2)
		if err != nil {
			t.Fatal(err)
		}
		return s2
	}
	for _, cut := range []int{1, len(blob) / 3, len(blob) - 1} {
		if err := fresh().Restore(blob[:cut]); err == nil {
			t.Errorf("restore of %d/%d bytes succeeded", cut, len(blob))
		}
	}
	if err := fresh().Restore(append(append([]byte(nil), blob...), 0xAB)); err == nil {
		t.Error("restore with trailing garbage succeeded")
	}
	flipped := append([]byte(nil), blob...)
	flipped[0] ^= 0xFF // version byte
	if err := fresh().Restore(flipped); err == nil {
		t.Error("restore with corrupt version succeeded")
	}
}
