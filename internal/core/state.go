package core

// Warm-start serialization of a coupled simulation. A snapshot is legal
// only at a quiescent boundary: the FM is asleep on the right path
// (HALT with interrupts enabled — toyOS's syssleep idiom), every produced
// trace entry has been committed by the TM, the TM pipeline is drained,
// and no re-steer is in flight. At that point the trace buffer is
// semantically empty and the whole coupled state reduces to the FM blob,
// the TM blob, the link counters and a handful of host-accounting scalars
// — which is what makes a resumed run bit-identical to the uninterrupted
// one: every cumulative counter continues exactly where the cold run's
// stood.
//
// Capture is pure observation. The boot-complete trigger (SnapshotHook)
// fires at the first quiescent boundary at or after the FM's first
// user-mode instruction; whether it is armed or not changes no modeled
// quantity, a property the determinism CI matrix locks.

import (
	"errors"

	"repro/internal/snap"
)

const (
	coreStateV      = 1
	multicoreStateV = 1
)

// Quiescent reports whether the coupled simulation is at a boundary where
// SaveState's drained-pipeline encoding is faithful: the FM idle-halted on
// the right path with nothing unpublished, the TB fully committed, and the
// TM drained with its fetch frontier caught up.
func (s *Sim) Quiescent() bool {
	return !s.wrongPath &&
		s.FM.Fatal() == nil &&
		s.FM.Halted() && !s.terminal() &&
		s.app.Pending() == 0 &&
		s.TB.Occupancy() == 0 &&
		s.TM.Quiescent() &&
		s.TM.NextFetchIN() >= s.app.NextIN()
}

// SaveState appends the coupled state. withMem selects whether the FM blob
// carries physical memory (single-core) or leaves it to a multicore
// container that serializes the shared memory once.
func (s *Sim) SaveState(w *snap.Writer, withMem bool) {
	w.U8(coreStateV)
	w.F64(s.fmNanos)
	w.F64(s.budget)
	w.I64(int64(s.bbSincePoll))
	w.I64(int64(s.pendingWords))
	w.U64(s.wrongProduced)
	w.U64(s.committed)
	w.U64(s.lastHost)
	w.U64(s.app.NextIN())
	w.I64(int64(s.TB.MaxOccupancy()))
	w.U64(s.app.Flushes())
	w.U64(s.app.Entries())
	s.link.SaveState(w)
	s.FM.SaveState(w, withMem)
	s.TM.SaveState(w)
}

// LoadState decodes state written by SaveState onto a freshly built Sim of
// identical configuration.
func (s *Sim) LoadState(r *snap.Reader, wantMem bool) error {
	if v := r.U8(); r.Err() == nil && v != coreStateV {
		return snap.Corruptf("core state version %d, want %d", v, coreStateV)
	}
	fmNanos, budget := r.F64(), r.F64()
	bbSincePoll, pendingWords := r.I64(), r.I64()
	wrongProduced, committed, lastHost := r.U64(), r.U64(), r.U64()
	nextIN := r.U64()
	maxOcc := r.I64()
	flushes, entries := r.U64(), r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if err := s.link.LoadState(r); err != nil {
		return err
	}
	if err := s.FM.LoadState(r, wantMem); err != nil {
		return err
	}
	if err := s.TM.LoadState(r); err != nil {
		return err
	}

	// Decode complete: apply.
	s.fmNanos, s.budget = fmNanos, budget
	s.bbSincePoll, s.pendingWords = int(bbSincePoll), int(pendingWords)
	s.wrongProduced, s.committed, s.lastHost = wrongProduced, committed, lastHost
	s.wrongPath, s.wrongIN = false, 0
	s.err = nil
	s.sawUser = true // a warm start resumes past boot by construction
	s.TB.ResetDrained(nextIN, int(maxOcc))
	s.app.Rebase(flushes, entries)
	return nil
}

// Snapshot serializes the coupled simulation at a quiescent boundary.
func (s *Sim) Snapshot() ([]byte, error) {
	if !s.Quiescent() {
		return nil, errors.New("core: snapshot outside a quiescent boundary")
	}
	w := snap.NewWriter(1 << 16)
	s.SaveState(w, true)
	return w.Bytes(), nil
}

// Restore reinstates a Snapshot blob onto a freshly built, identically
// configured Sim; Run then continues the captured run.
func (s *Sim) Restore(blob []byte) error {
	r := snap.NewReader(blob)
	if err := s.LoadState(r, true); err != nil {
		return err
	}
	return r.Close()
}

// observeBoot runs once per target cycle while user-mode tracking is
// armed: it latches the FM's first user-mode instruction and, when this
// Sim owns its own capture hook, fires it at the first quiescent boundary
// at or after that point. A multicore container arms only the tracking
// (the boot core reaches user mode mid-quantum, which round-boundary
// polling would miss) and performs capture itself at round boundaries.
func (s *Sim) observeBoot() {
	if !s.sawUser {
		if s.FM.Kernel() {
			return
		}
		s.sawUser = true
	}
	if s.snapHook == nil || !s.Quiescent() {
		return
	}
	hook := s.snapHook
	s.snapHook = nil
	blob, err := s.Snapshot()
	if err != nil {
		return
	}
	hook(s.committed, blob)
}

// Quiescent reports whether every core sits at a quiescent boundary — the
// multicore capture condition, checked at round boundaries where all cores
// have converged.
func (m *Multicore) Quiescent() bool {
	for _, s := range m.cores {
		if s.err != nil {
			return false
		}
		// A terminal core (idle-halted forever, or exited) is stable once
		// its pipeline has drained — its TM may legitimately be ended,
		// which the TM encoding preserves — so it does not block capture.
		if s.terminal() {
			if s.wrongPath || s.app.Pending() != 0 || s.TB.Occupancy() != 0 || !s.TM.Drained() {
				return false
			}
			continue
		}
		if !s.Quiescent() {
			return false
		}
	}
	return true
}

// Snapshot serializes the whole target: the shared physical memory once,
// the shared L2 + directory once, then each core without its memory.
func (m *Multicore) Snapshot() ([]byte, error) {
	if !m.Quiescent() {
		return nil, errors.New("core: multicore snapshot outside a quiescent boundary")
	}
	w := snap.NewWriter(1 << 16)
	w.U8(multicoreStateV)
	w.U32(uint32(len(m.cores)))
	m.sharedMem.SaveState(w)
	m.shared.SaveState(w)
	for _, s := range m.cores {
		s.SaveState(w, false)
	}
	return w.Bytes(), nil
}

// Restore reinstates a Snapshot blob onto a freshly built, identically
// configured Multicore.
func (m *Multicore) Restore(blob []byte) error {
	r := snap.NewReader(blob)
	if v := r.U8(); r.Err() == nil && v != multicoreStateV {
		return snap.Corruptf("multicore state version %d, want %d", v, multicoreStateV)
	}
	if n := r.U32(); r.Err() == nil && int(n) != len(m.cores) {
		return snap.Corruptf("multicore snapshot with %d cores, want %d", n, len(m.cores))
	}
	if err := m.sharedMem.LoadState(r); err != nil {
		return err
	}
	if err := m.shared.LoadState(r); err != nil {
		return err
	}
	for _, s := range m.cores {
		if err := s.LoadState(r, false); err != nil {
			return err
		}
	}
	if err := r.Close(); err != nil {
		return err
	}
	m.err = nil
	return nil
}

// maybeCapture fires the container's one-shot SnapshotHook when the boot
// core has reached user mode and every core is quiescent at this round
// boundary.
func (m *Multicore) maybeCapture() {
	if !m.cores[0].sawUser || !m.Quiescent() {
		return
	}
	hook := m.snapHook
	m.snapHook = nil
	blob, err := m.Snapshot()
	if err != nil {
		return
	}
	var committed uint64
	for _, s := range m.cores {
		committed += s.committed
	}
	hook(committed, blob)
}
