package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// TraceEvent is one Chrome trace_event record. Timestamps and durations are
// microseconds (the trace_event convention); helpers below convert from the
// nanoseconds the simulator accounts in. Load the written file in
// chrome://tracing or https://ui.perfetto.dev.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceLog accumulates trace events. Appends are mutex-protected so the
// FM/TM goroutines of a parallel coupling and concurrent fleet workers can
// share one log; the trace path is opt-in precisely because each event
// allocates.
type TraceLog struct {
	mu     sync.Mutex
	events []TraceEvent
}

// NewTraceLog builds an empty log.
func NewTraceLog() *TraceLog { return &TraceLog{} }

// pidCounter hands out distinct trace process ids so concurrent runs
// sharing one log (a fleet) land on separate tracks. pid 0 is reserved for
// the fleet itself.
var pidCounter atomic.Int64

// NextPID returns a fresh trace process id (1, 2, 3, ...).
func NextPID() int { return int(pidCounter.Add(1)) }

// Emit appends one raw event. Safe on a nil receiver (no-op).
func (l *TraceLog) Emit(ev TraceEvent) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

// Complete appends a complete ("X") span covering [tsNanos, tsNanos+durNanos).
func (l *TraceLog) Complete(cat, name string, pid, tid int, tsNanos, durNanos float64, args map[string]any) {
	l.Emit(TraceEvent{Name: name, Cat: cat, Ph: "X", TS: tsNanos / 1e3, Dur: durNanos / 1e3,
		PID: pid, TID: tid, Args: args})
}

// Instant appends an instant ("i") event at tsNanos.
func (l *TraceLog) Instant(cat, name string, pid, tid int, tsNanos float64, args map[string]any) {
	l.Emit(TraceEvent{Name: name, Cat: cat, Ph: "i", TS: tsNanos / 1e3, PID: pid, TID: tid, Args: args})
}

// CounterSample appends a counter ("C") sample; values render as a stacked
// area series in the trace viewer.
func (l *TraceLog) CounterSample(name string, pid int, tsNanos float64, values map[string]any) {
	l.Emit(TraceEvent{Name: name, Ph: "C", TS: tsNanos / 1e3, PID: pid, Args: values})
}

// ThreadName appends a metadata ("M") event labeling (pid, tid) in the
// viewer's track list.
func (l *TraceLog) ThreadName(pid, tid int, name string) {
	l.Emit(TraceEvent{Name: "thread_name", Ph: "M", PID: pid, TID: tid,
		Args: map[string]any{"name": name}})
}

// ProcessName appends a metadata ("M") event labeling pid.
func (l *TraceLog) ProcessName(pid int, name string) {
	l.Emit(TraceEvent{Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]any{"name": name}})
}

// Len returns the number of recorded events (0 on a nil receiver).
func (l *TraceLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Events returns a copy of the recorded events.
func (l *TraceLog) Events() []TraceEvent {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]TraceEvent, len(l.events))
	copy(out, l.events)
	return out
}

// traceFile is the JSON object format of the trace_event specification.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteJSON writes the log in the Chrome trace_event JSON object format.
func (l *TraceLog) WriteJSON(w io.Writer) error {
	events := l.Events()
	if events == nil {
		events = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}
