package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestTraceLogEvents checks event capture, nanos→micros conversion and
// nil-receiver safety.
func TestTraceLogEvents(t *testing.T) {
	var nilLog *TraceLog
	nilLog.Complete("c", "n", 1, 1, 0, 0, nil)
	nilLog.Instant("c", "n", 1, 1, 0, nil)
	nilLog.CounterSample("n", 1, 0, nil)
	if nilLog.Len() != 0 || nilLog.Events() != nil {
		t.Error("nil trace log should be inert")
	}

	l := NewTraceLog()
	l.ProcessName(1, "run")
	l.ThreadName(1, 2, "FM")
	l.Complete("phase", "fm", 1, 2, 2000, 4000, map[string]any{"k": 3})
	l.Instant("resteer", "mispredict", 1, 2, 2500, nil)
	l.CounterSample("tb_occupancy", 1, 3000, map[string]any{"entries": 17})
	if l.Len() != 5 {
		t.Fatalf("Len = %d", l.Len())
	}
	evs := l.Events()
	if evs[2].TS != 2 || evs[2].Dur != 4 {
		t.Errorf("complete span not converted to micros: ts=%v dur=%v", evs[2].TS, evs[2].Dur)
	}
	if evs[0].Ph != "M" || evs[2].Ph != "X" || evs[3].Ph != "i" || evs[4].Ph != "C" {
		t.Errorf("phase letters wrong: %+v", evs)
	}
}

// TestWriteJSONValid round-trips the exported file through encoding/json
// and checks the Chrome trace_event object format.
func TestWriteJSONValid(t *testing.T) {
	l := NewTraceLog()
	l.Complete("phase", "tm", 1, 1, 0, 1e6, nil)
	var b strings.Builder
	if err := l.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(b.String()), &f); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" || len(f.TraceEvents) != 1 {
		t.Errorf("unexpected file shape: %+v", f)
	}

	// An empty log must still be a valid (loadable) trace file.
	b.Reset()
	if err := NewTraceLog().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(b.String()), &f); err != nil {
		t.Fatalf("empty trace invalid: %v", err)
	}
	if f.TraceEvents == nil {
		t.Error("traceEvents should serialize as [], not null")
	}
}

// TestTraceLogConcurrent appends from many goroutines — the parallel
// coupling's FM/TM and fleet workers share one log.
func TestTraceLogConcurrent(t *testing.T) {
	l := NewTraceLog()
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Instant("cat", "ev", pid, 1, float64(i), nil)
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != workers*per {
		t.Errorf("Len = %d, want %d", l.Len(), workers*per)
	}
}

// TestNextPID checks ids are distinct and increasing.
func TestNextPID(t *testing.T) {
	a, b := NextPID(), NextPID()
	if a <= 0 || b <= a {
		t.Errorf("NextPID not increasing: %d, %d", a, b)
	}
}
