// Package obs is the observability layer: a zero-dependency metrics
// registry (counters, gauges, histograms with atomic hot paths), a per-run
// Telemetry object that engines attach at Configure time, and two exporters
// — a Prometheus-style text dump (WritePrometheus) and a Chrome trace_event
// JSON timeline (TraceLog.WriteJSON) of FM/TM/link phases.
//
// The paper's argument rests on measuring where simulator time goes (§3.1's
// Amdahl model, Table 3's FM/TM breakdown); this package makes those
// measurements first-class so every layer — internal/fm (rollbacks,
// re-execution, journal depth), internal/tm (per-class issue, stall
// reasons, predictor outcomes), internal/hostlink (transfer latency
// histograms) and sim.Fleet (queue wait, per-point wall time) — reports
// into one registry instead of ad-hoc struct fields.
//
// Two properties make it safe to wire into hot paths:
//
//   - Every metric method is nil-receiver safe. Instrumented code holds
//     plain *Counter / *Histogram fields that are nil when telemetry is
//     disabled; the disabled cost is one nil check per event, with no
//     branches at the call sites.
//
//   - Every mutation is a single atomic operation (histograms add one CAS
//     loop for the running sum), so concurrent sim.Fleet workers write the
//     same registry without locks on the hot path.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down (occupancy, depth).
type Gauge struct{ v atomic.Int64 }

// Set stores v. Safe on a nil receiver (no-op).
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// SetMax raises the gauge to v if v is larger (a high-water mark).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		old := g.v.Load()
		if v <= old || g.v.CompareAndSwap(old, v) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Buckets are cumulative on
// export (Prometheus convention); Observe is one atomic add per bucket plus
// a CAS loop for the sum.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one sample. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of samples (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of samples (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// NanosBuckets is the default latency bucket ladder for host-link and
// host-time histograms, in nanoseconds: it straddles the paper's measured
// latencies (20 ns/word bursts, 307 ns writes, 469 ns blocking reads).
var NanosBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000}

// DepthBuckets is the default ladder for queue/journal depth histograms.
var DepthBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// ChunkBuckets is the default ladder for trace-chunk size histograms
// (entries per published chunk, entries discarded per re-steer): chunk
// sizes are powers of two up to the TB capacity.
var ChunkBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// SecondsBuckets is the default ladder for wall-clock histograms (fleet
// queue wait and per-point run time).
var SecondsBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60}

// metricKind discriminates registry entries for export.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type metric struct {
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry is a named metric store. Get-or-create accessors make wiring
// idempotent: two subsystems asking for the same series share the metric.
// The registry lock covers registration only; metric mutation is lock-free.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]metric{}}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kindCounter {
			panic(fmt.Sprintf("obs: %q already registered with a different type", name))
		}
		return m.c
	}
	c := &Counter{}
	r.metrics[name] = metric{kind: kindCounter, c: c}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kindGauge {
			panic(fmt.Sprintf("obs: %q already registered with a different type", name))
		}
		return m.g
	}
	g := &Gauge{}
	r.metrics[name] = metric{kind: kindGauge, g: g}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (bounds are ignored on later calls). A nil
// registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kindHistogram {
			panic(fmt.Sprintf("obs: %q already registered with a different type", name))
		}
		return m.h
	}
	if len(bounds) == 0 {
		bounds = NanosBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: %q histogram bounds not ascending", name))
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	r.metrics[name] = metric{kind: kindHistogram, h: h}
	return h
}

// Names returns the registered series names, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// L renders a labeled series name in the Prometheus idiom:
// L("tm_stalls_total", "reason", "rob_full") → `tm_stalls_total{reason="rob_full"}`.
// Pairs are emitted in argument order; callers keep it stable so the same
// series is hit every time.
func L(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		panic("obs: L needs key/value pairs")
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// AddLabel appends one k="v" pair to a series name that may already carry
// a label block: AddLabel(`x{a="b"}`, "core", "2") → `x{a="b",core="2"}`.
// The multicore publishers use it to stamp per-core identity onto series
// whose inner labels are chosen at the call site.
func AddLabel(name, k, v string) string {
	base, labels := splitName(name)
	if labels == "" {
		return L(base, k, v)
	}
	return fmt.Sprintf("%s{%s,%s=%q}", base, labels, k, v)
}

// splitName separates a series name into its base and label block:
// `a{b="c"}` → ("a", `b="c"`).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// WritePrometheus dumps every metric in the Prometheus text exposition
// format, sorted by name, with one # TYPE comment per metric family.
// Histograms expand into cumulative _bucket{le=...} series plus _sum and
// _count, merging any existing labels with the le label.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	snapshot := make(map[string]metric, len(r.metrics))
	for n, m := range r.metrics {
		snapshot[n] = m
	}
	r.mu.Unlock()

	names := make([]string, 0, len(snapshot))
	for n := range snapshot {
		names = append(names, n)
	}
	sort.Strings(names)

	typed := map[string]bool{} // base names that already got a # TYPE line
	for _, name := range names {
		m := snapshot[name]
		base, labels := splitName(name)
		kind := "counter"
		if m.kind == kindGauge {
			kind = "gauge"
		} else if m.kind == kindHistogram {
			kind = "histogram"
		}
		if !typed[base] {
			typed[base] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind); err != nil {
				return err
			}
		}
		switch m.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s %d\n", name, m.c.Value()); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s %d\n", name, m.g.Value()); err != nil {
				return err
			}
		case kindHistogram:
			if err := writeHistogram(w, base, labels, m.h); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, base, labels string, h *Histogram) error {
	withLE := func(le string) string {
		if labels == "" {
			return fmt.Sprintf("%s_bucket{le=%q}", base, le)
		}
		return fmt.Sprintf("%s_bucket{%s,le=%q}", base, labels, le)
	}
	suffixed := func(suffix string) string {
		if labels == "" {
			return base + suffix
		}
		return fmt.Sprintf("%s%s{%s}", base, suffix, labels)
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s %d\n", withLE(formatBound(b)), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s %d\n", withLE("+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %g\n", suffixed("_sum"), h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", suffixed("_count"), h.Count())
	return err
}

// formatBound renders a bucket bound without trailing zeros (0.5, 20, 469).
func formatBound(b float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", b), "0"), ".")
}
