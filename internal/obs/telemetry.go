package obs

// Telemetry is the per-run observability handle. Engines accept one through
// sim.Params and attach it at Configure time; every instrumented layer (fm,
// tm, hostlink, core, sim.Fleet) resolves its metric handles from Metrics
// and, when Trace is non-nil, appends timeline events to it.
//
// A single Telemetry may be shared across concurrent fleet points: metric
// mutation is atomic and the trace log is mutex-protected, so aggregate
// counters simply sum across runs. All methods are nil-receiver safe, so a
// disabled run passes nil all the way down.
type Telemetry struct {
	// Metrics is the metric registry (always non-nil on a constructed
	// Telemetry).
	Metrics *Registry
	// Trace is the Chrome trace_event timeline, nil unless the caller asked
	// for one (it allocates per event, unlike the metrics hot path).
	Trace *TraceLog
}

// New builds a Telemetry with a fresh registry and no timeline.
func New() *Telemetry {
	return &Telemetry{Metrics: NewRegistry()}
}

// NewWithTrace builds a Telemetry that also captures the event timeline.
func NewWithTrace() *Telemetry {
	return &Telemetry{Metrics: NewRegistry(), Trace: NewTraceLog()}
}

// Counter resolves a counter, or nil when t is nil.
func (t *Telemetry) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	return t.Metrics.Counter(name)
}

// Gauge resolves a gauge, or nil when t is nil.
func (t *Telemetry) Gauge(name string) *Gauge {
	if t == nil {
		return nil
	}
	return t.Metrics.Gauge(name)
}

// Histogram resolves a histogram, or nil when t is nil.
func (t *Telemetry) Histogram(name string, bounds []float64) *Histogram {
	if t == nil {
		return nil
	}
	return t.Metrics.Histogram(name, bounds)
}

// TraceLog returns the timeline, or nil when t is nil or tracing is off.
func (t *Telemetry) TraceLog() *TraceLog {
	if t == nil {
		return nil
	}
	return t.Trace
}
